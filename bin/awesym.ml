(* awesym: command-line front end.

   Subcommands:
     awe        numeric AWE analysis (poles, residues, measures); --krylov
                switches to the Arnoldi-projection baseline, --sparse to the
                sparse factorization
     symbolic   AWEsymbolic: compile the symbolic model, print the symbolic
                forms, optionally evaluate at symbol values
     exact      exact symbolic transfer function (classical baseline)
     ac         AC sweep via direct complex solves
     tran       trapezoidal transient analysis
     rank       AWEsensitivity element ranking
     linearize  transistor-level deck -> operating point -> linear deck
     validate   compiled model vs full numeric AWE over symbol ranges
     macromodel N-port pole/residue reduction of a network block
     moments    raw circuit moments
     compile    build the symbolic model and save a versioned artifact
     eval       evaluate a saved model artifact at symbol values
     sweep      Monte-Carlo/LHS/corner/grid sweeps through the batch kernel
     optimize   gradient-based sizing and yield maximization on the model
     serve      persistent evaluation daemon with micro-batched kernel calls
     call       client for a running daemon (byte-identical to eval)
     cache      model-cache maintenance (gc)

   All subcommands read a SPICE-like deck (see Circuit.Parser; device cards
   per Nonlinear.Parser for linearize) with .input, .output and optional
   .symbolic directives. *)

open Cmdliner

let read_netlist path =
  try Ok (Circuit.Parser.parse_file path) with
  | Circuit.Parser.Parse_error (line, msg) ->
    Error (Printf.sprintf "%s:%d: %s" path line msg)
  | Sys_error msg -> Error msg

let deck_arg =
  let doc = "Input netlist deck." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DECK" ~doc)

let order_arg =
  let doc = "Approximation order (number of poles)." in
  Arg.(value & opt int 2 & info [ "order"; "q" ] ~docv:"ORDER" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 1

(* Shared telemetry flags: every subcommand takes --stats/--trace and runs
   under [with_obs], which turns the Obs subsystem on only when asked so the
   default path keeps its zero-overhead guarantee. *)
let obs_args =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print a phase-time tree and kernel counter tables to stderr \
             after the command runs.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write recorded spans as Chrome-trace JSON (load in \
             chrome://tracing or Perfetto).")
  in
  Term.(const (fun stats trace -> (stats, trace)) $ stats $ trace)

(* Shared worker-count flag for the compiled-model commands.  Setting the
   process-wide default (rather than threading the count through every
   call) keeps library signatures optional: anything that takes [?jobs]
   picks the flag up via [Runtime.default_jobs].  Resolution order is
   --jobs > AWESYM_JOBS > 1; results are bit-identical for every count. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel stages (default: \\$AWESYM_JOBS, \
           else 1).  Results are bit-identical for every jobs count.")

let with_jobs jobs f =
  Runtime.set_default_jobs jobs;
  f ()

(* Shared evaluation-backend flag for the compiled-model commands (see
   docs/CODEGEN.md).  Like --jobs it sets process-wide state: libraries
   dispatch through [Slp]'s backend hooks, so nothing threads the choice
   through call signatures.  [interp] never even installs the provider;
   [native] turns on strict warnings so a fallback is visible. *)
let backend_arg =
  let backend_conv =
    Arg.enum
      [
        ("auto", Symbolic.Slp.Auto);
        ("native", Symbolic.Slp.Native);
        ("interp", Symbolic.Slp.Interp);
      ]
  in
  Arg.(
    value & opt backend_conv Symbolic.Slp.Auto
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "SLP evaluation backend: $(b,auto) (default: compiled native \
           kernels when the OCaml toolchain can deliver them, the bytecode \
           interpreter otherwise), $(b,native) (same, but warn on stderr \
           when falling back), or $(b,interp) (interpreter only).  Results \
           are bit-identical whichever backend runs.")

let with_backend backend f =
  Symbolic.Slp.set_backend backend;
  (match backend with
  | Symbolic.Slp.Interp -> ()
  | Symbolic.Slp.Auto -> Codegen.install ()
  | Symbolic.Slp.Native ->
    Codegen.set_strict true;
    Codegen.install ());
  f ()

let with_obs (stats, trace) f =
  (* Every command body runs under this wrapper, so classified failures
     from anywhere in the pipeline exit with one readable line instead of
     an OCaml backtrace. *)
  let f () =
    try f ()
    with Awesym_error.Error e ->
      prerr_endline ("awesym: error: " ^ Awesym_error.to_string e);
      exit 1
  in
  if not (stats || trace <> None) then f ()
  else begin
    Obs.enabled := true;
    Obs.reset ();
    Fun.protect
      ~finally:(fun () ->
        if stats then Format.eprintf "%a@?" Obs.report ();
        Option.iter
          (fun path ->
            match Obs.write_trace path with
            | () -> Printf.eprintf "trace written to %s\n%!" path
            | exception Sys_error msg ->
              Printf.eprintf "awesym: cannot write trace: %s\n%!" msg;
              exit 1)
          trace;
        Obs.enabled := false)
      f
  end

let print_rom rom =
  Format.printf "%a@." Awe.Rom.pp rom;
  Printf.printf "dc gain        : %g (%.2f dB)\n" (Awe.Measures.dc_gain rom)
    (Awe.Measures.dc_gain_db rom);
  Printf.printf "dominant pole  : %g Hz\n" (Awe.Measures.dominant_pole_hz rom);
  (match Awe.Measures.unity_gain_frequency rom with
  | Some f ->
    Printf.printf "unity gain     : %g Hz\n" f;
    Option.iter
      (fun pm -> Printf.printf "phase margin   : %.1f deg\n" pm)
      (Awe.Measures.phase_margin rom)
  | None -> ());
  match Awe.Measures.delay_50 rom with
  | Some t -> Printf.printf "50%% step delay : %g s\n" t
  | None -> ()

(* ------------------------------------------------------------------ *)

let awe_cmd =
  let run obs deck order krylov sparse realize_path =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let result =
      if krylov then Awe.Krylov.analyze ~order (Circuit.Mna.build nl)
      else Awe.Driver.analyze ~order ~sparse nl
    in
    Printf.printf "moments:";
    Array.iter (fun m -> Printf.printf " %g" m) result.Awe.Driver.moments;
    print_newline ();
    print_rom result.Awe.Driver.rom;
    match realize_path with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Awe.Realize.to_deck result.Awe.Driver.rom));
      Printf.printf "\nreduced-order model synthesized to %s\n" path
  in
  let krylov_arg =
    Arg.(
      value & flag
      & info [ "krylov" ] ~doc:"Use the Arnoldi-projection baseline instead \
                                of explicit moment matching.")
  in
  let sparse_arg =
    Arg.(value & flag & info [ "sparse" ] ~doc:"Use the sparse factorization.")
  in
  let realize_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "realize" ] ~docv:"FILE"
          ~doc:
            "Synthesize the reduced-order model back into a deck (one \
             state-space section per pole) and write it here.")
  in
  let doc = "Numeric AWE analysis: reduced-order model of the deck." in
  Cmd.v (Cmd.info "awe" ~doc)
    Term.(const run $ obs_args $ deck_arg $ order_arg $ krylov_arg $ sparse_arg
          $ realize_arg)

let bindings_arg =
  let doc =
    "Symbol assignment NAME=VALUE (repeatable); values take engineering \
     suffixes."
  in
  Arg.(value & opt_all string [] & info [ "set"; "s" ] ~docv:"NAME=VALUE" ~doc)

let parse_binding s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "malformed binding %S (want NAME=VALUE)" s)
  | Some k -> (
    let name = String.sub s 0 k in
    let v = String.sub s (k + 1) (String.length s - k - 1) in
    match Circuit.Units.parse v with
    | Some value -> Ok (name, value)
    | None -> Error (Printf.sprintf "malformed value in %S" s))

let symbolic_cmd =
  let run obs deck order bindings show_program =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let model = Awesymbolic.Model.build ~order nl in
    let symbols = Awesymbolic.Model.symbols model in
    Printf.printf "symbols : %s\n"
      (String.concat ", "
         (Array.to_list (Array.map Symbolic.Symbol.name symbols)));
    Printf.printf "compiled: %d operations for %d moments\n"
      (Awesymbolic.Model.num_operations model)
      (2 * order);
    (if order <= 2 then
       try
         Format.printf "%a@?"
           (Awesymbolic.Model.pp_forms ~count:(Int.min 4 (2 * order)))
           nl
       with Failure _ ->
         (* The expanded (Cramer-form) display needs fraction-free exact
            division, which float coefficients cannot always support on
            large incidence-heavy systems.  The compiled model above is
            unaffected — it solves by elimination with numeric pivoting. *)
         print_endline
           "(expanded symbolic forms unavailable: fraction-free elimination \
            is\n ill-conditioned for this system; the compiled model is \
            unaffected —\n evaluate with --set or check it with `awesym \
            validate`)");
    if show_program then
      Format.printf "%a@." Symbolic.Slp.pp (Awesymbolic.Model.program model);
    if bindings <> [] then begin
      let bound = List.map (fun b -> or_die (parse_binding b)) bindings in
      let v = Awesymbolic.Model.values model bound in
      let rom = Awesymbolic.Model.rom model v in
      Printf.printf "\nevaluated at %s:\n"
        (String.concat ", "
           (List.map (fun (n, x) -> Printf.sprintf "%s=%g" n x) bound));
      print_rom rom
    end
  in
  let program_arg =
    Arg.(value & flag & info [ "program" ] ~doc:"Print the compiled program.")
  in
  let doc = "AWEsymbolic: compiled symbolic analysis of the deck." in
  Cmd.v
    (Cmd.info "symbolic" ~doc)
    Term.(const run $ obs_args $ deck_arg $ order_arg $ bindings_arg
          $ program_arg)

let exact_cmd =
  let run obs deck all_symbolic =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let tf = Exact.Network.transfer_function ~all_symbolic nl in
    Printf.printf "H(s) = %s\n" (Exact.Network.to_string tf)
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all-symbolic" ] ~doc:"Treat every element as a symbol.")
  in
  let doc = "Exact symbolic transfer function (classical baseline)." in
  Cmd.v (Cmd.info "exact" ~doc) Term.(const run $ obs_args $ deck_arg $ all_arg)

let ac_cmd =
  let run obs deck f_start f_stop points =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let mna = Circuit.Mna.build nl in
    Printf.printf "%14s %14s %12s\n" "freq (Hz)" "mag (dB)" "phase (deg)";
    Array.iter
      (fun (f, h) ->
        Printf.printf "%14.6g %14.4f %12.2f\n" f (Spice.Ac.magnitude_db h)
          (Spice.Ac.phase_deg h))
      (Spice.Ac.sweep mna ~f_start ~f_stop ~points)
  in
  let f_start =
    Arg.(value & opt float 1.0 & info [ "start" ] ~docv:"HZ" ~doc:"Start frequency.")
  in
  let f_stop =
    Arg.(value & opt float 1e9 & info [ "stop" ] ~docv:"HZ" ~doc:"Stop frequency.")
  in
  let points =
    Arg.(value & opt int 30 & info [ "points"; "n" ] ~doc:"Sweep points.")
  in
  let doc = "AC sweep by direct complex solves." in
  Cmd.v (Cmd.info "ac" ~doc)
    Term.(const run $ obs_args $ deck_arg $ f_start $ f_stop $ points)

let tran_cmd =
  let run obs deck t_step t_stop adaptive tol =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let mna = Circuit.Mna.build nl in
    let wave =
      if adaptive then
        Spice.Tran.simulate_adaptive ~tol mna ~input:Spice.Tran.step_input
          ~t_stop
      else
        match t_step with
        | Some t_step ->
          Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step ~t_stop
        | None ->
          prerr_endline "need --step (or --adaptive)";
          exit 1
    in
    Printf.printf "%14s %14s\n" "t (s)" "v(out)";
    Array.iter (fun (t, y) -> Printf.printf "%14.6g %14.6g\n" t y) wave;
    if adaptive then Printf.printf "(%d adaptive points)\n" (Array.length wave)
  in
  let t_step =
    Arg.(
      value
      & opt (some float) None
      & info [ "step" ] ~docv:"S" ~doc:"Fixed time step.")
  in
  let t_stop =
    Arg.(required & opt (some float) None & info [ "stop" ] ~docv:"S" ~doc:"Stop time.")
  in
  let adaptive_arg =
    Arg.(
      value & flag
      & info [ "adaptive" ] ~doc:"Variable step with error control.")
  in
  let tol_arg =
    Arg.(
      value & opt float 1e-6
      & info [ "tol" ] ~docv:"REL" ~doc:"Adaptive error tolerance.")
  in
  let doc = "Transient step response (trapezoidal integration)." in
  Cmd.v (Cmd.info "tran" ~doc)
    Term.(const run $ obs_args $ deck_arg $ t_step $ t_stop $ adaptive_arg
          $ tol_arg)

let rank_cmd =
  let run obs deck order top =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let ranked = Awe.Sensitivity.rank ~order nl in
    Printf.printf "%4s %-20s %14s\n" "#" "element" "sensitivity";
    List.iteri
      (fun k ((e : Circuit.Element.t), score) ->
        if k < top then
          Printf.printf "%4d %-20s %14.4g\n" (k + 1) e.Circuit.Element.name score)
      ranked
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"How many elements to list.")
  in
  let doc = "Rank elements by AWE pole/gain sensitivity." in
  Cmd.v (Cmd.info "rank" ~doc)
    Term.(const run $ obs_args $ deck_arg $ order_arg $ top_arg)

let linearize_cmd =
  let run obs deck out_path analyze =
    with_obs obs @@ fun () ->
    let nl =
      try Nonlinear.Parser.parse_file deck with
      | Nonlinear.Parser.Parse_error (line, msg) ->
        prerr_endline (Printf.sprintf "%s:%d: %s" deck line msg);
        exit 1
      | Sys_error msg ->
        prerr_endline msg;
        exit 1
    in
    let sol =
      try Nonlinear.Newton.solve nl with
      | Nonlinear.Newton.No_convergence msg ->
        prerr_endline ("DC solve failed: " ^ msg);
        exit 1
    in
    print_string (Nonlinear.Linearize.operating_report nl sol);
    let lin = Nonlinear.Linearize.netlist nl sol in
    (match out_path with
    | Some path ->
      Circuit.Export.to_file lin path;
      Printf.printf "linearized netlist written to %s\n" path
    | None -> print_string (Circuit.Export.to_deck lin));
    if analyze then begin
      let result = Awe.Driver.analyze ~order:2 lin in
      print_newline ();
      print_rom result.Awe.Driver.rom
    end
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the linearized deck here.")
  in
  let analyze_arg =
    Arg.(value & flag & info [ "awe" ] ~doc:"Also run an order-2 AWE analysis.")
  in
  let doc = "Bias a transistor-level deck and emit its linearized netlist." in
  Cmd.v
    (Cmd.info "linearize" ~doc)
    Term.(const run $ obs_args $ deck_arg $ out_arg $ analyze_arg)

let distortion_cmd =
  let run obs deck f amplitude bias harmonics two_tone =
    with_obs obs @@ fun () ->
    let nl =
      try Nonlinear.Parser.parse_file deck with
      | Nonlinear.Parser.Parse_error (line, msg) ->
        prerr_endline (Printf.sprintf "%s:%d: %s" deck line msg);
        exit 1
      | Sys_error msg ->
        prerr_endline msg;
        exit 1
    in
    try
      match two_tone with
      | Some spec ->
        let k1, k2 =
          match String.split_on_char ':' spec with
          | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some k1, Some k2 -> (k1, k2)
            | _ ->
              prerr_endline "malformed --two-tone (want K1:K2)";
              exit 1)
          | _ ->
            prerr_endline "malformed --two-tone (want K1:K2)";
            exit 1
        in
        let d =
          Nonlinear.Distortion.two_tone nl ~bias ~f_base:f ~k1 ~k2 ~amplitude
        in
        Printf.printf "tones: %g V each at %s and %s, bias %g V\n" amplitude
          (Circuit.Units.format (f *. float_of_int k1))
          (Circuit.Units.format (f *. float_of_int k2))
          bias;
        Printf.printf "fundamentals: %.6g / %.6g\n" d.Nonlinear.Distortion.fund1
          d.Nonlinear.Distortion.fund2;
        Printf.printf "IM2 = %.4f%%   IM3 = %.4f%%  (of the first tone)\n"
          (100.0 *. d.Nonlinear.Distortion.im2 /. d.Nonlinear.Distortion.fund1)
          (100.0 *. d.Nonlinear.Distortion.im3 /. d.Nonlinear.Distortion.fund1)
      | None ->
        let d =
          Nonlinear.Distortion.measure nl ~bias ~f ~amplitude
            ~max_harmonic:harmonics
        in
        Printf.printf "drive: %g V at %s, bias %g V\n" amplitude
          (Circuit.Units.format f) bias;
        Printf.printf "%10s %14s %14s\n" "harmonic" "amplitude" "rel. to h1";
        Array.iteri
          (fun k h ->
            Printf.printf "%10d %14.6g %14.6g\n" k h
              (if k = 1 || d.Nonlinear.Distortion.fundamental = 0.0 then
                 (if k = 1 then 1.0 else Float.infinity)
               else h /. d.Nonlinear.Distortion.fundamental))
          d.Nonlinear.Distortion.harmonics;
        Printf.printf "\nTHD = %.4f%%  (HD2 = %.4f%%, HD3 = %.4f%%)\n"
          (100.0 *. d.Nonlinear.Distortion.thd)
          (100.0 *. Nonlinear.Distortion.hd2 d)
          (100.0 *. Nonlinear.Distortion.hd3 d)
    with Nonlinear.Tran.No_convergence t ->
      prerr_endline (Printf.sprintf "transient failed to converge at t = %g" t);
      exit 1
  in
  let two_tone_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "two-tone" ] ~docv:"K1:K2"
          ~doc:
            "Two-tone intermodulation instead of single-tone harmonics: \
             tones at K1 and K2 times the base frequency given by --freq.")
  in
  let f_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "f"; "freq" ] ~docv:"HZ" ~doc:"Drive frequency.")
  in
  let amp_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "a"; "amplitude" ] ~docv:"V" ~doc:"Drive amplitude.")
  in
  let bias_arg =
    Arg.(
      value & opt float 0.0
      & info [ "bias" ] ~docv:"V" ~doc:"DC bias added to the drive.")
  in
  let harmonics_arg =
    Arg.(value & opt int 5 & info [ "harmonics" ] ~doc:"Highest harmonic to report.")
  in
  let doc =
    "Measure harmonic distortion of a transistor-level deck (steady-state \
     transient + FFT)."
  in
  Cmd.v
    (Cmd.info "distortion" ~doc)
    Term.(const run $ obs_args $ deck_arg $ f_arg $ amp_arg $ bias_arg
          $ harmonics_arg $ two_tone_arg)

let sens_cmd =
  let run obs deck order bindings =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let model = Awesymbolic.Model.build ~order nl in
    let symbols = Awesymbolic.Model.symbols model in
    (* Default point: every symbol at its netlist (nominal) value. *)
    let nominal =
      Circuit.Netlist.symbolic_elements nl
      |> List.map (fun ((e : Circuit.Element.t), s) ->
             (Symbolic.Symbol.name s, Circuit.Element.stamp_value e))
    in
    let bound = List.map (fun b -> or_die (parse_binding b)) bindings in
    let point =
      List.map
        (fun (name, v) ->
          match List.find_opt (fun (n, _) -> n = name) bound with
          | Some (_, v') -> (name, v')
          | None -> (name, v))
        nominal
    in
    let v = Awesymbolic.Model.values model point in
    Printf.printf "at %s\n\n"
      (String.concat ", "
         (List.map (fun (n, x) -> Printf.sprintf "%s=%g" n x) point));
    let sens = Awesymbolic.Model.eval_sensitivities model v in
    Printf.printf "%-6s" "";
    Array.iter
      (fun s -> Printf.printf " %16s" ("d/d" ^ Symbolic.Symbol.name s))
      symbols;
    print_newline ();
    Array.iteri
      (fun k row ->
        Printf.printf "m%-5d" k;
        Array.iter (fun d -> Printf.printf " %16.6g" d) row;
        print_newline ())
      sens;
    match Awesymbolic.Model.eval_pole_sensitivities model v with
    | None -> ()
    | Some (dp1, dp2) ->
      print_newline ();
      List.iter
        (fun (label, dp) ->
          Printf.printf "%-6s" label;
          Array.iter (fun d -> Printf.printf " %16.6g" d) dp;
          print_newline ())
        [ ("p1", dp1); ("p2", dp2) ]
  in
  let doc =
    "Compiled symbolic sensitivities: d(moment)/d(symbol) and, for orders \
     1-2, d(pole)/d(symbol)."
  in
  Cmd.v (Cmd.info "sens" ~doc)
    Term.(const run $ obs_args $ deck_arg $ order_arg $ bindings_arg)

let validate_cmd =
  let run obs deck order points ranges =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let model = Awesymbolic.Model.build ~order nl in
    let parse_range s =
      match String.split_on_char '=' s with
      | [ name; bounds ] -> (
        match String.split_on_char ':' bounds with
        | [ lo; hi ] -> (
          match (Circuit.Units.parse lo, Circuit.Units.parse hi) with
          | Some lo, Some hi -> Ok (name, lo, hi)
          | _ -> Error (Printf.sprintf "malformed bounds in %S" s))
        | _ -> Error (Printf.sprintf "malformed range %S (want NAME=LO:HI)" s))
      | _ -> Error (Printf.sprintf "malformed range %S (want NAME=LO:HI)" s)
    in
    let ranges = List.map (fun r -> or_die (parse_range r)) ranges in
    (* Default range: a decade around each symbol's netlist value. *)
    let defaults =
      Circuit.Netlist.symbolic_elements nl
      |> List.map (fun ((e : Circuit.Element.t), s) ->
             let v = Circuit.Element.stamp_value e in
             (Symbolic.Symbol.name s, v /. 3.0, v *. 3.0))
    in
    let merged =
      defaults
      |> List.map (fun (name, lo, hi) ->
             match List.find_opt (fun (n, _, _) -> n = name) ranges with
             | Some r -> r
             | None -> (name, lo, hi))
    in
    let report = Awesymbolic.Validate.run ~points ~ranges:merged model in
    Format.printf "%a@." Awesymbolic.Validate.pp report
  in
  let points_arg =
    Arg.(value & opt int 50 & info [ "points"; "n" ] ~doc:"Sample count.")
  in
  let ranges_arg =
    Arg.(
      value & opt_all string []
      & info [ "range" ] ~docv:"NAME=LO:HI"
          ~doc:"Symbol range (default: a decade around the netlist value).")
  in
  let doc = "Validate the compiled model against full numeric AWE." in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(const run $ obs_args $ deck_arg $ order_arg $ points_arg
          $ ranges_arg)

let macromodel_cmd =
  let run obs deck order ports f_probe out_path ts_path =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    if ports = [] then begin
      prerr_endline "need at least one --port";
      exit 1
    end;
    let mm =
      try Awesymbolic.Macromodel.reduce ~order ~ports nl
      with Failure msg ->
        prerr_endline msg;
        exit 1
    in
    Format.printf "%a@." Awesymbolic.Macromodel.pp mm;
    (match out_path with
    | None -> ()
    | Some path ->
      Circuit.Export.to_file (Awesymbolic.Macromodel.to_netlist mm) path;
      Printf.printf "synthesized N-port block written to %s\n" path);
    (match ts_path with
    | None -> ()
    | Some path ->
      let frequencies =
        Array.init 40 (fun k -> 1e3 *. (10.0 ** (float_of_int k /. 5.0)))
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Awesymbolic.Macromodel.touchstone mm ~z0:50.0 ~frequencies));
      Printf.printf "touchstone S-parameters written to %s\n" path);
    match f_probe with
    | None -> ()
    | Some f ->
      let s = Numeric.Cx.make 0.0 (2.0 *. Float.pi *. f) in
      let y = Awesymbolic.Macromodel.admittance mm s in
      Printf.printf "\nY(j·2π·%g):\n" f;
      Array.iteri
        (fun j pj ->
          Array.iteri
            (fun k pk ->
              let v = Numeric.Cmatrix.get y j k in
              Printf.printf "  Y[%s][%s] = %g %+gi\n" pj pk v.Numeric.Cx.re
                v.Numeric.Cx.im)
            (Awesymbolic.Macromodel.ports mm))
        (Awesymbolic.Macromodel.ports mm)
  in
  let ports_arg =
    Arg.(
      value & opt_all string []
      & info [ "port"; "p" ] ~docv:"NODE" ~doc:"Port node (repeatable).")
  in
  let probe_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "at" ] ~docv:"HZ" ~doc:"Also print Y(s) at this frequency.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Synthesize the macromodel as an embeddable deck block here.")
  in
  let ts_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "touchstone" ] ~docv:"FILE"
          ~doc:
            "Write S-parameters (50-ohm, 1 kHz - 60 MHz log sweep) in \
             Touchstone format here.")
  in
  let doc = "Reduce a network block to an N-port pole/residue macromodel." in
  Cmd.v
    (Cmd.info "macromodel" ~doc)
    Term.(const run $ obs_args $ deck_arg $ order_arg $ ports_arg $ probe_arg
          $ out_arg $ ts_arg)

let noise_cmd =
  let run obs deck f_probe f_start f_stop top =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let mna = Circuit.Mna.build nl in
    let density = Spice.Noise.output_density mna f_probe in
    Printf.printf "output noise density at %g Hz: %.4g V^2/Hz (%.4g nV/sqrt(Hz))\n"
      f_probe density
      (Float.sqrt density *. 1e9);
    Printf.printf "\ntop contributors:\n";
    List.iteri
      (fun k (name, d) ->
        if k < top then Printf.printf "  %-16s %.4g V^2/Hz\n" name d)
      (Spice.Noise.contributions mna f_probe);
    let total = Spice.Noise.integrated mna ~f_start ~f_stop in
    Printf.printf "\nintegrated over [%g, %g] Hz: %.4g V^2 (%.4g uVrms)\n"
      f_start f_stop total
      (Float.sqrt total *. 1e6)
  in
  let f_probe =
    Arg.(value & opt float 1e3 & info [ "at" ] ~docv:"HZ" ~doc:"Spot frequency.")
  in
  let f_start =
    Arg.(value & opt float 1.0 & info [ "start" ] ~docv:"HZ" ~doc:"Band start.")
  in
  let f_stop =
    Arg.(value & opt float 1e9 & info [ "stop" ] ~docv:"HZ" ~doc:"Band stop.")
  in
  let top_arg =
    Arg.(value & opt int 5 & info [ "top" ] ~doc:"Contributors to list.")
  in
  let doc = "Thermal (4kTR) output noise: density, breakdown, integral." in
  Cmd.v (Cmd.info "noise" ~doc)
    Term.(const run $ obs_args $ deck_arg $ f_probe $ f_start $ f_stop
          $ top_arg)

(* ------------------------------------------------------------------ *)
(* Compiled-model artifacts and sweeps *)

let die msg =
  prerr_endline ("awesym: " ^ msg);
  exit 1

let load_model path =
  try Awesymbolic.Model.load path with
  | Awesymbolic.Artifact.Format_error msg ->
    die (Printf.sprintf "cannot load %s: %s" path msg)
  | Sys_error msg -> die msg

let compile_cmd =
  let run obs jobs backend deck order sparse out cache =
    with_obs obs @@ fun () ->
    with_jobs jobs @@ fun () ->
    with_backend backend @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let model =
      if cache then Awesymbolic.Model.build_cached ~order ~sparse nl
      else Awesymbolic.Model.build ~order ~sparse nl
    in
    let out =
      match out with
      | Some o -> o
      | None -> Filename.remove_extension (Filename.basename deck) ^ ".awm"
    in
    Awesymbolic.Model.save model out;
    let symbols = Awesymbolic.Model.symbols model in
    Printf.printf "compiled %s -> %s\n" deck out;
    Printf.printf "order %d, symbols: %s\n"
      (Awesymbolic.Model.order model)
      (String.concat ", "
         (Array.to_list (Array.map Symbolic.Symbol.name symbols)));
    Printf.printf "%d operations over %d registers\n"
      (Awesymbolic.Model.num_operations model)
      (Symbolic.Slp.num_registers (Awesymbolic.Model.program model));
    (* Prewarm the kernel cache: later eval/sweep/serve runs on this
       artifact hit the compiled object instead of paying ocamlopt. *)
    (match backend with
    | Symbolic.Slp.Interp -> ()
    | Symbolic.Slp.Auto | Symbolic.Slp.Native ->
      let p = Awesymbolic.Model.program model in
      if Codegen.available p then
        Printf.printf "native kernel cached: %s\n"
          (Filename.basename (Codegen.cache_path p))
      else
        Printf.printf "native kernel unavailable (%s); runs will interpret\n"
          (match Codegen.last_error () with
          | Some e -> Awesym_error.kind_name e.Awesym_error.kind
          | None -> "declined"))
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Artifact path (default: the deck's basename with .awm).")
  in
  let sparse_arg =
    Arg.(value & flag & info [ "sparse" ] ~doc:"Use the sparse factorization.")
  in
  let cache_arg =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Consult and populate the content-addressed model cache \
             (\\$AWESYM_CACHE_DIR or .awesym-cache).")
  in
  let doc =
    "Compile the deck's symbolic model and save it as a versioned, \
     checksummed artifact for later `eval` and `sweep` runs."
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ obs_args $ jobs_arg $ backend_arg $ deck_arg $ order_arg
          $ sparse_arg $ out_arg $ cache_arg)

let model_arg =
  let doc = "Load a compiled model artifact instead of building a deck." in
  Arg.(
    value
    & opt (some file) None
    & info [ "model"; "m" ] ~docv:"FILE" ~doc)

(* Positional value vector from --set bindings over the model's symbol
   names, defaulting to nominals.  Shared by `eval` and `call` so both
   resolve a point identically. *)
let point_of_bindings ~names ~nominals bindings =
  let bound = List.map (fun b -> or_die (parse_binding b)) bindings in
  List.iter
    (fun (n, _) ->
      if not (Array.exists (( = ) n) names) then
        die
          (Printf.sprintf "unknown symbol %s (model has: %s)" n
             (String.concat ", " (Array.to_list names))))
    bound;
  Array.mapi
    (fun k n ->
      match List.find_opt (fun (b, _) -> b = n) bound with
      | Some (_, x) -> x
      | None -> nominals.(k))
    names

(* The one point-evaluation printer.  `eval` (offline) and `call` (served)
   both end here, so for the same model and point they print the same
   bytes — the CI smoke job diffs their outputs to prove the daemon is
   bit-exact.  The Padé finish is deterministic, so printing from raw
   moments is identical to [Model.rom]. *)
let print_point_eval ~model_path ~order ~names ~values ~moments ~show_moments =
  Printf.printf "model %s: order %d\n" model_path order;
  Printf.printf "at %s\n\n"
    (String.concat ", "
       (Array.to_list
          (Array.mapi (fun k n -> Printf.sprintf "%s=%g" n values.(k)) names)));
  if show_moments then begin
    Array.iteri (fun k m -> Printf.printf "m%-2d = %.12g\n" k m) moments;
    print_newline ()
  end;
  print_rom (Awe.Pade.fit ~order moments)

let eval_cmd =
  let run obs jobs backend model_path bindings show_moments =
    with_obs obs @@ fun () ->
    with_jobs jobs @@ fun () ->
    with_backend backend @@ fun () ->
    let model_path =
      match model_path with
      | Some p -> p
      | None -> die "need --model FILE (produce one with `awesym compile`)"
    in
    let model = load_model model_path in
    let symbols = Awesymbolic.Model.symbols model in
    let names = Array.map Symbolic.Symbol.name symbols in
    let nominals = Awesymbolic.Model.nominal_values model in
    let v = point_of_bindings ~names ~nominals bindings in
    print_point_eval ~model_path
      ~order:(Awesymbolic.Model.order model)
      ~names ~values:v
      ~moments:(Awesymbolic.Model.eval_moments model v)
      ~show_moments
  in
  let moments_arg =
    Arg.(value & flag & info [ "moments" ] ~doc:"Also print the raw moments.")
  in
  let doc =
    "Evaluate a compiled model artifact at symbol values (defaults: the \
     nominal values stored in the artifact)."
  in
  Cmd.v (Cmd.info "eval" ~doc)
    Term.(const run $ obs_args $ jobs_arg $ backend_arg $ model_arg
          $ bindings_arg $ moments_arg)

let parse_vary s =
  match String.index_opt s '=' with
  | None ->
    Error (Printf.sprintf "malformed --vary %S (want NAME=DIST)" s)
  | Some k -> (
    let name = String.sub s 0 k in
    let rest = String.sub s (k + 1) (String.length s - k - 1) in
    let num v =
      match Circuit.Units.parse v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "malformed value %S in --vary %S" v s)
    in
    let dist mk a b =
      match (num a, num b) with
      | Ok a, Ok b -> (
        try Ok (name, `Dist (mk a b))
        with Invalid_argument msg -> Error msg)
      | (Error _ as e), _ | _, (Error _ as e) -> e
    in
    match String.split_on_char ':' rest with
    | [ "pct"; p ] -> (
      match float_of_string_opt p with
      | Some p when p > 0.0 -> Ok (name, `Pct p)
      | _ -> Error (Printf.sprintf "malformed percentage in --vary %S" s))
    | [ "uniform"; lo; hi ] ->
      dist (fun lo hi -> Sweep.Dist.uniform ~lo ~hi) lo hi
    | [ "normal"; mean; std ] ->
      dist (fun mean std -> Sweep.Dist.normal ~mean ~std) mean std
    | [ "lognormal"; mu; sigma ] ->
      dist (fun mu sigma -> Sweep.Dist.lognormal ~mu ~sigma) mu sigma
    | _ ->
      Error
        (Printf.sprintf
           "malformed --vary %S (want NAME=pct:P, NAME=uniform:LO:HI, \
            NAME=normal:MEAN:STD, or NAME=lognormal:MU:SIGMA)"
           s))

let describe_dist = function
  | Sweep.Dist.Uniform { lo; hi } -> Printf.sprintf "uniform[%g, %g]" lo hi
  | Sweep.Dist.Normal { mean; std } -> Printf.sprintf "normal(%g, %g)" mean std
  | Sweep.Dist.Lognormal { mu; sigma } ->
    Printf.sprintf "lognormal(%g, %g)" mu sigma

let sweep_cmd =
  let run obs jobs backend deck model_path order sparse cache varies mc lhs
      corners grid measures specs seed block json_path on_fault checkpoint
      resume worker_addrs chunk_timeout heartbeat dist_retries =
    with_obs obs @@ fun () ->
    with_jobs jobs @@ fun () ->
    with_backend backend @@ fun () ->
    let model =
      match (model_path, deck) with
      | Some _, Some _ -> die "give either a DECK or --model, not both"
      | None, None -> die "need a DECK or --model FILE"
      | Some p, None -> load_model p
      | None, Some d ->
        let nl = or_die (read_netlist d) in
        if cache then Awesymbolic.Model.build_cached ~order ~sparse nl
        else Awesymbolic.Model.build ~order ~sparse nl
    in
    let names =
      Array.map Symbolic.Symbol.name (Awesymbolic.Model.symbols model)
    in
    let nominals = Awesymbolic.Model.nominal_values model in
    let nominal_of name =
      let rec go k =
        if k >= Array.length names then
          die
            (Printf.sprintf "unknown symbol %s (model has: %s)" name
               (String.concat ", " (Array.to_list names)))
        else if names.(k) = name then nominals.(k)
        else go (k + 1)
      in
      go 0
    in
    let axes =
      if varies = [] then
        (* Nothing specified: sweep every symbol over a ±20% band. *)
        Array.to_list
          (Array.mapi
             (fun k name ->
               { Sweep.Plan.name;
                 dist = Sweep.Dist.around ~nominal:nominals.(k) ~pct:20.0 })
             names)
      else
        List.map
          (fun v ->
            match or_die (parse_vary v) with
            | name, `Dist d -> { Sweep.Plan.name; dist = d }
            | name, `Pct p ->
              { Sweep.Plan.name;
                dist = Sweep.Dist.around ~nominal:(nominal_of name) ~pct:p })
          varies
    in
    let kind =
      match (mc, lhs, corners, grid) with
      | Some n, None, false, None -> Sweep.Plan.Monte_carlo n
      | None, Some n, false, None -> Sweep.Plan.Latin_hypercube n
      | None, None, true, None -> Sweep.Plan.Corners
      | None, None, false, Some n -> Sweep.Plan.Grid n
      | None, None, false, None -> Sweep.Plan.Monte_carlo 1000
      | _ -> die "choose at most one of --mc, --lhs, --corners, --grid"
    in
    let measures =
      match measures with
      | [] -> Sweep.Engine.default_measures
      | ms -> List.map (fun m -> or_die (Sweep.Engine.measure_of_string m)) ms
    in
    let specs =
      List.map (fun s -> or_die (Sweep.Engine.spec_of_string s)) specs
    in
    let plan =
      try Sweep.Plan.make kind axes with Invalid_argument msg -> die msg
    in
    let policy = or_die (Sweep.Engine.policy_of_string on_fault) in
    if resume && checkpoint = None then
      die "--resume needs --checkpoint FILE to resume from";
    let result =
      try
        match worker_addrs with
        | [] ->
          Sweep.Engine.run ~seed ?block ~measures ~specs ~policy ?checkpoint
            ~resume model plan
        | addrs ->
          (* Coordinator mode: the daemons load the artifact themselves,
             so the sweep must name one — a deck built in this process
             has no path the workers could agree on. *)
          let model_path =
            match model_path with
            | Some p -> p
            | None ->
              die
                "--worker-addr needs --model FILE (an artifact path the \
                 worker daemons can read)"
          in
          let cfg =
            {
              (Dsweep.default_config ~addrs) with
              chunk_timeout_s = chunk_timeout;
              heartbeat_s = heartbeat;
              worker_retries = dist_retries;
            }
          in
          Dsweep.run ~seed ?block ~measures ~specs ~policy ?checkpoint ~resume
            ~log:prerr_endline cfg ~model ~model_path plan
      with
      | Failure msg | Invalid_argument msg -> die msg
    in
    Printf.printf "sweep: %s, %d points, seed %d%s\n"
      (Sweep.Plan.kind_name plan.Sweep.Plan.kind)
      result.Sweep.Engine.n seed
      (match worker_addrs with
      | [] -> ""
      | ws -> Printf.sprintf ", distributed over %d workers" (List.length ws));
    (match result.Sweep.Engine.failed with
    | [] -> ()
    | failed ->
      Printf.printf
        "  %d of %d points failed (policy %s); statistics cover the %d \
         survivors\n"
        (List.length failed) result.Sweep.Engine.n
        (Sweep.Engine.policy_name policy)
        (Sweep.Engine.survivors result);
      List.iteri
        (fun i (fp : Sweep.Engine.failed_point) ->
          if i < 5 then
            Printf.printf "    point %d (%d attempts): %s\n" fp.point
              fp.attempts
              (Awesym_error.to_string fp.error))
        failed;
      if List.length failed > 5 then
        Printf.printf "    ... and %d more (see the JSON report)\n"
          (List.length failed - 5));
    List.iter
      (fun (a : Sweep.Plan.axis) ->
        Printf.printf "  %s ~ %s\n" a.Sweep.Plan.name (describe_dist a.dist))
      plan.Sweep.Plan.axes;
    print_newline ();
    Printf.printf "%-22s %12s %12s %12s %12s %12s %9s\n" "measure" "mean"
      "std" "min" "median" "max" "finite";
    List.iter
      (fun (m, (s : Sweep.Stats.summary)) ->
        let median =
          match List.assoc_opt 0.5 s.Sweep.Stats.quantiles with
          | Some v -> v
          | None -> nan
        in
        Printf.printf "%-22s %12.5g %12.5g %12.5g %12.5g %12.5g %5d/%-4d\n"
          (Sweep.Engine.measure_name m)
          s.Sweep.Stats.mean s.Sweep.Stats.std s.Sweep.Stats.min median
          s.Sweep.Stats.max s.Sweep.Stats.finite s.Sweep.Stats.n)
      result.Sweep.Engine.summaries;
    if result.Sweep.Engine.spec_yields <> [] then begin
      print_newline ();
      List.iter
        (fun (s, y) ->
          Printf.printf "spec %-24s yield %6.2f%%\n"
            (Sweep.Engine.spec_to_string s)
            (100.0 *. y))
        result.Sweep.Engine.spec_yields;
      Option.iter
        (fun y -> Printf.printf "overall yield %6.2f%%\n" (100.0 *. y))
        result.Sweep.Engine.yield
    end;
    match json_path with
    | None -> ()
    | Some "-" ->
      print_newline ();
      print_endline (Obs.Json.to_string (Sweep.Engine.to_json result))
    | Some path ->
      Obs.Json.to_file path (Sweep.Engine.to_json result);
      Printf.printf "\nsweep report written to %s\n" path
  in
  let deck_opt_arg =
    let doc = "Input netlist deck (alternative to --model)." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"DECK" ~doc)
  in
  let sparse_arg =
    Arg.(value & flag & info [ "sparse" ] ~doc:"Use the sparse factorization.")
  in
  let cache_arg =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Consult and populate the content-addressed model cache when \
             building from a deck.")
  in
  let vary_arg =
    Arg.(
      value & opt_all string []
      & info [ "vary" ] ~docv:"NAME=DIST"
          ~doc:
            "Sweep a symbol: NAME=pct:P (uniform ±P% around nominal), \
             NAME=uniform:LO:HI, NAME=normal:MEAN:STD, or \
             NAME=lognormal:MU:SIGMA.  Repeatable.  Default: every symbol \
             at pct:20.")
  in
  let mc_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "mc" ] ~docv:"N"
          ~doc:"Monte-Carlo sampling with N points (the default, N=1000).")
  in
  let lhs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "lhs" ] ~docv:"N" ~doc:"Latin-hypercube sampling with N points.")
  in
  let corners_arg =
    Arg.(
      value & flag
      & info [ "corners" ]
          ~doc:"Evaluate all 2^k corner combinations of the axis bounds.")
  in
  let grid_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "grid" ] ~docv:"N"
          ~doc:"Full cartesian grid, N points per axis.")
  in
  let measure_arg =
    Arg.(
      value & opt_all string []
      & info [ "measure" ] ~docv:"NAME"
          ~doc:
            "Performance measure to summarize (dc_gain, dc_gain_db, \
             dominant_pole_hz, unity_gain_frequency, phase_margin, \
             delay_50, rise_time, elmore_delay, or m0, m1, ...).  \
             Repeatable; default dc_gain, dominant_pole_hz, delay_50.")
  in
  let spec_arg =
    Arg.(
      value & opt_all string []
      & info [ "spec" ] ~docv:"MEASURE<=LIMIT"
          ~doc:
            "Yield requirement, e.g. 'delay_50<=1e-9' or 'dc_gain>=0.5'.  \
             Repeatable; the overall yield is the fraction of points \
             passing every spec.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Obs.Rng seed for the sampling stream; recorded in the JSON \
             report so runs are reproducible.")
  in
  let block_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "block" ] ~docv:"N"
          ~doc:"Batch kernel block size (default 256 lanes).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable sweep report here ('-' = stdout).")
  in
  let on_fault_arg =
    Arg.(
      value & opt string "skip"
      & info [ "on-fault" ] ~docv:"POLICY"
          ~doc:
            "What a failing point does to the sweep: 'fail_fast' aborts, \
             'skip' (default) quarantines the point into failed_points and \
             keeps going, 'retry' / 'retry:N' re-attempts N times (default \
             2) with Pad\xc3\xa9 order reduction before quarantining.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Record completed chunks in FILE (atomically) so an \
             interrupted sweep can be resumed with --resume.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore completed chunks from --checkpoint FILE and evaluate \
             only the remainder; the report is byte-identical to an \
             uninterrupted run.")
  in
  let worker_addr_arg =
    Arg.(
      value & opt_all string []
      & info [ "worker-addr" ] ~docv:"ADDR"
          ~doc:
            "Coordinator mode: evaluate chunks on the serving daemon at \
             ADDR (unix:PATH or tcp:HOST:PORT).  Repeatable, one worker \
             per address; the merged report is byte-identical to a local \
             run at any worker count, and the sweep survives worker loss \
             (see docs/PARALLELISM.md).  Requires --model.")
  in
  let chunk_timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "chunk-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Distributed mode: deadline per chunk RPC; an expired chunk \
             is retried or reassigned.")
  in
  let heartbeat_arg =
    Arg.(
      value & opt float 1.0
      & info [ "heartbeat" ] ~docv:"SECONDS"
          ~doc:"Distributed mode: idle worker liveness-ping cadence.")
  in
  let dist_retries_arg =
    Arg.(
      value & opt int 3
      & info [ "dist-retries" ] ~docv:"N"
          ~doc:
            "Distributed mode: consecutive transient failures before a \
             worker is declared dead and its chunks are reassigned.")
  in
  let doc =
    "Statistical sweep of a compiled model: Monte-Carlo, Latin-hypercube, \
     corner, or grid plans over element distributions, evaluated through \
     the batched SLP kernel into summaries and yield, with per-point fault \
     isolation, checkpoint/resume, and fault-tolerant distributed \
     execution over serving daemons (--worker-addr)."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ obs_args $ jobs_arg $ backend_arg $ deck_opt_arg $ model_arg
      $ order_arg $ sparse_arg $ cache_arg $ vary_arg $ mc_arg $ lhs_arg
      $ corners_arg $ grid_arg $ measure_arg $ spec_arg $ seed_arg $ block_arg
      $ json_arg $ on_fault_arg $ checkpoint_arg $ resume_arg
      $ worker_addr_arg $ chunk_timeout_arg $ heartbeat_arg $ dist_retries_arg)

let moments_cmd =
  let run obs deck count =
    with_obs obs @@ fun () ->
    let nl = or_die (read_netlist deck) in
    let mna = Circuit.Mna.build nl in
    let m = Awe.Moments.output_moments (Awe.Moments.compute ~count mna) in
    Array.iteri (fun k mk -> Printf.printf "m%-2d = %.12g\n" k mk) m
  in
  let count_arg =
    Arg.(value & opt int 8 & info [ "count"; "n" ] ~doc:"Number of moments.")
  in
  let doc = "Raw circuit moments of the designated output." in
  Cmd.v (Cmd.info "moments" ~doc)
    Term.(const run $ obs_args $ deck_arg $ count_arg)

(* ------------------------------------------------------------------ *)
(* Serving: the evaluation daemon and its client *)

let binary_version = "1.1.0"

(* Every schema this binary speaks, one place.  `awesym --version` prints
   the inventory, `awesym serve` answers it to pings, and mismatched
   peers reject each other by schema string — so version skew between a
   daemon and its clients is diagnosable from either end. *)
let version_inventory =
  [
    ("awesym", binary_version);
    ("artifact", "v" ^ string_of_int Awesymbolic.Artifact.version);
    ("kernel", Codegen.schema);
    ("sweep", Sweep.Engine.schema);
    ("opt", Opt.Request.schema);
    ("serve", Serve.Protocol.schema);
    ("reqtrace", Serve.Reqtrace.schema);
  ]

(* cmdliner's formatter wraps at ~78 columns but only breaks at spaces,
   so the whole string is one space-free token: the "one greppable line"
   property survives however many schemas accumulate. *)
let version_string =
  Printf.sprintf "awesym/%s(%s)" binary_version
    (String.concat ";"
       (List.filter_map
          (fun (k, v) ->
            if k = "awesym" then None
            else if k = "artifact" then Some (k ^ "-" ^ v)
            else Some v)
          version_inventory))

let socket_arg =
  let doc =
    "Daemon address: unix:PATH, tcp:HOST:PORT, or a bare Unix socket path."
  in
  Arg.(
    value
    & opt string ".awesym.sock"
    & info [ "socket" ] ~docv:"ADDR" ~doc)

let serve_cmd =
  let run jobs backend listen workers replicas max_batch linger_ms queue
      worker_queue client_inflight max_models gc_mb trace_log
      trace_log_max_mb =
    with_jobs jobs @@ fun () ->
    with_backend backend @@ fun () ->
    if max_batch < 1 || queue < 1 || linger_ms < 0.0 then
      die "serve: --max-batch and --queue must be >= 1, --linger-ms >= 0";
    if workers < 1 || replicas < 1 || worker_queue < 1 || client_inflight < 1
    then
      die
        "serve: --workers, --replicas, --worker-queue and --client-inflight \
         must be >= 1";
    if trace_log_max_mb < 1 then die "serve: --trace-log-max-mb must be >= 1";
    let listen_addr =
      match Serve.Transport.parse listen with
      | Ok a -> a
      | Error e -> die (Awesym_error.to_string e)
    in
    let config =
      {
        Serve.Server.listen = listen_addr;
        workers;
        replicas;
        batch =
          {
            Serve.Batcher.max_batch;
            linger_s = linger_ms /. 1e3;
            max_queue = queue;
          };
        admission = { Serve.Admission.per_client_inflight = client_inflight };
        worker_queue;
        max_models;
        cache_gc_bytes =
          (if gc_mb <= 0 then None else Some (gc_mb * 1024 * 1024));
        versions = version_inventory;
        trace_log;
        trace_log_max_bytes = trace_log_max_mb * 1024 * 1024;
        trace_capacity = 256;
      }
    in
    try Serve.Server.run ~log:prerr_endline config with
    | Unix.Unix_error (e, _, _) ->
      die (Printf.sprintf "serve: cannot bind %s: %s" listen
             (Unix.error_message e))
    | Awesym_error.Error e -> die (Awesym_error.to_string e)
  in
  let listen_arg =
    let doc =
      "Listen address: unix:PATH, tcp:HOST:PORT (tcp:HOST:0 binds an \
       ephemeral port, logged at startup), or a bare Unix socket path. \
       $(b,--socket) is an alias."
    in
    Arg.(
      value
      & opt string ".awesym.sock"
      & info [ "listen"; "socket" ] ~docv:"ADDR" ~doc)
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains; each owns a private model registry and \
             micro-batcher, and models shard across them by digest \
             (rendezvous hashing).")
  in
  let replicas_arg =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"N"
          ~doc:
            "Workers serving each model digest (capped at --workers); >1 \
             lets one hot model scale across shards at the cost of \
             duplicate resident kernels.")
  in
  let worker_queue_arg =
    Arg.(
      value & opt int 1024
      & info [ "worker-queue" ] ~docv:"N"
          ~doc:
            "Per-worker hand-off mailbox depth; when every replica's \
             mailbox is full, requests shed with an `overloaded` error.")
  in
  let client_inflight_arg =
    Arg.(
      value
      & opt int Serve.Admission.default_config.Serve.Admission.per_client_inflight
      & info [ "client-inflight" ] ~docv:"N"
          ~doc:
            "Per-connection in-flight request cap; a pipelining client \
             beyond it sheds `overloaded` while other clients keep \
             flowing.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int Serve.Batcher.default_config.Serve.Batcher.max_batch
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Pending points that force an immediate flush.")
  in
  let linger_arg =
    Arg.(
      value & opt float 2.0
      & info [ "linger-ms" ] ~docv:"MS"
          ~doc:
            "How long the oldest queued request waits for company before \
             its batch flushes.")
  in
  let queue_arg =
    Arg.(
      value & opt int Serve.Batcher.default_config.Serve.Batcher.max_queue
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-queue depth; beyond it requests are rejected with \
             an `overloaded` error (backpressure).")
  in
  let max_models_arg =
    Arg.(
      value & opt int 8
      & info [ "max-models" ] ~docv:"N"
          ~doc:"Resident compiled models (LRU beyond this).")
  in
  let gc_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-gc-mb" ] ~docv:"MB"
          ~doc:
            "Run `cache gc` with this budget at startup so an unattended \
             daemon bounds what it inherits from past compiles; 0 skips.")
  in
  let trace_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-log" ] ~docv:"FILE"
          ~doc:
            "Append each completed request trace as one JSONL line here \
             (schema awesymbolic-reqtrace/1, floats as IEEE-754 hex bits); \
             rotated to FILE.1 past --trace-log-max-mb.")
  in
  let trace_log_max_arg =
    Arg.(
      value & opt int 16
      & info [ "trace-log-max-mb" ] ~docv:"MB"
          ~doc:"Trace-log size that triggers rotation.")
  in
  let doc =
    "Run the model-serving daemon: a persistent process that keeps \
     compiled artifacts resident in sharded worker domains (Unix socket \
     or TCP, see --listen) and coalesces concurrent evaluation requests \
     into micro-batched kernel calls.  Results are bit-identical to \
     offline `awesym eval` at any worker count.  SIGTERM drains \
     gracefully."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ jobs_arg $ backend_arg $ listen_arg $ workers_arg
      $ replicas_arg $ max_batch_arg $ linger_arg $ queue_arg
      $ worker_queue_arg $ client_inflight_arg $ max_models_arg $ gc_arg
      $ trace_log_arg $ trace_log_max_arg)

let call_cmd =
  let run socket model_path bindings show_moments deadline_ms ping stats
      metrics traces_n trace_id shutdown =
    let fail e = die (Awesym_error.to_string e) in
    let with_client f =
      (* Retry with backoff: `call` right after `serve &` races the
         daemon's bind, and a restarting daemon is a transient, not an
         error worth surfacing. *)
      match Serve.Client.connect_retry socket with
      | Error e -> fail e
      | Ok c -> Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)
    in
    if ping then
      with_client @@ fun c ->
      match Serve.Client.ping c with
      | Error e -> fail e
      | Ok versions ->
        print_endline "pong";
        List.iter (fun (k, v) -> Printf.printf "  %s %s\n" k v) versions
    else if stats then
      with_client @@ fun c ->
      match Serve.Client.stats c with
      | Error e -> fail e
      | Ok s -> print_endline (Obs.Json.to_string s)
    else if metrics then
      with_client @@ fun c ->
      match Serve.Client.metrics c with
      | Error e -> fail e
      | Ok text -> print_string text
    else if traces_n <> None then
      with_client @@ fun c ->
      match Serve.Client.traces c ~limit:(Option.get traces_n) with
      | Error e -> fail e
      | Ok ts -> List.iter (fun tr -> print_endline (Obs.Json.to_string tr)) ts
    else if shutdown then
      with_client @@ fun c ->
      match Serve.Client.shutdown c with
      | Error e -> fail e
      | Ok () -> print_endline "draining"
    else begin
      let model_path =
        match model_path with
        | Some p -> p
        | None -> die "need --model PATH (an artifact path on the server)"
      in
      let trace =
        Option.map
          (fun id ->
            let id =
              if id = "" then Serve.Client.new_trace_id () else id
            in
            (* On stderr so stdout stays byte-identical to offline eval. *)
            Printf.eprintf "trace_id %s\n%!" id;
            { Serve.Protocol.trace_id = id; parent_span = "awesym.call" })
          trace_id
      in
      with_client @@ fun c ->
      let info =
        match Serve.Client.info c model_path with
        | Error e -> fail e
        | Ok i -> i
      in
      let names = info.Serve.Protocol.symbols in
      let v =
        point_of_bindings ~names ~nominals:info.Serve.Protocol.nominals
          bindings
      in
      match
        Serve.Client.eval c ?trace ?deadline_ms ~model:model_path [| v |]
      with
      | Error e -> fail e
      | Ok r ->
        print_point_eval ~model_path ~order:r.Serve.Protocol.order ~names
          ~values:v
          ~moments:r.Serve.Protocol.moments.(0)
          ~show_moments
    end
  in
  let moments_arg =
    Arg.(value & flag & info [ "moments" ] ~doc:"Also print the raw moments.")
  in
  let server_model_arg =
    let doc = "Artifact path, resolved on the server." in
    Arg.(value & opt (some string) None & info [ "model"; "m" ] ~docv:"PATH" ~doc)
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Relative deadline; the server answers a `timeout` error \
             instead of evaluating once it expires.")
  in
  let ping_arg =
    Arg.(value & flag
         & info [ "ping" ] ~doc:"Liveness probe: print the server's versions.")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Print the server's metrics snapshot as JSON.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the server's metric surface in Prometheus text \
             exposition format (counters, gauges, latency quantiles).")
  in
  let traces_arg =
    Arg.(
      value
      & opt ~vopt:(Some 16) (some int) None
      & info [ "traces" ] ~docv:"N"
          ~doc:
            "Print the server's N most recent completed request traces, \
             one JSON object per line (default 16).")
  in
  let trace_id_arg =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:
            "Attach a trace context to the evaluation so it can be found \
             in the server's trace ring / --trace-log.  With no ID a \
             fresh one is generated; either way it is echoed on stderr.")
  in
  let shutdown_arg =
    Arg.(value & flag
         & info [ "shutdown" ] ~doc:"Ask the server to drain and exit.")
  in
  let doc =
    "Call a running `awesym serve` daemon.  The default operation \
     evaluates a model at symbol values and prints exactly what offline \
     `awesym eval` prints — floats cross the wire as IEEE-754 bit \
     patterns, so the outputs are byte-identical."
  in
  Cmd.v (Cmd.info "call" ~doc)
    Term.(
      const run $ socket_arg $ server_model_arg $ bindings_arg $ moments_arg
      $ deadline_arg $ ping_arg $ stats_arg $ metrics_arg $ traces_arg
      $ trace_id_arg $ shutdown_arg)

let top_cmd =
  let module J = Obs.Json in
  (* Pull a number out of a nested stats payload; absent fields render
     as 0 rather than failing, so `top` works across schema growth. *)
  let rec path j = function
    | [] -> Some j
    | name :: rest -> (
      match J.member name j with Some j' -> path j' rest | None -> None)
  in
  let num j p = match path j p with Some (J.Num v) -> v | _ -> 0.0 in
  let render socket s =
    let lat p = num s [ "metrics"; "histograms"; "serve.latency_us"; p ] in
    Printf.printf "awesym top — %s   uptime %.1fs\n" socket
      (num s [ "uptime_s" ]);
    Printf.printf "requests %12.0f   points %12.0f   qps %10.1f\n"
      (num s [ "requests" ]) (num s [ "points" ]) (num s [ "qps" ]);
    Printf.printf
      "queue_depth %8.0f   inflight %8.0f   resident_models %4.0f   \
       batches %8.0f\n"
      (num s [ "gauges"; "serve.queue_depth" ])
      (num s [ "gauges"; "batcher.inflight" ])
      (num s [ "gauges"; "registry.resident_models" ])
      (num s [ "batches" ]);
    Printf.printf
      "registry hit/miss/evict %.0f/%.0f/%.0f   rejected \
       timeout/overloaded %.0f/%.0f   traces %.0f\n"
      (num s [ "registry"; "hit" ])
      (num s [ "registry"; "miss" ])
      (num s [ "registry"; "evict" ])
      (num s [ "rejected"; "timeout" ])
      (num s [ "rejected"; "overloaded" ])
      (num s [ "traces_completed" ]);
    let n = num s [ "metrics"; "histograms"; "serve.latency_us"; "count" ] in
    if n > 0.0 then
      Printf.printf
        "latency_us p50 %10.1f   p90 %10.1f   p99 %10.1f   (n=%.0f)\n"
        (lat "p50") (lat "p90") (lat "p99") n;
    print_newline ()
  in
  let run socket interval count =
    let fail e = die (Awesym_error.to_string e) in
    let once () =
      match Serve.Client.connect_retry socket with
      | Error e -> fail e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            match Serve.Client.stats c with
            | Error e -> fail e
            | Ok s -> render socket s)
    in
    match interval with
    | None -> once ()
    | Some dt ->
      if dt <= 0.0 then die "top: --interval must be > 0";
      let remaining = ref count in
      while !remaining <> 0 do
        once ();
        if !remaining > 0 then decr remaining;
        if !remaining <> 0 then Unix.sleepf dt
      done
  in
  let interval_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:"Refresh every SECONDS instead of printing once.")
  in
  let count_arg =
    Arg.(
      value & opt int (-1)
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:"With --interval, stop after N refreshes (default: forever).")
  in
  let doc =
    "Human one-shot (or --interval) view of a running daemon's occupancy \
     and latency: requests, queue depth, in-flight batches, resident \
     models, and latency quantiles — the same data `awesym call --stats` \
     and `--metrics` expose machine-readably."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ socket_arg $ interval_arg $ count_arg)

let cache_cmd =
  let gc =
    let run max_mb dir =
      let stats =
        try Awesymbolic.Cache.gc ?dir ~max_bytes:(max_mb * 1024 * 1024) ()
        with Invalid_argument msg -> die msg
      in
      Printf.printf
        "cache gc: scanned %d entries, deleted %d; %d -> %d bytes (budget \
         %d MiB)\n"
        stats.Awesymbolic.Cache.scanned stats.Awesymbolic.Cache.deleted
        stats.Awesymbolic.Cache.bytes_before stats.Awesymbolic.Cache.bytes_after
        max_mb
    in
    let max_mb_arg =
      Arg.(
        value & opt int 256
        & info [ "max-mb" ] ~docv:"MB"
            ~doc:"Size budget; oldest entries beyond it are deleted.")
    in
    let dir_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "dir" ] ~docv:"DIR"
            ~doc:
              "Cache directory (default: \\$AWESYM_CACHE_DIR, else \
               .awesym-cache).")
    in
    let doc =
      "Evict oldest-used model-cache entries until the cache fits a size \
       budget.  Deletion is atomic per entry; a concurrent compile is \
       never corrupted.  `awesym serve` runs this at startup."
    in
    Cmd.v (Cmd.info "gc" ~doc) Term.(const run $ max_mb_arg $ dir_arg)
  in
  let doc = "Operate on the content-addressed model cache." in
  Cmd.group (Cmd.info "cache" ~doc) [ gc ]

(* ------------------------------------------------------------------ *)
(* Optimization: sizing and yield maximization (see docs/OPTIMIZE.md) *)

let optimize_cmd =
  let module J = Obs.Json in
  let jnum j name =
    match J.member name j with Some (J.Num v) -> Some v | _ -> None
  in
  let jstr j name =
    match J.member name j with Some (J.Str s) -> Some s | _ -> None
  in
  let jlist j name =
    match J.member name j with Some (J.List l) -> l | _ -> []
  in
  let jint ?(default = 0) j name =
    match jnum j name with Some v -> int_of_float v | None -> default
  in
  let print_axes indent axes =
    List.iter
      (fun a ->
        match (jstr a "name", J.member "dist" a) with
        | Some name, Some dj -> (
          match Sweep.Dist.of_json dj with
          | Ok d -> Printf.printf "%s%s ~ %s\n" indent name (describe_dist d)
          | Error _ -> ())
        | _ -> ())
      axes
  in
  (* Human rendering reads the report JSON (not the typed result), so the
     offline and remote paths print identically from the same bytes. *)
  let print_report report =
    match jstr report "mode" with
    | Some "size" ->
      let runs = jlist report "runs" in
      let best = jint report "best" in
      Printf.printf "optimize size: status %s (best of %d start%s: restart %d)\n"
        (Option.value ~default:"?" (jstr report "status"))
        (List.length runs)
        (if List.length runs = 1 then "" else "s")
        best;
      (match List.nth_opt runs best with
      | Some r ->
        Printf.printf
          "objective %.6g after %d accepted steps, %d evaluations\n"
          (Option.value ~default:nan (jnum report "objective"))
          (jint r "iters") (jint r "evals")
      | None -> ());
      print_newline ();
      print_endline "sized variables:";
      List.iter
        (fun v ->
          match (jstr v "name", jnum v "value") with
          | Some n, Some x -> Printf.printf "  %-20s = %g\n" n x
          | _ -> ())
        (jlist report "variables");
      (match jlist report "measures" with
      | [] -> ()
      | ms ->
        print_newline ();
        print_endline "measures at the sized point:";
        List.iter
          (fun m ->
            match (jstr m "name", jnum m "value") with
            | Some n, Some x -> Printf.printf "  %-20s = %g\n" n x
            | _ -> ())
          ms)
    | Some "yield" ->
      Printf.printf "optimize yield: %d points/iteration, seed %d\n"
        (jint report "points") (jint report "seed");
      print_newline ();
      Printf.printf "%6s %10s %10s %10s\n" "iter" "yield" "passing" "survivors";
      List.iter
        (fun it ->
          Printf.printf "%6d %9.2f%% %10d %10d\n" (jint it "it")
            (100.0 *. Option.value ~default:nan (jnum it "yield"))
            (jint it "passing") (jint it "survivors"))
        (jlist report "iterations");
      print_newline ();
      Printf.printf "yield %.2f%% -> %.2f%% (%s)\n"
        (100.0 *. Option.value ~default:nan (jnum report "initial_yield"))
        (100.0 *. Option.value ~default:nan (jnum report "final_yield"))
        (match J.member "improved" report with
        | Some (J.Bool true) -> "improved"
        | _ -> "not improved");
      print_endline "re-centered sampling axes:";
      print_axes "  " (jlist report "final_axes")
    | _ -> ()
  in
  let emit json_path report =
    print_report report;
    match json_path with
    | None -> ()
    | Some "-" ->
      print_newline ();
      print_endline (J.to_string report)
    | Some path ->
      J.to_file path report;
      Printf.printf "\noptimization report written to %s\n" path
  in
  let run obs jobs backend deck model_path order sparse cache mode varies
      specs goal area_weight penalty_weight seed restarts iters step tol
      points shrink require json_path checkpoint resume remote deadline_ms =
    with_obs obs @@ fun () ->
    with_jobs jobs @@ fun () ->
    with_backend backend @@ fun () ->
    let specs =
      List.map (fun s -> or_die (Sweep.Engine.spec_of_string s)) specs
    in
    let goal = Option.map (fun g -> or_die (Opt.Objective.goal_of_string g)) goal in
    if resume && checkpoint = None then
      die "--resume needs --checkpoint FILE to resume from";
    (* Axes resolve against symbol names/nominals; pct varies need the
       nominal, which comes from the local model or the daemon's info. *)
    let axes_of ~names ~nominals =
      let nominal_of name =
        let rec go k =
          if k >= Array.length names then
            die
              (Printf.sprintf "unknown symbol %s (model has: %s)" name
                 (String.concat ", " (Array.to_list names)))
          else if names.(k) = name then nominals.(k)
          else go (k + 1)
        in
        go 0
      in
      if varies = [] then
        Array.to_list
          (Array.mapi
             (fun k name ->
               { Sweep.Plan.name;
                 dist = Sweep.Dist.around ~nominal:nominals.(k) ~pct:20.0 })
             names)
      else
        List.map
          (fun v ->
            match or_die (parse_vary v) with
            | name, `Dist d -> { Sweep.Plan.name; dist = d }
            | name, `Pct p ->
              { Sweep.Plan.name;
                dist = Sweep.Dist.around ~nominal:(nominal_of name) ~pct:p })
          varies
    in
    let request_of axes =
      match mode with
      | `Size ->
        let objective =
          Opt.Objective.make ?goal ~area_weight ~penalty_weight ~specs ()
        in
        let cfg = Opt.Sizing.default_config ~axes objective in
        Opt.Request.Size
          {
            cfg with
            Opt.Sizing.seed;
            restarts;
            max_iters = Option.value iters ~default:cfg.Opt.Sizing.max_iters;
            step0 = step;
            tol;
          }
      | `Yield ->
        let cfg = Opt.Recenter.default_config ~axes ~specs in
        Opt.Request.Yield
          {
            cfg with
            Opt.Recenter.points;
            iters = Option.value iters ~default:cfg.Opt.Recenter.iters;
            shrink;
            seed;
          }
    in
    match remote with
    | Some addr ->
      if checkpoint <> None || resume then
        die "--checkpoint/--resume run locally; drop them with --remote";
      let model_path =
        match model_path with
        | Some p -> p
        | None -> die "--remote needs --model PATH (resolved on the server)"
      in
      let fail e = die (Awesym_error.to_string e) in
      (match Serve.Client.connect_retry addr with
      | Error e -> fail e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            let info =
              match Serve.Client.info c model_path with
              | Error e -> fail e
              | Ok i -> i
            in
            let axes =
              axes_of ~names:info.Serve.Protocol.symbols
                ~nominals:info.Serve.Protocol.nominals
            in
            let req = request_of axes in
            match
              Serve.Client.optimize c
                {
                  Serve.Protocol.op_model = model_path;
                  op_request = Opt.Request.to_json req;
                  op_deadline_ms = deadline_ms;
                }
            with
            | Error e -> fail e
            | Ok o ->
              let report = o.Serve.Protocol.or_report in
              emit json_path report;
              Opt.Request.check_require ~require report))
    | None ->
      let model =
        match (model_path, deck) with
        | Some _, Some _ -> die "give either a DECK or --model, not both"
        | None, None -> die "need a DECK or --model FILE"
        | Some p, None -> load_model p
        | None, Some d ->
          let nl = or_die (read_netlist d) in
          if cache then Awesymbolic.Model.build_cached ~order ~sparse nl
          else Awesymbolic.Model.build ~order ~sparse nl
      in
      let names =
        Array.map Symbolic.Symbol.name (Awesymbolic.Model.symbols model)
      in
      let nominals = Awesymbolic.Model.nominal_values model in
      let req = request_of (axes_of ~names ~nominals) in
      let report = Opt.Request.run ?checkpoint ~resume model req in
      emit json_path report;
      Opt.Request.check_require ~require report
  in
  let deck_opt_arg =
    let doc = "Input netlist deck (alternative to --model)." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"DECK" ~doc)
  in
  let sparse_arg =
    Arg.(value & flag & info [ "sparse" ] ~doc:"Use the sparse factorization.")
  in
  let cache_arg =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Consult and populate the content-addressed model cache when \
             building from a deck.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("size", `Size); ("yield", `Yield) ]) `Size
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,size) (default): projected-gradient sizing of the --vary \
             symbols against --goal/--spec.  $(b,yield): iteratively \
             re-center the --vary sampling distributions toward the --spec \
             region to maximize Monte-Carlo yield.")
  in
  let vary_arg =
    Arg.(
      value & opt_all string []
      & info [ "vary" ] ~docv:"NAME=DIST"
          ~doc:
            "Design variable and its range: NAME=pct:P, NAME=uniform:LO:HI, \
             NAME=normal:MEAN:STD, or NAME=lognormal:MU:SIGMA.  In size \
             mode the distribution's bounds become the box constraints; in \
             yield mode it is the sampling distribution.  Repeatable; \
             default: every symbol at pct:20.")
  in
  let spec_arg =
    Arg.(
      value & opt_all string []
      & info [ "spec" ] ~docv:"MEASURE<=LIMIT"
          ~doc:
            "Design requirement, e.g. 'phase_margin>=60'.  Repeatable.  \
             Size mode penalizes violations (squared normalized hinge); \
             yield mode re-centers toward points passing every spec.")
  in
  let goal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "goal" ] ~docv:"DIR:MEASURE"
          ~doc:
            "Size-mode scalar goal, e.g. 'minimize:delay_50' or \
             'maximize:unity_gain_frequency'.")
  in
  let area_weight_arg =
    Arg.(
      value & opt float 0.0
      & info [ "area-weight" ] ~docv:"W"
          ~doc:
            "Size mode: weight of the area proxy (sum of |value|/|nominal| \
             over the varied symbols).")
  in
  let penalty_weight_arg =
    Arg.(
      value & opt float 1.0
      & info [ "penalty-weight" ] ~docv:"W"
          ~doc:"Size mode: weight of the squared spec-violation hinges.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Obs.Rng seed for restart starting points (size) or sweep \
             sampling (yield); recorded in the report.")
  in
  let restarts_arg =
    Arg.(
      value & opt int 0
      & info [ "restarts" ] ~docv:"N"
          ~doc:
            "Size mode: extra seeded starting points beyond the nominal \
             one; the best run wins.")
  in
  let iters_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "iters" ] ~docv:"N"
          ~doc:
            "Iteration budget: accepted descent steps per restart (size, \
             default 50) or re-centering iterations (yield, default 4).")
  in
  let step_arg =
    Arg.(
      value & opt float 0.25
      & info [ "step" ] ~docv:"S"
          ~doc:"Size mode: initial normalized step length (axes map to \
                [0,1]).")
  in
  let tol_arg =
    Arg.(
      value & opt float 1e-6
      & info [ "tol" ] ~docv:"T"
          ~doc:
            "Size mode: convergence tolerance on the projected-gradient \
             infinity norm in normalized coordinates.")
  in
  let points_arg =
    Arg.(
      value & opt int 1000
      & info [ "points" ] ~docv:"N"
          ~doc:"Yield mode: Monte-Carlo points per iteration.")
  in
  let shrink_arg =
    Arg.(
      value & opt float 1.0
      & info [ "shrink" ] ~docv:"F"
          ~doc:
            "Yield mode: per-iteration width/sigma multiplier in (0, 1] \
             (cross-entropy style contraction; 1 = re-center only).")
  in
  let require_arg =
    Arg.(
      value & flag
      & info [ "require-convergence" ]
          ~doc:
            "Size mode: exit with a classified max_iters / no_descent \
             error when the best restart did not converge (the trajectory \
             is still written to --checkpoint/--json first).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable optimization report (schema \
             awesymbolic-opt/1, floats also as IEEE-754 hex bits) here \
             ('-' = stdout).  Byte-identical across --jobs counts, \
             --backend choices, and local vs --remote execution.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Record completed restarts/iterations in FILE (atomically, \
             .opt extension recommended — `cache gc` ages them out) so an \
             interrupted optimization resumes with --resume.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore completed units from --checkpoint FILE and compute \
             only the remainder; the report is byte-identical to an \
             uninterrupted run.")
  in
  let remote_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "remote" ] ~docv:"ADDR"
          ~doc:
            "Run the optimization on the serving daemon at ADDR (unix:PATH \
             or tcp:HOST:PORT) instead of locally; requires --model with a \
             server-side artifact path.  The report bytes are identical to \
             a local run.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "With --remote: relative deadline; the server answers a \
             `timeout` error instead of starting once it expires.")
  in
  let doc =
    "Closed-loop design on a compiled model: gradient-based sizing \
     (adjoint sensitivities through the exact compiled Jacobian, \
     projected-gradient descent with Armijo line search, deterministic \
     seeded restarts) or Monte-Carlo yield maximization (iterative \
     re-centering of the sampling distributions toward the spec region \
     through the batched sweep engine).  Reports are byte-identical \
     across --jobs, --backend, and local vs --remote runs; see \
     docs/OPTIMIZE.md."
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const run $ obs_args $ jobs_arg $ backend_arg $ deck_opt_arg $ model_arg
      $ order_arg $ sparse_arg $ cache_arg $ mode_arg $ vary_arg $ spec_arg
      $ goal_arg $ area_weight_arg $ penalty_weight_arg $ seed_arg
      $ restarts_arg $ iters_arg $ step_arg $ tol_arg $ points_arg
      $ shrink_arg $ require_arg $ json_arg $ checkpoint_arg $ resume_arg
      $ remote_arg $ deadline_arg)

let () =
  let doc = "compiled symbolic circuit analysis via asymptotic waveform evaluation" in
  let info = Cmd.info "awesym" ~version:version_string ~doc in
  exit (Cmd.eval (Cmd.group info
    [ awe_cmd; symbolic_cmd; exact_cmd; ac_cmd; tran_cmd; rank_cmd; linearize_cmd;
      distortion_cmd; sens_cmd; validate_cmd; macromodel_cmd; noise_cmd;
      moments_cmd; compile_cmd; eval_cmd; sweep_cmd; optimize_cmd; serve_cmd;
      call_cmd; top_cmd; cache_cmd ]))
