test/test_circuit.ml: Alcotest Array Awe Circuit Float List Numeric Option Printf QCheck2 QCheck_alcotest Spice Symbolic
