test/test_awe.ml: Alcotest Array Awe Circuit Exact Float Format List Numeric Option Printf QCheck2 QCheck_alcotest Spice
