test/test_exact.ml: Alcotest Array Awe Circuit Exact Float List Numeric Printf QCheck2 QCheck_alcotest Spice String Symbolic
