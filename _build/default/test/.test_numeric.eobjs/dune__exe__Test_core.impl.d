test/test_core.ml: Alcotest Array Awe Awesymbolic Circuit Exact Float Format Fun List Numeric Option Printf QCheck2 QCheck_alcotest Spice String Symbolic
