test/test_integration.ml: Alcotest Array Awe Awesymbolic Circuit Filename Float Format Fun List Nonlinear Numeric Option Printf QCheck2 QCheck_alcotest Spice Symbolic Sys Unix
