test/test_nonlinear.mli:
