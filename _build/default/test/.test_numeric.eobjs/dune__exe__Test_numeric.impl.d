test/test_numeric.ml: Alcotest Array Circuit Float Format List Numeric Printf QCheck2 QCheck_alcotest
