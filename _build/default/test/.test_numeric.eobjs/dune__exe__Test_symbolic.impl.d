test/test_symbolic.ml: Alcotest Array Float Format List Option QCheck2 QCheck_alcotest String Symbolic
