test/test_nonlinear.ml: Alcotest Array Awe Awesymbolic Circuit Float Fun List Nonlinear Numeric Option Printf Spice String Symbolic
