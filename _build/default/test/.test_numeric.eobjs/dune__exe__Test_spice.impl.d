test/test_spice.ml: Alcotest Array Circuit Float Format List Numeric Printf Spice
