(* Tests for the exact symbolic baseline: Bareiss elimination, symbolic
   transfer functions (the paper's Eqs. 5 and 6), symbolic moments, and the
   unreliable-pruning demonstration. *)

module Mpoly = Symbolic.Mpoly
module Monomial = Symbolic.Monomial
module Ratfun = Symbolic.Ratfun
module Sym = Symbolic.Symbol
module Builders = Circuit.Builders
module Netlist = Circuit.Netlist
module Parser = Circuit.Parser
module Cx = Numeric.Cx

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let sym = Sym.intern
let mono l = Monomial.of_list (List.map (fun (n, e) -> (sym n, e)) l)

(* ------------------------------------------------------------------ *)
(* Bareiss *)

let const_m c = Mpoly.const c

let test_bareiss_numeric_det () =
  let m =
    [| [| const_m 4.0; const_m 3.0 |]; [| const_m 6.0; const_m 3.0 |] |]
  in
  match Mpoly.to_const (Exact.Bareiss.det m) with
  | Some d -> check_float "det" (-6.0) d
  | None -> Alcotest.fail "expected constant determinant"

let test_bareiss_symbolic_det () =
  (* det [[x, 1], [1, x]] = x² − 1. *)
  let x = Mpoly.of_symbol (sym "x") in
  let m = [| [| x; Mpoly.one |]; [| Mpoly.one; x |] |] in
  let expected = Mpoly.sub (Mpoly.pow x 2) Mpoly.one in
  Alcotest.(check bool) "x²−1" true (Mpoly.equal (Exact.Bareiss.det m) expected)

let test_bareiss_det_3x3 () =
  (* Vandermonde(1, x, y): det = (x−1)(y−1)(y−x). *)
  let x = Mpoly.of_symbol (sym "x") and y = Mpoly.of_symbol (sym "y") in
  let row v = [| Mpoly.one; v; Mpoly.mul v v |] in
  let m = [| row Mpoly.one; row x; row y |] in
  let expected =
    Mpoly.mul
      (Mpoly.sub x Mpoly.one)
      (Mpoly.mul (Mpoly.sub y Mpoly.one) (Mpoly.sub y x))
  in
  Alcotest.(check bool) "vandermonde" true
    (Mpoly.equal (Exact.Bareiss.det m) expected)

let test_bareiss_singular () =
  let x = Mpoly.of_symbol (sym "x") in
  let m = [| [| x; x |]; [| x; x |] |] in
  Alcotest.(check bool) "singular" true (Mpoly.is_zero (Exact.Bareiss.det m))

let test_bareiss_solve () =
  (* [[2, 1], [1, 1]]·v = [x+1, 1] has solution v = [x, 1−x]. *)
  let x = Mpoly.of_symbol (sym "x") in
  let a =
    [| [| const_m 2.0; Mpoly.one |]; [| Mpoly.one; Mpoly.one |] |]
  in
  let b = [| Mpoly.add x Mpoly.one; Mpoly.one |] in
  let nums, den = Exact.Bareiss.solve_cramer a b in
  let x0 = Ratfun.make nums.(0) den and x1 = Ratfun.make nums.(1) den in
  Alcotest.(check bool) "x0 = x" true (Ratfun.equal x0 (Ratfun.of_symbol (sym "x")));
  Alcotest.(check bool) "x1 = 1−x" true
    (Ratfun.equal x1 (Ratfun.sub Ratfun.one (Ratfun.of_symbol (sym "x"))))

let test_bareiss_det_permutation_sign () =
  (* A matrix needing a row swap before any pivot exists: det tracks the
     permutation sign. *)
  let x = Mpoly.of_symbol (sym "x") in
  let m = [| [| Mpoly.zero; x |]; [| Mpoly.one; Mpoly.zero |] |] in
  let expected = Mpoly.neg x in
  Alcotest.(check bool) "det = -x" true
    (Mpoly.equal (Exact.Bareiss.det m) expected)

let test_bareiss_det_matches_lu () =
  (* Constant matrices: fraction-free det equals dense LU det. *)
  let rand =
    let s = ref 42 in
    fun () ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      (float_of_int !s /. float_of_int 0x3FFFFFFF) -. 0.5
  in
  for n = 2 to 6 do
    let entries = Array.init n (fun _ -> Array.init n (fun _ -> rand ())) in
    let poly_m = Array.map (Array.map Mpoly.const) entries in
    let lu_det = Numeric.Lu.det (Numeric.Lu.factor (Numeric.Matrix.of_arrays entries)) in
    match Mpoly.to_const (Exact.Bareiss.det poly_m) with
    | Some d -> check_float ~tol:1e-9 (Printf.sprintf "det %dx%d" n n) lu_det d
    | None -> Alcotest.fail "expected constant det"
  done

let prop_bareiss_multilinear_expansion =
  (* det of a random constant matrix with one symbolic row is linear in that
     symbol: det = det(x=0) + x·(det(x=1) − det(x=0)). *)
  QCheck2.Test.make ~name:"bareiss: det linear in a single symbolic row"
    ~count:50
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 1000))
    (fun (n, seed) ->
      let s = ref (seed + 1) in
      let rand () =
        s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
        (float_of_int !s /. float_of_int 0x3FFFFFFF) -. 0.5
      in
      let base = Array.init n (fun _ -> Array.init n (fun _ -> rand ())) in
      let row = !s mod n in
      let x = sym "x" in
      let m =
        Array.mapi
          (fun i r ->
            Array.map
              (fun v ->
                if i = row then Mpoly.scale v (Mpoly.of_symbol x)
                else Mpoly.const v)
              r)
          base
      in
      let d = Exact.Bareiss.det m in
      (* degree in x must be exactly <= 1, and evaluation must interpolate *)
      let at v = Mpoly.eval d (fun _ -> v) in
      let d0 = at 0.0 and d1 = at 1.0 in
      let mid = at 0.5 in
      Mpoly.degree_in d x <= 1
      && Float.abs (mid -. (0.5 *. (d0 +. d1)))
         <= 1e-9 *. Float.max 1.0 (Float.abs d1))

(* ------------------------------------------------------------------ *)
(* Transfer functions: the paper's Eq. (5) and Eq. (6) *)

let test_eq5_full_symbolic () =
  let nl = Builders.fig1 () in
  let tf = Exact.Network.transfer_function ~all_symbolic:true nl in
  (* H = G1G2 / (C1C2 s² + (G2C1 + G2C2 + G1C2) s + G1G2)  — Eq. (5). *)
  Alcotest.(check int) "denominator degree 2" 2 (Exact.Network.order tf);
  let g1g2 = Mpoly.of_terms [ (1.0, mono [ ("G1", 1); ("G2", 1) ]) ] in
  let d1 =
    Mpoly.of_terms
      [ (1.0, mono [ ("G2", 1); ("C1", 1) ]);
        (1.0, mono [ ("G2", 1); ("C2", 1) ]);
        (1.0, mono [ ("G1", 1); ("C2", 1) ]) ]
  in
  let d2 = Mpoly.of_terms [ (1.0, mono [ ("C1", 1); ("C2", 1) ]) ] in
  (* Both sides are defined up to one common constant; normalize by the
     numerator's content. *)
  let scale = Mpoly.content tf.Exact.Network.num.(0) in
  let norm p = Mpoly.scale (1.0 /. scale) p in
  Alcotest.(check bool) "numerator = G1·G2" true
    (Mpoly.equal (norm tf.Exact.Network.num.(0)) g1g2);
  Alcotest.(check bool) "den s⁰ = G1·G2" true
    (Mpoly.equal (norm tf.Exact.Network.den.(0)) g1g2);
  Alcotest.(check bool) "den s¹ = G2C1 + G2C2 + G1C2" true
    (Mpoly.equal (norm tf.Exact.Network.den.(1)) d1);
  Alcotest.(check bool) "den s² = C1·C2" true
    (Mpoly.equal (norm tf.Exact.Network.den.(2)) d2);
  (* The paper's structural claim: all coefficients multi-linear. *)
  Array.iter
    (fun p -> Alcotest.(check bool) "multilinear" true (Mpoly.is_multilinear p))
    (Array.append tf.Exact.Network.num tf.Exact.Network.den)

let test_eq6_mixed () =
  (* Eq. (6): set G1 = 5 numerically, keep the rest symbolic. *)
  let nl = Builders.fig1 ~g1:5.0 () in
  let nl =
    List.fold_left
      (fun nl name -> Netlist.mark_symbolic nl name (sym name))
      nl [ "G2"; "C1"; "C2" ]
  in
  let tf = Exact.Network.transfer_function nl in
  let scale = Mpoly.content tf.Exact.Network.num.(0) /. 5.0 in
  let norm p = Mpoly.scale (1.0 /. scale) p in
  let expected_num = Mpoly.of_terms [ (5.0, mono [ ("G2", 1) ]) ] in
  let expected_d1 =
    Mpoly.of_terms
      [ (1.0, mono [ ("G2", 1); ("C1", 1) ]);
        (1.0, mono [ ("G2", 1); ("C2", 1) ]);
        (5.0, mono [ ("C2", 1) ]) ]
  in
  Alcotest.(check bool) "num = 5·G2" true
    (Mpoly.equal (norm tf.Exact.Network.num.(0)) expected_num);
  Alcotest.(check bool) "den s¹ = G2C1 + G2C2 + 5C2" true
    (Mpoly.equal (norm tf.Exact.Network.den.(1)) expected_d1)

let test_tf_matches_ac () =
  (* Numeric evaluation of the exact symbolic TF must equal direct AC
     analysis, on a circuit with controlled sources. *)
  let nl =
    Parser.parse_string
      {|
V1 in 0 1
R1 in a 1k
C1 a 0 2p
G1 b 0 a 0 1m
R2 b 0 10k
C2 b 0 1p
L1 b out 1u
R3 out 0 50
.output v(out)
|}
  in
  let tf = Exact.Network.transfer_function nl in
  let mna = Circuit.Mna.build nl in
  let env _ = Alcotest.fail "no symbols expected" in
  List.iter
    (fun f ->
      let sv = Cx.make 0.0 (2.0 *. Float.pi *. f) in
      let ex = Spice.Ac.transfer mna sv in
      let got = Exact.Network.eval tf env sv in
      if Cx.norm (Cx.sub ex got) > 1e-6 *. Float.max 1e-9 (Cx.norm ex) then
        Alcotest.failf "H mismatch at %g Hz" f)
    [ 1e3; 1e6; 1e8; 1e9 ]

let test_tf_poles_match_awe () =
  (* Fig. 1 with numbers: exact denominator roots = AWE order-2 poles. *)
  let nl = Builders.fig1 ~g1:2.0 ~g2:3.0 ~c1:0.5 ~c2:1.5 () in
  let tf = Exact.Network.transfer_function nl in
  let env _ = 0.0 in
  let exact_poles =
    Exact.Network.poles tf env |> Array.map (fun (p : Cx.t) -> p.Cx.re)
    |> Array.to_list |> List.sort compare
  in
  let rom = (Awe.Driver.analyze ~order:2 nl).Awe.Driver.rom in
  let awe_poles =
    Array.map (fun (p : Cx.t) -> p.Cx.re) rom.Awe.Rom.poles
    |> Array.to_list |> List.sort compare
  in
  List.iter2 (fun a b -> check_float ~tol:1e-6 "pole" a b) exact_poles awe_poles

let test_tf_physical_values_ladder () =
  (* Regression: picofarad-scale coefficients once lost their constant term
     to over-aggressive rounding-dust chopping, planting a bogus pole at the
     origin.  The exact TF of a physical ladder must match AC analysis and
     have its dominant pole where high-order AWE puts it. *)
  let nl = Builders.rc_ladder ~sections:6 ~r:100.0 ~c:1e-12 () in
  let tf = Exact.Network.transfer_function nl in
  let env _ = 0.0 in
  let mna = Circuit.Mna.build nl in
  List.iter
    (fun f ->
      let sv = Cx.make 0.0 (2.0 *. Float.pi *. f) in
      let ex = Spice.Ac.transfer mna sv in
      let got = Exact.Network.eval tf env sv in
      if Cx.norm (Cx.sub ex got) > 1e-6 *. Float.max 1e-9 (Cx.norm ex) then
        Alcotest.failf "H mismatch at %g Hz" f)
    [ 1e6; 1e8; 1e9; 1e10 ];
  let dominant =
    Exact.Network.poles tf env
    |> Array.fold_left (fun acc p -> Float.min acc (Cx.norm p)) Float.infinity
  in
  let rom = (Awe.Driver.analyze ~order:5 nl).Awe.Driver.rom in
  let awe_dom = Cx.norm (Awe.Rom.dominant_pole rom) in
  check_float ~tol:1e-6 "dominant pole agrees with AWE" awe_dom dominant

let test_symbolic_moments_match_numeric () =
  (* Exact symbolic moments evaluated at the numbers = numeric AWE moments. *)
  let nl = Builders.fig1 () in
  let nl = Netlist.mark_symbolic nl "C1" (sym "C1") in
  let nl = Netlist.mark_symbolic nl "G2" (sym "G2") in
  let tf = Exact.Network.transfer_function nl in
  let sym_moments = Exact.Network.moments ~count:6 tf in
  List.iter
    (fun (c1v, g2v) ->
      let env s =
        match Sym.name s with
        | "C1" -> c1v
        | "G2" -> g2v
        | other -> Alcotest.failf "unexpected symbol %s" other
      in
      let nl_num =
        Builders.fig1 ~c1:c1v ~g2:g2v ()
      in
      let m_num =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:6 (Circuit.Mna.build nl_num))
      in
      Array.iteri
        (fun k rf ->
          check_float ~tol:1e-9
            (Printf.sprintf "m%d at C1=%g G2=%g" k c1v g2v)
            m_num.(k) (Ratfun.eval rf env))
        sym_moments)
    [ (1.0, 1.0); (2.0, 0.5); (0.1, 10.0); (5.0, 5.0) ]

(* ------------------------------------------------------------------ *)
(* Pruning unreliability (the paper's Sec. 1 argument) *)

let test_prune_reduces_terms () =
  let nl = Builders.rc_ladder ~sections:4 ~r:1.0 ~c:1.0 () in
  let tf = Exact.Network.transfer_function ~all_symbolic:true nl in
  let before = Exact.Prune.term_count tf in
  (* Nominal point with widely spread element values so term magnitudes
     differ (uniform values would make every term equal). *)
  let env s =
    let name = Sym.name s in
    let k = int_of_string (String.sub name 1 (String.length name - 1)) in
    match name.[0] with
    | 'R' -> 10.0 ** float_of_int k
    | 'C' -> 10.0 ** float_of_int (-k)
    | _ -> 1.0
  in
  let pruned = Exact.Prune.prune ~threshold:0.2 ~env tf in
  let after = Exact.Prune.term_count pruned in
  Alcotest.(check bool)
    (Printf.sprintf "pruning shrinks %d -> %d" before after)
    true (after < before)

let test_prune_misleads_poles () =
  (* Prune at a nominal point, then move a symbol across its range: the
     pruned form's dominant pole must go wrong while the exact one is fine.
     This is the failure mode AWEsymbolic avoids. *)
  let nl = Builders.fig1 () in
  let nl = Netlist.mark_symbolic nl "C1" (sym "C1") in
  let tf = Exact.Network.transfer_function nl in
  let nominal s =
    match Sym.name s with
    | "C1" -> 1e-3 (* tiny at the nominal point *)
    | other -> Alcotest.failf "unexpected symbol %s" other
  in
  let pruned = Exact.Prune.prune ~threshold:0.05 ~env:nominal tf in
  (* Far from nominal, C1 dominates the response. *)
  let far s =
    match Sym.name s with
    | "C1" -> 100.0
    | other -> Alcotest.failf "unexpected symbol %s" other
  in
  let dominant t env =
    Exact.Network.poles t env
    |> Array.fold_left
         (fun acc (p : Cx.t) -> Float.min acc (Cx.norm p))
         Float.infinity
  in
  let exact_dom = dominant tf far in
  let pruned_dom = dominant pruned far in
  let rel_err = Float.abs (pruned_dom -. exact_dom) /. exact_dom in
  Alcotest.(check bool)
    (Printf.sprintf "pruned dominant pole off by %.0f%%" (100.0 *. rel_err))
    true (rel_err > 0.5)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "exact"
    [
      ( "bareiss",
        [
          quick "numeric determinant" test_bareiss_numeric_det;
          quick "symbolic 2x2" test_bareiss_symbolic_det;
          quick "symbolic vandermonde 3x3" test_bareiss_det_3x3;
          quick "singular detection" test_bareiss_singular;
          quick "cramer solve" test_bareiss_solve;
          quick "permutation sign" test_bareiss_det_permutation_sign;
          quick "matches dense LU determinants" test_bareiss_det_matches_lu;
          QCheck_alcotest.to_alcotest prop_bareiss_multilinear_expansion;
        ] );
      ( "network",
        [
          quick "Eq. (5): full symbolic fig1" test_eq5_full_symbolic;
          quick "Eq. (6): mixed numeric-symbolic" test_eq6_mixed;
          quick "numeric TF matches AC analysis" test_tf_matches_ac;
          quick "exact poles match order-2 AWE" test_tf_poles_match_awe;
          quick "physical ladder values (regression)" test_tf_physical_values_ladder;
          quick "symbolic moments match numeric AWE" test_symbolic_moments_match_numeric;
        ] );
      ( "pruning",
        [
          quick "pruning reduces term count" test_prune_reduces_terms;
          quick "pruning corrupts poles off-nominal" test_prune_misleads_poles;
        ] );
    ]
