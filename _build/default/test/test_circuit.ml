(* Unit tests for the circuit data model, parser, and MNA stamping. *)

module Units = Circuit.Units
module Element = Circuit.Element
module Netlist = Circuit.Netlist
module Parser = Circuit.Parser
module Mna = Circuit.Mna
module Builders = Circuit.Builders
module Matrix = Numeric.Matrix

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units_parse () =
  let cases =
    [ ("1k", 1e3); ("2.2K", 2.2e3); ("10meg", 1e7); ("1u", 1e-6);
      ("30p", 30e-12); ("5n", 5e-9); ("100f", 100e-15); ("0.5m", 0.5e-3);
      ("3g", 3e9); ("1.5", 1.5); ("2e-12", 2e-12); ("-4k", -4e3) ]
  in
  List.iter
    (fun (s, expected) ->
      match Units.parse s with
      | Some v -> check_float s expected v
      | None -> Alcotest.failf "failed to parse %s" s)
    cases

let test_units_reject () =
  List.iter
    (fun s ->
      if Option.is_some (Units.parse s) then
        Alcotest.failf "should not parse %S" s)
    [ ""; "abc"; "1.2.3k"; "nan-ish" ]

let test_units_roundtrip () =
  List.iter
    (fun v ->
      check_float ~tol:1e-9 (Units.format v) v (Units.parse_exn (Units.format v)))
    [ 1e3; 2.2e-12; 30e-12; 5.0; 0.0; -3e6; 7e-9 ]

(* ------------------------------------------------------------------ *)
(* Elements / netlist *)

let test_element_validation () =
  (match
     Element.make ~name:"R1" ~kind:Element.Resistor ~pos:"a" ~neg:"b"
       ~value:(-5.0) ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative resistance accepted");
  let r = Element.make ~name:"R1" ~kind:Element.Resistor ~pos:"a" ~neg:"b" ~value:2.0 () in
  check_float "resistor stamp value is conductance" 0.5 (Element.stamp_value r);
  let r' = Element.set_stamp_value r 0.25 in
  check_float "set_stamp_value inverts" 4.0 r'.Element.value

let test_netlist_duplicate () =
  let r = Element.make ~name:"R1" ~kind:Element.Resistor ~pos:"a" ~neg:"0" ~value:1.0 () in
  let nl = Netlist.add Netlist.empty r in
  match Netlist.add nl r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate name accepted"

let test_netlist_nodes () =
  let nl = Builders.fig1 () in
  Alcotest.(check (list string)) "nodes" [ "in"; "n1"; "n2" ] (Netlist.nodes nl)

let test_natural_node_order () =
  let sorted = List.sort Netlist.compare_nodes [ "a10"; "a2"; "a1"; "b1"; "a2x"; "a02" ] in
  Alcotest.(check (list string)) "natural order"
    [ "a1"; "a02"; "a2"; "a2x"; "a10"; "b1" ] sorted;
  Alcotest.(check int) "equal strings" 0 (Netlist.compare_nodes "n5" "n5");
  Alcotest.(check bool) "a9 before a10" true (Netlist.compare_nodes "a9" "a10" < 0);
  Alcotest.(check bool) "numeric runs before letter runs" true
    (Netlist.compare_nodes "a1000" "a_drv" < 0)

let test_netlist_stats () =
  let total, storage = Netlist.stats (Builders.fig1 ()) in
  Alcotest.(check int) "4 elements" 4 total;
  Alcotest.(check int) "2 storage" 2 storage

(* ------------------------------------------------------------------ *)
(* Parser *)

let deck = {|
* sample deck exercising every element kind
V1 in 0 1
R1 in n1 1k
C1 n1 0 1p      ; node cap
L1 n1 n2 1u
G1 n2 0 n1 0 2m
E1 n3 0 n2 0 10
F1 n3 0 V1 2
H1 n4 0 V1 50
I1 n4 0 1m
.symbolic C1
.symbolic R1 g_drv
.input V1
.output v(n3,n4)
.end
this junk after .end is ignored
|}

let test_parser_full_deck () =
  let nl = Parser.parse_string deck in
  Alcotest.(check int) "9 elements" 9 (List.length (Netlist.elements nl));
  (match Netlist.find nl "G1" with
  | Some e -> (
    match e.Element.kind with
    | Element.Vccs (cp, cn) ->
      Alcotest.(check string) "control +" "n1" cp;
      Alcotest.(check string) "control -" "0" cn;
      check_float "gm" 2e-3 e.Element.value
    | _ -> Alcotest.fail "G1 should be a VCCS")
  | None -> Alcotest.fail "G1 missing");
  let syms = Netlist.symbolic_elements nl in
  Alcotest.(check int) "two symbolic elements" 2 (List.length syms);
  (match Netlist.find nl "R1" with
  | Some { Element.symbol = Some s; _ } ->
    Alcotest.(check string) "renamed symbol" "g_drv" (Symbolic.Symbol.name s)
  | _ -> Alcotest.fail "R1 should carry symbol g_drv");
  (match Netlist.output nl with
  | Netlist.Diff ("n3", "n4") -> ()
  | _ -> Alcotest.fail "expected differential output");
  Alcotest.(check string) "input" "V1" (Netlist.input nl).Element.name

let test_parser_errors () =
  let expect_error text =
    match Parser.parse_string text with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error "R1 a b";
  expect_error "R1 a b 1x2";
  expect_error "Q1 a b 5";
  expect_error ".output n2";
  expect_error ".symbolic NOPE"

(* ------------------------------------------------------------------ *)
(* MNA *)

(* Voltage divider: V1(1V) - R1(1k) - out - R2(1k) - gnd.  v(out) = 0.5. *)
let divider () =
  Parser.parse_string
    {|
V1 in 0 1
R1 in out 1k
R2 out 0 1k
.output v(out)
|}

let test_mna_divider () =
  let mna = Mna.build (divider ()) in
  let x = Numeric.Lu.solve_dense (Mna.g mna) (Mna.source_vector mna) in
  check_float "divider output" 0.5 (Mna.output_of mna x)

let test_mna_dimensions () =
  let nl = Builders.fig1 () in
  let mna = Mna.build nl in
  (* 3 nodes + 1 V-source auxiliary current. *)
  Alcotest.(check int) "size" 4 (Matrix.rows (Mna.g mna));
  let ix = Mna.index mna in
  Alcotest.(check int) "nodes" 3 (Mna.num_nodes ix);
  Alcotest.(check int) "ground row" (-1) (Mna.node_row ix "0")

let test_mna_fig1_matrices () =
  (* Hand-checked stamps for the Fig. 1 circuit with G1=G2=C1=C2=1. *)
  let nl = Builders.fig1 () in
  let mna = Mna.build nl in
  let ix = Mna.index mna in
  let n_in = Mna.node_row ix "in"
  and n1 = Mna.node_row ix "n1"
  and n2 = Mna.node_row ix "n2" in
  let g = Mna.g mna and c = Mna.c mna in
  check_float "G[in][in]" 1.0 (Matrix.get g n_in n_in);
  check_float "G[n1][n1]" 2.0 (Matrix.get g n1 n1);
  check_float "G[n1][n2]" (-1.0) (Matrix.get g n1 n2);
  check_float "G[n2][n2]" 1.0 (Matrix.get g n2 n2);
  check_float "C[n1][n1]" 1.0 (Matrix.get c n1 n1);
  check_float "C[n2][n2]" 1.0 (Matrix.get c n2 n2);
  check_float "C[n1][n2]" 0.0 (Matrix.get c n1 n2)

let test_mna_inductor_aux () =
  (* V1 - L1 - R1 to ground: DC current = V/R through the inductor. *)
  let nl =
    Parser.parse_string {|
V1 in 0 2
L1 in mid 1m
R1 mid 0 4
.output v(mid)
|}
  in
  let mna = Mna.build nl in
  let x = Numeric.Lu.solve_dense (Mna.g mna) (Mna.source_vector mna) in
  check_float "DC: inductor is a short" 2.0 (Mna.output_of mna x);
  let ix = Mna.index mna in
  let il = x.(Mna.aux_row ix "L1") in
  check_float "inductor current" 0.5 il

let test_mna_controlled_sources () =
  (* VCVS doubling a divider: v(out) = 2 · 0.5 = 1. *)
  let nl =
    Parser.parse_string
      {|
V1 in 0 1
R1 in mid 1k
R2 mid 0 1k
E1 out 0 mid 0 2
R3 out 0 1k
.output v(out)
|}
  in
  let mna = Mna.build nl in
  let x = Numeric.Lu.solve_dense (Mna.g mna) (Mna.source_vector mna) in
  check_float "VCVS gain" 1.0 (Mna.output_of mna x)

let test_mna_cccs () =
  (* I(V1) flows through R1 = 1k from 1V: 1 mA.  F1 mirrors 2× into R2(1k):
     v(out) = −2·1e-3·1e3 if it leaves out... sign fixed by test. *)
  let nl =
    Parser.parse_string
      {|
V1 in 0 1
R1 in 0 1k
F1 out 0 V1 2
R2 out 0 1k
.output v(out)
|}
  in
  let mna = Mna.build nl in
  let x = Numeric.Lu.solve_dense (Mna.g mna) (Mna.source_vector mna) in
  (* The V-source branch current is −1 mA (current flows out of + through
     the external circuit), so the CCCS injects −2 mA of leaving current at
     node out: v(out) = +2 V. *)
  check_float "CCCS mirror" 2.0 (Mna.output_of mna x)

let test_mna_mutual_inductance () =
  (* Two coupled inductors driven differentially: the C matrix carries −M in
     the cross branch-current positions. *)
  let nl =
    Parser.parse_string
      {|
V1 a 0 1
L1 a 0 1u
L2 b 0 2u
R1 b 0 50
K1 L1 L2 0.5u
.output v(b)
|}
  in
  let mna = Mna.build nl in
  let ix = Mna.index mna in
  let m1 = Mna.aux_row ix "L1" and m2 = Mna.aux_row ix "L2" in
  let c = Mna.c mna in
  check_float "C[m1][m1] = -L1" (-1e-6) (Matrix.get c m1 m1);
  check_float "C[m2][m2] = -L2" (-2e-6) (Matrix.get c m2 m2);
  check_float "C[m1][m2] = -M" (-0.5e-6) (Matrix.get c m1 m2);
  check_float "C[m2][m1] = -M" (-0.5e-6) (Matrix.get c m2 m1)

let test_mutual_transformer_ac () =
  (* Ideal-ish transformer behaviour: with tight coupling, the secondary
     voltage approaches the turns ratio √(L2/L1) at high frequency. *)
  let l1 = 1e-6 and l2 = 4e-6 in
  let k = 0.9999 in
  let m = k *. Float.sqrt (l1 *. l2) in
  let nl =
    Parser.parse_string
      (Printf.sprintf
         {|
V1 a 0 1
R1 a p 1
L1 p 0 %g
L2 s 0 %g
R2 s 0 1meg
K1 L1 L2 %g
.output v(s)
|}
         l1 l2 m)
  in
  let mna = Mna.build nl in
  let h = Spice.Ac.at_frequency mna 100e6 in
  check_float ~tol:2e-2 "turns ratio" (Float.sqrt (l2 /. l1)) (Numeric.Cx.norm h)

let test_symbolic_system_entries () =
  let module Mpoly = Symbolic.Mpoly in
  let nl = Builders.fig1 () in
  let nl = Netlist.mark_symbolic nl "G2" (Symbolic.Symbol.intern "G2") in
  let ix, g, _, _ = Mna.symbolic_system nl in
  let n1 = Mna.node_row ix "n1" in
  let n2 = Mna.node_row ix "n2" in
  (* G[n1][n1] = 1 (from G1 numeric) + G2 symbol. *)
  let expected =
    Mpoly.add Mpoly.one (Mpoly.of_symbol (Symbolic.Symbol.intern "G2"))
  in
  Alcotest.(check bool) "symbolic diagonal entry" true
    (Mpoly.equal g.(n1).(n1) expected);
  Alcotest.(check bool) "symbolic off-diagonal" true
    (Mpoly.equal g.(n1).(n2)
       (Mpoly.neg (Mpoly.of_symbol (Symbolic.Symbol.intern "G2"))))

(* ------------------------------------------------------------------ *)
(* Export round-trip *)

let netlists_equivalent a b =
  let sig_of nl =
    Netlist.elements nl
    |> List.map (fun (e : Element.t) ->
           ( e.Element.name,
             e.Element.kind,
             e.Element.pos,
             e.Element.neg,
             e.Element.value,
             Option.map Symbolic.Symbol.name e.Element.symbol ))
  in
  sig_of a = sig_of b
  && Netlist.output_opt a = Netlist.output_opt b
  && (Netlist.input a).Element.name = (Netlist.input b).Element.name

let test_export_roundtrip_deck () =
  let nl = Parser.parse_string deck in
  let back = Parser.parse_string (Circuit.Export.to_deck nl) in
  Alcotest.(check bool) "sample deck round-trips" true
    (netlists_equivalent nl back)

let test_export_bad_name () =
  let e = Element.make ~name:"X1" ~kind:Element.Resistor ~pos:"a" ~neg:"0" ~value:1.0 () in
  match Circuit.Export.element_card e with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind/name mismatch accepted"

let prop_export_roundtrip =
  (* Random ladders with random values and random symbolic markings
     round-trip exactly. *)
  let gen =
    QCheck2.Gen.(
      let* sections = int_range 1 8 in
      let* r = float_range 0.5 1e6 in
      let* c = float_range 1e-15 1e-3 in
      let* marks = list_size (int_range 0 3) (int_range 1 sections) in
      return (sections, r, c, marks))
  in
  QCheck2.Test.make ~name:"deck export/parse round-trip" ~count:200 gen
    (fun (sections, r, c, marks) ->
      let nl = Builders.rc_ladder ~sections ~r ~c () in
      let nl =
        List.fold_left
          (fun nl k ->
            let name = Printf.sprintf "C%d" k in
            Netlist.mark_symbolic nl name (Symbolic.Symbol.intern name))
          nl
          (List.sort_uniq compare marks)
      in
      let back = Parser.parse_string (Circuit.Export.to_deck nl) in
      netlists_equivalent nl back)

(* ------------------------------------------------------------------ *)
(* Builders *)

let test_opamp_counts () =
  let total, storage = Netlist.stats (Builders.opamp741 ()) in
  Alcotest.(check int) "170 linear elements (paper's count)" 170 total;
  Alcotest.(check int) "62 storage elements (paper's count)" 62 storage

let test_opamp_symbol_elements_exist () =
  let nl = Builders.opamp741 () in
  let gname, cname = Builders.opamp_symbol_names in
  Alcotest.(check bool) "gout_q14 exists" true (Option.is_some (Netlist.find nl gname));
  Alcotest.(check bool) "ccomp exists" true (Option.is_some (Netlist.find nl cname))

let test_ladder_structure () =
  let nl = Builders.rc_ladder ~sections:5 ~r:100.0 ~c:1e-12 () in
  let total, storage = Netlist.stats nl in
  Alcotest.(check int) "10 elements" 10 total;
  Alcotest.(check int) "5 caps" 5 storage

let test_coupled_lines_structure () =
  let nl = Builders.coupled_lines ~segments:10 () in
  let total, storage = Netlist.stats nl in
  (* 2 drivers + 10·(2R + 3C) + 2 loads. *)
  Alcotest.(check int) "elements" 54 total;
  Alcotest.(check int) "storage" 32 storage

let test_rc_tree_structure () =
  let nl = Builders.rc_tree ~depth:3 ~r:10.0 ~c:1e-12 () in
  let total, storage = Netlist.stats nl in
  Alcotest.(check int) "2·(2^4−1) elements" 30 total;
  Alcotest.(check int) "15 caps" 15 storage

let test_rc_mesh_structure () =
  let nl = Builders.rc_mesh ~rows:3 ~cols:4 ~r:10.0 ~c:1e-15 () in
  let total, storage = Netlist.stats nl in
  (* 12 caps + horizontal 3·3 + vertical 2·4 resistors + driver. *)
  Alcotest.(check int) "elements" 30 total;
  Alcotest.(check int) "caps" 12 storage;
  (* Fully resistively connected: DC solve puts every node at 1 V. *)
  let mna = Mna.build nl in
  check_float ~tol:1e-9 "far corner DC" 1.0 (Spice.Dc.output mna)

let test_coupled_bus_structure () =
  let nl = Builders.coupled_bus ~lines:3 ~segments:5 () in
  let total, storage = Netlist.stats nl in
  (* Per line: driver + 5R + 5C + load = 12 → 36; coupling: 2 gaps × 5. *)
  Alcotest.(check int) "elements" 46 total;
  Alcotest.(check int) "storage" 28 storage;
  (* Victim far end floats at DC 0 (quiet driver), aggressor at 1. *)
  let mna = Mna.build nl in
  check_float ~tol:1e-9 "victim DC" 0.0 (Spice.Dc.output mna);
  check_float ~tol:1e-9 "aggressor DC" 1.0 (Spice.Dc.node_voltage mna "l0_5")

let test_coupled_bus_attenuates_with_distance () =
  (* Crosstalk onto line 2 is weaker than onto line 1.  The far line's
     transfer has m0 = m1 = 0 (it couples through line 1), so a 3-pole model
     is the minimum that resolves it. *)
  let peak victim =
    let nl = Builders.coupled_bus ~lines:3 ~segments:10 ~victim () in
    let rom = (Awe.Driver.analyze ~order:3 nl).Awe.Driver.rom in
    snd (Awe.Measures.peak_step ~horizon:5e-9 rom)
  in
  let near = Float.abs (peak 1) and far = Float.abs (peak 2) in
  Alcotest.(check bool)
    (Printf.sprintf "far (%.4f) < near (%.4f)" far near)
    true (far < near)

let test_rlc_ladder_structure () =
  let nl = Builders.rlc_ladder ~sections:4 ~r:1.0 ~l:1e-9 ~c:1e-12 () in
  let total, storage = Netlist.stats nl in
  Alcotest.(check int) "elements" 12 total;
  Alcotest.(check int) "storage (L and C)" 8 storage

let test_coupled_rlc_lines_validation () =
  (match Builders.coupled_rlc_lines ~k_couple:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k = 1 must be rejected");
  (match Builders.coupled_rlc_lines ~segments:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 segments must be rejected");
  (* k = 0 builds with no mutual elements at all. *)
  let no_mutuals =
    Builders.coupled_rlc_lines ~segments:3 ~k_couple:0.0 ()
    |> Netlist.elements
    |> List.for_all (fun (e : Element.t) ->
           match e.Element.kind with
           | Element.Mutual _ -> false
           | _ -> true)
  in
  Alcotest.(check bool) "no mutuals at k=0" true no_mutuals

let test_coupled_rlc_lines_dc () =
  (* Inductors are shorts at DC: aggressor far end sits at 1, victim at 0. *)
  let nl = Builders.coupled_rlc_lines ~segments:4 ~k_couple:0.4 () in
  let mna = Mna.build nl in
  check_float ~tol:1e-9 "victim far end DC" 0.0 (Spice.Dc.output mna);
  check_float ~tol:1e-9 "aggressor far end DC" 1.0
    (Spice.Dc.node_voltage mna "a4")

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "circuit"
    [
      ( "units",
        [
          quick "engineering suffixes" test_units_parse;
          quick "malformed rejected" test_units_reject;
          quick "format/parse roundtrip" test_units_roundtrip;
        ] );
      ( "netlist",
        [
          quick "element validation" test_element_validation;
          quick "duplicate names rejected" test_netlist_duplicate;
          quick "node collection" test_netlist_nodes;
          quick "natural node order" test_natural_node_order;
          quick "stats" test_netlist_stats;
        ] );
      ( "parser",
        [
          quick "full deck roundtrip" test_parser_full_deck;
          quick "malformed decks rejected" test_parser_errors;
        ] );
      ( "mna",
        [
          quick "voltage divider" test_mna_divider;
          quick "dimensions" test_mna_dimensions;
          quick "fig1 stamps hand-checked" test_mna_fig1_matrices;
          quick "inductor auxiliary current" test_mna_inductor_aux;
          quick "VCVS" test_mna_controlled_sources;
          quick "CCCS" test_mna_cccs;
          quick "mutual inductance stamps" test_mna_mutual_inductance;
          quick "transformer turns ratio" test_mutual_transformer_ac;
          quick "symbolic stamps" test_symbolic_system_entries;
        ] );
      ( "export",
        [
          quick "sample deck round-trip" test_export_roundtrip_deck;
          quick "kind/name mismatch rejected" test_export_bad_name;
        ]
        @ props [ prop_export_roundtrip ] );
      ( "builders",
        [
          quick "op-amp matches paper element counts" test_opamp_counts;
          quick "op-amp symbol elements" test_opamp_symbol_elements_exist;
          quick "ladder" test_ladder_structure;
          quick "coupled lines" test_coupled_lines_structure;
          quick "rc tree" test_rc_tree_structure;
          quick "rc mesh" test_rc_mesh_structure;
          quick "rlc ladder" test_rlc_ladder_structure;
          quick "coupled RLC lines validation" test_coupled_rlc_lines_validation;
          quick "coupled RLC lines DC levels" test_coupled_rlc_lines_dc;
          quick "coupled bus" test_coupled_bus_structure;
          quick "bus crosstalk falls with distance" test_coupled_bus_attenuates_with_distance;
        ] );
    ]
