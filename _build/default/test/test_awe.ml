(* Tests for the numeric AWE engine: moments, Padé fitting, reduced-order
   models, measures, and sensitivities. *)

module Mna = Circuit.Mna
module Builders = Circuit.Builders
module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Parser = Circuit.Parser
module Cx = Numeric.Cx
module Rom = Awe.Rom

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let rc_lowpass ~r ~c =
  Parser.parse_string
    (Printf.sprintf {|
V1 in 0 1
R1 in out %g
C1 out 0 %g
.output v(out)
|} r c)

(* ------------------------------------------------------------------ *)
(* Moments *)

let test_moments_rc () =
  (* H(s) = 1/(1+sτ) ⇒ mₖ = (−τ)ᵏ. *)
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let m = Awe.Moments.output_moments (Awe.Moments.compute ~count:5 mna) in
  Array.iteri
    (fun k mk ->
      check_float (Printf.sprintf "m%d" k) ((-.tau) ** float_of_int k) mk)
    m

let fig1_analytic_moments ~g1 ~g2 ~c1 ~c2 n =
  (* H = N/D with D = G1G2 + d1·s + d2·s², N = G1G2.  The moment recurrence
     follows from D·(Σ mₖ sᵏ) = N. *)
  let d0 = g1 *. g2 in
  let d1 = (g2 *. c1) +. (g2 *. c2) +. (g1 *. c2) in
  let d2 = c1 *. c2 in
  let m = Array.make n 0.0 in
  m.(0) <- 1.0;
  if n > 1 then m.(1) <- -.d1 /. d0;
  for k = 2 to n - 1 do
    m.(k) <- ((-.d1 *. m.(k - 1)) -. (d2 *. m.(k - 2))) /. d0
  done;
  m

let test_moments_fig1 () =
  let g1 = 2.0 and g2 = 3.0 and c1 = 0.5 and c2 = 1.5 in
  let nl = Builders.fig1 ~g1 ~g2 ~c1 ~c2 () in
  let m = Awe.Moments.output_moments (Awe.Moments.compute ~count:6 (Mna.build nl)) in
  let expected = fig1_analytic_moments ~g1 ~g2 ~c1 ~c2 6 in
  Array.iteri
    (fun k mk -> check_float (Printf.sprintf "m%d" k) expected.(k) mk)
    m

let test_moments_inductor () =
  (* Series RL: H(s) across R is R/(R+sL): mₖ = (−L/R)ᵏ. *)
  let r = 10.0 and l = 1e-6 in
  let nl =
    Parser.parse_string
      (Printf.sprintf {|
V1 in 0 1
L1 in out %g
R1 out 0 %g
.output v(out)
|} l r)
  in
  let m = Awe.Moments.output_moments (Awe.Moments.compute ~count:4 (Mna.build nl)) in
  Array.iteri
    (fun k mk ->
      check_float (Printf.sprintf "m%d" k) ((-.l /. r) ** float_of_int k) mk)
    m

(* ------------------------------------------------------------------ *)
(* Padé / ROM *)

let test_pade_first_order_exact () =
  (* Moments of 1/(1+sτ): the 1-pole fit must recover p = −1/τ, k = 1/τ. *)
  let tau = 1e-6 in
  let m = Array.init 4 (fun k -> (-.tau) ** float_of_int k) in
  let rom = Awe.Pade.fit ~order:1 m in
  Alcotest.(check int) "one pole" 1 (Rom.order rom);
  check_float "pole" (-1.0 /. tau) rom.Rom.poles.(0).Cx.re;
  check_float "residue" (1.0 /. tau) rom.Rom.residues.(0).Cx.re

let test_pade_second_order_exact_poles () =
  (* Fig. 1 is exactly 2nd order: the order-2 AWE model must recover the
     exact poles, the roots of C1C2·s² + d1·s + G1G2. *)
  let g1 = 2.0 and g2 = 3.0 and c1 = 0.5 and c2 = 1.5 in
  let result = Awe.Driver.analyze ~order:2 (Builders.fig1 ~g1 ~g2 ~c1 ~c2 ()) in
  let d1 = (g2 *. c1) +. (g2 *. c2) +. (g1 *. c2) in
  let r1, r2 = Numeric.Roots.quadratic (c1 *. c2) d1 (g1 *. g2) in
  let expected = List.sort compare [ r1.Cx.re; r2.Cx.re ] in
  let actual =
    Array.to_list result.Awe.Driver.rom.Rom.poles
    |> List.map (fun (p : Cx.t) -> p.Cx.re)
    |> List.sort compare
  in
  List.iter2 (fun e a -> check_float ~tol:1e-6 "exact pole recovered" e a) expected actual

let test_rom_moments_roundtrip () =
  (* The fitted model must reproduce all 2q matched moments. *)
  let nl = Builders.rc_ladder ~sections:8 ~r:100.0 ~c:1e-12 () in
  let result = Awe.Driver.analyze ~order:3 nl in
  let back = Rom.moments result.Awe.Driver.rom 6 in
  Array.iteri
    (fun k mk ->
      check_float ~tol:1e-6 (Printf.sprintf "matched m%d" k)
        result.Awe.Driver.moments.(k) mk)
    back

let test_rom_dc_gain_exact () =
  let nl = Builders.rc_ladder ~sections:10 ~r:50.0 ~c:2e-12 () in
  let result = Awe.Driver.analyze ~order:2 nl in
  (* DC gain of any RC ladder to the far end is 1. *)
  check_float ~tol:1e-9 "dc gain" 1.0 (Rom.dc_gain result.Awe.Driver.rom)

let test_rom_step_response_vs_tran () =
  (* 4-pole model of an 8-section ladder vs trapezoidal simulation. *)
  let nl = Builders.rc_ladder ~sections:8 ~r:100.0 ~c:1e-12 () in
  let result = Awe.Driver.analyze ~order:4 nl in
  let rom = result.Awe.Driver.rom in
  let mna = Mna.build nl in
  let tau = Rom.time_constant rom in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:(tau /. 100.0)
      ~t_stop:(6.0 *. tau)
  in
  Array.iter
    (fun (t, y) ->
      if t > 0.0 then begin
        let yr = Rom.step rom t in
        if Float.abs (yr -. y) > 5e-3 then
          Alcotest.failf "step mismatch at t=%g: tran %g vs rom %g" t y yr
      end)
    wave

let test_rom_frequency_response_vs_ac () =
  let nl = Builders.rc_ladder ~sections:8 ~r:100.0 ~c:1e-12 () in
  let result = Awe.Driver.analyze ~order:4 nl in
  let rom = result.Awe.Driver.rom in
  let mna = Mna.build nl in
  let f_dom = Awe.Measures.dominant_pole_hz rom in
  (* Accurate through a decade above the dominant pole. *)
  List.iter
    (fun mult ->
      let f = f_dom *. mult in
      let exact = Spice.Ac.at_frequency mna f in
      let approx = Rom.at_frequency rom f in
      if Cx.norm (Cx.sub exact approx) > 0.02 *. Float.max 0.05 (Cx.norm exact) then
        Alcotest.failf "H(j2π·%g) mismatch: exact %s vs rom %s" f
          (Format.asprintf "%a" Cx.pp exact)
          (Format.asprintf "%a" Cx.pp approx))
    [ 0.01; 0.1; 1.0; 3.0; 10.0 ]

let test_rom_stability_enforced () =
  let nl = Builders.rc_ladder ~sections:12 ~r:100.0 ~c:1e-12 () in
  let result = Awe.Driver.analyze ~order:5 nl in
  Alcotest.(check bool) "model stable" true (Rom.is_stable result.Awe.Driver.rom)

let test_pade_degenerate () =
  match Awe.Pade.fit ~order:1 [| 0.0; 0.0 |] with
  | exception Awe.Pade.Degenerate _ -> ()
  | _ -> Alcotest.fail "expected Degenerate on all-zero moments"

let test_pade_order_reduction () =
  (* A single-pole system fitted at order 2 has a singular Hankel matrix:
     the fit must fall back to order 1 rather than fail. *)
  let tau = 1e-6 in
  let m = Array.init 4 (fun k -> (-.tau) ** float_of_int k) in
  let rom = Awe.Pade.fit ~order:2 m in
  Alcotest.(check int) "reduced to one pole" 1 (Rom.order rom);
  check_float ~tol:1e-6 "pole still exact" (-1.0 /. tau) rom.Rom.poles.(0).Cx.re

(* ------------------------------------------------------------------ *)
(* Complex poles: RLC circuits *)

let test_rlc_complex_poles () =
  (* Series RLC (underdamped): poles −ζω₀ ± jω₀√(1−ζ²). *)
  let r = 10.0 and l = 1e-6 and c = 1e-9 in
  let nl =
    Parser.parse_string
      (Printf.sprintf {|
V1 in 0 1
R1 in a %g
L1 a b %g
C1 b 0 %g
.output v(b)
|} r l c)
  in
  let rom = (Awe.Driver.analyze ~order:2 nl).Awe.Driver.rom in
  let w0 = 1.0 /. Float.sqrt (l *. c) in
  let zeta = r /. 2.0 *. Float.sqrt (c /. l) in
  Alcotest.(check int) "two poles" 2 (Rom.order rom);
  let p = rom.Rom.poles.(0) in
  check_float ~tol:1e-6 "real part" (-.zeta *. w0) p.Cx.re;
  check_float ~tol:1e-6 "imaginary part" (w0 *. Float.sqrt (1.0 -. (zeta *. zeta)))
    (Float.abs p.Cx.im);
  Alcotest.(check bool) "conjugate pair" true
    (Cx.close rom.Rom.poles.(0) (Cx.conj rom.Rom.poles.(1)))

let test_rlc_ladder_ringing_vs_tran () =
  (* The ringing step response of an underdamped RLC ladder: the ROM must
     track the oscillation, not just the envelope. *)
  let nl = Builders.rlc_ladder ~sections:3 ~r:30.0 ~l:10e-9 ~c:1e-12 () in
  let rom = (Awe.Driver.analyze ~order:5 nl).Awe.Driver.rom in
  let mna = Mna.build nl in
  let horizon = 10.0 *. Rom.time_constant rom in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input
      ~t_step:(horizon /. 4000.0) ~t_stop:horizon
  in
  let overshoot =
    Array.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 wave
  in
  Alcotest.(check bool) "response rings" true (overshoot > 1.05);
  let overshoot_rom =
    Array.fold_left
      (fun acc (t, _) -> if t > 0.0 then Float.max acc (Rom.step rom t) else acc)
      0.0 wave
  in
  check_float ~tol:0.05 "overshoot reproduced" overshoot overshoot_rom;
  (* Pointwise the truncated model tracks the oscillation within a few
     percent of the swing (moment matching is weakest at the very first
     wavefront). *)
  Array.iter
    (fun (t, y) ->
      if t > horizon /. 50.0 then begin
        let yr = Rom.step rom t in
        if Float.abs (yr -. y) > 0.08 then
          Alcotest.failf "ringing mismatch at t=%g: tran %g vs rom %g" t y yr
      end)
    wave

let test_rlc_frequency_peak () =
  (* The ROM reproduces the resonant peak of the AC response. *)
  let nl = Builders.rlc_ladder ~sections:2 ~r:5.0 ~l:100e-9 ~c:1e-12 () in
  let rom = (Awe.Driver.analyze ~order:4 nl).Awe.Driver.rom in
  let mna = Mna.build nl in
  let f0 = 1.0 /. (2.0 *. Float.pi *. Float.sqrt (100e-9 *. 1e-12)) in
  List.iter
    (fun mult ->
      let f = f0 *. mult in
      let exact = Cx.norm (Spice.Ac.at_frequency mna f) in
      let approx = Cx.norm (Rom.at_frequency rom f) in
      if Float.abs (exact -. approx) > 0.03 *. Float.max 1.0 exact then
        Alcotest.failf "AC mismatch at %g Hz: %g vs %g" f exact approx)
    [ 0.2; 0.5; 0.8; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Extensions: direct term, zeros, shifted expansion *)

let rc_highpass ~r ~c =
  Parser.parse_string
    (Printf.sprintf {|
V1 in 0 1
C1 in out %g
R1 out 0 %g
.output v(out)
|} c r)

let test_direct_term_highpass () =
  (* H(s) = sτ/(1+sτ) = 1 − (1/τ)/(s + 1/τ): d = 1, p = −1/τ, k = −1/τ. *)
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let nl = rc_highpass ~r ~c in
  let result = Awe.Driver.analyze ~order:1 ~with_direct:true nl in
  let rom = result.Awe.Driver.rom in
  check_float ~tol:1e-9 "direct term" 1.0 rom.Rom.direct;
  check_float ~tol:1e-9 "pole" (-1.0 /. tau) rom.Rom.poles.(0).Cx.re;
  check_float ~tol:1e-9 "residue" (-1.0 /. tau) rom.Rom.residues.(0).Cx.re;
  (* Step response of a highpass: e^{−t/τ}. *)
  List.iter
    (fun t ->
      check_float ~tol:1e-9
        (Printf.sprintf "step at %g" t)
        (Float.exp (-.t /. tau))
        (Rom.step rom t))
    [ 0.1 *. tau; tau; 3.0 *. tau ]

let test_direct_term_strictly_proper () =
  (* When the model order covers the circuit exactly (Fig. 1 is 2nd order
     and strictly proper), the fitted direct term must vanish.  On truncated
     models d legitimately absorbs the unmodeled fast poles. *)
  let nl = Builders.fig1 ~g1:2.0 ~g2:3.0 ~c1:0.5 ~c2:1.5 () in
  let result = Awe.Driver.analyze ~order:2 ~with_direct:true nl in
  if Float.abs result.Awe.Driver.rom.Rom.direct > 1e-9 then
    Alcotest.failf "expected tiny direct term, got %g"
      result.Awe.Driver.rom.Rom.direct

let test_zeros_known_model () =
  (* H = (s+2)/((s+1)(s+3)) = 0.5/(s+1) + 0.5/(s+3): one zero at −2. *)
  let rom =
    Rom.make
      ~poles:[| Cx.of_float (-1.0); Cx.of_float (-3.0) |]
      ~residues:[| Cx.of_float 0.5; Cx.of_float 0.5 |]
      ()
  in
  let zeros = Rom.zeros rom in
  Alcotest.(check int) "one zero" 1 (Array.length zeros);
  check_float ~tol:1e-9 "zero location" (-2.0) zeros.(0).Cx.re

let test_zeros_highpass_at_origin () =
  let nl = rc_highpass ~r:1e3 ~c:1e-9 in
  let rom = (Awe.Driver.analyze ~order:1 ~with_direct:true nl).Awe.Driver.rom in
  let zeros = Rom.zeros rom in
  Alcotest.(check int) "one zero" 1 (Array.length zeros);
  if Cx.norm zeros.(0) > 1e-3 /. (1e3 *. 1e-9) then
    Alcotest.failf "highpass zero should sit at the origin, got %g"
      zeros.(0).Cx.re

let test_zeros_no_finite_zero () =
  let rom =
    Rom.make ~poles:[| Cx.of_float (-1.0) |] ~residues:[| Cx.of_float 1.0 |] ()
  in
  Alcotest.(check int) "all-pole model" 0 (Array.length (Rom.zeros rom))

let test_shifted_expansion_recovers_pole () =
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let nl = rc_lowpass ~r ~c in
  (* Expand about a point well away from DC; the translated pole must land
     where the DC expansion put it. *)
  let result = Awe.Driver.analyze ~order:1 ~shift:(2.0 /. tau) nl in
  check_float ~tol:1e-9 "shifted pole" (-1.0 /. tau)
    result.Awe.Driver.rom.Rom.poles.(0).Cx.re;
  check_float ~tol:1e-9 "shifted residue" (1.0 /. tau)
    result.Awe.Driver.rom.Rom.residues.(0).Cx.re

let test_shifted_expansion_far_poles () =
  (* A ladder's far poles are invisible to low-order DC expansions; an
     expansion near the fast end finds a pole close to the fastest exact
     pole. *)
  let nl = Builders.rc_ladder ~sections:6 ~r:100.0 ~c:1e-12 () in
  let tf = Exact.Network.transfer_function nl in
  let exact =
    Exact.Network.poles tf (fun _ -> 0.0)
    |> Array.map (fun (p : Cx.t) -> p.Cx.re)
    |> Array.to_list |> List.sort compare
  in
  let fastest_exact = List.hd exact in
  (* Expand close to the fast pole (Padé converges to the poles nearest the
     expansion point). *)
  let result = Awe.Driver.analyze ~order:2 ~shift:(0.95 *. fastest_exact) nl in
  let closest =
    Array.fold_left
      (fun acc (p : Cx.t) ->
        Float.min acc (Float.abs ((p.Cx.re -. fastest_exact) /. fastest_exact)))
      Float.infinity result.Awe.Driver.rom.Rom.poles
  in
  Alcotest.(check bool)
    (Printf.sprintf "a shifted pole lands within 5%% of the fastest exact \
                     pole (rel err %.3f)" closest)
    true (closest < 0.05)

let test_group_delay_single_pole () =
  (* τ(0) = 1/|p| for one pole; decays at high frequency. *)
  let p = -1e6 in
  let rom =
    Rom.make ~poles:[| Cx.of_float p |] ~residues:[| Cx.of_float (-.p) |] ()
  in
  check_float ~tol:1e-9 "dc group delay" (1.0 /. Float.abs p)
    (Awe.Measures.group_delay rom 0.0);
  let tau_hi = Awe.Measures.group_delay rom 1e9 in
  Alcotest.(check bool) "delay collapses past the pole" true
    (tau_hi < 0.01 /. Float.abs p)

let test_group_delay_matches_fd_phase () =
  let nl = Builders.rc_ladder ~sections:6 ~r:100.0 ~c:1e-12 () in
  let rom = (Awe.Driver.analyze ~order:3 nl).Awe.Driver.rom in
  let f = Awe.Measures.dominant_pole_hz rom in
  let phase g = Cx.arg (Rom.at_frequency rom g) in
  let h = f *. 1e-5 in
  let fd = -.(phase (f +. h) -. phase (f -. h)) /. (2.0 *. Float.pi *. 2.0 *. h) in
  check_float ~tol:1e-4 "analytic vs finite-difference phase slope" fd
    (Awe.Measures.group_delay rom f)

(* ------------------------------------------------------------------ *)
(* Ramp response *)

let test_ramp_response_analytic () =
  (* Single pole: ramp response has the closed form
     y(t) = (1/T)[ m + (e^{pt}(1-e^{-pm}))/p - m ]... checked against the
     trapezoidal simulator instead of re-deriving. *)
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let rom = (Awe.Driver.analyze_mna ~order:1 mna).Awe.Driver.rom in
  let rise = 2.0 *. tau in
  let wave =
    Spice.Tran.simulate mna
      ~input:(Spice.Tran.ramp_input ~rise)
      ~t_step:(tau /. 400.0) ~t_stop:(8.0 *. tau)
  in
  Array.iter
    (fun (t, y) ->
      if t > 0.0 then begin
        let yr = Rom.ramp rom ~rise t in
        if Float.abs (yr -. y) > 1e-3 then
          Alcotest.failf "ramp mismatch at t=%g: tran %g vs rom %g" t y yr
      end)
    wave

let test_ramp_limits () =
  (* A very fast ramp approaches the step response; t=0 gives 0. *)
  let rom =
    Rom.make ~poles:[| Cx.of_float (-1.0) |] ~residues:[| Cx.of_float 1.0 |] ()
  in
  check_float "zero at t=0" 0.0 (Rom.ramp rom ~rise:1e-3 0.0);
  check_float ~tol:1e-3 "fast ramp ≈ step" (Rom.step rom 2.0)
    (Rom.ramp rom ~rise:1e-6 2.0)

(* ------------------------------------------------------------------ *)
(* Krylov (Arnoldi) reduction *)

let test_krylov_basis_orthonormal () =
  let nl = Builders.rc_ladder ~sections:10 ~r:100.0 ~c:1e-12 () in
  let v = Awe.Krylov.basis ~order:5 (Mna.build nl) in
  let q = Numeric.Matrix.cols v in
  Alcotest.(check int) "five columns" 5 q;
  let gram = Numeric.Matrix.mul (Numeric.Matrix.transpose v) v in
  Alcotest.(check bool) "VtV = I" true
    (Numeric.Matrix.equal ~tol:1e-10 gram (Numeric.Matrix.identity q))

let test_krylov_basis_degenerates () =
  (* A 1-state circuit's Krylov sequence collapses after a few vectors (the
     dynamic direction plus the algebraic content of r0). *)
  let v = Awe.Krylov.basis ~order:6 (Mna.build (rc_lowpass ~r:1e3 ~c:1e-9)) in
  Alcotest.(check bool) "sequence deflates early" true
    (Numeric.Matrix.cols v < 4)

let test_krylov_exact_small_system () =
  (* Fig. 1 is 2nd order: once the basis spans the reachable space (order 3
     covers both dynamic directions plus r0's algebraic content), the pencil
     reproduces the exact poles. *)
  let g1 = 2.0 and g2 = 3.0 and c1 = 0.5 and c2 = 1.5 in
  let mna = Mna.build (Builders.fig1 ~g1 ~g2 ~c1 ~c2 ()) in
  let result = Awe.Krylov.analyze ~order:3 mna in
  let d1 = (g2 *. c1) +. (g2 *. c2) +. (g1 *. c2) in
  let r1, r2 = Numeric.Roots.quadratic (c1 *. c2) d1 (g1 *. g2) in
  let expected = List.sort compare [ r1.Cx.re; r2.Cx.re ] in
  let actual =
    Array.to_list result.Awe.Driver.rom.Rom.poles
    |> List.map (fun (p : Cx.t) -> p.Cx.re)
    |> List.sort compare
  in
  List.iter2 (fun e a -> check_float ~tol:1e-6 "pencil pole" e a) expected actual

let test_krylov_matches_pade_low_order () =
  (* At low order both methods match the same moments, so the dominant poles
     agree. *)
  let nl = Builders.rc_ladder ~sections:10 ~r:100.0 ~c:1e-12 () in
  let mna = Mna.build nl in
  let pade = (Awe.Driver.analyze_mna ~order:3 mna).Awe.Driver.rom in
  let krylov = (Awe.Krylov.analyze ~order:4 mna).Awe.Driver.rom in
  check_float ~tol:1e-4 "dominant pole"
    (Cx.norm (Rom.dominant_pole pade))
    (Cx.norm (Rom.dominant_pole krylov))

let test_krylov_survives_high_order () =
  (* Order 8 on a 20-section ladder: explicit Hankel fitting typically
     collapses to far fewer poles; the orthogonal basis keeps the pencil
     well conditioned and the model accurate vs AC analysis. *)
  let nl = Builders.rc_ladder ~sections:20 ~r:100.0 ~c:1e-12 () in
  let mna = Mna.build nl in
  let krylov = (Awe.Krylov.analyze ~order:8 mna).Awe.Driver.rom in
  Alcotest.(check bool) "several poles retained" true (Rom.order krylov >= 5);
  let f_dom = Awe.Measures.dominant_pole_hz krylov in
  List.iter
    (fun mult ->
      let f = f_dom *. mult in
      let exact = Spice.Ac.at_frequency mna f in
      let got = Rom.at_frequency krylov f in
      if Cx.norm (Cx.sub exact got) > 0.02 then
        Alcotest.failf "Krylov model off at %gx: |err| = %g" mult
          (Cx.norm (Cx.sub exact got)))
    [ 0.5; 1.0; 3.0; 10.0; 30.0 ]

(* ------------------------------------------------------------------ *)
(* Multipoint AWE *)

let test_multipoint_merge () =
  let p1 = [| Cx.of_float (-1.0); Cx.make (-2.0) 1.0 |] in
  let p2 = [| Cx.of_float (-1.0000001); Cx.of_float (-5.0) |] in
  let merged = Awe.Multipoint.merge_poles [ p1; p2 ] in
  Alcotest.(check int) "near-duplicate dropped" 3 (Array.length merged)

let test_multipoint_single_point_matches_awe () =
  (* With one expansion point at DC, multipoint degenerates to plain AWE. *)
  let nl = Builders.rc_ladder ~sections:6 ~r:100.0 ~c:1e-12 () in
  let mna = Mna.build nl in
  let single = Awe.Multipoint.analyze ~order_per_point:2 ~points:[ Cx.zero ] mna in
  let plain = (Awe.Driver.analyze_mna ~order:2 mna).Awe.Driver.rom in
  check_float ~tol:1e-6 "same dominant pole"
    (Cx.norm (Rom.dominant_pole plain))
    (Cx.norm (Rom.dominant_pole single))

let test_multipoint_complex_moments () =
  (* Complex-shift moments are Taylor coefficients: for the RC lowpass,
     H(s₀+σ) = 1/(1+τ(s₀+σ)) gives mₖ = (−τ)ᵏ/(1+τs₀)^{k+1}. *)
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let s0 = Cx.make 0.0 (0.5 /. tau) in
  let m = Awe.Moments.complex_output_moments ~count:4 ~shift:s0 mna in
  let base = Cx.add Cx.one (Cx.scale tau s0) in
  Array.iteri
    (fun k mk ->
      let expected =
        Cx.div
          (Cx.of_float ((-.tau) ** float_of_int k))
          (Cx.pow_int base (k + 1))
      in
      if Cx.norm (Cx.sub expected mk) > 1e-9 *. Cx.norm expected then
        Alcotest.failf "complex m%d mismatch" k)
    m

let test_multipoint_wideband () =
  (* Complex frequency hopping: a 12-section ladder over 2 decades.  The
     pooled model must beat the single DC expansion across the band. *)
  let nl = Builders.rc_ladder ~sections:12 ~r:100.0 ~c:1e-12 () in
  let mna = Mna.build nl in
  let single = (Awe.Driver.analyze_mna ~order:2 mna).Awe.Driver.rom in
  let f_dom = Awe.Measures.dominant_pole_hz single in
  let w_dom = 2.0 *. Float.pi *. f_dom in
  let multi =
    Awe.Multipoint.analyze ~order_per_point:2
      ~points:[ Cx.zero; Cx.make 0.0 (10.0 *. w_dom); Cx.make 0.0 (50.0 *. w_dom) ]
      mna
  in
  Alcotest.(check bool) "multipoint pools more poles" true
    (Rom.order multi > Rom.order single);
  Alcotest.(check bool) "pooled model stable" true (Rom.is_stable multi);
  (* Absolute error (the passband is 1): beats the single expansion
     everywhere in the band, by a lot at the band edge. *)
  let err rom f =
    let exact = Spice.Ac.at_frequency mna f in
    Cx.norm (Cx.sub exact (Rom.at_frequency rom f))
  in
  List.iter
    (fun mult ->
      let f = f_dom *. mult in
      let e_multi = err multi f and e_single = err single f in
      if e_multi > e_single +. 1e-4 then
        Alcotest.failf "multipoint worse at %gx: %.5f vs single %.5f" mult
          e_multi e_single)
    [ 1.0; 3.0; 10.0; 30.0; 50.0 ];
  Alcotest.(check bool) "band edge much better" true
    (err multi (10.0 *. f_dom) < 0.3 *. err single (10.0 *. f_dom))

let test_multipoint_stable () =
  let nl = Builders.rc_ladder ~sections:10 ~r:50.0 ~c:2e-12 () in
  let mna = Mna.build nl in
  let f_dom =
    Awe.Measures.dominant_pole_hz (Awe.Driver.analyze_mna ~order:2 mna).Awe.Driver.rom
  in
  let w = 2.0 *. Float.pi *. f_dom in
  let rom =
    Awe.Multipoint.analyze ~points:[ Cx.zero; Cx.make 0.0 (20.0 *. w) ] mna
  in
  Alcotest.(check bool) "merged model stable" true (Rom.is_stable rom)

(* ------------------------------------------------------------------ *)
(* Measures *)

let test_measures_rc () =
  let tau = 1e-6 in
  let m = Array.init 4 (fun k -> (-.tau) ** float_of_int k) in
  let rom = Awe.Pade.fit ~order:1 m in
  check_float "dc gain" 1.0 (Awe.Measures.dc_gain rom);
  check_float ~tol:1e-6 "dominant pole Hz" (1.0 /. (2.0 *. Float.pi *. tau))
    (Awe.Measures.dominant_pole_hz rom);
  (match Awe.Measures.delay_50 rom with
  | Some t -> check_float ~tol:1e-4 "50%% delay = τ·ln2" (tau *. Float.log 2.0) t
  | None -> Alcotest.fail "expected a 50% crossing");
  (match Awe.Measures.rise_time rom with
  | Some t -> check_float ~tol:1e-3 "10-90 rise = τ·ln9" (tau *. Float.log 9.0) t
  | None -> Alcotest.fail "expected a rise time")

let test_measures_unity_gain () =
  (* Single pole with DC gain A0: f_unity ≈ A0·f_pole for A0 ≫ 1. *)
  let a0 = 1e5 and f_pole = 10.0 in
  let p = Cx.make (-2.0 *. Float.pi *. f_pole) 0.0 in
  let k = Cx.scale a0 (Cx.neg p) in
  let rom = Rom.make ~poles:[| p |] ~residues:[| k |] () in
  (match Awe.Measures.unity_gain_frequency rom with
  | Some f -> check_float ~tol:1e-4 "f_unity" (a0 *. f_pole) f
  | None -> Alcotest.fail "expected unity crossing");
  (match Awe.Measures.phase_margin rom with
  | Some pm -> check_float ~tol:1e-2 "phase margin ≈ 90°" 90.0 pm
  | None -> Alcotest.fail "expected phase margin")

let test_measures_no_unity_crossing () =
  (* DC gain 0.5 never crosses unity. *)
  let rom =
    Rom.make ~poles:[| Cx.of_float (-1.0) |] ~residues:[| Cx.of_float 0.5 |] ()
  in
  Alcotest.(check bool) "no crossing" true
    (Option.is_none (Awe.Measures.unity_gain_frequency rom))

let test_elmore () =
  check_float "elmore" 2.0 (Awe.Measures.elmore_delay [| 0.5; -1.0 |])

(* ------------------------------------------------------------------ *)
(* Sensitivity *)

let test_sensitivity_rc_moment_derivs () =
  (* For H = 1/(1+s·R·C): m1 = −RC.  ∂m1/∂C = −R.  The stamp value of R1 is
     the conductance g = 1/R, and m1 = −C/g, so ∂m1/∂g = C/g². *)
  let r = 1e3 and c = 1e-9 in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let t = Awe.Sensitivity.create ~count:4 mna in
  let nl = Mna.netlist mna in
  let r1 = Option.get (Netlist.find nl "R1") in
  let c1 = Option.get (Netlist.find nl "C1") in
  let dm_r = Awe.Sensitivity.moment_derivatives t r1 in
  let dm_c = Awe.Sensitivity.moment_derivatives t c1 in
  check_float "∂m0/∂g = 0" 0.0 dm_r.(0);
  check_float "∂m1/∂g = C·R²" (c *. r *. r) dm_r.(1);
  check_float "∂m1/∂C = −R" (-.r) dm_c.(1)

let test_sensitivity_vs_finite_difference () =
  (* Spot-check adjoint moment derivatives against finite differences on a
     ladder. *)
  let nl = Builders.rc_ladder ~sections:5 ~r:100.0 ~c:1e-12 () in
  let mna = Mna.build nl in
  let t = Awe.Sensitivity.create ~count:6 mna in
  let base = Awe.Sensitivity.output_moments t in
  List.iter
    (fun name ->
      let e = Option.get (Netlist.find nl name) in
      let dm = Awe.Sensitivity.moment_derivatives t e in
      let v = Element.stamp_value e in
      let h = v *. 1e-6 in
      let moments_at w =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:6
             (Mna.build (Netlist.replace nl (Element.set_stamp_value e w))))
      in
      let plus = moments_at (v +. h) and minus = moments_at (v -. h) in
      Array.iteri
        (fun k dk ->
          let fd = (plus.(k) -. minus.(k)) /. (2.0 *. h) in
          let scale = Float.max (Float.abs fd) (Float.abs dk) in
          (* Central differences carry roundoff noise of order ε·|mₖ|/h;
             derivatives below that floor are indistinguishable from zero. *)
          let noise = 1e-12 *. Float.abs base.(k) /. h in
          if Float.abs (fd -. dk) > Float.max (1e-3 *. scale) noise then
            Alcotest.failf "%s ∂m%d: adjoint %g vs fd %g" name k dk fd)
        dm)
    [ "R2"; "C3"; "R5" ]

let test_sensitivity_opamp_ranking () =
  (* The paper's claim: sensitivity analysis singles out gout_q14 and ccomp
     on the op-amp.  They must rank in the top handful of 170 elements. *)
  let nl = Builders.opamp741 () in
  let ranked = Awe.Sensitivity.rank ~order:2 nl in
  let names = List.map (fun ((e : Element.t), _) -> e.Element.name) ranked in
  let position name =
    let rec go k = function
      | [] -> Alcotest.failf "%s not ranked" name
      | n :: _ when n = name -> k
      | _ :: rest -> go (k + 1) rest
    in
    go 0 names
  in
  let gname, cname = Builders.opamp_symbol_names in
  Alcotest.(check bool)
    (Printf.sprintf "%s in top 8 of %d" gname (List.length names))
    true
    (position gname < 8);
  Alcotest.(check bool)
    (Printf.sprintf "%s in top 8 of %d" cname (List.length names))
    true
    (position cname < 8)

let test_select_symbols () =
  let nl = Builders.rc_ladder ~sections:4 ~r:100.0 ~c:1e-12 () in
  let marked = Awe.Sensitivity.select_symbols ~n:2 nl in
  Alcotest.(check int) "two symbols marked" 2
    (List.length (Netlist.symbolic_elements marked))

let test_zero_sensitivity_fd () =
  (* Circuit with a finite zero: R1 from in to out with a parallel C1,
     loaded by R2 || C2.  Zero at z = -1/(R1*C1); dz/dC1 = 1/(R1*C1^2). *)
  let r1 = 1e3 and c1 = 1e-9 and r2 = 2e3 and c2 = 3e-9 in
  let nl =
    Parser.parse_string
      (Printf.sprintf
         {|
V1 in 0 1
R1 in out %g
C1 in out %g
R2 out 0 %g
C2 out 0 %g
.output v(out)
|}
         r1 c1 r2 c2)
  in
  let mna = Mna.build nl in
  let t = Awe.Sensitivity.create ~count:6 mna in
  let c1e = Option.get (Netlist.find nl "C1") in
  let pairs = Awe.Sensitivity.zero_sensitivities t ~order:2 c1e in
  Alcotest.(check int) "one finite zero" 1 (Array.length pairs);
  let z, dz = pairs.(0) in
  check_float ~tol:1e-4 "zero location" (-1.0 /. (r1 *. c1)) z.Cx.re;
  check_float ~tol:1e-3 "zero sensitivity" (1.0 /. (r1 *. c1 *. c1)) dz.Cx.re

let test_zero_sensitivity_no_zeros () =
  let mna = Mna.build (rc_lowpass ~r:1e3 ~c:1e-9) in
  let t = Awe.Sensitivity.create ~count:4 mna in
  let r1 = Option.get (Netlist.find (Mna.netlist mna) "R1") in
  Alcotest.(check int) "all-pole circuit: no zero sensitivities" 0
    (Array.length (Awe.Sensitivity.zero_sensitivities t ~order:1 r1))

let test_pole_sensitivity_fd () =
  (* Pole sensitivity on the RC lowpass: p = −g/C so ∂p/∂g = −1/C. *)
  let r = 1e3 and c = 1e-9 in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let t = Awe.Sensitivity.create ~count:4 mna in
  let r1 = Option.get (Netlist.find (Mna.netlist mna) "R1") in
  let pairs = Awe.Sensitivity.pole_sensitivities t ~order:1 r1 in
  Alcotest.(check int) "one pole" 1 (Array.length pairs);
  let p, dp = pairs.(0) in
  check_float ~tol:1e-6 "pole" (-1.0 /. (r *. c)) p.Cx.re;
  check_float ~tol:1e-6 "∂p/∂g" (-1.0 /. c) dp.Cx.re

(* ------------------------------------------------------------------ *)
(* Realize: ROM -> netlist synthesis *)

let realize_check ?(tol = 1e-9) rom =
  let nl = Awe.Realize.to_netlist rom in
  let mna = Mna.build nl in
  let f_dom =
    Cx.norm rom.Rom.poles.(0) /. (2.0 *. Float.pi)
  in
  List.iter
    (fun mult ->
      let f = f_dom *. mult in
      let direct = Rom.at_frequency rom f in
      let synth = Spice.Ac.at_frequency mna f in
      let scale = Float.max 1e-6 (Cx.norm direct) in
      if Cx.norm (Cx.sub direct synth) > tol *. scale then
        Alcotest.failf "realized H off at %g Hz: %s vs %s" f
          (Format.asprintf "%a" Cx.pp direct)
          (Format.asprintf "%a" Cx.pp synth))
    [ 0.0; 0.01; 0.3; 1.0; 3.0; 30.0 ]

let test_realize_real_poles () =
  let nl = Builders.rc_ladder ~sections:6 ~r:1e3 ~c:1e-12 () in
  let rom = (Awe.Driver.analyze ~order:3 nl).Awe.Driver.rom in
  realize_check rom

let test_realize_complex_pair () =
  let nl = Builders.rlc_ladder ~sections:2 ~r:30.0 ~l:10e-9 ~c:1e-12 () in
  let rom = (Awe.Driver.analyze ~order:4 nl).Awe.Driver.rom in
  (* Make sure the workload actually exercises the biquad branch. *)
  let has_complex =
    Array.exists (fun p -> Float.abs p.Cx.im > 1.0) rom.Rom.poles
  in
  Alcotest.(check bool) "workload has complex poles" true has_complex;
  realize_check rom

let test_realize_with_direct_term () =
  let rom =
    Rom.make ~direct:0.25
      ~poles:[| Cx.of_float (-1e6) |]
      ~residues:[| Cx.of_float 3e5 |]
      ()
  in
  realize_check rom;
  (* At very high frequency only the feedthrough survives. *)
  let nl = Awe.Realize.to_netlist rom in
  let h = Spice.Ac.at_frequency (Mna.build nl) 1e13 in
  check_float ~tol:1e-4 "feedthrough" 0.25 h.Cx.re

let test_realize_deck_roundtrip () =
  (* The emitted text parses back and still matches the ROM. *)
  let nl = Builders.rc_ladder ~sections:4 ~r:2e3 ~c:2e-12 () in
  let rom = (Awe.Driver.analyze ~order:2 nl).Awe.Driver.rom in
  let back = Parser.parse_string (Awe.Realize.to_deck rom) in
  let mna = Mna.build back in
  List.iter
    (fun f ->
      let a = Rom.at_frequency rom f and b = Spice.Ac.at_frequency mna f in
      if Cx.norm (Cx.sub a b) > 1e-9 *. Float.max 1e-6 (Cx.norm a) then
        Alcotest.failf "deck round-trip off at %g Hz" f)
    [ 0.0; 1e6; 1e8; 1e10 ]

let test_realize_step_response () =
  let nl = Builders.rc_ladder ~sections:5 ~r:1e3 ~c:1e-12 () in
  let rom = (Awe.Driver.analyze ~order:3 nl).Awe.Driver.rom in
  let synth = Mna.build (Awe.Realize.to_netlist rom) in
  let tau = Rom.time_constant rom in
  let wave =
    Spice.Tran.simulate synth ~input:Spice.Tran.step_input
      ~t_step:(tau /. 500.0) ~t_stop:(3.0 *. tau)
  in
  Array.iter
    (fun (t, y) ->
      if t > tau /. 20.0 then begin
        let expected = Rom.step rom t in
        if Float.abs (y -. expected) > 2e-3 then
          Alcotest.failf "realized step off at t=%g: %g vs %g" t y expected
      end)
    wave

let prop_realize_matches_rom =
  (* Random stable ROMs — a few real poles plus a conjugate pair, random
     residues, optional feedthrough — must synthesize exactly. *)
  QCheck2.Test.make ~name:"realized netlist ≡ ROM transfer" ~count:50
    QCheck2.Gen.(
      tup4 (int_range 0 3)
        (pair (float_range 0.1 100.0) (float_range 0.1 100.0))
        (pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
        (float_range (-1.0) 1.0))
    (fun (n_real, (sigma, omega), (kre, kim), direct) ->
      let reals =
        List.init n_real (fun i ->
            ( Cx.of_float (-.(float_of_int (i + 1)) *. sigma *. 1e6),
              Cx.of_float (kre +. float_of_int i) ))
      in
      let p = Cx.make (-.sigma *. 1e6) (omega *. 1e6) in
      let k = Cx.make kre kim in
      let pair = [ (p, k); (Cx.conj p, Cx.conj k) ] in
      let all = reals @ pair in
      let rom =
        Rom.make ~direct
          ~poles:(Array.of_list (List.map fst all))
          ~residues:(Array.of_list (List.map snd all))
          ()
      in
      let mna = Mna.build (Awe.Realize.to_netlist rom) in
      List.for_all
        (fun f ->
          let a = Rom.at_frequency rom f in
          let b = Spice.Ac.at_frequency mna f in
          Cx.norm (Cx.sub a b) <= 1e-8 *. Float.max 1e-6 (Cx.norm a))
        [ 0.0; 1e5; 1e6; 1e7; 1e9 ])

let test_realize_rejects_unpaired_complex () =
  let rom =
    Rom.make
      ~poles:[| Cx.make (-1e6) 2e6 |]
      ~residues:[| Cx.make 1e5 0.0 |]
      ()
  in
  match Awe.Realize.to_netlist rom with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on an unpaired complex pole"

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "awe"
    [
      ( "moments",
        [
          quick "RC lowpass analytic moments" test_moments_rc;
          quick "fig1 analytic moments" test_moments_fig1;
          quick "inductor moments" test_moments_inductor;
        ] );
      ( "pade",
        [
          quick "first-order exact" test_pade_first_order_exact;
          quick "second-order recovers exact poles" test_pade_second_order_exact_poles;
          quick "fitted model reproduces moments" test_rom_moments_roundtrip;
          quick "dc gain exact" test_rom_dc_gain_exact;
          quick "degenerate moments rejected" test_pade_degenerate;
          quick "automatic order reduction" test_pade_order_reduction;
          quick "stability enforced" test_rom_stability_enforced;
        ] );
      ( "responses",
        [
          quick "step response matches transient" test_rom_step_response_vs_tran;
          quick "frequency response matches AC" test_rom_frequency_response_vs_ac;
        ] );
      ( "rlc",
        [
          quick "series RLC exact complex poles" test_rlc_complex_poles;
          quick "ringing ladder vs transient" test_rlc_ladder_ringing_vs_tran;
          quick "resonant peak vs AC" test_rlc_frequency_peak;
        ] );
      ( "ramp",
        [
          quick "ramp response matches transient" test_ramp_response_analytic;
          quick "ramp limits" test_ramp_limits;
        ] );
      ( "krylov",
        [
          quick "basis orthonormal" test_krylov_basis_orthonormal;
          quick "basis degenerates gracefully" test_krylov_basis_degenerates;
          quick "exact poles on a 2nd-order circuit" test_krylov_exact_small_system;
          quick "agrees with Pade at low order" test_krylov_matches_pade_low_order;
          quick "stays accurate at order 8" test_krylov_survives_high_order;
        ] );
      ( "multipoint",
        [
          quick "pole merging dedupes" test_multipoint_merge;
          quick "single point degenerates to AWE" test_multipoint_single_point_matches_awe;
          quick "complex-shift moments analytic" test_multipoint_complex_moments;
          quick "wideband accuracy" test_multipoint_wideband;
          quick "merged model stable" test_multipoint_stable;
        ] );
      ( "extensions",
        [
          quick "direct term on a highpass" test_direct_term_highpass;
          quick "direct term vanishes when strictly proper" test_direct_term_strictly_proper;
          quick "zeros of a known model" test_zeros_known_model;
          quick "highpass zero at the origin" test_zeros_highpass_at_origin;
          quick "all-pole model has no zeros" test_zeros_no_finite_zero;
          quick "shifted expansion recovers the pole" test_shifted_expansion_recovers_pole;
          quick "shifted expansion finds far poles" test_shifted_expansion_far_poles;
          quick "group delay of a single pole" test_group_delay_single_pole;
          quick "group delay matches phase slope" test_group_delay_matches_fd_phase;
        ] );
      ( "realize",
        [
          quick "real-pole synthesis matches H" test_realize_real_poles;
          quick "complex-pair biquad matches H" test_realize_complex_pair;
          quick "feedthrough term" test_realize_with_direct_term;
          quick "deck text round-trips" test_realize_deck_roundtrip;
          quick "step response matches ROM" test_realize_step_response;
          quick "unpaired complex pole rejected" test_realize_rejects_unpaired_complex;
          QCheck_alcotest.to_alcotest prop_realize_matches_rom;
        ] );
      ( "measures",
        [
          quick "RC measures analytic" test_measures_rc;
          quick "unity gain and phase margin" test_measures_unity_gain;
          quick "no unity crossing" test_measures_no_unity_crossing;
          quick "elmore delay" test_elmore;
        ] );
      ( "sensitivity",
        [
          quick "RC moment derivatives analytic" test_sensitivity_rc_moment_derivs;
          quick "adjoint matches finite differences" test_sensitivity_vs_finite_difference;
          quick "op-amp ranking finds the paper's symbols" test_sensitivity_opamp_ranking;
          quick "select_symbols marks top elements" test_select_symbols;
          quick "pole sensitivity analytic" test_pole_sensitivity_fd;
          quick "zero sensitivity analytic" test_zero_sensitivity_fd;
          quick "no spurious zero sensitivities" test_zero_sensitivity_no_zeros;
        ] );
    ]
