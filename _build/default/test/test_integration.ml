(* Heavier end-to-end scenarios: larger circuits, more symbols, and
   cross-subsystem flows exercised together. *)

module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Builders = Circuit.Builders
module Mna = Circuit.Mna
module Sym = Symbolic.Symbol
module Cx = Numeric.Cx
module Model = Awesymbolic.Model

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let substitute nl values =
  Netlist.map_elements
    (fun (e : Element.t) ->
      match e.Element.symbol with
      | Some s -> Element.set_stamp_value e (List.assoc (Sym.name s) values)
      | None -> e)
    nl

let test_large_coupled_lines_identity () =
  (* 300 segments per line (1205 unknowns): the compiled model must stay
     bit-faithful to numeric AWE. *)
  let nl = Builders.coupled_lines ~segments:300 () in
  let nl = Netlist.mark_symbolic nl "rdrv_a" (Sym.intern "g_drv") in
  let nl = Netlist.mark_symbolic nl "rdrv_b" (Sym.intern "g_drv") in
  let nl = Netlist.mark_symbolic nl "cload_a" (Sym.intern "c_load") in
  let nl = Netlist.mark_symbolic nl "cload_b" (Sym.intern "c_load") in
  let model = Model.build ~order:2 nl in
  List.iter
    (fun (rdrv, cload) ->
      let point = [ ("g_drv", 1.0 /. rdrv); ("c_load", cload) ] in
      let m_sym = Model.eval_moments model (Model.values model point) in
      let m_num =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
      in
      Array.iteri
        (fun k mk ->
          check_float ~tol:1e-8 (Printf.sprintf "m%d (R=%g)" k rdrv) mk
            m_sym.(k))
        m_num)
    [ (50.0, 20e-15); (200.0, 150e-15) ]

let test_four_symbol_opamp () =
  (* Four simultaneous symbols spanning all element kinds the op-amp uses:
     conductance, two capacitors, and a transconductance. *)
  let nl = Builders.opamp741 () in
  let marks = [ "gout_q14"; "ccomp"; "gm_q1"; "cload" ] in
  let nl =
    List.fold_left (fun nl n -> Netlist.mark_symbolic nl n (Sym.intern n)) nl marks
  in
  let model = Model.build ~order:2 nl in
  Alcotest.(check int) "four symbols" 4 (Array.length (Model.symbols model));
  let point =
    [ ("gout_q14", 3e-6); ("ccomp", 25e-12); ("gm_q1", 150e-6);
      ("cload", 20e-12) ]
  in
  let m_sym = Model.eval_moments model (Model.values model point) in
  let m_num =
    Awe.Moments.output_moments
      (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
  in
  Array.iteri
    (fun k mk -> check_float ~tol:1e-7 (Printf.sprintf "m%d" k) mk m_sym.(k))
    m_num;
  (* Compiled evaluation must stay a micro-scale operation even with four
     inputs: sanity-bound 10k evaluations under a second. *)
  let eval = Model.evaluator model in
  let v = Model.values model point in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 10_000 do
    ignore (eval v)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "10k evaluations in %.3f s" dt)
    true (dt < 1.0)

let test_mesh_delay_monotone () =
  (* Physical sanity across a sweep: weaker grid drivers always slow the far
     corner down. *)
  let nl = Builders.rc_mesh ~rows:10 ~cols:10 ~r:2.0 ~c:20e-15 () in
  let nl = Netlist.mark_symbolic nl "Rdrv" (Sym.intern "g_drv") in
  let model = Model.build ~order:2 nl in
  let eval = Model.evaluator model in
  let delay rdrv =
    match
      Awe.Measures.delay_50 (eval (Model.values model [ ("g_drv", 1.0 /. rdrv) ]))
    with
    | Some t -> t
    | None -> Alcotest.fail "expected a delay"
  in
  let prev = ref 0.0 in
  List.iter
    (fun rdrv ->
      let d = delay rdrv in
      if d <= !prev then
        Alcotest.failf "delay not monotone at Rdrv=%g (%.3g <= %.3g)" rdrv d !prev;
      prev := d)
    [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ]

let test_opamp_step_vs_tran () =
  (* Open-loop op-amp step response: 4-pole AWE model against trapezoidal
     integration of the full 170-element circuit. *)
  let nl = Builders.opamp741 () in
  let rom = (Awe.Driver.analyze ~order:4 nl).Awe.Driver.rom in
  let mna = Mna.build nl in
  let tau = Awe.Rom.time_constant rom in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:(tau /. 100.0)
      ~t_stop:(3.0 *. tau)
  in
  let final = Awe.Rom.dc_gain rom in
  Array.iter
    (fun (t, y) ->
      if t > tau /. 10.0 then begin
        let yr = Awe.Rom.step rom t in
        if Float.abs (yr -. y) > 0.01 *. Float.abs final then
          Alcotest.failf "op-amp step mismatch at t=%g" t
      end)
    wave

let test_macromodel_of_coupled_lines () =
  (* Reduce the 50-segment coupled-line block to a 4-port macromodel and
     check transfer admittances against the exact truncated series. *)
  let nl = Builders.coupled_lines ~segments:50 () in
  let block =
    Netlist.add_all Netlist.empty
      (List.filter
         (fun (e : Element.t) -> not (Element.is_source e))
         (Netlist.elements nl))
  in
  let ports = [ "a_drv"; "b_drv"; "a50"; "b50" ] in
  let mm = Awesymbolic.Macromodel.reduce ~order:3 ~ports block in
  let reduction =
    Awesymbolic.Port_reduction.of_netlist ~count:8
      ~ports:(Array.of_list ports) block
  in
  List.iter
    (fun f ->
      let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
      let fitted = Awesymbolic.Macromodel.admittance mm s in
      let exact = Awesymbolic.Port_reduction.admittance_at reduction s in
      for j = 0 to 3 do
        for k = 0 to 3 do
          let a = Numeric.Cmatrix.get fitted j k in
          let b = Numeric.Cmatrix.get exact j k in
          let scale = Float.max 1e-4 (Cx.norm b) in
          if Cx.norm (Cx.sub a b) > 0.05 *. scale then
            Alcotest.failf "Y[%d][%d] off at %g Hz" j k f
        done
      done)
    [ 1e6; 1e7 ]

let test_cli_pipeline_files () =
  (* Export → file → parse → model: the full persistence loop. *)
  let nl = Builders.fig1 () in
  let nl = Netlist.mark_symbolic nl "C1" (Sym.intern "C1") in
  let path = Filename.temp_file "awesym_test" ".cir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Circuit.Export.to_file nl path;
      let back = Circuit.Parser.parse_file path in
      let model = Model.build ~order:2 back in
      let rom = Model.rom model (Model.values model [ ("C1", 2.0) ]) in
      check_float ~tol:1e-12 "dc gain" 1.0 (Awe.Rom.dc_gain rom))

(* ------------------------------------------------------------------ *)
(* Randomized whole-pipeline fuzzing on arbitrary RC networks *)

(* A random connected RC network: a resistor spanning tree over [nodes]
   non-ground nodes (guaranteeing a DC path), extra random resistors, and a
   capacitor at every node. *)
let random_rc_network rand ~nodes =
  let name k = Printf.sprintf "t%d" k in
  let elements = ref [] in
  let add e = elements := e :: !elements in
  add
    (Element.make ~name:"Vin" ~kind:Element.Vsource ~pos:(name 0) ~neg:"0"
       ~value:1.0 ());
  for k = 1 to nodes - 1 do
    let parent = rand () mod k in
    add
      (Element.make
         ~name:(Printf.sprintf "Rt%d" k)
         ~kind:Element.Resistor ~pos:(name parent) ~neg:(name k)
         ~value:(10.0 +. float_of_int (rand () mod 990))
         ())
  done;
  for k = 0 to nodes - 1 do
    add
      (Element.make
         ~name:(Printf.sprintf "Cn%d" k)
         ~kind:Element.Capacitor ~pos:(name k) ~neg:"0"
         ~value:(1e-13 +. (float_of_int (rand () mod 100) *. 1e-13))
         ())
  done;
  (* A few cross links make the graph non-tree-like. *)
  let extras = rand () mod 4 in
  for e = 0 to extras - 1 do
    let a = rand () mod nodes and b = rand () mod nodes in
    if a <> b then
      add
        (Element.make
           ~name:(Printf.sprintf "Rx%d" e)
           ~kind:Element.Resistor ~pos:(name a) ~neg:(name b)
           ~value:(100.0 +. float_of_int (rand () mod 900))
           ())
  done;
  let out = name (nodes - 1) in
  Netlist.empty
  |> Fun.flip Netlist.add_all (List.rev !elements)
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node out)

let int_rand seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
    (!state lsr 17) land 0xFFFFFF

let prop_random_network_awe_vs_ac =
  QCheck2.Test.make ~name:"AWE matches AC on random RC networks" ~count:40
    QCheck2.Gen.(pair (int_range 3 14) (int_range 0 10000))
    (fun (nodes, seed) ->
      let nl = random_rc_network (int_rand seed) ~nodes in
      let mna = Mna.build nl in
      match Awe.Driver.analyze_mna ~order:4 mna with
      | exception Awe.Pade.Degenerate _ -> QCheck2.assume_fail ()
      | result ->
        let rom = result.Awe.Driver.rom in
        let f_dom = Awe.Measures.dominant_pole_hz rom in
        List.for_all
          (fun mult ->
            let f = f_dom *. mult in
            let exact = Spice.Ac.at_frequency mna f in
            Cx.norm (Cx.sub exact (Awe.Rom.at_frequency rom f)) < 0.08)
          [ 0.1; 0.5; 1.0 ])

let prop_random_network_symbolic_identity =
  QCheck2.Test.make
    ~name:"compiled symbolic ≡ numeric AWE on random RC networks" ~count:40
    QCheck2.Gen.(pair (int_range 3 12) (int_range 0 10000))
    (fun (nodes, seed) ->
      let rand = int_rand seed in
      let nl = random_rc_network rand ~nodes in
      (* Mark one random capacitor and one random tree resistor symbolic. *)
      let cap = Printf.sprintf "Cn%d" (rand () mod nodes) in
      let res = Printf.sprintf "Rt%d" (1 + (rand () mod (nodes - 1))) in
      let nl = Netlist.mark_symbolic nl cap (Sym.intern "sym_c") in
      let nl = Netlist.mark_symbolic nl res (Sym.intern "sym_g") in
      let model = Model.build ~order:2 nl in
      let c_val = 1e-13 +. (float_of_int (rand () mod 500) *. 1e-14) in
      let g_val = 1e-4 +. (float_of_int (rand () mod 100) *. 1e-4) in
      let point = [ ("sym_c", c_val); ("sym_g", g_val) ] in
      let m_sym = Model.eval_moments model (Model.values model point) in
      let m_num =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
      in
      Array.for_all2
        (fun a b ->
          Float.abs (a -. b) <= 1e-7 *. Float.max (Float.abs a) 1e-30
          || Float.abs a < 1e-25)
        m_num m_sym)

(* cwd is _build/default/test under `dune runtest`, the project root under
   a direct `dune exec`. *)
let decks_dir =
  List.find_opt Sys.file_exists [ "../decks"; "decks" ]
  |> Option.value ~default:"../decks"

(* ---- coupled RLC lines (inductive + capacitive crosstalk) ---- *)

let test_rlc_lines_structure () =
  let segments = 4 in
  let nl = Builders.coupled_rlc_lines ~segments ~k_couple:0.3 () in
  let total, _ = Netlist.stats nl in
  (* Per segment: 2R + 2L + 2C + 1 coupling C + 1 mutual = 8; plus two
     drivers and two loads (stats excludes the source). *)
  Alcotest.(check int) "element count" ((8 * segments) + 4) total

let test_rlc_lines_awe_matches_ac () =
  let nl = Builders.coupled_rlc_lines ~segments:8 ~k_couple:0.4 () in
  let mna = Mna.build nl in
  let rom = (Awe.Driver.analyze_mna ~order:4 mna).Awe.Driver.rom in
  let f_dom = Awe.Measures.dominant_pole_hz rom in
  List.iter
    (fun mult ->
      let f = f_dom *. mult in
      let exact = Spice.Ac.at_frequency mna f in
      let err = Cx.norm (Cx.sub exact (Awe.Rom.at_frequency rom f)) in
      if err > 0.02 then
        Alcotest.failf "AWE vs AC at %.3g Hz: err %.3g" f err)
    [ 0.1; 0.5; 1.0; 2.0 ]

let test_rlc_crosstalk_polarity () =
  (* The classic signature of inductive coupling: with capacitive coupling
     only, far-end victim noise is positive (same polarity as the
     aggressor); when mutual inductance dominates, the far-end pulse flips
     negative.  Measured with the transient baseline, no AWE involved. *)
  let first_peak nl =
    let mna = Mna.build nl in
    let wave =
      Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:5e-12
        ~t_stop:2e-9
    in
    (* Signed extremum of the early response. *)
    Array.fold_left
      (fun acc (_, y) -> if Float.abs y > Float.abs acc then y else acc)
      0.0 wave
  in
  let capacitive =
    first_peak (Builders.coupled_rlc_lines ~segments:8 ~k_couple:0.0 ())
  in
  let inductive =
    first_peak
      (Builders.coupled_rlc_lines ~segments:8 ~k_couple:0.7 ~c_couple:0.05e-12
         ())
  in
  if capacitive <= 0.0 then
    Alcotest.failf "capacitive far-end noise should be positive: %.4f"
      capacitive;
  if inductive >= 0.0 then
    Alcotest.failf "inductively dominated far-end noise should flip: %.4f"
      inductive

let test_rlc_lines_symbolic_identity () =
  (* Symbolic load on a structure full of mutual inductances: the numeric
     partition carries all the K elements and the compiled model must stay
     identical to whole-circuit numeric AWE. *)
  let nl = Builders.coupled_rlc_lines ~segments:6 ~k_couple:0.35 () in
  let nl = Netlist.mark_symbolic nl "cload_b" (Sym.intern "c_load") in
  let model = Model.build ~order:3 nl in
  List.iter
    (fun cload ->
      let point = [ ("c_load", cload) ] in
      let m_sym = Model.eval_moments model (Model.values model point) in
      let m_num =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:6 (Mna.build (substitute nl point)))
      in
      Array.iteri
        (fun k mk ->
          let scale =
            Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1e-30 m_num
          in
          if Float.abs (mk -. m_num.(k)) > 1e-7 *. Float.max (Float.abs m_num.(k)) (1e-9 *. scale)
          then
            Alcotest.failf "m%d at cload=%g: num %.12g sym %.12g" k cload
              m_num.(k) mk)
        m_sym)
    [ 20e-15; 100e-15; 400e-15 ]

let test_rlc_display_path_degrades_cleanly () =
  (* Known representation limit, pinned: the exact Cramer (display) path
     cannot survive float fraction-free elimination on this incidence-heavy
     26-unknown system (det Y⁰ ~ 1e-17 by cancellation), and must fail with
     a clean [Failure] — while the compiled elimination path stays exact
     (the `validate` CLI reports ~1e-16 against numeric AWE). *)
  let nl = Circuit.Parser.parse_file (Filename.concat decks_dir "coupled_rlc.cir") in
  let model = Model.build ~order:2 nl in
  let m = Model.eval_moments model (Model.values model [ ("M", 3e-9) ]) in
  if not (Array.for_all Float.is_finite m) then
    Alcotest.fail "compiled path must evaluate";
  match Format.asprintf "%a" (Model.pp_forms ~count:4) nl with
  | _ -> Alcotest.fail "expected the Cramer display path to refuse"
  | exception Failure _ -> ()

let prop_random_network_multi_output =
  QCheck2.Test.make
    ~name:"build_many ≡ numeric AWE per output on random RC networks"
    ~count:25
    QCheck2.Gen.(pair (int_range 4 10) (int_range 0 10000))
    (fun (nodes, seed) ->
      let rand = int_rand seed in
      let nl = random_rc_network rand ~nodes in
      let cap = Printf.sprintf "Cn%d" (rand () mod nodes) in
      let nl = Netlist.mark_symbolic nl cap (Sym.intern "sym_c") in
      (* Observe two random distinct nodes plus their difference. *)
      let n1 = Printf.sprintf "t%d" (rand () mod nodes) in
      let n2 = Printf.sprintf "t%d" (rand () mod nodes) in
      let outputs =
        [ Netlist.Node n1; Netlist.Node n2; Netlist.Diff (n1, n2) ]
      in
      let models = Model.build_many ~order:2 nl ~outputs in
      let c_val = 1e-13 +. (float_of_int (rand () mod 500) *. 1e-14) in
      let point = [ ("sym_c", c_val) ] in
      let moments_of model =
        Model.eval_moments model (Model.values model point)
      in
      let numeric output =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4
             (Mna.build (Netlist.with_output (substitute nl point) output)))
      in
      let agree ?(scale = [||]) m_num m_sym =
        let ok = ref true in
        Array.iteri
          (fun k a ->
            let b = m_sym.(k) in
            (* A Diff output cancels node moments; rounding dust at the
               operands' magnitude is correct behaviour, not error. *)
            let floor =
              if k < Array.length scale then 1e-9 *. scale.(k) else 0.0
            in
            if
              Float.abs (a -. b) > Float.max (1e-7 *. Float.abs a) floor
              && Float.abs a >= 1e-25
            then ok := false)
          m_num;
        !ok
      in
      match models with
      | [ model1; model2; model_diff ] ->
        let s1 = moments_of model1 and s2 = moments_of model2 in
        let operand_scale =
          Array.map2 (fun a b -> Float.abs a +. Float.abs b) s1 s2
        in
        agree (numeric (Netlist.Node n1)) s1
        && agree (numeric (Netlist.Node n2)) s2
        && agree ~scale:operand_scale
             (numeric (Netlist.Diff (n1, n2)))
             (moments_of model_diff)
      | _ -> false)

(* Two pathologies originally caught by the random-network fuzzer, pinned
   as concrete regressions. *)

let test_regression_constant_pivot_trap () =
  (* An RC tree whose port-frame constant subblock is near-singular: the
     compiled pipeline once picked structurally "nice" but numerically
     terrible pivots here and returned m0 = −0.43 instead of 1. *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 t0 0 1
Rt1 t0 t1 915
Rt2 t1 t2 902
Rt3 t2 t3 391
Rt4 t1 t4 824
Rt5 t3 t5 641
Rt6 t2 t6 326
Rt7 t4 t7 109
Rt8 t3 t8 830
Rt9 t7 t9 739
Rt10 t2 t10 594
Cn0 t0 0 7.2p
Cn1 t1 0 900f
Cn2 t2 0 4.6p
Cn3 t3 0 1.9p
Cn4 t4 0 8.9p
Cn5 t5 0 8p
Cn6 t6 0 4.4p
Cn7 t7 0 900f
Cn8 t8 0 4.1p
Cn9 t9 0 1.6p
Cn10 t10 0 2.8p
Rx0 t2 t5 542
Rx1 t7 t0 523
.symbolic Cn9 sym_c
.symbolic Rt5 sym_g
.output v(t10)
|}
  in
  let model = Model.build ~order:2 nl in
  let point = [ ("sym_c", 1.6e-12); ("sym_g", 1.0 /. 641.0) ] in
  let m_sym = Model.eval_moments model (Model.values model point) in
  let m_num =
    Awe.Moments.output_moments
      (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
  in
  Array.iteri
    (fun k mk -> check_float ~tol:1e-9 (Printf.sprintf "m%d" k) mk m_sym.(k))
    m_num

let test_regression_moment_invisible_pole () =
  (* A nearly single-pole branch response: the order-4 Hankel system is
     numerically rank one, and the fit once minted a moment-invisible
     "pole" at Re ≈ −1e−77 whose transfer exploded at its own resonance. *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 t0 0 1
Rt1 t0 t1 832
Rt2 t1 t2 689
Rt3 t0 t3 726
Cn0 t0 0 8p
Cn1 t1 0 5.5p
Cn2 t2 0 8.3p
Cn3 t3 0 4.6p
.output v(t3)
|}
  in
  let mna = Mna.build nl in
  let rom = (Awe.Driver.analyze_mna ~order:4 mna).Awe.Driver.rom in
  (* Every kept pole must be visible and physical. *)
  Array.iter
    (fun (p : Cx.t) ->
      if Float.abs p.Cx.re < 1e-3 *. Cx.norm p then
        Alcotest.failf "near-imaginary junk pole survived: (%g, %g)" p.Cx.re
          p.Cx.im)
    rom.Awe.Rom.poles;
  let f_dom = Awe.Measures.dominant_pole_hz rom in
  List.iter
    (fun mult ->
      let f = f_dom *. mult in
      let err =
        Cx.norm
          (Cx.sub (Spice.Ac.at_frequency mna f) (Awe.Rom.at_frequency rom f))
      in
      if err > 1e-3 then Alcotest.failf "transfer off at %gx: %g" mult err)
    [ 0.1; 0.5; 1.0; 3.0 ]

let test_floating_node_error () =
  (* A capacitor-only node has no DC path: AWE must fail loudly. *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 in 0 1
R1 in out 1k
C1 out island 1p
C2 island 0 1p
.output v(out)
|}
  in
  match Awe.Driver.analyze ~order:2 nl with
  | exception Numeric.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular on a floating node"

(* Every deck shipped in decks/ must parse and run the pipeline its header
   advertises: linear decks through AWE (plus Model.build when they carry
   symbols), transistor-level decks through bias + linearize. *)

let test_all_decks_run () =
  let decks =
    Sys.readdir decks_dir
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cir")
    |> List.sort compare
  in
  if List.length decks < 6 then
    Alcotest.failf "expected the shipped decks, found %d" (List.length decks);
  List.iter
    (fun file ->
      let path = Filename.concat decks_dir file in
      match Circuit.Parser.parse_file path with
      | nl ->
        let rom = (Awe.Driver.analyze ~order:2 nl).Awe.Driver.rom in
        if not (Float.is_finite (Awe.Rom.dc_gain rom)) then
          Alcotest.failf "%s: non-finite dc gain" file;
        let symbols =
          List.filter_map
            (fun (e : Element.t) -> e.Element.symbol)
            (Netlist.elements nl)
        in
        if symbols <> [] then begin
          let model = Model.build ~order:2 nl in
          let nominal =
            Array.to_list (Model.symbols model)
            |> List.map (fun s ->
                   let e =
                     List.find
                       (fun (e : Element.t) -> e.Element.symbol = Some s)
                       (Netlist.elements nl)
                   in
                   (Sym.name s, Element.stamp_value e))
          in
          let m = Model.eval_moments model (Model.values model nominal) in
          if not (Array.for_all Float.is_finite m) then
            Alcotest.failf "%s: non-finite compiled moments" file
        end
      | exception Circuit.Parser.Parse_error _ ->
        (* Transistor-level deck: the linearization pipeline applies. *)
        let nl = Nonlinear.Parser.parse_file path in
        let sol = Nonlinear.Newton.solve nl in
        let lin = Nonlinear.Linearize.netlist nl sol in
        let rom = (Awe.Driver.analyze ~order:2 lin).Awe.Driver.rom in
        if not (Float.is_finite (Awe.Rom.dc_gain rom)) then
          Alcotest.failf "%s: non-finite linearized dc gain" file)
    decks

let test_missing_output_node_error () =
  let nl = Builders.fig1 () in
  let nl = Netlist.with_output nl (Netlist.Node "nope") in
  match Awe.Driver.analyze ~order:2 nl with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected a clean failure on an unknown output node"

let () =
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          slow "300-segment coupled lines identity" test_large_coupled_lines_identity;
          slow "four-symbol op-amp" test_four_symbol_opamp;
          slow "mesh delay monotone in driver strength" test_mesh_delay_monotone;
          slow "op-amp step response vs transient" test_opamp_step_vs_tran;
          slow "coupled-line macromodel" test_macromodel_of_coupled_lines;
          slow "export/parse/model file loop" test_cli_pipeline_files;
          slow "every shipped deck runs its pipeline" test_all_decks_run;
        ] );
      ( "rlc-lines",
        [
          Alcotest.test_case "structure" `Quick test_rlc_lines_structure;
          Alcotest.test_case "AWE matches AC" `Quick
            test_rlc_lines_awe_matches_ac;
          Alcotest.test_case "inductive coupling flips far-end polarity"
            `Quick test_rlc_crosstalk_polarity;
          Alcotest.test_case "symbolic identity with mutuals at scale" `Quick
            test_rlc_lines_symbolic_identity;
          Alcotest.test_case "Cramer display path degrades cleanly" `Quick
            test_rlc_display_path_degrades_cleanly;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "regression: constant-pivot trap" `Quick
            test_regression_constant_pivot_trap;
          Alcotest.test_case "regression: moment-invisible pole" `Quick
            test_regression_moment_invisible_pole;
          Alcotest.test_case "floating node fails loudly" `Quick
            test_floating_node_error;
          Alcotest.test_case "unknown output node fails cleanly" `Quick
            test_missing_output_node_error;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_random_network_awe_vs_ac;
              prop_random_network_symbolic_identity;
              prop_random_network_multi_output ] );
    ]
