(* Tests for the baseline simulator: DC, AC, and transient vs analytic
   results for small RC circuits. *)

module Parser = Circuit.Parser
module Mna = Circuit.Mna
module Builders = Circuit.Builders
module Cx = Numeric.Cx

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let rc_lowpass ~r ~c =
  Parser.parse_string
    (Printf.sprintf {|
V1 in 0 1
R1 in out %g
C1 out 0 %g
.output v(out)
|} r c)

(* ------------------------------------------------------------------ *)
(* DC *)

let test_dc_divider () =
  let nl =
    Parser.parse_string
      {|
V1 in 0 10
R1 in out 3k
R2 out 0 1k
.output v(out)
|}
  in
  check_float "divider" 2.5 (Spice.Dc.output (Mna.build nl))

let test_dc_node_voltage () =
  let nl = rc_lowpass ~r:1e3 ~c:1e-9 in
  let mna = Mna.build nl in
  check_float "cap blocks DC" 1.0 (Spice.Dc.node_voltage mna "out");
  check_float "ground" 0.0 (Spice.Dc.node_voltage mna "0")

(* ------------------------------------------------------------------ *)
(* AC: first-order RC lowpass, H(jw) = 1/(1 + jwRC) *)

let test_ac_lowpass () =
  let r = 1e3 and c = 1e-9 in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let tau = r *. c in
  List.iter
    (fun f ->
      let w = 2.0 *. Float.pi *. f in
      let expected = Cx.inv (Cx.make 1.0 (w *. tau)) in
      let actual = Spice.Ac.at_frequency mna f in
      if Cx.norm (Cx.sub expected actual) > 1e-9 then
        Alcotest.failf "H at %g Hz: expected %s got %s" f
          (Format.asprintf "%a" Cx.pp expected)
          (Format.asprintf "%a" Cx.pp actual))
    [ 1e3; 1e5; 1.0 /. (2.0 *. Float.pi *. tau); 1e7 ]

let test_ac_corner_is_3db () =
  let r = 1e3 and c = 1e-9 in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let f_corner = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  let mag_db = Spice.Ac.magnitude_db (Spice.Ac.at_frequency mna f_corner) in
  check_float ~tol:1e-6 "corner magnitude" (-10.0 *. Float.log10 2.0) mag_db;
  let phase = Spice.Ac.phase_deg (Spice.Ac.at_frequency mna f_corner) in
  check_float ~tol:1e-6 "corner phase" (-45.0) phase

let test_ac_sweep_monotone () =
  let mna = Mna.build (rc_lowpass ~r:1e3 ~c:1e-9) in
  let pts = Spice.Ac.sweep mna ~f_start:1e3 ~f_stop:1e9 ~points:40 in
  Alcotest.(check int) "points" 40 (Array.length pts);
  let mags = Array.map (fun (_, h) -> Cx.norm h) pts in
  Array.iteri
    (fun k m ->
      if k > 0 && m > mags.(k - 1) +. 1e-12 then
        Alcotest.fail "lowpass magnitude should decrease with frequency")
    mags

let test_ac_rlc_resonance () =
  (* Series RLC: at resonance the inductor and capacitor cancel, so the
     output across R equals the input. *)
  let l = 1e-6 and c = 1e-12 and r = 10.0 in
  let nl =
    Parser.parse_string
      (Printf.sprintf {|
V1 in 0 1
L1 in a %g
C1 a b %g
R1 b 0 %g
.output v(b)
|} l c r)
  in
  let mna = Mna.build nl in
  let f0 = 1.0 /. (2.0 *. Float.pi *. Float.sqrt (l *. c)) in
  let h = Spice.Ac.at_frequency mna f0 in
  check_float ~tol:1e-6 "resonance magnitude" 1.0 (Cx.norm h)

(* ------------------------------------------------------------------ *)
(* Transient: RC step response = 1 − exp(−t/τ). *)

let test_tran_rc_step () =
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let h = tau /. 200.0 in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:h
      ~t_stop:(5.0 *. tau)
  in
  (* Trapezoidal integration sees the discontinuous step as a one-interval
     ramp, so the discrete response is the analytic one delayed by h/2. *)
  Array.iter
    (fun (t, y) ->
      if t > 0.0 then begin
        let expected = 1.0 -. Float.exp (-.(t -. (h /. 2.0)) /. tau) in
        if Float.abs (y -. expected) > 2e-4 then
          Alcotest.failf "t=%g: expected %g got %g" t expected y
      end)
    wave

let test_tran_initial_state () =
  let mna = Mna.build (rc_lowpass ~r:1e3 ~c:1e-9) in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:1e-8
      ~t_stop:1e-7
  in
  let t0, y0 = wave.(0) in
  check_float "starts at t=0" 0.0 t0;
  check_float "starts at rest" 0.0 y0

let test_tran_ramp_settles () =
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let wave =
    Spice.Tran.simulate mna
      ~input:(Spice.Tran.ramp_input ~rise:tau)
      ~t_step:(tau /. 100.0) ~t_stop:(10.0 *. tau)
  in
  let _, y_final = wave.(Array.length wave - 1) in
  check_float ~tol:1e-3 "ramp settles to 1" 1.0 y_final

let test_tran_energy_decay () =
  (* With a zero input and a charged capacitor, the state decays
     exponentially. *)
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let n = Numeric.Matrix.rows (Mna.g mna) in
  let x0 = Array.make n 0.0 in
  let out_row = Mna.node_row (Mna.index mna) "out" in
  x0.(out_row) <- 1.0;
  let wave =
    Spice.Tran.simulate ~x0 mna
      ~input:(fun _ -> 0.0)
      ~t_step:(tau /. 200.0) ~t_stop:(3.0 *. tau)
  in
  Array.iter
    (fun (t, y) ->
      if t > 0.1 *. tau then begin
        let expected = Float.exp (-.t /. tau) in
        if Float.abs (y -. expected) > 1e-3 then
          Alcotest.failf "decay t=%g: expected %g got %g" t expected y
      end)
    wave

let test_tran_coupled_lines_crosstalk_shape () =
  (* Crosstalk on the quiet line: starts at 0, ends at 0, and is non-zero in
     between (the non-monotonic response the paper models with a 2nd-order
     approximation). *)
  let nl = Builders.coupled_lines ~segments:8 () in
  let mna = Mna.build nl in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:2e-12
      ~t_stop:20e-9
  in
  let _, y_final = wave.(Array.length wave - 1) in
  check_float ~tol:1e-4 "crosstalk decays to zero" 0.0 y_final;
  let peak =
    Array.fold_left (fun acc (_, y) -> Float.max acc (Float.abs y)) 0.0 wave
  in
  Alcotest.(check bool) "crosstalk pulse exists" true (peak > 1e-3)

(* ------------------------------------------------------------------ *)
(* Differential outputs and current-controlled sources *)

let test_diff_output () =
  (* Wheatstone-ish divider pair: v(a) − v(b) known exactly. *)
  let nl =
    Parser.parse_string
      {|
V1 in 0 6
R1 in a 1k
R2 a 0 2k
R3 in b 2k
R4 b 0 1k
.output v(a,b)
|}
  in
  (* v(a) = 6·2/3 = 4, v(b) = 6·1/3 = 2. *)
  check_float "differential output" 2.0 (Spice.Dc.output (Mna.build nl))

let test_ccvs () =
  (* H1 senses i(V1) through R1 and produces v = r·i. *)
  let nl =
    Parser.parse_string
      {|
V1 in 0 1
R1 in 0 500
H1 out 0 V1 2k
R2 out 0 1k
.output v(out)
|}
  in
  (* i(V1) = −2 mA (leaving +, through circuit); v(out) = 2000·(−2m)·−1?
     With our convention the branch current is −2 mA, so v(out) = −4 V. *)
  check_float "CCVS output" (-4.0) (Spice.Dc.output (Mna.build nl))

let test_vccs_gain () =
  let nl =
    Parser.parse_string
      {|
V1 in 0 1
R1 in 0 1k
G1 out 0 in 0 5m
R2 out 0 2k
.output v(out)
|}
  in
  (* Current 5m·1 leaves out: v(out) = −5m·2k = −10. *)
  check_float "VCCS output" (-10.0) (Spice.Dc.output (Mna.build nl))

(* ------------------------------------------------------------------ *)
(* RL transient and superposition *)

let rl_circuit ~r ~l =
  Parser.parse_string
    (Printf.sprintf {|
V1 in 0 1
R1 in out %g
L1 out 0 %g
.output v(out)
|} r l)

let test_tran_rl_step () =
  (* Inductor to ground: v(out) = exp(−t·R/L) after a unit step (all the
     drive appears across L at t = 0, none at t = ∞). *)
  let r = 100.0 and l = 1e-6 in
  let tau = l /. r in
  let h = tau /. 200.0 in
  let mna = Mna.build (rl_circuit ~r ~l) in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:h
      ~t_stop:(5.0 *. tau)
  in
  Array.iter
    (fun (t, y) ->
      if t > 0.0 then begin
        let expected = Float.exp (-.(t -. (h /. 2.0)) /. tau) in
        if Float.abs (y -. expected) > 2e-4 then
          Alcotest.failf "RL t=%g: expected %g got %g" t expected y
      end)
    wave

let test_ac_rl_highpass () =
  (* Same circuit in frequency domain: H = jωL/R / (1 + jωL/R). *)
  let r = 100.0 and l = 1e-6 in
  let mna = Mna.build (rl_circuit ~r ~l) in
  List.iter
    (fun f ->
      let w = 2.0 *. Float.pi *. f in
      let jwt = Cx.make 0.0 (w *. l /. r) in
      let expected = Cx.div jwt (Cx.add Cx.one jwt) in
      let actual = Spice.Ac.at_frequency mna f in
      if Cx.norm (Cx.sub expected actual) > 1e-9 then
        Alcotest.failf "RL H at %g Hz" f)
    [ 1e5; 1e7; 1e9 ]

let test_ac_corner_phase () =
  (* At f = 1/(2πτ) the lowpass phase is exactly −45°. *)
  let r = 1e3 and c = 1e-9 in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let f_corner = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  check_float ~tol:1e-9 "corner phase"
    (-45.0)
    (Spice.Ac.phase_deg (Spice.Ac.at_frequency mna f_corner))

let test_tran_superposition () =
  (* The simulator is linear: response to a+b equals response to a plus
     response to b, point for point. *)
  let mna = Mna.build (rc_lowpass ~r:1e3 ~c:1e-9) in
  let f1 t = if t > 0.0 then 1.0 else 0.0 in
  let f2 t = Float.sin (2.0 *. Float.pi *. 3e5 *. t) in
  let run input =
    Spice.Tran.simulate mna ~input ~t_step:5e-9 ~t_stop:2e-6
  in
  let wa = run f1 and wb = run f2 in
  let wab = run (fun t -> f1 t +. f2 t) in
  Array.iteri
    (fun k (t, y) ->
      let expected = snd wa.(k) +. snd wb.(k) in
      if Float.abs (y -. expected) > 1e-9 then
        Alcotest.failf "superposition fails at t=%g" t)
    wab

(* ------------------------------------------------------------------ *)
(* Adaptive transient *)

let test_tran_adaptive_rc_accuracy () =
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let wave =
    Spice.Tran.simulate_adaptive ~tol:1e-7 mna ~input:Spice.Tran.step_input
      ~t_stop:(5.0 *. tau)
  in
  Array.iter
    (fun (t, y) ->
      if t > 0.2 *. tau then begin
        let expected = 1.0 -. Float.exp (-.t /. tau) in
        if Float.abs (y -. expected) > 5e-5 then
          Alcotest.failf "adaptive t=%g: expected %g got %g" t expected y
      end)
    wave

let test_tran_adaptive_stiff_efficiency () =
  (* tau = 1 µs but simulated for 1 s (10⁶ time constants): a fixed step
     resolving the edge would need ~10⁸ points; the controller should do it
     in well under 10⁴ and still settle to the right value. *)
  let r = 1e3 and c = 1e-9 in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let wave =
    Spice.Tran.simulate_adaptive ~tol:1e-6 mna ~input:Spice.Tran.step_input
      ~t_stop:1.0
  in
  let points = Array.length wave in
  if points > 10_000 then
    Alcotest.failf "adaptive used %d points on a stiff interval" points;
  let _, y_final = wave.(points - 1) in
  check_float ~tol:1e-6 "settles to 1" 1.0 y_final;
  (* Times must be strictly increasing and end at t_stop. *)
  let t_last, _ = wave.(points - 1) in
  check_float ~tol:1e-9 "reaches t_stop" 1.0 t_last;
  Array.iteri
    (fun k (t, _) ->
      if k > 0 && t <= fst wave.(k - 1) then
        Alcotest.failf "non-monotone time axis at index %d" k)
    wave

let test_tran_adaptive_tolerance_scaling () =
  (* Tighter tolerance -> more points and no worse accuracy. *)
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let mna = Mna.build (rc_lowpass ~r ~c) in
  let run tol =
    let wave =
      Spice.Tran.simulate_adaptive ~tol mna ~input:Spice.Tran.step_input
        ~t_stop:(5.0 *. tau)
    in
    let worst = ref 0.0 in
    Array.iter
      (fun (t, y) ->
        if t > 0.0 then
          worst :=
            Float.max !worst
              (Float.abs (y -. (1.0 -. Float.exp (-.t /. tau)))))
      wave;
    (Array.length wave, !worst)
  in
  let n_loose, err_loose = run 1e-4 in
  let n_tight, err_tight = run 1e-8 in
  if n_tight <= n_loose then
    Alcotest.failf "tight tol used %d points, loose used %d" n_tight n_loose;
  if err_tight > err_loose then
    Alcotest.failf "tight tol less accurate (%.3g > %.3g)" err_tight err_loose

(* ------------------------------------------------------------------ *)
(* Thermal noise *)

let test_noise_resistor_density () =
  (* Resistor loaded by an open output: S = 4kTR at low frequency. *)
  let r = 10e3 in
  let nl =
    Parser.parse_string
      (Printf.sprintf {|
I1 out 0 0
R1 out 0 %g
C1 out 0 1f
.output v(out)
|} r)
  in
  let mna = Mna.build nl in
  let s_out = Spice.Noise.output_density mna 1.0 in
  check_float ~tol:1e-6 "4kTR" (4.0 *. Spice.Noise.boltzmann *. 300.0 *. r) s_out

let test_noise_kt_over_c () =
  (* The classic result: total noise of an RC lowpass integrated over all
     frequency is kT/C, independent of R. *)
  List.iter
    (fun (r, c) ->
      let mna = Mna.build (rc_lowpass ~r ~c) in
      let f_pole = 1.0 /. (2.0 *. Float.pi *. r *. c) in
      let total =
        Spice.Noise.integrated ~points:400 mna ~f_start:(f_pole /. 1e4)
          ~f_stop:(f_pole *. 1e4)
      in
      let expected = Spice.Noise.boltzmann *. 300.0 /. c in
      check_float ~tol:2e-3
        (Printf.sprintf "kT/C for R=%g C=%g" r c)
        expected total)
    [ (1e3, 1e-9); (50e3, 1e-12) ]

let test_noise_contributions_ranked () =
  (* In a two-resistor divider the smaller resistor... contributions must
     sum to the total and be sorted descending. *)
  let nl =
    Parser.parse_string
      {|
V1 in 0 1
R1 in out 1k
R2 out 0 9k
C1 out 0 1p
.output v(out)
|}
  in
  let mna = Mna.build nl in
  let parts = Spice.Noise.contributions mna 1e3 in
  Alcotest.(check int) "two noisy elements" 2 (List.length parts);
  let total = Spice.Noise.output_density mna 1e3 in
  check_float ~tol:1e-9 "parts sum to total" total
    (List.fold_left (fun acc (_, d) -> acc +. d) 0.0 parts);
  (match parts with
  | (_, a) :: (_, b) :: _ ->
    Alcotest.(check bool) "sorted descending" true (a >= b)
  | _ -> Alcotest.fail "expected two entries")

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "spice"
    [
      ( "dc",
        [
          quick "voltage divider" test_dc_divider;
          quick "node voltages" test_dc_node_voltage;
          quick "differential output" test_diff_output;
          quick "CCVS" test_ccvs;
          quick "VCCS" test_vccs_gain;
        ] );
      ( "ac",
        [
          quick "RC lowpass matches analytic H(jw)" test_ac_lowpass;
          quick "corner frequency is −3 dB, −45°" test_ac_corner_is_3db;
          quick "log sweep monotone for lowpass" test_ac_sweep_monotone;
          quick "series RLC resonance" test_ac_rlc_resonance;
          quick "RL highpass matches analytic H(jw)" test_ac_rl_highpass;
          quick "exact -45 deg at the corner" test_ac_corner_phase;
        ] );
      ( "noise",
        [
          quick "4kTR density" test_noise_resistor_density;
          quick "kT/C integrated noise" test_noise_kt_over_c;
          quick "contribution breakdown" test_noise_contributions_ranked;
        ] );
      ( "tran",
        [
          quick "RC step response analytic" test_tran_rc_step;
          quick "initial state" test_tran_initial_state;
          quick "ramp input settles" test_tran_ramp_settles;
          quick "free decay from initial condition" test_tran_energy_decay;
          quick "coupled-line crosstalk pulse" test_tran_coupled_lines_crosstalk_shape;
          quick "RL step response analytic" test_tran_rl_step;
          quick "superposition holds pointwise" test_tran_superposition;
          quick "adaptive step accuracy" test_tran_adaptive_rc_accuracy;
          quick "adaptive step on stiff interval" test_tran_adaptive_stiff_efficiency;
          quick "adaptive tolerance scaling" test_tran_adaptive_tolerance_scaling;
        ] );
    ]
