(* Tests for the nonlinear front end: device models, the Newton DC solver,
   and small-signal linearization (the "linearized" in the paper's title). *)

module Element = Circuit.Element
module Models = Nonlinear.Models
module Nl = Nonlinear.Netlist
module Newton = Nonlinear.Newton
module Linearize = Nonlinear.Linearize

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let resistor name pos neg value =
  Element.make ~name ~kind:Element.Resistor ~pos ~neg ~value ()

let capacitor name pos neg value =
  Element.make ~name ~kind:Element.Capacitor ~pos ~neg ~value ()

let vsource name pos neg value =
  Element.make ~name ~kind:Element.Vsource ~pos ~neg ~value ()

(* ------------------------------------------------------------------ *)
(* Device models *)

let test_diode_model () =
  let m = Models.default_diode in
  let i0, _ = Models.diode_current m 0.0 in
  check_float "zero bias current" 0.0 i0;
  (* Derivative consistency by central differences over the useful range. *)
  List.iter
    (fun v ->
      let h = 1e-7 in
      let ip, _ = Models.diode_current m (v +. h) in
      let im, _ = Models.diode_current m (v -. h) in
      let _, g = Models.diode_current m v in
      let fd = (ip -. im) /. (2.0 *. h) in
      check_float ~tol:1e-4 (Printf.sprintf "g at %g" v) fd g)
    [ -0.5; 0.0; 0.3; 0.6; 0.7 ]

let test_diode_overflow_safe () =
  let m = Models.default_diode in
  let i, g = Models.diode_current m 100.0 in
  Alcotest.(check bool) "finite current at 100 V" true (Float.is_finite i);
  Alcotest.(check bool) "finite conductance" true (Float.is_finite g);
  Alcotest.(check bool) "monotone" true (i > 0.0 && g > 0.0)

let test_mosfet_regions () =
  let m = { Models.default_nmos with lambda = 0.0 } in
  (* Cutoff. *)
  let op = Models.mosfet_current m ~vgs:0.3 ~vds:1.0 in
  check_float "cutoff ids" 0.0 op.Models.ids;
  (* Saturation: ids = kp/2·vov². *)
  let op = Models.mosfet_current m ~vgs:1.5 ~vds:2.0 in
  check_float "saturation ids" (0.5 *. 200e-6 *. 1.0) op.Models.ids;
  check_float "saturation gm" (200e-6 *. 1.0) op.Models.gm;
  check_float "saturation gds (lambda 0)" 0.0 op.Models.gds;
  (* Triode: ids = kp(vov·vds − vds²/2). *)
  let op = Models.mosfet_current m ~vgs:1.5 ~vds:0.4 in
  check_float "triode ids" (200e-6 *. ((1.0 *. 0.4) -. 0.08)) op.Models.ids

let test_mosfet_derivatives_fd () =
  let m = Models.default_nmos in
  let h = 1e-6 in
  List.iter
    (fun (vgs, vds) ->
      let op = Models.mosfet_current m ~vgs ~vds in
      let fd_gm =
        (let a = Models.mosfet_current m ~vgs:(vgs +. h) ~vds in
         let b = Models.mosfet_current m ~vgs:(vgs -. h) ~vds in
         (a.Models.ids -. b.Models.ids) /. (2.0 *. h))
      in
      let fd_gds =
        (let a = Models.mosfet_current m ~vgs ~vds:(vds +. h) in
         let b = Models.mosfet_current m ~vgs ~vds:(vds -. h) in
         (a.Models.ids -. b.Models.ids) /. (2.0 *. h))
      in
      check_float ~tol:1e-3 (Printf.sprintf "gm at %g,%g" vgs vds) fd_gm op.Models.gm;
      check_float ~tol:1e-3 (Printf.sprintf "gds at %g,%g" vgs vds) fd_gds
        op.Models.gds)
    [ (1.5, 2.0); (1.5, 0.4); (1.2, -0.5); (0.8, 1.0) ]

let test_mosfet_reverse_symmetry () =
  (* Swapping drain and source negates the current: ids(vg−vs, vd−vs) with
     roles reversed. *)
  let m = { Models.default_nmos with lambda = 0.0 } in
  let vg = 1.8 and vd = 0.4 and vs = 1.0 in
  let forward = Models.mosfet_current m ~vgs:(vg -. vs) ~vds:(vd -. vs) in
  let swapped = Models.mosfet_current m ~vgs:(vg -. vd) ~vds:(vs -. vd) in
  check_float ~tol:1e-12 "reverse symmetry" (-.swapped.Models.ids)
    forward.Models.ids

let test_pmos_mirror () =
  let n = { Models.default_nmos with lambda = 0.0 } in
  let p = { n with polarity = Models.Pmos; kp = n.Models.kp } in
  let opn = Models.mosfet_current n ~vgs:1.5 ~vds:2.0 in
  let opp = Models.mosfet_current p ~vgs:(-1.5) ~vds:(-2.0) in
  check_float "pmos mirrors nmos" (-.opn.Models.ids) opp.Models.ids;
  check_float "pmos gm positive w.r.t. |vgs|" opn.Models.gm opp.Models.gm

let test_bjt_model () =
  let m = Models.default_npn in
  let op = Models.bjt_current m ~vbe:0.65 ~vce:2.0 in
  Alcotest.(check bool) "collector current flows" true (op.Models.ic > 1e-6);
  check_float ~tol:1e-6 "beta relation" (op.Models.ic /. (m.Models.beta *. (1.0 +. (2.0 /. m.Models.v_early))))
    (op.Models.ib *. 1.0);
  check_float ~tol:1e-3 "gm = ic/vt (to Early factor)"
    (op.Models.ic /. Models.thermal_voltage /. (1.0 +. (2.0 /. m.Models.v_early)) *. (1.0 +. (2.0 /. m.Models.v_early)))
    op.Models.gm_b

(* ------------------------------------------------------------------ *)
(* Newton DC solve *)

let diode_resistor ~vdd ~r =
  Nl.empty
  |> Fun.flip Nl.add_element (vsource "Vdd" "vdd" "0" vdd)
  |> Fun.flip Nl.add_element (resistor "R1" "vdd" "d" r)
  |> Fun.flip Nl.add_device
       (Nl.Diode { name = "D1"; anode = "d"; cathode = "0"; model = Models.default_diode })

(* Reference solution of (vdd − v)/r = Is(exp(v/vt) − 1) by bisection. *)
let diode_reference ~vdd ~r =
  let m = Models.default_diode in
  let f v =
    let i, _ = Models.diode_current m v in
    ((vdd -. v) /. r) -. i
  in
  let rec bisect lo hi n =
    if n = 0 then 0.5 *. (lo +. hi)
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if f mid > 0.0 then bisect mid hi (n - 1) else bisect lo mid (n - 1)
    end
  in
  bisect 0.0 (Float.min vdd 2.0) 100

let test_newton_diode () =
  let vdd = 5.0 and r = 1e3 in
  let sol = Newton.solve (diode_resistor ~vdd ~r) in
  let expected = diode_reference ~vdd ~r in
  check_float ~tol:1e-7 "diode junction voltage" expected
    (Newton.voltage sol "d");
  Alcotest.(check bool) "residual small" true (sol.Newton.residual < 1e-8)

let test_newton_diode_small_drive () =
  (* Sub-threshold drive: the diode barely conducts. *)
  let vdd = 0.2 and r = 1e3 in
  let sol = Newton.solve (diode_resistor ~vdd ~r) in
  let expected = diode_reference ~vdd ~r in
  check_float ~tol:1e-8 "weak drive" expected (Newton.voltage sol "d")

let common_source ~vdd ~vg ~rd =
  Nl.empty
  |> Fun.flip Nl.add_element (vsource "Vdd" "vdd" "0" vdd)
  |> Fun.flip Nl.add_element (vsource "Vg" "g" "0" vg)
  |> Fun.flip Nl.add_element (resistor "Rd" "vdd" "d" rd)
  |> Fun.flip Nl.add_device
       (Nl.Mosfet
          { name = "M1"; drain = "d"; gate = "g"; source = "0";
            model = Models.default_nmos })
  |> Fun.flip Nl.with_ac_input "Vg"
  |> Fun.flip Nl.with_output (Circuit.Netlist.Node "d")

let cs_reference ~vdd ~vg ~rd =
  let m = Models.default_nmos in
  let f v =
    let op = Models.mosfet_current m ~vgs:vg ~vds:v in
    ((vdd -. v) /. rd) -. op.Models.ids
  in
  let rec bisect lo hi n =
    if n = 0 then 0.5 *. (lo +. hi)
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if f mid > 0.0 then bisect mid hi (n - 1) else bisect lo mid (n - 1)
    end
  in
  bisect 0.0 vdd 100

let test_newton_common_source () =
  let vdd = 3.3 and vg = 1.0 and rd = 10e3 in
  let sol = Newton.solve (common_source ~vdd ~vg ~rd) in
  check_float ~tol:1e-7 "drain voltage" (cs_reference ~vdd ~vg ~rd)
    (Newton.voltage sol "d");
  check_float ~tol:1e-9 "source fixes gate" vg (Newton.voltage sol "g")

let test_newton_bjt_stage () =
  (* Common-emitter stage with base current from a large resistor. *)
  let nl =
    Nl.empty
    |> Fun.flip Nl.add_element (vsource "Vcc" "vcc" "0" 5.0)
    |> Fun.flip Nl.add_element (resistor "Rb" "vcc" "b" 500e3)
    |> Fun.flip Nl.add_element (resistor "Rc" "vcc" "c" 2e3)
    |> Fun.flip Nl.add_device
         (Nl.Bjt
            { name = "Q1"; collector = "c"; base = "b"; emitter = "0";
              model = Models.default_npn })
  in
  let sol = Newton.solve nl in
  let vbe = Newton.voltage sol "b" in
  let vc = Newton.voltage sol "c" in
  Alcotest.(check bool) "vbe in the junction range" true (vbe > 0.5 && vbe < 0.8);
  Alcotest.(check bool) "transistor pulled the collector down" true
    (vc < 4.0 && vc > 0.0);
  (* KCL at the collector. *)
  let op = Models.bjt_current Models.default_npn ~vbe ~vce:vc in
  check_float ~tol:1e-6 "collector KCL" ((5.0 -. vc) /. 2e3) op.Models.ic

let test_newton_nonconvergence_reported () =
  (* A device with no DC path at all gives a singular system; the solver
     must fail loudly rather than return garbage. *)
  let nl =
    Nl.empty
    |> Fun.flip Nl.add_element (capacitor "C1" "a" "0" 1e-12)
    |> Fun.flip Nl.add_device
         (Nl.Diode { name = "D1"; anode = "b"; cathode = "a"; model = Models.default_diode })
  in
  match Newton.solve ~gmin:0.0 nl with
  | exception (Newton.No_convergence _ | Failure _) -> ()
  | _sol -> Alcotest.fail "expected a failure on a singular DC system"

(* ------------------------------------------------------------------ *)
(* Linearization *)

let test_linearize_gain_matches_fd () =
  (* The small-signal DC gain of the linearized netlist must match the
     finite-difference slope of the nonlinear transfer curve. *)
  let vdd = 3.3 and vg = 1.0 and rd = 10e3 in
  let nl = common_source ~vdd ~vg ~rd in
  let sol = Newton.solve nl in
  let lin = Linearize.netlist nl sol in
  let gain_lin = Spice.Dc.output (Circuit.Mna.build lin) in
  let out v =
    Newton.voltage (Newton.solve (common_source ~vdd ~vg:v ~rd)) "d"
  in
  let h = 1e-5 in
  let gain_fd = (out (vg +. h) -. out (vg -. h)) /. (2.0 *. h) in
  check_float ~tol:1e-4 "linearized dc gain = slope of transfer curve" gain_fd
    gain_lin;
  Alcotest.(check bool) "inverting stage" true (gain_lin < -1.0)

let test_linearize_analytic_gain () =
  (* Saturation: gain = −gm·(Rd ∥ 1/gds). *)
  let vdd = 3.3 and vg = 1.0 and rd = 10e3 in
  let nl = common_source ~vdd ~vg ~rd in
  let sol = Newton.solve nl in
  let vd = Newton.voltage sol "d" in
  let op = Models.mosfet_current Models.default_nmos ~vgs:vg ~vds:vd in
  let r_out = 1.0 /. ((1.0 /. rd) +. op.Models.gds) in
  let expected = -.op.Models.gm *. r_out in
  let lin = Linearize.netlist nl sol in
  check_float ~tol:1e-9 "analytic small-signal gain" expected
    (Spice.Dc.output (Circuit.Mna.build lin))

let test_linearize_element_inventory () =
  let nl = common_source ~vdd:3.3 ~vg:1.0 ~rd:10e3 in
  let sol = Newton.solve nl in
  let lin = Linearize.netlist nl sol in
  (* Rd + gm VCCS + gds + cgs + cgd (plus two 0/1-amplitude V sources). *)
  let total, storage = Circuit.Netlist.stats lin in
  Alcotest.(check int) "element count" 5 total;
  Alcotest.(check int) "capacitors" 2 storage;
  Alcotest.(check bool) "gm element exists" true
    (Option.is_some (Circuit.Netlist.find lin "gM1_m"))

let test_linearized_awe_pipeline () =
  (* End-to-end: nonlinear stage -> operating point -> linearized netlist ->
     AWE model; the dominant pole must match 1/(2π·Rout·Cload). *)
  let cs = common_source ~vdd:3.3 ~vg:1.0 ~rd:10e3 in
  let nl = Nl.add_element cs (capacitor "Cl" "d" "0" 1e-12) in
  let sol = Newton.solve nl in
  let lin = Linearize.netlist nl sol in
  let rom = (Awe.Driver.analyze ~order:2 lin).Awe.Driver.rom in
  let vd = Newton.voltage sol "d" in
  let op = Models.mosfet_current Models.default_nmos ~vgs:1.0 ~vds:vd in
  let r_out = 1.0 /. ((1.0 /. 10e3) +. op.Models.gds) in
  let c_total = 1e-12 +. Models.default_nmos.Models.cgd in
  (* Miller effect on cgd is small here but not negligible; allow a few
     percent. *)
  let f_expected = 1.0 /. (2.0 *. Float.pi *. r_out *. c_total) in
  let f_measured = Awe.Measures.dominant_pole_hz rom in
  if Float.abs (f_measured -. f_expected) > 0.2 *. f_expected then
    Alcotest.failf "dominant pole %g Hz vs RC estimate %g Hz" f_measured
      f_expected

let test_linearized_awesymbolic () =
  (* The full paper pipeline on a transistor circuit: linearize, mark the
     load capacitance symbolic, compile, and check the identity against
     numeric AWE. *)
  let cs = common_source ~vdd:3.3 ~vg:1.0 ~rd:10e3 in
  let nl = Nl.add_element cs (capacitor "Cl" "d" "0" 1e-12) in
  let sol = Newton.solve nl in
  let lin = Linearize.netlist nl sol in
  let lin = Circuit.Netlist.mark_symbolic lin "Cl" (Symbolic.Symbol.intern "Cl") in
  let model = Awesymbolic.Model.build ~order:2 lin in
  List.iter
    (fun cl ->
      let v = Awesymbolic.Model.values model [ ("Cl", cl) ] in
      let m_sym = Awesymbolic.Model.eval_moments model v in
      let lin_num =
        Circuit.Netlist.replace lin
          (Element.set_stamp_value
             (Option.get (Circuit.Netlist.find lin "Cl"))
             cl)
      in
      let m_num =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Circuit.Mna.build lin_num))
      in
      Array.iteri
        (fun k mk ->
          check_float ~tol:1e-9 (Printf.sprintf "m%d at Cl=%g" k cl) mk
            m_sym.(k))
        m_num)
    [ 0.2e-12; 1e-12; 5e-12 ]

let test_operating_report () =
  let nl = common_source ~vdd:3.3 ~vg:1.0 ~rd:10e3 in
  let sol = Newton.solve nl in
  let report = Linearize.operating_report nl sol in
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go k = k + n <= h && (String.sub haystack k n = needle || go (k + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the device" true (contains report "M1");
  Alcotest.(check bool) "mentions gm" true (contains report "gm")

(* ------------------------------------------------------------------ *)
(* Nonlinear deck parser *)

let nonlinear_deck =
  {|
* mixed-device deck
Vdd vdd 0 3.3
Vin g 0 1.0
Rd vdd d 10k
M1 d g 0 NMOS KP=300u VTH=0.6 LAMBDA=0
D1 d 0 IS=1e-15 CJ0=2p
Q1 c b 0 BF=100
Rb vdd b 1meg
Rc vdd c 2k
.input Vin
.output v(d)
|}

let test_nl_parser_devices () =
  let nl = Nonlinear.Parser.parse_string nonlinear_deck in
  Alcotest.(check int) "5 linear elements" 5 (List.length nl.Nl.linear);
  Alcotest.(check int) "3 devices" 3 (List.length nl.Nl.devices);
  (match Nl.find_device nl "M1" with
  | Some (Nl.Mosfet { model; _ }) ->
    check_float "KP" 300e-6 model.Models.kp;
    check_float "VTH" 0.6 model.Models.vth;
    check_float "LAMBDA" 0.0 model.Models.lambda;
    check_float "default CGS kept" Models.default_nmos.Models.cgs model.Models.cgs
  | _ -> Alcotest.fail "M1 missing or wrong kind");
  (match Nl.find_device nl "D1" with
  | Some (Nl.Diode { model; _ }) ->
    check_float "IS" 1e-15 model.Models.i_sat;
    check_float "CJ0" 2e-12 model.Models.cj0
  | _ -> Alcotest.fail "D1 missing");
  (match Nl.find_device nl "Q1" with
  | Some (Nl.Bjt { model; _ }) -> check_float "BF" 100.0 model.Models.beta
  | _ -> Alcotest.fail "Q1 missing");
  Alcotest.(check (option string)) "ac input" (Some "Vin") nl.Nl.ac_input

let test_nl_parser_errors () =
  let expect text =
    match Nonlinear.Parser.parse_string text with
    | exception Nonlinear.Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect "M1 d g 0 CMOS";
  expect "M1 d g NMOS";
  expect "D1 a b IS=oops";
  expect "R1 a b 1k\n.symbolic R1"

let test_nl_parser_pipeline () =
  (* Deck → bias → linearize → AWE end to end. *)
  let nl =
    Nonlinear.Parser.parse_string
      {|
Vdd vdd 0 3.3
Vin g 0 1.0
Rd vdd d 10k
M1 d g 0 NMOS
Cl d 0 1p
.input Vin
.output v(d)
|}
  in
  let sol = Newton.solve nl in
  let lin = Linearize.netlist nl sol in
  let rom = (Awe.Driver.analyze ~order:2 lin).Awe.Driver.rom in
  Alcotest.(check bool) "inverting gain > 1" true
    (Awe.Rom.dc_gain rom < -1.0);
  (* Deck text survives an export/parse/AWE round-trip. *)
  let lin2 = Circuit.Parser.parse_string (Circuit.Export.to_deck lin) in
  let rom2 = (Awe.Driver.analyze ~order:2 lin2).Awe.Driver.rom in
  check_float ~tol:1e-12 "round-tripped model identical"
    (Awe.Rom.dc_gain rom) (Awe.Rom.dc_gain rom2)

(* ------------------------------------------------------------------ *)
(* Large-signal transient *)

let test_tran_linear_matches_spice () =
  (* With no devices, the nonlinear transient must agree with the linear
     trapezoidal simulator (same method, different formulation). *)
  let r = 1e3 and c = 1e-9 in
  let tau = r *. c in
  let nl =
    Nl.empty
    |> Fun.flip Nl.add_element (vsource "Vin" "in" "0" 0.0)
    |> Fun.flip Nl.add_element (resistor "R1" "in" "out" r)
    |> Fun.flip Nl.add_element (capacitor "C1" "out" "0" c)
    |> Fun.flip Nl.with_ac_input "Vin"
    |> Fun.flip Nl.with_output (Circuit.Netlist.Node "out")
  in
  let input = Spice.Tran.step_input in
  let wave_nl =
    Nonlinear.Tran.simulate nl ~input ~t_step:(tau /. 100.0) ~t_stop:(4.0 *. tau)
  in
  let lin =
    Circuit.Parser.parse_string
      (Printf.sprintf {|
V1 in 0 1
R1 in out %g
C1 out 0 %g
.output v(out)
|} r c)
  in
  let wave_lin =
    Spice.Tran.simulate (Circuit.Mna.build lin) ~input ~t_step:(tau /. 100.0)
      ~t_stop:(4.0 *. tau)
  in
  Array.iteri
    (fun k (t, y) ->
      let _, y_ref = wave_lin.(k) in
      check_float ~tol:1e-9 (Printf.sprintf "t=%g" t) y_ref y)
    wave_nl

let inductor name pos neg value =
  Element.make ~name ~kind:Element.Inductor ~pos ~neg ~value ()

let test_tran_rl_matches_spice () =
  (* Inductor companion path: a linear RL circuit through the nonlinear
     engine must agree with the linear trapezoidal simulator exactly. *)
  let r = 100.0 and l = 1e-6 in
  let tau = l /. r in
  let nl =
    Nl.empty
    |> Fun.flip Nl.add_element (vsource "Vin" "in" "0" 0.0)
    |> Fun.flip Nl.add_element (resistor "R1" "in" "out" r)
    |> Fun.flip Nl.add_element (inductor "L1" "out" "0" l)
    |> Fun.flip Nl.with_ac_input "Vin"
    |> Fun.flip Nl.with_output (Circuit.Netlist.Node "out")
  in
  let input = Spice.Tran.step_input in
  let wave_nl =
    Nonlinear.Tran.simulate nl ~input ~t_step:(tau /. 100.0)
      ~t_stop:(4.0 *. tau)
  in
  let lin =
    Circuit.Parser.parse_string
      (Printf.sprintf {|
V1 in 0 1
R1 in out %g
L1 out 0 %g
.output v(out)
|} r l)
  in
  let wave_lin =
    Spice.Tran.simulate (Circuit.Mna.build lin) ~input ~t_step:(tau /. 100.0)
      ~t_stop:(4.0 *. tau)
  in
  Array.iteri
    (fun k (t, y) ->
      let _, y_ref = wave_lin.(k) in
      check_float ~tol:1e-9 (Printf.sprintf "RL t=%g" t) y_ref y)
    wave_nl

let test_tran_flyback_clamp () =
  (* Interrupting an inductor current forces the switch node negative; a
     freewheel diode clamps the kick near one forward drop.  Exercises the
     inductor companion history together with the Newton device solve. *)
  let l = 10e-6 in
  let t_off = 50e-6 in
  let build ~with_diode =
    let base =
      Nl.empty
      |> Fun.flip Nl.add_element
           (Element.make ~name:"Iin" ~kind:Element.Isource ~pos:"out" ~neg:"0"
              ~value:10e-3 ())
      |> Fun.flip Nl.add_element (inductor "L1" "out" "0" l)
      (* The bleed keeps the no-diode case solvable after turn-off; 2 kΩ
         gives a decay constant L/R = 5 ns the timestep can resolve. *)
      |> Fun.flip Nl.add_element (resistor "Rbleed" "out" "0" 2e3)
    in
    let base =
      if with_diode then
        Nl.add_device base
          (Nl.Diode
             { name = "D1"; anode = "0"; cathode = "out";
               model = Models.default_diode })
      else base
    in
    base
    |> Fun.flip Nl.with_ac_input "Iin"
    |> Fun.flip Nl.with_output (Circuit.Netlist.Node "out")
  in
  (* Ideal current interruption: 10 mA through the inductor, then open. *)
  let input t = if t < t_off then 10e-3 else 0.0 in
  let minimum nl =
    Nonlinear.Tran.simulate nl ~input ~t_step:0.5e-9 ~t_stop:(t_off +. 100e-9)
    |> Array.fold_left (fun acc (_, y) -> Float.min acc y) infinity
  in
  let v_clamped = minimum (build ~with_diode:true) in
  let v_open = minimum (build ~with_diode:false) in
  (* Without the diode the inductor drives the node toward −i·Rbleed =
     −20 V; with it the node stops near a diode drop below ground. *)
  if v_open > -15.0 then
    Alcotest.failf "expected a large unclamped kick, got %.1f V" v_open;
  if v_clamped < -1.0 || v_clamped > -0.3 then
    Alcotest.failf "diode clamp failed: minimum %.3f V" v_clamped

let test_tran_rectifier () =
  (* Half-wave rectifier with an RC reservoir: output sits one diode drop
     under the sine peak and ripples mildly. *)
  let f = 1e3 in
  let nl =
    Nl.empty
    |> Fun.flip Nl.add_element (vsource "Vin" "in" "0" 0.0)
    |> Fun.flip Nl.add_device
         (Nl.Diode { name = "D1"; anode = "in"; cathode = "out";
                     model = Nonlinear.Models.default_diode })
    |> Fun.flip Nl.add_element (resistor "Rl" "out" "0" 10e3)
    |> Fun.flip Nl.add_element (capacitor "Cl" "out" "0" 10e-6)
    |> Fun.flip Nl.with_ac_input "Vin"
    |> Fun.flip Nl.with_output (Circuit.Netlist.Node "out")
  in
  let input t = 5.0 *. Float.sin (2.0 *. Float.pi *. f *. t) in
  let wave =
    Nonlinear.Tran.simulate nl ~input ~t_step:(1.0 /. f /. 200.0)
      ~t_stop:(5.0 /. f)
  in
  (* Look at the last cycle only (settled). *)
  let settled =
    Array.to_list wave |> List.filter (fun (t, _) -> t > 4.0 /. f)
  in
  let vmax = List.fold_left (fun acc (_, y) -> Float.max acc y) neg_infinity settled in
  let vmin = List.fold_left (fun acc (_, y) -> Float.min acc y) infinity settled in
  Alcotest.(check bool)
    (Printf.sprintf "peak %.3f within a diode drop of 5" vmax)
    true
    (vmax > 4.0 && vmax < 5.0);
  Alcotest.(check bool)
    (Printf.sprintf "ripple %.3f bounded" (vmax -. vmin))
    true
    (vmax -. vmin < 0.6 && vmax -. vmin > 0.001)

let test_tran_settles_to_dc () =
  (* Step the gate of the common-source stage: the output must settle to
     the DC solution at the final input. *)
  let nl =
    Nl.add_element (common_source ~vdd:3.3 ~vg:0.8 ~rd:10e3)
      (capacitor "Cl" "d" "0" 1e-12)
  in
  let input t = if t <= 0.0 then 0.8 else 1.1 in
  let wave =
    Nonlinear.Tran.simulate nl ~input ~t_step:2e-10 ~t_stop:2e-7
  in
  let _, y_final = wave.(Array.length wave - 1) in
  let dc_final =
    Newton.voltage (Newton.solve (common_source ~vdd:3.3 ~vg:1.1 ~rd:10e3)) "d"
  in
  check_float ~tol:1e-6 "settles to the new operating point" dc_final y_final;
  let _, y0 = wave.(0) in
  let dc_start =
    Newton.voltage (Newton.solve (common_source ~vdd:3.3 ~vg:0.8 ~rd:10e3)) "d"
  in
  check_float ~tol:1e-9 "starts at the old operating point" dc_start y0

let test_tran_small_signal_consistency () =
  (* THE cross-check of the linearized methodology: drive the stage with a
     small sine around bias; the settled output amplitude must match the
     linearized netlist's |H(jf)|. *)
  let vdd = 3.3 and vg = 1.0 and rd = 10e3 in
  let nl =
    Nl.add_element (common_source ~vdd ~vg ~rd) (capacitor "Cl" "d" "0" 100e-12)
  in
  let f = 1e5 in
  let amp = 1e-3 in
  let input t = vg +. (amp *. Float.sin (2.0 *. Float.pi *. f *. t)) in
  let wave =
    Nonlinear.Tran.simulate nl ~input ~t_step:(1.0 /. f /. 400.0)
      ~t_stop:(6.0 /. f)
  in
  let settled =
    Array.to_list wave |> List.filter (fun (t, _) -> t > 5.0 /. f)
  in
  let vmax = List.fold_left (fun acc (_, y) -> Float.max acc y) neg_infinity settled in
  let vmin = List.fold_left (fun acc (_, y) -> Float.min acc y) infinity settled in
  let measured_gain = (vmax -. vmin) /. 2.0 /. amp in
  let sol = Newton.solve nl in
  let lin = Linearize.netlist nl sol in
  let h = Spice.Ac.at_frequency (Circuit.Mna.build lin) f in
  check_float ~tol:2e-2 "large-signal amplitude = small-signal |H|"
    (Numeric.Cx.norm h) measured_gain

(* ------------------------------------------------------------------ *)
(* Distortion *)

module Distortion = Nonlinear.Distortion

(* A square-law stage with λ = 0 has an exact harmonic expansion:
   iD = K(Vov + a·sinθ)² = K(Vov² + a²/2) + 2KVov·a·sinθ − (Ka²/2)·cos2θ,
   so HD2 = a / (4·Vov) exactly and HD3 = 0. *)
let square_law_stage ~vg =
  let model = { Models.default_nmos with Models.lambda = 0.0 } in
  Nl.empty
  |> Fun.flip Nl.add_element (vsource "Vdd" "vdd" "0" 3.3)
  |> Fun.flip Nl.add_element (vsource "Vg" "g" "0" vg)
  |> Fun.flip Nl.add_element (resistor "Rd" "vdd" "d" 40e3)
  |> Fun.flip Nl.add_device
       (Nl.Mosfet { name = "M1"; drain = "d"; gate = "g"; source = "0"; model })
  |> Fun.flip Nl.with_ac_input "Vg"
  |> Fun.flip Nl.with_output (Circuit.Netlist.Node "d")

let test_distortion_square_law_hd2 () =
  let vg = 1.0 in
  let vov = vg -. Models.default_nmos.Models.vth in
  let run a =
    Distortion.measure (square_law_stage ~vg) ~bias:vg ~f:1e3 ~amplitude:a
  in
  let a = 0.05 in
  let d = run a in
  check_float ~tol:1e-4 "HD2 = a/(4·Vov)" (a /. (4.0 *. vov))
    (Distortion.hd2 d);
  check_float ~tol:1e-6 "HD3 = 0 for pure square law" 0.0 (Distortion.hd3 d);
  (* Even-order distortion grows linearly with drive amplitude. *)
  let d2 = run (2.0 *. a) in
  check_float ~tol:1e-3 "HD2 doubles with amplitude" 2.0
    (Distortion.hd2 d2 /. Distortion.hd2 d)

let test_distortion_linear_circuit_clean () =
  (* A linear RC low-pass produces no harmonics at all. *)
  let nl =
    Nl.empty
    |> Fun.flip Nl.add_element (vsource "Vin" "in" "0" 0.0)
    |> Fun.flip Nl.add_element (resistor "R1" "in" "out" 1e3)
    |> Fun.flip Nl.add_element (capacitor "C1" "out" "0" 100e-9)
    |> Fun.flip Nl.with_ac_input "Vin"
    |> Fun.flip Nl.with_output (Circuit.Netlist.Node "out")
  in
  let d = Distortion.measure nl ~f:1e3 ~amplitude:1.0 in
  if d.Distortion.thd > 1e-6 then
    Alcotest.failf "linear circuit shows THD %.3e" d.Distortion.thd;
  if d.Distortion.fundamental < 0.5 then
    Alcotest.failf "fundamental lost: %.3e" d.Distortion.fundamental

let test_distortion_half_wave_clipper () =
  (* A diode clipper half-wave-rectifies the sine: a textbook Fourier
     series with DC ≈ A/π, fundamental ≈ A/2 and h2 ≈ 2A/(3π). *)
  let nl =
    Nl.empty
    |> Fun.flip Nl.add_element (vsource "Vin" "in" "0" 0.0)
    |> Fun.flip Nl.add_device
         (Nl.Diode
            { name = "D1"; anode = "in"; cathode = "out";
              model = Models.default_diode })
    |> Fun.flip Nl.add_element (resistor "Rl" "out" "0" 10e3)
    |> Fun.flip Nl.with_ac_input "Vin"
    |> Fun.flip Nl.with_output (Circuit.Netlist.Node "out")
  in
  let a = 5.0 in
  let d = Distortion.measure nl ~f:1e3 ~amplitude:a ~max_harmonic:4 in
  let hd2 = Distortion.hd2 d in
  if hd2 < 0.2 || hd2 > 0.6 then
    Alcotest.failf "clipper HD2 out of band: %.3f" hd2;
  if d.Distortion.harmonics.(0) < 0.8 then
    Alcotest.failf "missing rectified DC component: %.3f"
      d.Distortion.harmonics.(0);
  if d.Distortion.thd < 0.2 then
    Alcotest.failf "clipper THD suspiciously low: %.3f" d.Distortion.thd

let test_two_tone_square_law () =
  (* Square-law stage, two tones: IM2/fundamental = a/(2·Vov) exactly, and
     a pure second-order nonlinearity produces no IM3 at all. *)
  let vg = 1.0 in
  let vov = vg -. Models.default_nmos.Models.vth in
  let a = 0.02 in
  let d =
    Distortion.two_tone (square_law_stage ~vg) ~bias:vg ~f_base:1e3 ~k1:9
      ~k2:10 ~amplitude:a
  in
  check_float ~tol:1e-4 "IM2 = a/(2·Vov)"
    (a /. (2.0 *. vov))
    (d.Distortion.im2 /. d.Distortion.fund1);
  check_float ~tol:1e-6 "IM3 = 0 for square law" 0.0
    (d.Distortion.im3 /. d.Distortion.fund1);
  check_float ~tol:1e-3 "equal tones respond equally" 1.0
    (d.Distortion.fund2 /. d.Distortion.fund1)

let test_two_tone_exponential_im3_slope () =
  (* An exponential nonlinearity (diode) has genuine third-order products;
     IM3/fundamental must grow as amplitude² (doubling a quadruples it). *)
  let stage =
    Nl.empty
    |> Fun.flip Nl.add_element (vsource "Vin" "in" "0" 0.75)
    |> Fun.flip Nl.add_device
         (Nl.Diode
            { name = "D1"; anode = "in"; cathode = "out";
              model = Models.default_diode })
    |> Fun.flip Nl.add_element (resistor "Rl" "out" "0" 50.0)
    |> Fun.flip Nl.with_ac_input "Vin"
    |> Fun.flip Nl.with_output (Circuit.Netlist.Node "out")
  in
  let run a =
    let d =
      Distortion.two_tone stage ~bias:0.75 ~f_base:1e3 ~k1:9 ~k2:10
        ~amplitude:a ~samples:512
    in
    d.Distortion.im3 /. d.Distortion.fund1
  in
  let r1 = run 2e-3 and r2 = run 4e-3 in
  if r1 < 1e-9 then Alcotest.failf "expected nonzero IM3, got %.3g" r1;
  let slope = r2 /. r1 in
  if slope < 3.0 || slope > 5.0 then
    Alcotest.failf "IM3 should scale ~4x with 2x drive, got %.2fx" slope

let test_two_tone_rejects_bad_args () =
  let nl = square_law_stage ~vg:1.0 in
  Alcotest.check_raises "k1 >= k2"
    (Invalid_argument "Distortion.two_tone: need 0 < k1 < k2") (fun () ->
      ignore
        (Distortion.two_tone nl ~f_base:1e3 ~k1:5 ~k2:5 ~amplitude:0.01));
  Alcotest.check_raises "too few samples"
    (Invalid_argument "Distortion.two_tone: samples too few for the IM3 products")
    (fun () ->
      ignore
        (Distortion.two_tone nl ~f_base:1e3 ~k1:30 ~k2:40 ~samples:64
           ~amplitude:0.01))

let test_distortion_rejects_bad_window () =
  let nl = square_law_stage ~vg:1.0 in
  Alcotest.check_raises "cycles = 3"
    (Invalid_argument
       "Distortion.measure: cycles and samples_per_cycle must be 2^k")
    (fun () -> ignore (Distortion.measure nl ~cycles:3 ~f:1e3 ~amplitude:0.01))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "nonlinear"
    [
      ( "models",
        [
          quick "diode current/conductance" test_diode_model;
          quick "diode overflow-safe" test_diode_overflow_safe;
          quick "mosfet regions" test_mosfet_regions;
          quick "mosfet derivatives vs FD" test_mosfet_derivatives_fd;
          quick "mosfet reverse symmetry" test_mosfet_reverse_symmetry;
          quick "pmos mirrors nmos" test_pmos_mirror;
          quick "bjt basics" test_bjt_model;
        ] );
      ( "newton",
        [
          quick "diode-resistor vs bisection" test_newton_diode;
          quick "weak drive" test_newton_diode_small_drive;
          quick "common-source bias" test_newton_common_source;
          quick "bjt stage bias" test_newton_bjt_stage;
          quick "singular system fails loudly" test_newton_nonconvergence_reported;
        ] );
      ( "parser",
        [
          quick "device cards and parameters" test_nl_parser_devices;
          quick "malformed cards rejected" test_nl_parser_errors;
          quick "deck-to-AWE pipeline" test_nl_parser_pipeline;
        ] );
      ( "transient",
        [
          quick "linear circuit matches Spice.Tran" test_tran_linear_matches_spice;
          quick "linear RL matches Spice.Tran" test_tran_rl_matches_spice;
          quick "flyback kick clamped by diode" test_tran_flyback_clamp;
          quick "half-wave rectifier" test_tran_rectifier;
          quick "step settles to the new DC point" test_tran_settles_to_dc;
          quick "small-signal consistency" test_tran_small_signal_consistency;
        ] );
      ( "distortion",
        [
          quick "square-law HD2 = a/(4·Vov)" test_distortion_square_law_hd2;
          quick "linear circuit is clean" test_distortion_linear_circuit_clean;
          quick "diode clipper harmonics" test_distortion_half_wave_clipper;
          quick "window must be power-of-two" test_distortion_rejects_bad_window;
          quick "two-tone IM2 = a/(2·Vov)" test_two_tone_square_law;
          quick "two-tone IM3 cubic slope" test_two_tone_exponential_im3_slope;
          quick "two-tone argument validation" test_two_tone_rejects_bad_args;
        ] );
      ( "linearize",
        [
          quick "gain = transfer-curve slope" test_linearize_gain_matches_fd;
          quick "analytic small-signal gain" test_linearize_analytic_gain;
          quick "element inventory" test_linearize_element_inventory;
          quick "linearized AWE pipeline" test_linearized_awe_pipeline;
          quick "linearized AWEsymbolic identity" test_linearized_awesymbolic;
          quick "operating report" test_operating_report;
        ] );
    ]
