(* Time-domain symbolic analysis of two coupled interconnect lines — the
   paper's Sec. 3.2 worked example.

   Two symmetric RC lines with distributed capacitive coupling are lumped
   into N segments (the paper uses 1000).  The driver resistance and the
   load capacitance are the symbols; a second-order AWEsymbolic model
   captures the non-monotonic cross-talk pulse on the quiet line, and a
   first-order model suffices for direct transmission.  The symbolic forms
   are compiled once; each (Rdriver, Cload) evaluation then costs
   microseconds (Figs. 9-10 regenerate from exactly this model).

   Run with:  dune exec examples/coupled_lines.exe *)

module Netlist = Circuit.Netlist
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model

let segments = 100

let symbolic_lines output =
  let nl = Builders.coupled_lines ~segments ~output () in
  let nl = Netlist.mark_symbolic nl "rdrv_a" (Sym.intern "g_drv") in
  let nl = Netlist.mark_symbolic nl "rdrv_b" (Sym.intern "g_drv") in
  let nl = Netlist.mark_symbolic nl "cload_a" (Sym.intern "c_load") in
  Netlist.mark_symbolic nl "cload_b" (Sym.intern "c_load")

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  Printf.printf
    "coupled RC lines: %d segments per line, symbols g_drv (= 1/Rdriver) \
     and c_load\n"
    segments;

  section "Second-order cross-talk model (quiet line far end)";
  let xtalk = Model.build ~order:2 (symbolic_lines Builders.Crosstalk) in
  Printf.printf "compiled program: %d operations\n" (Model.num_operations xtalk);

  section "First-order direct-transmission model (driven line far end)";
  let direct = Model.build ~order:1 (symbolic_lines Builders.Direct) in
  Printf.printf "compiled program: %d operations\n" (Model.num_operations direct);
  let v = Model.values direct [ ("g_drv", 1.0 /. 100.0); ("c_load", 50e-15) ] in
  let rom_d = Model.rom direct v in
  Printf.printf "direct transmission 50%% delay at nominal: %s s\n"
    (match Awe.Measures.delay_50 rom_d with
    | Some t -> Printf.sprintf "%.4g" t
    | None -> "-");

  section "Cross-talk step response as Rdriver varies (Fig. 9)";
  let times = Array.init 9 (fun k -> 0.25e-9 *. float_of_int (k + 1)) in
  Printf.printf "%10s" "Rdrv \\ t";
  Array.iter (fun t -> Printf.printf "%10.2e" t) times;
  print_newline ();
  List.iter
    (fun rdrv ->
      let v = Model.values xtalk [ ("g_drv", 1.0 /. rdrv); ("c_load", 50e-15) ] in
      let rom = Model.rom xtalk v in
      Printf.printf "%10g" rdrv;
      Array.iter (fun t -> Printf.printf "%10.4f" (Awe.Rom.step rom t)) times;
      print_newline ())
    [ 25.0; 50.0; 100.0; 200.0; 400.0 ];

  section "Cross-talk step response as Cload varies (Fig. 10)";
  Printf.printf "%10s" "Cload \\ t";
  Array.iter (fun t -> Printf.printf "%10.2e" t) times;
  print_newline ();
  List.iter
    (fun cload ->
      let v = Model.values xtalk [ ("g_drv", 1.0 /. 100.0); ("c_load", cload) ] in
      let rom = Model.rom xtalk v in
      Printf.printf "%10s" (Circuit.Units.format cload);
      Array.iter (fun t -> Printf.printf "%10.4f" (Awe.Rom.step rom t)) times;
      print_newline ())
    [ 10e-15; 50e-15; 100e-15; 200e-15 ];

  section "Validation against transient simulation at the nominal point";
  let nl_nominal = Builders.coupled_lines ~segments ~output:Builders.Crosstalk () in
  let mna = Circuit.Mna.build nl_nominal in
  let v = Model.values xtalk [ ("g_drv", 1.0 /. 100.0); ("c_load", 50e-15) ] in
  let rom = Model.rom xtalk v in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:10e-12
      ~t_stop:2.4e-9
  in
  Printf.printf "%10s %12s %12s\n" "t" "tran" "AWEsymbolic";
  Array.iteri
    (fun k (t, y) ->
      if k mod 24 = 0 && t > 0.0 then
        Printf.printf "%10.2e %12.5f %12.5f\n" t y (Awe.Rom.step rom t))
    wave;
  let t_peak, y_peak = Awe.Measures.peak_step ~horizon:3e-9 rom in
  Printf.printf "\ncross-talk peak from the symbolic model: %.4f at t = %.3g s\n"
    y_peak t_peak;

  section "Multi-output: near/far ends of both lines from ONE analysis";
  (* Model.build_many shares the partitioning, port reduction and symbolic
     elimination across outputs — a designer watches every victim tap for
     the cost of one analysis plus cheap projections. *)
  let far = Printf.sprintf "b%d" segments in
  let outputs =
    [ (Circuit.Netlist.Node far, "victim far end");
      (Circuit.Netlist.Node "b1", "victim near end");
      (Circuit.Netlist.Node (Printf.sprintf "a%d" segments), "aggressor far end") ]
  in
  let models =
    Model.build_many ~order:2
      (symbolic_lines Builders.Crosstalk)
      ~outputs:(List.map fst outputs)
  in
  Printf.printf "%-18s %14s %14s\n" "output" "peak |step|" "t_peak (ps)";
  List.iter2
    (fun (_, label) model ->
      let rom =
        Model.rom model
          (Model.values model [ ("g_drv", 0.01); ("c_load", 50e-15) ])
      in
      let t_pk, y_pk = Awe.Measures.peak_step ~horizon:3e-9 rom in
      Printf.printf "%-18s %14.4f %14.1f\n" label y_pk (t_pk *. 1e12))
    outputs models
