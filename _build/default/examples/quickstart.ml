(* Quickstart: the paper's Fig. 1 RC circuit, end to end.

   Demonstrates the three analysis levels the library offers:
   1. the exact symbolic transfer function (Eqs. 5 and 6 of the paper),
   2. a compiled AWEsymbolic model (symbolic moments -> straight-line
      program -> reduced-order model at any symbol values),
   3. validation against full numeric AWE and transient simulation.

   Run with:  dune exec examples/quickstart.exe *)

module Netlist = Circuit.Netlist
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  (* The circuit can come from a deck string just as well as from code. *)
  let deck =
    {|
* Fig. 1 of the paper: two-section RC circuit
V1 in 0 1
G1 in n1 1
C1 n1 0 1
G2 n1 n2 1
C2 n2 0 1
.symbolic C1
.symbolic G2
.input V1
.output v(n2)
|}
  in
  let nl = Circuit.Parser.parse_string deck in

  section "Exact symbolic transfer function (Eq. 5, all elements symbolic)";
  let tf_full =
    Exact.Network.transfer_function ~all_symbolic:true (Builders.fig1 ())
  in
  Printf.printf "H(s) = %s\n" (Exact.Network.to_string tf_full);

  section "Mixed numeric-symbolic form (Eq. 6, G1 = 5)";
  let nl6 = Builders.fig1 ~g1:5.0 () in
  let nl6 =
    List.fold_left
      (fun acc name -> Netlist.mark_symbolic acc name (Sym.intern name))
      nl6 [ "G2"; "C1"; "C2" ]
  in
  let tf_mixed = Exact.Network.transfer_function nl6 in
  Printf.printf "H(s) = %s\n" (Exact.Network.to_string tf_mixed);

  section "AWEsymbolic model (C1, G2 symbolic)";
  let model = Model.build ~order:2 nl in
  Printf.printf "symbols: %s\n"
    (String.concat ", "
       (Array.to_list (Array.map Sym.name (Model.symbols model))));
  Printf.printf "compiled moment program: %d operations\n"
    (Model.num_operations model);
  let m = Model.moments_ratfun ~count:2 nl in
  Printf.printf "symbolic m0 = %s\n" (Symbolic.Ratfun.to_string m.(0));
  Printf.printf "symbolic m1 = %s\n" (Symbolic.Ratfun.to_string m.(1));

  section "Evaluation at symbol values vs full numeric AWE";
  let points = [ (1.0, 1.0); (0.25, 4.0); (3.0, 0.5) ] in
  List.iter
    (fun (c1, g2) ->
      let v = Model.values model [ ("C1", c1); ("G2", g2) ] in
      let rom = Model.rom model v in
      let nl_num = Builders.fig1 ~c1 ~g2 () in
      let rom_ref = (Awe.Driver.analyze ~order:2 nl_num).Awe.Driver.rom in
      let p1 r = (Awe.Rom.dominant_pole r).Numeric.Cx.re in
      Printf.printf
        "C1=%-5g G2=%-5g  compiled pole %.6f  numeric AWE pole %.6f  dc %.3f\n"
        c1 g2 (p1 rom) (p1 rom_ref) (Awe.Rom.dc_gain rom))
    points;

  section "Step response from the compiled model vs transient simulation";
  let v = Model.values model [ ("C1", 1.0); ("G2", 1.0) ] in
  let rom = Model.rom model v in
  let mna = Circuit.Mna.build (Builders.fig1 ()) in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:0.01
      ~t_stop:8.0
  in
  Printf.printf "%8s  %12s  %12s\n" "t" "tran" "AWEsymbolic";
  Array.iter
    (fun (t, y) ->
      if Float.rem t 1.0 < 0.005 && t > 0.0 then
        Printf.printf "%8.2f  %12.6f  %12.6f\n" t y (Awe.Rom.step rom t))
    wave;
  print_newline ()
