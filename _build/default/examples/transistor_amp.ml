(* Transistor-level to compiled-symbolic: the complete "linear(ized)"
   pipeline of the paper's title.

   A two-stage MOS amplifier with Miller compensation is described at the
   transistor level, biased with the Newton DC solver, linearized at the
   operating point, and handed to AWEsymbolic with the compensation and load
   capacitors as symbols — the same flow that produced the paper's 741
   small-signal circuit.

   Run with:  dune exec examples/transistor_amp.exe *)

module Element = Circuit.Element
module Netlist = Circuit.Netlist
module Models = Nonlinear.Models
module Nl = Nonlinear.Netlist
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model

let section title = Printf.printf "\n=== %s ===\n" title

let resistor name pos neg value =
  Element.make ~name ~kind:Element.Resistor ~pos ~neg ~value ()

let capacitor name pos neg value =
  Element.make ~name ~kind:Element.Capacitor ~pos ~neg ~value ()

let vsource name pos neg value =
  Element.make ~name ~kind:Element.Vsource ~pos ~neg ~value ()

(* NMOS common-source first stage, PMOS common-source second stage (so the
   Miller capacitor ccomp sees an inverting stage), resistor loads; cload
   sits on the output. *)
let amplifier () =
  Nl.empty
  |> Fun.flip Nl.add_element (vsource "Vdd" "vdd" "0" 3.3)
  |> Fun.flip Nl.add_element (vsource "Vin" "g1" "0" 0.9)
  |> Fun.flip Nl.add_element (resistor "Rd1" "vdd" "d1" 47e3)
  |> Fun.flip Nl.add_device
       (Nl.Mosfet
          { name = "M1"; drain = "d1"; gate = "g1"; source = "0";
            model = Models.default_nmos })
  |> Fun.flip Nl.add_element (resistor "Rbias" "d1" "g2" 1e3)
  |> Fun.flip Nl.add_element (capacitor "Cpar1" "g2" "0" 50e-15)
  |> Fun.flip Nl.add_device
       (Nl.Mosfet
          { name = "M2"; drain = "out"; gate = "g2"; source = "vdd";
            model = Models.default_pmos })
  |> Fun.flip Nl.add_element (resistor "Rd2" "out" "0" 300e3)
  |> Fun.flip Nl.add_element (capacitor "Ccomp" "g2" "out" 500e-15)
  |> Fun.flip Nl.add_element (capacitor "Cload" "out" "0" 2e-12)
  |> Fun.flip Nl.with_ac_input "Vin"
  |> Fun.flip Nl.with_output (Netlist.Node "out")

let () =
  let nl = amplifier () in

  section "DC operating point (Newton)";
  let sol = Nonlinear.Newton.solve nl in
  print_string (Nonlinear.Linearize.operating_report nl sol);

  section "Small-signal linearization";
  let lin = Nonlinear.Linearize.netlist nl sol in
  let total, storage = Netlist.stats lin in
  Printf.printf "linearized netlist: %d elements (%d storage)\n" total storage;
  Format.printf "%a@?" Netlist.pp lin;

  section "Sensitivity-guided symbol choice";
  let ranked = Awe.Sensitivity.rank ~order:2 lin in
  List.iteri
    (fun k ((e : Element.t), score) ->
      if k < 6 then
        Printf.printf "%2d. %-10s %.3g\n" (k + 1) e.Element.name score)
    ranked;

  (* Treat the compensation and load capacitors as symbols. *)
  let lin = Netlist.mark_symbolic lin "Ccomp" (Sym.intern "Ccomp") in
  let lin = Netlist.mark_symbolic lin "Cload" (Sym.intern "Cload") in

  section "Compiled symbolic model (order 2)";
  let model = Model.build ~order:2 lin in
  Printf.printf "compiled program: %d operations\n" (Model.num_operations model);
  Printf.printf "\n%10s %10s %14s %14s %14s\n" "Ccomp" "Cload" "dc gain (dB)"
    "p1 (Hz)" "f_unity (Hz)";
  let eval = Model.evaluator model in
  List.iter
    (fun ccomp ->
      List.iter
        (fun cload ->
          let rom =
            eval (Model.values model [ ("Ccomp", ccomp); ("Cload", cload) ])
          in
          Printf.printf "%10s %10s %14.2f %14.4g %14s\n"
            (Circuit.Units.format ccomp)
            (Circuit.Units.format cload)
            (Awe.Measures.dc_gain_db rom)
            (Awe.Measures.dominant_pole_hz rom)
            (match Awe.Measures.unity_gain_frequency rom with
            | Some f -> Printf.sprintf "%.4g" f
            | None -> "-"))
        [ 0.5e-12; 2e-12 ])
    [ 0.1e-12; 0.5e-12; 2e-12 ];

  section "Identity check vs numeric AWE at one point";
  let point = [ ("Ccomp", 1e-12); ("Cload", 3e-12) ] in
  let rom_sym = Model.rom model (Model.values model point) in
  let lin_num =
    List.fold_left
      (fun acc (name, v) ->
        Netlist.replace acc
          (Element.set_stamp_value (Option.get (Netlist.find acc name)) v))
      lin point
  in
  let rom_num = (Awe.Driver.analyze ~order:2 lin_num).Awe.Driver.rom in
  Printf.printf "symbolic p1 = %.6g Hz, numeric p1 = %.6g Hz\n"
    (Awe.Measures.dominant_pole_hz rom_sym)
    (Awe.Measures.dominant_pole_hz rom_num);

  section "Where the linearized model stops: harmonic distortion";
  (* The small-signal model is distortion-free by construction.  Driving the
     real stage harder and harder shows the even-order term the
     linearization threw away (HD2 grows linearly with amplitude). *)
  Printf.printf "%12s %12s %12s %12s\n" "drive (mV)" "HD2 (%)" "HD3 (%)"
    "THD (%)";
  List.iter
    (fun amp ->
      let d =
        Nonlinear.Distortion.measure nl ~bias:0.9 ~f:1e3 ~amplitude:amp
      in
      Printf.printf "%12.0f %12.3f %12.3f %12.3f\n" (amp *. 1e3)
        (100.0 *. Nonlinear.Distortion.hd2 d)
        (100.0 *. Nonlinear.Distortion.hd3 d)
        (100.0 *. d.Nonlinear.Distortion.thd))
    [ 1e-3; 2e-3; 5e-3; 10e-3 ];

  (* Two-tone test: the third-order products at 2f1−f2 / 2f2−f1 land right
     next to the carriers — the in-band distortion a single-tone sweep
     cannot show. *)
  Printf.printf "\n%12s %12s %12s\n" "drive (mV)" "IM2 (%)" "IM3 (%)";
  List.iter
    (fun amp ->
      let d =
        Nonlinear.Distortion.two_tone nl ~bias:0.9 ~f_base:1e3 ~k1:9 ~k2:10
          ~amplitude:amp
      in
      Printf.printf "%12.0f %12.3f %12.4f\n" (amp *. 1e3)
        (100.0 *. d.Nonlinear.Distortion.im2 /. d.Nonlinear.Distortion.fund1)
        (100.0 *. d.Nonlinear.Distortion.im3 /. d.Nonlinear.Distortion.fund1))
    [ 2e-3; 5e-3; 10e-3 ];
  print_newline ()
