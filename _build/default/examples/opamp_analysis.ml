(* Frequency-domain symbolic analysis of the 741-class operational
   amplifier — the paper's Sec. 3.1 worked example.

   The flow mirrors the paper exactly:
   1. AWEsensitivity ranks all 170 linear elements; the two most significant
      (gout_q14 and ccomp) are chosen as symbols.
   2. A first-order AWEsymbolic model gives closed symbolic forms for the
      dominant pole p1 and the DC gain (the surfaces of Figs. 4-5).
   3. A second-order model gives the unity-gain frequency and phase margin
      surfaces (Figs. 6-7), identical to numeric AWE at every point.

   Run with:  dune exec examples/opamp_analysis.exe *)

module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model
module Measures = Awe.Measures

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let nl = Builders.opamp741 () in
  let total, storage = Netlist.stats nl in
  Printf.printf "linearized op-amp: %d linear elements, %d energy-storage\n"
    total storage;

  section "AWEsensitivity ranking (top 8 of 170 elements)";
  let ranked = Awe.Sensitivity.rank ~order:2 nl in
  List.iteri
    (fun k ((e : Element.t), score) ->
      if k < 8 then
        Printf.printf "%2d. %-14s  normalized sensitivity %.3g\n" (k + 1)
          e.Element.name score)
    ranked;

  (* Pick the two paper symbols; the ranking puts them at the top. *)
  let gname, cname = Builders.opamp_symbol_names in
  let nl = Netlist.mark_symbolic nl gname (Sym.intern gname) in
  let nl = Netlist.mark_symbolic nl cname (Sym.intern cname) in
  Printf.printf "chosen symbols: %s, %s (as in the paper)\n" gname cname;

  section "First-order AWEsymbolic model (Figs. 4-5 surfaces)";
  let model1 = Model.build ~order:1 nl in
  Printf.printf "compiled first-order program: %d operations\n"
    (Model.num_operations model1);
  let g_nominal = 2e-6 and c_nominal = 30e-12 in
  let sweep_g = Array.init 5 (fun i -> g_nominal *. (0.25 +. (0.5 *. float_of_int i))) in
  let sweep_c = Array.init 5 (fun i -> c_nominal *. (0.25 +. (0.5 *. float_of_int i))) in
  Printf.printf "\ndominant pole p1 (Hz) as a function of the symbols:\n";
  Printf.printf "%12s" "gout \\ C";
  Array.iter (fun c -> Printf.printf "%12s" (Circuit.Units.format c)) sweep_c;
  print_newline ();
  Array.iter
    (fun g ->
      Printf.printf "%12s" (Circuit.Units.format g);
      Array.iter
        (fun c ->
          let rom = Model.rom model1 (Model.values model1 [ (gname, g); (cname, c) ]) in
          Printf.printf "%12.4g" (Measures.dominant_pole_hz rom))
        sweep_c;
      print_newline ())
    sweep_g;
  Printf.printf "\nDC gain (dB) as a function of the symbols:\n";
  Printf.printf "%12s" "gout \\ C";
  Array.iter (fun c -> Printf.printf "%12s" (Circuit.Units.format c)) sweep_c;
  print_newline ();
  Array.iter
    (fun g ->
      Printf.printf "%12s" (Circuit.Units.format g);
      Array.iter
        (fun c ->
          let rom = Model.rom model1 (Model.values model1 [ (gname, g); (cname, c) ]) in
          Printf.printf "%12.2f" (Measures.dc_gain_db rom))
        sweep_c;
      print_newline ())
    sweep_g;

  section "Second-order model (Figs. 6-7 surfaces)";
  let model2 = Model.build ~order:2 nl in
  Printf.printf "compiled second-order program: %d operations\n"
    (Model.num_operations model2);
  Printf.printf "\nunity-gain frequency (Hz) and phase margin (deg):\n";
  Printf.printf "%12s %12s %14s %14s\n" "gout_q14" "ccomp" "f_unity" "phase margin";
  Array.iter
    (fun g ->
      Array.iter
        (fun c ->
          let rom = Model.rom model2 (Model.values model2 [ (gname, g); (cname, c) ]) in
          let fu = Measures.unity_gain_frequency rom in
          let pm = Measures.phase_margin rom in
          Printf.printf "%12s %12s %14s %14s\n" (Circuit.Units.format g)
            (Circuit.Units.format c)
            (match fu with Some f -> Printf.sprintf "%.4g" f | None -> "-")
            (match pm with Some p -> Printf.sprintf "%.1f" p | None -> "-"))
        [| 10e-12; 30e-12; 60e-12 |])
    [| 1e-6; 2e-6; 4e-6 |];

  section "Identity with numeric AWE (paper: results are identical)";
  List.iter
    (fun (g, c) ->
      let rom_sym = Model.rom model2 (Model.values model2 [ (gname, g); (cname, c) ]) in
      let nl_num =
        Netlist.map_elements
          (fun (e : Element.t) ->
            if e.Element.name = gname then Element.set_stamp_value e g
            else if e.Element.name = cname then Element.set_stamp_value e c
            else e)
          nl
      in
      let rom_num = (Awe.Driver.analyze ~order:2 nl_num).Awe.Driver.rom in
      Printf.printf
        "g=%-8s c=%-6s  symbolic p1 = %.6g Hz   numeric p1 = %.6g Hz\n"
        (Circuit.Units.format g) (Circuit.Units.format c)
        (Measures.dominant_pole_hz rom_sym)
        (Measures.dominant_pole_hz rom_num))
    [ (2e-6, 30e-12); (8e-6, 15e-12) ];

  section "Compiled pole sensitivities (design knobs, no re-analysis)";
  (* The moment DAGs are differentiable: d(pole)/d(symbol) compiles to its
     own straight-line program, so "which way do I nudge ccomp" costs the
     same microseconds as an evaluation. *)
  let v0 = Model.values model2 [ (gname, 2e-6); (cname, 30e-12) ] in
  (match (Model.eval_pole_sensitivities model2 v0, Model.closed_form_rom model2 v0) with
  | Some (dp1, dp2), Some rom ->
    (* Closed-form pole order is quadratic-formula order; pick the dominant
       (slowest) branch for reporting. *)
    let p = rom.Awe.Rom.poles in
    let dom, ddom =
      if Numeric.Cx.norm p.(0) <= Numeric.Cx.norm p.(1) then (p.(0), dp1)
      else (p.(1), dp2)
    in
    Printf.printf "dominant pole p1 = %.4g rad/s\n" dom.Numeric.Cx.re;
    Array.iteri
      (fun j s ->
        Printf.printf "  dp1/d%-9s = %12.4g  (rad/s per unit)\n"
          (Symbolic.Symbol.name s) ddom.(j))
      (Model.symbols model2)
  | _ -> print_endline "(no closed form at this order)");
  print_newline ()
