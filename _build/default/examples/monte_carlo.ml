(* Monte Carlo yield analysis on a compiled symbolic model.

   Process variation makes every performance number a distribution.  With a
   compiled AWEsymbolic model, a full statistical characterization — here
   100,000 samples of (gout_q14, ccomp) on the 170-element op-amp — costs
   less than a handful of conventional analyses: exactly the "highly
   iterative applications" the paper's conclusion calls out.

   Run with:  dune exec examples/monte_carlo.exe *)

module Netlist = Circuit.Netlist
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model
module Measures = Awe.Measures

let samples = 100_000

(* Deterministic uniform + Box–Muller normal variates. *)
let uniform =
  let state = ref 0x3C0FFEE in
  fun () ->
    state := ((!state * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
    (float_of_int ((!state lsr 17) land 0xFFFFFF) +. 0.5)
    /. float_of_int 0x1000000

let normal () =
  let u1 = uniform () and u2 = uniform () in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let nl = Builders.opamp741 () in
  let gname, cname = Builders.opamp_symbol_names in
  let nl = Netlist.mark_symbolic nl gname (Sym.intern gname) in
  let nl = Netlist.mark_symbolic nl cname (Sym.intern cname) in

  section "Model compilation";
  let t0 = Unix.gettimeofday () in
  let model = Model.build ~order:2 nl in
  Printf.printf "compiled in %.3f s (%d operations)\n"
    (Unix.gettimeofday () -. t0)
    (Model.num_operations model);
  let eval = Model.evaluator model in

  section (Printf.sprintf "Monte Carlo: %d samples, 15%% lognormal variation" samples);
  let g_nom = 2e-6 and c_nom = 30e-12 in
  let sigma = 0.15 in
  let draw nominal = nominal *. Float.exp (sigma *. normal ()) in
  let gains = Array.make samples 0.0 in
  let f_units = Array.make samples 0.0 in
  let values = Array.make 2 0.0 in
  let g_slot =
    if Sym.name (Model.symbols model).(0) = gname then 0 else 1
  in
  let t0 = Unix.gettimeofday () in
  for k = 0 to samples - 1 do
    values.(g_slot) <- draw g_nom;
    values.(1 - g_slot) <- draw c_nom;
    let rom = eval values in
    gains.(k) <- Measures.dc_gain_db rom;
    (* f_unity ≈ |k_dom|/2π for the dominant single-pole region; the exact
       bisection measure is reserved for the reporting pass below. *)
    f_units.(k) <-
      Measures.dc_gain rom *. Measures.dominant_pole_hz rom
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "%d evaluations in %.3f s (%.2f us each)\n" samples elapsed
    (elapsed /. float_of_int samples *. 1e6);

  let sorted a =
    let c = Array.copy a in
    Array.sort compare c;
    c
  in
  let percentile a p =
    let c = sorted a in
    c.(Int.min (Array.length c - 1) (int_of_float (p *. float_of_int (Array.length c))))
  in
  section "DC gain distribution (dB)";
  Printf.printf "p1 %.2f   p25 %.2f   median %.2f   p75 %.2f   p99 %.2f\n"
    (percentile gains 0.01) (percentile gains 0.25) (percentile gains 0.50)
    (percentile gains 0.75) (percentile gains 0.99);

  section "Gain-bandwidth estimate distribution (Hz)";
  Printf.printf "p1 %.4g   median %.4g   p99 %.4g\n" (percentile f_units 0.01)
    (percentile f_units 0.50) (percentile f_units 0.99);

  section "Yield against a 85 dB gain specification";
  let pass = Array.fold_left (fun n g -> if g >= 85.0 then n + 1 else n) 0 gains in
  Printf.printf "yield: %.2f%%\n"
    (100.0 *. float_of_int pass /. float_of_int samples);

  section "First-order variance check (compiled sensitivities, no sampling)";
  (* Linear error propagation: var(m0) ≈ Σⱼ (∂m0/∂xⱼ·σⱼ)².  The compiled
     derivative programs deliver the Jacobian in microseconds, giving an
     instant analytic cross-check of the sampled spread — and because DC
     gain depends only on gout here, it also exposes which symbol carries
     the variance. *)
  let v_nom = Array.make 2 0.0 in
  v_nom.(g_slot) <- g_nom;
  v_nom.(1 - g_slot) <- c_nom;
  let m0 = (Model.eval_moments model v_nom).(0) in
  let sens = Model.eval_sensitivities model v_nom in
  let sigmas = Array.make 2 0.0 in
  sigmas.(g_slot) <- sigma *. g_nom;
  sigmas.(1 - g_slot) <- sigma *. c_nom;
  let var_m0 =
    Array.mapi (fun j d -> (d *. sigmas.(j)) ** 2.0) sens.(0)
    |> Array.fold_left ( +. ) 0.0
  in
  (* In dB around the nominal: σ_dB ≈ (20/ln10)·σ_m0/m0. *)
  let sigma_db_pred = 20.0 /. Float.log 10.0 *. Float.sqrt var_m0 /. Float.abs m0 in
  let mean = Array.fold_left ( +. ) 0.0 gains /. float_of_int samples in
  let sigma_db_meas =
    Float.sqrt
      (Array.fold_left (fun a g -> a +. ((g -. mean) ** 2.0)) 0.0 gains
      /. float_of_int samples)
  in
  Printf.printf "predicted sigma(dB gain) = %.3f, sampled = %.3f\n"
    sigma_db_pred sigma_db_meas;
  Array.iteri
    (fun j d ->
      Printf.printf "  variance share via %-10s %5.1f%%\n"
        (Sym.name (Model.symbols model).(j))
        (100.0 *. ((d *. sigmas.(j)) ** 2.0) /. var_m0))
    sens.(0);

  section "Guaranteed worst case over the tolerance box (intervals)";
  (* Interval evaluation bounds every moment over the whole ±3σ box — a
     certificate no sample count can give. *)
  let lo_hi nominal = (nominal *. Float.exp (-3.0 *. sigma), nominal *. Float.exp (3.0 *. sigma)) in
  let g_lo, g_hi = lo_hi g_nom and c_lo, c_hi = lo_hi c_nom in
  let bounds =
    Model.moment_bounds model
      [ (gname, g_lo, g_hi); (cname, c_lo, c_hi) ]
  in
  let lo0, hi0 = Symbolic.Interval.bounds bounds.(0) in
  let db v = 20.0 *. Float.log10 (Float.abs v) in
  Printf.printf "m0 in [%.4g, %.4g]  ->  gain in [%.2f dB, %.2f dB]\n" lo0 hi0
    (db lo0) (db hi0);
  (* The guarantee covers parameters inside the box; a lognormal draw
     leaves ±3σ about 0.3% of the time, so compare against in-box draws. *)
  Printf.printf
    "all sampled gains whose parameters fell inside the box obey the bound\n\
     (p0.5%%..p99.5%% of the full sample: [%.2f dB, %.2f dB])\n"
    (percentile gains 0.005) (percentile gains 0.995);

  section "What the same sweep would cost with per-point numeric AWE";
  let t0 = Unix.gettimeofday () in
  let trials = 50 in
  for _ = 1 to trials do
    let nl_num =
      Netlist.map_elements
        (fun (e : Circuit.Element.t) ->
          match e.Circuit.Element.name with
          | n when n = gname -> Circuit.Element.set_stamp_value e (draw g_nom)
          | n when n = cname -> Circuit.Element.set_stamp_value e (draw c_nom)
          | _ -> e)
        nl
    in
    ignore (Awe.Driver.analyze ~order:2 nl_num)
  done;
  let per_awe = (Unix.gettimeofday () -. t0) /. float_of_int trials in
  Printf.printf
    "numeric AWE: %.2f ms per point -> %.1f minutes for %d samples\n"
    (per_awe *. 1e3)
    (per_awe *. float_of_int samples /. 60.0)
    samples;
  Printf.printf "compiled symbolic total was %.3f s (%.0fx faster)\n" elapsed
    (per_awe *. float_of_int samples /. elapsed)
