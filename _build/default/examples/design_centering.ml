(* Design centering on the compiled symbolic model.

   The paper's pitch is that a compiled symbolic form turns repeated
   analysis into microseconds.  This example pushes that one step further:
   with the moment and pole DAGs differentiated symbolically and compiled
   (Model.eval_sensitivities / eval_pole_sensitivities), a *design loop*
   becomes a handful of Newton steps on the symbol space — each iteration
   costs two straight-line-program runs instead of a circuit analysis plus
   finite differences.

   Spec for the 170-element op-amp: hit a target DC gain by sizing the
   output conductance, and a target dominant pole by sizing the
   compensation capacitor, simultaneously (2x2 Newton).

   Run with:  dune exec examples/design_centering.exe *)

module Netlist = Circuit.Netlist
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model
module Cx = Numeric.Cx

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let nl = Builders.opamp741 () in
  let gname, cname = Builders.opamp_symbol_names in
  let nl = Netlist.mark_symbolic nl gname (Sym.intern gname) in
  let nl = Netlist.mark_symbolic nl cname (Sym.intern cname) in
  let model = Model.build ~order:2 nl in

  (* Dominant pole (rad/s, negative) and DC gain at a symbol point, with
     their derivatives, all from compiled programs. *)
  let observe v =
    let m = Model.eval_moments model v in
    let sens = Model.eval_sensitivities model v in
    let rom = Option.get (Model.closed_form_rom model v) in
    let dp1, dp2 = Option.get (Model.eval_pole_sensitivities model v) in
    let p = rom.Awe.Rom.poles in
    let dom, ddom =
      if Cx.norm p.(0) <= Cx.norm p.(1) then (p.(0).Cx.re, dp1)
      else (p.(1).Cx.re, dp2)
    in
    (m.(0), sens.(0), dom, ddom)
  in

  section "Specs";
  let gain_target = 20e3 in
  let pole_target_hz = 60.0 in
  let pole_target = -2.0 *. Float.pi *. pole_target_hz in
  Printf.printf "DC gain        = %g (%.1f dB)\n" gain_target
    (20.0 *. Float.log10 gain_target);
  Printf.printf "dominant pole  = %.1f Hz\n" pole_target_hz;

  section "Newton on the symbol space (compiled Jacobian)";
  let x = ref [| 2e-6; 30e-12 |] in
  (* symbol order in the model is alphabetical; map our (g, c) onto it *)
  let syms = Model.symbols model in
  let gi =
    match Array.to_list syms |> List.map Sym.name with
    | [ a; _ ] when a = gname -> 0
    | _ -> 1
  in
  let ci = 1 - gi in
  let t0 = Unix.gettimeofday () in
  let iterations = ref 0 in
  (try
     for it = 1 to 20 do
       incr iterations;
       let v = Array.make 2 0.0 in
       v.(gi) <- !x.(0);
       v.(ci) <- !x.(1);
       let gain, dgain, pole, dpole = observe v in
       Printf.printf "%2d. gout=%-12s ccomp=%-10s gain=%-9.1f p=%-9.2f Hz\n"
         it
         (Circuit.Units.format !x.(0))
         (Circuit.Units.format !x.(1))
         gain
         (Float.abs pole /. (2.0 *. Float.pi));
       let r0 = gain -. gain_target in
       let r1 = pole -. pole_target in
       if Float.abs r0 < 1e-6 *. gain_target
          && Float.abs r1 < 1e-6 *. Float.abs pole_target
       then raise Exit;
       (* 2x2 Jacobian in (gout, ccomp) order. *)
       let j00 = dgain.(gi) and j01 = dgain.(ci) in
       let j10 = dpole.(gi) and j11 = dpole.(ci) in
       let det = (j00 *. j11) -. (j01 *. j10) in
       let dg = ((r0 *. j11) -. (r1 *. j01)) /. det in
       let dc = ((j00 *. r1) -. (j10 *. r0)) /. det in
       (* Damped, positivity-preserving update. *)
       let damp = 1.0 in
       !x.(0) <- Float.max (!x.(0) /. 4.0) (!x.(0) -. (damp *. dg));
       !x.(1) <- Float.max (!x.(1) /. 4.0) (!x.(1) -. (damp *. dc))
     done
   with Exit -> ());
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "\nconverged in %d iterations, %.3f ms total\n" !iterations
    (dt *. 1e3);

  section "Verification with full numeric AWE at the solution";
  let nl_solved =
    Netlist.map_elements
      (fun (e : Circuit.Element.t) ->
        if e.Circuit.Element.name = gname then
          Circuit.Element.set_stamp_value e !x.(0)
        else if e.Circuit.Element.name = cname then
          Circuit.Element.set_stamp_value e !x.(1)
        else e)
      nl
  in
  let rom = (Awe.Driver.analyze ~order:2 nl_solved).Awe.Driver.rom in
  Printf.printf "numeric AWE at (gout=%s, ccomp=%s):\n"
    (Circuit.Units.format !x.(0))
    (Circuit.Units.format !x.(1));
  Printf.printf "  DC gain        = %.1f   (target %g)\n" (Awe.Rom.dc_gain rom)
    gain_target;
  Printf.printf "  dominant pole  = %.2f Hz (target %.1f Hz)\n"
    (Awe.Measures.dominant_pole_hz rom)
    pole_target_hz;
  Printf.printf
    "\nEach Newton iteration ran two compiled programs (~µs); the same loop \
     with\nnumeric AWE + finite differences would cost 3 full circuit \
     analyses per step.\n"
