(* Power-grid style application: compiled timing/droop model of an RC mesh.

   A supply or clock mesh is re-evaluated constantly while a physical-design
   tool resizes the driver and moves decoupling capacitance.  Treating the
   driver conductance and the far-corner decap as symbols gives one compiled
   model that answers every (driver, decap) query in microseconds — the
   "highly iterative applications" the paper's conclusion targets.

   Run with:  dune exec examples/power_grid.exe *)

module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model

let section title = Printf.printf "\n=== %s ===\n" title

let grid ~rows ~cols =
  let nl = Builders.rc_mesh ~rows ~cols ~r:2.0 ~c:20e-15 () in
  let far = Printf.sprintf "x%d_%d" (rows - 1) (cols - 1) in
  let nl =
    Netlist.add nl
      (Element.make ~name:"cdecap" ~kind:Element.Capacitor ~pos:far ~neg:"0"
         ~value:200e-15 ())
  in
  let nl = Netlist.mark_symbolic nl "Rdrv" (Sym.intern "g_drv") in
  Netlist.mark_symbolic nl "cdecap" (Sym.intern "c_decap")

let () =
  let rows = 8 and cols = 8 in
  let nl = grid ~rows ~cols in
  let total, storage = Netlist.stats nl in
  Printf.printf "mesh: %dx%d grid, %d elements (%d capacitors)\n" rows cols
    total storage;

  section "Compiled grid model (order 2; symbols g_drv, c_decap)";
  let model = Model.build ~order:2 nl in
  Printf.printf "compiled program: %d operations\n" (Model.num_operations model);
  let eval = Model.evaluator model in

  section "Far-corner 50% delay (ps) vs driver resistance and decap";
  let drivers = [ 1.0; 2.0; 5.0; 10.0; 20.0 ] in
  let decaps = [ 50e-15; 200e-15; 1e-12; 5e-12 ] in
  Printf.printf "%12s" "Rdrv \\ Cd";
  List.iter (fun c -> Printf.printf "%12s" (Circuit.Units.format c)) decaps;
  print_newline ();
  List.iter
    (fun rdrv ->
      Printf.printf "%12g" rdrv;
      List.iter
        (fun cdecap ->
          let rom =
            eval
              (Model.values model
                 [ ("g_drv", 1.0 /. rdrv); ("c_decap", cdecap) ])
          in
          match Awe.Measures.delay_50 rom with
          | Some t -> Printf.printf "%12.2f" (t *. 1e12)
          | None -> Printf.printf "%12s" "-")
        decaps;
      print_newline ())
    drivers;

  section "Validation against full numeric AWE over the ranges";
  let report =
    Awesymbolic.Validate.run ~points:40
      ~ranges:[ ("g_drv", 0.05, 1.0); ("c_decap", 50e-15, 5e-12) ]
      model
  in
  Format.printf "%a@." Awesymbolic.Validate.pp report;

  section "Step response at the far corner vs transient simulation";
  let rom = eval (Model.values model [ ("g_drv", 0.2); ("c_decap", 200e-15) ]) in
  let nominal =
    Netlist.map_elements
      (fun (e : Element.t) ->
        match e.Element.name with
        | "Rdrv" -> Element.set_stamp_value e 0.2
        | "cdecap" -> Element.set_stamp_value e 200e-15
        | _ -> e)
      nl
  in
  let mna = Circuit.Mna.build nominal in
  let horizon = 6.0 *. Awe.Rom.time_constant rom in
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input
      ~t_step:(horizon /. 600.0) ~t_stop:horizon
  in
  Printf.printf "%12s %12s %12s\n" "t (s)" "tran" "compiled";
  Array.iteri
    (fun k (t, y) ->
      if k mod 100 = 0 && t > 0.0 then
        Printf.printf "%12.3e %12.6f %12.6f\n" t y (Awe.Rom.step rom t))
    wave;
  print_newline ()
