(* Hierarchical simulation with synthesized macromodels.

   The practical consumer of AWE reductions: replace a big passive block
   with its fitted N-port macromodel *as a netlist* and simulate the small
   system instead.  Here a 200-segment RC interconnect (403 elements)
   becomes a handful of state sections via Macromodel.to_netlist; the same
   driver/load harness runs against both and the responses are compared.

   Run with:  dune exec examples/hierarchical.exe *)

module Element = Circuit.Element
module Netlist = Circuit.Netlist
module Mna = Circuit.Mna
module Cx = Numeric.Cx
module Macromodel = Awesymbolic.Macromodel

let section title = Printf.printf "\n=== %s ===\n" title

let resistor name pos neg value =
  Element.make ~name ~kind:Element.Resistor ~pos ~neg ~value ()

let capacitor name pos neg value =
  Element.make ~name ~kind:Element.Capacitor ~pos ~neg ~value ()

(* A source-free 200-segment RC line block between nodes a and b. *)
let line_block ~segments =
  let node k =
    if k = 0 then "a" else if k = segments then "b" else Printf.sprintf "n%d" k
  in
  let elements =
    List.concat_map
      (fun k ->
        [ resistor (Printf.sprintf "R%d" k) (node (k - 1)) (node k) 5.0;
          capacitor (Printf.sprintf "C%d" k) (node k) "0" 10e-15 ])
      (List.init segments (fun k -> k + 1))
  in
  Netlist.add_all Netlist.empty elements

(* Driver + load harness around a block that exposes nodes a and b. *)
let harness block =
  block
  |> Fun.flip Netlist.add
       (Element.make ~name:"Vin" ~kind:Element.Vsource ~pos:"in" ~neg:"0"
          ~value:1.0 ())
  |> Fun.flip Netlist.add (resistor "Rdrv" "in" "a" 150.0)
  |> Fun.flip Netlist.add (capacitor "Cload" "b" "0" 100e-15)
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node "b")

let () =
  let segments = 200 in
  let block = line_block ~segments in

  section "Reduction";
  let t0 = Unix.gettimeofday () in
  let mm = Macromodel.reduce ~order:4 ~ports:[ "a"; "b" ] block in
  let reduced = Macromodel.to_netlist mm in
  Printf.printf "reduced the %d-element block in %.1f ms\n"
    (fst (Netlist.stats block))
    ((Unix.gettimeofday () -. t0) *. 1e3);
  let full = harness block in
  let hier = harness reduced in
  let n_full = Mna.size (Mna.index (Mna.build full)) in
  let n_hier = Mna.size (Mna.index (Mna.build hier)) in
  Printf.printf "full system: %d unknowns;  hierarchical: %d unknowns\n"
    n_full n_hier;

  section "Frequency response, full vs hierarchical";
  let mna_full = Mna.build full and mna_hier = Mna.build hier in
  Printf.printf "%12s %14s %14s %12s\n" "f (Hz)" "full (dB)" "hier (dB)"
    "diff (dB)";
  List.iter
    (fun f ->
      let a = Spice.Ac.at_frequency mna_full f in
      let b = Spice.Ac.at_frequency mna_hier f in
      Printf.printf "%12.3g %14.3f %14.3f %12.4f\n" f
        (Spice.Ac.magnitude_db a) (Spice.Ac.magnitude_db b)
        (Spice.Ac.magnitude_db b -. Spice.Ac.magnitude_db a))
    [ 1e6; 1e7; 1e8; 3e8; 1e9 ];

  section "Step response, full vs hierarchical";
  let t_stop = 10e-9 and t_step = 10e-12 in
  let time run mna =
    let t0 = Unix.gettimeofday () in
    let w = run mna in
    (w, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let run mna =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step ~t_stop
  in
  let w_full, ms_full = time run mna_full in
  let w_hier, ms_hier = time run mna_hier in
  let worst = ref 0.0 in
  Array.iteri
    (fun k (_, y) -> worst := Float.max !worst (Float.abs (y -. snd w_hier.(k))))
    w_full;
  Printf.printf "%12s %12s %12s\n" "t (ns)" "full" "hier";
  Array.iteri
    (fun k (t, y) ->
      if k mod 200 = 0 then
        Printf.printf "%12.2f %12.5f %12.5f\n" (t *. 1e9) y (snd w_hier.(k)))
    w_full;
  Printf.printf
    "\nworst step-response deviation: %.4f of the input step\n" !worst;
  Printf.printf "transient cost: full %.1f ms, hierarchical %.2f ms (%.0fx)\n"
    ms_full ms_hier (ms_full /. ms_hier);
  Printf.printf
    "\nThe macromodel is a drop-in netlist: the same deck machinery (export,\n\
     parse, AC, transient) runs on it — `awesym macromodel <deck> -p a -p \
     b -o block.cir`\n"
