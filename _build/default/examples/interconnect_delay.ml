(* Interconnect delay modelling for physical CAD — the application the
   paper's introduction motivates ("AWEsymbolic should serve as a useful
   mechanism for modeling interconnect delay in physical CAD design tools").

   A placement/routing tool re-evaluates net delays millions of times while
   only the driver strength and the sink load change.  A compiled
   AWEsymbolic timing model of the net makes each re-evaluation a handful of
   floating-point operations instead of a full circuit analysis.

   Run with:  dune exec examples/interconnect_delay.exe *)

module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model

let section title = Printf.printf "\n=== %s ===\n" title

(* An RC-tree net with a driver resistance in front and a sink load at one
   leaf, both symbolic. *)
let net () =
  let tree = Builders.rc_tree ~depth:5 ~r:20.0 ~c:5e-15 () in
  (* Insert the driver between the source and the tree root, and hang the
     symbolic sink load on the output leaf. *)
  let elements =
    Netlist.elements tree
    |> List.map (fun (e : Element.t) ->
           if e.Element.name = "R1" then
             (* Tree root resistor now comes after the driver node. *)
             Element.make ~name:"R1" ~kind:Element.Resistor ~pos:"drv"
               ~neg:e.Element.neg ~value:e.Element.value ()
           else e)
  in
  let out_node =
    match Netlist.output tree with
    | Netlist.Node n -> n
    | Netlist.Diff _ -> assert false
  in
  let nl =
    Netlist.empty
    |> Fun.flip Netlist.add_all elements
    |> Fun.flip Netlist.add
         (Element.make ~name:"rdrv" ~kind:Element.Resistor ~pos:"in" ~neg:"drv"
            ~value:100.0 ())
    |> Fun.flip Netlist.add
         (Element.make ~name:"csink" ~kind:Element.Capacitor ~pos:out_node
            ~neg:"0" ~value:10e-15 ())
    |> Fun.flip Netlist.with_input "Vin"
    |> Fun.flip Netlist.with_output (Netlist.Node out_node)
  in
  let nl = Netlist.mark_symbolic nl "rdrv" (Sym.intern "g_drv") in
  Netlist.mark_symbolic nl "csink" (Sym.intern "c_sink")

let () =
  let nl = net () in
  let total, storage = Netlist.stats nl in
  Printf.printf "net: binary RC tree, %d elements (%d capacitors)\n" total
    storage;

  section "Compiled timing model (order 2)";
  let model = Model.build ~order:2 nl in
  Printf.printf "symbols: %s\n"
    (String.concat ", "
       (Array.to_list (Array.map Sym.name (Model.symbols model))));
  Printf.printf "compiled program: %d operations\n" (Model.num_operations model);

  section "Delay table: 50% delay (ps) vs driver strength and sink load";
  let drivers = [ 50.0; 100.0; 200.0; 400.0; 800.0 ] in
  let loads = [ 1e-15; 5e-15; 20e-15; 80e-15 ] in
  Printf.printf "%12s" "Rdrv \\ Cs";
  List.iter (fun c -> Printf.printf "%12s" (Circuit.Units.format c)) loads;
  print_newline ();
  let eval = Model.evaluator model in
  List.iter
    (fun rdrv ->
      Printf.printf "%12g" rdrv;
      List.iter
        (fun csink ->
          let rom = eval (Model.values model [ ("g_drv", 1.0 /. rdrv); ("c_sink", csink) ]) in
          match Awe.Measures.delay_50 rom with
          | Some t -> Printf.printf "%12.2f" (t *. 1e12)
          | None -> Printf.printf "%12s" "-")
        loads;
      print_newline ())
    drivers;

  section "Elmore vs AWE 50% delay at nominal (Elmore is pessimistic)";
  let v = Model.values model [ ("g_drv", 1.0 /. 100.0); ("c_sink", 10e-15) ] in
  let m = Model.eval_moments model v in
  let rom = Model.rom model v in
  Printf.printf "Elmore delay −m1/m0 : %.2f ps\n"
    (Awe.Measures.elmore_delay m *. 1e12);
  (match Awe.Measures.delay_50 rom with
  | Some t -> Printf.printf "AWE 50%% delay      : %.2f ps\n" (t *. 1e12)
  | None -> ());

  section "Validation: compiled delay vs transient simulation";
  let rom = Model.rom model v in
  let mna = Circuit.Mna.build (Netlist.map_elements (fun e -> e) nl) in
  (* For the reference, substitute nominal values back (the symbolic marks
     carry nominal values already). *)
  let wave =
    Spice.Tran.simulate mna ~input:Spice.Tran.step_input ~t_step:1e-12
      ~t_stop:1e-9
  in
  let crossing =
    Array.to_list wave
    |> List.find_opt (fun (_, y) -> y >= 0.5)
  in
  (match (crossing, Awe.Measures.delay_50 rom) with
  | Some (t_sim, _), Some t_rom ->
    Printf.printf "transient 50%% crossing: %.2f ps;  model: %.2f ps\n"
      (t_sim *. 1e12) (t_rom *. 1e12)
  | _ -> print_endline "no crossing found");
  print_newline ()
