(* Large-signal simulation: where the linear(ized) toolchain stops.

   AWE and AWEsymbolic model small-signal behaviour around an operating
   point.  A rectifier never sits at one operating point — every cycle
   sweeps the diode through cutoff and conduction — so it needs the
   large-signal transient engine (Newton inside trapezoidal companions).
   This example simulates a half-wave peak rectifier, then shows the
   contrast: the small-signal model linearized at the rectifier's DC point
   predicts completely different behaviour, which is exactly why the
   "linearized" qualifier in the paper's title matters.

   Run with:  dune exec examples/rectifier.exe *)

module Element = Circuit.Element
module Nl = Nonlinear.Netlist
module Models = Nonlinear.Models

let section title = Printf.printf "\n=== %s ===\n" title

let rectifier () =
  Nl.empty
  |> Fun.flip Nl.add_element
       (Element.make ~name:"Vin" ~kind:Element.Vsource ~pos:"in" ~neg:"0"
          ~value:0.0 ())
  |> Fun.flip Nl.add_device
       (Nl.Diode
          { name = "D1"; anode = "in"; cathode = "out";
            model = Models.default_diode })
  |> Fun.flip Nl.add_element
       (Element.make ~name:"Rl" ~kind:Element.Resistor ~pos:"out" ~neg:"0"
          ~value:10e3 ())
  |> Fun.flip Nl.add_element
       (Element.make ~name:"Cl" ~kind:Element.Capacitor ~pos:"out" ~neg:"0"
          ~value:4.7e-6 ())
  |> Fun.flip Nl.with_ac_input "Vin"
  |> Fun.flip Nl.with_output (Circuit.Netlist.Node "out")

let () =
  let nl = rectifier () in
  let f = 1e3 in
  let amplitude = 5.0 in
  let input t = amplitude *. Float.sin (2.0 *. Float.pi *. f *. t) in

  section "Half-wave rectifier, 5 V / 1 kHz sine, 4.7 uF reservoir";
  let wave =
    Nonlinear.Tran.simulate nl ~input ~t_step:(1.0 /. f /. 200.0)
      ~t_stop:(5.0 /. f)
  in
  Printf.printf "%12s %10s %10s\n" "t (ms)" "vin" "vout";
  Array.iteri
    (fun k (t, y) ->
      if k mod 50 = 0 then
        Printf.printf "%12.3f %10.3f %10.3f\n" (t *. 1e3) (input t) y)
    wave;
  let settled = Array.to_list wave |> List.filter (fun (t, _) -> t > 4.0 /. f) in
  let vmax = List.fold_left (fun a (_, y) -> Float.max a y) neg_infinity settled in
  let vmin = List.fold_left (fun a (_, y) -> Float.min a y) infinity settled in
  Printf.printf "\nsettled output: %.3f V mean, %.0f mV ripple\n"
    (0.5 *. (vmax +. vmin))
    ((vmax -. vmin) *. 1e3);

  section "Why linearization cannot model this";
  (* Linearize at the DC point (input = 0): the diode is off, gd ≈ 0 — the
     small-signal model predicts (almost) nothing gets through. *)
  let sol = Nonlinear.Newton.solve nl in
  let lin = Nonlinear.Linearize.netlist nl sol in
  let h = Spice.Ac.at_frequency (Circuit.Mna.build lin) f in
  Printf.printf
    "small-signal |H| at the DC point (diode off): %.2e — predicts ~no \
     output,\nwhile the large-signal response charges the reservoir to \
     %.2f V.\n"
    (Numeric.Cx.norm h) vmax;
  Printf.printf
    "Linear(ized) analysis is a model of a bias point; switching circuits \
     need the\nlarge-signal engine that produced the waveform above.\n"
