examples/interconnect_delay.mli:
