examples/rectifier.mli:
