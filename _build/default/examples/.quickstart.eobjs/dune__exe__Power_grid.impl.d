examples/power_grid.ml: Array Awe Awesymbolic Circuit Format List Printf Spice Symbolic
