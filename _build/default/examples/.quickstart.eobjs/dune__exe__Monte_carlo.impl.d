examples/monte_carlo.ml: Array Awe Awesymbolic Circuit Float Int Printf Symbolic Unix
