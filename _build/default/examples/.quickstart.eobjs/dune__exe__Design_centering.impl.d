examples/design_centering.ml: Array Awe Awesymbolic Circuit Float List Numeric Option Printf Symbolic Unix
