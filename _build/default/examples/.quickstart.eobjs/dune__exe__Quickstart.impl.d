examples/quickstart.ml: Array Awe Awesymbolic Circuit Exact Float List Numeric Printf Spice String Symbolic
