examples/coupled_lines.ml: Array Awe Awesymbolic Circuit List Printf Spice Symbolic
