examples/hierarchical.mli:
