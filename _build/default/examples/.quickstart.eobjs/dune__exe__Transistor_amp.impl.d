examples/transistor_amp.ml: Awe Awesymbolic Circuit Format Fun List Nonlinear Option Printf Symbolic
