examples/design_centering.mli:
