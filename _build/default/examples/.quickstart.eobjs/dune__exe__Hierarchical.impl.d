examples/hierarchical.ml: Array Awesymbolic Circuit Float Fun List Numeric Printf Spice Unix
