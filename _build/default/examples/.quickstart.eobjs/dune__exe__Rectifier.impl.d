examples/rectifier.ml: Array Circuit Float Fun List Nonlinear Numeric Printf Spice
