examples/coupled_lines.mli:
