examples/quickstart.mli:
