examples/interconnect_delay.ml: Array Awe Awesymbolic Circuit Fun List Printf Spice String Symbolic
