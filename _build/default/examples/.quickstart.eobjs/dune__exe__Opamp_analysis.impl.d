examples/opamp_analysis.ml: Array Awe Awesymbolic Circuit List Numeric Printf Symbolic
