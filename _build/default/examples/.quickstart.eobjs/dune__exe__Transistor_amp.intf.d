examples/transistor_amp.mli:
