examples/opamp_analysis.mli:
