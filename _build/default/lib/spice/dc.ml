module Mna = Circuit.Mna

let solve mna = Numeric.Lu.solve_dense (Mna.g mna) (Mna.source_vector mna)
let output mna = Mna.output_of mna (solve mna)

let node_voltage mna node =
  let x = solve mna in
  let r = Mna.node_row (Mna.index mna) node in
  if r < 0 then 0.0 else x.(r)
