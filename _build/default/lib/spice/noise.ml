module Mna = Circuit.Mna
module Element = Circuit.Element
module Cx = Numeric.Cx
module Cmatrix = Numeric.Cmatrix

let boltzmann = 1.380649e-23

(* Adjoint solve: (G + jωC)ᵀ·a = l.  The transposed system is assembled
   directly (the complex solver has no transpose mode). *)
let adjoint mna f =
  let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
  let g = Mna.g mna and c = Mna.c mna in
  let n = Numeric.Matrix.rows g in
  let sys =
    Cmatrix.init n n (fun i j ->
        Cx.add
          (Cx.of_float (Numeric.Matrix.get g j i))
          (Cx.mul s (Cx.of_float (Numeric.Matrix.get c j i))))
  in
  let l = Array.map Cx.of_float (Mna.output_vector mna) in
  Cmatrix.solve sys l

let contributions ?(temperature = 300.0) mna f =
  let a = adjoint mna f in
  let ix = Mna.index mna in
  let at node =
    match Mna.node_row ix node with -1 -> Cx.zero | r -> a.(r)
  in
  Circuit.Netlist.elements (Mna.netlist mna)
  |> List.filter_map (fun (e : Element.t) ->
         match e.Element.kind with
         | Element.Resistor | Element.Conductance ->
           let g_val = Element.stamp_value e in
           let z = Cx.sub (at e.Element.pos) (at e.Element.neg) in
           let density =
             4.0 *. boltzmann *. temperature *. g_val *. (Cx.norm z ** 2.0)
           in
           Some (e.Element.name, density)
         | Element.Capacitor | Element.Inductor | Element.Vccs _
         | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _ | Element.Mutual _
         | Element.Vsource | Element.Isource ->
           None)
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let output_density ?temperature mna f =
  List.fold_left (fun acc (_, d) -> acc +. d) 0.0 (contributions ?temperature mna f)

let integrated ?temperature ?(points = 200) mna ~f_start ~f_stop =
  if not (0.0 < f_start && f_start < f_stop) then
    invalid_arg "Noise.integrated: need 0 < f_start < f_stop";
  if points < 2 then invalid_arg "Noise.integrated: points >= 2";
  let ratio = Float.log (f_stop /. f_start) /. float_of_int (points - 1) in
  let freqs =
    Array.init points (fun k -> f_start *. Float.exp (ratio *. float_of_int k))
  in
  let dens = Array.map (fun f -> output_density ?temperature mna f) freqs in
  let total = ref 0.0 in
  for k = 0 to points - 2 do
    total :=
      !total +. (0.5 *. (dens.(k) +. dens.(k + 1)) *. (freqs.(k + 1) -. freqs.(k)))
  done;
  !total
