(** Frequency-domain analysis by direct complex solves — the ground truth
    the AWE reduced-order models are validated against. *)

val transfer : Circuit.Mna.t -> Numeric.Cx.t -> Numeric.Cx.t
(** [transfer mna s] is [H(s) = lᵀ·(G + s·C)⁻¹·b] for unit input. *)

val at_frequency : Circuit.Mna.t -> float -> Numeric.Cx.t
(** [at_frequency mna f] is [H(j·2πf)] with [f] in hertz. *)

val sweep :
  Circuit.Mna.t -> f_start:float -> f_stop:float -> points:int ->
  (float * Numeric.Cx.t) array
(** Logarithmic frequency sweep; requires [0 < f_start < f_stop] and
    [points ≥ 2]. *)

val magnitude_db : Numeric.Cx.t -> float
val phase_deg : Numeric.Cx.t -> float
