module Mna = Circuit.Mna
module Matrix = Numeric.Matrix

type waveform = float -> float

let step_input t = if t <= 0.0 then 0.0 else 1.0

let ramp_input ~rise t =
  if t <= 0.0 then 0.0 else if t >= rise then 1.0 else t /. rise

let simulate_full ?x0 mna ~input ~t_step ~t_stop =
  if t_step <= 0.0 || t_stop < 0.0 then
    invalid_arg "Tran.simulate: need t_step > 0 and t_stop >= 0";
  let g = Mna.g mna and c = Mna.c mna in
  let n = Matrix.rows g in
  let b = Mna.input_vector mna in
  let x = match x0 with Some x0 -> Array.copy x0 | None -> Array.make n 0.0 in
  (* Trapezoidal: (C/h + G/2)·x₊ = (C/h − G/2)·x + b·(u₊ + u)/2. *)
  let lhs = Matrix.add (Matrix.scale (1.0 /. t_step) c) (Matrix.scale 0.5 g) in
  let rhs_m = Matrix.sub (Matrix.scale (1.0 /. t_step) c) (Matrix.scale 0.5 g) in
  let lu = Numeric.Lu.factor lhs in
  let steps = int_of_float (Float.ceil (t_stop /. t_step)) in
  let out = Array.make (steps + 1) (0.0, [||]) in
  out.(0) <- (0.0, Array.copy x);
  let state = ref x in
  for k = 1 to steps do
    let t_prev = t_step *. float_of_int (k - 1) in
    let t = t_step *. float_of_int k in
    let drive = 0.5 *. (input t +. input t_prev) in
    let rhs = Matrix.mul_vec rhs_m !state in
    Array.iteri (fun i bi -> rhs.(i) <- rhs.(i) +. (bi *. drive)) b;
    state := Numeric.Lu.solve lu rhs;
    out.(k) <- (t, Array.copy !state)
  done;
  out

let simulate ?x0 mna ~input ~t_step ~t_stop =
  let l = Mna.output_vector mna in
  let dot x =
    let acc = ref 0.0 in
    Array.iteri (fun k lv -> if lv <> 0.0 then acc := !acc +. (lv *. x.(k))) l;
    !acc
  in
  simulate_full ?x0 mna ~input ~t_step ~t_stop
  |> Array.map (fun (t, x) -> (t, dot x))

let simulate_adaptive ?x0 ?(tol = 1e-6) ?(h_min = 1e-18) ?h_max mna ~input
    ~t_stop =
  if t_stop <= 0.0 then invalid_arg "Tran.simulate_adaptive: need t_stop > 0";
  if tol <= 0.0 then invalid_arg "Tran.simulate_adaptive: need tol > 0";
  let g = Mna.g mna and c = Mna.c mna in
  let n = Matrix.rows g in
  let b = Mna.input_vector mna in
  let l = Mna.output_vector mna in
  let dot x =
    let acc = ref 0.0 in
    Array.iteri (fun k lv -> if lv <> 0.0 then acc := !acc +. (lv *. x.(k))) l;
    !acc
  in
  let h_max = match h_max with Some h -> h | None -> t_stop /. 10.0 in
  (* Factorizations are cached per step size: step doubling uses h and h/2
     together, and the controller revisits the same sizes repeatedly, so the
     cache keeps refactoring off the per-step path. *)
  let factors = Hashtbl.create 16 in
  let solver h =
    match Hashtbl.find_opt factors h with
    | Some s -> s
    | None ->
      let lhs = Matrix.add (Matrix.scale (1.0 /. h) c) (Matrix.scale 0.5 g) in
      let rhs_m = Matrix.sub (Matrix.scale (1.0 /. h) c) (Matrix.scale 0.5 g) in
      let s = (Numeric.Lu.factor lhs, rhs_m) in
      Hashtbl.replace factors h s;
      s
  in
  let advance h t x =
    let lu, rhs_m = solver h in
    let drive = 0.5 *. (input (t +. h) +. input t) in
    let rhs = Matrix.mul_vec rhs_m x in
    Array.iteri (fun i bi -> rhs.(i) <- rhs.(i) +. (bi *. drive)) b;
    Numeric.Lu.solve lu rhs
  in
  let out = ref [] in
  let x = ref (match x0 with Some v -> Array.copy v | None -> Array.make n 0.0) in
  out := (0.0, dot !x) :: !out;
  let t = ref 0.0 in
  let h = ref (Float.min h_max (t_stop /. 1000.0)) in
  while !t < t_stop -. (1e-12 *. t_stop) do
    let h_try = Float.min !h (t_stop -. !t) in
    (* Step doubling: one h step vs two h/2 steps.  Trapezoidal is 2nd
       order, so err(h) ≈ 4·err(h/2); their difference estimates the local
       truncation error of the fine solution (Richardson). *)
    let coarse = advance h_try !t !x in
    let half = advance (h_try /. 2.0) !t !x in
    let fine = advance (h_try /. 2.0) (!t +. (h_try /. 2.0)) half in
    let scale =
      Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1e-12 fine
    in
    let err = ref 0.0 in
    Array.iteri
      (fun i v -> err := Float.max !err (Float.abs (v -. coarse.(i))))
      fine;
    let err = !err /. (3.0 *. scale) in
    if err <= tol || h_try <= h_min *. 2.0 then begin
      (* Accept the fine solution; both half-points are on the trapezoidal
         grid, so record the midpoint too. *)
      out := (!t +. (h_try /. 2.0), dot half) :: !out;
      t := !t +. h_try;
      x := fine;
      out := (!t, dot fine) :: !out;
      if err < tol /. 8.0 then h := Float.min h_max (h_try *. 2.0)
    end
    else h := Float.max h_min (h_try /. 2.0)
  done;
  Array.of_list (List.rev !out)
