module Mna = Circuit.Mna
module Cx = Numeric.Cx

let transfer mna s =
  let sys = Numeric.Cmatrix.combine (Mna.g mna) s (Mna.c mna) in
  let b = Array.map Cx.of_float (Mna.input_vector mna) in
  let x = Numeric.Cmatrix.solve sys b in
  let l = Mna.output_vector mna in
  let acc = ref Cx.zero in
  Array.iteri (fun k lv -> if lv <> 0.0 then acc := Cx.add !acc (Cx.scale lv x.(k))) l;
  !acc

let at_frequency mna f = transfer mna (Cx.make 0.0 (2.0 *. Float.pi *. f))

let sweep mna ~f_start ~f_stop ~points =
  if not (0.0 < f_start && f_start < f_stop) then
    invalid_arg "Ac.sweep: need 0 < f_start < f_stop";
  if points < 2 then invalid_arg "Ac.sweep: need points >= 2";
  let ratio = Float.log (f_stop /. f_start) /. float_of_int (points - 1) in
  Array.init points (fun k ->
      let f = f_start *. Float.exp (ratio *. float_of_int k) in
      (f, at_frequency mna f))

let magnitude_db z = 20.0 *. Float.log10 (Cx.norm z)
let phase_deg z = Cx.arg z *. 180.0 /. Float.pi
