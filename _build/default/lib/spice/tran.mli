(** Transient analysis by trapezoidal integration of the MNA descriptor
    system [C·ẋ + G·x = b·u(t)].

    The left-hand matrix [(C/h + G/2)] is factored once for a fixed step, so
    cost is one triangular solve per timestep — the "traditional circuit
    simulator" cost AWE is benchmarked against. *)

type waveform = float -> float
(** Input drive as a function of time. *)

val step_input : waveform
(** Unit step: 0 for [t <= 0], 1 after (the 0⁻ convention keeps trapezoidal
    integration consistent with zero initial state). *)

val ramp_input : rise:float -> waveform
(** 0 → 1 linear ramp over [rise] seconds. *)

val simulate :
  ?x0:float array ->
  Circuit.Mna.t -> input:waveform -> t_step:float -> t_stop:float ->
  (float * float) array
(** [(t, y(t))] samples of the designated output, including [t = 0].
    [x0] defaults to the zero state. *)

val simulate_full :
  ?x0:float array ->
  Circuit.Mna.t -> input:waveform -> t_step:float -> t_stop:float ->
  (float * float array) array
(** Full state trajectories (node voltages and branch currents). *)

val simulate_adaptive :
  ?x0:float array ->
  ?tol:float ->
  ?h_min:float ->
  ?h_max:float ->
  Circuit.Mna.t -> input:waveform -> t_stop:float ->
  (float * float) array
(** Variable-step trapezoidal integration with step-doubling (Richardson)
    error control: each step is accepted when the estimated relative local
    truncation error is below [tol] (default 1e-6), the step halves on
    rejection and doubles when comfortably inside the budget.  Returns
    non-uniformly spaced [(t, y)] samples including [t = 0].  Factorizations
    are cached per step size, so the controller costs three triangular
    solves per accepted step.  Suited to stiff responses (widely separated
    time constants), where a fixed step wastes thousands of points on the
    slow tail. *)
