(** Linear DC operating point. *)

val solve : Circuit.Mna.t -> float array
(** Full unknown vector with every independent source at its netlist
    value. *)

val output : Circuit.Mna.t -> float
(** The designated output at the DC operating point. *)

val node_voltage : Circuit.Mna.t -> string -> float
(** Convenience lookup after a full solve. *)
