(** Thermal (Johnson–Nyquist) noise analysis.

    Every resistive element contributes a white current-noise source of
    density [4·k·T·G] A²/Hz across its terminals.  The output noise density
    is [S(f) = Σ_R 4kT·G_R · |Z_R→out(jω)|²], where the transfer impedances
    come from {e one} adjoint solve per frequency: with
    [(G + jωC)ᵀ·a = l], the response at the output to a unit current
    injected across an element is [a⁺ − a⁻]. *)

val boltzmann : float
(** 1.380649e-23 J/K. *)

val output_density : ?temperature:float -> Circuit.Mna.t -> float -> float
(** [output_density mna f] is the one-sided output noise power spectral
    density (V²/Hz) at frequency [f] (hertz), at [temperature] kelvin
    (default 300). *)

val contributions :
  ?temperature:float -> Circuit.Mna.t -> float -> (string * float) list
(** Per-element density breakdown (same units), largest first. *)

val integrated :
  ?temperature:float -> ?points:int -> Circuit.Mna.t ->
  f_start:float -> f_stop:float -> float
(** Total output noise power (V²) over the band, by log-trapezoidal
    integration of {!output_density} ([points] defaults to 200).  For a
    single-pole RC lowpass integrated over all frequencies this approaches
    the classic [kT/C]. *)
