lib/spice/noise.mli: Circuit
