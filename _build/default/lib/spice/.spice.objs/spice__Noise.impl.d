lib/spice/noise.ml: Array Circuit Float List Numeric
