lib/spice/dc.ml: Array Circuit Numeric
