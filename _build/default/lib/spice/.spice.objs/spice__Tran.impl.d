lib/spice/tran.ml: Array Circuit Float Hashtbl List Numeric
