lib/spice/ac.ml: Array Circuit Float Numeric
