lib/spice/tran.mli: Circuit
