lib/spice/ac.mli: Circuit Numeric
