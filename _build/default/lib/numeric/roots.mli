(** Polynomial root finding.

    AWE needs the roots of low-degree characteristic polynomials (typically
    degree ≤ 5).  Degrees 1–3 use closed forms; higher degrees use the
    Aberth–Ehrlich simultaneous iteration with a Cauchy-bound initial
    circle. *)

val quadratic : float -> float -> float -> Cx.t * Cx.t
(** [quadratic a b c] returns the two roots of [a·x² + b·x + c], computed with
    the numerically stable citardauq form.  Requires [a <> 0]. *)

val of_poly : Poly.t -> Cx.t array
(** All complex roots of the polynomial, in no particular order.
    Raises [Invalid_argument] on the zero polynomial or constants. *)

val real_roots : ?tol:float -> Poly.t -> float array
(** Real roots only (imaginary part below [tol] relative to modulus),
    sorted ascending. *)

val polish : Poly.t -> Cx.t -> Cx.t
(** A few Newton steps to refine a root estimate. *)
