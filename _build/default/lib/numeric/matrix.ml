type t = { nrows : int; ncols : int; data : float array }

let create nrows ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Matrix.create: negative size";
  { nrows; ncols; data = Array.make (nrows * ncols) 0.0 }

let rows m = m.nrows
let cols m = m.ncols

let get m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Matrix.get: index out of bounds";
  m.data.((i * m.ncols) + j)

let set m i j x =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Matrix.set: index out of bounds";
  m.data.((i * m.ncols) + j) <- x

let add_entry m i j x =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Matrix.add_entry: index out of bounds";
  let k = (i * m.ncols) + j in
  m.data.(k) <- m.data.(k) +. x

let init nrows ncols f =
  let m = create nrows ncols in
  for i = 0 to nrows - 1 do
    for j = 0 to ncols - 1 do
      m.data.((i * ncols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays a =
  let nrows = Array.length a in
  if nrows = 0 then create 0 0
  else begin
    let ncols = Array.length a.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> ncols then
          invalid_arg "Matrix.of_arrays: ragged rows")
      a;
    init nrows ncols (fun i j -> a.(i).(j))
  end

let to_arrays m =
  Array.init m.nrows (fun i ->
      Array.init m.ncols (fun j -> m.data.((i * m.ncols) + j)))

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.ncols m.nrows (fun i j -> get m j i)

let same_shape op a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg (op ^ ": shape mismatch")

let add a b =
  same_shape "Matrix.add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  same_shape "Matrix.sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale c m = { m with data = Array.map (fun x -> c *. x) m.data }

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Matrix.mul: shape mismatch";
  let m = create a.nrows b.ncols in
  for i = 0 to a.nrows - 1 do
    for k = 0 to a.ncols - 1 do
      let aik = a.data.((i * a.ncols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.ncols - 1 do
          let idx = (i * b.ncols) + j in
          m.data.(idx) <- m.data.(idx) +. (aik *. b.data.((k * b.ncols) + j))
        done
    done
  done;
  m

let mul_vec m v =
  if Array.length v <> m.ncols then invalid_arg "Matrix.mul_vec: size mismatch";
  Array.init m.nrows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.ncols - 1 do
        acc := !acc +. (m.data.((i * m.ncols) + j) *. v.(j))
      done;
      !acc)

let mul_vec_transpose m v =
  if Array.length v <> m.nrows then
    invalid_arg "Matrix.mul_vec_transpose: size mismatch";
  let out = Array.make m.ncols 0.0 in
  for i = 0 to m.nrows - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then
      for j = 0 to m.ncols - 1 do
        out.(j) <- out.(j) +. (m.data.((i * m.ncols) + j) *. vi)
      done
  done;
  out

let column m j = Array.init m.nrows (fun i -> get m i j)
let row m i = Array.init m.ncols (fun j -> get m i j)

let map f m = { m with data = Array.map f m.data }

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.nrows - 1 do
    let s = ref 0.0 in
    for j = 0 to m.ncols - 1 do
      s := !s +. Float.abs m.data.((i * m.ncols) + j)
    done;
    if !s > !best then best := !s
  done;
  !best

let equal ?(tol = 1e-12) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "@[<h>[";
    for j = 0 to m.ncols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%g" (get m i j)
    done;
    Format.fprintf ppf "]@]";
    if i < m.nrows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
