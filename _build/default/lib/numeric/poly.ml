type t = float array
(* Invariant: either empty (the zero polynomial) or the last entry is
   non-zero. *)

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0.0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero = [||]
let of_coeffs a = trim (Array.copy a)
let const c = if c = 0.0 then zero else [| c |]
let one = [| 1.0 |]
let x = [| 0.0; 1.0 |]
let coeffs p = Array.copy p
let coeff p k = if k < 0 || k >= Array.length p then 0.0 else p.(k)
let degree p = Array.length p - 1
let is_zero p = Array.length p = 0

let add a b =
  let n = Int.max (Array.length a) (Array.length b) in
  trim (Array.init n (fun k -> coeff a k +. coeff b k))

let neg a = Array.map (fun c -> -.c) a
let sub a b = add a (neg b)
let scale c a = if c = 0.0 then zero else trim (Array.map (fun v -> c *. v) a)

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let out = Array.make (Array.length a + Array.length b - 1) 0.0 in
    Array.iteri
      (fun i ai ->
        if ai <> 0.0 then
          Array.iteri (fun j bj -> out.(i + j) <- out.(i + j) +. (ai *. bj)) b)
      a;
    trim out
  end

let pow p n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
    else go acc (mul base base) (n asr 1)
  in
  go one p n

let divmod a b =
  if is_zero b then raise Division_by_zero;
  let db = degree b in
  let lead = b.(db) in
  let rem = Array.copy a in
  let dq = degree a - db in
  if dq < 0 then (zero, trim rem)
  else begin
    let q = Array.make (dq + 1) 0.0 in
    for k = dq downto 0 do
      let c = rem.(k + db) /. lead in
      q.(k) <- c;
      if c <> 0.0 then
        for j = 0 to db - 1 do
          rem.(k + j) <- rem.(k + j) -. (c *. b.(j))
        done;
      (* The leading entry is eliminated exactly by construction; clear it
         rather than keep rounding dust above the remainder's degree. *)
      rem.(k + db) <- 0.0
    done;
    (trim q, trim rem)
  end

let derivative p =
  if Array.length p <= 1 then zero
  else trim (Array.init (Array.length p - 1) (fun k -> float_of_int (k + 1) *. p.(k + 1)))

let eval p v =
  let acc = ref 0.0 in
  for k = Array.length p - 1 downto 0 do
    acc := (!acc *. v) +. p.(k)
  done;
  !acc

let eval_complex p z =
  let acc = ref Cx.zero in
  for k = Array.length p - 1 downto 0 do
    acc := Cx.add (Cx.mul !acc z) (Cx.of_float p.(k))
  done;
  !acc

let shift_scale p a =
  let out = Array.copy p in
  let factor = ref 1.0 in
  for k = 0 to Array.length out - 1 do
    out.(k) <- out.(k) *. !factor;
    factor := !factor *. a
  done;
  trim out

let equal ?(tol = 1e-12) a b =
  let n = Int.max (Array.length a) (Array.length b) in
  let rec go k = k >= n || (Float.abs (coeff a k -. coeff b k) <= tol && go (k + 1)) in
  go 0

let pp ?(var = "x") ppf p =
  if is_zero p then Format.fprintf ppf "0"
  else begin
    let first = ref true in
    for k = Array.length p - 1 downto 0 do
      let c = p.(k) in
      if c <> 0.0 then begin
        if !first then begin
          if c < 0.0 then Format.fprintf ppf "-";
          first := false
        end
        else if c < 0.0 then Format.fprintf ppf " - "
        else Format.fprintf ppf " + ";
        let m = Float.abs c in
        if k = 0 then Format.fprintf ppf "%g" m
        else begin
          if m <> 1.0 then Format.fprintf ppf "%g*" m;
          if k = 1 then Format.fprintf ppf "%s" var
          else Format.fprintf ppf "%s^%d" var k
        end
      end
    done
  end

let to_string ?var p = Format.asprintf "%a" (pp ?var) p
