(** Univariate real polynomials with float coefficients.

    Coefficients are stored low-degree first: [p = c0 + c1·x + c2·x² + …].
    The representation is normalized — the leading coefficient of a non-zero
    polynomial is non-zero, and the zero polynomial is the empty coefficient
    list (degree [-1]). *)

type t

val zero : t
val one : t
val x : t

val of_coeffs : float array -> t
(** [of_coeffs [|c0; c1; …|]]; trailing zeros are trimmed. *)

val coeffs : t -> float array
val coeff : t -> int -> float
(** [coeff p k] is the coefficient of [x^k] (0 beyond the degree). *)

val degree : t -> int
(** Degree, [-1] for the zero polynomial. *)

val is_zero : t -> bool

val const : float -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val pow : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q·b + r], [deg r < deg b].
    Raises [Division_by_zero] when [b] is zero. *)

val derivative : t -> t

val eval : t -> float -> float
(** Horner evaluation. *)

val eval_complex : t -> Cx.t -> Cx.t

val shift_scale : t -> float -> t
(** [shift_scale p a] is [q(x) = p(a·x)] — the substitution used by moment
    scaling. *)

val equal : ?tol:float -> t -> t -> bool
val pp : ?var:string -> Format.formatter -> t -> unit
val to_string : ?var:string -> t -> string
