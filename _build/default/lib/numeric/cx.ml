type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let make re im = { re; im }
let of_float re = { re; im = 0.0 }
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let inv = Complex.inv
let conj = Complex.conj
let scale c z = { re = c *. z.re; im = c *. z.im }
let norm = Complex.norm
let arg = Complex.arg
let sqrt = Complex.sqrt
let exp = Complex.exp

let pow_int z n =
  if n < 0 then Complex.inv (Complex.pow z (of_float (float_of_int (-n))))
  else begin
    (* Repeated squaring keeps integer powers exact-ish for small n. *)
    let rec go acc base n =
      if n = 0 then acc
      else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
      else go acc (mul base base) (n asr 1)
    in
    go one z n
  end

let is_real ?(tol = 1e-9) z =
  Float.abs z.im <= tol *. Float.max 1.0 (norm z)

let close ?(tol = 1e-9) a b = norm (sub a b) <= tol *. Float.max 1.0 (norm a)

let pp ppf z =
  if z.im >= 0.0 then Format.fprintf ppf "(%g + %gi)" z.re z.im
  else Format.fprintf ppf "(%g - %gi)" z.re (-.z.im)
