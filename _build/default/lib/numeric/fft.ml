let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Iterative Cooley–Tukey with bit-reversal permutation. *)
let fft_in_place sign (a : Cx.t array) =
  let n = Array.length a in
  (* Bit reversal. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let t = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- t
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Butterflies. *)
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wlen = Cx.make (Float.cos ang) (Float.sin ang) in
    let half = !len / 2 in
    let i = ref 0 in
    while !i < n do
      let w = ref Cx.one in
      for k = 0 to half - 1 do
        let u = a.(!i + k) in
        let v = Cx.mul a.(!i + k + half) !w in
        a.(!i + k) <- Cx.add u v;
        a.(!i + k + half) <- Cx.sub u v;
        w := Cx.mul !w wlen
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done

let transform x =
  let n = Array.length x in
  if not (is_pow2 n) then invalid_arg "Fft.transform: length must be 2^k";
  let a = Array.copy x in
  fft_in_place (-1.0) a;
  a

let inverse x =
  let n = Array.length x in
  if not (is_pow2 n) then invalid_arg "Fft.inverse: length must be 2^k";
  let a = Array.copy x in
  fft_in_place 1.0 a;
  Array.map (Cx.scale (1.0 /. float_of_int n)) a

let magnitudes signal =
  let n = Array.length signal in
  if not (is_pow2 n) then invalid_arg "Fft.magnitudes: length must be 2^k";
  let spectrum = transform (Array.map Cx.of_float signal) in
  Array.init ((n / 2) + 1) (fun k ->
      let m = Cx.norm spectrum.(k) /. float_of_int n in
      if k = 0 || k = n / 2 then m else 2.0 *. m)
