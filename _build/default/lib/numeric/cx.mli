(** Thin extensions over [Stdlib.Complex] used throughout the simulator. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t

val make : float -> float -> t
val of_float : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val conj : t -> t
val scale : float -> t -> t

val norm : t -> float
(** Modulus |z|. *)

val arg : t -> float
val sqrt : t -> t
val exp : t -> t
val pow_int : t -> int -> t

val is_real : ?tol:float -> t -> bool
(** True when the imaginary part is below [tol] (default [1e-9]) relative to
    the modulus. *)

val close : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
