lib/numeric/roots.mli: Cx Poly
