lib/numeric/roots.ml: Array Cx Float List Poly
