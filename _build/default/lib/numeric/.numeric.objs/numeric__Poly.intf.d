lib/numeric/poly.mli: Cx Format
