lib/numeric/matrix.mli: Format
