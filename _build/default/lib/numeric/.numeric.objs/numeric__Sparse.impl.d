lib/numeric/sparse.ml: Array Float Hashtbl Int List Matrix Option
