lib/numeric/cmatrix.ml: Array Cx Format Matrix
