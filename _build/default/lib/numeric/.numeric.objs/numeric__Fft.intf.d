lib/numeric/fft.mli: Cx
