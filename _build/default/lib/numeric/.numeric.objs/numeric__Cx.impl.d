lib/numeric/cx.ml: Complex Float Format
