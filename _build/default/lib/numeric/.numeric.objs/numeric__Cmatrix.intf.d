lib/numeric/cmatrix.mli: Cx Format Matrix
