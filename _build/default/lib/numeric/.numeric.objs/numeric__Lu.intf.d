lib/numeric/lu.mli: Matrix
