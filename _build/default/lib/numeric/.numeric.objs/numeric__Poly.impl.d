lib/numeric/poly.ml: Array Cx Float Format Int
