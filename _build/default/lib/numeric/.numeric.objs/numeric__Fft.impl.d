lib/numeric/fft.ml: Array Cx Float
