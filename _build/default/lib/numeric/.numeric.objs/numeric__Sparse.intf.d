lib/numeric/sparse.mli: Matrix
