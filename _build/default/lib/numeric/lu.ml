exception Singular of int

(* Factors are stored packed in a single matrix: the strict lower triangle
   holds L (unit diagonal implied), the upper triangle holds U.  [perm] maps
   factored row index -> original row index of the right-hand side. *)
type t = { lu : Matrix.t; perm : int array; sign : float }

let size f = Array.length f.perm

let factor a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.factor: matrix not square";
  let lu = Matrix.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude entry in column k. *)
    let pivot_row = ref k in
    let pivot_mag = ref (Float.abs (Matrix.get lu k k)) in
    for i = k + 1 to n - 1 do
      let mag = Float.abs (Matrix.get lu i k) in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    if !pivot_mag = 0.0 then raise (Singular k);
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get lu k j in
        Matrix.set lu k j (Matrix.get lu !pivot_row j);
        Matrix.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Matrix.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Matrix.get lu i k /. pivot in
      Matrix.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Matrix.set lu i j (Matrix.get lu i j -. (factor *. Matrix.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve f b =
  let n = size f in
  if Array.length b <> n then invalid_arg "Lu.solve: size mismatch";
  let x = Array.init n (fun i -> b.(f.perm.(i))) in
  (* Forward substitution with unit lower triangle. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Matrix.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with upper triangle. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.get f.lu i i
  done;
  x

(* aᵀ = (P⁻¹ L U)ᵀ = Uᵀ Lᵀ P⁻ᵀ, so solve Uᵀ y = b, then Lᵀ z = y, then undo
   the permutation: x.(perm.(i)) = z.(i). *)
let solve_transpose f b =
  let n = size f in
  if Array.length b <> n then invalid_arg "Lu.solve_transpose: size mismatch";
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Matrix.get f.lu j i *. y.(j))
    done;
    y.(i) <- !acc /. Matrix.get f.lu i i
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.lu j i *. y.(j))
    done;
    y.(i) <- !acc
  done;
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    x.(f.perm.(i)) <- y.(i)
  done;
  x

let solve_matrix f b =
  let n = size f in
  if Matrix.rows b <> n then invalid_arg "Lu.solve_matrix: size mismatch";
  let out = Matrix.create n (Matrix.cols b) in
  for j = 0 to Matrix.cols b - 1 do
    let x = solve f (Matrix.column b j) in
    for i = 0 to n - 1 do
      Matrix.set out i j x.(i)
    done
  done;
  out

let det f =
  let n = size f in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get f.lu i i
  done;
  !d

let inverse f = solve_matrix f (Matrix.identity (size f))

let solve_dense a b = solve (factor a) b
