(** Dense real matrices, row-major.

    All indices are zero-based.  Dimensions are fixed at creation; operations
    that combine matrices raise [Invalid_argument] on dimension mismatch. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix of the given shape. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)

val identity : int -> t

val of_arrays : float array array -> t
(** Rows must all have the same length; the input is copied. *)

val to_arrays : t -> float array array

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_entry : t -> int -> int -> float -> unit
(** [add_entry m i j x] accumulates [x] into entry [(i, j)] — the stamping
    primitive used by MNA assembly. *)

val copy : t -> t
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t

val mul_vec : t -> float array -> float array
(** [mul_vec m v] is the matrix–vector product [m · v]. *)

val mul_vec_transpose : t -> float array -> float array
(** [mul_vec_transpose m v] is [mᵀ · v] without forming the transpose. *)

val column : t -> int -> float array
val row : t -> int -> float array

val map : (float -> float) -> t -> t

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison within absolute tolerance [tol] (default [1e-12]). *)

val pp : Format.formatter -> t -> unit
