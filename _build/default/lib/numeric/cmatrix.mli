(** Dense complex matrices and a complex LU solver.

    Used by AC analysis ([(G + jωC)·x = b]) and by residue computation
    (Vandermonde systems in the complex poles). *)

type t

val create : int -> int -> t
val init : int -> int -> (int -> int -> Cx.t) -> t
val of_real : Matrix.t -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val add_entry : t -> int -> int -> Cx.t -> unit

val mul_vec : t -> Cx.t array -> Cx.t array

val combine : Matrix.t -> Cx.t -> Matrix.t -> t
(** [combine g s c] is the complex matrix [g + s·c] — the AC system matrix at
    complex frequency [s]. *)

exception Singular of int

val solve : t -> Cx.t array -> Cx.t array
(** Gaussian elimination with partial pivoting; raises {!Singular} on
    numerically singular input.  The matrix argument is not modified. *)

val pp : Format.formatter -> t -> unit
