(** Radix-2 fast Fourier transform.

    Enough spectral machinery to measure harmonic content of steady-state
    simulator waveforms: forward/inverse complex FFT (power-of-two sizes)
    and a real-signal spectrum helper. *)

val transform : Cx.t array -> Cx.t array
(** Forward DFT, [X_k = Σ_n x_n·e^{−2πi·kn/N}].  Raises [Invalid_argument]
    unless the length is a power of two (and ≥ 1). *)

val inverse : Cx.t array -> Cx.t array
(** Inverse DFT (normalized by [1/N]): [inverse (transform x) = x]. *)

val magnitudes : float array -> float array
(** Single-sided amplitude spectrum of a real signal of power-of-two length
    [N]: entry [k ≤ N/2] is the amplitude of the sinusoid at [k] cycles per
    window ([2·|X_k|/N], except DC and Nyquist which are [|X_k|/N]). *)
