module Mna = Circuit.Mna
module Element = Circuit.Element
module Matrix = Numeric.Matrix

exception No_convergence of float

(* Per-step state of the reactive companions. *)
type companion =
  | Cap of { pos : int; neg : int; geq : float; mutable hist : float }
    (* i = geq·(v₊−v₋) − hist;  hist updated each accepted step *)
  | Ind of { pos : int; neg : int; aux : int; req : float; mutable hist : float }
    (* branch row: v₊−v₋ − req·i = hist *)

let simulate_states ?(max_iterations = 100) ?(tolerance = 1e-9) nl ~input
    ~t_step ~t_stop =
  if t_step <= 0.0 || t_stop < 0.0 then
    invalid_arg "Nonlinear.Tran: need t_step > 0 and t_stop >= 0";
  let input_name =
    match nl.Netlist.ac_input with
    | Some name -> name
    | None -> failwith "Nonlinear.Tran: no input source designated"
  in
  let linear_nl =
    Circuit.Netlist.empty |> Fun.flip Circuit.Netlist.add_all nl.Netlist.linear
  in
  let device_nodes = List.concat_map Netlist.device_nodes nl.Netlist.devices in
  let ix = Mna.index_of_netlist ~extra_nodes:device_nodes linear_nl in
  let n = Mna.size ix in
  let row name = Mna.node_row ix name in
  (* Static (resistive) stamps plus source patterns; capacitors and
     inductors become companions. *)
  let g_static = Matrix.create n n in
  let b_fixed = Array.make n 0.0 in
  let b_input = Array.make n 0.0 in
  let companions = ref [] in
  List.iter
    (fun (e : Element.t) ->
      let st = Mna.stamp_of ix e in
      let v = Element.stamp_value e in
      match e.Element.kind with
      | Element.Capacitor ->
        companions :=
          Cap
            {
              pos = row e.Element.pos;
              neg = row e.Element.neg;
              geq = 2.0 *. v /. t_step;
              hist = 0.0;
            }
          :: !companions
      | Element.Inductor ->
        List.iter
          (fun { Mna.row; col; coeff } -> Matrix.add_entry g_static row col coeff)
          st.Mna.g_const;
        companions :=
          Ind
            {
              pos = row e.Element.pos;
              neg = row e.Element.neg;
              aux = Mna.aux_row ix e.Element.name;
              req = 2.0 *. v /. t_step;
              hist = 0.0;
            }
          :: !companions
      | Element.Mutual _ ->
        failwith "Nonlinear.Tran: mutual inductance is not supported here"
      | Element.Resistor | Element.Conductance | Element.Vccs _
      | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _ | Element.Vsource
      | Element.Isource ->
        List.iter
          (fun { Mna.row; col; coeff } -> Matrix.add_entry g_static row col coeff)
          st.Mna.g_const;
        List.iter
          (fun { Mna.row; col; coeff } ->
            Matrix.add_entry g_static row col (coeff *. v))
          st.Mna.g_value;
        List.iter
          (fun (r, coeff) ->
            if e.Element.name = input_name then
              b_input.(r) <- b_input.(r) +. coeff
            else b_fixed.(r) <- b_fixed.(r) +. (coeff *. e.Element.value))
          st.Mna.b_unit)
    nl.Netlist.linear;
  (* Companion conductances and branch resistances are h-fixed. *)
  List.iter
    (fun c ->
      match c with
      | Cap { pos; neg; geq; _ } ->
        let add r c v = if r >= 0 && c >= 0 then Matrix.add_entry g_static r c v in
        add pos pos geq;
        add neg neg geq;
        add pos neg (-.geq);
        add neg pos (-.geq)
      | Ind { aux; req; _ } -> Matrix.add_entry g_static aux aux (-.req))
    !companions;
  (* Newton solve of the companion network at one time point. *)
  let solve_point ~drive ~x_guess t =
    let x = ref (Array.copy x_guess) in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iterations do
      incr iter;
      let residual = Matrix.mul_vec g_static !x in
      Array.iteri
        (fun r v ->
          residual.(r) <- v -. b_fixed.(r) -. (b_input.(r) *. drive))
        residual;
      (* Companion history currents/voltages. *)
      List.iter
        (fun c ->
          match c with
          | Cap { pos; neg; hist; _ } ->
            if pos >= 0 then residual.(pos) <- residual.(pos) -. hist;
            if neg >= 0 then residual.(neg) <- residual.(neg) +. hist
          | Ind { aux; hist; _ } -> residual.(aux) <- residual.(aux) -. hist)
        !companions;
      let jacobian = Matrix.copy g_static in
      Newton.stamp_devices nl.Netlist.devices row !x residual jacobian;
      match Numeric.Lu.factor jacobian with
      | exception Numeric.Lu.Singular _ -> raise (No_convergence t)
      | lu ->
        let dx = Numeric.Lu.solve lu (Array.map (fun v -> -.v) residual) in
        let step =
          Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 dx
        in
        let damp = if step > 0.5 then 0.5 /. step else 1.0 in
        Array.iteri (fun k v -> !x.(k) <- v +. (damp *. dx.(k))) !x;
        if step *. damp < tolerance then converged := true
    done;
    if not !converged then raise (No_convergence t);
    !x
  in
  (* Initial state: DC operating point with the input at input(0); the raw
     vector carries node voltages AND auxiliary branch currents, so the
     companion histories start consistent (capacitor current 0, inductor
     voltage 0 at DC). *)
  let nl0 =
    let base =
      List.fold_left
        (fun acc (e : Element.t) ->
          Netlist.add_element acc
            (if e.Element.name = input_name then
               Element.with_value e (input 0.0)
             else e))
        Netlist.empty nl.Netlist.linear
    in
    let base = List.fold_left Netlist.add_device base nl.Netlist.devices in
    let base = Netlist.with_ac_input base input_name in
    match nl.Netlist.output with
    | Some o -> Netlist.with_output base o
    | None -> base
  in
  let x_dc, ix_dc = Newton.solve_raw nl0 in
  if Mna.size ix_dc <> n then failwith "Nonlinear.Tran: index mismatch";
  let x0 = Array.copy x_dc in
  List.iter
    (fun c ->
      match c with
      | Cap ({ pos; neg; geq; _ } as cap) ->
        let vp = if pos >= 0 then x0.(pos) else 0.0 in
        let vn = if neg >= 0 then x0.(neg) else 0.0 in
        (* hist_{n+1} = geq·vₙ + iₙ with i₀ = 0 at DC. *)
        cap.hist <- geq *. (vp -. vn)
      | Ind ({ pos; neg; aux; req; _ } as ind) ->
        let vp = if pos >= 0 then x0.(pos) else 0.0 in
        let vn = if neg >= 0 then x0.(neg) else 0.0 in
        ind.hist <- -.(vp -. vn) -. (req *. x0.(aux)))
    !companions;
  let steps = int_of_float (Float.ceil (t_stop /. t_step)) in
  let states = Array.make (steps + 1) x0 in
  let x = ref x0 in
  for k = 1 to steps do
    let t = t_step *. float_of_int k in
    let next = solve_point ~drive:(input t) ~x_guess:!x t in
    (* Advance the companion histories. *)
    List.iter
      (fun c ->
        match c with
        | Cap ({ pos; neg; geq; hist } as cap) ->
          let vp = if pos >= 0 then next.(pos) else 0.0 in
          let vn = if neg >= 0 then next.(neg) else 0.0 in
          let i_now = (geq *. (vp -. vn)) -. hist in
          cap.hist <- (geq *. (vp -. vn)) +. i_now
        | Ind ({ pos; neg; aux; req; _ } as ind) ->
          let vp = if pos >= 0 then next.(pos) else 0.0 in
          let vn = if neg >= 0 then next.(neg) else 0.0 in
          ind.hist <- -.(vp -. vn) -. (req *. next.(aux)))
      !companions;
    x := next;
    states.(k) <- next
  done;
  (ix, t_step, states)

let simulate ?max_iterations ?tolerance nl ~input ~t_step ~t_stop =
  let ix, h, states =
    simulate_states ?max_iterations ?tolerance nl ~input ~t_step ~t_stop
  in
  let output =
    match nl.Netlist.output with
    | Some o -> o
    | None -> failwith "Nonlinear.Tran: no output designated"
  in
  let pick x =
    let at node =
      match Mna.node_row ix node with -1 -> 0.0 | r -> x.(r)
    in
    match output with
    | Circuit.Netlist.Node a -> at a
    | Circuit.Netlist.Diff (a, b) -> at a -. at b
  in
  Array.mapi (fun k x -> (h *. float_of_int k, pick x)) states

let simulate_full ?max_iterations ?tolerance nl ~input ~t_step ~t_stop =
  let ix, _, states =
    simulate_states ?max_iterations ?tolerance nl ~input ~t_step ~t_stop
  in
  Mna.node_names ix
  |> Array.to_list
  |> List.map (fun node ->
         let r = Mna.node_row ix node in
         (node, Array.map (fun x -> x.(r)) states))
