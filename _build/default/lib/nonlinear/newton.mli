(** Newton–Raphson DC operating point of a nonlinear circuit.

    Solves [F(x) = G·x + I_dev(x) − b = 0] with the Jacobian
    [J = G + ∂I_dev/∂x], one LU per iteration.  Robustness measures:
    overflow-safe device exponentials (see {!Models}), junction-voltage step
    damping, a small [gmin] to ground on every node, and source stepping as
    a fallback when plain Newton stalls — the standard SPICE recipe. *)

type solution = {
  voltages : (string * float) list;  (** non-ground node voltages *)
  iterations : int;
  residual : float;  (** final ‖F‖∞ *)
}

exception No_convergence of string

val solve :
  ?max_iterations:int -> ?tolerance:float -> ?gmin:float -> Netlist.t ->
  solution
(** Raises {!No_convergence} when neither plain Newton nor source stepping
    converges, and [Failure] when the netlist has no DC path structure
    (singular Jacobian throughout). *)

val voltage : solution -> string -> float
(** Ground reads 0; raises [Not_found] for unknown nodes. *)

val solve_raw :
  ?max_iterations:int -> ?tolerance:float -> ?gmin:float -> Netlist.t ->
  float array * Circuit.Mna.index
(** The full unknown vector (node voltages {e and} auxiliary branch
    currents) with its numbering — what {!Tran} needs to seed consistent
    companion histories. *)

val stamp_devices :
  Netlist.device list -> (string -> int) -> float array -> float array ->
  Numeric.Matrix.t -> unit
(** Add every device's currents to a residual and conductances to a
    Jacobian at the trial point (the row function maps node names, −1 for
    ground).  Shared with the transient solver. *)
