(** Nonlinear device models and their small-signal derivatives.

    The paper analyses "linear(ized)" circuits: its 741 example is a
    transistor netlist linearized at the DC operating point.  These models
    provide that front end: each device evaluates its branch currents and
    conductances at a trial voltage (for the Newton DC solve) and exposes its
    small-signal equivalent (for {!Linearize}). *)

val thermal_voltage : float
(** kT/q at 300 K, ≈ 25.85 mV. *)

type diode = {
  i_sat : float;  (** saturation current (A) *)
  emission : float;  (** emission coefficient n *)
  cj0 : float;  (** small-signal junction capacitance (F) *)
}

val default_diode : diode

val diode_current : diode -> float -> float * float
(** [diode_current m v] is [(i, g)] — current and conductance d i/d v at the
    junction voltage [v].  The exponential is linearised beyond a critical
    voltage so Newton iterations cannot overflow. *)

type mos_polarity = Nmos | Pmos

type mosfet = {
  polarity : mos_polarity;
  kp : float;  (** transconductance factor k' · W/L (A/V²) *)
  vth : float;  (** threshold voltage (positive for both polarities) *)
  lambda : float;  (** channel-length modulation (1/V) *)
  cgs : float;
  cgd : float;
}

val default_nmos : mosfet
val default_pmos : mosfet

type mos_operating = { ids : float; gm : float; gds : float }
(** Drain current (drain → source for NMOS) and its derivatives w.r.t.
    [vgs] and [vds]. *)

val mosfet_current : mosfet -> vgs:float -> vds:float -> mos_operating
(** Square-law model with cutoff/triode/saturation regions; symmetric in
    drain/source (negative [vds] handled by internal swap). *)

type bjt = {
  i_sat_b : float;  (** transport saturation current (A) *)
  beta : float;  (** forward current gain *)
  v_early : float;  (** Early voltage (V) *)
  cpi : float;
  cmu : float;
}

val default_npn : bjt

type bjt_operating = {
  ic : float;
  ib : float;
  gm_b : float;  (** ∂ic/∂vbe *)
  gpi : float;  (** ∂ib/∂vbe *)
  go : float;  (** ∂ic/∂vce *)
}

val bjt_current : bjt -> vbe:float -> vce:float -> bjt_operating
(** Forward-active Ebers–Moll (simplified), with the same overflow-safe
    exponential as the diode. *)
