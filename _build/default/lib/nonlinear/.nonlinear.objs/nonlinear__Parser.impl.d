lib/nonlinear/parser.ml: Char Circuit Fun List Models Netlist Option Printf String
