lib/nonlinear/newton.mli: Circuit Netlist Numeric
