lib/nonlinear/parser.mli: Netlist
