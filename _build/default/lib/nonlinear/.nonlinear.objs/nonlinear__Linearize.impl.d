lib/nonlinear/linearize.ml: Buffer Circuit Fun List Models Netlist Newton Printf
