lib/nonlinear/models.mli:
