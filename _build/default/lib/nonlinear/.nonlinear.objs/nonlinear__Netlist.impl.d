lib/nonlinear/netlist.ml: Circuit Hashtbl List Models Printf
