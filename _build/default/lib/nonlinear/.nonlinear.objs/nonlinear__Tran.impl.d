lib/nonlinear/tran.ml: Array Circuit Float Fun List Netlist Newton Numeric
