lib/nonlinear/distortion.mli: Netlist
