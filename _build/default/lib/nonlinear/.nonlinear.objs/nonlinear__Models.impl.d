lib/nonlinear/models.ml: Float
