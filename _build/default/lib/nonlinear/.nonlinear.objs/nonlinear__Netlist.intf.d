lib/nonlinear/netlist.mli: Circuit Models
