lib/nonlinear/linearize.mli: Circuit Netlist Newton
