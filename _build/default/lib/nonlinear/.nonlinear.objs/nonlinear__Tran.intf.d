lib/nonlinear/tran.mli: Netlist
