lib/nonlinear/newton.ml: Array Circuit Float Fun List Models Netlist Numeric Printf
