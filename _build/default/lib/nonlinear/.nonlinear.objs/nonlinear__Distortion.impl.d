lib/nonlinear/distortion.ml: Array Float Numeric Tran
