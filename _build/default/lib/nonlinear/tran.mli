(** Large-signal transient analysis of nonlinear circuits.

    Trapezoidal integration with companion models — a capacitor becomes the
    conductance [2C/h] plus a history current, an inductor the resistance
    [2L/h] plus a history voltage — and a Newton solve of the resulting
    nonlinear resistive network at every timestep.  The designated AC-input
    source's value follows [input t] (absolute volts/amps, not
    small-signal); every other source stays at its DC value.

    This closes the loop on the "linearized" methodology: the same
    transistor circuit can be simulated in full and compared against the
    small-signal models built from its operating point. *)

exception No_convergence of float
(** Carries the simulation time at which Newton stalled. *)

val simulate :
  ?max_iterations:int ->
  ?tolerance:float ->
  Netlist.t ->
  input:(float -> float) ->
  t_step:float ->
  t_stop:float ->
  (float * float) array
(** [(t, y)] samples of the designated output, starting from the DC
    operating point at [input 0.0].  Raises {!No_convergence} or
    [Newton.No_convergence] (initial point). *)

val simulate_full :
  ?max_iterations:int ->
  ?tolerance:float ->
  Netlist.t ->
  input:(float -> float) ->
  t_step:float ->
  t_stop:float ->
  (string * float array) list
(** Per-node waveforms (node name, sample array), same timing grid. *)
