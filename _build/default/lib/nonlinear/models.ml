let thermal_voltage = 0.025852

type diode = { i_sat : float; emission : float; cj0 : float }

let default_diode = { i_sat = 1e-14; emission = 1.0; cj0 = 1e-12 }

(* Beyond v_crit the exponential is continued linearly (value and slope),
   so a wild Newton trial voltage produces a large-but-finite current. *)
let safe_exp x =
  let x_max = 40.0 in
  if x <= x_max then Float.exp x
  else begin
    let e = Float.exp x_max in
    e *. (1.0 +. (x -. x_max))
  end

let safe_exp_deriv x =
  let x_max = 40.0 in
  if x <= x_max then Float.exp x else Float.exp x_max

let diode_current m v =
  let nvt = m.emission *. thermal_voltage in
  let x = v /. nvt in
  let i = m.i_sat *. (safe_exp x -. 1.0) in
  let g = m.i_sat *. safe_exp_deriv x /. nvt in
  (i, g)

type mos_polarity = Nmos | Pmos

type mosfet = {
  polarity : mos_polarity;
  kp : float;
  vth : float;
  lambda : float;
  cgs : float;
  cgd : float;
}

let default_nmos =
  { polarity = Nmos; kp = 200e-6; vth = 0.5; lambda = 0.05; cgs = 10e-15; cgd = 2e-15 }

let default_pmos = { default_nmos with polarity = Pmos; kp = 80e-6 }

type mos_operating = { ids : float; gm : float; gds : float }

(* Square law for an N-device with vds >= 0; the polarity and drain/source
   swaps are handled by the caller-facing wrapper below. *)
let nmos_forward m ~vgs ~vds =
  let vov = vgs -. m.vth in
  if vov <= 0.0 then { ids = 0.0; gm = 0.0; gds = 0.0 }
  else begin
    let clm = 1.0 +. (m.lambda *. vds) in
    if vds >= vov then begin
      (* Saturation. *)
      let i0 = 0.5 *. m.kp *. vov *. vov in
      { ids = i0 *. clm; gm = m.kp *. vov *. clm; gds = i0 *. m.lambda }
    end
    else begin
      (* Triode. *)
      let core = (vov *. vds) -. (0.5 *. vds *. vds) in
      {
        ids = m.kp *. core *. clm;
        gm = m.kp *. vds *. clm;
        gds =
          (m.kp *. (vov -. vds) *. clm) +. (m.kp *. core *. m.lambda);
      }
    end
  end

let mosfet_current m ~vgs ~vds =
  (* Map PMOS onto the N-device by sign reversal, and negative vds by a
     drain/source swap: ids(vgs, vds) = −ids(vgd, −vds). *)
  let sign, vgs, vds =
    match m.polarity with Nmos -> (1.0, vgs, vds) | Pmos -> (-1.0, -.vgs, -.vds)
  in
  if vds >= 0.0 then begin
    let op = nmos_forward m ~vgs ~vds in
    { ids = sign *. op.ids; gm = op.gm; gds = op.gds }
  end
  else begin
    let vgd = vgs -. vds in
    let op = nmos_forward m ~vgs:vgd ~vds:(-.vds) in
    (* ids = −ids'(vgd, −vds):
       ∂/∂vgs = −(∂ids'/∂vgs')·1 ... with vgs' = vgs − vds, vds' = −vds:
       gm  = −(gm'·1)            = −gm'  … but conductances must stay the
       derivative w.r.t. the ORIGINAL vgs and vds:
         ∂ids/∂vgs = −gm'
         ∂ids/∂vds = −(gm'·(−1)·… ) — worked out: gm' + gds'. *)
    { ids = sign *. -.op.ids; gm = -.op.gm; gds = op.gm +. op.gds }
  end

type bjt = {
  i_sat_b : float;
  beta : float;
  v_early : float;
  cpi : float;
  cmu : float;
}

let default_npn =
  { i_sat_b = 1e-15; beta = 150.0; v_early = 80.0; cpi = 20e-15; cmu = 2e-15 }

type bjt_operating = {
  ic : float;
  ib : float;
  gm_b : float;
  gpi : float;
  go : float;
}

let bjt_current m ~vbe ~vce =
  let x = vbe /. thermal_voltage in
  let i_f = m.i_sat_b *. (safe_exp x -. 1.0) in
  let di_f = m.i_sat_b *. safe_exp_deriv x /. thermal_voltage in
  let early = 1.0 +. (Float.max 0.0 vce /. m.v_early) in
  let ic = i_f *. early in
  {
    ic;
    ib = i_f /. m.beta;
    gm_b = di_f *. early;
    gpi = di_f /. m.beta;
    go = (if vce > 0.0 then i_f /. m.v_early else 0.0);
  }
