module Mna = Circuit.Mna
module Matrix = Numeric.Matrix

type solution = {
  voltages : (string * float) list;
  iterations : int;
  residual : float;
}

exception No_convergence of string

(* Device contributions at a trial point: currents into the residual,
   conductances into the Jacobian. *)
let stamp_devices devices row x residual jacobian =
  let v node = match row node with -1 -> 0.0 | r -> x.(r) in
  let add_f node value =
    match row node with -1 -> () | r -> residual.(r) <- residual.(r) +. value
  in
  let add_j a b value =
    match (row a, row b) with
    | -1, _ | _, -1 -> ()
    | ra, cb -> Matrix.add_entry jacobian ra cb value
  in
  List.iter
    (fun device ->
      match device with
      | Netlist.Diode { anode; cathode; model; _ } ->
        let i, g = Models.diode_current model (v anode -. v cathode) in
        add_f anode i;
        add_f cathode (-.i);
        add_j anode anode g;
        add_j anode cathode (-.g);
        add_j cathode anode (-.g);
        add_j cathode cathode g
      | Netlist.Mosfet { drain; gate; source; model; _ } ->
        let op =
          Models.mosfet_current model
            ~vgs:(v gate -. v source)
            ~vds:(v drain -. v source)
        in
        add_f drain op.Models.ids;
        add_f source (-.op.Models.ids);
        let gm = op.Models.gm and gds = op.Models.gds in
        add_j drain gate gm;
        add_j drain drain gds;
        add_j drain source (-.(gm +. gds));
        add_j source gate (-.gm);
        add_j source drain (-.gds);
        add_j source source (gm +. gds)
      | Netlist.Bjt { collector; base; emitter; model; _ } ->
        let op =
          Models.bjt_current model
            ~vbe:(v base -. v emitter)
            ~vce:(v collector -. v emitter)
        in
        add_f collector op.Models.ic;
        add_f emitter (-.(op.Models.ic +. op.Models.ib));
        add_f base op.Models.ib;
        let gm = op.Models.gm_b and gpi = op.Models.gpi and go = op.Models.go in
        add_j collector base gm;
        add_j collector collector go;
        add_j collector emitter (-.(gm +. go));
        add_j base base gpi;
        add_j base emitter (-.gpi);
        add_j emitter base (-.(gm +. gpi));
        add_j emitter collector (-.go);
        add_j emitter emitter (gm +. go +. gpi))
    devices

let solve_internal ?(max_iterations = 200) ?(tolerance = 1e-9) ?(gmin = 1e-12)
    nl =
  let linear_nl =
    Circuit.Netlist.empty |> Fun.flip Circuit.Netlist.add_all nl.Netlist.linear
  in
  let device_nodes = List.concat_map Netlist.device_nodes nl.Netlist.devices in
  let ix = Mna.index_of_netlist ~extra_nodes:device_nodes linear_nl in
  let n = Mna.size ix in
  let num_nodes = Mna.num_nodes ix in
  let row name = Mna.node_row ix name in
  (* Linear stamps once. *)
  let g_lin = Matrix.create n n in
  let b_full = Array.make n 0.0 in
  List.iter
    (fun (e : Circuit.Element.t) ->
      let st = Mna.stamp_of ix e in
      let value = Circuit.Element.stamp_value e in
      List.iter
        (fun { Mna.row; col; coeff } -> Matrix.add_entry g_lin row col coeff)
        st.Mna.g_const;
      List.iter
        (fun { Mna.row; col; coeff } ->
          Matrix.add_entry g_lin row col (coeff *. value))
        st.Mna.g_value;
      List.iter
        (fun (r, coeff) ->
          b_full.(r) <- b_full.(r) +. (coeff *. e.Circuit.Element.value))
        st.Mna.b_unit)
    nl.Netlist.linear;
  for k = 0 to num_nodes - 1 do
    Matrix.add_entry g_lin k k gmin
  done;
  let b_scale = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1.0 b_full in
  let residual_tol = tolerance *. b_scale in

  let newton ~alpha x =
    let rec iterate x iter =
      if iter > max_iterations then None
      else begin
        let residual = Matrix.mul_vec g_lin x in
        Array.iteri (fun k bk -> residual.(k) <- residual.(k) -. (alpha *. bk)) b_full;
        let jacobian = Matrix.copy g_lin in
        stamp_devices nl.Netlist.devices row x residual jacobian;
        let worst_f =
          Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 residual
        in
        match Numeric.Lu.factor jacobian with
        | exception Numeric.Lu.Singular _ -> None
        | lu ->
          let dx = Numeric.Lu.solve lu (Array.map (fun v -> -.v) residual) in
          let step =
            Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 dx
          in
          (* Junction damping: large voltage excursions destabilize the
             exponentials, so cap the per-iteration step. *)
          let damp = if step > 0.5 then 0.5 /. step else 1.0 in
          let x' = Array.mapi (fun k v -> v +. (damp *. dx.(k))) x in
          if step *. damp < tolerance && worst_f < residual_tol then
            Some (x', iter)
          else iterate x' (iter + 1)
      end
    in
    iterate x 1
  in
  let start = Array.make n 0.0 in
  let final =
    match newton ~alpha:1.0 start with
    | Some result -> result
    | None ->
      (* Source stepping: ramp the independent sources, reusing each
         converged point as the next starting guess. *)
      let steps = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
      let x, iters =
        List.fold_left
          (fun (x, iters) alpha ->
            match newton ~alpha x with
            | Some (x', it) -> (x', iters + it)
            | None ->
              raise
                (No_convergence
                   (Printf.sprintf "source stepping stalled at alpha = %g" alpha)))
          (start, 0) steps
      in
      (x, iters)
  in
  let x, iterations = final in
  (* Final residual for the report. *)
  let residual = Matrix.mul_vec g_lin x in
  Array.iteri (fun k bk -> residual.(k) <- residual.(k) -. bk) b_full;
  let jacobian = Matrix.copy g_lin in
  stamp_devices nl.Netlist.devices row x residual jacobian;
  let worst =
    Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 residual
  in
  (x, ix, iterations, worst)

let solve_raw ?max_iterations ?tolerance ?gmin nl =
  let x, ix, _, _ = solve_internal ?max_iterations ?tolerance ?gmin nl in
  (x, ix)

let solve ?max_iterations ?tolerance ?gmin nl =
  let x, ix, iterations, residual =
    solve_internal ?max_iterations ?tolerance ?gmin nl
  in
  let names = Mna.node_names ix in
  {
    voltages =
      Array.to_list
        (Array.mapi (fun k name -> (name, x.(k))) names);
    iterations;
    residual;
  }

let voltage sol node =
  if Circuit.Netlist.is_ground node then 0.0
  else List.assoc node sol.voltages
