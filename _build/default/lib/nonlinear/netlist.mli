(** Nonlinear circuit description: a linear netlist plus devices.

    Linear elements reuse {!Circuit.Element}; devices carry their models.
    Node names share the linear netlist's namespace (["0"]/["gnd"] is
    ground). *)

type device =
  | Diode of { name : string; anode : string; cathode : string; model : Models.diode }
  | Mosfet of {
      name : string;
      drain : string;
      gate : string;
      source : string;
      model : Models.mosfet;
    }
  | Bjt of {
      name : string;
      collector : string;
      base : string;
      emitter : string;
      model : Models.bjt;
    }

val device_name : device -> string
val device_nodes : device -> string list

type t = private {
  linear : Circuit.Element.t list;
  devices : device list;
  ac_input : string option;  (** source treated as the small-signal input *)
  output : Circuit.Netlist.output option;
}

val empty : t
val add_element : t -> Circuit.Element.t -> t
val add_device : t -> device -> t
(** Both raise [Invalid_argument] on duplicate names (shared namespace). *)

val with_ac_input : t -> string -> t
val with_output : t -> Circuit.Netlist.output -> t

val nodes : t -> string list
(** All non-ground nodes, sorted. *)

val find_device : t -> string -> device option
