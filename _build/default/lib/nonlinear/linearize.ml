module Element = Circuit.Element

let conductance name pos neg value acc =
  (* Small-signal conductances can legitimately vanish (e.g. λ = 0); skip
     zero entries rather than stamp degenerate elements. *)
  if value > 0.0 then
    Element.make ~name ~kind:Element.Conductance ~pos ~neg ~value () :: acc
  else acc

let capacitor name pos neg value acc =
  if value > 0.0 then
    Element.make ~name ~kind:Element.Capacitor ~pos ~neg ~value () :: acc
  else acc

let vccs name pos neg cp cn value acc =
  if value <> 0.0 then
    Element.make ~name ~kind:(Element.Vccs (cp, cn)) ~pos ~neg ~value ()
    :: acc
  else acc

let device_small_signal sol device acc =
  let v = Newton.voltage sol in
  match device with
  | Netlist.Diode { name; anode; cathode; model } ->
    let _, gd = Models.diode_current model (v anode -. v cathode) in
    acc
    |> conductance ("g" ^ name ^ "_d") anode cathode gd
    |> capacitor ("c" ^ name ^ "_j") anode cathode model.Models.cj0
  | Netlist.Mosfet { name; drain; gate; source; model } ->
    let op =
      Models.mosfet_current model
        ~vgs:(v gate -. v source)
        ~vds:(v drain -. v source)
    in
    acc
    |> vccs ("g" ^ name ^ "_m") drain source gate source op.Models.gm
    |> conductance ("g" ^ name ^ "_ds") drain source op.Models.gds
    |> capacitor ("c" ^ name ^ "_gs") gate source model.Models.cgs
    |> capacitor ("c" ^ name ^ "_gd") gate drain model.Models.cgd
  | Netlist.Bjt { name; collector; base; emitter; model } ->
    let op =
      Models.bjt_current model
        ~vbe:(v base -. v emitter)
        ~vce:(v collector -. v emitter)
    in
    acc
    |> vccs ("g" ^ name ^ "_m") collector emitter base emitter op.Models.gm_b
    |> conductance ("g" ^ name ^ "_pi") base emitter op.Models.gpi
    |> conductance ("g" ^ name ^ "_o") collector emitter op.Models.go
    |> capacitor ("c" ^ name ^ "_pi") base emitter model.Models.cpi
    |> capacitor ("c" ^ name ^ "_mu") base collector model.Models.cmu

let netlist (nl : Netlist.t) sol =
  let ac_input =
    match nl.Netlist.ac_input with
    | Some name -> name
    | None -> failwith "Linearize.netlist: no AC input designated"
  in
  let output =
    match nl.Netlist.output with
    | Some o -> o
    | None -> failwith "Linearize.netlist: no output designated"
  in
  let linear_small_signal (e : Element.t) acc =
    match e.Element.kind with
    | Element.Vsource ->
      (* DC supplies short; the AC input keeps unit amplitude. *)
      let amplitude = if e.Element.name = ac_input then 1.0 else 0.0 in
      Element.with_value e amplitude :: acc
    | Element.Isource ->
      if e.Element.name = ac_input then Element.with_value e 1.0 :: acc
      else acc (* DC current source is an AC open circuit *)
    | Element.Resistor | Element.Conductance | Element.Capacitor
    | Element.Inductor | Element.Vccs _ | Element.Vcvs _ | Element.Cccs _
    | Element.Ccvs _ | Element.Mutual _ ->
      e :: acc
  in
  let elements =
    List.fold_left (fun acc e -> linear_small_signal e acc) [] nl.Netlist.linear
  in
  let elements =
    List.fold_left
      (fun acc d -> device_small_signal sol d acc)
      elements nl.Netlist.devices
  in
  Circuit.Netlist.empty
  |> Fun.flip Circuit.Netlist.add_all (List.rev elements)
  |> Fun.flip Circuit.Netlist.with_input ac_input
  |> Fun.flip Circuit.Netlist.with_output output

let operating_report (nl : Netlist.t) sol =
  let buf = Buffer.create 512 in
  let v = Newton.voltage sol in
  Buffer.add_string buf
    (Printf.sprintf "DC operating point (%d Newton iterations, residual %.2e)\n"
       sol.Newton.iterations sol.Newton.residual);
  List.iter
    (fun (node, value) ->
      Buffer.add_string buf (Printf.sprintf "  v(%-8s) = %10.6f V\n" node value))
    sol.Newton.voltages;
  List.iter
    (fun device ->
      match device with
      | Netlist.Diode { name; anode; cathode; model } ->
        let i, gd = Models.diode_current model (v anode -. v cathode) in
        Buffer.add_string buf
          (Printf.sprintf "  %-8s id = %.4g A   gd = %.4g S\n" name i gd)
      | Netlist.Mosfet { name; drain; gate; source; model } ->
        let op =
          Models.mosfet_current model
            ~vgs:(v gate -. v source)
            ~vds:(v drain -. v source)
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-8s ids = %.4g A   gm = %.4g S   gds = %.4g S\n"
             name op.Models.ids op.Models.gm op.Models.gds)
      | Netlist.Bjt { name; collector; base; emitter; model } ->
        let op =
          Models.bjt_current model
            ~vbe:(v base -. v emitter)
            ~vce:(v collector -. v emitter)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "  %-8s ic = %.4g A   gm = %.4g S   gpi = %.4g S   go = %.4g S\n"
             name op.Models.ic op.Models.gm_b op.Models.gpi op.Models.go))
    nl.Netlist.devices;
  Buffer.contents buf
