(** Small-signal linearization at a DC operating point.

    Produces the linear(ized) netlist AWE and AWEsymbolic consume: every
    device is replaced by its small-signal equivalent evaluated at the
    operating point (conductances, transconductances, junction/overlap
    capacitances); DC supplies become AC shorts; the designated AC input
    source keeps unit amplitude.  This is exactly the front end that turned
    the paper's 741 into "170 linear elements, 62 of which are energy
    storage elements".

    Generated element names carry deck-compatible prefixes derived from the
    device name: device [m1] yields [gm1_m] (transconductance), [gm1_ds],
    [cm1_gs], [cm1_gd]; a diode [d1] yields [gd1_d], [cd1_j]; a BJT [q1]
    yields [gq1_m], [gq1_pi], [gq1_o], [cq1_pi], [cq1_mu] — so the
    linearized netlist round-trips through {!Circuit.Export}. *)

val netlist : Netlist.t -> Newton.solution -> Circuit.Netlist.t
(** Raises [Failure] when the nonlinear netlist has no [ac_input] or no
    designated output. *)

val operating_report : Netlist.t -> Newton.solution -> string
(** Human-readable table of the operating point: node voltages plus each
    device's bias currents and small-signal parameters. *)
