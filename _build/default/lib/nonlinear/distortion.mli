(** Harmonic distortion measurement by steady-state transient + FFT.

    The paper's linearized flow (and its related work on per-nonlinearity
    distortion analysis) models a circuit around a bias point; this module
    measures how far the real nonlinear circuit departs from that model.
    It drives the large-signal engine ({!Tran}) with a pure sine, waits for
    the transient to settle, and Fourier-analyses an integer number of
    steady-state cycles, so each harmonic lands exactly on an FFT bin. *)

type t = {
  fundamental : float;  (** amplitude of the response at the drive frequency *)
  harmonics : float array;
      (** [harmonics.(k)] is the output amplitude at [k·f] for [k = 0..];
          index 0 is the output's DC level (operating point plus any
          rectification shift), index 1 repeats [fundamental] *)
  thd : float;
      (** total harmonic distortion: [sqrt (Σ_{k≥2} h_k²) / h_1] *)
}

val measure :
  ?settle_cycles:int ->
  ?cycles:int ->
  ?samples_per_cycle:int ->
  ?max_harmonic:int ->
  ?bias:float ->
  Netlist.t ->
  f:float ->
  amplitude:float ->
  t
(** [measure nl ~f ~amplitude] drives the designated input with
    [bias + amplitude·sin(2πft)] ([bias] defaults to 0; use it to hold the
    stage at its operating point) and returns the harmonic content of the
    designated output.  [cycles] (default 4) and [samples_per_cycle]
    (default 64) must be powers of two so the analysis window is a
    power-of-two number of samples; [settle_cycles] (default 8) cycles are
    simulated and discarded first.  [max_harmonic] (default 5) bounds the
    [harmonics] array.  Raises [Invalid_argument] on a non-power-of-two
    window and {!Tran.No_convergence} if the underlying transient fails. *)

val hd2 : t -> float
(** Second-harmonic distortion [h₂/h₁] — the signature of asymmetric
    (even-order) nonlinearity. *)

val hd3 : t -> float
(** Third-harmonic distortion [h₃/h₁]. *)

type two_tone = {
  f_base : float;  (** the common frequency grid (Hz per bin) *)
  fund1 : float;  (** output amplitude at [k₁·f_base] *)
  fund2 : float;  (** output amplitude at [k₂·f_base] *)
  im2 : float;
      (** second-order intermodulation: the larger of the amplitudes at
          [(k₁+k₂)] and [|k₁−k₂|] times [f_base] *)
  im3 : float;
      (** third-order intermodulation: the larger of the amplitudes at
          [(2k₁−k₂)] and [(2k₂−k₁)] times [f_base] — the in-band products
          that set an amplifier's spurious-free dynamic range *)
  spectrum : float array;  (** the full single-sided amplitude spectrum *)
}

val two_tone :
  ?settle_periods:int ->
  ?samples:int ->
  ?bias:float ->
  Netlist.t ->
  f_base:float ->
  k1:int ->
  k2:int ->
  amplitude:float ->
  two_tone
(** [two_tone nl ~f_base ~k1 ~k2 ~amplitude] drives the input with
    [bias + amplitude·(sin 2πk₁f_base·t + sin 2πk₂f_base·t)] and Fourier-
    analyses one full period of the common grid, so both tones and all
    their mixing products land on exact bins.  [samples] per base period
    (default 256) must be a power of two and large enough for the products
    of interest ([2·(2k₂−k₁) < samples] is checked); [settle_periods]
    (default 4) base periods are discarded first.  Requires
    [0 < k1 < k2]. *)
