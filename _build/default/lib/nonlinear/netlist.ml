type device =
  | Diode of { name : string; anode : string; cathode : string; model : Models.diode }
  | Mosfet of {
      name : string;
      drain : string;
      gate : string;
      source : string;
      model : Models.mosfet;
    }
  | Bjt of {
      name : string;
      collector : string;
      base : string;
      emitter : string;
      model : Models.bjt;
    }

let device_name = function
  | Diode { name; _ } | Mosfet { name; _ } | Bjt { name; _ } -> name

let device_nodes = function
  | Diode { anode; cathode; _ } -> [ anode; cathode ]
  | Mosfet { drain; gate; source; _ } -> [ drain; gate; source ]
  | Bjt { collector; base; emitter; _ } -> [ collector; base; emitter ]

type t = {
  linear : Circuit.Element.t list;
  devices : device list;
  ac_input : string option;
  output : Circuit.Netlist.output option;
}

let empty = { linear = []; devices = []; ac_input = None; output = None }

let names t =
  List.map (fun (e : Circuit.Element.t) -> e.Circuit.Element.name) t.linear
  @ List.map device_name t.devices

let check_fresh t name =
  if List.mem name (names t) then
    invalid_arg (Printf.sprintf "Nonlinear.Netlist: duplicate name %s" name)

let add_element t e =
  check_fresh t e.Circuit.Element.name;
  { t with linear = t.linear @ [ e ] }

let add_device t d =
  check_fresh t (device_name d);
  { t with devices = t.devices @ [ d ] }

let with_ac_input t name = { t with ac_input = Some name }
let with_output t output = { t with output = Some output }

let nodes t =
  let tbl = Hashtbl.create 32 in
  let note n = if not (Circuit.Netlist.is_ground n) then Hashtbl.replace tbl n () in
  List.iter
    (fun (e : Circuit.Element.t) ->
      note e.Circuit.Element.pos;
      note e.Circuit.Element.neg)
    t.linear;
  List.iter (fun d -> List.iter note (device_nodes d)) t.devices;
  Hashtbl.fold (fun n () acc -> n :: acc) tbl [] |> List.sort compare

let find_device t name =
  List.find_opt (fun d -> device_name d = name) t.devices
