type t = {
  fundamental : float;
  harmonics : float array;
  thd : float;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let measure ?(settle_cycles = 8) ?(cycles = 4) ?(samples_per_cycle = 64)
    ?(max_harmonic = 5) ?(bias = 0.0) nl ~f ~amplitude =
  if not (is_pow2 cycles && is_pow2 samples_per_cycle) then
    invalid_arg "Distortion.measure: cycles and samples_per_cycle must be 2^k";
  if f <= 0.0 then invalid_arg "Distortion.measure: need f > 0";
  if max_harmonic < 2 then invalid_arg "Distortion.measure: max_harmonic >= 2";
  let period = 1.0 /. f in
  let t_step = period /. float_of_int samples_per_cycle in
  let total_cycles = settle_cycles + cycles in
  let input t = bias +. (amplitude *. Float.sin (2.0 *. Float.pi *. f *. t)) in
  let wave =
    Tran.simulate nl ~input ~t_step
      ~t_stop:(period *. float_of_int total_cycles)
  in
  (* Analysis window: the last [cycles·samples_per_cycle] samples.  The
     simulator emits steps+1 points; dropping the first point of the window
     keeps exactly one sample per grid slot (t = window_start excluded,
     t = window_end included — one full period set either way). *)
  let n = cycles * samples_per_cycle in
  let first = Array.length wave - n in
  if first < 1 then invalid_arg "Distortion.measure: window exceeds waveform";
  let window = Array.init n (fun k -> snd wave.(first + k)) in
  let spectrum = Numeric.Fft.magnitudes window in
  (* Harmonic k of the drive sits at bin k·cycles. *)
  let harmonic k =
    let bin = k * cycles in
    if bin < Array.length spectrum then spectrum.(bin) else 0.0
  in
  let harmonics = Array.init (max_harmonic + 1) harmonic in
  let fundamental = harmonics.(1) in
  let sum2 = ref 0.0 in
  for k = 2 to max_harmonic do
    sum2 := !sum2 +. (harmonics.(k) *. harmonics.(k))
  done;
  let thd =
    if fundamental = 0.0 then Float.infinity else sqrt !sum2 /. fundamental
  in
  { fundamental; harmonics; thd }

type two_tone = {
  f_base : float;
  fund1 : float;
  fund2 : float;
  im2 : float;
  im3 : float;
  spectrum : float array;
}

let two_tone ?(settle_periods = 4) ?(samples = 256) ?(bias = 0.0) nl ~f_base
    ~k1 ~k2 ~amplitude =
  if not (is_pow2 samples) then
    invalid_arg "Distortion.two_tone: samples must be 2^k";
  if k1 <= 0 || k2 <= k1 then invalid_arg "Distortion.two_tone: need 0 < k1 < k2";
  if f_base <= 0.0 then invalid_arg "Distortion.two_tone: need f_base > 0";
  if 2 * ((2 * k2) - k1) >= samples then
    invalid_arg "Distortion.two_tone: samples too few for the IM3 products";
  let period = 1.0 /. f_base in
  let t_step = period /. float_of_int samples in
  let w = 2.0 *. Float.pi *. f_base in
  let input t =
    bias
    +. (amplitude
        *. (Float.sin (w *. float_of_int k1 *. t)
           +. Float.sin (w *. float_of_int k2 *. t)))
  in
  let wave =
    Tran.simulate nl ~input ~t_step
      ~t_stop:(period *. float_of_int (settle_periods + 1))
  in
  let first = Array.length wave - samples in
  let window = Array.init samples (fun k -> snd wave.(first + k)) in
  let spectrum = Numeric.Fft.magnitudes window in
  let bin k = if k >= 0 && k < Array.length spectrum then spectrum.(k) else 0.0 in
  {
    f_base;
    fund1 = bin k1;
    fund2 = bin k2;
    im2 = Float.max (bin (k1 + k2)) (bin (k2 - k1));
    im3 = Float.max (bin ((2 * k1) - k2)) (bin ((2 * k2) - k1));
    spectrum;
  }

let ratio t k =
  if t.fundamental = 0.0 then Float.infinity
  else if k < Array.length t.harmonics then t.harmonics.(k) /. t.fundamental
  else 0.0

let hd2 t = ratio t 2
let hd3 t = ratio t 3
