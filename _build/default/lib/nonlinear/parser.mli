(** Deck parser for nonlinear circuits.

    Extends the linear deck format (see {!Circuit.Parser}) with device
    cards, dispatched on the first letter:
    {v
      Dname  anode cathode [IS=..] [N=..] [CJ0=..]
      Mname  drain gate source NMOS|PMOS [KP=..] [VTH=..] [LAMBDA=..]
                                         [CGS=..] [CGD=..]
      Qname  collector base emitter [IS=..] [BF=..] [VAF=..] [CPI=..] [CMU=..]
    v}
    Parameters are [KEY=VALUE] tokens with engineering suffixes; unspecified
    parameters take the library defaults.  [.input] designates the AC input
    source; [.output] as in the linear format.  [.symbolic] is rejected here
    — symbols are chosen after linearization. *)

exception Parse_error of int * string

val parse_string : string -> Netlist.t
val parse_file : string -> Netlist.t
