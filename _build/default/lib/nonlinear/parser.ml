exception Parse_error of int * string

let fail lineno fmt = Printf.ksprintf (fun m -> raise (Parse_error (lineno, m))) fmt

let tokens line =
  let line =
    match String.index_opt line ';' with
    | Some k -> String.sub line 0 k
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* Split operand tokens into positional arguments and KEY=VALUE parameters. *)
let split_params lineno rest =
  let positional, params =
    List.partition (fun tok -> not (String.contains tok '=')) rest
  in
  let params =
    List.map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some k -> (
          let key = String.uppercase_ascii (String.sub tok 0 k) in
          let v = String.sub tok (k + 1) (String.length tok - k - 1) in
          match Circuit.Units.parse v with
          | Some value -> (key, value)
          | None -> fail lineno "malformed parameter value in %S" tok)
        | None -> assert false)
      params
  in
  (positional, params)

let param params key default = Option.value (List.assoc_opt key params) ~default

let device_of_card lineno name rest =
  let positional, params = split_params lineno rest in
  match (Char.lowercase_ascii name.[0], positional) with
  | 'd', [ anode; cathode ] ->
    let d = Models.default_diode in
    Netlist.Diode
      {
        name;
        anode;
        cathode;
        model =
          {
            Models.i_sat = param params "IS" d.Models.i_sat;
            emission = param params "N" d.Models.emission;
            cj0 = param params "CJ0" d.Models.cj0;
          };
      }
  | 'm', [ drain; gate; source; polarity ] ->
    let base =
      match String.uppercase_ascii polarity with
      | "NMOS" -> Models.default_nmos
      | "PMOS" -> Models.default_pmos
      | other -> fail lineno "unknown MOS polarity %s" other
    in
    Netlist.Mosfet
      {
        name;
        drain;
        gate;
        source;
        model =
          {
            base with
            Models.kp = param params "KP" base.Models.kp;
            vth = param params "VTH" base.Models.vth;
            lambda = param params "LAMBDA" base.Models.lambda;
            cgs = param params "CGS" base.Models.cgs;
            cgd = param params "CGD" base.Models.cgd;
          };
      }
  | 'q', [ collector; base_node; emitter ] ->
    let b = Models.default_npn in
    Netlist.Bjt
      {
        name;
        collector;
        base = base_node;
        emitter;
        model =
          {
            Models.i_sat_b = param params "IS" b.Models.i_sat_b;
            beta = param params "BF" b.Models.beta;
            v_early = param params "VAF" b.Models.v_early;
            cpi = param params "CPI" b.Models.cpi;
            cmu = param params "CMU" b.Models.cmu;
          };
      }
  | ('d' | 'm' | 'q'), _ -> fail lineno "wrong number of nodes for device %s" name
  | _ -> fail lineno "unknown device type %C" name.[0]

let parse_string text =
  (* Separate device cards from linear cards; the linear remainder goes
     through the standard deck parser. *)
  let lines = String.split_on_char '\n' text in
  let devices = ref [] in
  let linear_lines = ref [] in
  let stop = ref false in
  List.iteri
    (fun k raw ->
      let lineno = k + 1 in
      let line = String.trim raw in
      if (not !stop) && line <> "" && line.[0] <> '*' then begin
        match tokens line with
        | [] -> ()
        | [ d ] when String.lowercase_ascii d = ".end" -> stop := true
        | directive :: _ when directive.[0] = '.' ->
          if String.lowercase_ascii directive = ".symbolic" then
            fail lineno ".symbolic applies after linearization, not here";
          linear_lines := raw :: !linear_lines
        | name :: rest
          when name.[0] <> '.'
               && List.mem (Char.lowercase_ascii name.[0]) [ 'd'; 'm'; 'q' ] ->
          devices := (lineno, name, rest) :: !devices
        | _ :: _ -> linear_lines := raw :: !linear_lines
      end)
    lines;
  let linear_nl =
    try Circuit.Parser.parse_string (String.concat "\n" (List.rev !linear_lines))
    with Circuit.Parser.Parse_error (line, msg) ->
      (* Line numbers shift when device cards are stripped; keep the
         message, drop the unreliable number. *)
      raise (Parse_error (line, msg))
  in
  let nl = ref Netlist.empty in
  List.iter
    (fun e -> nl := Netlist.add_element !nl e)
    (Circuit.Netlist.elements linear_nl);
  List.iter
    (fun (lineno, name, rest) ->
      try nl := Netlist.add_device !nl (device_of_card lineno name rest)
      with Invalid_argument m -> fail lineno "%s" m)
    (List.rev !devices);
  (match
     try Some (Circuit.Netlist.input linear_nl) with Failure _ -> None
   with
  | Some input ->
    nl := Netlist.with_ac_input !nl input.Circuit.Element.name
  | None -> ());
  (match Circuit.Netlist.output_opt linear_nl with
  | Some output -> nl := Netlist.with_output !nl output
  | None -> ());
  !nl

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
