lib/exact/prune.mli: Network Symbolic
