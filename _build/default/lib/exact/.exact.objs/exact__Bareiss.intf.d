lib/exact/bareiss.mli: Symbolic
