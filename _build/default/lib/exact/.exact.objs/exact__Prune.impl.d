lib/exact/prune.ml: Array Float List Network Symbolic
