lib/exact/network.mli: Circuit Format Numeric Symbolic
