lib/exact/bareiss.ml: Array Symbolic
