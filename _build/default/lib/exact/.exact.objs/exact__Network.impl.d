lib/exact/network.ml: Array Bareiss Circuit Float Format Numeric Symbolic
