module Mpoly = Symbolic.Mpoly

let prune_polynomial ~threshold ~env p =
  let magnitudes =
    Mpoly.terms p
    |> List.map (fun (c, m) -> Float.abs (c *. Symbolic.Monomial.eval m env))
  in
  match magnitudes with
  | [] -> p
  | _ :: _ ->
    let peak = List.fold_left Float.max 0.0 magnitudes in
    let floor = threshold *. peak in
    Mpoly.terms p
    |> List.filter (fun (c, m) ->
           Float.abs (c *. Symbolic.Monomial.eval m env) >= floor)
    |> Mpoly.of_terms

let prune ~threshold ~env (t : Network.t) =
  {
    t with
    Network.num = Array.map (prune_polynomial ~threshold ~env) t.Network.num;
    den = Array.map (prune_polynomial ~threshold ~env) t.Network.den;
  }

let term_count (t : Network.t) =
  let count side =
    Array.fold_left (fun acc p -> acc + Mpoly.num_terms p) 0 side
  in
  count t.Network.num + count t.Network.den
