(** Fraction-free (Bareiss) elimination over the multivariate polynomial
    ring.

    Classical symbolic circuit analysis computes network functions as ratios
    of symbolic determinants; Bareiss elimination keeps every intermediate
    quantity polynomial (each division is exact), avoiding rational-function
    blowup. *)

val det : Symbolic.Mpoly.t array array -> Symbolic.Mpoly.t
(** Determinant of a square polynomial matrix.  Raises [Invalid_argument]
    on non-square input. *)

val solve_cramer :
  Symbolic.Mpoly.t array array ->
  Symbolic.Mpoly.t array ->
  Symbolic.Mpoly.t array * Symbolic.Mpoly.t
(** [solve_cramer a b] returns [(nums, den)] with [xᵢ = numsᵢ/den],
    [den = det a].  Raises [Failure] when the matrix is singular (zero
    determinant). *)
