(** Heuristic term pruning of exact symbolic forms — the unreliable
    simplification strategy (ISAAC-style, [8] in the paper) that motivates
    AWEsymbolic.

    Terms are dropped from each coefficient polynomial when their numeric
    contribution at a {e nominal} operating point falls below a relative
    threshold.  The danger the paper describes is precisely that a term
    negligible at the nominal point can dominate elsewhere in the symbol
    range, silently corrupting pole-zero locations; the ablation benchmark
    demonstrates this. *)

val prune_polynomial :
  threshold:float -> env:(Symbolic.Symbol.t -> float) -> Symbolic.Mpoly.t ->
  Symbolic.Mpoly.t
(** Drop terms whose magnitude at [env] is below [threshold] times the
    largest term magnitude of the same polynomial. *)

val prune :
  threshold:float -> env:(Symbolic.Symbol.t -> float) -> Network.t ->
  Network.t
(** Prune every numerator and denominator coefficient of a transfer
    function. *)

val term_count : Network.t -> int
(** Total number of monomial terms across all coefficients — the
    "complexity" measure pruning tries to reduce. *)
