module Mpoly = Symbolic.Mpoly

(* One-step fraction-free elimination.  After step k every entry is
   divisible by the previous pivot, so [div_exact] succeeds; with float
   coefficients the division is exact up to rounding. *)
let det m =
  let n = Array.length m in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Bareiss.det: matrix not square")
    m;
  if n = 0 then Mpoly.one
  else begin
    let a = Array.map Array.copy m in
    let sign = ref 1.0 in
    let prev_pivot = ref Mpoly.one in
    let rec eliminate k =
      if k >= n - 1 then ()
      else begin
        (* Structural pivoting: any row with a non-zero entry in column k;
           prefer the sparsest pivot polynomial to limit term growth. *)
        let best = ref (-1) in
        for i = k to n - 1 do
          if not (Mpoly.is_zero a.(i).(k)) then
            if !best = -1
               || Mpoly.num_terms a.(i).(k) < Mpoly.num_terms a.(!best).(k)
            then best := i
        done;
        if !best = -1 then raise Exit;
        if !best <> k then begin
          let tmp = a.(k) in
          a.(k) <- a.(!best);
          a.(!best) <- tmp;
          sign := -. !sign
        end;
        let pivot = a.(k).(k) in
        for i = k + 1 to n - 1 do
          for j = k + 1 to n - 1 do
            let num =
              Mpoly.sub
                (Mpoly.mul pivot a.(i).(j))
                (Mpoly.mul a.(i).(k) a.(k).(j))
            in
            match Mpoly.div_exact ~tol:1e-13 num !prev_pivot with
            | Some q -> a.(i).(j) <- q
            | None ->
              failwith "Bareiss.det: inexact division (ill-conditioned input)"
          done;
          a.(i).(k) <- Mpoly.zero
        done;
        prev_pivot := pivot;
        eliminate (k + 1)
      end
    in
    match eliminate 0 with
    | () -> Mpoly.scale !sign a.(n - 1).(n - 1)
    | exception Exit -> Mpoly.zero
  end

let solve_cramer a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Bareiss.solve_cramer: size mismatch";
  let d = det a in
  if Mpoly.is_zero d then failwith "Bareiss.solve_cramer: singular system";
  let nums =
    Array.init n (fun i ->
        let ai =
          Array.mapi
            (fun r row ->
              Array.mapi (fun c v -> if c = i then b.(r) else v) row)
            a
        in
        det ai)
  in
  (nums, d)
