module Mpoly = Symbolic.Mpoly
module Ratfun = Symbolic.Ratfun
module Sym = Symbolic.Symbol
module Cx = Numeric.Cx
module Poly = Numeric.Poly

type t = { s : Sym.t; num : Mpoly.t array; den : Mpoly.t array }

let laplace () = Sym.intern "s"

let trim_zeros a =
  let n = ref (Array.length a) in
  while !n > 0 && Mpoly.is_zero a.(!n - 1) do
    decr n
  done;
  Array.sub a 0 !n

let transfer_function ?all_symbolic nl =
  let s = laplace () in
  let ix, g, c, b = Circuit.Mna.symbolic_system ?all_symbolic nl in
  let n = Circuit.Mna.size ix in
  (* Frequency normalization: eliminate in ŝ = s/ω₀ with ω₀ chosen to
     balance conductance and susceptance magnitudes, otherwise coefficient
     spans of 10³⁰ (kΩ against pF) defeat float-coefficient fraction-free
     division.  The scale lives in the float coefficients, so symbolic
     element values keep their physical meaning, and for unit-valued
     circuits ω₀ = 1 leaves classic forms like Eq. (5) untouched. *)
  let matrix_content m =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc p -> Float.max acc (Mpoly.content p)) acc row)
      0.0 m
  in
  let g_scale = matrix_content g and c_scale = matrix_content c in
  let omega0 = if c_scale > 0.0 && g_scale > 0.0 then g_scale /. c_scale else 1.0 in
  let s_poly = Mpoly.of_symbol s in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Mpoly.add g.(i).(j) (Mpoly.mul s_poly (Mpoly.scale omega0 c.(i).(j)))))
  in
  let nums, den = Bareiss.solve_cramer a b in
  (* Output selector over the symbolic solution. *)
  let num =
    match Circuit.Netlist.output nl with
    | Circuit.Netlist.Node a_node -> (
      let r = Circuit.Mna.node_row ix a_node in
      if r < 0 then Mpoly.zero else nums.(r))
    | Circuit.Netlist.Diff (a_node, b_node) ->
      let pick name =
        let r = Circuit.Mna.node_row ix name in
        if r < 0 then Mpoly.zero else nums.(r)
      in
      Mpoly.sub (pick a_node) (pick b_node)
  in
  let num_c = trim_zeros (Mpoly.coeffs_in num s) in
  let den_c = trim_zeros (Mpoly.coeffs_in den s) in
  (* Sign normalization: make the lowest-order denominator coefficient's
     largest term positive, so e.g. Fig. 1 prints exactly as Eq. (5). *)
  let sign =
    let rec first k =
      if k >= Array.length den_c then 1.0
      else if Mpoly.is_zero den_c.(k) then first (k + 1)
      else begin
        (* Use the coefficient of the largest monomial for a stable sign. *)
        match Mpoly.terms den_c.(k) with
        | (coef, _) :: _ -> if coef < 0.0 then -1.0 else 1.0
        | [] -> 1.0
      end
    in
    first 0
  in
  (* Undo the normalization: a coefficient of ŝᵏ is ω₀ᵏ times the
     coefficient of sᵏ. *)
  let denormalize coeffs =
    Array.mapi
      (fun k p -> Mpoly.scale (sign /. (omega0 ** float_of_int k)) p)
      coeffs
  in
  { s; num = denormalize num_c; den = denormalize den_c }

let poly_at coeffs env =
  Poly.of_coeffs (Array.map (fun p -> Mpoly.eval p env) coeffs)

let num_poly t env = poly_at t.num env
let den_poly t env = poly_at t.den env

let eval t env sv =
  Cx.div (Poly.eval_complex (num_poly t env) sv) (Poly.eval_complex (den_poly t env) sv)

let poles t env = Numeric.Roots.of_poly (den_poly t env)

let zeros t env =
  let n = num_poly t env in
  if Poly.degree n < 1 then [||] else Numeric.Roots.of_poly n

let moments ?(count = 8) t =
  if Array.length t.den = 0 || Mpoly.is_zero t.den.(0) then
    failwith "Network.moments: D(0) = 0 (pole at the origin)";
  let d0 = Ratfun.of_mpoly t.den.(0) in
  let coeff arr k =
    if k < Array.length arr then Ratfun.of_mpoly arr.(k) else Ratfun.zero
  in
  let m = Array.make count Ratfun.zero in
  (* Series division: N(s) = D(s)·Σ mₖ·sᵏ termwise. *)
  for k = 0 to count - 1 do
    let acc = ref (coeff t.num k) in
    for j = 1 to k do
      acc := Ratfun.sub !acc (Ratfun.mul (coeff t.den j) m.(k - j))
    done;
    m.(k) <- Ratfun.div !acc d0
  done;
  m

let order t = Array.length t.den - 1

let pp ppf t =
  let pp_side ppf coeffs =
    let first = ref true in
    Array.iteri
      (fun k p ->
        if not (Mpoly.is_zero p) then begin
          if not !first then Format.fprintf ppf " + ";
          first := false;
          let needs_parens = Mpoly.num_terms p > 1 in
          if k = 0 then Mpoly.pp ppf p
          else begin
            if needs_parens then Format.fprintf ppf "(%a)" Mpoly.pp p
            else Mpoly.pp ppf p;
            if k = 1 then Format.fprintf ppf "*s" else Format.fprintf ppf "*s^%d" k
          end
        end)
      coeffs;
    if !first then Format.fprintf ppf "0"
  in
  Format.fprintf ppf "(%a) / (%a)" pp_side t.num pp_side t.den

let to_string t = Format.asprintf "%a" pp t
