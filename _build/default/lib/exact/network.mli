(** Exact symbolic network functions — the classical approach ([2], [8]–[10],
    [12] in the paper) that AWEsymbolic improves upon.

    The transfer function is computed as a ratio of symbolic determinants of
    the MNA matrix [G + s·C] via fraction-free elimination:
    [H(s, e) = N(s, e) / D(s, e)], with every coefficient polynomial
    multi-linear in the symbolic elements (the structural property quoted in
    Sec. 2.1 of the paper). *)

type t = {
  s : Symbolic.Symbol.t;  (** the Laplace variable, always [intern "s"] *)
  num : Symbolic.Mpoly.t array;  (** numerator coefficients, [s⁰] first *)
  den : Symbolic.Mpoly.t array;  (** denominator coefficients, [s⁰] first *)
}

val laplace : unit -> Symbolic.Symbol.t

val transfer_function : ?all_symbolic:bool -> Circuit.Netlist.t -> t
(** Exact [H(s, e)] for the designated input/output.  Elements marked
    symbolic stay symbolic; the rest are numeric (use [~all_symbolic:true]
    for the fully symbolic form, e.g. the paper's Eq. 5). *)

val eval : t -> (Symbolic.Symbol.t -> float) -> Numeric.Cx.t -> Numeric.Cx.t
(** Evaluate [H] at numeric symbol values and a complex frequency. *)

val num_poly : t -> (Symbolic.Symbol.t -> float) -> Numeric.Poly.t
val den_poly : t -> (Symbolic.Symbol.t -> float) -> Numeric.Poly.t

val poles : t -> (Symbolic.Symbol.t -> float) -> Numeric.Cx.t array
(** Roots of the denominator at the given symbol values. *)

val zeros : t -> (Symbolic.Symbol.t -> float) -> Numeric.Cx.t array

val moments : ?count:int -> t -> Symbolic.Ratfun.t array
(** Exact symbolic moments by series division of [N/D] (default 8) —
    the reference the partitioned AWEsymbolic moments are validated
    against.  Requires a non-zero [D(0)]. *)

val order : t -> int
(** Degree of the denominator in [s]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
