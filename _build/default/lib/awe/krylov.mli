(** Krylov-subspace model order reduction (Arnoldi projection, PRIMA-style).

    Explicit moment matching (Padé via Hankel solves) loses digits fast: the
    moment sequence converges to the dominant eigendirection, so beyond
    order ≈ 5 the Hankel system is numerically rank deficient.  The remedy
    history chose — and the reason plain AWE was superseded — is to keep the
    {e Krylov basis} itself orthonormal instead of forming moments:
    with [r₀ = G⁻¹b], [A = −G⁻¹C], an orthonormal [V] spanning
    [{r₀, A·r₀, …, A^{q−1}·r₀}] and the congruence-projected pencil
    [(Vᵀ·G·V, Vᵀ·C·V)], the reduced model still matches [q] moments but its
    poles come from a well-conditioned small eigenproblem.

    This module provides that baseline, so the repository spans both
    generations of the technique and can compare them (`ext-krylov`
    benchmark). *)

val basis : order:int -> Circuit.Mna.t -> Numeric.Matrix.t
(** The [n × q] orthonormal Krylov basis (modified Gram–Schmidt with
    reorthogonalization).  May return fewer columns than [order] if the
    Krylov sequence degenerates. *)

val reduced_pencil :
  Numeric.Matrix.t -> Circuit.Mna.t ->
  Numeric.Matrix.t * Numeric.Matrix.t * float array * float array
(** [(Gq, Cq, bq, lq)] — the projected system. *)

val poles : Numeric.Matrix.t -> Numeric.Matrix.t -> Numeric.Cx.t array
(** Generalized eigenvalues of [(Gq, Cq)]: the [s] with
    [det(Gq + s·Cq) = 0], computed by determinant interpolation and scaled
    root finding.  Infinite eigenvalues (pencil rank deficiency in [Cq]) are
    dropped. *)

val analyze : ?order:int -> Circuit.Mna.t -> Driver.result
(** Arnoldi-reduced model: poles from the projected pencil, residues fit to
    the leading circuit moments, unstable poles discarded.  Same result
    shape as {!Driver.analyze_mna} for drop-in comparison. *)
