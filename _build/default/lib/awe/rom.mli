(** Reduced-order models: the pole–residue form AWE produces.

    A model is [H(s) ≈ d + Σᵢ kᵢ/(s − pᵢ)], matching the leading moments of
    the original circuit; [d] is the direct-coupling (feedthrough) term,
    zero unless the fit was asked for it.  Complex poles appear in conjugate
    pairs, so all time responses are real. *)

type t = {
  poles : Numeric.Cx.t array;
  residues : Numeric.Cx.t array;
  direct : float;
}

val make :
  ?direct:float -> poles:Numeric.Cx.t array -> residues:Numeric.Cx.t array ->
  unit -> t
(** Raises [Invalid_argument] on length mismatch.  [direct] defaults to 0. *)

val order : t -> int

val transfer : t -> Numeric.Cx.t -> Numeric.Cx.t
(** Evaluate [H(s)]. *)

val transfer_derivative : t -> Numeric.Cx.t -> Numeric.Cx.t
(** [dH/ds] — used for group delay. *)

val at_frequency : t -> float -> Numeric.Cx.t
(** [H(j·2πf)], [f] in hertz. *)

val dc_gain : t -> float
(** [H(0) = d − Σ kᵢ/pᵢ] — always the circuit's exact [m₀] because AWE
    matches the zeroth moment. *)

val impulse : t -> float -> float
(** [h(t) = Σ Re(kᵢ·e^{pᵢ·t})] for [t > 0]; the [d·δ(t)] feedthrough impulse
    is not representable pointwise and is omitted. *)

val step : t -> float -> float
(** Unit-step response [y(t) = d + Σ Re((kᵢ/pᵢ)·(e^{pᵢ·t} − 1))] for
    [t > 0]. *)

val ramp : t -> rise:float -> float -> float
(** Response to a 0→1 ramp over [rise] seconds (then held), analytic:
    the step response convolved with the ramp's derivative — the input
    shape delay models are usually quoted for.  Requires [rise > 0]. *)

val moments : t -> int -> float array
(** The first [n] moments the model reproduces:
    [m₀ = d − Σ kᵢ/pᵢ], [mₖ = −Σ kᵢ/pᵢ^{k+1}] for [k ≥ 1]. *)

val numerator : t -> Numeric.Poly.t
(** Real numerator polynomial of [H] over the common denominator
    [Π(s − pᵢ)] (degree ≤ q−1, or q with a direct term). *)

val zeros : t -> Numeric.Cx.t array
(** Finite zeros of the model — roots of {!numerator}.  Empty when the
    numerator is constant. *)

val is_stable : t -> bool
(** All poles strictly in the left half plane. *)

val dominant_pole : t -> Numeric.Cx.t
(** The non-zero pole of smallest magnitude.  Raises [Failure] on an empty
    model. *)

val time_constant : t -> float
(** [1 / |Re(dominant pole)|] — the natural response horizon, useful for
    choosing transient windows. *)

val pp : Format.formatter -> t -> unit
