(** Performance measures extracted from reduced-order models — the
    quantities plotted in the paper's Figs. 4–7 (dominant pole, DC gain,
    unity-gain frequency, phase margin) and the interconnect delays the
    introduction motivates. *)

val dc_gain : Rom.t -> float
val dc_gain_db : Rom.t -> float

val dominant_pole_hz : Rom.t -> float
(** |dominant pole| / 2π — the −3 dB corner for a single-pole-dominated
    system. *)

val unity_gain_frequency : Rom.t -> float option
(** Frequency [f] (hertz) where [|H(j·2πf)| = 1], found by bisection between
    the dominant pole and well past the fastest pole.  [None] when the
    magnitude never crosses unity (e.g. DC gain below 1). *)

val phase_margin : Rom.t -> float option
(** [180° + ∠H(j·2π·f_unity)] in degrees; [None] without a unity crossing. *)

val gain_at : Rom.t -> float -> float
(** Magnitude at a frequency in hertz. *)

val delay_50 : ?horizon:float -> Rom.t -> float option
(** 50% step-response delay: first time the unit-step response reaches half
    its final value (Elmore-style interconnect delay, computed on the actual
    ROM waveform by bisection).  [None] if it never crosses within the
    horizon (default: 30 dominant time constants). *)

val rise_time : ?lo:float -> ?hi:float -> ?horizon:float -> Rom.t -> float option
(** 10–90% (by default) rise time of the step response. *)

val peak_step : ?horizon:float -> ?samples:int -> Rom.t -> float * float
(** [(t_peak, y_peak)] — maximum |step response| over the horizon; used to
    quantify cross-talk amplitude (Figs. 9–10 study its dependence on the
    symbols). *)

val elmore_delay : float array -> float
(** First-moment delay estimate [−m₁/m₀] from output moments. *)

val group_delay : Rom.t -> float -> float
(** [group_delay rom f] is [τ(f) = −dφ/dω] at [f] hertz, computed
    analytically from the pole/residue form ([−Re(H′/H)] at [s = jω]). *)
