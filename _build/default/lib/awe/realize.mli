(** Circuit realization of a reduced-order model.

    Synthesizes a pole/residue ROM back into a netlist of ideal elements
    (1-F capacitors, conductances, VCCS couplings), one first-order section
    per real pole and one controllable-canonical biquad per complex
    conjugate pair, summed into a 1-Ω output node.  The result is a legal
    deck for this library's own simulator — or any SPICE — so a reduced
    interconnect model can be re-embedded in a larger simulation, which is
    how AWE macromodels were consumed in practice.

    The realization is exact: the synthesized netlist's transfer function
    {e is} the ROM's rational function, so its AC response matches
    [Rom.transfer] to rounding, which the test suite asserts. *)

val to_netlist : ?input_name:string -> Rom.t -> Circuit.Netlist.t
(** State-space netlist with designated input ([input_name], default
    ["Vin"]) and output node ["out"].  Complex poles must come in exact
    conjugate pairs (as {!Pade.fit} produces); raises [Failure]
    otherwise. *)

val to_deck : ?input_name:string -> Rom.t -> string
(** The same realization as deck text (via [Circuit.Export]). *)
