(** Adjoint moment and pole sensitivities (the AWEsensitivity machinery,
    Sec. 2.3 of the paper).

    One factorization of [G] yields both the direct moment vectors [Xₖ] and
    the adjoint vectors [Wⱼ] ([Gᵀ·W₀ = l], [Gᵀ·Wⱼ = −Cᵀ·Wⱼ₋₁]); every
    element's moment derivative is then a sparse sum over its stamp:

    [∂mₖ/∂v = −Σⱼ (Wⱼᵀ·(∂G/∂v)·X_{k−j} + Wⱼᵀ·(∂C/∂v)·X_{k−j−1})].

    Pole sensitivities follow by implicit differentiation of the moment
    recurrence's characteristic polynomial.  Elements are ranked by their
    largest normalized pole sensitivity (plus DC-gain sensitivity), giving
    the automatic symbolic-element selection the paper describes. *)

type t

val create : ?count:int -> Circuit.Mna.t -> t
(** Precompute direct and adjoint moment vectors (default count 8). *)

val output_moments : t -> float array

val moment_derivatives : t -> Circuit.Element.t -> float array
(** [∂mₖ/∂v] for the element's stamp value, [k = 0 … count−1]. *)

val dc_gain_sensitivity : t -> Circuit.Element.t -> float
(** Normalized: [(v/m₀)·∂m₀/∂v]. *)

val pole_sensitivities :
  t -> order:int -> Circuit.Element.t -> (Numeric.Cx.t * Numeric.Cx.t) array
(** [(pᵢ, ∂pᵢ/∂v)] pairs for the [order]-pole AWE model.  Raises
    [Pade.Degenerate] / [Numeric.Lu.Singular] when no model exists. *)

val zero_sensitivities :
  t -> order:int -> Circuit.Element.t -> (Numeric.Cx.t * Numeric.Cx.t) array
(** [(zᵢ, ∂zᵢ/∂v)] pairs for the finite zeros of the [order]-pole AWE model
    (the "zero" half of the reference's pole-zero sensitivity).  Computed by
    a directional refit: the adjoint moment derivatives give the exact
    first-order moment perturbation, the model is refit along it, and the
    zero displacement read off — accurate to the refit step, with no extra
    circuit solves.  Empty when the model has no finite zeros. *)

val score : t -> order:int -> Circuit.Element.t -> float
(** Ranking score: the largest magnitude among normalized pole sensitivities
    [(v/pᵢ)·∂pᵢ/∂v] and the normalized DC-gain sensitivity.  Falls back to
    moment sensitivities when the pole model degenerates. *)

val rank :
  ?count:int -> ?order:int -> Circuit.Netlist.t ->
  (Circuit.Element.t * float) list
(** All non-source elements, highest score first. *)

val select_symbols : ?count:int -> ?order:int -> n:int -> Circuit.Netlist.t -> Circuit.Netlist.t
(** Mark the [n] top-ranked elements symbolic (symbol = element name) —
    the paper's automatic choice of symbolic elements. *)
