lib/awe/rom.mli: Format Numeric
