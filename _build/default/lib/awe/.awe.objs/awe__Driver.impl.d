lib/awe/driver.ml: Array Circuit Moments Numeric Pade Rom
