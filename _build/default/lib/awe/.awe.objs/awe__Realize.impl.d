lib/awe/realize.ml: Array Circuit Float Format Fun List Numeric Printf Rom
