lib/awe/krylov.mli: Circuit Driver Numeric
