lib/awe/pade.ml: Array Float Fun Int List Numeric Rom
