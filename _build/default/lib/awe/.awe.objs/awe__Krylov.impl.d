lib/awe/krylov.ml: Array Circuit Driver Float Int List Moments Numeric Pade Rom
