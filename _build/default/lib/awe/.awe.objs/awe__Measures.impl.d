lib/awe/measures.ml: Array Float Numeric Rom
