lib/awe/measures.mli: Rom
