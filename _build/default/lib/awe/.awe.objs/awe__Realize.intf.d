lib/awe/realize.mli: Circuit Rom
