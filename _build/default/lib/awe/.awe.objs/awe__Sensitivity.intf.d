lib/awe/sensitivity.mli: Circuit Numeric
