lib/awe/rom.ml: Array Float Format Int Numeric Printf
