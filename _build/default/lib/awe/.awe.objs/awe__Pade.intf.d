lib/awe/pade.mli: Numeric Rom
