lib/awe/moments.mli: Circuit Numeric
