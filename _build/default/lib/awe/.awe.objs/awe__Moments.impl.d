lib/awe/moments.ml: Array Circuit List Numeric
