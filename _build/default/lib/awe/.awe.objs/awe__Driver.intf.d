lib/awe/driver.mli: Circuit Rom
