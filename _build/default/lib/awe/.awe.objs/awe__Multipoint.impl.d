lib/awe/multipoint.ml: Array Float Int List Moments Numeric Pade Rom
