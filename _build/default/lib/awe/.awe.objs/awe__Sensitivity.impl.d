lib/awe/sensitivity.ml: Array Circuit Float List Moments Numeric Pade Rom Symbolic
