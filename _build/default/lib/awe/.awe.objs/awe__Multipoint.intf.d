lib/awe/multipoint.mli: Circuit Numeric Rom
