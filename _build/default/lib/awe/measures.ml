module Cx = Numeric.Cx

let dc_gain = Rom.dc_gain
let dc_gain_db m = 20.0 *. Float.log10 (Float.abs (Rom.dc_gain m))
let dominant_pole_hz m = Cx.norm (Rom.dominant_pole m) /. (2.0 *. Float.pi)
let gain_at m f = Cx.norm (Rom.at_frequency m f)

let fastest_pole_hz m =
  Array.fold_left (fun acc p -> Float.max acc (Cx.norm p)) 0.0 m.Rom.poles
  /. (2.0 *. Float.pi)

let unity_gain_frequency m =
  if Rom.order m = 0 then None
  else begin
    let f_lo = Float.max 1e-12 (dominant_pole_hz m /. 1e3) in
    if gain_at m f_lo <= 1.0 then None
    else begin
      (* March up past the fastest pole until the magnitude drops below 1;
         a strictly proper model always does eventually. *)
      let rec bracket f_hi tries =
        if tries = 0 then None
        else if gain_at m f_hi < 1.0 then Some f_hi
        else bracket (f_hi *. 10.0) (tries - 1)
      in
      match bracket (Float.max f_lo (fastest_pole_hz m *. 10.0)) 40 with
      | None -> None
      | Some f_hi ->
        (* Bisection in log-frequency. *)
        let rec go lo hi n =
          if n = 0 then Some (Float.sqrt (lo *. hi))
          else begin
            let mid = Float.sqrt (lo *. hi) in
            if gain_at m mid > 1.0 then go mid hi (n - 1) else go lo mid (n - 1)
          end
        in
        go f_lo f_hi 100
    end
  end

let phase_margin m =
  match unity_gain_frequency m with
  | None -> None
  | Some f ->
    let h = Rom.at_frequency m f in
    Some (180.0 +. (Cx.arg h *. 180.0 /. Float.pi))

let default_horizon m = 30.0 *. Rom.time_constant m

let crossing ?horizon m target =
  let horizon = match horizon with Some h -> h | None -> default_horizon m in
  if not (Float.is_finite horizon) then None
  else begin
    let samples = 4000 in
    let dt = horizon /. float_of_int samples in
    let crossed t0 t1 =
      (* Bisection for the crossing instant inside [t0, t1]. *)
      let rec go lo hi n =
        if n = 0 then 0.5 *. (lo +. hi)
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if (Rom.step m mid -. target) *. (Rom.step m lo -. target) <= 0.0 then
            go lo mid (n - 1)
          else go mid hi (n - 1)
        end
      in
      go t0 t1 60
    in
    let rec scan k prev =
      if k > samples then None
      else begin
        let t = dt *. float_of_int k in
        let y = Rom.step m t in
        if (prev -. target) *. (y -. target) <= 0.0 && prev <> y then
          Some (crossed (dt *. float_of_int (k - 1)) t)
        else scan (k + 1) y
      end
    in
    scan 1 (Rom.step m 0.0)
  end

let delay_50 ?horizon m =
  let final = Rom.dc_gain m in
  if final = 0.0 then None else crossing ?horizon m (0.5 *. final)

let rise_time ?(lo = 0.1) ?(hi = 0.9) ?horizon m =
  let final = Rom.dc_gain m in
  if final = 0.0 then None
  else
    match (crossing ?horizon m (lo *. final), crossing ?horizon m (hi *. final)) with
    | Some t_lo, Some t_hi -> Some (Float.abs (t_hi -. t_lo))
    | _, _ -> None

let peak_step ?horizon ?(samples = 2000) m =
  let horizon = match horizon with Some h -> h | None -> default_horizon m in
  let horizon = if Float.is_finite horizon then horizon else 1.0 in
  let dt = horizon /. float_of_int samples in
  let best_t = ref 0.0 and best_y = ref 0.0 in
  for k = 0 to samples do
    let t = dt *. float_of_int k in
    let y = Rom.step m t in
    if Float.abs y > Float.abs !best_y then begin
      best_t := t;
      best_y := y
    end
  done;
  (!best_t, !best_y)

let elmore_delay m =
  if Array.length m < 2 then invalid_arg "Measures.elmore_delay: need 2 moments";
  if m.(0) = 0.0 then invalid_arg "Measures.elmore_delay: zero DC gain";
  -.m.(1) /. m.(0)

let group_delay rom f =
  let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
  let h = Rom.transfer rom s in
  let h' = Rom.transfer_derivative rom s in
  -.(Cx.div h' h).Cx.re
