type result = {
  rom : Rom.t;
  moments : float array;
  mna : Circuit.Mna.t;
}

let analyze_mna ?(order = 4) ?(extra_moments = 0) ?(shift = 0.0)
    ?(with_direct = false) ?(sparse = false) mna =
  if order < 1 then invalid_arg "Driver.analyze: order must be >= 1";
  let count = (2 * order) + extra_moments + (if with_direct then 1 else 0) in
  let moments = Moments.compute ~count ~shift ~sparse mna in
  let m = Moments.output_moments moments in
  (* Stability filtering compares against the shifted origin, which is
     meaningless away from DC; shifted expansions are pole-location
     diagnostics and keep every pole they find. *)
  let rom = Pade.fit ~enforce_stability:(shift = 0.0) ~with_direct ~order m in
  let rom =
    if shift = 0.0 then rom
    else
      (* Poles of the shifted-variable model translate back by s0; residues
         of a partial-fraction expansion are shift invariant. *)
      Rom.make ~direct:rom.Rom.direct
        ~poles:
          (Array.map
             (fun p -> Numeric.Cx.add p (Numeric.Cx.of_float shift))
             rom.Rom.poles)
        ~residues:rom.Rom.residues ()
  in
  { rom; moments = m; mna }

let analyze ?order ?extra_moments ?shift ?with_direct ?sparse nl =
  analyze_mna ?order ?extra_moments ?shift ?with_direct ?sparse
    (Circuit.Mna.build nl)
