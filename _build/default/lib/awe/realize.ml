module Element = Circuit.Element
module Netlist = Circuit.Netlist
module Cx = Numeric.Cx

(* Current injection of [gain · v(ctrl)] into [node]: our VCCS convention
   sends the controlled current out of [pos] into [neg], so grounding [pos]
   injects. *)
let inject ~name ~node ~ctrl ~gain =
  Element.make ~name ~kind:(Element.Vccs (ctrl, "0")) ~pos:"0" ~neg:node
    ~value:gain ()

let cap name node = Element.make ~name ~kind:Element.Capacitor ~pos:node ~neg:"0" ~value:1.0 ()

let cond name node g =
  Element.make ~name ~kind:Element.Conductance ~pos:node ~neg:"0" ~value:g ()

let to_netlist ?(input_name = "Vin") (rom : Rom.t) =
  let elements = ref [] in
  let add e = elements := e :: !elements in
  add
    (Element.make ~name:input_name ~kind:Element.Vsource ~pos:"in" ~neg:"0"
       ~value:1.0 ());
  (* 1-S summing node: v(out) = Σ injected currents. *)
  add (cond "Gsum" "out" 1.0);
  if rom.Rom.direct <> 0.0 then
    add (inject ~name:"Gdirect" ~node:"out" ~ctrl:"in" ~gain:rom.Rom.direct);
  let n = Array.length rom.Rom.poles in
  let used = Array.make n false in
  let conjugate_of i =
    let p = rom.Rom.poles.(i) in
    let found = ref None in
    for j = i + 1 to n - 1 do
      if
        !found = None && (not used.(j))
        && Cx.norm (Cx.sub rom.Rom.poles.(j) (Cx.conj p))
           <= 1e-9 *. Float.max 1.0 (Cx.norm p)
      then found := Some j
    done;
    !found
  in
  for i = 0 to n - 1 do
    if not used.(i) then begin
      used.(i) <- true;
      let p = rom.Rom.poles.(i) and k = rom.Rom.residues.(i) in
      if Float.abs p.Cx.im <= 1e-12 *. Float.max 1.0 (Float.abs p.Cx.re) then begin
        (* Real pole: (sC + G)·v = k·u with C = 1, G = −p gives
           v = k·u/(s − p). *)
        let node = Printf.sprintf "x%d" i in
        add (cap (Printf.sprintf "C%d" i) node);
        add (cond (Printf.sprintf "G%d" i) node (-.p.Cx.re));
        add
          (inject
             ~name:(Printf.sprintf "Gin%d" i)
             ~node ~ctrl:"in" ~gain:k.Cx.re);
        add
          (inject
             ~name:(Printf.sprintf "Gout%d" i)
             ~node:"out" ~ctrl:node ~gain:1.0)
      end
      else begin
        let j =
          match conjugate_of i with
          | Some j -> j
          | None ->
            failwith
              (Printf.sprintf
                 "Realize.to_netlist: pole %s has no conjugate partner"
                 (Format.asprintf "%a" Cx.pp p))
        in
        used.(j) <- true;
        (* Conjugate pair: k/(s−p) + k̄/(s−p̄) = (αs + β)/(s² + c₁s + c₀).
           Controllable canonical form over two 1-F integrator nodes:
             s·v₁ = v₂
             s·v₂ = −c₀·v₁ − c₁·v₂ + u
           so v₁ = u/(s² + c₁s + c₀), v₂ = s·v₁, and the section output is
           α·v₂ + β·v₁. *)
        let sigma = p.Cx.re and omega = p.Cx.im in
        let a = k.Cx.re and b = k.Cx.im in
        let alpha = 2.0 *. a in
        let beta = -2.0 *. ((a *. sigma) +. (b *. omega)) in
        let c1 = -2.0 *. sigma in
        let c0 = (sigma *. sigma) +. (omega *. omega) in
        let n1 = Printf.sprintf "x%d" i and n2 = Printf.sprintf "y%d" i in
        add (cap (Printf.sprintf "C%da" i) n1);
        add (cap (Printf.sprintf "C%db" i) n2);
        add (inject ~name:(Printf.sprintf "Gi%da" i) ~node:n1 ~ctrl:n2 ~gain:1.0);
        add (cond (Printf.sprintf "G%dd" i) n2 c1);
        add
          (inject ~name:(Printf.sprintf "Gfb%d" i) ~node:n2 ~ctrl:n1 ~gain:(-.c0));
        add (inject ~name:(Printf.sprintf "Gin%d" i) ~node:n2 ~ctrl:"in" ~gain:1.0);
        add
          (inject
             ~name:(Printf.sprintf "Gout%da" i)
             ~node:"out" ~ctrl:n2 ~gain:alpha);
        add
          (inject
             ~name:(Printf.sprintf "Gout%db" i)
             ~node:"out" ~ctrl:n1 ~gain:beta)
      end
    end
  done;
  Netlist.empty
  |> Fun.flip Netlist.add_all (List.rev !elements)
  |> Fun.flip Netlist.with_input input_name
  |> Fun.flip Netlist.with_output (Netlist.Node "out")

let to_deck ?input_name rom = Circuit.Export.to_deck (to_netlist ?input_name rom)
