(** Padé approximation by moment matching.

    From moments [m₀ … m_{2q−1}], a [q]-pole model is constructed in two
    steps: (1) the characteristic polynomial of the moment recurrence is
    found by a Hankel solve in the reciprocal-pole variable [x = 1/p];
    (2) residues follow from a complex Vandermonde solve on
    [mₖ = −Σ kᵢ·xᵢ^{k+1}].  Internally moments are rescaled by the dominant
    time constant so the Hankel system stays well conditioned — the "moment
    scaling" safeguard of the AWE literature.

    With [~with_direct:true] the model gains a feedthrough term [d]
    ([H(∞) ≠ 0], e.g. capacitive coupling paths): the recurrence is then
    anchored at [m₁] (which [d] does not affect), one extra moment is
    consumed, and [d = m₀ + Σ kᵢ/pᵢ]. *)

exception Degenerate of string
(** Raised when no model of any order can be extracted (e.g. all moments
    zero, or every candidate Hankel system singular). *)

val char_poly : ?offset:int -> order:int -> float array -> Numeric.Poly.t
(** Characteristic polynomial (monic, in [x = 1/p]) for the given order from
    {e scaled} moments starting at index [offset] (default 0).  Raises
    [Numeric.Lu.Singular] when the Hankel matrix is singular. *)

val residues :
  ?offset:int -> poles:Numeric.Cx.t array -> float array -> Numeric.Cx.t array
(** Residues matching moments [m_offset … m_{offset+q−1}] (one per pole). *)

val fit :
  ?enforce_stability:bool -> ?with_direct:bool -> order:int -> float array ->
  Rom.t
(** [fit ~order moments] builds a [q]-pole model.  Needs [2·order] moments
    ([2·order + 1] with [with_direct]).  When the Hankel system is singular
    the order is reduced and the fit retried (standard AWE practice).  With
    [enforce_stability] (default [true]), right-half-plane poles are
    discarded and the residues refit to the leading moments so transient
    responses stay bounded. *)

val moment_scale : float array -> float
(** The scale factor [α] such that [m̂ₖ = mₖ·αᵏ] are O(|m₀|): the ratio of
    the first two non-zero moments. *)
