module Mna = Circuit.Mna
module Matrix = Numeric.Matrix
module Cx = Numeric.Cx
module Poly = Numeric.Poly

type t = {
  mna : Mna.t;
  direct : float array array; (* X_0 .. X_{K-1} *)
  adjoint : float array array; (* W_0 .. W_{K-1} *)
  moments : float array;
}

let create ?(count = 8) mna =
  let ms = Moments.compute ~count mna in
  let lu = Moments.factor ms in
  let c = Mna.c mna in
  let w0 = Numeric.Lu.solve_transpose lu (Mna.output_vector mna) in
  let adjoint = Array.make count w0 in
  for j = 1 to count - 1 do
    let rhs = Matrix.mul_vec_transpose c adjoint.(j - 1) in
    Array.iteri (fun i v -> rhs.(i) <- -.v) rhs;
    adjoint.(j) <- Numeric.Lu.solve_transpose lu rhs
  done;
  {
    mna;
    direct = Array.init count (Moments.vector ms);
    adjoint;
    moments = Moments.output_moments ms;
  }

let output_moments t = Array.copy t.moments

(* wᵀ·(∂M/∂v)·x where the stamp derivative is the sparse entry list. *)
let bilinear entries w x =
  List.fold_left
    (fun acc { Mna.row; col; coeff } -> acc +. (coeff *. w.(row) *. x.(col)))
    0.0 entries

let moment_derivatives t (e : Circuit.Element.t) =
  let st = Mna.stamp_of (Mna.index t.mna) e in
  let count = Array.length t.direct in
  Array.init count (fun k ->
      let acc = ref 0.0 in
      for j = 0 to k do
        acc := !acc +. bilinear st.Mna.g_value t.adjoint.(j) t.direct.(k - j);
        if k - j - 1 >= 0 then
          acc := !acc +. bilinear st.Mna.c_value t.adjoint.(j) t.direct.(k - j - 1)
      done;
      -. !acc)

let dc_gain_sensitivity t e =
  let dm = moment_derivatives t e in
  if t.moments.(0) = 0.0 then 0.0
  else Circuit.Element.stamp_value e /. t.moments.(0) *. dm.(0)

let pole_sensitivities t ~order e =
  let q = order in
  if Array.length t.moments < 2 * q then
    invalid_arg "Sensitivity.pole_sensitivities: not enough moments";
  let dm = moment_derivatives t e in
  (* Work at a fixed moment scale: the scale is a constant change of units,
     so differentiating the scaled pipeline is exact. *)
  let alpha = Pade.moment_scale t.moments in
  let pow_alpha = Array.make (2 * q) 1.0 in
  for k = 1 to (2 * q) - 1 do
    pow_alpha.(k) <- pow_alpha.(k - 1) *. alpha
  done;
  let mh = Array.init (2 * q) (fun k -> t.moments.(k) *. pow_alpha.(k)) in
  let dmh = Array.init (2 * q) (fun k -> dm.(k) *. pow_alpha.(k)) in
  let h = Matrix.init q q (fun k j -> mh.(k + j)) in
  let lu = Numeric.Lu.factor h in
  let a = Numeric.Lu.solve lu (Array.init q (fun k -> -.mh.(k + q))) in
  (* ∂a from H·a = −rhs:  H·∂a = −∂rhs − ∂H·a. *)
  let rhs' =
    Array.init q (fun k ->
        let acc = ref (-.dmh.(k + q)) in
        for j = 0 to q - 1 do
          acc := !acc -. (dmh.(k + j) *. a.(j))
        done;
        !acc)
  in
  let da = Numeric.Lu.solve lu rhs' in
  let char = Poly.of_coeffs (Array.append a [| 1.0 |]) in
  let char' = Poly.derivative char in
  let dchar = Poly.of_coeffs da in
  Numeric.Roots.of_poly char
  |> Array.to_list
  |> List.filter_map (fun x ->
         if Cx.norm x < 1e-30 then None
         else begin
           let denom = Poly.eval_complex char' x in
           if Cx.norm denom = 0.0 then None
           else begin
             (* ∂x = −(Σ ∂aⱼ·xʲ)/char'(x);  p = α/x  ⇒  ∂p = −α·∂x/x². *)
             let dx = Cx.neg (Cx.div (Poly.eval_complex dchar x) denom) in
             let p = Cx.scale alpha (Cx.inv x) in
             let dp = Cx.neg (Cx.scale alpha (Cx.div dx (Cx.mul x x))) in
             Some (p, dp)
           end
         end)
  |> Array.of_list

let zero_sensitivities t ~order e =
  let dm = moment_derivatives t e in
  let m = t.moments in
  let zeros_at moments =
    match Pade.fit ~enforce_stability:false ~order moments with
    | rom -> Some (Rom.zeros rom)
    | exception (Pade.Degenerate _ | Numeric.Lu.Singular _) -> None
  in
  match zeros_at m with
  | None | Some [||] -> [||]
  | Some base_zeros ->
    (* Central difference along the exact moment gradient; the step is
       relative to the element's own value so conditioning is uniform. *)
    let v = Circuit.Element.stamp_value e in
    let h = 1e-6 *. Float.abs v in
    let shifted sign =
      Array.init (Array.length m) (fun k -> m.(k) +. (sign *. h *. dm.(k)))
    in
    (match (zeros_at (shifted 1.0), zeros_at (shifted (-1.0))) with
    | Some zp, Some zm when
        Array.length zp = Array.length base_zeros
        && Array.length zm = Array.length base_zeros ->
      (* Match each perturbed zero to the nearest base zero. *)
      let nearest pool z =
        Array.fold_left
          (fun best cand ->
            if Cx.norm (Cx.sub cand z) < Cx.norm (Cx.sub best z) then cand
            else best)
          pool.(0) pool
      in
      Array.map
        (fun z ->
          let dz =
            Cx.scale (1.0 /. (2.0 *. h)) (Cx.sub (nearest zp z) (nearest zm z))
          in
          (z, dz))
        base_zeros
    | _, _ -> Array.map (fun z -> (z, Cx.zero)) base_zeros)

let score t ~order e =
  let v = Circuit.Element.stamp_value e in
  let gain_score = Float.abs (dc_gain_sensitivity t e) in
  let pole_score =
    match pole_sensitivities t ~order e with
    | pairs ->
      Array.fold_left
        (fun acc (p, dp) ->
          let np = Cx.norm p in
          if np = 0.0 then acc else Float.max acc (Float.abs v *. Cx.norm dp /. np))
        0.0 pairs
    | exception (Pade.Degenerate _ | Numeric.Lu.Singular _) ->
      (* Fall back to normalized first-moment sensitivity. *)
      let dm = moment_derivatives t e in
      if Array.length dm > 1 && t.moments.(1) <> 0.0 then
        Float.abs (v /. t.moments.(1) *. dm.(1))
      else 0.0
  in
  Float.max gain_score pole_score

let rank ?count ?(order = 2) nl =
  let mna = Mna.build nl in
  let t = create ?count mna in
  Circuit.Netlist.elements nl
  |> List.filter (fun e -> not (Circuit.Element.is_source e))
  |> List.map (fun e -> (e, score t ~order e))
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let select_symbols ?count ?order ~n nl =
  let ranked = rank ?count ?order nl in
  let top = List.filteri (fun k _ -> k < n) ranked in
  List.fold_left
    (fun nl ((e : Circuit.Element.t), _) ->
      Circuit.Netlist.mark_symbolic nl e.Circuit.Element.name
        (Symbolic.Symbol.intern e.Circuit.Element.name))
    nl top
