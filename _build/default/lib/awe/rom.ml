module Cx = Numeric.Cx
module Poly = Numeric.Poly

type t = { poles : Cx.t array; residues : Cx.t array; direct : float }

let make ?(direct = 0.0) ~poles ~residues () =
  if Array.length poles <> Array.length residues then
    invalid_arg "Rom.make: poles/residues length mismatch";
  { poles; residues; direct }

let order m = Array.length m.poles

let transfer m s =
  let acc = ref (Cx.of_float m.direct) in
  Array.iteri
    (fun i p -> acc := Cx.add !acc (Cx.div m.residues.(i) (Cx.sub s p)))
    m.poles;
  !acc

let transfer_derivative m s =
  let acc = ref Cx.zero in
  Array.iteri
    (fun i p ->
      let d = Cx.sub s p in
      acc := Cx.sub !acc (Cx.div m.residues.(i) (Cx.mul d d)))
    m.poles;
  !acc

let at_frequency m f = transfer m (Cx.make 0.0 (2.0 *. Float.pi *. f))

let dc_gain m = (transfer m Cx.zero).Cx.re

let impulse m t =
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      let term = Cx.mul m.residues.(i) (Cx.exp (Cx.scale t p)) in
      acc := !acc +. term.Cx.re)
    m.poles;
  !acc

let step m t =
  let acc = ref m.direct in
  Array.iteri
    (fun i p ->
      let ratio = Cx.div m.residues.(i) p in
      let term = Cx.mul ratio (Cx.sub (Cx.exp (Cx.scale t p)) Cx.one) in
      acc := !acc +. term.Cx.re)
    m.poles;
  !acc

(* y_ramp(t) = (1/T)·∫₀^min(t,T) y_step(t−τ) dτ with
   y_step(t) = d + Σ (kᵢ/pᵢ)(e^{pᵢt} − 1):
   ∫ gives d·m + Σ (kᵢ/pᵢ)( e^{pᵢt}(1 − e^{−pᵢm})/pᵢ − m ), m = min(t,T). *)
let ramp rom ~rise t =
  if rise <= 0.0 then invalid_arg "Rom.ramp: rise must be > 0";
  if t <= 0.0 then 0.0
  else begin
    let m_int = Float.min t rise in
    let acc = ref (rom.direct *. m_int) in
    Array.iteri
      (fun i p ->
        let ratio = Cx.div rom.residues.(i) p in
        let ept = Cx.exp (Cx.scale t p) in
        let tail = Cx.sub Cx.one (Cx.exp (Cx.scale (-.m_int) p)) in
        let term =
          Cx.sub (Cx.div (Cx.mul ept tail) p) (Cx.of_float m_int)
        in
        acc := !acc +. (Cx.mul ratio term).Cx.re)
      rom.poles;
    !acc /. rise
  end

let moments m n =
  Array.init n (fun k ->
      let acc = ref Cx.zero in
      Array.iteri
        (fun i p -> acc := Cx.add !acc (Cx.div m.residues.(i) (Cx.pow_int p (k + 1))))
        m.poles;
      let base = -. !acc.Cx.re in
      if k = 0 then base +. m.direct else base)

(* N(s) = d·Π(s−pᵢ) + Σᵢ kᵢ·Π_{j≠i}(s−pⱼ), expanded over ℂ then realified
   (imaginary parts cancel for conjugate-symmetric models). *)
let numerator m =
  let q = order m in
  let cpoly_mul a b =
    let out = Array.make (Array.length a + Array.length b - 1) Cx.zero in
    Array.iteri
      (fun i ai ->
        Array.iteri
          (fun j bj -> out.(i + j) <- Cx.add out.(i + j) (Cx.mul ai bj))
          b)
      a;
    out
  in
  let linear p = [| Cx.neg p; Cx.one |] in
  let full =
    Array.fold_left (fun acc p -> cpoly_mul acc (linear p)) [| Cx.one |] m.poles
  in
  let acc = ref (Array.map (Cx.scale m.direct) full) in
  for i = 0 to q - 1 do
    let rest = ref [| Cx.one |] in
    for j = 0 to q - 1 do
      if j <> i then rest := cpoly_mul !rest (linear m.poles.(j))
    done;
    let term = Array.map (Cx.mul m.residues.(i)) !rest in
    acc :=
      Array.init
        (Int.max (Array.length !acc) (Array.length term))
        (fun k ->
          let get a = if k < Array.length a then a.(k) else Cx.zero in
          Cx.add (get !acc) (get term))
  done;
  Poly.of_coeffs (Array.map (fun (z : Cx.t) -> z.Cx.re) !acc)

let zeros m =
  let n = numerator m in
  if Poly.degree n < 1 then [||] else Numeric.Roots.of_poly n

let is_stable m = Array.for_all (fun (p : Cx.t) -> p.Cx.re < 0.0) m.poles

let dominant_pole m =
  if order m = 0 then failwith "Rom.dominant_pole: empty model";
  Array.fold_left
    (fun best p -> if Cx.norm p < Cx.norm best then p else best)
    m.poles.(0) m.poles

let time_constant m =
  let p = dominant_pole m in
  let re = Float.abs p.Cx.re in
  if re = 0.0 then Float.infinity else 1.0 /. re

let pp ppf m =
  Format.fprintf ppf "@[<v>order-%d model%s:@," (order m)
    (if m.direct <> 0.0 then Printf.sprintf " (direct %g)" m.direct else "");
  Array.iteri
    (fun i p ->
      Format.fprintf ppf "  pole %a  residue %a@," Cx.pp p Cx.pp m.residues.(i))
    m.poles;
  Format.fprintf ppf "@]"
