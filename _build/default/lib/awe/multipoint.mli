(** Multipoint AWE — complex frequency hopping.

    A single Maclaurin expansion captures only the poles nearest the origin.
    The classic remedy is to expand at several points — most usefully {e on
    the imaginary axis}, inside the band of interest — pool the poles each
    expansion resolves, and refit one conjugate-symmetric set of residues
    against the moments of all expansion points.  This widens the band a
    low-order model covers without raising the order of any single
    expansion. *)

val analyze :
  ?order_per_point:int ->
  ?moments_per_point:int ->
  points:Numeric.Cx.t list ->
  Circuit.Mna.t ->
  Rom.t
(** [analyze ~points mna] expands about every [s₀] in [points]
    (include [Cx.zero] for DC accuracy; imaginary points [j·ω] probe the
    band at ω).  Real points use the full Padé machinery at
    [order_per_point] (default 2); complex points extract at most 2 poles in
    closed form and contribute them together with their conjugates.
    Duplicated poles are merged, right-half-plane poles dropped, and the
    residues solved in least squares over [moments_per_point] moments
    (default 4) per expansion point, with DC rows weighted up so gain and
    Elmore delay survive the compromise.

    Raises [Pade.Degenerate] when no expansion yields a stable pole, and
    [Invalid_argument] when [order_per_point > 2] is requested at a complex
    point. *)

val merge_poles :
  ?tol:float -> Numeric.Cx.t array list -> Numeric.Cx.t array
(** Pool pole sets, dropping duplicates closer than [tol] (default 1e-3)
    in relative distance. *)
