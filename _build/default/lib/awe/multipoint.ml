module Cx = Numeric.Cx
module Cmatrix = Numeric.Cmatrix

let merge_poles ?(tol = 1e-3) sets =
  let acc = ref [] in
  List.iter
    (fun set ->
      Array.iter
        (fun p ->
          let duplicate =
            List.exists
              (fun q ->
                Cx.norm (Cx.sub p q) <= tol *. Float.max (Cx.norm p) (Cx.norm q))
              !acc
          in
          if not duplicate then acc := p :: !acc)
        set)
    sets;
  Array.of_list (List.rev !acc)

(* Poles of a local expansion with complex moments, in closed form.
   The recurrence matrix is tiny (order ≤ 2), so Cramer + the quadratic
   formula suffice. *)
let complex_local_poles ~order (m : Cx.t array) =
  if order > 2 then
    invalid_arg "Multipoint: order_per_point > 2 at a complex point";
  let x_roots =
    if order = 1 then begin
      if Cx.norm m.(0) = 0.0 then [] else [ Cx.div m.(1) m.(0) ]
    end
    else begin
      (* [m0 m1; m1 m2]·[a0; a1] = −[m2; m3]. *)
      let det = Cx.sub (Cx.mul m.(0) m.(2)) (Cx.mul m.(1) m.(1)) in
      if Cx.norm det = 0.0 then []
      else begin
        let a0 =
          Cx.div (Cx.sub (Cx.mul m.(1) m.(3)) (Cx.mul m.(2) m.(2))) det
        in
        let a1 =
          Cx.div (Cx.sub (Cx.mul m.(1) m.(2)) (Cx.mul m.(0) m.(3))) det
        in
        (* x² + a1·x + a0 = 0. *)
        let disc = Cx.sub (Cx.mul a1 a1) (Cx.scale 4.0 a0) in
        let sq = Cx.sqrt disc in
        [ Cx.scale 0.5 (Cx.sub sq a1); Cx.neg (Cx.scale 0.5 (Cx.add sq a1)) ]
      end
    end
  in
  List.filter_map
    (fun x -> if Cx.norm x < 1e-30 then None else Some (Cx.inv x))
    x_roots

(* Least squares for the residues: every expansion point contributes the
   equations m⁽ⁱ⁾ₖ = −Σⱼ kⱼ/(pⱼ − s₀ᵢ)^{k+1}.  Solved via the normal
   equations AᴴA·x = Aᴴb. *)
let residues_least_squares ~poles ~constraints =
  let q = Array.length poles in
  let rows =
    List.concat_map
      (fun ((s0 : Cx.t), (moments : Cx.t array)) ->
        List.init (Array.length moments) (fun k ->
            let coeffs =
              Array.map
                (fun p -> Cx.neg (Cx.inv (Cx.pow_int (Cx.sub p s0) (k + 1))))
                poles
            in
            (* Moment magnitudes differ by orders of magnitude across
               expansion points and moment indices; normalize each equation
               so every constraint weighs equally. *)
            let scale =
              Array.fold_left (fun acc z -> Float.max acc (Cx.norm z)) 0.0 coeffs
            in
            let scale = if scale > 0.0 then 1.0 /. scale else 1.0 in
            (* DC moments carry the quantities every downstream measure
               depends on (gain, Elmore delay); weight them up so the
               least-squares compromise does not trade them away. *)
            let scale = if Cx.norm s0 = 0.0 then scale *. 100.0 else scale in
            (Array.map (Cx.scale scale) coeffs, Cx.scale scale moments.(k))))
      constraints
  in
  let m = List.length rows in
  if m < q then invalid_arg "Multipoint: fewer constraints than poles";
  let a = Cmatrix.create m q and b = Array.make m Cx.zero in
  List.iteri
    (fun i (coeffs, rhs) ->
      Array.iteri (fun j v -> Cmatrix.set a i j v) coeffs;
      b.(i) <- rhs)
    rows;
  let ata = Cmatrix.create q q in
  let atb = Array.make q Cx.zero in
  for j = 0 to q - 1 do
    for j' = 0 to q - 1 do
      let acc = ref Cx.zero in
      for i = 0 to m - 1 do
        acc := Cx.add !acc (Cx.mul (Cx.conj (Cmatrix.get a i j)) (Cmatrix.get a i j'))
      done;
      Cmatrix.set ata j j' !acc
    done;
    let acc = ref Cx.zero in
    for i = 0 to m - 1 do
      acc := Cx.add !acc (Cx.mul (Cx.conj (Cmatrix.get a i j)) b.(i))
    done;
    atb.(j) <- !acc
  done;
  Cmatrix.solve ata atb

let analyze ?(order_per_point = 2) ?(moments_per_point = 4) ~points mna =
  if points = [] then invalid_arg "Multipoint.analyze: no expansion points";
  let count = Int.max moments_per_point (2 * order_per_point) in
  (* Each expansion yields (s0, complex moments, local poles translated back
     to the s plane).  Conjugate expansion points are added for complex s0
     so the pooled model stays conjugate symmetric. *)
  let expansions =
    List.concat_map
      (fun (s0 : Cx.t) ->
        if Cx.is_real ~tol:1e-300 s0 then begin
          let m = Moments.output_moments (Moments.compute ~count ~shift:s0.Cx.re mna) in
          let poles =
            match Pade.fit ~enforce_stability:false ~order:order_per_point m with
            | rom -> Array.map (fun p -> Cx.add p s0) rom.Rom.poles
            | exception Pade.Degenerate _ -> [||]
          in
          [ (s0, Array.map Cx.of_float m, poles) ]
        end
        else begin
          let m = Moments.complex_output_moments ~count ~shift:s0 mna in
          let poles =
            complex_local_poles ~order:order_per_point m
            |> List.map (fun p -> Cx.add p s0)
            |> Array.of_list
          in
          let conj_m = Array.map Cx.conj m in
          let conj_poles = Array.map Cx.conj poles in
          [ (s0, m, poles); (Cx.conj s0, conj_m, conj_poles) ]
        end)
      points
  in
  let poles =
    merge_poles (List.map (fun (_, _, p) -> p) expansions)
    |> Array.to_list
    |> List.filter (fun (p : Cx.t) -> p.Cx.re < 0.0)
    |> Array.of_list
  in
  if Array.length poles = 0 then
    raise (Pade.Degenerate "no stable pole found at any expansion point");
  let constraints =
    List.map
      (fun (s0, m, _) ->
        (s0, Array.sub m 0 (Int.min moments_per_point (Array.length m))))
      expansions
  in
  let residues = residues_least_squares ~poles ~constraints in
  Rom.make ~poles ~residues ()
