let resistor name pos neg value =
  Element.make ~name ~kind:Element.Resistor ~pos ~neg ~value ()

let conductance name pos neg value =
  Element.make ~name ~kind:Element.Conductance ~pos ~neg ~value ()

let capacitor name pos neg value =
  Element.make ~name ~kind:Element.Capacitor ~pos ~neg ~value ()

let vccs name pos neg cp cn gm =
  Element.make ~name ~kind:(Element.Vccs (cp, cn)) ~pos ~neg ~value:gm ()

let vsource name pos neg value =
  Element.make ~name ~kind:Element.Vsource ~pos ~neg ~value ()

let fig1 ?(g1 = 1.0) ?(g2 = 1.0) ?(c1 = 1.0) ?(c2 = 1.0) () =
  Netlist.empty
  |> Fun.flip Netlist.add_all
       [ vsource "Vin" "in" "0" 1.0;
         conductance "G1" "in" "n1" g1;
         capacitor "C1" "n1" "0" c1;
         conductance "G2" "n1" "n2" g2;
         capacitor "C2" "n2" "0" c2 ]
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node "n2")

let rc_ladder ~sections ~r ~c () =
  if sections < 1 then invalid_arg "Builders.rc_ladder: sections must be >= 1";
  let node k = if k = 0 then "in" else Printf.sprintf "n%d" k in
  let elements =
    vsource "Vin" "in" "0" 1.0
    :: List.concat_map
         (fun k ->
           [ resistor (Printf.sprintf "R%d" k) (node (k - 1)) (node k) r;
             capacitor (Printf.sprintf "C%d" k) (node k) "0" c ])
         (List.init sections (fun k -> k + 1))
  in
  Netlist.empty
  |> Fun.flip Netlist.add_all elements
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node (node sections))

let inductor name pos neg value =
  Element.make ~name ~kind:Element.Inductor ~pos ~neg ~value ()

let rlc_ladder ~sections ~r ~l ~c () =
  if sections < 1 then invalid_arg "Builders.rlc_ladder: sections must be >= 1";
  let node k = if k = 0 then "in" else Printf.sprintf "n%d" k in
  let mid k = Printf.sprintf "m%d" k in
  let elements =
    vsource "Vin" "in" "0" 1.0
    :: List.concat_map
         (fun k ->
           [ resistor (Printf.sprintf "R%d" k) (node (k - 1)) (mid k) r;
             inductor (Printf.sprintf "L%d" k) (mid k) (node k) l;
             capacitor (Printf.sprintf "C%d" k) (node k) "0" c ])
         (List.init sections (fun k -> k + 1))
  in
  Netlist.empty
  |> Fun.flip Netlist.add_all elements
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node (node sections))

let rc_tree ~depth ~r ~c () =
  if depth < 1 then invalid_arg "Builders.rc_tree: depth must be >= 1";
  (* Heap indexing: node 1 is the root; children of k are 2k and 2k+1. *)
  let node k = if k = 0 then "in" else Printf.sprintf "t%d" k in
  let elements = ref [ vsource "Vin" "in" "0" 1.0 ] in
  let add e = elements := e :: !elements in
  let last = (1 lsl (depth + 1)) - 1 in
  for k = 1 to last do
    let parent = if k = 1 then 0 else k / 2 in
    add (resistor (Printf.sprintf "R%d" k) (node parent) (node k) r);
    add (capacitor (Printf.sprintf "C%d" k) (node k) "0" c)
  done;
  let first_leaf = 1 lsl depth in
  Netlist.empty
  |> Fun.flip Netlist.add_all (List.rev !elements)
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node (node first_leaf))

let rc_mesh ~rows ~cols ~r ~c () =
  if rows < 1 || cols < 1 then invalid_arg "Builders.rc_mesh: empty grid";
  let node i j = if i = 0 && j = 0 then "drv" else Printf.sprintf "x%d_%d" i j in
  let elements = ref [ vsource "Vin" "in" "0" 1.0 ] in
  let add e = elements := e :: !elements in
  add (resistor "Rdrv" "in" (node 0 0) r);
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      add (capacitor (Printf.sprintf "C%d_%d" i j) (node i j) "0" c);
      if j + 1 < cols then
        add (resistor (Printf.sprintf "Rh%d_%d" i j) (node i j) (node i (j + 1)) r);
      if i + 1 < rows then
        add (resistor (Printf.sprintf "Rv%d_%d" i j) (node i j) (node (i + 1) j) r)
    done
  done;
  Netlist.empty
  |> Fun.flip Netlist.add_all (List.rev !elements)
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node (node (rows - 1) (cols - 1)))

(* Deterministic pseudo-random stream for parasitic element values, so the
   generated op-amp is identical run to run. *)
let lcg seed =
  (* Java-style 48-bit LCG; plenty for parasitic value jitter. *)
  let state = ref seed in
  fun () ->
    state := ((!state * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
    let bits = (!state lsr 17) land 0xFFFFFF in
    float_of_int bits /. float_of_int 0xFFFFFF

let opamp_symbol_names = ("gout_q14", "ccomp")

let opamp741 () =
  let rand = lcg 0x741 in
  let elements = ref [] in
  let add e = elements := e :: !elements in
  (* Signal path: three-stage Miller-compensated amplifier.
     Stage gains: A1 = gm_q1/g1 ≈ 95, A2 = gm_q16/gout_q14 ≈ 1000,
     A3 ≈ 1, so A0 ≈ 1e5; f_unity ≈ gm_q1 / (2π·ccomp) ≈ 1 MHz. *)
  add (vsource "Vin" "inp" "0" 1.0);
  add (vccs "gm_q1" "0" "d1" "inp" "inn" 190e-6);
  add (conductance "gout_stage1" "d1" "0" 2e-6);
  add (capacitor "cpar_d1" "d1" "0" 1.5e-12);
  (* Stage 2 and 3 are inverting (VCCS pulls its output node down), so the
     Miller capacitor ccomp sees negative feedback and the overall DC gain is
     positive. *)
  add (vccs "gm_q16" "d2" "0" "d1" "0" 2e-3);
  add (conductance "gout_q14" "d2" "0" 2e-6);
  add (capacitor "ccomp" "d1" "d2" 30e-12);
  add (capacitor "cpar_d2" "d2" "0" 3e-12);
  add (vccs "gm_q23" "out" "0" "d2" "0" 0.2);
  add (conductance "gout_q23" "out" "0" 0.2);
  add (resistor "rin_n" "inn" "0" 1e6);
  add (capacitor "cload" "out" "0" 10e-12);
  (* Parasitic cloud: 43 three-element sections (Rp + Cp + Rleak) and 15
     two-element sections (Rp + Cp), hanging off the signal nodes through
     stiff series resistors so they perturb rather than dominate.  Together
     with the 11 signal-path elements (excluding Vin) this gives exactly 170
     linear elements, 62 of them energy-storage — the counts the paper quotes
     for the linearized 741. *)
  let hosts = [| "d1"; "d2"; "out"; "inn" |] in
  let section k three =
    let host = hosts.(k mod Array.length hosts) in
    let p = Printf.sprintf "px%d" k in
    let rp = 1e3 *. (1.0 +. (4.0 *. rand ())) in
    let cp = 10e-15 *. (1.0 +. (9.0 *. rand ())) in
    add (resistor (Printf.sprintf "rp%d" k) host p rp);
    add (capacitor (Printf.sprintf "cp%d" k) p "0" cp);
    if three then add (resistor (Printf.sprintf "rleak%d" k) p "0" 5e6)
  in
  for k = 0 to 42 do
    section k true
  done;
  for k = 43 to 57 do
    section k false
  done;
  Netlist.empty
  |> Fun.flip Netlist.add_all (List.rev !elements)
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node "out")

let coupled_bus ?(lines = 4) ?(segments = 50) ?(r_line = 200.0)
    ?(c_line = 2e-12) ?(c_couple = 1e-12) ?(rdrv = 100.0) ?(cload = 50e-15)
    ?(aggressor = 0) ?(victim = 1) () =
  if lines < 2 then invalid_arg "Builders.coupled_bus: need >= 2 lines";
  if segments < 1 then invalid_arg "Builders.coupled_bus: need >= 1 segment";
  if aggressor < 0 || aggressor >= lines || victim < 0 || victim >= lines then
    invalid_arg "Builders.coupled_bus: line index out of range";
  let rseg = r_line /. float_of_int segments in
  let cseg = c_line /. float_of_int segments in
  let ccseg = c_couple /. float_of_int segments in
  let node line k =
    if k = 0 then Printf.sprintf "l%d_drv" line else Printf.sprintf "l%d_%d" line k
  in
  let elements = ref [ vsource "Vin" "in" "0" 1.0 ] in
  let add e = elements := e :: !elements in
  for line = 0 to lines - 1 do
    let source = if line = aggressor then "in" else "0" in
    add (resistor (Printf.sprintf "rdrv%d" line) source (node line 0) rdrv);
    for k = 1 to segments do
      add
        (resistor
           (Printf.sprintf "r%d_%d" line k)
           (node line (k - 1)) (node line k) rseg);
      add (capacitor (Printf.sprintf "c%d_%d" line k) (node line k) "0" cseg);
      if line + 1 < lines then
        add
          (capacitor
             (Printf.sprintf "cc%d_%d" line k)
             (node line k)
             (node (line + 1) k)
             ccseg)
    done;
    add (capacitor (Printf.sprintf "cload%d" line) (node line segments) "0" cload)
  done;
  Netlist.empty
  |> Fun.flip Netlist.add_all (List.rev !elements)
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node (node victim segments))

type lines_output = Direct | Crosstalk

let coupled_lines ?(segments = 100) ?(r_line = 200.0) ?(c_line = 2e-12)
    ?(c_couple = 1e-12) ?(rdrv = 100.0) ?(cload = 50e-15)
    ?(output = Crosstalk) () =
  if segments < 1 then invalid_arg "Builders.coupled_lines: segments >= 1";
  let rseg = r_line /. float_of_int segments in
  let cseg = c_line /. float_of_int segments in
  let ccseg = c_couple /. float_of_int segments in
  let node line k =
    if k = 0 then Printf.sprintf "%s_drv" line else Printf.sprintf "%s%d" line k
  in
  let elements = ref [] in
  let add e = elements := e :: !elements in
  add (vsource "Vin" "in" "0" 1.0);
  add (resistor "rdrv_a" "in" (node "a" 0) rdrv);
  add (resistor "rdrv_b" "0" (node "b" 0) rdrv);
  for k = 1 to segments do
    add (resistor (Printf.sprintf "ra%d" k) (node "a" (k - 1)) (node "a" k) rseg);
    add (resistor (Printf.sprintf "rb%d" k) (node "b" (k - 1)) (node "b" k) rseg);
    add (capacitor (Printf.sprintf "ca%d" k) (node "a" k) "0" cseg);
    add (capacitor (Printf.sprintf "cb%d" k) (node "b" k) "0" cseg);
    add (capacitor (Printf.sprintf "cc%d" k) (node "a" k) (node "b" k) ccseg)
  done;
  add (capacitor "cload_a" (node "a" segments) "0" cload);
  add (capacitor "cload_b" (node "b" segments) "0" cload);
  let out_node =
    match output with
    | Direct -> node "a" segments
    | Crosstalk -> node "b" segments
  in
  Netlist.empty
  |> Fun.flip Netlist.add_all (List.rev !elements)
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node out_node)

let coupled_rlc_lines ?(segments = 20) ?(r_line = 200.0) ?(l_line = 100e-9)
    ?(c_line = 2e-12) ?(c_couple = 1e-12) ?(k_couple = 0.3) ?(rdrv = 100.0)
    ?(cload = 50e-15) ?(output = Crosstalk) () =
  if segments < 1 then invalid_arg "Builders.coupled_rlc_lines: segments >= 1";
  if k_couple < 0.0 || k_couple >= 1.0 then
    invalid_arg "Builders.coupled_rlc_lines: need 0 <= k_couple < 1";
  let rseg = r_line /. float_of_int segments in
  let lseg = l_line /. float_of_int segments in
  let cseg = c_line /. float_of_int segments in
  let ccseg = c_couple /. float_of_int segments in
  let mseg = k_couple *. lseg in
  let node line k =
    if k = 0 then Printf.sprintf "%s_drv" line else Printf.sprintf "%s%d" line k
  in
  let mid line k = Printf.sprintf "%sm%d" line k in
  let elements = ref [] in
  let add e = elements := e :: !elements in
  add (vsource "Vin" "in" "0" 1.0);
  add (resistor "rdrv_a" "in" (node "a" 0) rdrv);
  add (resistor "rdrv_b" "0" (node "b" 0) rdrv);
  for k = 1 to segments do
    List.iter
      (fun line ->
        add
          (resistor
             (Printf.sprintf "r%s%d" line k)
             (node line (k - 1)) (mid line k) rseg);
        add
          (inductor
             (Printf.sprintf "l%s%d" line k)
             (mid line k) (node line k) lseg);
        add (capacitor (Printf.sprintf "c%s%d" line k) (node line k) "0" cseg))
      [ "a"; "b" ];
    add
      (capacitor (Printf.sprintf "cc%d" k) (node "a" k) (node "b" k) ccseg);
    if mseg > 0.0 then
      add
        (Element.make
           ~name:(Printf.sprintf "k%d" k)
           ~kind:
             (Element.Mutual (Printf.sprintf "la%d" k, Printf.sprintf "lb%d" k))
           ~pos:"0" ~neg:"0" ~value:mseg ())
  done;
  add (capacitor "cload_a" (node "a" segments) "0" cload);
  add (capacitor "cload_b" (node "b" segments) "0" cload);
  let out_node =
    match output with
    | Direct -> node "a" segments
    | Crosstalk -> node "b" segments
  in
  Netlist.empty
  |> Fun.flip Netlist.add_all (List.rev !elements)
  |> Fun.flip Netlist.with_input "Vin"
  |> Fun.flip Netlist.with_output (Netlist.Node out_node)
