type output = Node of string | Diff of string * string

type t = {
  rev_elements : Element.t list;
  by_name : (string, Element.t) Hashtbl.t;
  input_name : string option;
  out : output option;
}

let empty =
  { rev_elements = []; by_name = Hashtbl.create 64; input_name = None; out = None }

let is_ground n = n = "0" || String.lowercase_ascii n = "gnd"

(* Natural comparison: split into digit and non-digit runs; digit runs
   compare numerically (then by length, so "007" ≠ "7" stays total). *)
let compare_nodes a b =
  let is_digit c = c >= '0' && c <= '9' in
  let len_a = String.length a and len_b = String.length b in
  let run s i =
    let n = String.length s in
    let digit = is_digit s.[i] in
    let j = ref i in
    while !j < n && is_digit s.[!j] = digit do
      incr j
    done;
    (digit, String.sub s i (!j - i), !j)
  in
  let rec go i j =
    if i >= len_a && j >= len_b then 0
    else if i >= len_a then -1
    else if j >= len_b then 1
    else begin
      let da, ra, i' = run a i and db, rb, j' = run b j in
      let c =
        match (da, db) with
        | true, true ->
          (* Numeric: compare by magnitude (strip leading zeros via length
             of the significant part), then lexically for totality. *)
          let strip s =
            let k = ref 0 in
            while !k < String.length s - 1 && s.[!k] = '0' do
              incr k
            done;
            String.sub s !k (String.length s - !k)
          in
          let sa = strip ra and sb = strip rb in
          let c = Int.compare (String.length sa) (String.length sb) in
          if c <> 0 then c
          else begin
            let c = String.compare sa sb in
            if c <> 0 then c else String.compare ra rb
          end
        | false, false -> String.compare ra rb
        | true, false -> -1
        | false, true -> 1
      in
      if c <> 0 then c else go i' j'
    end
  in
  if a = b then 0 else go 0 0

let add nl (e : Element.t) =
  if Hashtbl.mem nl.by_name e.Element.name then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate element %s" e.Element.name);
  let by_name = Hashtbl.copy nl.by_name in
  Hashtbl.add by_name e.Element.name e;
  { nl with rev_elements = e :: nl.rev_elements; by_name }

let add_all nl es = List.fold_left add nl es
let with_input nl name = { nl with input_name = Some name }
let with_output nl out = { nl with out = Some out }
let elements nl = List.rev nl.rev_elements
let find nl name = Hashtbl.find_opt nl.by_name name

let replace nl (e : Element.t) =
  if not (Hashtbl.mem nl.by_name e.Element.name) then raise Not_found;
  let by_name = Hashtbl.copy nl.by_name in
  Hashtbl.replace by_name e.Element.name e;
  {
    nl with
    rev_elements =
      List.map
        (fun (old : Element.t) ->
          if old.Element.name = e.Element.name then e else old)
        nl.rev_elements;
    by_name;
  }

let map_elements f nl =
  let by_name = Hashtbl.create (Hashtbl.length nl.by_name) in
  let rev_elements =
    List.map
      (fun e ->
        let e' = f e in
        Hashtbl.replace by_name e'.Element.name e';
        e')
      nl.rev_elements
  in
  { nl with rev_elements; by_name }

let input nl =
  match nl.input_name with
  | Some name -> (
    match find nl name with
    | Some e when Element.is_source e -> e
    | Some _ ->
      failwith (Printf.sprintf "Netlist.input: %s is not an independent source" name)
    | None -> failwith (Printf.sprintf "Netlist.input: no element named %s" name))
  | None -> (
    match List.find_opt Element.is_source (elements nl) with
    | Some e -> e
    | None -> failwith "Netlist.input: netlist has no independent source")

let output_opt nl = nl.out

let output nl =
  match nl.out with
  | Some o -> o
  | None -> failwith "Netlist.output: no output designated"

let nodes nl =
  let tbl = Hashtbl.create 64 in
  let note n = if not (is_ground n) then Hashtbl.replace tbl n () in
  List.iter
    (fun (e : Element.t) ->
      note e.Element.pos;
      note e.Element.neg;
      match e.Element.kind with
      | Element.Vccs (cp, cn) | Element.Vcvs (cp, cn) ->
        note cp;
        note cn
      | Element.Resistor | Element.Conductance | Element.Capacitor
      | Element.Inductor | Element.Cccs _ | Element.Ccvs _ | Element.Mutual _
      | Element.Vsource | Element.Isource ->
        ())
    (elements nl);
  Hashtbl.fold (fun n () acc -> n :: acc) tbl [] |> List.sort compare_nodes

let mark_symbolic nl name sym =
  match find nl name with
  | None -> raise Not_found
  | Some e -> replace nl (Element.with_symbol e sym)

let symbolic_elements nl =
  List.filter_map
    (fun (e : Element.t) ->
      match e.Element.symbol with Some s -> Some (e, s) | None -> None)
    (elements nl)

let stats nl =
  let es = elements nl in
  let total = List.length (List.filter (fun e -> not (Element.is_source e)) es) in
  let storage = List.length (List.filter Element.is_storage es) in
  (total, storage)

let pp ppf nl =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," Element.pp e) (elements nl);
  (match nl.out with
  | Some (Node n) -> Format.fprintf ppf ".output v(%s)@," n
  | Some (Diff (a, b)) -> Format.fprintf ppf ".output v(%s,%s)@," a b
  | None -> ());
  Format.fprintf ppf "@]"
