(** Linear circuit elements.

    Every element connects [pos] to [neg] (node names; ["0"] is ground) and
    carries one scalar [value].  The value's meaning follows SPICE: ohms for
    resistors, siemens for explicit conductances and VCCS transconductance,
    farads, henries, volt/amp gain for VCVS/CCCS, ohms for CCVS, volts/amps
    for sources.

    An element may be marked *symbolic*: its {e stamp value} (see
    {!stamp_value}) is then treated as an unknown in symbolic analyses.
    Because MNA stamps resistors in admittance form, the symbol attached to a
    resistor denotes its {e conductance} — this mirrors the paper, whose
    op-amp symbol is the conductance [gout_q14]. *)

type kind =
  | Resistor
  | Conductance
  | Capacitor
  | Inductor
  | Vccs of string * string  (** control nodes [(cpos, cneg)]; i = gm·v(cp,cn) *)
  | Vcvs of string * string  (** control nodes; v = mu·v(cp,cn) *)
  | Cccs of string  (** name of the controlling V-source; i = beta·i(ctrl) *)
  | Ccvs of string  (** name of the controlling V-source; v = r·i(ctrl) *)
  | Mutual of string * string
      (** mutual inductance (henries) coupling the two named inductors;
          [pos]/[neg] are ignored (conventionally ground) *)
  | Vsource
  | Isource

type t = private {
  name : string;
  kind : kind;
  pos : string;
  neg : string;
  value : float;
  symbol : Symbolic.Symbol.t option;
}

val make :
  ?symbol:Symbolic.Symbol.t -> name:string -> kind:kind -> pos:string ->
  neg:string -> value:float -> unit -> t
(** Raises [Invalid_argument] for non-positive R/C/L values or an empty
    name. *)

val with_value : t -> float -> t
val with_symbol : t -> Symbolic.Symbol.t -> t

val stamp_value : t -> float
(** The scalar that multiplies the element's MNA stamp: [1/value] for
    resistors, [value] for everything else. *)

val set_stamp_value : t -> float -> t
(** Inverse of {!stamp_value}: update the element so its stamp value becomes
    the given number. *)

val is_source : t -> bool
val is_storage : t -> bool
(** True for capacitors and inductors — the paper's "energy storage
    elements". *)

val needs_aux_current : t -> bool
(** True when MNA allocates a branch-current unknown for this element
    (V-sources, inductors, VCVS, CCVS). *)

val pp : Format.formatter -> t -> unit
