(** Generators for the circuits used throughout the paper's evaluation.

    Each builder returns a complete netlist with designated input and
    output. *)

val fig1 :
  ?g1:float -> ?g2:float -> ?c1:float -> ?c2:float -> unit -> Netlist.t
(** The paper's Fig. 1 two-section RC circuit, elements named [G1], [G2],
    [C1], [C2]; input [Vin], output [v(n2)].  Exact transfer function:
    [H(s) = G1·G2 / (C1·C2·s² + (G2·C1 + G2·C2 + G1·C2)·s + G1·G2)]
    — Eq. (5).  Defaults are all 1.0 so the symbolic form is legible. *)

val rc_ladder : sections:int -> r:float -> c:float -> unit -> Netlist.t
(** Uniform RC ladder driven by [Vin] through the first resistor; output is
    the far-end node [nK]. *)

val rlc_ladder :
  sections:int -> r:float -> l:float -> c:float -> unit -> Netlist.t
(** Uniform RLC ladder (series R and L per section, shunt C) — a lumped
    lossy transmission line whose poles are complex: the circuit family that
    exercises AWE's complex-pole handling and ringing responses. *)

val rc_tree : depth:int -> r:float -> c:float -> unit -> Netlist.t
(** Complete binary RC tree of the given depth (interconnect-style load);
    output is the first leaf. *)

val rc_mesh : rows:int -> cols:int -> r:float -> c:float -> unit -> Netlist.t
(** Power-grid style RC mesh: a rows×cols grid of nodes with resistors along
    both directions and a capacitor at every node.  Driven at the top-left
    corner; output is the far corner (the worst-case IR/delay point). *)

val opamp741 : unit -> Netlist.t
(** Synthetic linearized three-stage op-amp standing in for the paper's 741
    small-signal circuit: exactly 170 linear elements of which 62 are energy
    storage elements (matching the published counts), including the two
    elements the paper treats as symbols — the conductance [gout_q14]
    (second-stage output conductance, dominant for DC gain) and the Miller
    compensation capacitor [ccomp] (dominant for the pole).  Input [Vin] on
    the non-inverting input, output [v(out)]. *)

val opamp_symbol_names : string * string
(** [("gout_q14", "ccomp")] — the element names of the paper's two chosen
    symbols. *)

val coupled_bus :
  ?lines:int ->
  ?segments:int ->
  ?r_line:float ->
  ?c_line:float ->
  ?c_couple:float ->
  ?rdrv:float ->
  ?cload:float ->
  ?aggressor:int ->
  ?victim:int ->
  unit ->
  Netlist.t
(** An N-conductor bus (default 4 lines): parallel RC lines with capacitive
    coupling between {e adjacent} conductors.  Line [aggressor] (default 0)
    is driven by [Vin]; every other line is held quiet through its own
    driver.  Output is the far end of line [victim] (default 1).  Line
    nodes are [lK_J] for line K, segment J. *)

type lines_output = Direct | Crosstalk

val coupled_lines :
  ?segments:int ->
  ?r_line:float ->
  ?c_line:float ->
  ?c_couple:float ->
  ?rdrv:float ->
  ?cload:float ->
  ?output:lines_output ->
  unit ->
  Netlist.t
(** The paper's Fig. 8: two symmetric coupled RC lines, lumped into
    [segments] sections with capacitive coupling along the length.  Line A is
    driven by [Vin] through the Thevenin driver resistance [rdrv_a]; line B's
    driver holds it quiet through [rdrv_b]; both far ends carry the load
    capacitance ([cload_a], [cload_b]).  [r_line]/[c_line]/[c_couple] are
    per-line totals.  Output is the far end of line A ([Direct]) or of the
    quiet line B ([Crosstalk], the default). *)

val coupled_rlc_lines :
  ?segments:int ->
  ?r_line:float ->
  ?l_line:float ->
  ?c_line:float ->
  ?c_couple:float ->
  ?k_couple:float ->
  ?rdrv:float ->
  ?cload:float ->
  ?output:lines_output ->
  unit ->
  Netlist.t
(** Two coupled {e RLC} lines: like {!coupled_lines} but each segment's
    series branch is R+L and corresponding segment inductors are coupled
    with coefficient [k_couple] (mutual [M = k·L_seg], one [K] element per
    segment — the inductive half of real crosstalk).  [l_line] is the
    per-line total inductance.  Segment nodes are [a1…aN]/[b1…bN] with
    series midpoints [amK]/[bmK]; driver and load conventions match
    {!coupled_lines}.  Raises [Invalid_argument] unless
    [0 ≤ k_couple < 1]. *)
