let suffixes =
  (* Longest match first so "meg" wins over "m". *)
  [ ("meg", 1e6); ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6);
    ("m", 1e-3); ("k", 1e3); ("g", 1e9); ("t", 1e12) ]

let parse s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "" then None
  else begin
    let match_suffix () =
      List.find_opt
        (fun (suf, _) ->
          String.length s > String.length suf
          && String.sub s (String.length s - String.length suf) (String.length suf) = suf)
        suffixes
    in
    match match_suffix () with
    | Some (suf, mult) ->
      let body = String.sub s 0 (String.length s - String.length suf) in
      (match float_of_string_opt body with
      | Some v -> Some (v *. mult)
      | None -> None)
    | None -> float_of_string_opt s
  end

let parse_exn s =
  match parse s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Units.parse_exn: malformed value %S" s)

let format v =
  if v = 0.0 then "0"
  else begin
    let mag = Float.abs v in
    let pick =
      [ (1e12, "t"); (1e9, "g"); (1e6, "meg"); (1e3, "k"); (1.0, "");
        (1e-3, "m"); (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]
      |> List.find_opt (fun (scale, _) -> mag >= scale)
    in
    match pick with
    | Some (scale, suf) -> Printf.sprintf "%g%s" (v /. scale) suf
    | None -> Printf.sprintf "%g" v
  end
