(** A circuit netlist: elements, designated input source, designated output.

    Node names are free-form strings; ["0"] (and the aliases ["gnd"],
    ["GND"]) denote ground.  The netlist is an immutable value; [add] returns
    an extended netlist. *)

type output =
  | Node of string  (** output = v(node) *)
  | Diff of string * string  (** output = v(a) − v(b) *)

type t

val empty : t
val add : t -> Element.t -> t
(** Raises [Invalid_argument] on duplicate element names. *)

val add_all : t -> Element.t list -> t

val with_input : t -> string -> t
(** Designate the named independent source as the analysis input.
    Raises [Invalid_argument] if no such source exists (checked lazily by
    {!input}). *)

val with_output : t -> output -> t

val elements : t -> Element.t list
(** In insertion order. *)

val find : t -> string -> Element.t option
val replace : t -> Element.t -> t
(** Replace the element with the same name; raises [Not_found] if absent. *)

val map_elements : (Element.t -> Element.t) -> t -> t

val input : t -> Element.t
(** The designated input source; defaults to the first independent source.
    Raises [Failure] when the netlist has no independent source. *)

val output : t -> output
(** Raises [Failure] when no output was designated. *)

val output_opt : t -> output option

val nodes : t -> string list
(** All non-ground nodes, in natural order (see {!compare_nodes}). *)

val compare_nodes : string -> string -> int
(** Natural ordering: embedded digit runs compare numerically, so ["a9"]
    precedes ["a10"].  Unknown numbering scrambles chain adjacency and hence
    the bandwidth of MNA matrices — natural order keeps ladder/line/tree
    circuits near-banded, which the sparse solver depends on. *)

val is_ground : string -> bool

val mark_symbolic : t -> string -> Symbolic.Symbol.t -> t
(** [mark_symbolic nl elem_name sym] attaches a symbol to the named element.
    Raises [Not_found] if the element is absent. *)

val symbolic_elements : t -> (Element.t * Symbolic.Symbol.t) list

val stats : t -> int * int
(** [(total_elements, storage_elements)] — the counts the paper quotes for
    the 741 example (170 and 62). *)

val pp : Format.formatter -> t -> unit
