type kind =
  | Resistor
  | Conductance
  | Capacitor
  | Inductor
  | Vccs of string * string
  | Vcvs of string * string
  | Cccs of string
  | Ccvs of string
  | Mutual of string * string
  | Vsource
  | Isource

type t = {
  name : string;
  kind : kind;
  pos : string;
  neg : string;
  value : float;
  symbol : Symbolic.Symbol.t option;
}

let make ?symbol ~name ~kind ~pos ~neg ~value () =
  if name = "" then invalid_arg "Element.make: empty name";
  (match kind with
  | Resistor | Conductance | Capacitor | Inductor ->
    if value <= 0.0 then
      invalid_arg
        (Printf.sprintf "Element.make: %s requires a positive value, got %g"
           name value)
  | Mutual _ | Vccs _ | Vcvs _ | Cccs _ | Ccvs _ | Vsource | Isource -> ());
  { name; kind; pos; neg; value; symbol }

let with_value e value = { e with value }
let with_symbol e s = { e with symbol = Some s }

let stamp_value e =
  match e.kind with
  | Resistor -> 1.0 /. e.value
  | Conductance | Capacitor | Inductor | Vccs _ | Vcvs _ | Cccs _ | Ccvs _
  | Mutual _ | Vsource | Isource ->
    e.value

let set_stamp_value e v =
  match e.kind with
  | Resistor -> { e with value = 1.0 /. v }
  | Conductance | Capacitor | Inductor | Vccs _ | Vcvs _ | Cccs _ | Ccvs _
  | Mutual _ | Vsource | Isource ->
    { e with value = v }

let is_source e = match e.kind with Vsource | Isource -> true
  | Resistor | Conductance | Capacitor | Inductor | Vccs _ | Vcvs _ | Cccs _
  | Ccvs _ | Mutual _ -> false

let is_storage e = match e.kind with Capacitor | Inductor -> true
  | Resistor | Conductance | Vccs _ | Vcvs _ | Cccs _ | Ccvs _ | Mutual _
  | Vsource | Isource -> false

let needs_aux_current e =
  match e.kind with
  | Vsource | Inductor | Vcvs _ | Ccvs _ -> true
  | Resistor | Conductance | Capacitor | Vccs _ | Cccs _ | Mutual _ | Isource ->
    false

let kind_letter = function
  | Resistor -> "R"
  | Conductance -> "G"
  | Capacitor -> "C"
  | Inductor -> "L"
  | Vccs _ -> "VCCS"
  | Vcvs _ -> "VCVS"
  | Cccs _ -> "CCCS"
  | Ccvs _ -> "CCVS"
  | Mutual _ -> "K"
  | Vsource -> "V"
  | Isource -> "I"

let pp ppf e =
  Format.fprintf ppf "%s[%s] %s-%s = %s%s" e.name (kind_letter e.kind) e.pos
    e.neg (Units.format e.value)
    (match e.symbol with
    | None -> ""
    | Some s -> Printf.sprintf " (symbol %s)" (Symbolic.Symbol.name s))
