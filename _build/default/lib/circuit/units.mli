(** Engineering-notation number parsing and formatting (SPICE conventions).

    Suffixes (case-insensitive): f p n u m k meg g t.  ["2.2k"] is 2200,
    ["10MEG"] is 1e7, bare scientific notation also parses. *)

val parse : string -> float option
val parse_exn : string -> float
(** Raises [Failure] with a diagnostic on malformed input. *)

val format : float -> string
(** Render with the closest engineering suffix, e.g. [2.2e-12] → ["2.2p"]. *)
