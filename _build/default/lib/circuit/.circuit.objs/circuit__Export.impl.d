lib/circuit/export.ml: Buffer Char Element Fun List Netlist Printf String Symbolic
