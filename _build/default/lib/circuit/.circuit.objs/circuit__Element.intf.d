lib/circuit/element.mli: Format Symbolic
