lib/circuit/builders.ml: Array Element Fun List Netlist Printf
