lib/circuit/mna.mli: Element Netlist Numeric Symbolic
