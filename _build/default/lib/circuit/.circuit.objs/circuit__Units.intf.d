lib/circuit/units.mli:
