lib/circuit/netlist.mli: Element Format Symbolic
