lib/circuit/export.mli: Element Netlist
