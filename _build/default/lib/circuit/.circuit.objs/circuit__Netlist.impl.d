lib/circuit/netlist.ml: Element Format Hashtbl Int List Printf String
