lib/circuit/parser.ml: Char Element Fun List Netlist Printf String Symbolic Units
