lib/circuit/builders.mli: Netlist
