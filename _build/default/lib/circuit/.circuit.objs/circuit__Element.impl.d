lib/circuit/element.ml: Format Printf Symbolic Units
