lib/circuit/mna.ml: Array Element Hashtbl Lazy List Netlist Numeric Printf Symbolic
