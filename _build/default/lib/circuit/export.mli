(** Writing netlists back out as decks.

    [to_deck] produces text that {!Parser.parse_string} reads back to an
    equivalent netlist (same elements, values, symbols, input, output) — the
    round-trip is property-tested.  Values are printed in full precision
    scientific notation, not engineering-suffix form, so nothing is lost. *)

val element_card : Element.t -> string
(** One deck line for the element.  Raises [Invalid_argument] when the
    element's name does not start with the letter its kind requires (the
    deck format dispatches on it). *)

val to_deck : Netlist.t -> string

val to_file : Netlist.t -> string -> unit
