(** Modified nodal analysis (MNA) formulation.

    Builds the descriptor system [(G + s·C)·x = b·u], [y = lᵀ·x] from a
    netlist.  Unknowns are the non-ground node voltages followed by one
    branch current per element that needs an auxiliary equation (V-sources,
    inductors, VCVS, CCVS) — inductors are therefore stamped as impedances
    and everything else in admittance form, exactly as the paper prescribes
    for moment computation.

    Sign conventions: node equations read "sum of currents {e leaving} the
    node equals the current {e injected} by independent current sources";
    an I-source of value [i] injects [i] into its [pos] node.  A V-source of
    value [v] fixes [v(pos) − v(neg) = v]. *)

type index
(** Variable numbering for a netlist: node rows then auxiliary rows. *)

(** [index_of_netlist ?extra_nodes nl] numbers the unknowns.  [extra_nodes]
    forces additional node-voltage unknowns even when no element of this
    netlist touches them (used when stamping a sub-netlist into a larger
    port frame). *)
val index_of_netlist : ?extra_nodes:string list -> Netlist.t -> index
val size : index -> int
val num_nodes : index -> int
val node_row : index -> string -> int
(** Row of a node voltage; [-1] for ground.  Raises [Not_found] for a node
    absent from the netlist. *)

val aux_row : index -> string -> int
(** Row of the branch current of the named element.  Raises [Not_found] if
    the element has no auxiliary current. *)

val node_names : index -> string array
(** [node_names ix].(k) is the node whose voltage is unknown [k]. *)

type entry = { row : int; col : int; coeff : float }
(** A matrix contribution.  Ground rows/columns are already filtered out. *)

type stamp = {
  g_const : entry list;  (** value-independent entries of [G] (incidence) *)
  g_value : entry list;  (** entries of [G] scaled by the element's stamp value *)
  c_value : entry list;  (** entries of [C] scaled by the element's stamp value *)
  b_unit : (int * float) list;
      (** RHS entries for a {e unit} source amplitude (empty for
          non-sources) *)
}

val stamp_of : index -> Element.t -> stamp
(** The element's full MNA stamp.  Raises [Failure] when a controlled source
    references a missing controlling V-source. *)

type t

val build : Netlist.t -> t
val index : t -> index
val netlist : t -> Netlist.t

val g : t -> Numeric.Matrix.t
(** Dense [G]; materialized lazily on first use and shared thereafter. *)

val c : t -> Numeric.Matrix.t
(** Dense [C]; materialized lazily on first use and shared thereafter. *)

val g_entries : t -> (int * int * float) list
(** Raw accumulated [(row, col, value)] stamp contributions of [G]
    (duplicates unmerged).  Lets sparse consumers assemble directly without
    ever allocating the dense [n×n] form. *)

val c_entries : t -> (int * int * float) list
(** Same for [C]. *)

val g_sparse : t -> Numeric.Sparse.t
(** [G] in compressed sparse form, assembled straight from the stamps. *)

val c_sparse : t -> Numeric.Sparse.t
(** [C] in compressed sparse form, assembled straight from the stamps. *)

val input_vector : t -> float array
(** RHS for unit amplitude at the designated input source. *)

val source_vector : t -> float array
(** RHS with every independent source at its netlist value (for DC and
    transient analysis). *)

val output_vector : t -> float array
(** The selector [l] with [y = lᵀ·x].  Raises [Failure] when the netlist has
    no designated output. *)

val output_of : t -> float array -> float
(** Apply the output selector to a solution vector. *)

val symbolic_system :
  ?all_symbolic:bool ->
  Netlist.t ->
  index * Symbolic.Mpoly.t array array * Symbolic.Mpoly.t array array
  * Symbolic.Mpoly.t array
(** [(ix, gm, cm, b)] with polynomial entries: elements marked symbolic
    contribute [symbol · coeff]; with [~all_symbolic:true] every non-source
    element contributes a fresh symbol named after it (the "pure symbolic"
    mode of classical symbolic analysis).  [b] is the unit-input RHS. *)
