(** Power products of symbols: [x₁^e₁ · x₂^e₂ · …].

    Represented sparsely; exponents are strictly positive in the
    representation, so the empty monomial is [one]. *)

type t

val one : t
val of_symbol : Symbol.t -> t
val of_list : (Symbol.t * int) list -> t
(** Exponents must be positive; duplicate symbols are combined. *)

val to_list : t -> (Symbol.t * int) list
(** Sorted by symbol. *)

val exponent : t -> Symbol.t -> int
val mul : t -> t -> t
val pow : t -> int -> t

val div : t -> t -> t option
(** [div a b] is [Some (a/b)] when [b] divides [a]. *)

val divides : t -> t -> bool
(** [divides b a] is true when [b] divides [a]. *)

val gcd : t -> t -> t

val degree : t -> int
(** Total degree. *)

val degree_in : t -> Symbol.t -> int
val is_one : t -> bool
val symbols : t -> Symbol.t list

val compare : t -> t -> int
(** Graded lexicographic order (by total degree, then lex on symbol ids). *)

val equal : t -> t -> bool

val eval : t -> (Symbol.t -> float) -> float

val deriv : t -> Symbol.t -> (int * t) option
(** [deriv m x] is [Some (e, m/x)] when [x^e] appears in [m] ([e ≥ 1]). *)

val pp : Format.formatter -> t -> unit
