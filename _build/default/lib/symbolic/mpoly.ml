module Mmap = Map.Make (Monomial)

type t = float Mmap.t
(* Invariant: no binding carries coefficient 0.0. *)

let zero = Mmap.empty
let is_zero p = Mmap.is_empty p

let of_terms l =
  List.fold_left
    (fun acc (c, m) ->
      if c = 0.0 then acc
      else
        Mmap.update m
          (fun prev ->
            let v = Option.value prev ~default:0.0 +. c in
            if v = 0.0 then None else Some v)
          acc)
    zero l

let const c = if c = 0.0 then zero else Mmap.singleton Monomial.one c
let one = const 1.0
let of_symbol s = Mmap.singleton (Monomial.of_symbol s) 1.0

let terms p = Mmap.bindings p |> List.rev_map (fun (m, c) -> (c, m))
let coefficient p m = Option.value (Mmap.find_opt m p) ~default:0.0
let num_terms p = Mmap.cardinal p

let is_const p =
  Mmap.cardinal p = 0
  || (Mmap.cardinal p = 1 && Monomial.is_one (fst (Mmap.min_binding p)))

let to_const p =
  if is_zero p then Some 0.0
  else if is_const p then Some (snd (Mmap.min_binding p))
  else None

let total_degree p = Mmap.fold (fun m _ acc -> Int.max acc (Monomial.degree m)) p (-1)
let degree_in p s = Mmap.fold (fun m _ acc -> Int.max acc (Monomial.degree_in m s)) p 0

let symbols p =
  Mmap.fold (fun m _ acc -> List.rev_append (Monomial.symbols m) acc) p []
  |> List.sort_uniq Symbol.compare

let add a b =
  Mmap.union
    (fun _ x y ->
      let v = x +. y in
      if v = 0.0 then None else Some v)
    a b

let neg p = Mmap.map (fun c -> -.c) p
let sub a b = add a (neg b)
let scale k p = if k = 0.0 then zero else Mmap.map (fun c -> k *. c) p

let mul_monomial c m p =
  if c = 0.0 then zero
  else
    Mmap.fold
      (fun m' c' acc ->
        let v = c *. c' in
        if v = 0.0 then acc else Mmap.add (Monomial.mul m m') v acc)
      p zero

let mul a b =
  if Mmap.cardinal a > Mmap.cardinal b then
    Mmap.fold (fun m c acc -> add acc (mul_monomial c m b)) a zero
  else Mmap.fold (fun m c acc -> add acc (mul_monomial c m a)) b zero

let pow p n =
  if n < 0 then invalid_arg "Mpoly.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
    else go acc (mul base base) (n asr 1)
  in
  go one p n

(* Multivariate long division by the leading term; succeeds only when
   division is exact (used for cofactor recovery in Bareiss elimination).
   [tol] chops rounding dust left in the remainder, measured against the
   dividend's largest coefficient. *)
let div_exact ?(tol = 0.0) a b =
  if is_zero b then None
  else begin
    let lead_m, lead_c = Mmap.max_binding b in
    let floor = tol *. Mmap.fold (fun _ c acc -> Float.max acc (Float.abs c)) a 0.0 in
    let chop p =
      if floor = 0.0 then p
      else Mmap.filter (fun _ c -> Float.abs c > floor) p
    in
    let rec go rem q steps =
      if is_zero rem then Some q
      else if steps > 200_000 then None
      else begin
        let rm, rc = Mmap.max_binding rem in
        match Monomial.div rm lead_m with
        | None -> None
        | Some m ->
          let c = rc /. lead_c in
          let q = add q (Mmap.singleton m c) in
          let rem = chop (sub rem (mul_monomial c m b)) in
          go rem q (steps + 1)
      end
    in
    go (chop a) zero 0
  end

let deriv p s =
  Mmap.fold
    (fun m c acc ->
      match Monomial.deriv m s with
      | None -> acc
      | Some (e, m') -> add acc (Mmap.singleton m' (c *. float_of_int e)))
    p zero

let eval p env = Mmap.fold (fun m c acc -> acc +. (c *. Monomial.eval m env)) p 0.0

let substitute p s q =
  Mmap.fold
    (fun m c acc ->
      match Monomial.deriv m s with
      | None -> add acc (Mmap.singleton m c)
      | Some _ ->
        let e = Monomial.degree_in m s in
        let rest =
          Monomial.to_list m
          |> List.filter (fun (sym, _) -> not (Symbol.equal sym s))
          |> Monomial.of_list
        in
        add acc (mul_monomial c rest (pow q e)))
    p zero

let coeffs_in p s =
  if is_zero p then [||]
  else begin
    let d = degree_in p s in
    let out = Array.make (d + 1) zero in
    Mmap.iter
      (fun m c ->
        let e = Monomial.degree_in m s in
        let rest =
          Monomial.to_list m
          |> List.filter (fun (sym, _) -> not (Symbol.equal sym s))
          |> Monomial.of_list
        in
        out.(e) <- add out.(e) (Mmap.singleton rest c))
      p;
    out
  end

let content p = Mmap.fold (fun _ c acc -> Float.max acc (Float.abs c)) p 0.0

let max_monomial_gcd p =
  match Mmap.min_binding_opt p with
  | None -> Monomial.one
  | Some (m0, _) -> Mmap.fold (fun m _ acc -> Monomial.gcd acc m) p m0

let degree_profile p =
  let tbl = Hashtbl.create 8 in
  Mmap.iter
    (fun m _ ->
      List.iter
        (fun (s, e) ->
          let prev = Option.value (Hashtbl.find_opt tbl (Symbol.id s)) ~default:(s, 0) in
          if e > snd prev then Hashtbl.replace tbl (Symbol.id s) (s, e)
          else Hashtbl.replace tbl (Symbol.id s) prev)
        (Monomial.to_list m))
    p;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Symbol.compare a b)

let is_multilinear p =
  Mmap.for_all
    (fun m _ -> List.for_all (fun (_, e) -> e <= 1) (Monomial.to_list m))
    p

let map_coeffs f p =
  Mmap.fold
    (fun m c acc ->
      let v = f c in
      if v = 0.0 then acc else Mmap.add m v acc)
    p zero

let equal ?(tol = 1e-9) a b =
  let scale_ref = Float.max (content a) (content b) in
  let bound = tol *. Float.max 1.0 scale_ref in
  let diff = sub a b in
  Mmap.for_all (fun _ c -> Float.abs c <= bound) diff

let compare a b = Mmap.compare Float.compare a b

let pp ppf p =
  if is_zero p then Format.pp_print_string ppf "0"
  else begin
    let first = ref true in
    (* Print highest-order terms first for readability. *)
    List.iter
      (fun (c, m) ->
        if !first then begin
          first := false;
          if c < 0.0 then Format.pp_print_string ppf "-"
        end
        else if c < 0.0 then Format.pp_print_string ppf " - "
        else Format.pp_print_string ppf " + ";
        let mag = Float.abs c in
        if Monomial.is_one m then Format.fprintf ppf "%g" mag
        else if mag = 1.0 then Monomial.pp ppf m
        else Format.fprintf ppf "%g*%a" mag Monomial.pp m)
      (terms p)
  end

let to_string p = Format.asprintf "%a" pp p
