type t = { id : int; node : node }

and node =
  | Const of float
  | Sym of Symbol.t
  | Add of t * t
  | Mul of t * t
  | Neg of t
  | Inv of t
  | Sqrt of t
  | Exp of t

let node e = e.node
let id e = e.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

(* Hash-consing: one global table keyed by the structural shape with child
   ids, so structurally equal expressions share one node.  Commutative
   operands are stored in canonical (id) order. *)
type key =
  | KConst of float
  | KSym of int
  | KAdd of int * int
  | KMul of int * int
  | KNeg of int
  | KInv of int
  | KSqrt of int
  | KExp of int

let table : (key, t) Hashtbl.t = Hashtbl.create 4096
let next_id = ref 0

let intern key build =
  match Hashtbl.find_opt table key with
  | Some e -> e
  | None ->
    let e = { id = !next_id; node = build () } in
    incr next_id;
    Hashtbl.add table key e;
    e

let const c = intern (KConst c) (fun () -> Const c)
let sym s = intern (KSym (Symbol.id s)) (fun () -> Sym s)
let zero = const 0.0
let one = const 1.0

let to_const e =
  match e.node with
  | Const c -> Some c
  | Sym _ | Add _ | Mul _ | Neg _ | Inv _ | Sqrt _ | Exp _ -> None

let rec neg a =
  match a.node with
  | Const c -> const (-.c)
  | Neg x -> x
  | Sym _ | Add _ | Mul _ | Inv _ | Sqrt _ | Exp _ ->
    intern (KNeg a.id) (fun () -> Neg a)

and add a b =
  match (a.node, b.node) with
  | Const 0.0, _ -> b
  | _, Const 0.0 -> a
  | Const x, Const y -> const (x +. y)
  | _, _ when equal a (neg b) -> zero
  | _ ->
    let a, b = if a.id <= b.id then (a, b) else (b, a) in
    intern (KAdd (a.id, b.id)) (fun () -> Add (a, b))

let sub a b = add a (neg b)

let rec mul a b =
  match (a.node, b.node) with
  | Const 0.0, _ | _, Const 0.0 -> zero
  | Const 1.0, _ -> b
  | _, Const 1.0 -> a
  | Const x, Const y -> const (x *. y)
  | Const (-1.0), _ -> neg b
  | _, Const (-1.0) -> neg a
  | Neg x, Neg y -> mul x y
  | Neg x, _ -> neg (mul x b)
  | _, Neg y -> neg (mul a y)
  | _ ->
    let a, b = if a.id <= b.id then (a, b) else (b, a) in
    intern (KMul (a.id, b.id)) (fun () -> Mul (a, b))

let inv a =
  match a.node with
  | Const c ->
    if c = 0.0 then raise Division_by_zero;
    const (1.0 /. c)
  | Inv x -> x
  | Sym _ | Add _ | Mul _ | Neg _ | Sqrt _ | Exp _ ->
    intern (KInv a.id) (fun () -> Inv a)

let div a b = mul a (inv b)

let sqrt a =
  match a.node with
  | Const c when c >= 0.0 -> const (Float.sqrt c)
  | Const _ | Sym _ | Add _ | Mul _ | Neg _ | Inv _ | Sqrt _ | Exp _ ->
    intern (KSqrt a.id) (fun () -> Sqrt a)

let exp a =
  match a.node with
  | Const c -> const (Float.exp c)
  | Sym _ | Add _ | Mul _ | Neg _ | Inv _ | Sqrt _ | Exp _ ->
    intern (KExp a.id) (fun () -> Exp a)

let pow_int a n =
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
    else go acc (mul base base) (n asr 1)
  in
  if n < 0 then inv (go one a (-n)) else go one a n

let sum = List.fold_left add zero
let product = List.fold_left mul one

let of_mpoly p =
  Mpoly.terms p
  |> List.map (fun (c, m) ->
         let factors =
           Monomial.to_list m |> List.map (fun (s, e) -> pow_int (sym s) e)
         in
         mul (const c) (product factors))
  |> sum

let of_ratfun r =
  let n = of_mpoly (Ratfun.num r) and d = of_mpoly (Ratfun.den r) in
  if equal d one then n else div n d

let eval e env =
  let memo : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some v -> v
    | None ->
      let v =
        match e.node with
        | Const c -> c
        | Sym s -> env s
        | Add (a, b) -> go a +. go b
        | Mul (a, b) -> go a *. go b
        | Neg a -> -.go a
        | Inv a ->
          let d = go a in
          if d = 0.0 then raise Division_by_zero;
          1.0 /. d
        | Sqrt a -> Float.sqrt (go a)
        | Exp a -> Float.exp (go a)
      in
      Hashtbl.add memo e.id v;
      v
  in
  go e

let deriv e x =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some d -> d
    | None ->
      let d =
        match e.node with
        | Const _ -> zero
        | Sym s -> if Symbol.equal s x then one else zero
        | Add (a, b) -> add (go a) (go b)
        | Mul (a, b) -> add (mul (go a) b) (mul a (go b))
        | Neg a -> neg (go a)
        | Inv a -> neg (mul (go a) (inv (mul a a)))
        | Sqrt a -> div (go a) (mul (const 2.0) (sqrt a))
        | Exp a -> mul (go a) (exp a)
      in
      Hashtbl.add memo e.id d;
      d
  in
  go e

let fold_nodes f acc e =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref acc in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      (match e.node with
      | Const _ | Sym _ -> ()
      | Add (a, b) | Mul (a, b) ->
        go a;
        go b
      | Neg a | Inv a | Sqrt a | Exp a -> go a);
      acc := f !acc e
    end
  in
  go e;
  !acc

let symbols e =
  fold_nodes
    (fun acc e ->
      match e.node with
      | Sym s -> s :: acc
      | Const _ | Add _ | Mul _ | Neg _ | Inv _ | Sqrt _ | Exp _ -> acc)
    [] e
  |> List.sort_uniq Symbol.compare

let size e = fold_nodes (fun acc _ -> acc + 1) 0 e

let rec pp ppf e =
  match e.node with
  | Const c -> Format.fprintf ppf "%g" c
  | Sym s -> Symbol.pp ppf s
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
  | Inv a -> Format.fprintf ppf "(1/%a)" pp a
  | Sqrt a -> Format.fprintf ppf "sqrt(%a)" pp a
  | Exp a -> Format.fprintf ppf "exp(%a)" pp a

let to_string e = Format.asprintf "%a" pp e
