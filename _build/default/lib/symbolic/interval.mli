(** Closed-interval arithmetic.

    Used to bound a compiled model's outputs over whole boxes of symbol
    values at once: evaluating the straight-line program with intervals
    yields guaranteed enclosures (conservative, because interval arithmetic
    ignores correlations between shared subterms). *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** Raises [Invalid_argument] when [lo > hi] or a bound is NaN. *)

val point : float -> t
val bounds : t -> float * float
val width : t -> float
val midpoint : t -> float
val contains : t -> float -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val inv : t -> t
(** Raises [Division_by_zero] when the interval contains 0. *)

val sqrt : t -> t
(** Raises [Invalid_argument] on intervals extending below 0. *)

val exp : t -> t

val hull : t -> t -> t
val pp : Format.formatter -> t -> unit
