(** Sparse multivariate polynomials with float coefficients.

    The workhorse of the exact symbolic backend: MNA determinants, moment
    numerators/denominators, and the multi-linear first-order AWEsymbolic
    forms are all values of this type.  Terms with coefficient exactly [0.0]
    are never stored. *)

type t

val zero : t
val one : t
val const : float -> t
val of_symbol : Symbol.t -> t
val of_terms : (float * Monomial.t) list -> t

val terms : t -> (float * Monomial.t) list
(** In decreasing graded-lex monomial order. *)

val coefficient : t -> Monomial.t -> float
val is_zero : t -> bool
val is_const : t -> bool
val to_const : t -> float option
(** [Some c] when the polynomial is the constant [c]. *)

val num_terms : t -> int
val total_degree : t -> int
(** [-1] for the zero polynomial. *)

val degree_in : t -> Symbol.t -> int
val symbols : t -> Symbol.t list
(** Symbols occurring with non-zero exponent, sorted. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val pow : t -> int -> t

val mul_monomial : float -> Monomial.t -> t -> t

val div_exact : ?tol:float -> t -> t -> t option
(** [div_exact a b] is [Some q] when [a = q·b] exactly (multivariate long
    division with zero remainder).  With float coefficients exactness is up
    to rounding: remainder terms whose coefficients fall below
    [tol · content a] are chopped during the division ([tol] defaults to 0,
    i.e. strict). *)

val deriv : t -> Symbol.t -> t

val eval : t -> (Symbol.t -> float) -> float

val substitute : t -> Symbol.t -> t -> t
(** [substitute p x q] replaces every occurrence of [x] by the polynomial
    [q]. *)

val coeffs_in : t -> Symbol.t -> t array
(** [coeffs_in p x] is the array [c] such that [p = Σ c.(k)·x^k], where the
    [c.(k)] do not involve [x].  The array has length [degree_in p x + 1]
    (length 1 for polynomials not involving [x], length 0 for zero). *)

val content : t -> float
(** Largest absolute coefficient (0 for the zero polynomial); used for
    normalization. *)

val max_monomial_gcd : t -> Monomial.t
(** GCD of all monomials of the polynomial ([one] if constant involved). *)

val degree_profile : t -> (Symbol.t * int) list
(** Maximum exponent of each symbol across all terms — the paper's
    [P(xⁱ, yʲ)] shorthand for describing the shape of higher-order symbolic
    forms (its Eq. 15). *)

val is_multilinear : t -> bool
(** True when no symbol appears with exponent > 1 in any term — the paper's
    structural property of exact network-function coefficients. *)

val map_coeffs : (float -> float) -> t -> t

val equal : ?tol:float -> t -> t -> bool
(** Coefficient-wise comparison; [tol] is relative to {!content}. *)

val compare : t -> t -> int
(** A total structural order (not numerically tolerant). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
