type t = { num : Mpoly.t; den : Mpoly.t }
(* Invariant: den is non-zero with content 1; num = 0 implies den = 1. *)

let num r = r.num
let den r = r.den

let normalize num den =
  if Mpoly.is_zero den then raise Division_by_zero;
  if Mpoly.is_zero num then { num = Mpoly.zero; den = Mpoly.one }
  else begin
    (* Cancel the common monomial factor first — cheap and frequent. *)
    let g = Monomial.gcd (Mpoly.max_monomial_gcd num) (Mpoly.max_monomial_gcd den) in
    let num, den =
      if Monomial.is_one g then (num, den)
      else begin
        let strip p =
          Mpoly.terms p
          |> List.map (fun (c, m) ->
                 match Monomial.div m g with
                 | Some m' -> (c, m')
                 | None -> assert false)
          |> Mpoly.of_terms
        in
        (strip num, strip den)
      end
    in
    (* Attempt exact polynomial cancellation in the two easy directions. *)
    let num, den =
      if Mpoly.is_const den then (num, den)
      else
        match Mpoly.div_exact num den with
        | Some q -> (q, Mpoly.one)
        | None -> (
          match Mpoly.div_exact den num with
          | Some q when not (Mpoly.is_zero q) -> (Mpoly.one, q)
          | _ -> (num, den))
    in
    let c = Mpoly.content den in
    { num = Mpoly.scale (1.0 /. c) num; den = Mpoly.scale (1.0 /. c) den }
  end

let make num den = normalize num den
let of_mpoly p = { num = p; den = Mpoly.one }
let zero = of_mpoly Mpoly.zero
let one = of_mpoly Mpoly.one
let const c = of_mpoly (Mpoly.const c)
let of_symbol s = of_mpoly (Mpoly.of_symbol s)
let is_zero r = Mpoly.is_zero r.num

let to_const r =
  match (Mpoly.to_const r.num, Mpoly.to_const r.den) with
  | Some n, Some d -> Some (n /. d)
  | _ -> None

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else if Mpoly.compare a.den b.den = 0 then normalize (Mpoly.add a.num b.num) a.den
  else
    normalize
      (Mpoly.add (Mpoly.mul a.num b.den) (Mpoly.mul b.num a.den))
      (Mpoly.mul a.den b.den)

let neg a = { a with num = Mpoly.neg a.num }
let sub a b = add a (neg b)

let mul a b =
  if is_zero a || is_zero b then zero
  else normalize (Mpoly.mul a.num b.num) (Mpoly.mul a.den b.den)

let inv a =
  if is_zero a then raise Division_by_zero;
  normalize a.den a.num

let div a b = mul a (inv b)
let scale k a = normalize (Mpoly.scale k a.num) a.den

let pow a n =
  let whole k = normalize (Mpoly.pow a.num k) (Mpoly.pow a.den k) in
  if n >= 0 then whole n else inv (whole (-n))

let deriv r s =
  (* Quotient rule: (n/d)' = (n'·d − n·d') / d². *)
  let n' = Mpoly.deriv r.num s and d' = Mpoly.deriv r.den s in
  normalize
    (Mpoly.sub (Mpoly.mul n' r.den) (Mpoly.mul r.num d'))
    (Mpoly.mul r.den r.den)

let eval r env =
  let d = Mpoly.eval r.den env in
  if d = 0.0 then raise Division_by_zero;
  Mpoly.eval r.num env /. d

let substitute r s p = normalize (Mpoly.substitute r.num s p) (Mpoly.substitute r.den s p)

let equal ?tol a b =
  Mpoly.equal ?tol (Mpoly.mul a.num b.den) (Mpoly.mul b.num a.den)

let pp ppf r =
  if Mpoly.is_const r.den then
    match Mpoly.to_const r.den with
    | Some 1.0 -> Mpoly.pp ppf r.num
    | Some d -> Format.fprintf ppf "(%a) / %g" Mpoly.pp r.num d
    | None -> assert false
  else Format.fprintf ppf "(%a) / (%a)" Mpoly.pp r.num Mpoly.pp r.den

let to_string r = Format.asprintf "%a" pp r
