type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: bad bounds [%g, %g]" lo hi);
  { lo; hi }

let point v = make v v
let bounds i = (i.lo, i.hi)
let width i = i.hi -. i.lo
let midpoint i = 0.5 *. (i.lo +. i.hi)
let contains i v = i.lo <= v && v <= i.hi
let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let neg a = { lo = -.a.hi; hi = -.a.lo }
let sub a b = add a (neg b)

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  {
    lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
  }

let inv a =
  if a.lo <= 0.0 && a.hi >= 0.0 then raise Division_by_zero;
  { lo = 1.0 /. a.hi; hi = 1.0 /. a.lo }

let sqrt a =
  if a.lo < 0.0 then invalid_arg "Interval.sqrt: negative lower bound";
  { lo = Float.sqrt a.lo; hi = Float.sqrt a.hi }

let exp a = { lo = Float.exp a.lo; hi = Float.exp a.hi }
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi
