type t = { id : int; name : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

let intern name =
  match Hashtbl.find_opt table name with
  | Some s -> s
  | None ->
    let s = { id = !next_id; name } in
    incr next_id;
    Hashtbl.add table name s;
    s

let name s = s.name
let id s = s.id
let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash s = s.id
let pp ppf s = Format.pp_print_string ppf s.name
let count () = !next_id
