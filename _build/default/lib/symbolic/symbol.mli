(** Interned symbolic variables.

    Symbols are globally interned: [intern "Ccomp"] always returns the same
    value, so symbol identity is cheap integer comparison.  Symbol names are
    the element names chosen for symbolic treatment (e.g. ["gout_q14"]). *)

type t

val intern : string -> t
(** Look up or create the symbol with the given name. *)

val name : t -> string
val id : t -> int
(** A dense non-negative integer, stable for the process lifetime. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val count : unit -> int
(** Number of symbols interned so far. *)
