(** Multivariate rational functions (quotients of {!Mpoly}).

    Symbolic circuit moments are rational in the symbols — a quotient of
    multi-linear polynomials whose denominator is the symbolic determinant of
    the port conductance matrix — so this is the coefficient field for the
    exact symbolic backend.

    Normalization is light (float coefficients preclude true multivariate
    GCD): common monomial factors are cancelled, exact polynomial divisibility
    is attempted, and the denominator content is scaled to 1.  Equality is
    decided by cross-multiplication. *)

type t

val zero : t
val one : t
val const : float -> t
val of_symbol : Symbol.t -> t
val of_mpoly : Mpoly.t -> t

val make : Mpoly.t -> Mpoly.t -> t
(** [make num den]; raises [Division_by_zero] when [den] is zero. *)

val num : t -> Mpoly.t
val den : t -> Mpoly.t

val is_zero : t -> bool
val to_const : t -> float option

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t
val scale : float -> t -> t
val pow : t -> int -> t

val deriv : t -> Symbol.t -> t

val eval : t -> (Symbol.t -> float) -> float
(** Raises [Division_by_zero] if the denominator vanishes at the point. *)

val substitute : t -> Symbol.t -> Mpoly.t -> t

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
