(** Straight-line-program compilation of expression DAGs.

    This realises the paper's central performance idea: "the symbolic form
    provides a compiled set of operations which can quickly produce a final
    AWE approximation, where the operands are the values of the symbols."
    A compiled program evaluates a whole family of outputs (moments, Padé
    coefficients, poles, residues, …) with one pass over a float register
    file — no allocation, no tree walking. *)

type t

val compile : inputs:Symbol.t array -> Expr.t array -> t
(** [compile ~inputs outputs] compiles the DAG rooted at [outputs].
    Hash-consing sharing in {!Expr} becomes common-subexpression elimination
    for free.  Raises [Invalid_argument] if an output mentions a symbol not
    listed in [inputs]. *)

val inputs : t -> Symbol.t array
val num_outputs : t -> int
val num_instructions : t -> int
(** Operation count of the compiled form — the paper's "reduced set of
    operations" size. *)

val num_registers : t -> int

val eval : t -> float array -> float array
(** [eval p values] runs the program with [values.(k)] bound to
    [inputs.(k)].  Allocates the register file; for tight loops use
    {!make_evaluator}. *)

val make_evaluator : t -> float array -> float array
(** [make_evaluator p] returns a closure reusing one preallocated register
    file and one output buffer across calls — the per-iteration cost Table 1
    of the paper measures.  The returned array is overwritten by the next
    call. *)

val pp : Format.formatter -> t -> unit
(** Disassembly, for debugging and documentation. *)

val eval_interval : t -> Interval.t array -> Interval.t array
(** Run the program over interval inputs, producing guaranteed (conservative)
    enclosures of every output for all input values in the box.  Raises
    [Division_by_zero] when some reciprocal's argument interval spans zero
    and [Invalid_argument] on a square root of a partially negative
    interval. *)
