lib/symbolic/slp.mli: Expr Format Interval Symbol
