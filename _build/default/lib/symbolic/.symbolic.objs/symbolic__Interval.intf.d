lib/symbolic/interval.mli: Format
