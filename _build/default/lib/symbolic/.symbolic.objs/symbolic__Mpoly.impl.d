lib/symbolic/mpoly.ml: Array Float Format Hashtbl Int List Map Monomial Option Symbol
