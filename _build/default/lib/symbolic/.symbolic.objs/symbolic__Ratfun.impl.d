lib/symbolic/ratfun.ml: Format List Monomial Mpoly
