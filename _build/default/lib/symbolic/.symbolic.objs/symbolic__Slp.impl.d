lib/symbolic/slp.ml: Array Expr Float Format Hashtbl Interval List Printf Symbol
