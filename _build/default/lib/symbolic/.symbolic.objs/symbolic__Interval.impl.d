lib/symbolic/interval.ml: Float Format Printf
