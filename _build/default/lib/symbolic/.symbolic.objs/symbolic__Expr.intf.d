lib/symbolic/expr.mli: Format Mpoly Ratfun Symbol
