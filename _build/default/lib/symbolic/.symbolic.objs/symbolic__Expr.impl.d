lib/symbolic/expr.ml: Float Format Hashtbl Int List Monomial Mpoly Ratfun Symbol
