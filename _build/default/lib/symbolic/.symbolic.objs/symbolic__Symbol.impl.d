lib/symbolic/symbol.ml: Format Hashtbl Int
