lib/symbolic/ratfun.mli: Format Mpoly Symbol
