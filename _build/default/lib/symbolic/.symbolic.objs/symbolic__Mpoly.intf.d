lib/symbolic/mpoly.mli: Format Monomial Symbol
