lib/symbolic/monomial.ml: Array Format Int List Option Symbol
