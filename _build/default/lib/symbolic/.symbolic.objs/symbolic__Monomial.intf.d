lib/symbolic/monomial.mli: Format Symbol
