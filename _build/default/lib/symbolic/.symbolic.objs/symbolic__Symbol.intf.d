lib/symbolic/symbol.mli: Format
