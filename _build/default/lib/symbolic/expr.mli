(** Hash-consed symbolic expression DAGs.

    This is the scalable symbolic backend: Gaussian elimination over this
    field never expands products, it just grows a shared DAG, and the DAG
    compiles directly into the paper's "reduced set of operations"
    (see {!Slp}).  Smart constructors perform constant folding and the
    algebraic identities that keep compiled programs small. *)

type t

type node = private
  | Const of float
  | Sym of Symbol.t
  | Add of t * t
  | Mul of t * t
  | Neg of t
  | Inv of t
  | Sqrt of t
  | Exp of t

val node : t -> node
val id : t -> int
(** Unique per structurally distinct expression (hash-consing identity). *)

val const : float -> t
val sym : Symbol.t -> t
val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t
val sqrt : t -> t
val exp : t -> t
val pow_int : t -> int -> t
val sum : t list -> t
val product : t list -> t

val of_mpoly : Mpoly.t -> t
val of_ratfun : Ratfun.t -> t

val to_const : t -> float option
val equal : t -> t -> bool
(** Structural identity (same hash-consed node). *)

val compare : t -> t -> int

val eval : t -> (Symbol.t -> float) -> float
(** Memoized over the DAG, so shared subexpressions are computed once.
    Raises [Division_by_zero] on division by exact zero. *)

val deriv : t -> Symbol.t -> t
(** Symbolic partial derivative (DAG-shared forward rule). *)

val symbols : t -> Symbol.t list
val size : t -> int
(** Number of distinct DAG nodes reachable from this expression. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
