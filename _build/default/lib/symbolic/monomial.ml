type t = (Symbol.t * int) array
(* Invariant: sorted by symbol id, all exponents >= 1. *)

let one = [||]
let of_symbol s = [| (s, 1) |]

let of_list l =
  let l = List.filter (fun (_, e) -> e <> 0) l in
  List.iter (fun (_, e) -> if e < 0 then invalid_arg "Monomial.of_list: negative exponent") l;
  let sorted = List.sort (fun (a, _) (b, _) -> Symbol.compare a b) l in
  let rec merge = function
    | (s1, e1) :: (s2, e2) :: rest when Symbol.equal s1 s2 -> merge ((s1, e1 + e2) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  Array.of_list (merge sorted)

let to_list m = Array.to_list m

let exponent m s =
  let rec go k =
    if k >= Array.length m then 0
    else begin
      let sym, e = m.(k) in
      if Symbol.equal sym s then e else go (k + 1)
    end
  in
  go 0

let mul a b =
  (* Merge two sorted exponent vectors. *)
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < na || !j < nb do
      if !i >= na then begin
        out := b.(!j) :: !out;
        incr j
      end
      else if !j >= nb then begin
        out := a.(!i) :: !out;
        incr i
      end
      else begin
        let sa, ea = a.(!i) and sb, eb = b.(!j) in
        let c = Symbol.compare sa sb in
        if c = 0 then begin
          out := (sa, ea + eb) :: !out;
          incr i;
          incr j
        end
        else if c < 0 then begin
          out := (sa, ea) :: !out;
          incr i
        end
        else begin
          out := (sb, eb) :: !out;
          incr j
        end
      end
    done;
    Array.of_list (List.rev !out)
  end

let pow m n =
  if n < 0 then invalid_arg "Monomial.pow: negative exponent"
  else if n = 0 then one
  else Array.map (fun (s, e) -> (s, e * n)) m

let div a b =
  let ok = ref true in
  let out = ref [] in
  let i = ref 0 in
  let na = Array.length a in
  Array.iter
    (fun (sb, eb) ->
      (* Advance through a until we find sb. *)
      let rec scan () =
        if !i >= na then ok := false
        else begin
          let sa, ea = a.(!i) in
          let c = Symbol.compare sa sb in
          if c < 0 then begin
            out := (sa, ea) :: !out;
            incr i;
            scan ()
          end
          else if c = 0 then begin
            if ea < eb then ok := false
            else begin
              if ea > eb then out := (sa, ea - eb) :: !out;
              incr i
            end
          end
          else ok := false
        end
      in
      if !ok then scan ())
    b;
  if not !ok then None
  else begin
    while !i < na do
      out := a.(!i) :: !out;
      incr i
    done;
    Some (Array.of_list (List.rev !out))
  end

let divides b a = Option.is_some (div a b)

let gcd a b =
  let out = ref [] in
  Array.iter
    (fun (sa, ea) ->
      let eb = exponent b sa in
      if eb > 0 then out := (sa, Int.min ea eb) :: !out)
    a;
  Array.of_list (List.rev !out)

let degree m = Array.fold_left (fun acc (_, e) -> acc + e) 0 m
let degree_in m s = exponent m s
let is_one m = Array.length m = 0
let symbols m = Array.to_list m |> List.map fst

let compare a b =
  let c = Int.compare (degree a) (degree b) in
  if c <> 0 then c
  else begin
    (* Lexicographic on the sorted exponent vectors. *)
    let na = Array.length a and nb = Array.length b in
    let rec go k =
      if k >= na && k >= nb then 0
      else if k >= na then -1
      else if k >= nb then 1
      else begin
        let sa, ea = a.(k) and sb, eb = b.(k) in
        let c = Symbol.compare sa sb in
        (* Smaller symbol id present means "more significant" variable. *)
        if c <> 0 then -c
        else begin
          let c = Int.compare ea eb in
          if c <> 0 then c else go (k + 1)
        end
      end
    in
    go 0
  end

let equal a b = compare a b = 0

let eval m env =
  Array.fold_left
    (fun acc (s, e) ->
      let v = env s in
      let rec p acc k = if k = 0 then acc else p (acc *. v) (k - 1) in
      p acc e)
    1.0 m

let deriv m s =
  let e = exponent m s in
  if e = 0 then None
  else begin
    let reduced =
      Array.to_list m
      |> List.filter_map (fun (sym, k) ->
             if Symbol.equal sym s then if k = 1 then None else Some (sym, k - 1)
             else Some (sym, k))
      |> Array.of_list
    in
    Some (e, reduced)
  end

let pp ppf m =
  if is_one m then Format.pp_print_string ppf "1"
  else
    Array.iteri
      (fun k (s, e) ->
        if k > 0 then Format.pp_print_string ppf "*";
        if e = 1 then Symbol.pp ppf s
        else Format.fprintf ppf "%a^%d" Symbol.pp s e)
      m
