(** Reduced-order N-port macromodels of linear interconnect.

    The same port-reduction machinery that feeds AWEsymbolic can serve as a
    standalone macromodeler (cf. "AWE macromodels of VLSI interconnect"):
    a passive network is reduced, once, to a pole/residue model of every
    admittance entry [Yⱼₖ(s)], after which evaluating the block's port
    behaviour costs a handful of operations — the substrate a hierarchical
    simulator would instantiate in place of the full network. *)

type t

val reduce : ?order:int -> ports:string list -> Circuit.Netlist.t -> t
(** [reduce ~ports nl] computes the admittance moment series of [nl] seen
    from the named port nodes (independent sources in [nl] are ignored; the
    network is reduced as a passive block) and fits an [order]-pole model
    (default 2, with feedthrough) to every entry.  Raises [Failure] if a
    port is ground or absent. *)

val ports : t -> string array
val order : t -> int

val entry : t -> int -> int -> Awe.Rom.t
(** The fitted model of [Yⱼₖ(s)]. *)

val admittance : t -> Numeric.Cx.t -> Numeric.Cmatrix.t
(** Evaluate the reduced [Y(s)] — one small complex sum per entry. *)

val s_parameters : t -> z0:float -> Numeric.Cx.t -> Numeric.Cmatrix.t
(** Scattering parameters at reference impedance [z0]:
    [S = (I − z0·Y)·(I + z0·Y)⁻¹].  A passive block satisfies [|Sⱼₖ| ≤ 1].
    Raises [Numeric.Cmatrix.Singular] at frequencies where [(I + z0·Y)] is
    singular (non-passive fitted data). *)

val step_current : t -> into:int -> driven:int -> float -> float
(** [step_current t ~into:j ~driven:k time]: port-[j] current response when
    port [k] is driven with a unit voltage step (others shorted). *)

val pp : Format.formatter -> t -> unit

val to_netlist : t -> Circuit.Netlist.t
(** Synthesize the macromodel as a netlist block: the port names become
    ordinary nodes, every admittance entry is realized with 1-F state
    sections (biquads for conjugate pairs), a VCCS feedthrough, and a
    VCVS/capacitor/CCCS differentiator for the [e·s] term.  Embed the
    result in a larger circuit in place of the original network — the
    block's port behaviour is the fitted [Y(s)] exactly.  No input/output
    designation is attached.  Raises [Failure] on an unpaired complex
    pole. *)

val touchstone : t -> z0:float -> frequencies:float array -> string
(** Touchstone (.sNp) text of the fitted block's S-parameters at the given
    frequencies, real/imaginary format, reference impedance [z0] — the
    interchange format RF tools consume.  Entries follow the Touchstone
    convention: column-major ([S₁₁ S₂₁ S₁₂ S₂₂]) for two ports, row-major
    otherwise. *)
