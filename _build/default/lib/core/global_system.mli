(** The composite (global) symbolic system and its moment recursion.

    The numeric partition's admittance moment matrices and the symbolic
    partitions' finite stamps are stenciled into a small global system
    (Eqs. 11–12 of the paper)

    [(Y⁰ + Y¹·s + Y²·s² + …)·V(s) = I₀],

    whose unknowns are the port voltages plus the auxiliary branch currents
    of the input source and of symbolic elements needing them.  Matching
    powers of [s] (Eq. 13) yields the recursion

    [Y⁰·V₀ = I₀],  [Y⁰·Vₖ = −Σ_{j≥1} Yʲ·V_{k−j}].

    The recursion is solved {e fraction free} (Bareiss/Cramer over the
    multivariate polynomial ring): each moment vector has the closed form
    [Vₖ = Pₖ / det(Y⁰)^{k+1}] with polynomial [Pₖ], so intermediate
    expression growth stays polynomial and — unlike naive Gaussian
    elimination over rational functions, whose uncancelled fractions grow
    doubly-exponentially and lose all float precision — the compiled result
    is numerically faithful even when leading minors of [Y⁰] are
    ill-conditioned. *)

type t

val build : Partition.t -> Port_reduction.t -> t
(** Assemble the global moment matrices (entries polynomial in the
    symbols), unit-input RHS, and output selector. *)

val size : t -> int
(** Number of global unknowns (ports + auxiliary currents). *)

val moment_matrix : t -> int -> Symbolic.Mpoly.t array array
(** [moment_matrix t k] is the global [Yᵏ] as stored internally — symmetric
    equilibration and frequency normalization applied (zero matrix beyond
    the truncation). *)

type moments = private {
  det : Symbolic.Mpoly.t;  (** [det Y⁰] *)
  numerators : Symbolic.Mpoly.t array;
      (** [numerators.(k)] is the output-projected [lᵀ·Pₖ]:
          [m̂ₖ = numerators.(k) / det^{k+1}] *)
}

val solve_moments : t -> count:int -> moments
(** Raises [Failure] when [Y⁰] is singular as a polynomial matrix (the
    circuit has no DC solution for generic symbol values). *)

type raw
(** Unprojected solution: the moment vectors [Pₖ] over all global unknowns
    (plus [det Y⁰]).  One solve serves any number of outputs. *)

val solve_raw : t -> count:int -> raw
(** The expensive part of {!solve_moments}, without the output projection.
    Same failure conditions. *)

val project : t -> raw -> (int * float) list -> moments
(** Apply an output selector (from {!selector_for}) to a raw solution,
    denormalizing the internal frequency scaling. *)

val selector_for : t -> Circuit.Netlist.output -> (int * float) list
(** Selector coefficients for an arbitrary output over the global unknowns
    (equilibration scaling already applied).  Raises [Failure] when the
    output references a node outside the global frame — such nodes must be
    declared when partitioning (see [Partition.make]'s [extra_outputs]). *)

val moments_ratfun : moments -> Symbolic.Ratfun.t array
(** The exact symbolic output moments as rational functions. *)

val moments_expr : moments -> Symbolic.Expr.t array
(** The same moments as expression DAGs ready for compilation; the shared
    [det] subterm is evaluated once in the compiled program. *)

val moments_expr_by_elimination :
  t -> nominal:(Symbolic.Symbol.t -> float) -> count:int ->
  Symbolic.Expr.t array
(** The compiled-path alternative to {!solve_moments}: Gaussian elimination
    over expression DAGs, with every pivot chosen by largest magnitude at
    the [nominal] symbol assignment — genuine partial pivoting, baked into
    the compiled program.  Numerically superior to evaluating the expanded
    Cramer polynomials on systems with strong minor cancellation (e.g. the
    op-amp); accuracy degrades gracefully away from the nominal point, which
    is exactly the regime the paper tells users to validate.  Raises
    [Failure] when [Y⁰] is numerically singular at the nominal point. *)

val solve_vectors_expr :
  t -> nominal:(Symbolic.Symbol.t -> float) -> count:int ->
  Symbolic.Expr.t array array
(** The elimination path without the output projection:
    [solve_vectors_expr t ~nominal ~count].(k) is the full global moment
    vector [Vₖ] as expression DAGs.  Pair with {!project_expr} to derive
    many outputs from one elimination. *)

val project_expr :
  t -> Symbolic.Expr.t array array -> (int * float) list ->
  Symbolic.Expr.t array
(** Apply an output selector to {!solve_vectors_expr} vectors,
    denormalizing the internal frequency scaling. *)
