(** Closed-form symbolic Padé extraction for low orders.

    Because useful AWE approximations are low order ("often less than
    five"), the paper factors the symbolic forms explicitly.  Here orders 1
    and 2 get fully symbolic poles and residues (order 2 via the quadratic
    formula — exact whenever the poles are real, which holds for the RC-class
    circuits of the paper's examples; complex-pole cases should use the
    compiled-moment path instead, which has no such restriction). *)

type order2 = {
  pole1 : Symbolic.Expr.t;
  pole2 : Symbolic.Expr.t;
  residue1 : Symbolic.Expr.t;
  residue2 : Symbolic.Expr.t;
}

val pole_order1 : Symbolic.Expr.t array -> Symbolic.Expr.t
(** [pole_order1 m] with moments [m₀; m₁; …] is [p = m₀/m₁]. *)

val residue_order1 : Symbolic.Expr.t array -> Symbolic.Expr.t
(** [k = −m₀²/m₁]. *)

val order2 : Symbolic.Expr.t array -> order2
(** Symbolic two-pole extraction from moments [m₀ … m₃]:
    the Hankel solve by Cramer's rule, the characteristic roots by the
    quadratic formula, and the residues by the 2×2 Vandermonde closed form.
    Requires at least 4 moments. *)

val dc_gain : Symbolic.Expr.t array -> Symbolic.Expr.t
(** [m₀] — the zeroth moment is the exact DC gain at any order. *)
