(** Moment-level circuit partitioning (Sec. 2.4 of the paper).

    The circuit is split into one {e symbolic partition} per symbolic
    element — whose admittance expansion [G + s·C] is finite — and one
    {e numeric partition} holding everything else.  The two meet at the
    {e ports}: every non-ground node adjacent to a symbolic element, plus
    the input source terminals and the output nodes, which "must be
    preserved". *)

type t = private {
  netlist : Circuit.Netlist.t;  (** the original circuit *)
  symbolic : (Circuit.Element.t * Symbolic.Symbol.t) list;
  symbols : Symbolic.Symbol.t array;
      (** distinct symbols, sorted by name (two elements may share one
          symbol, e.g. the paper's symmetric line drivers) *)
  companions : Circuit.Element.t list;
      (** numeric elements that must nevertheless live in the global system
          because a symbolic element references their auxiliary branch
          currents — e.g. the inductors coupled by a symbolic mutual
          inductance.  Closed transitively. *)
  ports : string array;  (** sorted port node names, all non-ground *)
  numeric : Circuit.Netlist.t;
      (** the numeric partition, with a grounded 0-V source ["__port_<n>"]
          attached to every port so its multiport admittance moments can be
          extracted *)
  input : Circuit.Element.t;  (** the designated input source *)
}

val make : ?extra_outputs:Circuit.Netlist.output list -> Circuit.Netlist.t -> t
(** Raises [Failure] when the netlist has no symbolic elements, or contains
    an independent source other than the designated input (superposition of
    multiple sources is out of scope for the symbolic path).
    [extra_outputs] forces additional observation nodes into the port set so
    a single partition can serve several outputs (see [Model.build_many]). *)

val nominal : t -> Symbolic.Symbol.t -> float
(** The symbol's nominal value: the stamp value of the (first) element
    carrying it in the original netlist.  Used to pick numerically sound
    pivots when the symbolic system is eliminated.  Raises [Not_found] for
    foreign symbols. *)

val port_source_name : string -> string
(** Name of the probe source attached to a port node. *)

val num_ports : t -> int
val pp : Format.formatter -> t -> unit
