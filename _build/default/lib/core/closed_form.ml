module E = Symbolic.Expr

type order2 = {
  pole1 : E.t;
  pole2 : E.t;
  residue1 : E.t;
  residue2 : E.t;
}

let need n m name =
  if Array.length m < n then
    invalid_arg (Printf.sprintf "Closed_form.%s: need %d moments" name n)

(* Moments of Σ kᵢ/(s−pᵢ) satisfy mⱼ = −Σ kᵢ·xᵢ^{j+1} with xᵢ = 1/pᵢ. *)

let pole_order1 m =
  need 2 m "pole_order1";
  E.div m.(0) m.(1)

let residue_order1 m =
  need 2 m "residue_order1";
  E.neg (E.div (E.mul m.(0) m.(0)) m.(1))

let dc_gain m =
  need 1 m "dc_gain";
  m.(0)

let order2 m =
  need 4 m "order2";
  let m0 = m.(0) and m1 = m.(1) and m2 = m.(2) and m3 = m.(3) in
  (* Hankel solve [m0 m1; m1 m2]·[a0; a1] = −[m2; m3] by Cramer. *)
  let det = E.sub (E.mul m0 m2) (E.mul m1 m1) in
  let a0 = E.div (E.sub (E.mul m1 m3) (E.mul m2 m2)) det in
  let a1 = E.div (E.sub (E.mul m1 m2) (E.mul m0 m3)) det in
  (* Characteristic roots x² + a1·x + a0 = 0 (reciprocal poles). *)
  let disc = E.sub (E.mul a1 a1) (E.mul (E.const 4.0) a0) in
  let sq = E.sqrt disc in
  let half = E.const 0.5 in
  let x1 = E.mul half (E.sub sq a1) in
  let x2 = E.neg (E.mul half (E.add sq a1)) in
  let pole1 = E.inv x1 and pole2 = E.inv x2 in
  (* Residues: k1·x1 + k2·x2 = −m0, k1·x1² + k2·x2² = −m1. *)
  let residue_for xa xb =
    (* k = (m1 − m0·xb)/(xa·(xb − xa)) — derived from the 2×2 solve. *)
    E.div (E.sub m1 (E.mul m0 xb)) (E.mul xa (E.sub xb xa))
  in
  {
    pole1;
    pole2;
    residue1 = residue_for x1 x2;
    residue2 = residue_for x2 x1;
  }
