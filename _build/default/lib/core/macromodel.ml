module Cx = Numeric.Cx
module Cmatrix = Numeric.Cmatrix
module Matrix = Numeric.Matrix
module Element = Circuit.Element
module Netlist = Circuit.Netlist

(* An admittance entry is Y(s) ≈ linear·s + rom (rom carries poles,
   residues, and the feedthrough constant).  The explicit linear term is
   required because port admittances of RC networks grow like c·s at high
   frequency, which no proper pole/residue sum can follow. *)
type entry = { rom : Awe.Rom.t; linear : float }

type t = { ports : string array; order : int; entries : entry array array }

let ports t = Array.copy t.ports
let order t = t.order

let scaled_moments alpha m =
  let factor = ref 1.0 in
  Array.map
    (fun v ->
      let out = v *. !factor in
      factor := !factor *. alpha;
      out)
    m

(* Fit d + e·s + Σ k/(s−p) to a moment sequence: the recurrence is anchored
   at m₂ (which neither d nor e contaminates), then d and e recovered from
   m₀ and m₁. *)
let fit_entry ~order m =
  if Array.for_all (fun v -> v = 0.0) m then
    { rom = Awe.Rom.make ~poles:[||] ~residues:[||] (); linear = 0.0 }
  else begin
    let alpha = Awe.Pade.moment_scale m in
    let mh = scaled_moments alpha m in
    let rec attempt order =
      if order < 1 then None
      else
        match Awe.Pade.char_poly ~offset:2 ~order mh with
        | exception Numeric.Lu.Singular _ -> attempt (order - 1)
        | char -> (
          let poles =
            Numeric.Roots.of_poly char
            |> Array.to_list
            |> List.filter_map (fun x ->
                   if Cx.norm x < 1e-30 then None
                   else begin
                     let p = Cx.inv x in
                     if p.Cx.re < 0.0 then Some p else None
                   end)
            |> Array.of_list
          in
          if Array.length poles = 0 then attempt (order - 1)
          else
            match
              Awe.Pade.residues ~offset:2 ~poles
                (Array.sub mh 0 (2 + Array.length poles))
            with
            | res -> Some (poles, res)
            | exception Numeric.Cmatrix.Singular _ -> attempt (order - 1))
    in
    match attempt order with
    | None ->
      (* No resolvable dynamics: keep the d + e·s skeleton, which still
         matches the first two moments. *)
      {
        rom = Awe.Rom.make ~direct:m.(0) ~poles:[||] ~residues:[||] ();
        linear = m.(1);
      }
    | Some (poles_hat, res_hat) ->
      let sum f =
        let acc = ref Cx.zero in
        Array.iteri (fun i p -> acc := Cx.add !acc (f res_hat.(i) p)) poles_hat;
        !acc
      in
      let d = mh.(0) +. (sum (fun k p -> Cx.div k p)).Cx.re in
      let e_hat = mh.(1) +. (sum (fun k p -> Cx.div k (Cx.mul p p))).Cx.re in
      {
        rom =
          Awe.Rom.make ~direct:d
            ~poles:(Array.map (Cx.scale alpha) poles_hat)
            ~residues:(Array.map (Cx.scale alpha) res_hat)
            ();
        linear = e_hat /. alpha;
      }
  end

let reduce ?(order = 2) ~ports nl =
  if ports = [] then invalid_arg "Macromodel.reduce: no ports";
  let nodes = Netlist.nodes nl in
  List.iter
    (fun p ->
      if Netlist.is_ground p then failwith "Macromodel.reduce: ground port";
      if not (List.mem p nodes) then
        failwith (Printf.sprintf "Macromodel.reduce: unknown port node %s" p))
    ports;
  (* Zero the block's own sources: shorts for V, opens for I. *)
  (* V-sources whose branch current feeds a CCCS/CCVS must keep their
     auxiliary row; any other zeroed supply becomes a nano-ohm short so it
     can sit in parallel with a port probe without singularity. *)
  let current_sensed =
    Netlist.elements nl
    |> List.filter_map (fun (e : Element.t) ->
           match e.Element.kind with
           | Element.Cccs ctrl | Element.Ccvs ctrl -> Some ctrl
           | Element.Resistor | Element.Conductance | Element.Capacitor
           | Element.Inductor | Element.Vccs _ | Element.Vcvs _
           | Element.Mutual _ | Element.Vsource | Element.Isource ->
             None)
  in
  let passive_elements =
    Netlist.elements nl
    |> List.filter_map (fun (e : Element.t) ->
           match e.Element.kind with
           | Element.Vsource ->
             if List.mem e.Element.name current_sensed then
               Some (Element.with_value e 0.0)
             else
               Some
                 (Element.make ~name:e.Element.name ~kind:Element.Resistor
                    ~pos:e.Element.pos ~neg:e.Element.neg ~value:1e-9 ())
           | Element.Isource -> None
           | Element.Resistor | Element.Conductance | Element.Capacitor
           | Element.Inductor | Element.Vccs _ | Element.Vcvs _
           | Element.Cccs _ | Element.Ccvs _ | Element.Mutual _ ->
             Some e)
  in
  let passive = Netlist.add_all Netlist.empty passive_elements in
  let ports_arr = Array.of_list ports in
  let count = (2 * order) + 2 in
  let reduction = Port_reduction.of_netlist ~count ~ports:ports_arr passive in
  let p = Array.length ports_arr in
  let entries =
    Array.init p (fun j ->
        Array.init p (fun k ->
            let m =
              Array.map
                (fun ym -> Matrix.get ym j k)
                reduction.Port_reduction.series
            in
            fit_entry ~order m))
  in
  { ports = ports_arr; order; entries }

let entry t j k = t.entries.(j).(k).rom

let admittance t s =
  let p = Array.length t.ports in
  Numeric.Cmatrix.init p p (fun j k ->
      let e = t.entries.(j).(k) in
      Cx.add (Awe.Rom.transfer e.rom s) (Cx.scale e.linear s))

let s_parameters t ~z0 s =
  let p = Array.length t.ports in
  let y = admittance t s in
  let eye i j = if i = j then Cx.one else Cx.zero in
  let a = Cmatrix.init p p (fun i j -> Cx.sub (eye i j) (Cx.scale z0 (Cmatrix.get y i j))) in
  let b = Cmatrix.init p p (fun i j -> Cx.add (eye i j) (Cx.scale z0 (Cmatrix.get y i j))) in
  (* S = A·B⁻¹: solve Bᵀ·Xᵀ = Aᵀ column-wise. *)
  let out = Cmatrix.create p p in
  for row = 0 to p - 1 do
    (* Solve x·B = a_row  ⇔  Bᵀ·xᵀ = a_rowᵀ. *)
    let bt = Cmatrix.init p p (fun i j -> Cmatrix.get b j i) in
    let rhs = Array.init p (fun j -> Cmatrix.get a row j) in
    let x = Cmatrix.solve bt rhs in
    Array.iteri (fun j v -> Cmatrix.set out row j v) x
  done;
  out

let step_current t ~into ~driven time =
  (* L⁻¹[Y(s)/s] for t > 0 = d + Σ (k/p)(e^{pt} − 1); the c·δ(t) charge
     impulse of the linear term is not representable pointwise. *)
  Awe.Rom.step t.entries.(into).(driven).rom time

let pp ppf t =
  Format.fprintf ppf "@[<v>%d-port macromodel (order %d):@,"
    (Array.length t.ports) t.order;
  Array.iteri
    (fun j pj ->
      Array.iteri
        (fun k pk ->
          let e = t.entries.(j).(k) in
          Format.fprintf ppf "  Y[%s][%s]: %d poles, d=%g, c=%g@," pj pk
            (Awe.Rom.order e.rom) e.rom.Awe.Rom.direct e.linear)
        t.ports)
    t.ports;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Synthesis: the macromodel as a netlist block, re-embeddable in a larger
   circuit.  Entry (j,k) draws i = Y_jk(s)·v(port_k) out of port j:
   - the feedthrough d is a plain VCCS;
   - each real pole gets a state node x with (s − p)·x = v_k (1-F
     integrator plus conductance) and a VCCS draw k·x; conjugate pairs get
     a controllable-canonical biquad (as in Awe.Realize);
   - the linear e·s term is a differentiator: a unit-gain VCVS copies v_k
     onto a capacitor of value e, and a CCCS mirrors the capacitor's branch
     current (e·s·v_k) out of the port. *)
let to_netlist t =
  let elements = ref [] in
  let add e = elements := e :: !elements in
  (* Draw [gain·v(ctrl)] out of [node]. *)
  let draw ~name ~node ~ctrl ~gain =
    add
      (Element.make ~name ~kind:(Element.Vccs (ctrl, "0")) ~pos:node ~neg:"0"
         ~value:gain ())
  in
  let inject ~name ~node ~ctrl ~gain =
    add
      (Element.make ~name ~kind:(Element.Vccs (ctrl, "0")) ~pos:"0" ~neg:node
         ~value:gain ())
  in
  let cap name node v =
    add (Element.make ~name ~kind:Element.Capacitor ~pos:node ~neg:"0" ~value:v ())
  in
  let cond name node g =
    add (Element.make ~name ~kind:Element.Conductance ~pos:node ~neg:"0" ~value:g ())
  in
  Array.iteri
    (fun j pj ->
      Array.iteri
        (fun k pk ->
          let e = t.entries.(j).(k) in
          let tag = Printf.sprintf "%d_%d" j k in
          if e.rom.Awe.Rom.direct <> 0.0 then
            draw ~name:("Gd" ^ tag) ~node:pj ~ctrl:pk
              ~gain:e.rom.Awe.Rom.direct;
          if e.linear <> 0.0 then begin
            let m = "md" ^ tag in
            add
              (Element.make ~name:("Ed" ^ tag) ~kind:(Element.Vcvs (pk, "0"))
                 ~pos:m ~neg:"0" ~value:1.0 ());
            cap ("Cd" ^ tag) m (Float.abs e.linear);
            (* MNA books the VCVS aux current as leaving its node, so the
               variable equals −|e|·s·v_k; a −sign(e) mirror draws e·s·v_k
               out of the port. *)
            add
              (Element.make ~name:("Fd" ^ tag) ~kind:(Element.Cccs ("Ed" ^ tag))
                 ~pos:pj ~neg:"0"
                 ~value:(if e.linear >= 0.0 then -1.0 else 1.0)
                 ())
          end;
          let poles = e.rom.Awe.Rom.poles
          and residues = e.rom.Awe.Rom.residues in
          let n = Array.length poles in
          let used = Array.make n false in
          for i = 0 to n - 1 do
            if not used.(i) then begin
              used.(i) <- true;
              let p = poles.(i) and kres = residues.(i) in
              let itag = Printf.sprintf "%s_%d" tag i in
              if
                Float.abs p.Cx.im
                <= 1e-12 *. Float.max 1.0 (Float.abs p.Cx.re)
              then begin
                let x = "x" ^ itag in
                cap ("Cx" ^ itag) x 1.0;
                cond ("Gx" ^ itag) x (-.p.Cx.re);
                inject ~name:("Gv" ^ itag) ~node:x ~ctrl:pk ~gain:1.0;
                draw ~name:("Gy" ^ itag) ~node:pj ~ctrl:x ~gain:kres.Cx.re
              end
              else begin
                (* Find the conjugate partner. *)
                let partner = ref (-1) in
                for l = i + 1 to n - 1 do
                  if
                    !partner < 0 && (not used.(l))
                    && Cx.norm (Cx.sub poles.(l) (Cx.conj p))
                       <= 1e-9 *. Cx.norm p
                  then partner := l
                done;
                if !partner < 0 then
                  failwith
                    "Macromodel.to_netlist: unpaired complex pole in entry";
                used.(!partner) <- true;
                let sigma = p.Cx.re and omega = p.Cx.im in
                let a = kres.Cx.re and b = kres.Cx.im in
                let alpha = 2.0 *. a in
                let beta = -2.0 *. ((a *. sigma) +. (b *. omega)) in
                let c1 = -2.0 *. sigma in
                let c0 = (sigma *. sigma) +. (omega *. omega) in
                let n1 = "x" ^ itag and n2 = "y" ^ itag in
                cap ("Cxa" ^ itag) n1 1.0;
                cap ("Cxb" ^ itag) n2 1.0;
                inject ~name:("Gia" ^ itag) ~node:n1 ~ctrl:n2 ~gain:1.0;
                cond ("Gdd" ^ itag) n2 c1;
                inject ~name:("Gfb" ^ itag) ~node:n2 ~ctrl:n1 ~gain:(-.c0);
                inject ~name:("Giu" ^ itag) ~node:n2 ~ctrl:pk ~gain:1.0;
                draw ~name:("Gya" ^ itag) ~node:pj ~ctrl:n2 ~gain:alpha;
                draw ~name:("Gyb" ^ itag) ~node:pj ~ctrl:n1 ~gain:beta
              end
            end
          done)
        t.ports)
    t.ports;
  Netlist.add_all Netlist.empty (List.rev !elements)

let touchstone t ~z0 ~frequencies =
  let p = Array.length t.ports in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "! %d-port S-parameters exported by awesymbolic\n" p);
  Array.iteri
    (fun j pj -> Buffer.add_string buf (Printf.sprintf "! port %d = %s\n" (j + 1) pj))
    t.ports;
  Buffer.add_string buf (Printf.sprintf "# Hz S RI R %g\n" z0);
  Array.iter
    (fun f ->
      let s = s_parameters t ~z0 (Cx.make 0.0 (2.0 *. Float.pi *. f)) in
      Buffer.add_string buf (Printf.sprintf "%.10g" f);
      (* Touchstone order: column-major for 2-ports (S11 S21 S12 S22),
         row-major otherwise. *)
      let entry j k =
        let v = Cmatrix.get s j k in
        Buffer.add_string buf (Printf.sprintf " %.10g %.10g" v.Cx.re v.Cx.im)
      in
      if p = 2 then begin
        entry 0 0;
        entry 1 0;
        entry 0 1;
        entry 1 1
      end
      else
        for j = 0 to p - 1 do
          for k = 0 to p - 1 do
            entry j k
          done
        done;
      Buffer.add_char buf '\n')
    frequencies;
  Buffer.contents buf
