lib/core/model.ml: Array Awe Closed_form Float Format Global_system Lazy List Numeric Option Partition Port_reduction Printf String Symbolic
