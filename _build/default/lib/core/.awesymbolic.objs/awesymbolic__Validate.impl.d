lib/core/validate.ml: Array Awe Circuit Float Format List Model Numeric Partition Printf Symbolic
