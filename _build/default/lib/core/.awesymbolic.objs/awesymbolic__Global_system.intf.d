lib/core/global_system.mli: Circuit Partition Port_reduction Symbolic
