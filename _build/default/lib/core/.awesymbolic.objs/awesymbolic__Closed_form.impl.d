lib/core/closed_form.ml: Array Printf Symbolic
