lib/core/partition.mli: Circuit Format Symbolic
