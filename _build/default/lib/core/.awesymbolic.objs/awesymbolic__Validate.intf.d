lib/core/validate.mli: Format Model
