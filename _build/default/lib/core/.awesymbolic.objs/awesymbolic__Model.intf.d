lib/core/model.mli: Awe Circuit Closed_form Format Partition Symbolic
