lib/core/macromodel.mli: Awe Circuit Format Numeric
