lib/core/macromodel.ml: Array Awe Buffer Circuit Float Format List Numeric Port_reduction Printf
