lib/core/partition.ml: Array Circuit Format Fun Hashtbl List Printf Symbolic
