lib/core/global_system.ml: Array Circuit Exact Float Fun Int List Numeric Partition Port_reduction Printf Symbolic
