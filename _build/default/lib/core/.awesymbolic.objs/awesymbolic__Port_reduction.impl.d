lib/core/port_reduction.ml: Array Circuit Numeric Partition
