lib/core/port_reduction.mli: Circuit Numeric Partition
