(* Tests for the domain-parallel execution runtime: chunk grids, the
   domain pool, ordered map/reduce, RNG stream splitting, and per-domain
   metric shards.  The load-bearing property throughout is the
   determinism contract of docs/PARALLELISM.md: work decomposition is a
   pure function of the problem size and reduction is ordered, so any
   jobs count produces bit-identical results to jobs = 1. *)

module Chunk = Runtime.Chunk
module Pool = Runtime.Pool

(* ------------------------------------------------------------------ *)
(* Chunk grids *)

let test_chunk_layout_basic () =
  let chunks = Chunk.layout ~n:10 ~block:4 in
  Alcotest.(check int) "count" 3 (Array.length chunks);
  Alcotest.(check int) "count agrees" 3 (Chunk.count ~n:10 ~block:4);
  let c = chunks.(2) in
  Alcotest.(check int) "last lo" 8 c.Chunk.lo;
  Alcotest.(check int) "last len is the remainder" 2 c.Chunk.len

let test_chunk_layout_edges () =
  Alcotest.(check int) "n = 0 yields no chunks" 0
    (Array.length (Chunk.layout ~n:0 ~block:8));
  let single = Chunk.layout ~n:3 ~block:8 in
  Alcotest.(check int) "n < block is one chunk" 1 (Array.length single);
  Alcotest.(check int) "short chunk len" 3 single.(0).Chunk.len;
  let exact = Chunk.layout ~n:16 ~block:4 in
  Alcotest.(check int) "exact multiple" 4 (Array.length exact);
  Array.iter
    (fun c -> Alcotest.(check int) "full blocks" 4 c.Chunk.len)
    exact;
  (match Chunk.layout ~n:(-1) ~block:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative n accepted");
  match Chunk.layout ~n:4 ~block:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero block accepted"

(* The grid is a partition: every index appears in exactly one chunk, in
   order, regardless of (n, block). *)
let prop_chunk_partition =
  QCheck2.Test.make ~name:"chunk grid partitions [0, n)" ~count:200
    QCheck2.Gen.(pair (int_range 0 5000) (int_range 1 600))
    (fun (n, block) ->
      let chunks = Chunk.layout ~n ~block in
      let next = ref 0 in
      Array.iteri
        (fun i c ->
          if c.Chunk.index <> i then failwith "index mismatch";
          if c.Chunk.lo <> !next then failwith "gap or overlap";
          if c.Chunk.len < 1 || c.Chunk.len > block then failwith "bad len";
          next := c.Chunk.lo + c.Chunk.len)
        chunks;
      !next = n)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_jobs1_spawns_nothing () =
  let before = Pool.spawned_total () in
  let p = Pool.create ~jobs:1 in
  let hits = Array.make 8 0 in
  Pool.run p ~tasks:8 (fun ~worker i ->
      Alcotest.(check int) "inline worker id" 0 worker;
      hits.(i) <- hits.(i) + 1);
  Pool.shutdown p;
  Alcotest.(check int) "no domains spawned" before (Pool.spawned_total ());
  Alcotest.(check int) "num_domains" 0 (Pool.num_domains p);
  Array.iter (fun h -> Alcotest.(check int) "each task once" 1 h) hits

let test_pool_runs_every_task () =
  let p = Pool.create ~jobs:4 in
  Alcotest.(check int) "size" 4 (Pool.size p);
  Alcotest.(check int) "background domains" 3 (Pool.num_domains p);
  let hits = Array.make 1000 0 in
  (* Disjoint per-index writes; repeated generations reuse the parked
     workers. *)
  for _ = 1 to 20 do
    Array.fill hits 0 (Array.length hits) 0;
    Pool.run p ~tasks:1000 (fun ~worker:_ i -> hits.(i) <- hits.(i) + 1);
    Array.iteri
      (fun i h -> if h <> 1 then Alcotest.failf "task %d ran %d times" i h)
      hits
  done;
  Pool.shutdown p

let test_pool_fewer_tasks_than_workers () =
  let p = Pool.create ~jobs:4 in
  let hits = Array.make 2 0 in
  Pool.run p ~tasks:2 (fun ~worker:_ i -> hits.(i) <- hits.(i) + 1);
  Array.iter (fun h -> Alcotest.(check int) "once" 1 h) hits;
  let ran = ref false in
  Pool.run p ~tasks:0 (fun ~worker:_ _ -> ran := true);
  Alcotest.(check bool) "zero tasks run nothing" false !ran;
  (match Pool.run p ~tasks:(-1) (fun ~worker:_ _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative task count accepted");
  Pool.shutdown p

let test_pool_exception_propagates () =
  let p = Pool.create ~jobs:4 in
  let survivors = Atomic.make 0 in
  (match
     Pool.run p ~tasks:64 (fun ~worker:_ i ->
         if i = 13 then failwith "boom" else Atomic.incr survivors)
   with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | () -> Alcotest.fail "task exception swallowed");
  Alcotest.(check int) "other tasks still ran" 63 (Atomic.get survivors);
  (* The pool survives a failed generation. *)
  let count = Atomic.make 0 in
  Pool.run p ~tasks:32 (fun ~worker:_ _ -> Atomic.incr count);
  Alcotest.(check int) "next generation clean" 32 (Atomic.get count);
  Pool.shutdown p;
  match Pool.run p ~tasks:1 (fun ~worker:_ _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> ()
(* tasks = 1 runs inline even after shutdown — the inline path needs no
   domains; a multi-task run would raise. *)

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~jobs:3 in
  Pool.run p ~tasks:10 (fun ~worker:_ _ -> ());
  Pool.shutdown p;
  Pool.shutdown p;
  match Pool.run p ~tasks:4 (fun ~worker:_ _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "run after shutdown accepted"

(* ------------------------------------------------------------------ *)
(* Ordered helpers *)

let test_parallel_map_ordered () =
  let input = Array.init 500 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) input in
  List.iter
    (fun jobs ->
      let got = Runtime.parallel_map ~jobs (fun i -> i * i) input in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d ordered" jobs)
        true (got = expect))
    [ 1; 2; 4 ]

let test_parallel_reduce_ordered () =
  (* Float summation is order-sensitive; the ordered fold makes the
     reduction independent of the jobs count bit-for-bit. *)
  let input = Array.init 1000 (fun i -> 1.0 /. float_of_int (i + 1)) in
  let at jobs =
    Runtime.parallel_reduce ~jobs ~map:Float.sqrt ~fold:( +. ) 0.0 input
  in
  let seq = at 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d bit-identical" jobs)
        true
        (Int64.bits_of_float (at jobs) = Int64.bits_of_float seq))
    [ 2; 4 ]

let test_iter_chunks_covers () =
  let n = 1003 in
  let hits = Array.make n 0 in
  Runtime.iter_chunks ~jobs:4 ~n ~block:64 (fun ~worker:_ c ->
      for i = c.Chunk.lo to c.Chunk.lo + c.Chunk.len - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "index %d visited %d times" i h)
    hits

(* ------------------------------------------------------------------ *)
(* RNG stream splitting *)

let prop_rng_skip_equals_draws =
  QCheck2.Test.make ~name:"Rng.skip k ≡ k discarded draws" ~count:100
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 1_000_000))
    (fun (k, seed) ->
      let a = Obs.Rng.create seed in
      let b = Obs.Rng.create seed in
      for _ = 1 to k do
        ignore (Obs.Rng.float a)
      done;
      Obs.Rng.skip b k;
      Obs.Rng.float a = Obs.Rng.float b)

let test_rng_copy_independent () =
  let a = Obs.Rng.create 7 in
  ignore (Obs.Rng.float a);
  let b = Obs.Rng.copy a in
  let va = Obs.Rng.float a in
  (* Advancing the copy leaves the original untouched and vice versa. *)
  let vb = Obs.Rng.float b in
  Alcotest.(check bool) "same position, same draw" true (va = vb);
  ignore (Obs.Rng.float b);
  ignore (Obs.Rng.float b);
  let va2 = Obs.Rng.float a and vb3 = Obs.Rng.float b in
  Alcotest.(check bool) "streams diverge independently" true (va2 <> vb3);
  match Obs.Rng.skip a (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative skip accepted"

(* Chunked sampling: per-chunk copy+skip streams reproduce exactly the
   sequential draw sequence — the mechanism Plan.columns rests on. *)
let test_rng_chunked_stream_split () =
  let n = 977 and dpp = 3 in
  let master = Obs.Rng.create 42 in
  let seq = Array.init (n * dpp) (fun _ -> Obs.Rng.float master) in
  let par = Array.make (n * dpp) 0.0 in
  let master2 = Obs.Rng.create 42 in
  Array.iter
    (fun (c : Chunk.t) ->
      let r = Obs.Rng.copy master2 in
      Obs.Rng.skip r (c.Chunk.lo * dpp);
      for i = c.Chunk.lo * dpp to ((c.Chunk.lo + c.Chunk.len) * dpp) - 1 do
        par.(i) <- Obs.Rng.float r
      done)
    (Chunk.layout ~n ~block:128);
  Alcotest.(check bool) "split streams ≡ sequential" true (par = seq)

(* ------------------------------------------------------------------ *)
(* Metric shards *)

let test_metrics_shard_merge () =
  let was = !Obs.enabled in
  Obs.enabled := true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.enabled := was)
    (fun () ->
      Obs.Metrics.incr "shard.direct";
      let v =
        Obs.Metrics.with_shard (fun () ->
            Obs.Metrics.incr ~by:5 "shard.counted";
            Obs.Metrics.observe "shard.hist" 2.0;
            Obs.Metrics.observe "shard.hist" 8.0;
            (* Nested with_shard reuses the active shard. *)
            Obs.Metrics.with_shard (fun () ->
                Obs.Metrics.incr "shard.counted");
            17)
      in
      Alcotest.(check int) "with_shard returns" 17 v;
      Alcotest.(check int) "counter merged" 6
        (Obs.Metrics.counter "shard.counted");
      Alcotest.(check int) "outside unaffected" 1
        (Obs.Metrics.counter "shard.direct");
      match Obs.Metrics.histogram "shard.hist" with
      | None -> Alcotest.fail "histogram not merged"
      | Some h ->
        Alcotest.(check int) "histogram count" 2 h.Obs.Metrics.count;
        Alcotest.(check (float 1e-12)) "histogram sum" 10.0 h.Obs.Metrics.sum)

(* Pool-driven counters land in the global tables after the run, no
   matter which domain bumped them. *)
let test_metrics_counted_across_domains () =
  let was = !Obs.enabled in
  Obs.enabled := true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.enabled := was)
    (fun () ->
      let p = Pool.create ~jobs:4 in
      Pool.run p ~tasks:200 (fun ~worker:_ _ ->
          Obs.Metrics.with_shard (fun () -> Obs.Metrics.incr "shard.pool"));
      Pool.shutdown p;
      Alcotest.(check int) "every task counted" 200
        (Obs.Metrics.counter "shard.pool"))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "runtime"
    [
      ( "chunk",
        [
          quick "layout arithmetic" test_chunk_layout_basic;
          quick "edge cases" test_chunk_layout_edges;
        ]
        @ props [ prop_chunk_partition ] );
      ( "pool",
        [
          quick "jobs = 1 spawns nothing" test_pool_jobs1_spawns_nothing;
          quick "every task runs exactly once" test_pool_runs_every_task;
          quick "n < jobs and n = 0" test_pool_fewer_tasks_than_workers;
          quick "task exception propagates" test_pool_exception_propagates;
          quick "shutdown is idempotent" test_pool_shutdown_idempotent;
        ] );
      ( "helpers",
        [
          quick "parallel_map is ordered" test_parallel_map_ordered;
          quick "parallel_reduce is bit-stable" test_parallel_reduce_ordered;
          quick "iter_chunks covers the range" test_iter_chunks_covers;
        ] );
      ( "rng",
        [
          quick "copy is independent" test_rng_copy_independent;
          quick "chunked split ≡ sequential draws" test_rng_chunked_stream_split;
        ]
        @ props [ prop_rng_skip_equals_draws ] );
      ( "metrics",
        [
          quick "shard merge is exact" test_metrics_shard_merge;
          quick "pool counters merge" test_metrics_counted_across_domains;
        ] );
    ]
