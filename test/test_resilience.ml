(* Tests for the robustness layer: the Awesym_error taxonomy, the seeded
   fault-injection harness, per-point fault isolation in the sweep engine,
   and chunk-granular checkpoint/resume.

   The load-bearing properties, each exercised at jobs = 1 and 4:
   - transient faults under the retry policy leave the report
     byte-identical to a fault-free run;
   - an aborted checkpointed sweep, resumed, is byte-identical to an
     uninterrupted one;
   - skip-policy statistics equal statistics over the survivor subset
     recomputed by hand. *)

module Err = Awesym_error
module Fault = Runtime.Fault
module Netlist = Circuit.Netlist
module Builders = Circuit.Builders
module Parser = Circuit.Parser
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model
module Artifact = Awesymbolic.Artifact
module Dist = Sweep.Dist
module Plan = Sweep.Plan
module Stats = Sweep.Stats
module Engine = Sweep.Engine

(* Every armed test must disarm even on failure: fault state is global. *)
let with_faults ?seed spec f =
  Fault.arm ?seed spec;
  Fun.protect ~finally:Fault.disarm f

let fig1_c1_g2 () =
  let nl = Builders.fig1 () in
  let nl = Netlist.mark_symbolic nl "C1" (Sym.intern "C1") in
  Netlist.mark_symbolic nl "G2" (Sym.intern "G2")

let fig1_model = lazy (Model.build ~order:2 (fig1_c1_g2 ()))

let plan_c1_g2 kind =
  Plan.make kind
    [
      { Plan.name = "C1"; dist = Dist.uniform ~lo:0.5e-12 ~hi:2.0e-12 };
      { Plan.name = "G2"; dist = Dist.uniform ~lo:0.5e-3 ~hi:2.0e-3 };
    ]

let json_of r = Obs.Json.to_string (Engine.to_json r)

(* Substring check (no Astring dependency in the test tree). *)
let contains ~frag s =
  let n = String.length frag and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = frag || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Taxonomy *)

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      match Err.kind_of_name (Err.kind_name k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "kind %s does not round-trip" (Err.kind_name k))
    Err.all_kinds;
  Alcotest.(check bool) "unknown name" true (Err.kind_of_name "bogus" = None);
  Alcotest.(check int) "fourteen buckets" 14 (List.length Err.all_kinds)

let test_to_string_and_json () =
  let e =
    Err.make Err.Singular_system ~where:"lu.factor" ~file:"deck.cir" ~line:12
      ~condition:3.2e15
      ~context:[ ("column", "3") ]
      "zero pivot"
  in
  let s = Err.to_string e in
  List.iter
    (fun frag ->
      if not (contains ~frag s) then
        Alcotest.failf "to_string %S lacks %S" s frag)
    [ "singular_system"; "lu.factor"; "zero pivot"; "deck.cir"; "12" ];
  let j = Err.to_json e in
  let str k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Str s) -> s
    | _ -> Alcotest.failf "json lacks %s" k
  in
  Alcotest.(check string) "kind" "singular_system" (str "kind");
  Alcotest.(check string) "where" "lu.factor" (str "where");
  Alcotest.(check string) "file" "deck.cir" (str "file");
  (match Obs.Json.member "line" j with
  | Some (Obs.Json.Num 12.0) -> ()
  | _ -> Alcotest.fail "line missing");
  match Obs.Json.member "context" j with
  | Some (Obs.Json.Obj [ ("column", Obs.Json.Str "3") ]) -> ()
  | _ -> Alcotest.fail "context missing"

(* Every taxonomy bucket is reachable through [classify], either from the
   owning library's typed exception or from a direct [Error]. *)
let test_classify_every_kind () =
  let kind_of exn = (Err.classify exn).Err.kind in
  (* Parse: the parser's located exception. *)
  let e = Err.classify (Parser.Parse_error (7, "boom")) in
  Alcotest.(check bool) "parse kind" true (e.Err.kind = Err.Parse);
  Alcotest.(check bool) "parse line" true (e.Err.line = Some 7);
  (* Singular_system: a genuinely singular factorization. *)
  (match Numeric.Lu.factor (Numeric.Matrix.of_arrays [| [| 0.0 |] |]) with
  | _ -> Alcotest.fail "singular matrix factored"
  | exception exn ->
    Alcotest.(check bool) "singular kind" true
      (kind_of exn = Err.Singular_system));
  (* Unstable_pade: the fitter's typed exception. *)
  Alcotest.(check bool) "pade kind" true
    (kind_of (Awe.Pade.Degenerate "all poles unstable") = Err.Unstable_pade);
  (* Artifact_corrupt: the artifact layer's typed exception. *)
  Alcotest.(check bool) "artifact kind" true
    (kind_of (Artifact.Format_error "bad magic") = Err.Artifact_corrupt);
  (* Injected_fault: an armed cut. *)
  with_faults "unit.site:1:sticky" (fun () ->
      match Fault.cut "unit.site" with
      | () -> Alcotest.fail "armed cut did not fire"
      | exception exn ->
        Alcotest.(check bool) "injected kind" true
          (kind_of exn = Err.Injected_fault));
  (* Direct raises for the kinds owned by the taxonomy itself. *)
  List.iter
    (fun k ->
      let exn = Err.Error (Err.make k ~where:"unit" "synthetic") in
      Alcotest.(check bool) (Err.kind_name k) true (kind_of exn = k))
    [ Err.Nonfinite_result; Err.Worker_crash; Err.Invalid_request ];
  (* Internal: the fallback for unclassified exceptions. *)
  Alcotest.(check bool) "fallback" true (kind_of Not_found = Err.Internal);
  (* classify is the identity on already-classified errors. *)
  let t = Err.make Err.Worker_crash ~where:"pool" "died" in
  Alcotest.(check bool) "identity" true (Err.classify (Err.Error t) == t)

let test_registered_printer () =
  let s =
    Printexc.to_string
      (Err.Error (Err.make Err.Unstable_pade ~where:"pade.fit" "degenerate"))
  in
  Alcotest.(check bool) "printer used" true
    (contains ~frag:"unstable_pade" s)

(* ------------------------------------------------------------------ *)
(* Fault harness *)

let test_fault_spec_parsing () =
  List.iter
    (fun bad ->
      match Fault.arm bad with
      | () ->
        Fault.disarm ();
        Alcotest.failf "bad spec %S accepted" bad
      | exception Invalid_argument _ -> ())
    [ "site"; "site:2.0"; "site:abc"; "site:0.5:bogus"; ":0.5" ];
  with_faults "a:0,b.*:1,*:0.5:sticky" (fun () ->
      Alcotest.(check bool) "armed" true (Fault.armed ()));
  Alcotest.(check bool) "disarmed" false (Fault.armed ())

let test_fault_determinism () =
  let fired seed =
    with_faults ~seed "unit.det:0.3" (fun () ->
        List.filter
          (fun k -> Fault.would_fire ~key:k "unit.det")
          (List.init 500 Fun.id))
  in
  let a = fired 3 and b = fired 3 and c = fired 4 in
  Alcotest.(check bool) "same seed, same set" true (a = b);
  Alcotest.(check bool) "nonempty at p=0.3" true (a <> []);
  Alcotest.(check bool) "not universal at p=0.3" true (List.length a < 500);
  Alcotest.(check bool) "different seed, different set" true (a <> c);
  with_faults "unit.det:0" (fun () ->
      Alcotest.(check bool) "p=0 never fires" false
        (List.exists (fun k -> Fault.would_fire ~key:k "unit.det")
           (List.init 200 Fun.id)));
  with_faults "unit.det:1" (fun () ->
      Alcotest.(check bool) "p=1 always fires" true
        (List.for_all (fun k -> Fault.would_fire ~key:k "unit.det")
           (List.init 200 Fun.id)))

let test_fault_transient_vs_sticky () =
  with_faults "t:1,s:1:sticky" (fun () ->
      Alcotest.(check bool) "transient attempt 0" true
        (Fault.would_fire ~attempt:0 "t");
      Alcotest.(check bool) "transient attempt 1" false
        (Fault.would_fire ~attempt:1 "t");
      Alcotest.(check bool) "sticky attempt 0" true
        (Fault.would_fire ~attempt:0 "s");
      Alcotest.(check bool) "sticky attempt 3" true
        (Fault.would_fire ~attempt:3 "s"))

let test_fault_site_matching () =
  with_faults "cache.read:0,cache.*:1:sticky" (fun () ->
      (* First match wins: the exact rule masks the prefix rule. *)
      Alcotest.(check bool) "exact rule shadows prefix" false
        (Fault.would_fire "cache.read");
      Alcotest.(check bool) "prefix matches sibling" true
        (Fault.would_fire "cache.write");
      Alcotest.(check bool) "unrelated site silent" false
        (Fault.would_fire "artifact.read"));
  with_faults "*:1:sticky" (fun () ->
      Alcotest.(check bool) "wildcard matches all" true
        (Fault.would_fire "anything.at.all"))

let test_fault_cut_payload () =
  with_faults "unit.cut:1:sticky" (fun () ->
      match Fault.cut ~key:17 ~attempt:2 "unit.cut" with
      | () -> Alcotest.fail "cut did not fire"
      | exception Err.Error e ->
        Alcotest.(check bool) "kind" true (e.Err.kind = Err.Injected_fault);
        Alcotest.(check string) "where" "unit.cut" e.Err.where;
        Alcotest.(check bool) "key recorded" true
          (List.assoc_opt "key" e.Err.context = Some "17"))

(* ------------------------------------------------------------------ *)
(* Parser located errors *)

let expect_parse_error deck ~line ~frags =
  match Parser.parse_string deck with
  | _ -> Alcotest.failf "bad deck accepted: %S" deck
  | exception Parser.Parse_error (l, msg) ->
    Alcotest.(check int) "error line" line l;
    List.iter
      (fun frag ->
        if not (contains ~frag msg) then
          Alcotest.failf "message %S lacks %S" msg frag)
      frags

let test_parser_located_errors () =
  expect_parse_error "R1 1\n" ~line:1 ~frags:[ "R1"; "operand" ];
  expect_parse_error "R1 1 0 1k\nQ7 1 2 3\n" ~line:2 ~frags:[ "Q7" ];
  expect_parse_error "R1 1 0 bogus\n" ~line:1 ~frags:[ "bogus" ];
  expect_parse_error "R1 1 0 1k\nC1 2\n" ~line:2 ~frags:[ "C1" ];
  (* The classifier carries the location into the taxonomy. *)
  match Parser.parse_string "R1 1 0 1k\n\nE9 1 2\n" with
  | _ -> Alcotest.fail "bad deck accepted"
  | exception exn ->
    let e = Err.classify exn in
    Alcotest.(check bool) "kind" true (e.Err.kind = Err.Parse);
    Alcotest.(check bool) "line" true (e.Err.line = Some 3)

(* ------------------------------------------------------------------ *)
(* Fault containment at artifact/cache reads *)

let test_artifact_read_fault () =
  let model = Lazy.force fig1_model in
  let path = Filename.temp_file "awesym_test" ".awm" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Model.save model path;
      with_faults "artifact.read:1:sticky" (fun () ->
          match Model.load path with
          | _ -> Alcotest.fail "armed artifact read succeeded"
          | exception Err.Error e ->
            Alcotest.(check bool) "kind" true
              (e.Err.kind = Err.Injected_fault));
      let reloaded = Model.load path in
      Alcotest.(check int) "reload intact" (Model.order model)
        (Model.order reloaded))

let test_cache_read_fault_contained () =
  let dir = Filename.temp_file "awesym_cache" "" in
  Sys.remove dir;
  let nl = fig1_c1_g2 () in
  let m1 = Model.build_cached ~cache_dir:dir ~order:2 nl in
  (* A poisoned cache read must fall back to rebuilding, not crash. *)
  let m2 =
    with_faults "cache.read:1:sticky" (fun () ->
        Model.build_cached ~cache_dir:dir ~order:2 (fig1_c1_g2 ()))
  in
  let v = Model.nominal_values m1 in
  Alcotest.(check bool) "rebuilt model agrees" true
    (Model.eval_moments m1 v = Model.eval_moments m2 v)

(* ------------------------------------------------------------------ *)
(* Engine policies *)

let test_policy_of_string () =
  let ok s p =
    match Engine.policy_of_string s with
    | Ok p' when p' = p -> ()
    | _ -> Alcotest.failf "policy %S misparsed" s
  in
  ok "fail_fast" Engine.Fail_fast;
  ok "fail-fast" Engine.Fail_fast;
  ok "skip" Engine.Skip;
  ok "retry" (Engine.Retry 2);
  ok "retry:5" (Engine.Retry 5);
  List.iter
    (fun bad ->
      match Engine.policy_of_string bad with
      | Ok _ -> Alcotest.failf "bad policy %S accepted" bad
      | Error _ -> ())
    [ "retry:0"; "retry:x"; "never" ];
  Alcotest.(check string) "retry name" "retry:3"
    (Engine.policy_name (Engine.Retry 3))

let test_fail_fast_aborts () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 64) in
  with_faults "sweep.point:1:sticky" (fun () ->
      match Engine.run ~seed:5 ~policy:Engine.Fail_fast model plan with
      | _ -> Alcotest.fail "fail_fast swallowed a fault"
      | exception Err.Error e ->
        Alcotest.(check bool) "kind" true (e.Err.kind = Err.Injected_fault))

let test_skip_quarantines_predicted_points () =
  let model = Lazy.force fig1_model in
  let n = 400 in
  let plan = plan_c1_g2 (Plan.Monte_carlo n) in
  with_faults ~seed:9 "sweep.point:0.05:sticky" (fun () ->
      let predicted =
        List.filter
          (fun i -> Fault.would_fire ~key:i "sweep.point")
          (List.init n Fun.id)
      in
      Alcotest.(check bool) "test is non-trivial" true (predicted <> []);
      let r = Engine.run ~seed:5 ~policy:Engine.Skip model plan in
      Alcotest.(check (list int)) "exact failure set" predicted
        (List.map (fun fp -> fp.Engine.point) r.Engine.failed);
      Alcotest.(check int) "survivors" (n - List.length predicted)
        (Engine.survivors r);
      List.iter
        (fun fp ->
          Alcotest.(check int) "one attempt under skip" 1 fp.Engine.attempts;
          Alcotest.(check bool) "kind" true
            (fp.Engine.error.Err.kind = Err.Injected_fault))
        r.Engine.failed;
      (* Quarantine decisions are schedule-independent. *)
      let j1 = json_of (Engine.run ~seed:5 ~jobs:1 ~policy:Engine.Skip model plan) in
      let j4 = json_of (Engine.run ~seed:5 ~jobs:4 ~policy:Engine.Skip model plan) in
      Alcotest.(check string) "jobs-invariant under faults" j1 j4)

let test_all_points_failed_raises () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 16) in
  with_faults "sweep.point:1:sticky" (fun () ->
      match Engine.run ~seed:5 ~policy:Engine.Skip model plan with
      | _ -> Alcotest.fail "fully-failed sweep returned a result"
      | exception Err.Error e ->
        Alcotest.(check bool) "mentions totality" true
          (contains ~frag:"every point" e.Err.message))

(* Property (a): transient faults + retry ≡ fault-free, byte-identical. *)
let prop_retry_heals_transients =
  QCheck2.Test.make ~name:"transient faults + retry ≡ fault-free" ~count:8
    QCheck2.Gen.(
      triple (int_range 0 1000) (int_range 5 45) (int_range 1 4))
    (fun (fseed, pct, jobs) ->
      let model = Lazy.force fig1_model in
      let plan = plan_c1_g2 (Plan.Monte_carlo 120) in
      let policy = Engine.Retry 1 in
      let clean = json_of (Engine.run ~seed:7 ~jobs ~policy model plan) in
      let spec =
        Printf.sprintf "sweep.point:0.%02d,pool.worker:0.%02d" pct pct
      in
      let faulted =
        with_faults ~seed:fseed spec (fun () ->
            json_of (Engine.run ~seed:7 ~jobs ~policy model plan))
      in
      clean = faulted)

(* Property (c): skip statistics ≡ statistics over the survivor subset,
   recomputed point-by-point outside the engine. *)
let test_skip_stats_match_survivor_subset () =
  let model = Lazy.force fig1_model in
  let n = 300 in
  let seed = 5 in
  let block = 256 in
  let plan = plan_c1_g2 (Plan.Monte_carlo n) in
  let measures = [ Engine.Moment 0; Engine.Dc_gain ] in
  with_faults ~seed:11 "sweep.point:0.1:sticky" (fun () ->
      let r = Engine.run ~seed ~block ~measures ~policy:Engine.Skip model plan in
      Alcotest.(check bool) "some failures" true (r.Engine.failed <> []);
      let failed =
        List.fold_left
          (fun acc fp -> fp.Engine.point :: acc)
          [] r.Engine.failed
      in
      (* Recompute the survivors' values with the scalar evaluator. *)
      let symbols = Array.map Sym.name (Model.symbols model) in
      let nominals = Model.nominal_values model in
      let rng = Obs.Rng.create seed in
      let cols = Plan.columns ~symbols ~nominals ~rng ~jobs:1 ~block plan in
      let m0s = ref [] and gains = ref [] in
      for i = n - 1 downto 0 do
        if not (List.mem i failed) then begin
          let v = Array.map (fun col -> col.(i)) cols in
          let m = Model.eval_moments model v in
          let rom = Awe.Pade.fit ~order:(Model.order model) m in
          m0s := m.(0) :: !m0s;
          gains := Awe.Measures.dc_gain rom :: !gains
        end
      done;
      let check name expect (s : Stats.summary) =
        let e = Stats.summarize (Array.of_list expect) in
        Alcotest.(check (float 0.0)) (name ^ " mean") e.Stats.mean s.Stats.mean;
        Alcotest.(check (float 0.0)) (name ^ " std") e.Stats.std s.Stats.std;
        Alcotest.(check (float 0.0)) (name ^ " min") e.Stats.min s.Stats.min;
        Alcotest.(check (float 0.0)) (name ^ " max") e.Stats.max s.Stats.max
      in
      check "m0" !m0s (List.assoc (Engine.Moment 0) r.Engine.summaries);
      check "dc_gain" !gains (List.assoc Engine.Dc_gain r.Engine.summaries))

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume *)

let with_temp_path f =
  let path = Filename.temp_file "awesym_ckpt" ".json" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Pick a fault seed whose first firing point is late enough that the
   aborted run completes (and checkpoints) at least two chunks first. *)
let find_abort_seed ~n ~spec ~site ~min_key =
  let rec go seed =
    if seed > 10_000 then Alcotest.fail "no suitable fault seed found"
    else
      let keys =
        with_faults ~seed spec (fun () ->
            List.filter
              (fun k -> Fault.would_fire ~key:k site)
              (List.init n Fun.id))
      in
      match keys with
      | k :: _ when k >= min_key -> seed
      | _ -> go (seed + 1)
  in
  go 0

(* Property (b): abort a checkpointed sweep mid-run, resume, and compare
   byte-for-byte with an uninterrupted run — at jobs 1 and 4. *)
let test_checkpoint_resume_identical () =
  let model = Lazy.force fig1_model in
  let n = 1500 in
  let plan = plan_c1_g2 (Plan.Monte_carlo n) in
  let policy = Engine.Fail_fast in
  let spec = "sweep.point:0.002:sticky" in
  let fseed = find_abort_seed ~n ~spec ~site:"sweep.point" ~min_key:600 in
  List.iter
    (fun jobs ->
      let reference =
        json_of (Engine.run ~seed:7 ~jobs ~policy model plan)
      in
      with_temp_path (fun path ->
          (match
             with_faults ~seed:fseed spec (fun () ->
                 Engine.run ~seed:7 ~jobs ~policy ~checkpoint:path model plan)
           with
          | _ -> Alcotest.fail "armed fail_fast run completed"
          | exception Err.Error _ -> ());
          Alcotest.(check bool) "checkpoint written" true
            (Sys.file_exists path);
          let resumed =
            Engine.run ~seed:7 ~jobs ~policy ~checkpoint:path ~resume:true
              model plan
          in
          Alcotest.(check string)
            (Printf.sprintf "resume ≡ uninterrupted at jobs %d" jobs)
            reference (json_of resumed)))
    [ 1; 4 ]

let test_checkpoint_rejects_mismatch () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 300) in
  with_temp_path (fun path ->
      ignore (Engine.run ~seed:7 ~checkpoint:path model plan);
      (* Different seed → different sweep → the key must not match. *)
      (match
         Engine.run ~seed:8 ~checkpoint:path ~resume:true model plan
       with
      | _ -> Alcotest.fail "foreign checkpoint accepted"
      | exception Err.Error e ->
        Alcotest.(check bool) "invalid_request" true
          (e.Err.kind = Err.Invalid_request));
      (* Corrupt bytes → artifact_corrupt. *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not json at all");
      match Engine.run ~seed:7 ~checkpoint:path ~resume:true model plan with
      | _ -> Alcotest.fail "corrupt checkpoint accepted"
      | exception Err.Error e ->
        Alcotest.(check bool) "artifact_corrupt" true
          (e.Err.kind = Err.Artifact_corrupt))

let test_resume_missing_is_fresh () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 200) in
  let reference = json_of (Engine.run ~seed:7 model plan) in
  with_temp_path (fun path ->
      let r = Engine.run ~seed:7 ~checkpoint:path ~resume:true model plan in
      Alcotest.(check string) "fresh start" reference (json_of r);
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
      (* A full checkpoint resumes to the same bytes without evaluating. *)
      let again =
        Engine.run ~seed:7 ~checkpoint:path ~resume:true model plan
      in
      Alcotest.(check string) "full resume" reference (json_of again))

(* Failed points round-trip through the checkpoint: abort a Skip-policy
   sweep after it has quarantined points, resume, and the report still
   matches an uninterrupted faulty run with the same quarantine set. *)
let test_checkpoint_preserves_failed_points () =
  let model = Lazy.force fig1_model in
  let n = 1500 in
  let plan = plan_c1_g2 (Plan.Monte_carlo n) in
  (* Sticky point faults quarantine; a late sticky worker fault aborts. *)
  let spec = "sweep.point:0.01:sticky" in
  let reference =
    with_faults ~seed:3 spec (fun () ->
        json_of (Engine.run ~seed:7 ~jobs:1 model plan))
  in
  with_temp_path (fun path ->
      (match
         with_faults ~seed:3 (spec ^ ",pool.worker:0.4:sticky") (fun () ->
             Engine.run ~seed:7 ~jobs:1 ~policy:Engine.Fail_fast
               ~checkpoint:path model plan)
       with
      | _ -> ( (* the worker fault may land on chunk 0 of a clean seed *) )
      | exception Err.Error _ -> ());
      let resumed =
        with_faults ~seed:3 spec (fun () ->
            Engine.run ~seed:7 ~jobs:1 ~checkpoint:path ~resume:true model
              plan)
      in
      Alcotest.(check string) "quarantine survives resume" reference
        (json_of resumed))

(* ------------------------------------------------------------------ *)

let () =
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "resilience"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "kind names round-trip" `Quick
            test_kind_names_roundtrip;
          Alcotest.test_case "to_string / to_json" `Quick
            test_to_string_and_json;
          Alcotest.test_case "classify reaches every kind" `Quick
            test_classify_every_kind;
          Alcotest.test_case "registered printer" `Quick
            test_registered_printer;
        ] );
      ( "fault",
        [
          Alcotest.test_case "spec parsing" `Quick test_fault_spec_parsing;
          Alcotest.test_case "seeded determinism" `Quick
            test_fault_determinism;
          Alcotest.test_case "transient vs sticky" `Quick
            test_fault_transient_vs_sticky;
          Alcotest.test_case "site matching" `Quick test_fault_site_matching;
          Alcotest.test_case "cut payload" `Quick test_fault_cut_payload;
        ] );
      ( "parser",
        [
          Alcotest.test_case "located errors" `Quick
            test_parser_located_errors;
        ] );
      ( "containment",
        [
          Alcotest.test_case "artifact read fault" `Quick
            test_artifact_read_fault;
          Alcotest.test_case "cache read fault contained" `Quick
            test_cache_read_fault_contained;
        ] );
      ( "policy",
        props [ prop_retry_heals_transients ]
        @ [
            Alcotest.test_case "policy_of_string" `Quick
              test_policy_of_string;
            Alcotest.test_case "fail_fast aborts" `Quick
              test_fail_fast_aborts;
            Alcotest.test_case "skip quarantines predicted points" `Quick
              test_skip_quarantines_predicted_points;
            Alcotest.test_case "all points failed raises" `Quick
              test_all_points_failed_raises;
            Alcotest.test_case "skip stats ≡ survivor subset" `Quick
              test_skip_stats_match_survivor_subset;
          ] );
      ( "checkpoint",
        [
          Alcotest.test_case "abort + resume ≡ uninterrupted" `Quick
            test_checkpoint_resume_identical;
          Alcotest.test_case "mismatch and corruption rejected" `Quick
            test_checkpoint_rejects_mismatch;
          Alcotest.test_case "missing checkpoint is a fresh start" `Quick
            test_resume_missing_is_fresh;
          Alcotest.test_case "failed points survive resume" `Quick
            test_checkpoint_preserves_failed_points;
        ] );
    ]
