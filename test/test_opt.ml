(* Tests for the optimizer subsystem: exact adjoint gradients against
   central finite differences on random RC/RLC ladders (the qcheck
   property backing the sensitivity machinery), sizing trajectory
   monotonicity and determinism, yield re-centering improvement, the
   request/report wire layer (round-trips, jobs-invariance,
   checkpoint/resume byte-identity), the non-convergence error kinds,
   and the cache gc sweeping orphaned [.opt] trajectories. *)

module Sym = Symbolic.Symbol
module Netlist = Circuit.Netlist
module Builders = Circuit.Builders
module Model = Awesymbolic.Model
module Cache = Awesymbolic.Cache
module Dist = Sweep.Dist
module Plan = Sweep.Plan
module Engine = Sweep.Engine
module Json = Obs.Json
module Err = Awesym_error
module Objective = Opt.Objective
module Sizing = Opt.Sizing
module Recenter = Opt.Recenter
module Request = Opt.Request

let fig1_c1_g2 () =
  let nl = Builders.fig1 () in
  let nl = Netlist.mark_symbolic nl "C1" (Sym.intern "C1") in
  Netlist.mark_symbolic nl "G2" (Sym.intern "G2")

let fig1_model = lazy (Model.build ~order:2 (fig1_c1_g2 ()))

let axes_around ?(pct = 50.0) model =
  let nominals = Model.nominal_values model in
  Array.to_list
    (Array.mapi
       (fun k s ->
         { Plan.name = Sym.name s;
           dist = Dist.around ~nominal:nominals.(k) ~pct })
       (Model.symbols model))

(* ------------------------------------------------------------------ *)
(* Gradients vs central finite differences on random ladders.

   The analytic gradient path (compiled sensitivity Jacobian + chain
   rule / moment-space differencing, see {!Opt.Objective}) must agree
   with a central difference of the objective value itself.  Decks are
   random RC and RLC ladders with element values spread over several
   decades and one or two elements marked symbolic, so the Jacobian
   columns cover both conductance- and capacitance-like scales. *)

(* All randomness is drawn as small ints and mapped to floats here, so
   qcheck's integer shrinkers apply and counterexamples print as the
   actual deck parameters. *)
let gen_ladder_case =
  QCheck2.Gen.(
    let unit k = float_of_int k /. 100.0 in
    let* rlc = bool in
    let* sections = int_range 1 3 in
    let* ru = int_range 0 100 in
    let* cu = int_range 0 100 in
    let* lu = int_range 0 100 in
    let* two_syms = bool in
    let* sym_section = int_range 1 sections in
    (* Evaluate slightly off-nominal so nothing sits on a symmetry. *)
    let* s0 = int_range 0 100 in
    let* s1 = int_range 0 100 in
    let* aw = int_range 0 50 in
    let r = 10.0 *. (1000.0 ** unit ru) in
    let c = 1e-12 *. (1000.0 ** unit cu) in
    let l = 1e-9 *. (1000.0 ** unit lu) in
    let scale0 = 0.8 +. (0.4 *. unit s0) in
    let scale1 = 0.8 +. (0.4 *. unit s1) in
    let area_w = unit aw in
    return (rlc, sections, r, c, l, two_syms, sym_section, scale0, scale1, area_w))

let prop_grad_matches_fd =
  QCheck2.Test.make ~name:"gradient matches central finite differences"
    ~count:60 gen_ladder_case
    (fun (rlc, sections, r, c, l, two_syms, sym_section, scale0, scale1, area_w)
    ->
      let nl =
        if rlc then Builders.rlc_ladder ~sections ~r ~l ~c ()
        else Builders.rc_ladder ~sections ~r ~c ()
      in
      let cname = Printf.sprintf "C%d" sym_section in
      let rname = Printf.sprintf "R%d" sym_section in
      let nl = Netlist.mark_symbolic nl cname (Sym.intern cname) in
      let nl =
        if two_syms then Netlist.mark_symbolic nl rname (Sym.intern rname)
        else nl
      in
      match Model.build ~order:(if rlc then 3 else 2) nl with
      | exception Numeric.Lu.Singular _ ->
        (* A degenerate parameter combination (e.g. extreme L/C ratios
           at order 3) has no model to differentiate — skip, the same
           way the sweep engine quarantines singular points. *)
        true
      | model ->
      let objective =
        Objective.make
          ~goal:(Objective.Minimize Engine.Elmore_delay)
          ~area_weight:area_w ()
      in
      let n = Array.length (Model.symbols model) in
      let free = Array.init n Fun.id in
      let v = Array.copy (Model.nominal_values model) in
      v.(0) <- v.(0) *. scale0;
      if n > 1 then v.(1) <- v.(1) *. scale1;
      let f0, g = Objective.value_grad objective model ~free v in
      if not (Float.is_finite f0) then
        QCheck2.Test.fail_report "objective not finite at the test point";
      Array.iteri
        (fun j gj ->
          let h = 1e-5 *. Float.abs v.(j) in
          let probe x =
            let w = Array.copy v in
            w.(j) <- x;
            Objective.value objective model ~free w
          in
          let fd = (probe (v.(j) +. h) -. probe (v.(j) -. h)) /. (2.0 *. h) in
          let scale = Float.max (Float.abs fd) (Float.abs gj) in
          let err = Float.abs (gj -. fd) in
          if Float.is_nan fd || err > 1e-3 *. Float.max scale 1e-30 then
            QCheck2.Test.fail_reportf
              "grad[%d] = %.12g but central difference = %.12g (deck %s x%d)"
              j gj fd
              (if rlc then "rlc" else "rc")
              sections)
        g;
      true)

(* ------------------------------------------------------------------ *)
(* Sizing: trajectory shape and determinism *)

let sizing_config ?(restarts = 2) ?(max_iters = 30) model =
  let objective =
    Objective.make ~goal:(Objective.Minimize Engine.Elmore_delay) ()
  in
  {
    (Sizing.default_config ~axes:(axes_around model) objective) with
    Sizing.restarts;
    max_iters;
  }

let test_sizing_monotone () =
  let model = Lazy.force fig1_model in
  let result = Sizing.run model (sizing_config model) in
  Alcotest.(check int) "one nominal + two seeded starts" 3
    (List.length result.Sizing.runs);
  List.iter
    (fun (run : Sizing.restart) ->
      let fs = List.map (fun s -> s.Sizing.f) run.Sizing.steps in
      let rec monotone = function
        | a :: (b :: _ as rest) ->
          if b > a then
            Alcotest.failf "restart %d: objective rose %.12g -> %.12g"
              run.Sizing.index a b;
          monotone rest
        | _ -> ()
      in
      monotone fs;
      (match fs with
      | last_first :: _ ->
        Alcotest.(check (float 0.0))
          "head of trajectory is the starting objective" last_first
          (match run.Sizing.steps with s :: _ -> s.Sizing.f | [] -> nan)
      | [] -> Alcotest.fail "empty trajectory");
      if run.Sizing.evals <= 0 then Alcotest.fail "no evaluations recorded")
    result.Sizing.runs;
  (* The best index really is the argmin of final objectives. *)
  let finals = List.map (fun r -> r.Sizing.final_f) result.Sizing.runs in
  let best_f = List.nth finals result.Sizing.best in
  List.iter
    (fun f -> if f < best_f then Alcotest.fail "best is not the argmin")
    finals;
  (* Determinism: the same config replays to the same trajectories. *)
  let again = Sizing.run model (sizing_config model) in
  List.iter2
    (fun (a : Sizing.restart) (b : Sizing.restart) ->
      Alcotest.(check int) "same iters" a.Sizing.iters b.Sizing.iters;
      Alcotest.(check bool) "same final bits" true
        (Int64.bits_of_float a.Sizing.final_f
        = Int64.bits_of_float b.Sizing.final_f))
    result.Sizing.runs again.Sizing.runs

(* ------------------------------------------------------------------ *)
(* Yield re-centering: strict improvement on a binding spec *)

let test_yield_improves () =
  let model = Lazy.force fig1_model in
  let nominals = Model.nominal_values model in
  (* A spec that roughly half the seed population fails: Elmore delay
     no worse than its nominal value.  Re-centering (with shrink) must
     concentrate the distributions in the passing region. *)
  let e0 =
    match Engine.point_measures model [ Engine.Elmore_delay ] nominals with
    | [ e ] -> e
    | _ -> Alcotest.fail "expected one measure"
  in
  let axes =
    Array.to_list
      (Array.mapi
         (fun k s ->
           { Plan.name = Sym.name s;
             dist =
               Dist.normal ~mean:nominals.(k) ~std:(0.15 *. nominals.(k)) })
         (Model.symbols model))
  in
  let specs = [ { Engine.measure = Engine.Elmore_delay; bound = Engine.Le e0 } ] in
  let config =
    {
      (Recenter.default_config ~axes ~specs) with
      Recenter.points = 400;
      iters = 3;
      shrink = 0.8;
    }
  in
  let result = Recenter.run model config in
  let y0 = Recenter.initial_yield result in
  let y1 = Recenter.final_yield result in
  if y0 <= 0.05 || y0 >= 0.95 then
    Alcotest.failf "spec is not binding: initial yield %.3f" y0;
  if y1 <= y0 then Alcotest.failf "yield did not improve: %.3f -> %.3f" y0 y1;
  Alcotest.(check int) "seed sweep + 3 iterations" 4
    (List.length result.Recenter.history)

(* ------------------------------------------------------------------ *)
(* Request layer: round-trips, jobs-invariance, checkpoint/resume *)

let yield_request model =
  let nominals = Model.nominal_values model in
  let e0 =
    match Engine.point_measures model [ Engine.Elmore_delay ] nominals with
    | [ e ] -> e
    | _ -> Alcotest.fail "expected one measure"
  in
  Request.Yield
    {
      (Recenter.default_config ~axes:(axes_around ~pct:30.0 model)
         ~specs:[ { Engine.measure = Engine.Elmore_delay; bound = Engine.Le e0 } ])
      with
      Recenter.points = 200;
      iters = 2;
    }

let test_request_round_trip () =
  let model = Lazy.force fig1_model in
  let reqs =
    [ Request.Size (sizing_config model); yield_request model ]
  in
  List.iter
    (fun req ->
      let j = Request.to_json req in
      let j2 = Request.to_json (Request.of_json j) in
      Alcotest.(check string) "request JSON round-trips" (Json.to_string j)
        (Json.to_string j2);
      (* The checkpoint key binds the request: distinct requests get
         distinct keys, the same request replays the same key. *)
      Alcotest.(check string) "key is stable" (Request.key model req)
        (Request.key model (Request.of_json j)))
    reqs;
  Alcotest.(check bool) "distinct requests, distinct keys" false
    (Request.key model (List.nth reqs 0) = Request.key model (List.nth reqs 1));
  (* A report that does not carry the schema is refused. *)
  match Request.of_json (Json.Obj [ ("schema", Json.Str "bogus/1") ]) with
  | exception Err.Error e ->
    Alcotest.(check string) "classified invalid_request" "invalid_request"
      (Err.kind_name e.Err.kind)
  | _ -> Alcotest.fail "schema mismatch must raise"

let test_report_jobs_invariant () =
  let model = Lazy.force fig1_model in
  let req = yield_request model in
  let r1 = Json.to_string (Request.run ~jobs:1 model req) in
  let r4 = Json.to_string (Request.run ~jobs:4 model req) in
  Alcotest.(check string) "report bytes identical across jobs" r1 r4

(* Rewrite [path] as the checkpoint an interrupted run would have left
   behind after its first [keep] completed units: same schema / key /
   mode, the unit list truncated, no embedded result. *)
let truncate_checkpoint path keep =
  let doc =
    match Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
    | Ok j -> j
    | Error m -> Alcotest.failf "unreadable checkpoint: %s" m
  in
  let units =
    match Json.member "units" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "checkpoint has no units"
  in
  if List.length units < keep then
    Alcotest.failf "checkpoint has %d units, cannot keep %d"
      (List.length units) keep;
  let head =
    List.filter_map
      (fun f -> Option.map (fun v -> (f, v)) (Json.member f doc))
      [ "schema"; "kind"; "key"; "mode" ]
  in
  Json.to_file path
    (Json.Obj
       (head @ [ ("units", Json.List (List.filteri (fun i _ -> i < keep) units)) ]))

(* A yield request whose re-centering actually moves the axes (normal
   dists + shrink), so a resume that forgot the persisted re-centering
   would sweep the wrong axes and change the report bytes. *)
let binding_yield_request ?(iters = 3) model =
  let nominals = Model.nominal_values model in
  let e0 =
    match Engine.point_measures model [ Engine.Elmore_delay ] nominals with
    | [ e ] -> e
    | _ -> Alcotest.fail "expected one measure"
  in
  let axes =
    Array.to_list
      (Array.mapi
         (fun k s ->
           { Plan.name = Sym.name s;
             dist = Dist.normal ~mean:nominals.(k) ~std:(0.15 *. nominals.(k)) })
         (Model.symbols model))
  in
  Request.Yield
    {
      (Recenter.default_config ~axes
         ~specs:
           [ { Engine.measure = Engine.Elmore_delay; bound = Engine.Le e0 } ])
      with
      Recenter.points = 300;
      iters;
      shrink = 0.8;
    }

let test_checkpoint_resume_midrun () =
  let model = Lazy.force fig1_model in
  let req = binding_yield_request model in
  let path = Filename.temp_file "awesym_opt" ".opt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let full = Json.to_string (Request.run ~checkpoint:path model req) in
  (* Interrupt after each prefix of completed iterations in turn: the
     resumed run must re-sweep the *persisted re-centered* axes, not the
     interrupted iteration's own, and land on the same bytes. *)
  List.iter
    (fun keep ->
      truncate_checkpoint path keep;
      let resumed =
        Json.to_string (Request.run ~checkpoint:path ~resume:true model req)
      in
      Alcotest.(check string)
        (Printf.sprintf "resume after %d iterations is byte-identical" keep)
        full resumed)
    [ 1; 2; 3 ]

let test_checkpoint_resume_stopped () =
  let model = Lazy.force fig1_model in
  (* An unsatisfiable spec: no point ever passes, so the run stops after
     the seed sweep with iterations still in budget.  A resume from that
     interrupted checkpoint must reconstruct the stop, not keep going. *)
  let req =
    match binding_yield_request ~iters:3 model with
    | Request.Yield cfg ->
      Request.Yield
        {
          cfg with
          Recenter.specs =
            [ { Engine.measure = Engine.Elmore_delay; bound = Engine.Le (-1.0) } ];
        }
    | _ -> assert false
  in
  let path = Filename.temp_file "awesym_opt" ".opt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let full = Request.run ~checkpoint:path model req in
  (match Json.member "iterations" full with
  | Some (Json.List l) ->
    Alcotest.(check int) "stopped after the seed sweep" 1 (List.length l)
  | _ -> Alcotest.fail "report has no iterations");
  truncate_checkpoint path 1;
  let resumed =
    Json.to_string (Request.run ~checkpoint:path ~resume:true model req)
  in
  Alcotest.(check string) "resumed stopped run is byte-identical"
    (Json.to_string full) resumed

let test_checkpoint_resume () =
  let model = Lazy.force fig1_model in
  let req = Request.Size (sizing_config ~restarts:1 ~max_iters:10 model) in
  let path = Filename.temp_file "awesym_opt" ".opt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let full = Json.to_string (Request.run ~checkpoint:path model req) in
  (* The final checkpoint write embeds the finished report and the key. *)
  let ck =
    match Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
    | Ok j -> j
    | Error m -> Alcotest.failf "unreadable checkpoint: %s" m
  in
  (match Json.member "key" ck with
  | Some (Json.Str k) ->
    Alcotest.(check string) "checkpoint key matches" (Request.key model req) k
  | _ -> Alcotest.fail "checkpoint carries no key");
  (* Resuming from the finished checkpoint recomputes nothing and
     reproduces the report byte for byte. *)
  let resumed =
    Json.to_string (Request.run ~checkpoint:path ~resume:true model req)
  in
  Alcotest.(check string) "resumed report byte-identical" full resumed

(* ------------------------------------------------------------------ *)
(* Non-convergence: statuses, error kinds, require-convergence *)

let test_require_convergence () =
  let model = Lazy.force fig1_model in
  (* One accepted iteration against an unreachable tolerance: the best
     restart ends [Max_iters], and [require] escalates that status to
     the matching classified error. *)
  let cfg =
    { (sizing_config ~restarts:0 ~max_iters:1 model) with Sizing.tol = 1e-300 }
  in
  let req = Request.Size cfg in
  let report = Request.run model req in
  (match Json.member "status" report with
  | Some (Json.Str s) -> Alcotest.(check string) "status" "max_iters" s
  | _ -> Alcotest.fail "report has no status");
  match Request.run ~require:true model req with
  | exception Err.Error e ->
    Alcotest.(check string) "kind" "max_iters" (Err.kind_name e.Err.kind)
  | _ -> Alcotest.fail "require:true must raise on max_iters"

let test_error_kinds () =
  List.iter
    (fun (kind, name) ->
      Alcotest.(check string) "kind_name" name (Err.kind_name kind);
      match Err.kind_of_name name with
      | Some k ->
        Alcotest.(check string) "kind_of_name inverts" name (Err.kind_name k)
      | None -> Alcotest.failf "kind_of_name %s" name)
    [ (Err.No_descent, "no_descent"); (Err.Max_iters, "max_iters") ];
  List.iter
    (fun status ->
      let name = Sizing.status_name status in
      match Sizing.status_of_name name with
      | Some s ->
        Alcotest.(check string) "status round-trips" name (Sizing.status_name s)
      | None -> Alcotest.failf "status_of_name %s" name)
    [ Sizing.Converged; Sizing.Max_iters; Sizing.No_descent ]

(* ------------------------------------------------------------------ *)
(* Cache gc sweeps orphaned .opt trajectories with the other entries *)

let test_cache_gc_opt () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "awesym-opt-gc-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Cache.ensure_dir dir;
  let put name bytes age_s =
    let p = Filename.concat dir name in
    let oc = open_out_bin p in
    output_string oc (String.make bytes 'o');
    close_out oc;
    let t = Unix.gettimeofday () -. age_s in
    Unix.utimes p t t;
    p
  in
  let old_opt = put "abandoned-sizing.opt" 1000 300.0 in
  let old_awm = put "old.awm" 1000 200.0 in
  let new_opt = put "live-yield.opt" 1000 10.0 in
  let stats = Cache.gc ~dir ~max_bytes:1500 () in
  Alcotest.(check int) "evicted the two oldest" 2 stats.Cache.deleted;
  Alcotest.(check bool) "old .opt swept" false (Sys.file_exists old_opt);
  Alcotest.(check bool) "old .awm swept" false (Sys.file_exists old_awm);
  Alcotest.(check bool) "fresh .opt kept" true (Sys.file_exists new_opt)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "opt"
    [
      ( "gradients",
        [ QCheck_alcotest.to_alcotest prop_grad_matches_fd ] );
      ( "sizing",
        [
          quick "trajectory monotone, best is argmin, deterministic"
            test_sizing_monotone;
          quick "require-convergence classifies max_iters"
            test_require_convergence;
        ] );
      ( "yield",
        [ quick "re-centering strictly improves a binding spec"
            test_yield_improves ] );
      ( "request",
        [
          quick "request JSON and key round-trip" test_request_round_trip;
          quick "report bytes invariant across jobs" test_report_jobs_invariant;
          quick "checkpoint resume is byte-identical" test_checkpoint_resume;
          quick "mid-run interrupt/resume is byte-identical"
            test_checkpoint_resume_midrun;
          quick "resume reconstructs the no-passing-points stop"
            test_checkpoint_resume_stopped;
        ] );
      ( "errors", [ quick "optimizer error kinds round-trip" test_error_kinds ] );
      ( "cache", [ quick "gc sweeps orphaned .opt files" test_cache_gc_opt ] );
    ]
