(* Tests for the serving daemon: wire-protocol round-trips, malformed
   frame rejection, bit-identity with offline evaluation under concurrent
   clients, deadline expiry, backpressure, graceful drain, and the cache
   GC the daemon runs at startup.

   The in-process harness spawns the server loop in its own domain and
   drives it through real Unix-domain sockets with the blocking client —
   the same code paths production takes, minus the process boundary.
   Drain tests flip the same [stop] ref the SIGTERM handler flips. *)

module Protocol = Serve.Protocol
module Json = Obs.Json
module Err = Awesym_error
module Model = Awesymbolic.Model
module Netlist = Circuit.Netlist

let bits = Int64.bits_of_float

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* Compiled-model fixture: fig1 with two symbols, saved as an artifact. *)
let fixture =
  lazy
    (let nl = Circuit.Builders.fig1 () in
     let nl = Netlist.mark_symbolic nl "C1" (Symbolic.Symbol.intern "C1") in
     let nl = Netlist.mark_symbolic nl "G2" (Symbolic.Symbol.intern "G2") in
     let model = Model.build ~order:2 nl in
     let dir = temp_dir "awesym_serve_model" in
     let path = Filename.concat dir "fig1.awm" in
     Model.save model path;
     (model, path))

(* A second artifact with different bytes (order 3) so sharding tests
   can spread distinct digests across worker domains. *)
let fixture3 =
  lazy
    (let nl = Circuit.Builders.fig1 () in
     let nl = Netlist.mark_symbolic nl "C1" (Symbolic.Symbol.intern "C1") in
     let nl = Netlist.mark_symbolic nl "G2" (Symbolic.Symbol.intern "G2") in
     let model = Model.build ~order:3 nl in
     let dir = temp_dir "awesym_serve_model3" in
     let path = Filename.concat dir "fig1o3.awm" in
     Model.save model path;
     (model, path))

(* ------------------------------------------------------------------ *)
(* Protocol: bit-exact floats and codec round-trips *)

let special_floats =
  [ 0.0; -0.0; 1.0; -1.0; Float.pi; 1e-300; -1e300; Float.epsilon;
    Float.infinity; Float.neg_infinity; Float.nan; Float.min_float;
    Float.max_float ]

let test_hex_float_round_trip () =
  List.iter
    (fun v ->
      match Protocol.float_of_hex (Protocol.hex_of_float v) with
      | Some v' ->
        Alcotest.(check int64) "bits preserved" (bits v) (bits v')
      | None -> Alcotest.fail "hex round-trip refused its own encoding")
    special_floats;
  Alcotest.(check (option (float 0.0))) "short rejected" None
    (Protocol.float_of_hex "abc");
  Alcotest.(check (option (float 0.0))) "non-hex rejected" None
    (Protocol.float_of_hex "zzzzzzzzzzzzzzzz")

let gen_weird_float =
  QCheck2.Gen.(
    oneof [ float; oneofl special_floats; map Int64.float_of_bits int64 ])

let gen_points =
  QCheck2.Gen.(
    let* rows = int_range 0 4 in
    let* cols = int_range 1 3 in
    array_repeat rows (array_repeat cols gen_weird_float))

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Ping;
        return Protocol.Stats;
        return Protocol.Metrics;
        return Protocol.Shutdown;
        map (fun n -> Protocol.Trace n) nat;
        map (fun m -> Protocol.Info m) string_printable;
        (let* model = string_printable in
         let* points = gen_points in
         let* deadline_ms = option (map Float.abs float) in
         return (Protocol.Eval { Protocol.model; points; deadline_ms }));
        (let* sc_model = string_printable in
         let* sc_seed = nat in
         let* sc_block = int_range 1 512 in
         let* sc_measures = small_list string_printable in
         let* sc_specs = small_list string_printable in
         let* sc_policy = oneofl [ "fail_fast"; "skip"; "retry:2" ] in
         let* sc_chunk = nat in
         let* sc_key = string_printable in
         let* sc_deadline_ms = option (map Float.abs float) in
         let* pts = int_range 1 64 in
         return
           (Protocol.Sweep_chunk
              {
                Protocol.sc_model;
                sc_plan =
                  Json.Obj
                    [
                      ("kind", Json.Str "monte-carlo");
                      ("points", Json.Num (float_of_int pts));
                    ];
                sc_seed;
                sc_block;
                sc_measures;
                sc_specs;
                sc_policy;
                sc_chunk;
                sc_key;
                sc_deadline_ms;
              }));
        (let* op_model = string_printable in
         let* op_deadline_ms = option (map Float.abs float) in
         let* seed = nat in
         let* v = gen_weird_float in
         return
           (Protocol.Optimize
              {
                Protocol.op_model;
                op_request =
                  Json.Obj
                    [
                      ("schema", Json.Str "awesymbolic-opt/1");
                      ("mode", Json.Str "size");
                      ("seed", Json.Num (float_of_int seed));
                      ("step_hex", Json.Str (Protocol.hex_of_float v));
                    ];
                op_deadline_ms;
              }));
      ])

let gen_id =
  QCheck2.Gen.(
    option
      (oneof
         [ map (fun n -> Json.Num (float_of_int n)) nat;
           map (fun s -> Json.Str s) string_printable ]))

let gen_trace =
  QCheck2.Gen.(
    option
      (let* trace_id = string_printable in
       let* parent_span = string_printable in
       return { Protocol.trace_id; parent_span }))

(* encode∘decode = id, compared through the canonical serialization —
   floats travel as hex bit patterns, so string equality is bit
   equality. *)
let prop_request_round_trip =
  QCheck2.Test.make ~name:"protocol request round trip" ~count:200
    QCheck2.Gen.(triple gen_id gen_trace gen_request)
    (fun (id, trace, req) ->
      let j = Protocol.request_to_json ?id ?trace req in
      match Protocol.request_of_json j with
      | Error e -> QCheck2.Test.fail_report (Err.to_string e)
      | Ok (id', trace', req') ->
        Json.to_string j
        = Json.to_string (Protocol.request_to_json ?id:id' ?trace:trace' req'))

let gen_response =
  QCheck2.Gen.(
    let hex16 =
      map (fun v -> Protocol.hex_of_float v) gen_weird_float
    in
    ignore hex16;
    oneof
      [
        return Protocol.R_draining;
        map (fun kvs -> Protocol.R_pong kvs)
          (small_list (pair string_printable string_printable));
        (let* digest = string_printable in
         let* order = int_range 1 8 in
         let* nominals = array_repeat 3 gen_weird_float in
         return
           (Protocol.R_info
              { Protocol.digest; order; symbols = [| "a"; "b"; "c" |]; nominals }));
        (let* digest = string_printable in
         let* order = int_range 1 8 in
         let* moments = gen_points in
         return (Protocol.R_eval { Protocol.digest; order; moments }));
        return (Protocol.R_stats (Json.Obj [ ("x", Json.Num 1.0) ]));
        map (fun text -> Protocol.R_metrics text) string_printable;
        map
          (fun ss ->
            Protocol.R_traces
              (List.map (fun s -> Json.Obj [ ("trace_id", Json.Str s) ]) ss))
          (small_list string_printable);
        (let* kind = oneofl Err.all_kinds in
         let* msg = string_printable in
         return (Protocol.R_error (Err.make kind ~where:"serve.test" msg)));
        (let* cr_digest = string_printable in
         let* cr_key = string_printable in
         let* cr_chunk = nat in
         let* v = gen_weird_float in
         return
           (Protocol.R_chunk
              {
                Protocol.cr_digest;
                cr_key;
                cr_chunk;
                cr_record =
                  Json.Obj
                    [
                      ("lo", Json.Num 0.0);
                      ("len", Json.Num 1.0);
                      ( "vals",
                        Json.List
                          [ Json.List [ Json.Str (Protocol.hex_of_float v) ] ]
                      );
                      ("failed", Json.List []);
                    ];
              }));
        (let* or_digest = string_printable in
         let* status = oneofl [ "converged"; "max_iters"; "no_descent" ] in
         let* v = gen_weird_float in
         return
           (Protocol.R_optimize
              {
                Protocol.or_digest;
                or_report =
                  Json.Obj
                    [
                      ("schema", Json.Str "awesymbolic-opt/1");
                      ("mode", Json.Str "size");
                      ("status", Json.Str status);
                      ("objective_hex", Json.Str (Protocol.hex_of_float v));
                    ];
              }));
      ])

let prop_response_round_trip =
  QCheck2.Test.make ~name:"protocol response round trip" ~count:200
    QCheck2.Gen.(pair gen_id gen_response)
    (fun (id, resp) ->
      let j = Protocol.response_to_json ?id resp in
      match Protocol.response_of_json j with
      | Error e -> QCheck2.Test.fail_report (Err.to_string e)
      | Ok (id', resp') ->
        Json.to_string j = Json.to_string (Protocol.response_to_json ?id:id' resp'))

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_pop_frame_incremental () =
  let payload = {|{"schema":"awesymbolic-serve/1","op":"ping"}|} in
  let wire = Protocol.frame payload ^ Protocol.frame "second" in
  let buf = Buffer.create 16 in
  (* Deliver byte by byte: nothing pops until the first frame completes. *)
  let first = Protocol.frame payload in
  String.iteri
    (fun i c ->
      if i < String.length first - 1 then begin
        Buffer.add_char buf c;
        match Protocol.pop_frame buf with
        | `Need_more -> ()
        | _ -> Alcotest.fail "popped before the frame was complete"
      end)
    wire;
  Buffer.add_substring buf wire (String.length first - 1)
    (String.length wire - String.length first + 1);
  (match Protocol.pop_frame buf with
  | `Frame p -> Alcotest.(check string) "first payload" payload p
  | _ -> Alcotest.fail "first frame should pop");
  match Protocol.pop_frame buf with
  | `Frame p -> Alcotest.(check string) "second payload" "second" p
  | _ -> Alcotest.fail "second frame should pop"

let test_pop_frame_oversized () =
  let buf = Buffer.create 8 in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Protocol.max_frame + 1));
  Buffer.add_bytes buf header;
  match Protocol.pop_frame buf with
  | `Oversized n -> Alcotest.(check int) "reported size" (Protocol.max_frame + 1) n
  | _ -> Alcotest.fail "oversized prefix must be rejected"

let test_read_frame_truncated () =
  (* A peer that dies mid-frame must read as [`Closed], not hang or
     return a short payload. *)
  let r, w = Unix.pipe () in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 100l;
  ignore (Unix.write w header 0 4);
  ignore (Unix.write_substring w "only ten b" 0 10);
  Unix.close w;
  (match Protocol.read_frame r with
  | Error `Closed -> ()
  | Error (`Oversized _) -> Alcotest.fail "truncated read as oversized"
  | Ok _ -> Alcotest.fail "truncated frame must not decode");
  Unix.close r

let expect_parse_error = function
  | Error e when e.Err.kind = Err.Parse -> ()
  | Error e -> Alcotest.failf "wrong kind: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "malformed input must be rejected"

let test_garbage_requests_rejected () =
  let decode s =
    match Json.of_string s with
    | Error _ -> Alcotest.fail "fixture JSON must parse"
    | Ok j -> Protocol.request_of_json j
  in
  expect_parse_error (decode {|{"op":"ping"}|});
  expect_parse_error (decode {|{"schema":"awesymbolic-serve/0","op":"ping"}|});
  expect_parse_error (decode {|{"schema":"awesymbolic-serve/1","op":"mystery"}|});
  expect_parse_error (decode {|{"schema":"awesymbolic-serve/1"}|});
  expect_parse_error
    (decode {|{"schema":"awesymbolic-serve/1","op":"eval","model":"m"}|});
  expect_parse_error
    (decode
       {|{"schema":"awesymbolic-serve/1","op":"eval","model":"m","points":[["xyz"]]}|})

(* ------------------------------------------------------------------ *)
(* In-process server harness.  [sock] passed to [f] is the daemon's
   resolved address in --listen spelling (unix:PATH or tcp:HOST:PORT),
   which [Client.connect] parses — so the same harness exercises both
   transports. *)

let with_server ?batch ?(max_models = 8) ?(workers = 1) ?replicas ?admission
    ?trace_log ?(tcp = false) f =
  let batch =
    match batch with Some b -> b | None -> Serve.Batcher.default_config
  in
  let dir = temp_dir "awesym_serve_sock" in
  let listen =
    if tcp then Serve.Transport.Tcp ("127.0.0.1", 0)
    else Serve.Transport.Unix_sock (Filename.concat dir "s.sock")
  in
  let base = Serve.Server.default_config ~listen in
  let config =
    {
      base with
      Serve.Server.batch;
      max_models;
      workers;
      replicas = (match replicas with Some r -> r | None -> workers);
      admission =
        (match admission with
        | Some a -> a
        | None -> base.Serve.Server.admission);
      cache_gc_bytes = None;
      trace_log;
    }
  in
  let t = Serve.Server.create config in
  let sock = Serve.Transport.to_string (Serve.Server.bound_addr t) in
  let stop = ref false in
  let loop = Domain.spawn (fun () -> while Serve.Server.step t ~stop do () done) in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Domain.join loop;
      Serve.Server.shutdown t)
    (fun () -> f ~sock ~stop)

let client sock =
  match Serve.Client.connect sock with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Err.to_string e)

let ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Err.to_string e)

let check_moments_match model points (r : Protocol.eval_result) =
  Array.iteri
    (fun i pt ->
      let expected = Model.eval_moments model pt in
      Alcotest.(check int) "moment count" (Array.length expected)
        (Array.length r.Protocol.moments.(i));
      Array.iteri
        (fun j m ->
          if bits m <> bits expected.(j) then
            Alcotest.failf "point %d moment %d: served %h <> offline %h" i j m
              expected.(j))
        r.Protocol.moments.(i))
    points

let test_ping_and_info () =
  let model, path = Lazy.force fixture in
  with_server @@ fun ~sock ~stop:_ ->
  let c = client sock in
  let versions = ok "ping" (Serve.Client.ping c) in
  Alcotest.(check (option string)) "serve schema advertised"
    (Some Protocol.schema)
    (List.assoc_opt "serve" versions);
  let info = ok "info" (Serve.Client.info c path) in
  Alcotest.(check int) "order" (Model.order model) info.Protocol.order;
  Alcotest.(check (array string)) "symbols"
    (Array.map Symbolic.Symbol.name (Model.symbols model))
    info.Protocol.symbols;
  (* Same bytes under a second path = same registry identity. *)
  let copy = Filename.concat (Filename.dirname path) "copy.awm" in
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin copy (fun oc -> Out_channel.output_string oc data);
  let info2 = ok "info copy" (Serve.Client.info c copy) in
  Alcotest.(check string) "content-checksum identity" info.Protocol.digest
    info2.Protocol.digest;
  (match Serve.Client.info c (Filename.concat (Filename.dirname path) "no.awm") with
  | Error e when e.Err.kind = Err.Invalid_request -> ()
  | Error e -> Alcotest.failf "wrong kind for missing artifact: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "missing artifact must error");
  Serve.Client.close c

(* The acceptance criterion: concurrent clients, random batch shapes,
   every response bit-identical to offline evaluation — at every worker
   count and over both transports. *)
let concurrent_bit_identity ~workers ~tcp () =
  let model, path = Lazy.force fixture in
  let nominals = Model.nominal_values model in
  with_server ~workers ~tcp @@ fun ~sock ~stop:_ ->
  let nclients = 4 and iters = 15 in
  let worker ci =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| 0xbeef; ci |] in
        let c = client sock in
        let out = ref [] in
        for _ = 1 to iters do
          let n = 1 + Random.State.int rng 4 in
          let points =
            Array.init n (fun _ ->
                Array.map
                  (fun nom -> nom *. (0.5 +. Random.State.float rng 1.0))
                  nominals)
          in
          let r = ok "eval" (Serve.Client.eval c ~model:path points) in
          out := (points, r) :: !out
        done;
        Serve.Client.close c;
        !out)
  in
  let domains = List.init nclients worker in
  let results = List.concat_map Domain.join domains in
  Alcotest.(check int) "all requests answered" (nclients * iters)
    (List.length results);
  List.iter (fun (points, r) -> check_moments_match model points r) results

let test_concurrent_clients_bit_identical =
  concurrent_bit_identity ~workers:1 ~tcp:false

let test_multi_worker_bit_identical =
  concurrent_bit_identity ~workers:4 ~tcp:false

let test_tcp_bit_identical = concurrent_bit_identity ~workers:2 ~tcp:true

let test_deadline_expiry () =
  let _, path = Lazy.force fixture in
  (* A long linger so the deadline, not the linger, triggers the flush. *)
  let batch =
    { Serve.Batcher.max_batch = 4096; linger_s = 5.0; max_queue = 16 }
  in
  with_server ~batch @@ fun ~sock ~stop:_ ->
  let c = client sock in
  (* A negative relative deadline is expired on arrival, deterministically
     — a deadline of 0 can survive if admission and flush land on the
     same clock tick. *)
  (match Serve.Client.eval c ~deadline_ms:(-1.0) ~model:path [| [| 1.0; 1.0 |] |] with
  | Error e when e.Err.kind = Err.Timeout -> ()
  | Error e -> Alcotest.failf "wrong kind: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "an already-expired deadline must answer timeout");
  Serve.Client.close c

let queue_depth c =
  match ok "stats" (Serve.Client.stats c) with
  | s -> (
    match Json.member "queue_depth" s with
    | Some (Json.Num d) -> int_of_float d
    | _ -> Alcotest.fail "stats without queue_depth")

let rec wait_for_depth c want tries =
  if tries = 0 then Alcotest.failf "queue never reached depth %d" want
  else if queue_depth c >= want then ()
  else begin
    Unix.sleepf 0.02;
    wait_for_depth c want (tries - 1)
  end

let test_backpressure_overload () =
  let model, path = Lazy.force fixture in
  let batch =
    { Serve.Batcher.max_batch = 4096; linger_s = 10.0; max_queue = 1 }
  in
  with_server ~batch @@ fun ~sock ~stop ->
  let point = [| Model.nominal_values model |] in
  (* First request parks in the queue (10 s linger keeps it there). *)
  let parked =
    Domain.spawn (fun () ->
        let c = client sock in
        let r = Serve.Client.eval c ~model:path point in
        Serve.Client.close c;
        r)
  in
  let c = client sock in
  wait_for_depth c 1 200;
  (* Queue full: the next admission is load-shed, not buffered. *)
  (match Serve.Client.eval c ~model:path point with
  | Error e when e.Err.kind = Err.Overloaded -> ()
  | Error e -> Alcotest.failf "wrong kind: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "a full queue must shed load");
  Serve.Client.close c;
  (* Drain: the parked request still completes, correctly. *)
  stop := true;
  let r = ok "parked eval" (Domain.join parked) in
  check_moments_match model point r

(* SIGTERM drain loses zero in-flight requests: park several requests
   behind a long linger, flip the stop ref (exactly what the SIGTERM
   handler does), and require every parked client to get a correct
   response before the loop exits. *)
let test_drain_completes_in_flight () =
  let model, path = Lazy.force fixture in
  let nominals = Model.nominal_values model in
  let batch =
    { Serve.Batcher.max_batch = 4096; linger_s = 10.0; max_queue = 64 }
  in
  with_server ~batch @@ fun ~sock ~stop ->
  let nclients = 3 in
  let workers =
    List.init nclients (fun ci ->
        Domain.spawn (fun () ->
            let c = client sock in
            let points =
              [| Array.map (fun v -> v *. (1.0 +. (0.1 *. float_of_int ci))) nominals |]
            in
            let r = Serve.Client.eval c ~model:path points in
            Serve.Client.close c;
            (points, r)))
  in
  let c = client sock in
  wait_for_depth c nclients 200;
  Serve.Client.close c;
  stop := true;
  List.iter
    (fun d ->
      let points, r = Domain.join d in
      check_moments_match model points (ok "drained eval" r))
    workers

(* The `shutdown` request takes the same drain path as SIGTERM. *)
let test_shutdown_request_drains () =
  let _, path = Lazy.force fixture in
  with_server @@ fun ~sock ~stop:_ ->
  let c = client sock in
  let r = ok "eval" (Serve.Client.eval c ~model:path [| [| 1.0; 1.0 |] |]) in
  Alcotest.(check int) "answered before shutdown" 1
    (Array.length r.Protocol.moments);
  ok "shutdown" (Serve.Client.shutdown c);
  Serve.Client.close c

(* Multi-worker drain: park requests for two distinct digests across
   four single-replica shards behind a long linger, flip the stop ref,
   and require every parked client to get a correct answer — the
   lose-nothing guarantee must hold when the queues live in worker
   domains, not just in the acceptor. *)
let test_multi_worker_drain () =
  let model2, path2 = Lazy.force fixture in
  let model3, path3 = Lazy.force fixture3 in
  let batch =
    { Serve.Batcher.max_batch = 4096; linger_s = 10.0; max_queue = 64 }
  in
  with_server ~batch ~workers:4 ~replicas:1 @@ fun ~sock ~stop ->
  let jobs =
    [ (model2, path2, 1.0); (model3, path3, 1.05); (model2, path2, 0.95);
      (model3, path3, 1.1) ]
  in
  let workers =
    List.map
      (fun (model, path, scale) ->
        Domain.spawn (fun () ->
            let c = client sock in
            let points =
              [| Array.map (fun v -> v *. scale) (Model.nominal_values model) |]
            in
            let r = Serve.Client.eval c ~model:path points in
            Serve.Client.close c;
            (model, points, r)))
      jobs
  in
  let c = client sock in
  wait_for_depth c (List.length jobs) 200;
  Serve.Client.close c;
  stop := true;
  List.iter
    (fun d ->
      let model, points, r = Domain.join d in
      check_moments_match model points (ok "drained eval" r))
    workers

(* Stats must expose the shard topology: worker count and one
   queue-depth/residency entry per worker. *)
let test_stats_shard_topology () =
  let model, path = Lazy.force fixture in
  with_server ~workers:3 @@ fun ~sock ~stop:_ ->
  let c = client sock in
  let _ = ok "eval" (Serve.Client.eval c ~model:path [| Model.nominal_values model |]) in
  let s = ok "stats" (Serve.Client.stats c) in
  (match Json.member "workers" s with
  | Some (Json.Num n) -> Alcotest.(check int) "workers" 3 (int_of_float n)
  | _ -> Alcotest.fail "stats without workers");
  (match Json.member "transport" s with
  | Some (Json.Str a) ->
    Alcotest.(check bool) "transport spelled with scheme" true
      (String.starts_with ~prefix:"unix:" a)
  | _ -> Alcotest.fail "stats without transport");
  (match Json.member "worker_shards" s with
  | Some (Json.List shards) ->
    Alcotest.(check int) "one entry per worker" 3 (List.length shards);
    List.iter
      (fun sh ->
        match (Json.member "queue_depth" sh, Json.member "resident_models" sh)
        with
        | Some (Json.Num _), Some (Json.Num _) -> ()
        | _ -> Alcotest.fail "shard entry missing gauges")
      shards
  | _ -> Alcotest.fail "stats without worker_shards");
  Serve.Client.close c

(* Tiered admission, gate 1: a connection past its inflight cap sheds
   Overloaded while its parked request still completes on drain.  Driven
   with raw frames because the blocking client cannot pipeline. *)
let test_client_inflight_cap () =
  let model, path = Lazy.force fixture in
  let batch =
    { Serve.Batcher.max_batch = 4096; linger_s = 10.0; max_queue = 64 }
  in
  with_server ~batch ~admission:{ Serve.Admission.per_client_inflight = 1 }
  @@ fun ~sock ~stop ->
  let addr =
    match Serve.Transport.parse sock with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %s" (Err.to_string e)
  in
  let fd =
    match Serve.Transport.connect addr with
    | Ok fd -> fd
    | Error e -> Alcotest.failf "connect: %s" (Err.to_string e)
  in
  let send i =
    Protocol.write_frame fd
      (Json.to_string
         (Protocol.request_to_json ~id:(Json.Num i)
            (Protocol.Eval
               {
                 Protocol.model = path;
                 points = [| Model.nominal_values model |];
                 deadline_ms = None;
               })))
  in
  send 1.0;
  (* parks behind the 10 s linger *)
  send 2.0;
  (* over the cap: must shed immediately *)
  let read_response () =
    match Protocol.read_frame fd with
    | Error _ -> Alcotest.fail "server must answer, not close"
    | Ok payload -> (
      match Json.of_string payload with
      | Error m -> Alcotest.failf "bad response JSON: %s" m
      | Ok j -> (
        match Protocol.response_of_json j with
        | Error e -> Alcotest.failf "bad response: %s" (Err.to_string e)
        | Ok (id, resp) -> (id, resp)))
  in
  (match read_response () with
  | Some (Json.Num id), Protocol.R_error e ->
    Alcotest.(check int) "the second request is the one shed" 2
      (int_of_float id);
    Alcotest.(check string) "kind" "overloaded" (Err.kind_name e.Err.kind)
  | _, Protocol.R_error _ -> Alcotest.fail "shed response must echo its id"
  | _, _ -> Alcotest.fail "the over-cap request must shed");
  stop := true;
  (match read_response () with
  | Some (Json.Num id), Protocol.R_eval _ ->
    Alcotest.(check int) "the parked request drains" 1 (int_of_float id)
  | _ -> Alcotest.fail "the parked request must still answer on drain");
  Unix.close fd

(* A server that dies mid-response (here: after half a length prefix)
   must classify as a clean worker-crash error, never hang. *)
let test_server_death_mid_request () =
  let dir = temp_dir "awesym_dead_server" in
  let sock = Filename.concat dir "dead.sock" in
  let lfd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind lfd (ADDR_UNIX sock);
  Unix.listen lfd 1;
  let srv =
    Domain.spawn (fun () ->
        let fd, _ = Unix.accept lfd in
        let buf = Bytes.create 256 in
        ignore (Unix.read fd buf 0 256);
        (* half a length prefix, then gone *)
        ignore (Unix.write_substring fd "\x00\x00" 0 2);
        Unix.close fd)
  in
  let c = client sock in
  (match Serve.Client.eval c ~model:"anything.awm" [| [| 1.0 |] |] with
  | Error e when e.Err.kind = Err.Worker_crash -> ()
  | Error e -> Alcotest.failf "wrong kind: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "a dead server must not produce a response");
  Serve.Client.close c;
  Domain.join srv;
  Unix.close lfd

(* TCP delivers no message boundaries: a request dribbled in 3-byte
   chunks must still evaluate, and a peer that abandons a half-sent
   frame must not wedge the daemon for anyone else. *)
let test_partial_frames_over_tcp () =
  let model, path = Lazy.force fixture in
  with_server ~tcp:true ~workers:2 @@ fun ~sock ~stop:_ ->
  let addr =
    match Serve.Transport.parse sock with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %s" (Err.to_string e)
  in
  let connect () =
    match Serve.Transport.connect addr with
    | Ok fd -> fd
    | Error e -> Alcotest.failf "connect: %s" (Err.to_string e)
  in
  let wire =
    Protocol.frame
      (Json.to_string
         (Protocol.request_to_json ~id:(Json.Num 7.0)
            (Protocol.Eval
               {
                 Protocol.model = path;
                 points = [| Model.nominal_values model |];
                 deadline_ms = None;
               })))
  in
  (* Split writes: the length prefix itself straddles two chunks. *)
  let fd = connect () in
  let n = String.length wire in
  let rec dribble off =
    if off < n then begin
      let k = Int.min 3 (n - off) in
      ignore (Unix.write_substring fd wire off k);
      Unix.sleepf 0.002;
      dribble (off + k)
    end
  in
  dribble 0;
  (match Protocol.read_frame fd with
  | Error _ -> Alcotest.fail "dribbled frame must still answer"
  | Ok payload -> (
    match Json.of_string payload with
    | Error m -> Alcotest.failf "bad response JSON: %s" m
    | Ok j -> (
      match Protocol.response_of_json j with
      | Ok (Some (Json.Num 7.0), Protocol.R_eval r) ->
        check_moments_match model [| Model.nominal_values model |] r
      | Ok (_, Protocol.R_error e) ->
        Alcotest.failf "dribbled frame answered error: %s" (Err.to_string e)
      | _ -> Alcotest.fail "unexpected reply shape")));
  Unix.close fd;
  (* Truncated: claim a frame, send 6 bytes of it, vanish. *)
  let fd2 = connect () in
  ignore (Unix.write_substring fd2 (String.sub wire 0 6) 0 6);
  Unix.close fd2;
  (* The daemon must still serve others. *)
  let c = client sock in
  let _ = ok "ping after truncated peer" (Serve.Client.ping c) in
  Serve.Client.close c

(* ------------------------------------------------------------------ *)
(* Request tracing + metrics exposition *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let trace_record_spans j =
  match Json.member "spans" j with
  | Some (Json.List spans) ->
    List.filter_map
      (fun s ->
        match Json.member "name" s with Some (Json.Str n) -> Some n | _ -> None)
      spans
  | _ -> []

let check_span_tree label j =
  let spans = trace_record_spans j in
  if List.length spans < 4 then
    Alcotest.failf "%s: expected >= 4 child spans, got [%s]" label
      (String.concat "; " spans);
  List.iter
    (fun name ->
      if not (List.mem name spans) then
        Alcotest.failf "%s: span %s missing from [%s]" label name
          (String.concat "; " spans))
    [
      "serve.parse";
      "serve.registry.lookup";
      "serve.batch.enqueue";
      "serve.kernel.eval";
    ]

(* The tentpole acceptance: a client-chosen trace id round-trips through
   the daemon and lands in the JSONL trace log attached to a span tree
   naming the stations the request passed through. *)
let test_trace_context_round_trip () =
  let model, path = Lazy.force fixture in
  let dir = temp_dir "awesym_trace_log" in
  let log = Filename.concat dir "traces.jsonl" in
  ( with_server ~trace_log:log @@ fun ~sock ~stop:_ ->
    let c = client sock in
    let trace =
      { Protocol.trace_id = "test-trace-123"; parent_span = "test.parent" }
    in
    let r =
      ok "eval"
        (Serve.Client.eval c ~trace ~model:path [| Model.nominal_values model |])
    in
    check_moments_match model [| Model.nominal_values model |] r;
    (* The completed trace is also queryable in-band, newest last. *)
    let ring = ok "traces" (Serve.Client.traces c ~limit:16) in
    (match
       List.find_opt
         (fun j -> Json.member "trace_id" j = Some (Json.Str "test-trace-123"))
         ring
     with
    | None -> Alcotest.fail "client trace id absent from the server ring"
    | Some j ->
      Alcotest.(check (option string))
        "parent span propagated" (Some "test.parent")
        (match Json.member "parent_span" j with
        | Some (Json.Str s) -> Some s
        | _ -> None);
      check_span_tree "ring record" j);
    Serve.Client.close c );
  (* Every record in the log is one line of valid JSON; ours is there
     with the full span tree. *)
  let lines = In_channel.with_open_text log In_channel.input_lines in
  let records =
    List.map
      (fun line ->
        match Json.of_string line with
        | Ok j -> j
        | Error m -> Alcotest.failf "trace log line is not JSON (%s): %s" m line)
      lines
  in
  match
    List.find_opt
      (fun j -> Json.member "trace_id" j = Some (Json.Str "test-trace-123"))
      records
  with
  | None -> Alcotest.fail "client trace id absent from the trace log"
  | Some j ->
    Alcotest.(check (option string))
      "logged op" (Some "eval")
      (match Json.member "op" j with Some (Json.Str s) -> Some s | _ -> None);
    check_span_tree "logged record" j

let test_metrics_exposition () =
  let model, path = Lazy.force fixture in
  Obs.reset ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () ->
      Obs.enabled := false;
      Obs.reset ())
  @@ fun () ->
  with_server @@ fun ~sock ~stop:_ ->
  let c = client sock in
  let _ =
    ok "eval" (Serve.Client.eval c ~model:path [| Model.nominal_values model |])
  in
  let text = ok "metrics" (Serve.Client.metrics c) in
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "metrics exposition missing %S in:\n%s" needle text)
    [
      "# TYPE awesym_serve_latency_us summary";
      "awesym_serve_latency_us{quantile=\"0.5\"}";
      "awesym_serve_latency_us{quantile=\"0.99\"}";
      "awesym_serve_latency_us_count 1";
      "# TYPE awesym_serve_queue_depth gauge";
      "awesym_registry_resident_models 1";
      "awesym_batcher_inflight";
      "awesym_serve_worker_0_queue_depth";
      "awesym_serve_worker_0_resident_models 1";
      "# TYPE awesym_serve_requests counter";
    ];
  Serve.Client.close c

(* ------------------------------------------------------------------ *)
(* Cache GC (the daemon runs this at startup; `awesym cache gc` too) *)

(* Served optimization: the daemon's report must be byte-identical to a
   local [Opt.Request.run] of the same request on the same artifact —
   the reply embeds the report verbatim and both ends serialize through
   the same canonical JSON writer. *)
let test_optimize_served_matches_local () =
  let model, path = Lazy.force fixture in
  let nominals = Model.nominal_values model in
  let axes =
    Array.to_list
      (Array.mapi
         (fun k s ->
           { Sweep.Plan.name = Symbolic.Symbol.name s;
             dist = Sweep.Dist.around ~nominal:nominals.(k) ~pct:30.0 })
         (Model.symbols model))
  in
  let objective =
    Opt.Objective.make
      ~goal:(Opt.Objective.Minimize Sweep.Engine.Elmore_delay) ()
  in
  let size_req =
    Opt.Request.Size
      { (Opt.Sizing.default_config ~axes objective) with Opt.Sizing.max_iters = 8 }
  in
  let yield_req =
    Opt.Request.Yield
      {
        (Opt.Recenter.default_config ~axes
           ~specs:
             [ { Sweep.Engine.measure = Sweep.Engine.Elmore_delay;
                 bound = Sweep.Engine.Le 1.0 } ])
        with
        Opt.Recenter.points = 64;
        iters = 2;
      }
  in
  with_server ~workers:2 @@ fun ~sock ~stop:_ ->
  let c = client sock in
  List.iter
    (fun req ->
      let local = Json.to_string (Opt.Request.run model req) in
      let reply =
        ok "optimize"
          (Serve.Client.optimize c
             {
               Protocol.op_model = path;
               op_request = Opt.Request.to_json req;
               op_deadline_ms = None;
             })
      in
      Alcotest.(check string) "served report byte-identical to local" local
        (Json.to_string reply.Protocol.or_report))
    [ size_req; yield_req ];
  (* A malformed request document answers a classified error, not a hang. *)
  (match
     Serve.Client.optimize c
       {
         Protocol.op_model = path;
         op_request = Json.Obj [ ("schema", Json.Str "nonsense/9") ];
         op_deadline_ms = None;
       }
   with
  | Error e when e.Err.kind = Err.Invalid_request -> ()
  | Error e -> Alcotest.failf "wrong kind: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "bad opt request must error");
  Serve.Client.close c

let test_cache_gc () =
  let dir = temp_dir "awesym_cache_gc" in
  let write name size mtime =
    let p = Filename.concat dir name in
    Out_channel.with_open_bin p (fun oc ->
        Out_channel.output_string oc (String.make size 'x'));
    Unix.utimes p mtime mtime;
    p
  in
  let now = Unix.gettimeofday () in
  let oldest = write "a.awm" 1000 (now -. 300.0) in
  let newer = write "b.awm" 1000 (now -. 100.0) in
  let newest = write "c.awm" 1000 now in
  let leftover = write "crash.tmp" 50 now in
  let stats = Awesymbolic.Cache.gc ~dir ~max_bytes:2000 () in
  Alcotest.(check int) "scanned" 3 stats.Awesymbolic.Cache.scanned;
  Alcotest.(check int) "deleted oldest only" 1 stats.Awesymbolic.Cache.deleted;
  Alcotest.(check int) "bytes before" 3000 stats.Awesymbolic.Cache.bytes_before;
  Alcotest.(check int) "bytes after" 2000 stats.Awesymbolic.Cache.bytes_after;
  Alcotest.(check bool) "oldest evicted" false (Sys.file_exists oldest);
  Alcotest.(check bool) "newer kept" true (Sys.file_exists newer);
  Alcotest.(check bool) "newest kept" true (Sys.file_exists newest);
  Alcotest.(check bool) ".tmp leftovers swept" false (Sys.file_exists leftover);
  (* Idempotent under budget; a missing directory is an empty cache. *)
  let again = Awesymbolic.Cache.gc ~dir ~max_bytes:2000 () in
  Alcotest.(check int) "no further deletions" 0 again.Awesymbolic.Cache.deleted;
  let missing = Awesymbolic.Cache.gc ~dir:(Filename.concat dir "nope") ~max_bytes:0 () in
  Alcotest.(check int) "missing dir scans nothing" 0
    missing.Awesymbolic.Cache.scanned;
  match Awesymbolic.Cache.gc ~dir ~max_bytes:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative budget must be rejected"

(* ------------------------------------------------------------------ *)
(* Transport: address parsing, stale-socket hygiene *)

let test_transport_parse () =
  let ok_addr spec expect =
    match Serve.Transport.parse spec with
    | Ok a ->
      Alcotest.(check string) spec expect (Serve.Transport.to_string a)
    | Error e -> Alcotest.failf "%s: %s" spec (Err.to_string e)
  in
  ok_addr "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok_addr "tcp:127.0.0.1:4000" "tcp:127.0.0.1:4000";
  ok_addr "tcp:localhost:0" "tcp:localhost:0";
  (* a bare path is the pre-transport spelling *)
  ok_addr "relative/path.sock" "unix:relative/path.sock";
  List.iter
    (fun spec ->
      match Serve.Transport.parse spec with
      | Error e when e.Err.kind = Err.Invalid_request -> ()
      | Error e -> Alcotest.failf "%s wrong kind: %s" spec (Err.to_string e)
      | Ok a ->
        Alcotest.failf "%s must not parse (got %s)" spec
          (Serve.Transport.to_string a))
    [ ""; "unix:"; "tcp:nohost"; "tcp::123"; "tcp:host:notaport";
      "tcp:host:70000" ]

let test_stale_socket_replaced_but_files_refused () =
  let dir = temp_dir "awesym_transport" in
  let path = Filename.concat dir "stale.sock" in
  (* Simulate a crashed daemon: bind, then close without unlinking. *)
  (match Serve.Transport.listen (Serve.Transport.Unix_sock path) with
  | Ok (fd, _) -> Unix.close fd
  | Error e -> Alcotest.failf "first listen: %s" (Err.to_string e));
  Alcotest.(check bool) "socket file left behind" true (Sys.file_exists path);
  (* A fresh daemon must replace the stale socket... *)
  (match Serve.Transport.listen (Serve.Transport.Unix_sock path) with
  | Ok (fd, addr) -> Serve.Transport.close_listener fd addr
  | Error e -> Alcotest.failf "stale socket not replaced: %s" (Err.to_string e));
  (* ...but must never unlink a path that is not a socket. *)
  let reg = Filename.concat dir "precious.dat" in
  Out_channel.with_open_bin reg (fun oc -> Out_channel.output_string oc "data");
  (match Serve.Transport.listen (Serve.Transport.Unix_sock reg) with
  | Ok _ -> Alcotest.fail "binding over a regular file must be refused"
  | Error e ->
    Alcotest.(check bool) "refusal names the reason" true
      (let m = Err.to_string e in
       let nh = String.length m and nn = String.length "refusing to unlink" in
       let rec go i =
         i + nn <= nh && (String.sub m i nn = "refusing to unlink" || go (i + 1))
       in
       go 0));
  Alcotest.(check bool) "the file survives" true (Sys.file_exists reg);
  Alcotest.(check string) "its bytes survive" "data"
    (In_channel.with_open_bin reg In_channel.input_all)

(* ------------------------------------------------------------------ *)
(* Shard placement + mailbox hand-off *)

let test_shard_rendezvous () =
  let digest i = Digest.to_hex (Digest.string (string_of_int i)) in
  let owners = Serve.Shard.owners ~workers:8 ~replicas:3 (digest 1) in
  Alcotest.(check (list int)) "deterministic" owners
    (Serve.Shard.owners ~workers:8 ~replicas:3 (digest 1));
  Alcotest.(check int) "replica count" 3 (List.length owners);
  Alcotest.(check int) "replicas are distinct" 3
    (List.length (List.sort_uniq Int.compare owners));
  List.iter
    (fun w ->
      Alcotest.(check bool) "in range" true (w >= 0 && w < 8))
    owners;
  Alcotest.(check int) "replicas capped at workers" 2
    (List.length (Serve.Shard.owners ~workers:2 ~replicas:5 (digest 2)));
  (* Coverage: many digests spread over every worker. *)
  let hits = Array.make 4 0 in
  for i = 0 to 199 do
    let w = Serve.Shard.owner ~workers:4 (digest i) in
    hits.(w) <- hits.(w) + 1
  done;
  Array.iteri
    (fun w n ->
      if n = 0 then Alcotest.failf "worker %d owns no digest out of 200" w)
    hits;
  (* Minimal-relocation: growing 4 -> 5 workers moves roughly 1/5 of
     digests, and certainly not most of them. *)
  let moved = ref 0 in
  for i = 0 to 199 do
    if
      Serve.Shard.owner ~workers:4 (digest i)
      <> Serve.Shard.owner ~workers:5 (digest i)
    then incr moved
  done;
  Alcotest.(check bool)
    (Printf.sprintf "relocations bounded (moved %d/200)" !moved)
    true
    (!moved < 100)

let test_mailbox () =
  let m = Serve.Mailbox.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Serve.Mailbox.try_push m 1);
  Alcotest.(check bool) "push 2" true (Serve.Mailbox.try_push m 2);
  Alcotest.(check bool) "full sheds" false (Serve.Mailbox.try_push m 3);
  Alcotest.(check int) "length" 2 (Serve.Mailbox.length m);
  Alcotest.(check (list int)) "FIFO drain" [ 1; 2 ] (Serve.Mailbox.pop_all m);
  Alcotest.(check (list int)) "empty drain" [] (Serve.Mailbox.pop_all m);
  (* pop_block parks until a push arrives... *)
  let consumer = Domain.spawn (fun () -> Serve.Mailbox.pop_block m) in
  Unix.sleepf 0.02;
  Alcotest.(check bool) "push wakes" true (Serve.Mailbox.try_push m 7);
  Alcotest.(check (list int)) "blocked pop gets it" [ 7 ] (Domain.join consumer);
  (* ...and a wake with nothing queued returns [] — the shutdown path. *)
  let consumer = Domain.spawn (fun () -> Serve.Mailbox.pop_block m) in
  Unix.sleepf 0.02;
  Serve.Mailbox.wake m;
  Alcotest.(check (list int)) "wake returns empty" [] (Domain.join consumer)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          quick "hex float round trip" test_hex_float_round_trip;
          quick "incremental frame extraction" test_pop_frame_incremental;
          quick "oversized frame rejected" test_pop_frame_oversized;
          quick "truncated frame reads as closed" test_read_frame_truncated;
          quick "garbage requests rejected" test_garbage_requests_rejected;
        ]
        @ props [ prop_request_round_trip; prop_response_round_trip ] );
      ( "transport",
        [
          quick "address parsing" test_transport_parse;
          quick "stale sockets replaced, other files refused"
            test_stale_socket_replaced_but_files_refused;
        ] );
      ( "sharding",
        [
          quick "rendezvous placement" test_shard_rendezvous;
          quick "mailbox hand-off" test_mailbox;
        ] );
      ( "daemon",
        [
          quick "ping and model info" test_ping_and_info;
          quick "concurrent clients bit-identical to offline"
            test_concurrent_clients_bit_identical;
          quick "4 workers bit-identical to offline"
            test_multi_worker_bit_identical;
          quick "tcp transport bit-identical to offline"
            test_tcp_bit_identical;
          quick "deadline expiry classified as timeout" test_deadline_expiry;
          quick "full queue sheds load" test_backpressure_overload;
          quick "per-client inflight cap sheds, parked work drains"
            test_client_inflight_cap;
          quick "drain completes in-flight requests"
            test_drain_completes_in_flight;
          quick "multi-worker drain loses nothing" test_multi_worker_drain;
          quick "shutdown request drains" test_shutdown_request_drains;
          quick "stats expose shard topology" test_stats_shard_topology;
          quick "server death mid-request classified, never hangs"
            test_server_death_mid_request;
          quick "partial frames over tcp" test_partial_frames_over_tcp;
          quick "trace context round-trips into the trace log"
            test_trace_context_round_trip;
          quick "metrics exposition names the serving surface"
            test_metrics_exposition;
          quick "served optimize byte-identical to local"
            test_optimize_served_matches_local;
        ] );
      ("cache", [ quick "gc evicts oldest first" test_cache_gc ]);
    ]
