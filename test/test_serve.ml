(* Tests for the serving daemon: wire-protocol round-trips, malformed
   frame rejection, bit-identity with offline evaluation under concurrent
   clients, deadline expiry, backpressure, graceful drain, and the cache
   GC the daemon runs at startup.

   The in-process harness spawns the server loop in its own domain and
   drives it through real Unix-domain sockets with the blocking client —
   the same code paths production takes, minus the process boundary.
   Drain tests flip the same [stop] ref the SIGTERM handler flips. *)

module Protocol = Serve.Protocol
module Json = Obs.Json
module Err = Awesym_error
module Model = Awesymbolic.Model
module Netlist = Circuit.Netlist

let bits = Int64.bits_of_float

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* Compiled-model fixture: fig1 with two symbols, saved as an artifact. *)
let fixture =
  lazy
    (let nl = Circuit.Builders.fig1 () in
     let nl = Netlist.mark_symbolic nl "C1" (Symbolic.Symbol.intern "C1") in
     let nl = Netlist.mark_symbolic nl "G2" (Symbolic.Symbol.intern "G2") in
     let model = Model.build ~order:2 nl in
     let dir = temp_dir "awesym_serve_model" in
     let path = Filename.concat dir "fig1.awm" in
     Model.save model path;
     (model, path))

(* ------------------------------------------------------------------ *)
(* Protocol: bit-exact floats and codec round-trips *)

let special_floats =
  [ 0.0; -0.0; 1.0; -1.0; Float.pi; 1e-300; -1e300; Float.epsilon;
    Float.infinity; Float.neg_infinity; Float.nan; Float.min_float;
    Float.max_float ]

let test_hex_float_round_trip () =
  List.iter
    (fun v ->
      match Protocol.float_of_hex (Protocol.hex_of_float v) with
      | Some v' ->
        Alcotest.(check int64) "bits preserved" (bits v) (bits v')
      | None -> Alcotest.fail "hex round-trip refused its own encoding")
    special_floats;
  Alcotest.(check (option (float 0.0))) "short rejected" None
    (Protocol.float_of_hex "abc");
  Alcotest.(check (option (float 0.0))) "non-hex rejected" None
    (Protocol.float_of_hex "zzzzzzzzzzzzzzzz")

let gen_weird_float =
  QCheck2.Gen.(
    oneof [ float; oneofl special_floats; map Int64.float_of_bits int64 ])

let gen_points =
  QCheck2.Gen.(
    let* rows = int_range 0 4 in
    let* cols = int_range 1 3 in
    array_repeat rows (array_repeat cols gen_weird_float))

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Ping;
        return Protocol.Stats;
        return Protocol.Metrics;
        return Protocol.Shutdown;
        map (fun n -> Protocol.Trace n) nat;
        map (fun m -> Protocol.Info m) string_printable;
        (let* model = string_printable in
         let* points = gen_points in
         let* deadline_ms = option (map Float.abs float) in
         return (Protocol.Eval { Protocol.model; points; deadline_ms }));
      ])

let gen_id =
  QCheck2.Gen.(
    option
      (oneof
         [ map (fun n -> Json.Num (float_of_int n)) nat;
           map (fun s -> Json.Str s) string_printable ]))

let gen_trace =
  QCheck2.Gen.(
    option
      (let* trace_id = string_printable in
       let* parent_span = string_printable in
       return { Protocol.trace_id; parent_span }))

(* encode∘decode = id, compared through the canonical serialization —
   floats travel as hex bit patterns, so string equality is bit
   equality. *)
let prop_request_round_trip =
  QCheck2.Test.make ~name:"protocol request round trip" ~count:200
    QCheck2.Gen.(triple gen_id gen_trace gen_request)
    (fun (id, trace, req) ->
      let j = Protocol.request_to_json ?id ?trace req in
      match Protocol.request_of_json j with
      | Error e -> QCheck2.Test.fail_report (Err.to_string e)
      | Ok (id', trace', req') ->
        Json.to_string j
        = Json.to_string (Protocol.request_to_json ?id:id' ?trace:trace' req'))

let gen_response =
  QCheck2.Gen.(
    let hex16 =
      map (fun v -> Protocol.hex_of_float v) gen_weird_float
    in
    ignore hex16;
    oneof
      [
        return Protocol.R_draining;
        map (fun kvs -> Protocol.R_pong kvs)
          (small_list (pair string_printable string_printable));
        (let* digest = string_printable in
         let* order = int_range 1 8 in
         let* nominals = array_repeat 3 gen_weird_float in
         return
           (Protocol.R_info
              { Protocol.digest; order; symbols = [| "a"; "b"; "c" |]; nominals }));
        (let* digest = string_printable in
         let* order = int_range 1 8 in
         let* moments = gen_points in
         return (Protocol.R_eval { Protocol.digest; order; moments }));
        return (Protocol.R_stats (Json.Obj [ ("x", Json.Num 1.0) ]));
        map (fun text -> Protocol.R_metrics text) string_printable;
        map
          (fun ss ->
            Protocol.R_traces
              (List.map (fun s -> Json.Obj [ ("trace_id", Json.Str s) ]) ss))
          (small_list string_printable);
        (let* kind = oneofl Err.all_kinds in
         let* msg = string_printable in
         return (Protocol.R_error (Err.make kind ~where:"serve.test" msg)));
      ])

let prop_response_round_trip =
  QCheck2.Test.make ~name:"protocol response round trip" ~count:200
    QCheck2.Gen.(pair gen_id gen_response)
    (fun (id, resp) ->
      let j = Protocol.response_to_json ?id resp in
      match Protocol.response_of_json j with
      | Error e -> QCheck2.Test.fail_report (Err.to_string e)
      | Ok (id', resp') ->
        Json.to_string j = Json.to_string (Protocol.response_to_json ?id:id' resp'))

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_pop_frame_incremental () =
  let payload = {|{"schema":"awesymbolic-serve/1","op":"ping"}|} in
  let wire = Protocol.frame payload ^ Protocol.frame "second" in
  let buf = Buffer.create 16 in
  (* Deliver byte by byte: nothing pops until the first frame completes. *)
  let first = Protocol.frame payload in
  String.iteri
    (fun i c ->
      if i < String.length first - 1 then begin
        Buffer.add_char buf c;
        match Protocol.pop_frame buf with
        | `Need_more -> ()
        | _ -> Alcotest.fail "popped before the frame was complete"
      end)
    wire;
  Buffer.add_substring buf wire (String.length first - 1)
    (String.length wire - String.length first + 1);
  (match Protocol.pop_frame buf with
  | `Frame p -> Alcotest.(check string) "first payload" payload p
  | _ -> Alcotest.fail "first frame should pop");
  match Protocol.pop_frame buf with
  | `Frame p -> Alcotest.(check string) "second payload" "second" p
  | _ -> Alcotest.fail "second frame should pop"

let test_pop_frame_oversized () =
  let buf = Buffer.create 8 in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Protocol.max_frame + 1));
  Buffer.add_bytes buf header;
  match Protocol.pop_frame buf with
  | `Oversized n -> Alcotest.(check int) "reported size" (Protocol.max_frame + 1) n
  | _ -> Alcotest.fail "oversized prefix must be rejected"

let test_read_frame_truncated () =
  (* A peer that dies mid-frame must read as [`Closed], not hang or
     return a short payload. *)
  let r, w = Unix.pipe () in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 100l;
  ignore (Unix.write w header 0 4);
  ignore (Unix.write_substring w "only ten b" 0 10);
  Unix.close w;
  (match Protocol.read_frame r with
  | Error `Closed -> ()
  | Error (`Oversized _) -> Alcotest.fail "truncated read as oversized"
  | Ok _ -> Alcotest.fail "truncated frame must not decode");
  Unix.close r

let expect_parse_error = function
  | Error e when e.Err.kind = Err.Parse -> ()
  | Error e -> Alcotest.failf "wrong kind: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "malformed input must be rejected"

let test_garbage_requests_rejected () =
  let decode s =
    match Json.of_string s with
    | Error _ -> Alcotest.fail "fixture JSON must parse"
    | Ok j -> Protocol.request_of_json j
  in
  expect_parse_error (decode {|{"op":"ping"}|});
  expect_parse_error (decode {|{"schema":"awesymbolic-serve/0","op":"ping"}|});
  expect_parse_error (decode {|{"schema":"awesymbolic-serve/1","op":"mystery"}|});
  expect_parse_error (decode {|{"schema":"awesymbolic-serve/1"}|});
  expect_parse_error
    (decode {|{"schema":"awesymbolic-serve/1","op":"eval","model":"m"}|});
  expect_parse_error
    (decode
       {|{"schema":"awesymbolic-serve/1","op":"eval","model":"m","points":[["xyz"]]}|})

(* ------------------------------------------------------------------ *)
(* In-process server harness *)

let with_server ?batch ?(max_models = 8) ?trace_log f =
  let batch =
    match batch with Some b -> b | None -> Serve.Batcher.default_config
  in
  let dir = temp_dir "awesym_serve_sock" in
  let sock = Filename.concat dir "s.sock" in
  let config =
    {
      (Serve.Server.default_config ~socket_path:sock) with
      batch;
      max_models;
      cache_gc_bytes = None;
      trace_log;
    }
  in
  let t = Serve.Server.create config in
  let stop = ref false in
  let loop = Domain.spawn (fun () -> while Serve.Server.step t ~stop do () done) in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Domain.join loop;
      Serve.Server.shutdown t)
    (fun () -> f ~sock ~stop)

let client sock =
  match Serve.Client.connect sock with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Err.to_string e)

let ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Err.to_string e)

let check_moments_match model points (r : Protocol.eval_result) =
  Array.iteri
    (fun i pt ->
      let expected = Model.eval_moments model pt in
      Alcotest.(check int) "moment count" (Array.length expected)
        (Array.length r.Protocol.moments.(i));
      Array.iteri
        (fun j m ->
          if bits m <> bits expected.(j) then
            Alcotest.failf "point %d moment %d: served %h <> offline %h" i j m
              expected.(j))
        r.Protocol.moments.(i))
    points

let test_ping_and_info () =
  let model, path = Lazy.force fixture in
  with_server @@ fun ~sock ~stop:_ ->
  let c = client sock in
  let versions = ok "ping" (Serve.Client.ping c) in
  Alcotest.(check (option string)) "serve schema advertised"
    (Some Protocol.schema)
    (List.assoc_opt "serve" versions);
  let info = ok "info" (Serve.Client.info c path) in
  Alcotest.(check int) "order" (Model.order model) info.Protocol.order;
  Alcotest.(check (array string)) "symbols"
    (Array.map Symbolic.Symbol.name (Model.symbols model))
    info.Protocol.symbols;
  (* Same bytes under a second path = same registry identity. *)
  let copy = Filename.concat (Filename.dirname path) "copy.awm" in
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin copy (fun oc -> Out_channel.output_string oc data);
  let info2 = ok "info copy" (Serve.Client.info c copy) in
  Alcotest.(check string) "content-checksum identity" info.Protocol.digest
    info2.Protocol.digest;
  (match Serve.Client.info c (Filename.concat (Filename.dirname path) "no.awm") with
  | Error e when e.Err.kind = Err.Invalid_request -> ()
  | Error e -> Alcotest.failf "wrong kind for missing artifact: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "missing artifact must error");
  Serve.Client.close c

(* The acceptance criterion: concurrent clients, random batch shapes,
   every response bit-identical to offline evaluation. *)
let test_concurrent_clients_bit_identical () =
  let model, path = Lazy.force fixture in
  let nominals = Model.nominal_values model in
  with_server @@ fun ~sock ~stop:_ ->
  let nclients = 4 and iters = 15 in
  let worker ci =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| 0xbeef; ci |] in
        let c = client sock in
        let out = ref [] in
        for _ = 1 to iters do
          let n = 1 + Random.State.int rng 4 in
          let points =
            Array.init n (fun _ ->
                Array.map
                  (fun nom -> nom *. (0.5 +. Random.State.float rng 1.0))
                  nominals)
          in
          let r = ok "eval" (Serve.Client.eval c ~model:path points) in
          out := (points, r) :: !out
        done;
        Serve.Client.close c;
        !out)
  in
  let domains = List.init nclients worker in
  let results = List.concat_map Domain.join domains in
  Alcotest.(check int) "all requests answered" (nclients * iters)
    (List.length results);
  List.iter (fun (points, r) -> check_moments_match model points r) results

let test_deadline_expiry () =
  let _, path = Lazy.force fixture in
  (* A long linger so the deadline, not the linger, triggers the flush. *)
  let batch =
    { Serve.Batcher.max_batch = 4096; linger_s = 5.0; max_queue = 16 }
  in
  with_server ~batch @@ fun ~sock ~stop:_ ->
  let c = client sock in
  (* A negative relative deadline is expired on arrival, deterministically
     — a deadline of 0 can survive if admission and flush land on the
     same clock tick. *)
  (match Serve.Client.eval c ~deadline_ms:(-1.0) ~model:path [| [| 1.0; 1.0 |] |] with
  | Error e when e.Err.kind = Err.Timeout -> ()
  | Error e -> Alcotest.failf "wrong kind: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "an already-expired deadline must answer timeout");
  Serve.Client.close c

let queue_depth c =
  match ok "stats" (Serve.Client.stats c) with
  | s -> (
    match Json.member "queue_depth" s with
    | Some (Json.Num d) -> int_of_float d
    | _ -> Alcotest.fail "stats without queue_depth")

let rec wait_for_depth c want tries =
  if tries = 0 then Alcotest.failf "queue never reached depth %d" want
  else if queue_depth c >= want then ()
  else begin
    Unix.sleepf 0.02;
    wait_for_depth c want (tries - 1)
  end

let test_backpressure_overload () =
  let model, path = Lazy.force fixture in
  let batch =
    { Serve.Batcher.max_batch = 4096; linger_s = 10.0; max_queue = 1 }
  in
  with_server ~batch @@ fun ~sock ~stop ->
  let point = [| Model.nominal_values model |] in
  (* First request parks in the queue (10 s linger keeps it there). *)
  let parked =
    Domain.spawn (fun () ->
        let c = client sock in
        let r = Serve.Client.eval c ~model:path point in
        Serve.Client.close c;
        r)
  in
  let c = client sock in
  wait_for_depth c 1 200;
  (* Queue full: the next admission is load-shed, not buffered. *)
  (match Serve.Client.eval c ~model:path point with
  | Error e when e.Err.kind = Err.Overloaded -> ()
  | Error e -> Alcotest.failf "wrong kind: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "a full queue must shed load");
  Serve.Client.close c;
  (* Drain: the parked request still completes, correctly. *)
  stop := true;
  let r = ok "parked eval" (Domain.join parked) in
  check_moments_match model point r

(* SIGTERM drain loses zero in-flight requests: park several requests
   behind a long linger, flip the stop ref (exactly what the SIGTERM
   handler does), and require every parked client to get a correct
   response before the loop exits. *)
let test_drain_completes_in_flight () =
  let model, path = Lazy.force fixture in
  let nominals = Model.nominal_values model in
  let batch =
    { Serve.Batcher.max_batch = 4096; linger_s = 10.0; max_queue = 64 }
  in
  with_server ~batch @@ fun ~sock ~stop ->
  let nclients = 3 in
  let workers =
    List.init nclients (fun ci ->
        Domain.spawn (fun () ->
            let c = client sock in
            let points =
              [| Array.map (fun v -> v *. (1.0 +. (0.1 *. float_of_int ci))) nominals |]
            in
            let r = Serve.Client.eval c ~model:path points in
            Serve.Client.close c;
            (points, r)))
  in
  let c = client sock in
  wait_for_depth c nclients 200;
  Serve.Client.close c;
  stop := true;
  List.iter
    (fun d ->
      let points, r = Domain.join d in
      check_moments_match model points (ok "drained eval" r))
    workers

(* The `shutdown` request takes the same drain path as SIGTERM. *)
let test_shutdown_request_drains () =
  let _, path = Lazy.force fixture in
  with_server @@ fun ~sock ~stop:_ ->
  let c = client sock in
  let r = ok "eval" (Serve.Client.eval c ~model:path [| [| 1.0; 1.0 |] |]) in
  Alcotest.(check int) "answered before shutdown" 1
    (Array.length r.Protocol.moments);
  ok "shutdown" (Serve.Client.shutdown c);
  Serve.Client.close c

(* ------------------------------------------------------------------ *)
(* Request tracing + metrics exposition *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let trace_record_spans j =
  match Json.member "spans" j with
  | Some (Json.List spans) ->
    List.filter_map
      (fun s ->
        match Json.member "name" s with Some (Json.Str n) -> Some n | _ -> None)
      spans
  | _ -> []

let check_span_tree label j =
  let spans = trace_record_spans j in
  if List.length spans < 4 then
    Alcotest.failf "%s: expected >= 4 child spans, got [%s]" label
      (String.concat "; " spans);
  List.iter
    (fun name ->
      if not (List.mem name spans) then
        Alcotest.failf "%s: span %s missing from [%s]" label name
          (String.concat "; " spans))
    [
      "serve.parse";
      "serve.registry.lookup";
      "serve.batch.enqueue";
      "serve.kernel.eval";
    ]

(* The tentpole acceptance: a client-chosen trace id round-trips through
   the daemon and lands in the JSONL trace log attached to a span tree
   naming the stations the request passed through. *)
let test_trace_context_round_trip () =
  let model, path = Lazy.force fixture in
  let dir = temp_dir "awesym_trace_log" in
  let log = Filename.concat dir "traces.jsonl" in
  ( with_server ~trace_log:log @@ fun ~sock ~stop:_ ->
    let c = client sock in
    let trace =
      { Protocol.trace_id = "test-trace-123"; parent_span = "test.parent" }
    in
    let r =
      ok "eval"
        (Serve.Client.eval c ~trace ~model:path [| Model.nominal_values model |])
    in
    check_moments_match model [| Model.nominal_values model |] r;
    (* The completed trace is also queryable in-band, newest last. *)
    let ring = ok "traces" (Serve.Client.traces c ~limit:16) in
    (match
       List.find_opt
         (fun j -> Json.member "trace_id" j = Some (Json.Str "test-trace-123"))
         ring
     with
    | None -> Alcotest.fail "client trace id absent from the server ring"
    | Some j ->
      Alcotest.(check (option string))
        "parent span propagated" (Some "test.parent")
        (match Json.member "parent_span" j with
        | Some (Json.Str s) -> Some s
        | _ -> None);
      check_span_tree "ring record" j);
    Serve.Client.close c );
  (* Every record in the log is one line of valid JSON; ours is there
     with the full span tree. *)
  let lines = In_channel.with_open_text log In_channel.input_lines in
  let records =
    List.map
      (fun line ->
        match Json.of_string line with
        | Ok j -> j
        | Error m -> Alcotest.failf "trace log line is not JSON (%s): %s" m line)
      lines
  in
  match
    List.find_opt
      (fun j -> Json.member "trace_id" j = Some (Json.Str "test-trace-123"))
      records
  with
  | None -> Alcotest.fail "client trace id absent from the trace log"
  | Some j ->
    Alcotest.(check (option string))
      "logged op" (Some "eval")
      (match Json.member "op" j with Some (Json.Str s) -> Some s | _ -> None);
    check_span_tree "logged record" j

let test_metrics_exposition () =
  let model, path = Lazy.force fixture in
  Obs.reset ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () ->
      Obs.enabled := false;
      Obs.reset ())
  @@ fun () ->
  with_server @@ fun ~sock ~stop:_ ->
  let c = client sock in
  let _ =
    ok "eval" (Serve.Client.eval c ~model:path [| Model.nominal_values model |])
  in
  let text = ok "metrics" (Serve.Client.metrics c) in
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "metrics exposition missing %S in:\n%s" needle text)
    [
      "# TYPE awesym_serve_latency_us summary";
      "awesym_serve_latency_us{quantile=\"0.5\"}";
      "awesym_serve_latency_us{quantile=\"0.99\"}";
      "awesym_serve_latency_us_count 1";
      "# TYPE awesym_serve_queue_depth gauge";
      "awesym_registry_resident_models 1";
      "awesym_batcher_inflight";
      "# TYPE awesym_serve_requests counter";
    ];
  Serve.Client.close c

(* ------------------------------------------------------------------ *)
(* Cache GC (the daemon runs this at startup; `awesym cache gc` too) *)

let test_cache_gc () =
  let dir = temp_dir "awesym_cache_gc" in
  let write name size mtime =
    let p = Filename.concat dir name in
    Out_channel.with_open_bin p (fun oc ->
        Out_channel.output_string oc (String.make size 'x'));
    Unix.utimes p mtime mtime;
    p
  in
  let now = Unix.gettimeofday () in
  let oldest = write "a.awm" 1000 (now -. 300.0) in
  let newer = write "b.awm" 1000 (now -. 100.0) in
  let newest = write "c.awm" 1000 now in
  let leftover = write "crash.tmp" 50 now in
  let stats = Awesymbolic.Cache.gc ~dir ~max_bytes:2000 () in
  Alcotest.(check int) "scanned" 3 stats.Awesymbolic.Cache.scanned;
  Alcotest.(check int) "deleted oldest only" 1 stats.Awesymbolic.Cache.deleted;
  Alcotest.(check int) "bytes before" 3000 stats.Awesymbolic.Cache.bytes_before;
  Alcotest.(check int) "bytes after" 2000 stats.Awesymbolic.Cache.bytes_after;
  Alcotest.(check bool) "oldest evicted" false (Sys.file_exists oldest);
  Alcotest.(check bool) "newer kept" true (Sys.file_exists newer);
  Alcotest.(check bool) "newest kept" true (Sys.file_exists newest);
  Alcotest.(check bool) ".tmp leftovers swept" false (Sys.file_exists leftover);
  (* Idempotent under budget; a missing directory is an empty cache. *)
  let again = Awesymbolic.Cache.gc ~dir ~max_bytes:2000 () in
  Alcotest.(check int) "no further deletions" 0 again.Awesymbolic.Cache.deleted;
  let missing = Awesymbolic.Cache.gc ~dir:(Filename.concat dir "nope") ~max_bytes:0 () in
  Alcotest.(check int) "missing dir scans nothing" 0
    missing.Awesymbolic.Cache.scanned;
  match Awesymbolic.Cache.gc ~dir ~max_bytes:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative budget must be rejected"

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          quick "hex float round trip" test_hex_float_round_trip;
          quick "incremental frame extraction" test_pop_frame_incremental;
          quick "oversized frame rejected" test_pop_frame_oversized;
          quick "truncated frame reads as closed" test_read_frame_truncated;
          quick "garbage requests rejected" test_garbage_requests_rejected;
        ]
        @ props [ prop_request_round_trip; prop_response_round_trip ] );
      ( "daemon",
        [
          quick "ping and model info" test_ping_and_info;
          quick "concurrent clients bit-identical to offline"
            test_concurrent_clients_bit_identical;
          quick "deadline expiry classified as timeout" test_deadline_expiry;
          quick "full queue sheds load" test_backpressure_overload;
          quick "drain completes in-flight requests"
            test_drain_completes_in_flight;
          quick "shutdown request drains" test_shutdown_request_drains;
          quick "trace context round-trips into the trace log"
            test_trace_context_round_trip;
          quick "metrics exposition names the serving surface"
            test_metrics_exposition;
        ] );
      ("cache", [ quick "gc evicts oldest first" test_cache_gc ]);
    ]
