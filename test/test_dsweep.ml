(* Tests for fault-tolerant distributed sweeps.

   The harness runs real serving daemons in-process (own domains, real
   Unix-domain sockets) and points the Dsweep coordinator at them — the
   production code path minus the process boundary.  The determinism
   contract under test: the merged distributed report is byte-identical
   to single-node [Sweep.Engine.run] at any worker count, through
   retries, injected faults, worker death, and checkpoint resume. *)

module Json = Obs.Json
module Err = Awesym_error
module Model = Awesymbolic.Model
module Netlist = Circuit.Netlist
module Engine = Sweep.Engine
module Client = Serve.Client

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* fig1 with two symbolic elements, saved as an artifact the daemons
   can load by path. *)
let fixture =
  lazy
    (let nl = Circuit.Builders.fig1 () in
     let nl = Netlist.mark_symbolic nl "C1" (Symbolic.Symbol.intern "C1") in
     let nl = Netlist.mark_symbolic nl "G2" (Symbolic.Symbol.intern "G2") in
     let model = Model.build ~order:2 nl in
     let dir = temp_dir "awesym_dsweep_model" in
     let path = Filename.concat dir "fig1.awm" in
     Model.save model path;
     (model, path))

let plan () =
  Sweep.Plan.make (Sweep.Plan.Monte_carlo 200)
    [
      { Sweep.Plan.name = "C1"; dist = Sweep.Dist.uniform ~lo:0.5 ~hi:1.5 };
      { Sweep.Plan.name = "G2"; dist = Sweep.Dist.normal ~mean:1.0 ~std:0.1 };
    ]

let specs () =
  [ Result.get_ok (Engine.spec_of_string "dc_gain>=0.4") ]

(* Small block so the 200-point sweep has several chunks to spread,
   lose, and reassign. *)
let block = 32

let report r = Json.to_string (Engine.to_json r)

let local_report () =
  let model, _ = Lazy.force fixture in
  report (Engine.run ~seed:11 ~block ~specs:(specs ()) model (plan ()))

(* Fast-failing knobs: tests hammer dead sockets on purpose. *)
let test_backoff =
  { Client.Backoff.attempts = 2; base_s = 0.001; max_s = 0.005; jitter = 0.5 }

let config addrs =
  {
    (Dsweep.default_config ~addrs) with
    Dsweep.chunk_timeout_s = 30.0;
    heartbeat_s = 60.0;
    worker_retries = 1;
    backoff = test_backoff;
  }

(* ------------------------------------------------------------------ *)
(* In-process daemon fleet *)

type daemon = {
  server : Serve.Server.t;
  sock : string;
  stop : bool ref;
  mutable loop : unit Domain.t option;
}

let start_daemon () =
  let dir = temp_dir "awesym_dsweep_sock" in
  let listen = Serve.Transport.Unix_sock (Filename.concat dir "s.sock") in
  let base = Serve.Server.default_config ~listen in
  let config = { base with Serve.Server.cache_gc_bytes = None } in
  let server = Serve.Server.create config in
  let sock = Serve.Transport.to_string (Serve.Server.bound_addr server) in
  let stop = ref false in
  let d = { server; sock; stop; loop = None } in
  d.loop <-
    Some
      (Domain.spawn (fun () ->
           while Serve.Server.step server ~stop:d.stop do
             ()
           done));
  d

(* SIGKILL analog for an in-process daemon: stop its loop and close
   everything; in-flight client RPCs see resets/EOF, exactly like a
   killed process. *)
let kill_daemon d =
  d.stop := true;
  Option.iter Domain.join d.loop;
  d.loop <- None;
  Serve.Server.shutdown d.server

let with_daemons n f =
  let ds = List.init n (fun _ -> start_daemon ()) in
  Fun.protect
    ~finally:(fun () -> List.iter kill_daemon ds)
    (fun () -> f ds)

let run_dist ?checkpoint ?resume cfg =
  let model, path = Lazy.force fixture in
  Dsweep.run ~seed:11 ~block ~specs:(specs ()) ?checkpoint ?resume cfg ~model
    ~model_path:path (plan ())

(* ------------------------------------------------------------------ *)
(* Backoff + retry plumbing *)

let test_backoff_deterministic () =
  let b = Client.Backoff.default in
  for attempt = 0 to 6 do
    let d1 = Client.Backoff.delay b ~salt:"s" ~attempt in
    let d2 = Client.Backoff.delay b ~salt:"s" ~attempt in
    Alcotest.(check (float 0.0)) "same salt+attempt, same delay" d1 d2;
    Alcotest.(check bool) "capped" true (d1 <= b.Client.Backoff.max_s);
    let uncapped =
      Float.min b.Client.Backoff.max_s
        (b.Client.Backoff.base_s *. (2.0 ** float_of_int attempt))
    in
    Alcotest.(check bool) "jitter only shaves" true
      (d1 <= uncapped
      && d1 >= uncapped *. (1.0 -. b.Client.Backoff.jitter) -. 1e-12)
  done;
  (* Distinct salts decorrelate the schedules. *)
  let distinct =
    List.exists
      (fun a ->
        Client.Backoff.delay b ~salt:"peer-a" ~attempt:a
        <> Client.Backoff.delay b ~salt:"peer-b" ~attempt:a)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "salts decorrelate" true distinct

let test_retryable_classification () =
  let r k = Client.Backoff.retryable (Err.make k ~where:"t" "m") in
  List.iter
    (fun k -> Alcotest.(check bool) (Err.kind_name k) true (r k))
    [ Err.Unavailable; Err.Timeout; Err.Overloaded; Err.Worker_crash;
      Err.Injected_fault ];
  List.iter
    (fun k -> Alcotest.(check bool) (Err.kind_name k) false (r k))
    [ Err.Invalid_request; Err.Parse; Err.Artifact_corrupt; Err.Internal ]

let test_connect_retry_dead_addr () =
  (* A vanished socket is classified unavailable and retried; the
     budget then surfaces the classified error, not a raw Unix_error. *)
  let before = Obs.Metrics.counter "serve.client.retries" in
  match
    Client.connect_retry ~backoff:test_backoff "unix:/nonexistent/dsweep.sock"
  with
  | Ok c ->
    Client.close c;
    Alcotest.fail "connect to a dead path cannot succeed"
  | Error e ->
    Alcotest.(check string) "kind" "unavailable" (Err.kind_name e.Err.kind);
    Alcotest.(check bool) "retried at least once" true
      (Obs.Metrics.counter "serve.client.retries" >= before + 1)

(* ------------------------------------------------------------------ *)
(* Rendezvous assignment *)

let test_assign_pure_and_total () =
  let live = [ "0:a"; "1:b"; "2:c" ] in
  for c = 0 to 40 do
    let w = Dsweep.assign ~key:"k" ~chunk:c ~live in
    Alcotest.(check bool) "assigns into the live set" true (List.mem w live);
    Alcotest.(check string) "pure function" w
      (Dsweep.assign ~key:"k" ~chunk:c ~live)
  done;
  (* Placement depends on the sweep key, so distinct sweeps spread
     differently. *)
  let differs =
    List.exists
      (fun c ->
        Dsweep.assign ~key:"k1" ~chunk:c ~live
        <> Dsweep.assign ~key:"k2" ~chunk:c ~live)
      (List.init 40 Fun.id)
  in
  Alcotest.(check bool) "key-dependent" true differs;
  Alcotest.check_raises "empty live set refused"
    (Invalid_argument "Dsweep.assign: empty live set") (fun () ->
      ignore (Dsweep.assign ~key:"k" ~chunk:0 ~live:[]))

let test_assign_minimal_disruption () =
  (* Removing one worker moves only that worker's chunks — the HRW
     property that makes reassignment-on-death cheap and deterministic. *)
  let live = [ "0:a"; "1:b"; "2:c" ] in
  let survivors = [ "0:a"; "2:c" ] in
  let moved = ref 0 in
  for c = 0 to 60 do
    let before = Dsweep.assign ~key:"k" ~chunk:c ~live in
    let after = Dsweep.assign ~key:"k" ~chunk:c ~live:survivors in
    if before <> "1:b" then
      Alcotest.(check string) "survivor chunks stay put" before after
    else incr moved
  done;
  Alcotest.(check bool) "dead worker owned some chunks" true (!moved > 0)

(* ------------------------------------------------------------------ *)
(* Remote chunk op against a real daemon *)

let test_sweep_chunk_rpc_bit_exact () =
  let model, path = Lazy.force fixture in
  let prep = Engine.prepare ~seed:11 ~block ~specs:(specs ()) model (plan ()) in
  with_daemons 1 @@ fun ds ->
  let d = List.hd ds in
  let c =
    match Client.connect d.sock with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" (Err.to_string e)
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let req chunk =
    {
      Serve.Protocol.sc_model = path;
      sc_plan = Sweep.Plan.to_json (plan ());
      sc_seed = 11;
      sc_block = block;
      sc_measures = List.map Engine.measure_name Engine.default_measures;
      sc_specs = [ "dc_gain>=0.4" ];
      sc_policy = "skip";
      sc_chunk = chunk;
      sc_key = Engine.prep_key prep;
      sc_deadline_ms = None;
    }
  in
  for chunk = 0 to Engine.prep_num_chunks prep - 1 do
    match Client.sweep_chunk c (req chunk) with
    | Error e -> Alcotest.failf "sweep_chunk: %s" (Err.to_string e)
    | Ok reply ->
      Alcotest.(check string) "key echoed" (Engine.prep_key prep)
        reply.Serve.Protocol.cr_key;
      Alcotest.(check int) "chunk echoed" chunk reply.Serve.Protocol.cr_chunk;
      (* The wire record is byte-identical to evaluating locally. *)
      Alcotest.(check string) "remote chunk ≡ local chunk"
        (Json.to_string (Engine.chunk_result_to_json (Engine.eval_chunk prep chunk)))
        (Json.to_string reply.Serve.Protocol.cr_record)
  done;
  (* Skew handshake: a wrong key is refused before evaluation. *)
  match Client.sweep_chunk c { (req 0) with Serve.Protocol.sc_key = "feed" } with
  | Ok _ -> Alcotest.fail "mismatched key must be refused"
  | Error e ->
    Alcotest.(check string) "classified invalid_request" "invalid_request"
      (Err.kind_name e.Err.kind)

(* ------------------------------------------------------------------ *)
(* Distributed ≡ local *)

let test_dist_identical_1_and_3 () =
  let local = local_report () in
  with_daemons 3 @@ fun ds ->
  let socks = List.map (fun d -> d.sock) ds in
  let one = report (run_dist (config [ List.hd socks ])) in
  Alcotest.(check string) "1 worker ≡ local" local one;
  let three = report (run_dist (config socks)) in
  Alcotest.(check string) "3 workers ≡ local" local three

let test_dist_degrades_past_dead_address () =
  (* One address never answers: the coordinator declares that worker
     dead, reassigns its chunks, and still reproduces the local bytes. *)
  let local = local_report () in
  with_daemons 2 @@ fun ds ->
  let socks = List.map (fun d -> d.sock) ds in
  let lost = Obs.Metrics.counter "dsweep.workers.lost" in
  let addrs = [ List.nth socks 0; "unix:/nonexistent/dead.sock"; List.nth socks 1 ] in
  let r = report (run_dist (config addrs)) in
  Alcotest.(check string) "degraded ≡ local" local r;
  Alcotest.(check int) "one worker declared dead" (lost + 1)
    (Obs.Metrics.counter "dsweep.workers.lost")

let test_dist_transient_faults_identical () =
  (* Transient injected faults at both coordinator sites: every chunk's
     first dispatch and first receive fail, the classified retry path
     re-runs them, and the merged bytes don't change. *)
  let local = local_report () in
  with_daemons 2 @@ fun ds ->
  Fun.protect ~finally:Runtime.Fault.disarm @@ fun () ->
  Runtime.Fault.arm "dsweep.dispatch:1,dsweep.recv:1";
  let retries = Obs.Metrics.counter "dsweep.retries" in
  let cfg = { (config (List.map (fun d -> d.sock) ds)) with Dsweep.worker_retries = 3 } in
  let r = report (run_dist cfg) in
  Alcotest.(check string) "faulted ≡ local" local r;
  Alcotest.(check bool) "retries actually happened" true
    (Obs.Metrics.counter "dsweep.retries" > retries)

let test_dist_kill_worker_mid_run () =
  (* The acceptance drill: kill a live daemon mid-sweep; its in-flight
     chunk and all its future chunks are reassigned to the survivor and
     the merged output is still byte-identical. *)
  let local = local_report () in
  with_daemons 2 @@ fun ds ->
  let d0 = List.nth ds 0 and d1 = List.nth ds 1 in
  let killer =
    Domain.spawn (fun () ->
        (* Let the sweep get going, then pull the plug on one worker. *)
        Unix.sleepf 0.02;
        kill_daemon d1)
  in
  let cfg = { (config [ d0.sock; d1.sock ]) with Dsweep.chunk_timeout_s = 2.0 } in
  let r = report (run_dist cfg) in
  Domain.join killer;
  Alcotest.(check string) "survivor ≡ local" local r

let test_dist_checkpoint_resume_after_total_loss () =
  (* Lose EVERY worker mid-run: the coordinator flushes its progress,
     raises worker_crash, and a resumed run (fresh fleet) completes to
     the exact local bytes without re-evaluating finished chunks. *)
  let local = local_report () in
  let dir = temp_dir "awesym_dsweep_ckpt" in
  let ckpt = Filename.concat dir "sweep.ckpt" in
  (match
     with_daemons 2 (fun ds ->
         let cfg = config (List.map (fun d -> d.sock) ds) in
         let armed =
           Domain.spawn (fun () ->
               (* Wait for real progress, then make every receive fail
                  permanently — the moral equivalent of the switch
                  catching fire. *)
               let rec wait n =
                 if n > 0 && not (Sys.file_exists ckpt) then begin
                   Unix.sleepf 0.005;
                   wait (n - 1)
                 end
               in
               wait 2000;
               Runtime.Fault.arm "dsweep.recv:1:sticky")
         in
         Fun.protect ~finally:(fun () -> Domain.join armed) @@ fun () ->
         run_dist ~checkpoint:ckpt cfg)
   with
  | exception Err.Error e ->
    Runtime.Fault.disarm ();
    Alcotest.(check string) "classified worker_crash" "worker_crash"
      (Err.kind_name e.Err.kind)
  | r ->
    (* The fleet can finish before the arm lands; then there is nothing
       to resume and the result must already match. *)
    Runtime.Fault.disarm ();
    Alcotest.(check string) "finished early ≡ local" local (report r));
  Alcotest.(check bool) "checkpoint survives the crash" true
    (Sys.file_exists ckpt);
  (* Fresh fleet, resumed run: byte-identical to an uninterrupted one. *)
  with_daemons 2 @@ fun ds ->
  let cfg = config (List.map (fun d -> d.sock) ds) in
  let resumed = report (run_dist ~checkpoint:ckpt ~resume:true cfg) in
  Alcotest.(check string) "resumed ≡ local" local resumed

let () =
  Obs.enabled := true;
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dsweep"
    [
      ( "retry",
        [
          quick "backoff is deterministic, capped, jittered"
            test_backoff_deterministic;
          quick "retryable error classification" test_retryable_classification;
          quick "connect_retry classifies a dead address"
            test_connect_retry_dead_addr;
        ] );
      ( "assign",
        [
          quick "pure, total, key-dependent" test_assign_pure_and_total;
          quick "worker loss moves only its chunks"
            test_assign_minimal_disruption;
        ] );
      ( "daemon",
        [ quick "sweep_chunk RPC is bit-exact + skew-checked"
            test_sweep_chunk_rpc_bit_exact ] );
      ( "determinism",
        [
          quick "1 and 3 workers ≡ local" test_dist_identical_1_and_3;
          quick "dead address degrades, bytes unchanged"
            test_dist_degrades_past_dead_address;
          quick "transient dispatch/recv faults, bytes unchanged"
            test_dist_transient_faults_identical;
          quick "SIGKILL a worker mid-run, bytes unchanged"
            test_dist_kill_worker_mid_run;
          quick "total worker loss checkpoints, resume ≡ local"
            test_dist_checkpoint_resume_after_total_loss;
        ] );
    ]
