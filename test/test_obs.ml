(* Obs telemetry: spans, metrics, JSON round-trips and pipeline wiring. *)

let with_enabled f =
  Obs.enabled := true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  with_enabled @@ fun () ->
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_ ~name:"inner_a" (fun () -> ());
      Obs.Span.with_ ~name:"inner_b" (fun () -> ()));
  let spans = Obs.Span.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name = List.find (fun s -> s.Obs.Span.name = name) spans in
  let outer = find "outer" in
  Alcotest.(check int) "outer is a root" (-1) outer.Obs.Span.parent;
  List.iter
    (fun n ->
      Alcotest.(check int)
        (n ^ " nested under outer")
        outer.Obs.Span.id (find n).Obs.Span.parent)
    [ "inner_a"; "inner_b" ];
  (* Children complete before their parent. *)
  let names = List.map (fun s -> s.Obs.Span.name) spans in
  Alcotest.(check (list string))
    "completion order" [ "inner_a"; "inner_b"; "outer" ] names

let test_span_raise () =
  with_enabled @@ fun () ->
  (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded on raise" 1
    (List.length (Obs.Span.spans ()))

let test_span_disabled () =
  Obs.enabled := false;
  Obs.reset ();
  let r = Obs.Span.with_ ~name:"ghost" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Span.spans ()))

let test_timed () =
  Obs.enabled := false;
  Obs.reset ();
  let r, dt = Obs.Span.timed (fun () -> 7) in
  Alcotest.(check int) "timed result" 7 r;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0);
  Alcotest.(check int) "timed alone records nothing" 0
    (List.length (Obs.Span.spans ()))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counters () =
  with_enabled @@ fun () ->
  Obs.Metrics.incr "a";
  Obs.Metrics.incr ~by:4 "a";
  Obs.Metrics.incr "b";
  Alcotest.(check int) "a" 5 (Obs.Metrics.counter "a");
  Alcotest.(check int) "b" 1 (Obs.Metrics.counter "b");
  Alcotest.(check int) "absent" 0 (Obs.Metrics.counter "zzz");
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ ("a", 5); ("b", 1) ]
    (Obs.Metrics.counters_list ())

let test_histograms () =
  with_enabled @@ fun () ->
  List.iter (Obs.Metrics.observe "h") [ 1.0; 2.0; 4.0 ];
  match Obs.Metrics.histogram "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some st ->
    Alcotest.(check int) "count" 3 st.Obs.Metrics.count;
    Alcotest.(check (float 1e-12)) "sum" 7.0 st.Obs.Metrics.sum;
    Alcotest.(check (float 1e-12)) "min" 1.0 st.Obs.Metrics.min;
    Alcotest.(check (float 1e-12)) "max" 4.0 st.Obs.Metrics.max;
    Alcotest.(check (float 1e-12)) "mean" (7.0 /. 3.0) (Obs.Metrics.mean st);
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 st.Obs.Metrics.buckets in
    Alcotest.(check int) "bucket mass equals count" 3 total

let test_metrics_disabled () =
  Obs.enabled := false;
  Obs.reset ();
  Obs.Metrics.incr "silent";
  Obs.Metrics.observe "silent.h" 3.0;
  Obs.Metrics.set_gauge "silent.g" 1.0;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter "silent");
  Alcotest.(check bool) "histogram untouched" true
    (Obs.Metrics.histogram "silent.h" = None);
  Alcotest.(check bool) "gauge untouched" true
    (Obs.Metrics.gauge "silent.g" = None)

let test_gauges () =
  with_enabled @@ fun () ->
  Obs.Metrics.set_gauge "z.depth" 4.0;
  Obs.Metrics.set_gauge "a.inflight" 1.0;
  Obs.Metrics.set_gauge "z.depth" 2.5;
  Alcotest.(check (option (float 0.0)))
    "last write wins" (Some 2.5)
    (Obs.Metrics.gauge "z.depth");
  Alcotest.(check (option (float 0.0))) "absent" None (Obs.Metrics.gauge "nope");
  (* Listings are name-sorted so stats output and goldens are stable. *)
  Alcotest.(check (list (pair string (float 0.0))))
    "sorted listing"
    [ ("a.inflight", 1.0); ("z.depth", 2.5) ]
    (Obs.Metrics.gauges_list ())

let test_quantiles () =
  with_enabled @@ fun () ->
  List.iter (Obs.Metrics.observe "q") [ 1.0; 2.0; 4.0 ];
  match Obs.Metrics.histogram "q" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    let q p = Obs.Metrics.quantile s p in
    Alcotest.(check (float 1e-12)) "q=0 is the observed min" 1.0 (q 0.0);
    Alcotest.(check (float 1e-12)) "q=1 is the observed max" 4.0 (q 1.0);
    Alcotest.(check bool) "monotone" true (q 0.5 <= q 0.9 && q 0.9 <= q 0.99);
    List.iter
      (fun p ->
        let v = q p in
        Alcotest.(check bool)
          (Printf.sprintf "q=%g within observed range" p)
          true
          (v >= 1.0 && v <= 4.0))
      [ 0.25; 0.5; 0.75; 0.9; 0.99 ];
    let empty =
      { s with Obs.Metrics.count = 0; buckets = [] }
    in
    Alcotest.(check bool) "empty series has no quantile" true
      (Float.is_nan (Obs.Metrics.quantile empty 0.5))

(* Merging per-domain shards must be exact: recording a stream split
   across shards yields the same histogram as recording it in one go.
   Integer-valued observations keep the sums exact, so equality is
   structural, not approximate. *)
let prop_shard_merge_exact =
  QCheck2.Test.make ~name:"shard merge equals single recording" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 40) (int_range 1 1000))
        (int_range 0 40))
    (fun (raw, cut) ->
      let values = List.map float_of_int raw in
      let cut = Stdlib.min cut (List.length values) in
      let fst_half = List.filteri (fun i _ -> i < cut) values in
      let snd_half = List.filteri (fun i _ -> i >= cut) values in
      with_enabled @@ fun () ->
      List.iter (Obs.Metrics.observe "direct") values;
      Obs.Metrics.with_shard (fun () ->
          List.iter (Obs.Metrics.observe "sharded") fst_half);
      Obs.Metrics.with_shard (fun () ->
          List.iter (Obs.Metrics.observe "sharded") snd_half);
      match (Obs.Metrics.histogram "direct", Obs.Metrics.histogram "sharded") with
      | Some d, Some s -> d = s
      | _ -> false)

let test_prometheus_golden () =
  with_enabled @@ fun () ->
  Obs.Metrics.incr ~by:3 "req.count";
  Obs.Metrics.set_gauge "g.depth" 2.5;
  List.iter (Obs.Metrics.observe "lat.us") [ 1.0; 2.0; 4.0 ];
  let expected =
    String.concat "\n"
      [
        "# TYPE awesym_req_count counter";
        "awesym_req_count 3";
        "# TYPE awesym_g_depth gauge";
        "awesym_g_depth 2.5";
        "# TYPE awesym_lat_us summary";
        "awesym_lat_us{quantile=\"0.5\"} 3";
        "awesym_lat_us{quantile=\"0.9\"} 4";
        "awesym_lat_us{quantile=\"0.99\"} 4";
        "awesym_lat_us_sum 7";
        "awesym_lat_us_count 3";
        "";
      ]
  in
  Alcotest.(check string) "exposition text" expected
    (Obs.Metrics.to_prometheus ())

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let module J = Obs.Json in
  let doc =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\n\t");
        ("n", J.Num 1.25e-3);
        ("neg", J.Num (-17.0));
        ("flag", J.Bool true);
        ("nothing", J.Null);
        ("xs", J.List [ J.Num 1.0; J.Num 2.0; J.Num 3.0 ]);
      ]
  in
  match J.of_string (J.to_string doc) with
  | Error msg -> Alcotest.fail msg
  | Ok doc' -> Alcotest.(check bool) "round trip" true (doc = doc')

let test_json_parse_errors () =
  let module J = Obs.Json in
  List.iter
    (fun src ->
      match J.of_string src with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" src)
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\":1} trailing"; "" ]

let test_chrome_trace () =
  let module J = Obs.Json in
  with_enabled @@ fun () ->
  Obs.Span.with_ ~name:"phase" (fun () ->
      Obs.Span.with_ ~name:"step" (fun () -> ()));
  let doc = Obs.Span.to_chrome () in
  (* The emitted document must parse back and carry one complete event per
     span, timestamps in microseconds. *)
  match J.of_string (J.to_string doc) with
  | Error msg -> Alcotest.fail msg
  | Ok doc' -> (
    match J.member "traceEvents" doc' with
    | Some (J.List events) ->
      Alcotest.(check int) "one event per span" 2 (List.length events);
      List.iter
        (fun ev ->
          (match J.member "ph" ev with
          | Some (J.Str "X") -> ()
          | _ -> Alcotest.fail "expected complete (ph=X) events");
          match J.member "dur" ev with
          | Some (J.Num d) ->
            Alcotest.(check bool) "duration in range" true (d >= 0.0 && d < 1e6)
          | _ -> Alcotest.fail "missing dur")
        events
    | _ -> Alcotest.fail "missing traceEvents")

(* A trace written mid-phase must still be well-formed: spans that are
   open at write time appear as complete events flagged truncated. *)
let test_chrome_trace_truncated () =
  let module J = Obs.Json in
  with_enabled @@ fun () ->
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_ ~name:"done" (fun () -> ());
      (match Obs.Span.open_spans () with
      | [ s ] ->
        Alcotest.(check string) "open span is outer" "outer" s.Obs.Span.name;
        Alcotest.(check bool) "duration measured so far" true
          (s.Obs.Span.dur >= 0.0)
      | l -> Alcotest.failf "expected one open span, got %d" (List.length l));
      let doc = Obs.Span.to_chrome () in
      match J.member "traceEvents" doc with
      | Some (J.List events) ->
        Alcotest.(check int) "completed + truncated" 2 (List.length events);
        let truncated =
          List.filter
            (fun ev ->
              match J.member "args" ev with
              | Some args -> J.member "truncated" args = Some (J.Bool true)
              | None -> false)
            events
        in
        (match truncated with
        | [ ev ] -> (
          (match J.member "name" ev with
          | Some (J.Str "outer") -> ()
          | _ -> Alcotest.fail "the open span is the truncated one");
          match J.member "ph" ev with
          | Some (J.Str "X") -> ()
          | _ -> Alcotest.fail "truncated events still complete (ph=X)")
        | l -> Alcotest.failf "expected one truncated event, got %d"
                 (List.length l));
        Alcotest.(check bool) "completed child is not truncated" true
          (List.exists
             (fun ev ->
               J.member "name" ev = Some (J.Str "done")
               && J.member "args" ev = None)
             events)
      | _ -> Alcotest.fail "missing traceEvents");
  Alcotest.(check int) "no open spans after close" 0
    (List.length (Obs.Span.open_spans ()))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng () =
  let r1 = Obs.Rng.create 42 and r2 = Obs.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "deterministic" (Obs.Rng.float r1)
      (Obs.Rng.float r2)
  done;
  let r = Obs.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Obs.Rng.float r in
    Alcotest.(check bool) "unit interval" true (v >= 0.0 && v <= 1.0);
    let u = Obs.Rng.uniform ~lo:2.0 ~hi:5.0 r in
    Alcotest.(check bool) "uniform in range" true (u >= 2.0 && u <= 5.0);
    let lg = Obs.Rng.log_uniform ~lo:1e-12 ~hi:1e-6 r in
    Alcotest.(check bool) "log_uniform in range" true (lg >= 1e-12 && lg <= 1e-6)
  done

(* ------------------------------------------------------------------ *)
(* Pipeline wiring *)

let rc_deck () =
  Circuit.Builders.rc_ladder ~sections:4 ~r:100.0 ~c:1e-12 ()

let test_driver_phases () =
  with_enabled @@ fun () ->
  let result = Awe.Driver.analyze ~order:2 (rc_deck ()) in
  Alcotest.(check bool) "healthy factorization" false
    result.Awe.Driver.health.Awe.Driver.near_singular;
  Alcotest.(check bool) "positive pivots" true
    (result.Awe.Driver.health.Awe.Driver.pivot_min > 0.0);
  let names =
    Obs.Span.spans () |> List.map (fun s -> s.Obs.Span.name)
    |> List.sort_uniq compare
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s recorded" expected)
        true (List.mem expected names))
    [ "mna.build"; "awe.analyze"; "awe.moments"; "awe.pade.fit" ];
  Alcotest.(check bool) "lu counter tripped" true
    (Obs.Metrics.counter "lu.factor.count" > 0);
  Alcotest.(check bool) "moment recursion counted" true
    (Obs.Metrics.counter "moments.recursion.steps" > 0)

let test_disabled_is_quiet () =
  Obs.enabled := false;
  Obs.reset ();
  let _ = Awe.Driver.analyze ~order:2 (rc_deck ()) in
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Span.spans ()));
  Alcotest.(check (list (pair string int)))
    "no counters" []
    (Obs.Metrics.counters_list ())

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "recorded on raise" `Quick test_span_raise;
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled;
          Alcotest.test_case "timed" `Quick test_timed;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "disabled no-op" `Quick test_metrics_disabled;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          QCheck_alcotest.to_alcotest prop_shard_merge_exact;
          Alcotest.test_case "prometheus exposition golden" `Quick
            test_prometheus_golden;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
          Alcotest.test_case "chrome trace mid-phase truncation" `Quick
            test_chrome_trace_truncated;
        ] );
      ("rng", [ Alcotest.test_case "determinism and ranges" `Quick test_rng ]);
      ( "pipeline",
        [
          Alcotest.test_case "driver phases" `Quick test_driver_phases;
          Alcotest.test_case "disabled stays quiet" `Quick test_disabled_is_quiet;
        ] );
    ]
