(* Tests for the AWEsymbolic core: partitioning, port reduction, symbolic
   moments, compiled evaluation — including the paper's central claim that
   compiled-symbolic results are identical to full numeric AWE. *)

module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Builders = Circuit.Builders
module Mna = Circuit.Mna
module Sym = Symbolic.Symbol
module Ratfun = Symbolic.Ratfun
module Mpoly = Symbolic.Mpoly
module Cx = Numeric.Cx
module Matrix = Numeric.Matrix
module Model = Awesymbolic.Model
module Partition = Awesymbolic.Partition

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let sym = Sym.intern

(* Substitute symbol values back into a netlist so full numeric AWE can be
   run at the same point the compiled model is evaluated at. *)
let substitute nl values =
  Netlist.map_elements
    (fun (e : Element.t) ->
      match e.Element.symbol with
      | Some s -> Element.set_stamp_value e (List.assoc (Sym.name s) values)
      | None -> e)
    nl

let fig1_c1_g2 () =
  let nl = Builders.fig1 () in
  let nl = Netlist.mark_symbolic nl "C1" (sym "C1") in
  Netlist.mark_symbolic nl "G2" (sym "G2")

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_partition_fig1 () =
  let p = Partition.make (fig1_c1_g2 ()) in
  Alcotest.(check int) "two symbols" 2 (Array.length p.Partition.symbols);
  Alcotest.(check (list string)) "ports are in, n1, n2" [ "in"; "n1"; "n2" ]
    (Array.to_list p.Partition.ports);
  (* Numeric partition: G1, C2 plus three port probes. *)
  Alcotest.(check int) "numeric partition elements" 5
    (List.length (Netlist.elements p.Partition.numeric))

let test_partition_opamp () =
  let nl = Builders.opamp741 () in
  let gname, cname = Builders.opamp_symbol_names in
  let nl = Netlist.mark_symbolic nl gname (sym gname) in
  let nl = Netlist.mark_symbolic nl cname (sym cname) in
  let p = Partition.make nl in
  (* Ports: inp (input), out (output), d1 and d2 (symbolic terminals). *)
  Alcotest.(check (list string)) "ports" [ "d1"; "d2"; "inp"; "out" ]
    (Array.to_list p.Partition.ports)

let test_partition_no_symbols () =
  match Partition.make (Builders.fig1 ()) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure without symbolic elements"

let test_partition_shared_symbol () =
  (* Two elements sharing one symbol: one symbol, both elements symbolic. *)
  let nl = Builders.coupled_lines ~segments:4 () in
  let rdrv = sym "rdrv" in
  let nl = Netlist.mark_symbolic nl "rdrv_a" rdrv in
  let nl = Netlist.mark_symbolic nl "rdrv_b" rdrv in
  let p = Partition.make nl in
  Alcotest.(check int) "one symbol" 1 (Array.length p.Partition.symbols);
  Alcotest.(check int) "two symbolic elements" 2 (List.length p.Partition.symbolic)

(* ------------------------------------------------------------------ *)
(* Port reduction *)

let test_port_reduction_resistive () =
  (* Star of two resistors: ports at both ends, center internal.
     Y of the series combination: [[g, -g], [-g, g]] with g = 1/(R1+R2). *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 a 0 1
R1 a mid 100
R2 mid b 300
R3 b 0 1k
C1 b 0 1p
.symbolic R3
.output v(b)
|}
  in
  (* R3 symbolic makes b a port; the input makes a a port. *)
  let p = Partition.make nl in
  Alcotest.(check (list string)) "ports" [ "a"; "b" ] (Array.to_list p.Partition.ports);
  let red = Awesymbolic.Port_reduction.compute ~count:3 p in
  let y0 = red.Awesymbolic.Port_reduction.series.(0) in
  let g = 1.0 /. 400.0 in
  check_float "Y0[a][a]" g (Matrix.get y0 0 0);
  check_float "Y0[a][b]" (-.g) (Matrix.get y0 0 1);
  check_float "Y0[b][a]" (-.g) (Matrix.get y0 1 0);
  check_float "Y0[b][b]" g (Matrix.get y0 1 1);
  (* Y1: the capacitor C1 sits directly on port b: Y1[b][b] = C1. *)
  let y1 = red.Awesymbolic.Port_reduction.series.(1) in
  check_float "Y1[b][b]" 1e-12 (Matrix.get y1 1 1);
  check_float "Y1[a][a]" 0.0 (Matrix.get y1 0 0)

let test_port_reduction_internal_storage () =
  (* Internal RC behind a port: Y(s) = (g + sC·g·R·g…) — check against a
     direct complex calculation at a test frequency. *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 a 0 1
R1 a mid 1k
C1 mid 0 1p
R2 mid b 2k
C2 b 0 1p
.symbolic C2
.output v(b)
|}
  in
  let p = Partition.make nl in
  let red = Awesymbolic.Port_reduction.compute ~count:8 p in
  let s = Cx.make 0.0 (2.0 *. Float.pi *. 1e6) in
  let y = Awesymbolic.Port_reduction.admittance_at red s in
  (* Direct: two-port of R1 - (C1 shunt) - R2 ladder.  Drive port a with 1V,
     short b: current into a = 1/(R1 + Zc1∥R2). *)
  let zc1 = Cx.inv (Cx.mul s (Cx.of_float 1e-12)) in
  let r1 = Cx.of_float 1e3 and r2 = Cx.of_float 2e3 in
  let par = Cx.div (Cx.mul zc1 r2) (Cx.add zc1 r2) in
  let y_aa = Cx.inv (Cx.add r1 par) in
  let got = Numeric.Cmatrix.get y 0 0 in
  if Cx.norm (Cx.sub y_aa got) > 1e-6 *. Cx.norm y_aa then
    Alcotest.failf "Y[a][a] mismatch: expected %s got %s"
      (Format.asprintf "%a" Cx.pp y_aa)
      (Format.asprintf "%a" Cx.pp got)

(* ------------------------------------------------------------------ *)
(* Symbolic moments: partitioned vs exact whole-circuit *)

let test_ratfun_moments_match_exact () =
  let nl = fig1_c1_g2 () in
  let part_moments = Model.moments_ratfun ~count:5 nl in
  let tf = Exact.Network.transfer_function nl in
  let exact_moments = Exact.Network.moments ~count:5 tf in
  Array.iteri
    (fun k rf ->
      Alcotest.(check bool)
        (Printf.sprintf "symbolic m%d identical" k)
        true
        (Ratfun.equal ~tol:1e-9 rf exact_moments.(k)))
    part_moments

let test_first_order_moments_multilinear () =
  (* Paper: first-order forms are multi-linear in the symbols. *)
  let nl = fig1_c1_g2 () in
  let m = Model.moments_ratfun ~count:2 nl in
  Array.iter
    (fun rf ->
      Alcotest.(check bool) "numerator multilinear" true
        (Mpoly.is_multilinear (Ratfun.num rf));
      Alcotest.(check bool) "denominator multilinear" true
        (Mpoly.is_multilinear (Ratfun.den rf)))
    m

(* ------------------------------------------------------------------ *)
(* Compiled model ≡ numeric AWE (the paper's identity claim) *)

let points_fig1 =
  [ [ ("C1", 1.0); ("G2", 1.0) ];
    [ ("C1", 0.3); ("G2", 2.5) ];
    [ ("C1", 4.0); ("G2", 0.2) ];
    [ ("C1", 0.05); ("G2", 9.0) ] ]

let test_compiled_moments_identical_fig1 () =
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:2 nl in
  List.iter
    (fun point ->
      let v = Model.values model point in
      let compiled = Model.eval_moments model v in
      let numeric =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
      in
      Array.iteri
        (fun k mk ->
          check_float ~tol:1e-9
            (Printf.sprintf "m%d at %s" k
               (String.concat ","
                  (List.map (fun (n, x) -> Printf.sprintf "%s=%g" n x) point)))
            numeric.(k) mk)
        compiled)
    points_fig1

let test_compiled_rom_identical_fig1 () =
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:2 nl in
  List.iter
    (fun point ->
      let v = Model.values model point in
      let rom_sym = Model.rom model v in
      let rom_num =
        (Awe.Driver.analyze ~order:2 (substitute nl point)).Awe.Driver.rom
      in
      let sorted r =
        Array.to_list r.Awe.Rom.poles
        |> List.map (fun (p : Cx.t) -> p.Cx.re)
        |> List.sort compare
      in
      List.iter2
        (fun a b -> check_float ~tol:1e-8 "pole identical" a b)
        (sorted rom_num) (sorted rom_sym))
    points_fig1

let test_closed_form_matches_numeric () =
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:2 nl in
  List.iter
    (fun point ->
      let v = Model.values model point in
      match Model.closed_form_rom model v with
      | None -> Alcotest.fail "expected closed form for RC circuit"
      | Some rom_cf ->
        let rom_num = Model.rom model v in
        let sorted r =
          Array.to_list r.Awe.Rom.poles
          |> List.map (fun (p : Cx.t) -> p.Cx.re)
          |> List.sort compare
        in
        List.iter2
          (fun a b -> check_float ~tol:1e-7 "closed-form pole" a b)
          (sorted rom_num) (sorted rom_cf))
    points_fig1

let test_opamp_compiled_identity () =
  let nl = Builders.opamp741 () in
  let gname, cname = Builders.opamp_symbol_names in
  let nl = Netlist.mark_symbolic nl gname (sym gname) in
  let nl = Netlist.mark_symbolic nl cname (sym cname) in
  let model = Model.build ~order:2 nl in
  List.iter
    (fun (gv, cv) ->
      let point = [ (gname, gv); (cname, cv) ] in
      let v = Model.values model point in
      let compiled = Model.eval_moments model v in
      let numeric =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
      in
      Array.iteri
        (fun k mk ->
          check_float ~tol:1e-7
            (Printf.sprintf "op-amp m%d at g=%g c=%g" k gv cv)
            numeric.(k) mk)
        compiled)
    [ (2e-6, 30e-12); (1e-5, 10e-12); (5e-7, 60e-12); (4e-6, 5e-12) ]

let test_coupled_lines_compiled_identity () =
  let nl = Builders.coupled_lines ~segments:6 () in
  let nl = Netlist.mark_symbolic nl "rdrv_a" (sym "g_drv") in
  let nl = Netlist.mark_symbolic nl "rdrv_b" (sym "g_drv") in
  let nl = Netlist.mark_symbolic nl "cload_a" (sym "c_load") in
  let nl = Netlist.mark_symbolic nl "cload_b" (sym "c_load") in
  let model = Model.build ~order:2 nl in
  List.iter
    (fun (rdrv, cload) ->
      let point = [ ("g_drv", 1.0 /. rdrv); ("c_load", cload) ] in
      let v = Model.values model point in
      let compiled = Model.eval_moments model v in
      let numeric =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
      in
      Array.iteri
        (fun k mk ->
          check_float ~tol:1e-7
            (Printf.sprintf "lines m%d at R=%g C=%g" k rdrv cload)
            numeric.(k) mk)
        compiled)
    [ (100.0, 50e-15); (30.0, 200e-15); (300.0, 20e-15); (75.0, 100e-15) ]

let test_symbolic_inductor_identity () =
  (* The paper stencils inductors as impedances via auxiliary currents; a
     symbolic L must go through the same identity check as R and C. *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 in 0 1
R1 in a 10
L1 a b 1u
C1 b 0 1n
R2 b 0 100
.symbolic L1
.output v(b)
|}
  in
  let model = Model.build ~order:2 nl in
  List.iter
    (fun lval ->
      let v = Model.values model [ ("L1", lval) ] in
      let compiled = Model.eval_moments model v in
      let nl_num =
        Netlist.replace nl
          (Element.set_stamp_value (Option.get (Netlist.find nl "L1")) lval)
      in
      let numeric =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build nl_num))
      in
      Array.iteri
        (fun k mk ->
          check_float ~tol:1e-9 (Printf.sprintf "m%d at L=%g" k lval) mk
            compiled.(k))
        numeric)
    [ 0.2e-6; 1e-6; 5e-6 ]

let test_symbolic_vccs_identity () =
  (* Symbolic transconductance: the op-amp with gm_q1 as a third symbol. *)
  let nl = Builders.opamp741 () in
  let gname, cname = Builders.opamp_symbol_names in
  let nl = Netlist.mark_symbolic nl gname (sym gname) in
  let nl = Netlist.mark_symbolic nl cname (sym cname) in
  let nl = Netlist.mark_symbolic nl "gm_q1" (sym "gm_q1") in
  let model = Model.build ~order:2 nl in
  Alcotest.(check int) "three symbols" 3 (Array.length (Model.symbols model));
  let point = [ (gname, 3e-6); (cname, 20e-12); ("gm_q1", 250e-6) ] in
  let v = Model.values model point in
  let compiled = Model.eval_moments model v in
  let numeric =
    Awe.Moments.output_moments
      (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
  in
  Array.iteri
    (fun k mk -> check_float ~tol:1e-7 (Printf.sprintf "m%d" k) mk compiled.(k))
    numeric

let test_order3_model_identity () =
  (* Orders above 2 have no closed form; the compiled-moment path must still
     match numeric AWE pole-for-pole. *)
  let nl = Builders.rc_ladder ~sections:10 ~r:100.0 ~c:1e-12 () in
  let nl = Netlist.mark_symbolic nl "C5" (sym "C5") in
  let nl = Netlist.mark_symbolic nl "R3" (sym "g3") in
  let model = Model.build ~order:3 nl in
  Alcotest.(check bool) "no closed form at order 3" true
    (Option.is_none (Model.closed_form model));
  List.iter
    (fun (c5, g3) ->
      let point = [ ("C5", c5); ("g3", g3) ] in
      let v = Model.values model point in
      let rom_sym = Model.rom model v in
      let rom_num =
        (Awe.Driver.analyze ~order:3 (substitute nl point)).Awe.Driver.rom
      in
      let key r =
        Array.to_list r.Awe.Rom.poles
        |> List.map (fun (p : Cx.t) -> p.Cx.re)
        |> List.sort compare
      in
      List.iter2
        (fun a b -> check_float ~tol:1e-6 "order-3 pole" a b)
        (key rom_num) (key rom_sym))
    [ (1e-12, 0.01); (5e-12, 0.002); (0.2e-12, 0.05) ]

let test_closed_form_none_on_complex_poles () =
  (* Underdamped RLC with a symbolic load: the order-2 discriminant goes
     negative, so the closed-form program reports None and the caller falls
     back to the compiled-moment path, which stays exact. *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 in 0 1
R1 in a 5
L1 a b 100n
C1 b 0 1p
.symbolic C1
.output v(b)
|}
  in
  let model = Model.build ~order:2 nl in
  let v = Model.values model [ ("C1", 1e-12) ] in
  Alcotest.(check bool) "closed form unavailable (complex poles)" true
    (Option.is_none (Model.closed_form_rom model v));
  let rom = Model.rom model v in
  let rom_num = (Awe.Driver.analyze ~order:2 nl).Awe.Driver.rom in
  check_float ~tol:1e-9 "moment path still exact"
    (Cx.norm (Awe.Rom.dominant_pole rom_num))
    (Cx.norm (Awe.Rom.dominant_pole rom))

let test_symbolic_mutual_identity () =
  (* A symbolic mutual inductance couples two branch currents — the most
     exotic stamp the partitioned path must reproduce. *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 in 0 1
R1 in p 10
L1 p 0 1u
L2 s 0 2u
K1 L1 L2 0.4u
R2 s out 20
C2 out 0 1p
.symbolic K1 M
.output v(out)
|}
  in
  let model = Model.build ~order:2 nl in
  List.iter
    (fun m ->
      let v = Model.values model [ ("M", m) ] in
      let compiled = Model.eval_moments model v in
      let nl_num =
        Netlist.replace nl
          (Element.set_stamp_value (Option.get (Netlist.find nl "K1")) m)
      in
      let numeric =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build nl_num))
      in
      Array.iteri
        (fun k mk ->
          check_float ~tol:1e-9 (Printf.sprintf "m%d at M=%g" k m) mk
            compiled.(k))
        numeric)
    [ 0.1e-6; 0.4e-6; 1.0e-6 ]

let test_evaluator_consistent () =
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:2 nl in
  let fast = Model.evaluator model in
  List.iter
    (fun point ->
      let v = Model.values model point in
      let a = Model.rom model v and b = fast v in
      check_float "evaluator dc gain" (Awe.Rom.dc_gain a) (Awe.Rom.dc_gain b))
    points_fig1

let test_values_missing_symbol () =
  let model = Model.build ~order:1 (fig1_c1_g2 ()) in
  match Model.values model [ ("C1", 1.0) ] with
  | exception Awesym_error.Error { kind = Awesym_error.Invalid_request; _ } ->
    ()
  | _ -> Alcotest.fail "expected invalid_request on missing binding"

(* ---- compiled sensitivity programs ---- *)

let central_fd f v j =
  let h = Float.max 1e-9 (1e-6 *. Float.abs v.(j)) in
  let bump d =
    let w = Array.copy v in
    w.(j) <- w.(j) +. d;
    f w
  in
  let hi = bump h and lo = bump (-.h) in
  Array.map2 (fun a b -> (a -. b) /. (2.0 *. h)) hi lo

let test_sensitivity_matches_fd () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  let v = Model.values model [ ("C1", 2.5); ("G2", 0.7) ] in
  let sens = Model.eval_sensitivities model v in
  Alcotest.(check int) "one row per moment" 4 (Array.length sens);
  Alcotest.(check int) "one column per symbol" 2 (Array.length sens.(0));
  Array.iteri
    (fun j _ ->
      let fd = central_fd (Model.eval_moments model) v j in
      Array.iteri
        (fun k dk ->
          check_float ~tol:1e-5
            (Printf.sprintf "dm%d/ds%d vs finite difference" k j)
            dk sens.(k).(j))
        fd)
    v

let test_sensitivity_matches_adjoint () =
  (* The compiled symbolic derivative must agree with the numeric adjoint
     machinery of Sec. 2.3 evaluated at the same circuit point. *)
  let nl = Builders.opamp741 () in
  let gname, cname = Builders.opamp_symbol_names in
  let nl = Netlist.mark_symbolic nl gname (sym gname) in
  let nl = Netlist.mark_symbolic nl cname (sym cname) in
  let model = Model.build ~order:2 nl in
  let point = [ (gname, 2e-6); (cname, 30e-12) ] in
  let v = Model.values model point in
  let sens = Model.eval_sensitivities model v in
  let numeric_nl = substitute nl point in
  let adj = Awe.Sensitivity.create ~count:4 (Mna.build numeric_nl) in
  let col name =
    let e = Option.get (Netlist.find numeric_nl name) in
    Awe.Sensitivity.moment_derivatives adj e
  in
  let syms = Model.symbols model in
  Array.iteri
    (fun j s ->
      let name = Sym.name s in
      let expected = col name in
      Array.iteri
        (fun k dk ->
          check_float ~tol:1e-6
            (Printf.sprintf "adjoint dm%d/d%s" k name)
            dk sens.(k).(j))
        expected)
    syms

let test_pole_sensitivity_matches_fd () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  let v = Model.values model [ ("C1", 1.5); ("G2", 2.0) ] in
  let pole1_at w =
    match Model.closed_form_rom model w with
    | Some rom -> rom.Awe.Rom.poles.(0).Numeric.Cx.re
    | None -> Alcotest.fail "closed form vanished"
  in
  match Model.eval_pole_sensitivities model v with
  | None -> Alcotest.fail "order-2 model must expose pole sensitivities"
  | Some (dp1, _) ->
    Array.iteri
      (fun j _ ->
        let fd = central_fd (fun w -> [| pole1_at w |]) v j in
        check_float ~tol:1e-4
          (Printf.sprintf "dp1/ds%d vs finite difference" j)
          fd.(0) dp1.(j))
      v

let test_zero_program_bridged_rc () =
  (* Bridged RC: Cb across R1 puts the one finite zero at z = −1/(R1·Cb),
     and the circuit is exactly 2-pole, so the compiled symbolic zero must
     be exact. *)
  let r name p n v =
    Element.make ~name ~kind:Element.Resistor ~pos:p ~neg:n ~value:v ()
  in
  let c name p n v =
    Element.make ~name ~kind:Element.Capacitor ~pos:p ~neg:n ~value:v ()
  in
  let nl =
    Netlist.empty
    |> Fun.flip Netlist.add
         (Element.make ~name:"Vin" ~kind:Element.Vsource ~pos:"in" ~neg:"0"
            ~value:1.0 ())
    |> Fun.flip Netlist.add (r "R1" "in" "n1" 1e3)
    |> Fun.flip Netlist.add (c "Cb" "in" "n1" 2e-12)
    |> Fun.flip Netlist.add (c "C1" "n1" "0" 5e-12)
    |> Fun.flip Netlist.add (r "R2" "n1" "out" 2e3)
    |> Fun.flip Netlist.add (c "C2" "out" "0" 3e-12)
    |> Fun.flip Netlist.with_input "Vin"
    |> Fun.flip Netlist.with_output (Netlist.Node "out")
  in
  let nl = Netlist.mark_symbolic nl "Cb" (sym "Cb") in
  let nl = Netlist.mark_symbolic nl "C2" (sym "C2") in
  let model = Model.build ~order:2 nl in
  let prog =
    match Model.zero_program model with
    | Some p -> p
    | None -> Alcotest.fail "order-2 model must compile a zero program"
  in
  List.iter
    (fun (cb, c2) ->
      let v = Model.values model [ ("Cb", cb); ("C2", c2) ] in
      let z = (Symbolic.Slp.eval prog v).(0) in
      check_float ~tol:1e-9
        (Printf.sprintf "analytic zero at Cb=%g" cb)
        (-1.0 /. (1e3 *. cb)) z;
      let rom = Model.rom model v in
      match Awe.Rom.zeros rom with
      | [| z_rom |] ->
        check_float ~tol:1e-6 "matches ROM zero" z_rom.Numeric.Cx.re z
      | other ->
        Alcotest.failf "expected one ROM zero, got %d" (Array.length other))
    [ (2e-12, 3e-12); (8e-12, 1e-12); (0.5e-12, 10e-12) ]

let test_zero_program_none_for_order1 () =
  let model = Model.build ~order:1 (fig1_c1_g2 ()) in
  match Model.zero_program model with
  | None -> ()
  | Some _ -> Alcotest.fail "order-1 model has no finite zero"

let test_pole_sensitivity_none_at_order3 () =
  let nl = Builders.rc_ladder ~sections:5 ~r:1e3 ~c:1e-12 () in
  let nl = Netlist.mark_symbolic nl "R1" (sym "R1") in
  let model = Model.build ~order:3 nl in
  (match Model.pole_sensitivity_program model with
  | None -> ()
  | Some _ -> Alcotest.fail "no closed form at order 3");
  match Model.eval_pole_sensitivities model (Model.values model [ ("R1", 1e-3) ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "no pole sensitivities at order 3"

(* ---- multi-output models ---- *)

let test_build_many_matches_single () =
  (* One shared analysis for far-end crosstalk, near-end crosstalk, and the
     aggressor's own far end: each resulting model must equal the model
     built for that output alone. *)
  let nl = Builders.coupled_lines ~segments:6 () in
  let nl = Netlist.mark_symbolic nl "rdrv_a" (sym "g_drv") in
  let nl = Netlist.mark_symbolic nl "rdrv_b" (sym "g_drv") in
  let nl = Netlist.mark_symbolic nl "cload_a" (sym "c_load") in
  let nl = Netlist.mark_symbolic nl "cload_b" (sym "c_load") in
  let outputs =
    [ Netlist.Node "b6"; Netlist.Node "b1"; Netlist.Node "a6";
      Netlist.Diff ("a6", "b6") ]
  in
  let models = Model.build_many ~order:2 nl ~outputs in
  Alcotest.(check int) "one model per output" 4 (List.length models);
  List.iter2
    (fun output model ->
      let single = Model.build ~order:2 (Netlist.with_output nl output) in
      List.iter
        (fun (g, c) ->
          let point = [ ("g_drv", g); ("c_load", c) ] in
          let v = Model.values model point in
          let shared = Model.eval_moments model v in
          let alone = Model.eval_moments single (Model.values single point) in
          Array.iteri
            (fun k mk ->
              check_float ~tol:1e-9
                (Printf.sprintf "m%d shared vs single" k)
                alone.(k) mk)
            shared)
        [ (0.01, 50e-15); (0.002, 200e-15) ])
    outputs models

let test_build_many_numeric_identity () =
  (* And each output's compiled moments must match whole-circuit numeric
     AWE observed at that node. *)
  let nl = Builders.coupled_lines ~segments:5 () in
  let nl = Netlist.mark_symbolic nl "cload_b" (sym "c_load") in
  let outputs = [ Netlist.Node "b5"; Netlist.Node "a5" ] in
  let models = Model.build_many ~order:2 nl ~outputs in
  let point = [ ("c_load", 120e-15) ] in
  List.iter2
    (fun output model ->
      let m_sym = Model.eval_moments model (Model.values model point) in
      let numeric_nl = Netlist.with_output (substitute nl point) output in
      let m_num =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build numeric_nl))
      in
      Array.iteri
        (fun k mk -> check_float ~tol:1e-8 (Printf.sprintf "m%d" k) m_num.(k) mk)
        m_sym)
    outputs models

let test_build_many_rejects_empty () =
  match Model.build_many (fig1_c1_g2 ()) ~outputs:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on empty outputs"

let test_build_many_unknown_node () =
  match
    Model.build_many (fig1_c1_g2 ()) ~outputs:[ Circuit.Netlist.Node "nope" ]
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on unknown output node"

let test_elmore_program () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  let prog = Model.elmore_program model in
  List.iter
    (fun point ->
      let v = Model.values model point in
      check_float "compiled Elmore = -m1/m0"
        (Awe.Measures.elmore_delay (Model.eval_moments model v))
        (Symbolic.Slp.eval prog v).(0))
    points_fig1

(* Property: compiled sensitivities match finite differences at random
   points (the derivative DAGs stay correct across the whole symbol box,
   not just at hand-picked values). *)
let prop_sensitivity_fd =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  QCheck2.Test.make ~name:"compiled sensitivities ≡ finite differences"
    ~count:50
    QCheck2.Gen.(pair (float_range 0.1 10.0) (float_range 0.1 10.0))
    (fun (c1, g2) ->
      let v = Model.values model [ ("C1", c1); ("G2", g2) ] in
      let sens = Model.eval_sensitivities model v in
      let m = Model.eval_moments model v in
      let ok = ref true in
      Array.iteri
        (fun j vj ->
          let fd = central_fd (Model.eval_moments model) v j in
          Array.iteri
            (fun k dk ->
              (* FD truncation noise floor: the moment's own magnitude per
                 unit of the perturbed symbol. *)
              let floor_kj =
                1e-4 *. Float.abs m.(k) /. Float.max (Float.abs vj) 1e-9
              in
              let scale =
                Float.max (Float.abs dk)
                  (Float.max (Float.abs sens.(k).(j)) floor_kj)
              in
              if Float.abs (dk -. sens.(k).(j)) > 1e-3 *. scale then
                ok := false)
            fd)
        v;
      !ok)

(* Property: compiled moments equal numeric AWE moments at random points. *)
let prop_compiled_identity =
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:2 nl in
  QCheck2.Test.make ~name:"compiled symbolic ≡ numeric AWE on random points"
    ~count:100
    QCheck2.Gen.(pair (float_range 0.05 20.0) (float_range 0.05 20.0))
    (fun (c1, g2) ->
      let point = [ ("C1", c1); ("G2", g2) ] in
      let v = Model.values model point in
      let compiled = Model.eval_moments model v in
      let numeric =
        Awe.Moments.output_moments
          (Awe.Moments.compute ~count:4 (Mna.build (substitute nl point)))
      in
      Array.for_all2
        (fun a b -> Float.abs (a -. b) <= 1e-8 *. Float.max 1.0 (Float.abs a))
        numeric compiled)

(* ------------------------------------------------------------------ *)
(* Validate *)

let test_validate_clean_model () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  let report =
    Awesymbolic.Validate.run ~points:25
      ~ranges:[ ("C1", 0.1, 10.0); ("G2", 0.1, 10.0) ]
      model
  in
  Alcotest.(check int) "points" 25 report.Awesymbolic.Validate.points;
  Alcotest.(check bool) "moments identical" true
    (report.Awesymbolic.Validate.max_moment_error < 1e-9);
  Alcotest.(check bool) "poles identical" true
    (report.Awesymbolic.Validate.max_pole_error < 1e-9)

let test_validate_missing_range () =
  let model = Model.build ~order:1 (fig1_c1_g2 ()) in
  match
    Awesymbolic.Validate.run ~points:3 ~ranges:[ ("C1", 0.1, 1.0) ] model
  with
  | exception Awesym_error.Error { kind = Awesym_error.Invalid_request; _ } ->
    ()
  | _ -> Alcotest.fail "expected invalid_request without a G2 range"

let test_moment_bounds () =
  (* The interval enclosure must contain the moments at every sampled point
     of the box. *)
  (* Boxes must stay narrow enough that no elimination pivot's enclosure
     straddles zero (interval arithmetic drops correlations); ±15 % is the
     realistic process-variation regime anyway. *)
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  let ranges = [ ("C1", 0.85, 1.15); ("G2", 0.85, 1.15) ] in
  let bounds = Model.moment_bounds model ranges in
  List.iter
    (fun (c1, g2) ->
      let m = Model.eval_moments model (Model.values model [ ("C1", c1); ("G2", g2) ]) in
      Array.iteri
        (fun k mk ->
          if not (Symbolic.Interval.contains bounds.(k) mk) then
            Alcotest.failf "m%d = %g escapes %s at C1=%g G2=%g" k mk
              (Format.asprintf "%a" Symbolic.Interval.pp bounds.(k))
              c1 g2)
        m)
    [ (0.85, 0.85); (0.85, 1.15); (1.15, 0.85); (1.15, 1.15); (1.0, 1.0);
      (0.95, 1.07) ]

let test_moment_bounds_missing () =
  let model = Model.build ~order:1 (fig1_c1_g2 ()) in
  match Model.moment_bounds model [ ("C1", 0.5, 2.0) ] with
  | exception Awesym_error.Error { kind = Awesym_error.Invalid_request; _ } ->
    ()
  | _ -> Alcotest.fail "expected invalid_request without a G2 range"

(* ------------------------------------------------------------------ *)
(* Symbolic transient response (the paper's time-domain claim) *)

let test_transient_program_matches_rom () =
  (* The compiled symbolic step response must equal the numeric ROM's step
     response at every (symbol, time) combination. *)
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:2 nl in
  match Model.transient_program model with
  | None -> Alcotest.fail "expected a transient program at order 2"
  | Some prog ->
    let run = Symbolic.Slp.make_evaluator prog in
    List.iter
      (fun point ->
        let v = Model.values model point in
        let rom = Model.rom model v in
        List.iter
          (fun time ->
            let y_sym = (run (Array.append v [| time |])).(0) in
            let y_rom = Awe.Rom.step rom time in
            check_float ~tol:1e-9
              (Printf.sprintf "y(%g) at %s" time
                 (String.concat ","
                    (List.map (fun (n, x) -> Printf.sprintf "%s=%g" n x) point)))
              y_rom y_sym)
          [ 0.1; 0.5; 1.0; 3.0; 10.0 ])
      points_fig1

let test_transient_program_crosstalk () =
  (* Second-order cross-talk waveforms from the symbolic form — the exact
     mechanism behind the paper's Figs. 9 and 10. *)
  let nl = Builders.coupled_lines ~segments:20 () in
  let nl = Netlist.mark_symbolic nl "rdrv_a" (sym "g_drv") in
  let nl = Netlist.mark_symbolic nl "rdrv_b" (sym "g_drv") in
  let nl = Netlist.mark_symbolic nl "cload_a" (sym "c_load") in
  let nl = Netlist.mark_symbolic nl "cload_b" (sym "c_load") in
  let model = Model.build ~order:2 nl in
  match Model.transient_program model with
  | None -> Alcotest.fail "expected a transient program"
  | Some prog ->
    let run = Symbolic.Slp.make_evaluator prog in
    List.iter
      (fun rdrv ->
        let point = [ ("g_drv", 1.0 /. rdrv); ("c_load", 50e-15) ] in
        let v = Model.values model point in
        let rom = Model.rom model v in
        List.iter
          (fun time ->
            let y_sym = (run (Array.append v [| time |])).(0) in
            check_float ~tol:1e-7
              (Printf.sprintf "crosstalk y(%g) R=%g" time rdrv)
              (Awe.Rom.step rom time) y_sym)
          [ 1e-10; 5e-10; 2e-9 ])
      [ 25.0; 100.0; 400.0 ]

let test_frequency_program_matches_rom () =
  (* Re/Im of H(jω) from the compiled symbolic form = ROM evaluation. *)
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:2 nl in
  match Model.frequency_program model with
  | None -> Alcotest.fail "expected a frequency program at order 2"
  | Some prog ->
    let run = Symbolic.Slp.make_evaluator prog in
    List.iter
      (fun point ->
        let v = Model.values model point in
        let rom = Model.rom model v in
        List.iter
          (fun w ->
            let out = run (Array.append v [| w |]) in
            let h = Awe.Rom.transfer rom (Cx.make 0.0 w) in
            check_float ~tol:1e-9 (Printf.sprintf "Re H at w=%g" w) h.Cx.re out.(0);
            check_float ~tol:1e-9 (Printf.sprintf "Im H at w=%g" w) h.Cx.im out.(1))
          [ 0.01; 0.3; 1.0; 5.0; 50.0 ])
      points_fig1

let test_transient_program_none_at_order3 () =
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:3 nl in
  Alcotest.(check bool) "no closed transient form at order 3" true
    (Option.is_none (Model.transient_program model))

(* ------------------------------------------------------------------ *)
(* Macromodel *)

let rc_block () =
  (* A source-free RC ladder block with ports at both ends. *)
  Circuit.Parser.parse_string
    {|
R1 a m1 100
C1 m1 0 1p
R2 m1 m2 100
C2 m2 0 1p
R3 m2 b 100
C3 b 0 0.5p
I1 a 0 0
|}
(* The 0-A source only exists so the netlist has a designated input when
   needed elsewhere; Macromodel ignores it. *)

let test_macromodel_matches_ac () =
  let nl = rc_block () in
  let mm = Awesymbolic.Macromodel.reduce ~order:3 ~ports:[ "a"; "b" ] nl in
  let reduction =
    Awesymbolic.Port_reduction.of_netlist ~count:8 ~ports:[| "a"; "b" |]
      (Netlist.add_all Netlist.empty
         (List.filter
            (fun (e : Element.t) -> not (Element.is_source e))
            (Netlist.elements nl)))
  in
  (* Compare the fitted model against the truncated exact series well inside
     its convergence region, and against direct values at low frequency. *)
  List.iter
    (fun f ->
      let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
      let fitted = Awesymbolic.Macromodel.admittance mm s in
      let exact = Awesymbolic.Port_reduction.admittance_at reduction s in
      for j = 0 to 1 do
        for k = 0 to 1 do
          let a = Numeric.Cmatrix.get fitted j k in
          let b = Numeric.Cmatrix.get exact j k in
          if Cx.norm (Cx.sub a b) > 2e-2 *. Float.max 1e-6 (Cx.norm b) then
            Alcotest.failf "Y[%d][%d] mismatch at %g Hz" j k f
        done
      done)
    [ 1e6; 1e8; 3e8 ]

let test_macromodel_synthesis_embeds () =
  (* Synthesize the fitted 2-port back into elements, embed it in a
     driver/load harness, and check v(out) against the same harness solved
     algebraically on the fitted Y(s): the synthesis must be exact. *)
  let mm = Awesymbolic.Macromodel.reduce ~order:3 ~ports:[ "a"; "b" ] (rc_block ()) in
  let rs = 50.0 and rl = 5e3 in
  let harness =
    Awesymbolic.Macromodel.to_netlist mm
    |> Fun.flip Netlist.add
         (Element.make ~name:"Vin" ~kind:Element.Vsource ~pos:"in" ~neg:"0"
            ~value:1.0 ())
    |> Fun.flip Netlist.add
         (Element.make ~name:"Rs" ~kind:Element.Resistor ~pos:"in" ~neg:"a"
            ~value:rs ())
    |> Fun.flip Netlist.add
         (Element.make ~name:"Rl" ~kind:Element.Resistor ~pos:"b" ~neg:"0"
            ~value:rl ())
    |> Fun.flip Netlist.with_input "Vin"
    |> Fun.flip Netlist.with_output (Netlist.Node "b")
  in
  let mna = Mna.build harness in
  List.iter
    (fun f ->
      let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
      (* (Y + diag(1/Rs, 1/Rl))·v = [vin/Rs; 0] on the fitted Y. *)
      let y = Awesymbolic.Macromodel.admittance mm s in
      let a = Numeric.Cmatrix.init 2 2 (fun i j -> Numeric.Cmatrix.get y i j) in
      Numeric.Cmatrix.add_entry a 0 0 (Cx.of_float (1.0 /. rs));
      Numeric.Cmatrix.add_entry a 1 1 (Cx.of_float (1.0 /. rl));
      let v = Numeric.Cmatrix.solve a [| Cx.of_float (1.0 /. rs); Cx.zero |] in
      let expected = v.(1) in
      let measured = Spice.Ac.at_frequency mna f in
      if Cx.norm (Cx.sub expected measured) > 1e-9 *. Float.max 1e-9 (Cx.norm expected)
      then
        Alcotest.failf "synthesized block off at %g Hz: %s vs %s" f
          (Format.asprintf "%a" Cx.pp expected)
          (Format.asprintf "%a" Cx.pp measured))
    [ 0.0; 1e6; 1e8; 1e9; 1e10 ]

let test_macromodel_reciprocal () =
  (* RC networks are reciprocal: Y must be symmetric. *)
  let mm = Awesymbolic.Macromodel.reduce ~order:2 ~ports:[ "a"; "b" ] (rc_block ()) in
  let s = Cx.make 0.0 (2.0 *. Float.pi *. 1e8) in
  let y = Awesymbolic.Macromodel.admittance mm s in
  let y01 = Numeric.Cmatrix.get y 0 1 and y10 = Numeric.Cmatrix.get y 1 0 in
  if Cx.norm (Cx.sub y01 y10) > 1e-6 *. Cx.norm y01 then
    Alcotest.fail "reciprocity violated"

let test_macromodel_dc_transfer () =
  (* At DC the block is the resistive ladder: Y[a][a] = 1/(R1+R2+R3). *)
  let mm = Awesymbolic.Macromodel.reduce ~order:2 ~ports:[ "a"; "b" ] (rc_block ()) in
  let y0 = Awesymbolic.Macromodel.admittance mm Cx.zero in
  check_float ~tol:1e-9 "DC input conductance" (1.0 /. 300.0)
    (Numeric.Cmatrix.get y0 0 0).Cx.re;
  check_float ~tol:1e-9 "DC transfer conductance" (-1.0 /. 300.0)
    (Numeric.Cmatrix.get y0 0 1).Cx.re

let test_macromodel_step_current () =
  (* Driving port a with a step: the port-a current settles to the DC
     conductance, the port-b current to the (negative) transfer value. *)
  let mm = Awesymbolic.Macromodel.reduce ~order:3 ~ports:[ "a"; "b" ] (rc_block ()) in
  let late = 1e-6 in
  check_float ~tol:1e-6 "i_a(∞)" (1.0 /. 300.0)
    (Awesymbolic.Macromodel.step_current mm ~into:0 ~driven:0 late);
  check_float ~tol:1e-6 "i_b(∞)" (-1.0 /. 300.0)
    (Awesymbolic.Macromodel.step_current mm ~into:1 ~driven:0 late)

let test_macromodel_s_parameters () =
  (* Passivity: |S| ≤ 1 everywhere; at DC with matched reference the
     transmission must dominate reflection for a through-connected block. *)
  let mm = Awesymbolic.Macromodel.reduce ~order:3 ~ports:[ "a"; "b" ] (rc_block ()) in
  List.iter
    (fun f ->
      let s_mat =
        Awesymbolic.Macromodel.s_parameters mm ~z0:50.0
          (Cx.make 0.0 (2.0 *. Float.pi *. f))
      in
      for j = 0 to 1 do
        for k = 0 to 1 do
          let mag = Cx.norm (Numeric.Cmatrix.get s_mat j k) in
          if mag > 1.0 +. 1e-6 then
            Alcotest.failf "|S[%d][%d]| = %g > 1 at %g Hz" j k mag f
        done
      done)
    [ 1e3; 1e7; 1e9 ]

let test_macromodel_touchstone () =
  let mm = Awesymbolic.Macromodel.reduce ~order:2 ~ports:[ "a"; "b" ] (rc_block ()) in
  let freqs = [| 1e6; 1e8 |] in
  let text = Awesymbolic.Macromodel.touchstone mm ~z0:50.0 ~frequencies:freqs in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> l <> "" && l.[0] <> '!')
  in
  (match lines with
  | header :: _ ->
    Alcotest.(check string) "option line" "# Hz S RI R 50" header
  | [] -> Alcotest.fail "empty touchstone");
  let data = List.tl lines in
  Alcotest.(check int) "one row per frequency" 2 (List.length data);
  List.iteri
    (fun i row ->
      let fields =
        String.split_on_char ' ' row
        |> List.filter (fun s -> s <> "")
        |> List.map float_of_string
      in
      Alcotest.(check int) "9 columns for a 2-port" 9 (List.length fields);
      let f = List.nth fields 0 in
      check_float "frequency column" freqs.(i) f;
      (* Column order S11 S21 S12 S22; check S11 against s_parameters. *)
      let s =
        Awesymbolic.Macromodel.s_parameters mm ~z0:50.0
          (Numeric.Cx.make 0.0 (2.0 *. Float.pi *. f))
      in
      let s11 = Numeric.Cmatrix.get s 0 0 in
      check_float ~tol:1e-9 "S11 re" s11.Numeric.Cx.re (List.nth fields 1);
      check_float ~tol:1e-9 "S11 im" s11.Numeric.Cx.im (List.nth fields 2);
      let s21 = Numeric.Cmatrix.get s 1 0 in
      check_float ~tol:1e-9 "S21 re" s21.Numeric.Cx.re (List.nth fields 3);
      (* Passivity of the exported data. *)
      List.iteri
        (fun k v ->
          if k >= 1 && Float.abs v > 1.0 +. 1e-9 then
            Alcotest.failf "non-passive S entry %g" v)
        fields)
    data

let test_macromodel_bad_port () =
  match Awesymbolic.Macromodel.reduce ~ports:[ "nope" ] (rc_block ()) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown port accepted"

(* ------------------------------------------------------------------ *)
(* Compiled-model artifacts: save/load round trips, integrity checks,
   and the content-addressed build cache *)

module Artifact = Awesymbolic.Artifact
module Cache = Awesymbolic.Cache

let bits = Int64.bits_of_float

let with_temp_file f =
  let path = Filename.temp_file "awesym-test" ".awm" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let check_bits name expected actual =
  Array.iteri
    (fun k x ->
      if bits x <> bits actual.(k) then
        Alcotest.failf "%s: entry %d differs: %h vs %h" name k x actual.(k))
    expected

let test_artifact_roundtrip () =
  let nl = fig1_c1_g2 () in
  let model = Model.build ~order:2 nl in
  with_temp_file @@ fun path ->
  Model.save model path;
  let loaded = Model.load path in
  Alcotest.(check int) "order survives" (Model.order model) (Model.order loaded);
  Alcotest.(check (list string))
    "symbols survive"
    (Array.to_list (Array.map Sym.name (Model.symbols model)))
    (Array.to_list (Array.map Sym.name (Model.symbols loaded)));
  check_bits "nominals survive" (Model.nominal_values model)
    (Model.nominal_values loaded);
  Alcotest.(check bool) "output metadata survives" true
    (Model.output_meta model = Model.output_meta loaded);
  (* Evaluations must be bit-identical, not merely close. *)
  List.iter
    (fun point ->
      let v = Model.values model point in
      check_bits "moments bit-identical"
        (Model.eval_moments model v)
        (Model.eval_moments loaded v);
      match (Model.closed_form_rom model v, Model.closed_form_rom loaded v) with
      | Some a, Some b ->
        check_bits "closed-form poles bit-identical"
          (Array.map (fun (p : Cx.t) -> p.Cx.re) a.Awe.Rom.poles)
          (Array.map (fun (p : Cx.t) -> p.Cx.re) b.Awe.Rom.poles)
      | None, None -> ()
      | _ -> Alcotest.fail "closed-form availability changed across save/load")
    points_fig1;
  (* Reconstructed symbolic forms keep the derived programs working. *)
  let v = Model.values loaded [ ("C1", 1.5); ("G2", 0.8) ] in
  check_float "loaded Elmore program"
    (Awe.Measures.elmore_delay (Model.eval_moments loaded v))
    (Symbolic.Slp.eval (Model.elmore_program loaded) v).(0);
  (* Only the netlist analysis itself is gone. *)
  match Model.partition_opt loaded with
  | None -> ()
  | Some _ -> Alcotest.fail "partition should be unavailable on a loaded model"

let test_artifact_save_is_deterministic () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  with_temp_file @@ fun p1 ->
  with_temp_file @@ fun p2 ->
  Model.save model p1;
  Model.save model p2;
  let read p = In_channel.with_open_bin p In_channel.input_all in
  Alcotest.(check bool) "same bytes on every save" true (read p1 = read p2)

let expect_format_error ~substring path =
  match Model.load path with
  | exception Artifact.Format_error msg ->
    if
      not
        (String.length msg >= String.length substring
        && (let found = ref false in
            for i = 0 to String.length msg - String.length substring do
              if String.sub msg i (String.length substring) = substring then
                found := true
            done;
            !found))
    then
      Alcotest.failf "Format_error message %S does not mention %S" msg substring
  | exception e ->
    Alcotest.failf "expected Format_error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "corrupted artifact loaded without complaint"

let rewrite path f =
  let data = In_channel.with_open_bin path In_channel.input_all in
  let data = f (Bytes.of_string data) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc data)

let test_artifact_corruption_detected () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  with_temp_file @@ fun path ->
  Model.save model path;
  (* Flip one payload byte: the MD5 check must catch it. *)
  rewrite path (fun b ->
      let i = Bytes.length b - 3 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      b);
  expect_format_error ~substring:"corrupted" path

let test_artifact_version_drift_detected () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  with_temp_file @@ fun path ->
  Model.save model path;
  (* Bump the version field (it sits right after the magic string). *)
  rewrite path (fun b ->
      Bytes.set_int32_le b (String.length Artifact.magic)
        (Int32.of_int (Artifact.version + 1));
      b);
  expect_format_error ~substring:"version" path

let test_artifact_truncation_detected () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  with_temp_file @@ fun path ->
  Model.save model path;
  rewrite path (fun b -> Bytes.sub b 0 (Bytes.length b / 2));
  (* Half a file keeps the header but loses payload bytes. *)
  (match Model.load path with
  | exception Artifact.Format_error _ -> ()
  | _ -> Alcotest.fail "truncated artifact loaded");
  rewrite path (fun b -> Bytes.sub b 0 7);
  expect_format_error ~substring:"too short" path

let test_artifact_bad_magic_detected () =
  let model = Model.build ~order:2 (fig1_c1_g2 ()) in
  with_temp_file @@ fun path ->
  Model.save model path;
  rewrite path (fun b ->
      Bytes.set b 0 'X';
      b);
  expect_format_error ~substring:"magic" path

let test_build_cached_roundtrip () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "awesym-cache-test-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let nl = fig1_c1_g2 () in
  let key = Cache.key ~order:2 nl in
  let entry = Cache.path ~dir key in
  (* Miss: builds and writes the artifact. *)
  let fresh = Model.build_cached ~cache_dir:dir ~order:2 nl in
  Alcotest.(check bool) "artifact written on miss" true (Sys.file_exists entry);
  (* Hit: loads the artifact, bit-identical evaluations. *)
  let cached = Model.build_cached ~cache_dir:dir ~order:2 nl in
  List.iter
    (fun point ->
      let v = Model.values fresh point in
      check_bits "cache hit bit-identical"
        (Model.eval_moments fresh v)
        (Model.eval_moments cached v))
    points_fig1;
  (* A different order is a different key: no false sharing. *)
  Alcotest.(check bool) "order is part of the key" true
    (Cache.key ~order:3 nl <> key);
  (* Corrupt the entry: build_cached must rebuild silently. *)
  rewrite entry (fun b ->
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
      b);
  let rebuilt = Model.build_cached ~cache_dir:dir ~order:2 nl in
  let v = Model.values fresh [ ("C1", 2.0); ("G2", 0.5) ] in
  check_bits "rebuilt after corruption"
    (Model.eval_moments fresh v)
    (Model.eval_moments rebuilt v)

let test_cache_atomic_write () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "awesym-atomic-test-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Cache.ensure_dir dir;
  let nl = fig1_c1_g2 () in
  let entry = Cache.path ~dir (Cache.key ~order:2 nl) in
  (* A crashed writer — half an artifact, then an exception — must leave
     no entry behind: a later build_cached sees a clean miss, never a
     half-written hit. *)
  let model = Model.build ~order:2 nl in
  (match
     Cache.atomic_write entry (fun tmp ->
         Model.save model tmp;
         let len = (Unix.stat tmp).Unix.st_size in
         let truncated = open_out_gen [ Open_wronly ] 0o644 tmp in
         Unix.ftruncate (Unix.descr_of_out_channel truncated) (len / 2);
         close_out truncated;
         failwith "simulated crash mid-write")
   with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "crashing writer did not raise");
  Alcotest.(check bool) "no destination after crash" false
    (Sys.file_exists entry);
  Alcotest.(check bool) "no temp litter after crash" true
    (Array.for_all
       (fun f -> not (Filename.check_suffix f ".tmp"))
       (Sys.readdir dir));
  (* build_cached on the same key treats the aborted write as a miss and
     produces a working entry. *)
  let rebuilt = Model.build_cached ~cache_dir:dir ~order:2 nl in
  Alcotest.(check bool) "entry published after clean write" true
    (Sys.file_exists entry);
  let v = Model.values model [ ("C1", 2.0); ("G2", 0.5) ] in
  check_bits "post-recovery model intact"
    (Model.eval_moments model v)
    (Model.eval_moments rebuilt v);
  (* A successful atomic_write replaces the entry in one step. *)
  Cache.atomic_write entry (fun tmp -> Model.save model tmp);
  let loaded = Model.load entry in
  check_bits "atomically replaced entry loads"
    (Model.eval_moments model v)
    (Model.eval_moments loaded v)

let test_cache_gc_kernels () =
  (* Model artifacts (.awm) and compiled kernels (.cmxs) share one gc
     budget; .tmp crash leftovers and .bad quarantined objects are swept
     unconditionally.  Eviction is oldest-access-first across both
     entry kinds. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "awesym-gc-test-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Cache.ensure_dir dir;
  let put name bytes age_s =
    let p = Filename.concat dir name in
    let oc = open_out_bin p in
    output_string oc (String.make bytes 'k');
    close_out oc;
    let t = Unix.gettimeofday () -. age_s in
    Unix.utimes p t t;
    p
  in
  let old_awm = put "old.awm" 1000 300.0 in
  let old_ckpt = put "orphan-sweep.ckpt" 1000 250.0 in
  let old_cmxs = put "old-kernel.cmxs" 1000 200.0 in
  let new_awm = put "new.awm" 1000 10.0 in
  let new_cmxs = put "new-kernel.cmxs" 1000 5.0 in
  let tmp = put ".awesym-leftover.tmp" 50 0.0 in
  let bad = put "stale-kernel.cmxs.bad" 50 0.0 in
  (* A budget holding the two newest entries: the three oldest go — one
     of each extension, proving artifacts, kernels, and orphaned sweep
     checkpoints share the pool — and the sweep removes .tmp/.bad
     regardless of their size or age. *)
  let stats = Cache.gc ~dir ~max_bytes:2000 () in
  Alcotest.(check int) "scanned entries (post-sweep)" 5 stats.Cache.scanned;
  Alcotest.(check int) "evicted oldest three" 3 stats.Cache.deleted;
  Alcotest.(check int) "bytes before" 5000 stats.Cache.bytes_before;
  Alcotest.(check int) "bytes after fits budget" 2000 stats.Cache.bytes_after;
  List.iter
    (fun (p, expect) ->
      Alcotest.(check bool) (Filename.basename p) expect (Sys.file_exists p))
    [
      (old_awm, false); (old_ckpt, false); (old_cmxs, false);
      (new_awm, true); (new_cmxs, true); (tmp, false); (bad, false);
    ];
  (* A second run under the same budget is a no-op. *)
  let again = Cache.gc ~dir ~max_bytes:2000 () in
  Alcotest.(check int) "steady state deletes nothing" 0 again.Cache.deleted

let test_artifact_golden () =
  (* A committed artifact pins the on-disk format: if [Artifact.version] (or
     the byte layout) drifts without regenerating the golden file — see
     test/golden/README.md — this load fails and CI goes red. *)
  let model = Model.load "golden/fig1_order2.awm" in
  Alcotest.(check int) "golden order" 2 (Model.order model);
  Alcotest.(check (list string))
    "golden symbols" [ "C1"; "G2" ]
    (Array.to_list (Array.map Sym.name (Model.symbols model)));
  (* fig1 with C1 = G2 = 1 has moments 1, −3, 8, −21 (paper Sec. 2.1). *)
  let m =
    Model.eval_moments model (Model.values model [ ("C1", 1.0); ("G2", 1.0) ])
  in
  check_float "golden m0" 1.0 m.(0);
  check_float "golden m1" (-3.0) m.(1);
  check_float "golden m2" 8.0 m.(2);
  check_float "golden m3" (-21.0) m.(3)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "awesymbolic"
    [
      ( "partition",
        [
          quick "fig1 ports and split" test_partition_fig1;
          quick "op-amp ports" test_partition_opamp;
          quick "no symbols rejected" test_partition_no_symbols;
          quick "shared symbol" test_partition_shared_symbol;
        ] );
      ( "port_reduction",
        [
          quick "resistive two-port" test_port_reduction_resistive;
          quick "internal storage vs direct" test_port_reduction_internal_storage;
        ] );
      ( "symbolic_moments",
        [
          quick "partitioned ≡ exact whole-circuit" test_ratfun_moments_match_exact;
          quick "first-order forms multilinear" test_first_order_moments_multilinear;
        ] );
      ( "compiled",
        [
          quick "fig1 moments identical" test_compiled_moments_identical_fig1;
          quick "fig1 poles identical" test_compiled_rom_identical_fig1;
          quick "closed form matches numeric fit" test_closed_form_matches_numeric;
          quick "op-amp identity (paper Sec. 3.1)" test_opamp_compiled_identity;
          quick "coupled lines identity (paper Sec. 3.2)" test_coupled_lines_compiled_identity;
          quick "symbolic inductor identity" test_symbolic_inductor_identity;
          quick "symbolic transconductance identity" test_symbolic_vccs_identity;
          quick "order-3 model identity" test_order3_model_identity;
          quick "closed form degrades gracefully" test_closed_form_none_on_complex_poles;
          quick "symbolic mutual inductance identity" test_symbolic_mutual_identity;
          quick "fast evaluator consistent" test_evaluator_consistent;
          quick "missing binding rejected" test_values_missing_symbol;
          quick "sensitivity program vs finite difference"
            test_sensitivity_matches_fd;
          quick "sensitivity program vs adjoint (op-amp)"
            test_sensitivity_matches_adjoint;
          quick "pole sensitivity vs finite difference"
            test_pole_sensitivity_matches_fd;
          quick "pole sensitivity absent at order 3"
            test_pole_sensitivity_none_at_order3;
          quick "compiled symbolic zero (bridged RC)"
            test_zero_program_bridged_rc;
          quick "no zero program at order 1" test_zero_program_none_for_order1;
          quick "compiled Elmore delay" test_elmore_program;
          quick "build_many ≡ per-output build" test_build_many_matches_single;
          quick "build_many ≡ numeric AWE per output"
            test_build_many_numeric_identity;
          quick "build_many rejects empty outputs" test_build_many_rejects_empty;
          quick "build_many rejects unknown node" test_build_many_unknown_node;
        ]
        @ props [ prop_compiled_identity; prop_sensitivity_fd ] );
      ( "validate",
        [
          quick "clean model reports tiny errors" test_validate_clean_model;
          quick "missing range rejected" test_validate_missing_range;
          quick "interval bounds enclose samples" test_moment_bounds;
          quick "interval bounds need every range" test_moment_bounds_missing;
        ] );
      ( "transient",
        [
          quick "symbolic step response = ROM step" test_transient_program_matches_rom;
          quick "crosstalk waveforms from the symbolic form" test_transient_program_crosstalk;
          quick "frequency response from the symbolic form" test_frequency_program_matches_rom;
          quick "no closed form at order 3" test_transient_program_none_at_order3;
        ] );
      ( "macromodel",
        [
          quick "fitted Y matches series" test_macromodel_matches_ac;
          quick "synthesis embeds exactly" test_macromodel_synthesis_embeds;
          quick "reciprocity" test_macromodel_reciprocal;
          quick "DC conductances" test_macromodel_dc_transfer;
          quick "step currents settle" test_macromodel_step_current;
          quick "passive S-parameters" test_macromodel_s_parameters;
          quick "unknown port rejected" test_macromodel_bad_port;
          quick "touchstone export" test_macromodel_touchstone;
        ] );
      ( "artifact",
        [
          quick "save/load round trip bit-identical" test_artifact_roundtrip;
          quick "save is deterministic" test_artifact_save_is_deterministic;
          quick "corruption detected" test_artifact_corruption_detected;
          quick "version drift detected" test_artifact_version_drift_detected;
          quick "truncation detected" test_artifact_truncation_detected;
          quick "bad magic detected" test_artifact_bad_magic_detected;
          quick "build cache miss/hit/corruption" test_build_cached_roundtrip;
          quick "atomic cache writes" test_cache_atomic_write;
          quick "gc shares budget across .awm/.cmxs" test_cache_gc_kernels;
          quick "committed golden artifact loads" test_artifact_golden;
        ] );
    ]
