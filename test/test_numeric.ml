(* Unit and property tests for the numeric substrate. *)

module Matrix = Numeric.Matrix
module Lu = Numeric.Lu
module Cx = Numeric.Cx
module Poly = Numeric.Poly
module Roots = Numeric.Roots

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let check_complex ?(tol = 1e-9) name (expected : Cx.t) (actual : Cx.t) =
  if Cx.norm (Cx.sub expected actual) > tol *. Float.max 1.0 (Cx.norm expected)
  then
    Alcotest.failf "%s: expected %s, got %s" name
      (Format.asprintf "%a" Cx.pp expected)
      (Format.asprintf "%a" Cx.pp actual)

(* ------------------------------------------------------------------ *)
(* Matrix *)

let test_matrix_basic () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "get" 3.0 (Matrix.get m 1 0);
  Matrix.add_entry m 1 0 0.5;
  check_float "add_entry" 3.5 (Matrix.get m 1 0);
  let t = Matrix.transpose m in
  check_float "transpose" 3.5 (Matrix.get t 0 1)

let test_matrix_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  check_float "mul 00" 19.0 (Matrix.get c 0 0);
  check_float "mul 01" 22.0 (Matrix.get c 0 1);
  check_float "mul 10" 43.0 (Matrix.get c 1 0);
  check_float "mul 11" 50.0 (Matrix.get c 1 1)

let test_matrix_vec () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let v = Matrix.mul_vec a [| 1.0; 1.0 |] in
  check_float "mul_vec 0" 3.0 v.(0);
  check_float "mul_vec 1" 7.0 v.(1);
  let w = Matrix.mul_vec_transpose a [| 1.0; 1.0 |] in
  check_float "mul_vec_t 0" 4.0 w.(0);
  check_float "mul_vec_t 1" 6.0 w.(1)

let test_matrix_identity () =
  let i3 = Matrix.identity 3 in
  let a = Matrix.init 3 3 (fun i j -> float_of_int ((3 * i) + j)) in
  Alcotest.(check bool) "I·A = A" true (Matrix.equal (Matrix.mul i3 a) a);
  Alcotest.(check bool) "A·I = A" true (Matrix.equal (Matrix.mul a i3) a)

let test_matrix_shape_mismatch () =
  let a = Matrix.create 2 3 and b = Matrix.create 2 2 in
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Matrix.add: shape mismatch") (fun () ->
      ignore (Matrix.add a b))

(* ------------------------------------------------------------------ *)
(* LU *)

let test_lu_solve_known () =
  let a = Matrix.of_arrays [| [| 4.0; 3.0 |]; [| 6.0; 3.0 |] |] in
  let x = Lu.solve_dense a [| 10.0; 12.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_lu_det () =
  let a = Matrix.of_arrays [| [| 4.0; 3.0 |]; [| 6.0; 3.0 |] |] in
  check_float "det" (-6.0) (Lu.det (Lu.factor a))

let test_lu_singular () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Lu.factor a with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_lu_transpose_solve () =
  let a = Matrix.of_arrays [| [| 2.0; 1.0; 0.0 |]; [| 1.0; 3.0; 1.0 |]; [| 0.0; 1.0; 4.0 |] |] in
  let lu = Lu.factor a in
  let b = [| 1.0; 2.0; 3.0 |] in
  let x = Lu.solve_transpose lu b in
  let back = Matrix.mul_vec (Matrix.transpose a) x in
  Array.iteri (fun i v -> check_float (Printf.sprintf "aT·x = b [%d]" i) b.(i) v) back

let test_lu_inverse () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 5.0 |] |] in
  let inv = Lu.inverse (Lu.factor a) in
  Alcotest.(check bool) "A·A⁻¹ = I" true
    (Matrix.equal ~tol:1e-9 (Matrix.mul a inv) (Matrix.identity 2))

(* The Hager/Higham reciprocal-condition estimate: exact on identity-like
   matrices, honest (tiny) on near-singular and notoriously ill-conditioned
   ones, and always in [0, 1]. *)
let test_lu_rcond () =
  let rcond a = (Lu.health (Lu.factor a)).Lu.rcond in
  check_float "identity" 1.0 (rcond (Matrix.identity 5));
  check_float "scaled identity" 1.0
    (rcond (Matrix.of_arrays [| [| 1e6; 0.0 |]; [| 0.0; 1e6 |] |]));
  let near_singular =
    Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 +. 1e-12 |] |]
  in
  Alcotest.(check bool) "near-singular is tiny" true
    (rcond near_singular < 1e-10);
  let hilbert n = Matrix.init n n (fun i j -> 1.0 /. float_of_int (i + j + 1)) in
  Alcotest.(check bool) "hilbert 8 is tiny" true (rcond (hilbert 8) < 1e-7);
  List.iter
    (fun a ->
      let r = rcond a in
      Alcotest.(check bool) "in [0, 1]" true (0.0 <= r && r <= 1.0))
    [ Matrix.identity 3; near_singular; hilbert 6; hilbert 10 ];
  (* Well-conditioned but not trivially so: the estimate stays O(1). *)
  let a = Matrix.of_arrays [| [| 4.0; 3.0 |]; [| 6.0; 3.0 |] |] in
  Alcotest.(check bool) "well-conditioned is O(1)" true (rcond a > 1e-3)

let test_sparse_rcond_proxy () =
  let dense = Matrix.of_arrays [| [| 4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let sp = Numeric.Sparse.of_dense dense in
  let h = Numeric.Sparse.health (Numeric.Sparse.factor sp) in
  Alcotest.(check bool) "sparse proxy in (0, 1]" true
    (0.0 < h.Lu.rcond && h.Lu.rcond <= 1.0)

(* Property: LU solve residual is tiny for random diagonally dominant
   systems. *)
let prop_lu_residual =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 8 in
      let* entries = array_size (return (n * n)) (float_range (-1.0) 1.0) in
      let* rhs = array_size (return n) (float_range (-10.0) 10.0) in
      return (n, entries, rhs))
  in
  QCheck2.Test.make ~name:"lu residual small on diag-dominant systems"
    ~count:200 gen (fun (n, entries, rhs) ->
      let a =
        Matrix.init n n (fun i j ->
            let v = entries.((i * n) + j) in
            if i = j then v +. float_of_int n +. 1.0 else v)
      in
      let x = Lu.solve_dense a rhs in
      let back = Matrix.mul_vec a x in
      Array.for_all2
        (fun u v -> Float.abs (u -. v) <= 1e-8 *. Float.max 1.0 (Float.abs u))
        rhs back)

let prop_lu_transpose_consistent =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* entries = array_size (return (n * n)) (float_range (-1.0) 1.0) in
      let* rhs = array_size (return n) (float_range (-5.0) 5.0) in
      return (n, entries, rhs))
  in
  QCheck2.Test.make ~name:"solve_transpose equals solve on explicit transpose"
    ~count:200 gen (fun (n, entries, rhs) ->
      let a =
        Matrix.init n n (fun i j ->
            let v = entries.((i * n) + j) in
            if i = j then v +. float_of_int n +. 1.0 else v)
      in
      let lu = Lu.factor a in
      let x1 = Lu.solve_transpose lu rhs in
      let x2 = Lu.solve_dense (Matrix.transpose a) rhs in
      Array.for_all2 (fun u v -> Float.abs (u -. v) <= 1e-8 *. Float.max 1.0 (Float.abs u)) x1 x2)

(* ------------------------------------------------------------------ *)
(* Complex *)

let test_cx_arith () =
  let z = Cx.mul (Cx.make 1.0 2.0) (Cx.make 3.0 (-1.0)) in
  check_complex "mul" (Cx.make 5.0 5.0) z;
  check_complex "inv·z = 1" Cx.one (Cx.mul z (Cx.inv z));
  check_complex "pow_int" (Cx.make (-2.0) 2.0) (Cx.pow_int (Cx.make 1.0 1.0) 3);
  check_complex "pow_int neg" (Cx.inv (Cx.make (-2.0) 2.0))
    (Cx.pow_int (Cx.make 1.0 1.0) (-3))

(* ------------------------------------------------------------------ *)
(* Cmatrix *)

let test_cmatrix_solve () =
  (* (1+i)·x + y = 3+i;  x − y = i  →  solve and verify by substitution. *)
  let a =
    Numeric.Cmatrix.init 2 2 (fun i j ->
        match (i, j) with
        | 0, 0 -> Cx.make 1.0 1.0
        | 0, 1 -> Cx.one
        | 1, 0 -> Cx.one
        | _ -> Cx.neg Cx.one)
  in
  let b = [| Cx.make 3.0 1.0; Cx.i |] in
  let x = Numeric.Cmatrix.solve a b in
  let back = Numeric.Cmatrix.mul_vec a x in
  Array.iteri
    (fun k v -> check_complex (Printf.sprintf "residual %d" k) b.(k) v)
    back

let test_cmatrix_combine () =
  let g = Matrix.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let c = Matrix.of_arrays [| [| 0.5; 0.0 |]; [| 0.0; 0.25 |] |] in
  let s = Cx.make 0.0 2.0 in
  let m = Numeric.Cmatrix.combine g s c in
  check_complex "entry 00" (Cx.make 1.0 1.0) (Numeric.Cmatrix.get m 0 0);
  check_complex "entry 11" (Cx.make 2.0 0.5) (Numeric.Cmatrix.get m 1 1)

let test_cmatrix_singular () =
  let a = Numeric.Cmatrix.init 2 2 (fun _ _ -> Cx.one) in
  match Numeric.Cmatrix.solve a [| Cx.one; Cx.one |] with
  | exception Numeric.Cmatrix.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let prop_cmatrix_residual =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* re = array_size (return (n * n)) (float_range (-1.0) 1.0) in
      let* im = array_size (return (n * n)) (float_range (-1.0) 1.0) in
      let* rhs = array_size (return n) (float_range (-3.0) 3.0) in
      return (n, re, im, rhs))
  in
  QCheck2.Test.make ~name:"complex solve residual small" ~count:200 gen
    (fun (n, re, im, rhs) ->
      let a =
        Numeric.Cmatrix.init n n (fun i j ->
            let k = (i * n) + j in
            let base = Cx.make re.(k) im.(k) in
            if i = j then Cx.add base (Cx.of_float (float_of_int n +. 1.0))
            else base)
      in
      let b = Array.map Cx.of_float rhs in
      let x = Numeric.Cmatrix.solve a b in
      let back = Numeric.Cmatrix.mul_vec a x in
      Array.for_all2
        (fun u v -> Cx.norm (Cx.sub u v) <= 1e-8 *. Float.max 1.0 (Cx.norm u))
        b back)

(* ------------------------------------------------------------------ *)
(* Sparse *)

module Sparse = Numeric.Sparse

let test_sparse_roundtrip () =
  let d = Matrix.of_arrays [| [| 2.0; 0.0; 1.0 |]; [| 0.0; 3.0; 0.0 |]; [| -1.0; 0.0; 4.0 |] |] in
  let s = Sparse.of_dense d in
  Alcotest.(check int) "nnz" 5 (Sparse.nnz s);
  Alcotest.(check bool) "roundtrip" true (Matrix.equal d (Sparse.to_dense s))

let test_sparse_entries_accumulate () =
  let s = Sparse.of_entries 2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, 5.0) ] in
  check_float "stamped" 3.0 (Matrix.get (Sparse.to_dense s) 0 0)

let test_sparse_solve_known () =
  let s = Sparse.of_entries 2 [ (0, 0, 4.0); (0, 1, 3.0); (1, 0, 6.0); (1, 1, 3.0) ] in
  let x = Sparse.solve (Sparse.factor s) [| 10.0; 12.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_sparse_needs_pivoting () =
  (* Zero leading diagonal forces a row exchange. *)
  let s = Sparse.of_entries 2 [ (0, 1, 1.0); (1, 0, 2.0); (1, 1, 1.0) ] in
  let x = Sparse.solve (Sparse.factor s) [| 3.0; 5.0 |] in
  (* 0·x0 + 1·x1 = 3; 2·x0 + x1 = 5 → x1 = 3, x0 = 1. *)
  check_float "x0" 1.0 x.(0);
  check_float "x1" 3.0 x.(1)

let test_sparse_singular () =
  let s = Sparse.of_entries 2 [ (0, 0, 1.0); (1, 0, 2.0) ] in
  match Sparse.factor s with
  | exception Sparse.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_sparse_tridiagonal_no_fill () =
  (* Ladder-like tridiagonal: natural order factors with zero fill-in. *)
  let n = 50 in
  let entries = ref [] in
  for i = 0 to n - 1 do
    entries := (i, i, 4.0) :: !entries;
    if i > 0 then entries := (i, i - 1, -1.0) :: (i - 1, i, -1.0) :: !entries
  done;
  let s = Sparse.of_entries n !entries in
  let f = Sparse.factor s in
  Alcotest.(check int) "zero fill-in" 0 (Sparse.fill_in f);
  let b = Array.init n (fun i -> float_of_int (i mod 7)) in
  let x = Sparse.solve f b in
  let back = Sparse.mul_vec s x in
  Array.iteri
    (fun i v -> check_float ~tol:1e-9 (Printf.sprintf "residual %d" i) b.(i) v)
    back

let prop_sparse_matches_dense =
  (* Random sparse diagonally dominant systems: sparse LU ≡ dense LU. *)
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 12 in
      let* entries =
        list_size (int_range 0 (3 * n))
          (let* i = int_range 0 (n - 1) in
           let* j = int_range 0 (n - 1) in
           let* v = float_range (-1.0) 1.0 in
           return (i, j, v))
      in
      let* rhs = array_size (return n) (float_range (-5.0) 5.0) in
      return (n, entries, rhs))
  in
  QCheck2.Test.make ~name:"sparse LU matches dense LU" ~count:300 gen
    (fun (n, entries, rhs) ->
      let diag = List.init n (fun i -> (i, i, float_of_int n +. 2.0)) in
      let s = Sparse.of_entries n (diag @ entries) in
      let xs = Sparse.solve (Sparse.factor s) rhs in
      let xd = Lu.solve_dense (Sparse.to_dense s) rhs in
      Array.for_all2
        (fun a b -> Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b))
        xs xd)

let prop_sparse_circuit_matrices =
  (* MNA conductance matrices (indefinite, with aux rows) exercise real
     pivoting paths. *)
  QCheck2.Test.make ~name:"sparse LU on MNA matrices" ~count:50
    QCheck2.Gen.(int_range 2 20)
    (fun sections ->
      let nl = Circuit.Builders.rc_ladder ~sections ~r:100.0 ~c:1e-12 () in
      let mna = Circuit.Mna.build nl in
      let g = Circuit.Mna.g mna in
      let b = Circuit.Mna.input_vector mna in
      let xs = Sparse.solve (Sparse.factor (Sparse.of_dense g)) b in
      let xd = Lu.solve_dense g b in
      Array.for_all2
        (fun a c -> Float.abs (a -. c) <= 1e-9 *. Float.max 1.0 (Float.abs c))
        xs xd)

(* ------------------------------------------------------------------ *)
(* Poly *)

let test_poly_arith () =
  let p = Poly.of_coeffs [| 1.0; 2.0; 3.0 |] in
  let q = Poly.of_coeffs [| -1.0; 1.0 |] in
  let r = Poly.mul p q in
  (* (3x²+2x+1)(x−1) = 3x³ − x² − x − 1 *)
  Alcotest.(check bool) "mul" true
    (Poly.equal r (Poly.of_coeffs [| -1.0; -1.0; -1.0; 3.0 |]));
  check_float "eval" (Poly.eval p 2.0 *. Poly.eval q 2.0) (Poly.eval r 2.0)

let test_poly_divmod () =
  let p = Poly.of_coeffs [| -1.0; -1.0; -1.0; 3.0 |] in
  let q = Poly.of_coeffs [| -1.0; 1.0 |] in
  let quot, rem = Poly.divmod p q in
  Alcotest.(check bool) "exact quotient" true
    (Poly.equal quot (Poly.of_coeffs [| 1.0; 2.0; 3.0 |]));
  Alcotest.(check bool) "zero remainder" true (Poly.is_zero rem)

let test_poly_derivative () =
  let p = Poly.of_coeffs [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check bool) "derivative" true
    (Poly.equal (Poly.derivative p) (Poly.of_coeffs [| 2.0; 6.0; 12.0 |]))

let test_poly_trim () =
  let p = Poly.of_coeffs [| 1.0; 0.0; 0.0 |] in
  Alcotest.(check int) "degree trims" 0 (Poly.degree p);
  Alcotest.(check int) "zero degree" (-1) (Poly.degree Poly.zero)

let test_poly_shift_scale () =
  let p = Poly.of_coeffs [| 1.0; 2.0; 3.0 |] in
  let q = Poly.shift_scale p 2.0 in
  check_float "p(2x) at 3" (Poly.eval p 6.0) (Poly.eval q 3.0)

let prop_poly_ring =
  let coeffs = QCheck2.Gen.(array_size (int_range 0 5) (float_range (-4.0) 4.0)) in
  let gen = QCheck2.Gen.(triple coeffs coeffs coeffs) in
  QCheck2.Test.make ~name:"poly distributivity (a+b)·c = a·c + b·c" ~count:300
    gen (fun (a, b, c) ->
      let a = Poly.of_coeffs a and b = Poly.of_coeffs b and c = Poly.of_coeffs c in
      Poly.equal ~tol:1e-9
        (Poly.mul (Poly.add a b) c)
        (Poly.add (Poly.mul a c) (Poly.mul b c)))

let prop_poly_divmod =
  let coeffs lo hi = QCheck2.Gen.(array_size (int_range lo hi) (float_range (-4.0) 4.0)) in
  QCheck2.Test.make ~name:"divmod reconstructs: a = q·b + r" ~count:300
    QCheck2.Gen.(pair (coeffs 0 6) (coeffs 1 4))
    (fun (a, b) ->
      let a = Poly.of_coeffs a and b = Poly.of_coeffs b in
      QCheck2.assume (not (Poly.is_zero b));
      (* Keep the divisor's leading coefficient away from zero. *)
      QCheck2.assume (Float.abs (Poly.coeff b (Poly.degree b)) > 0.1);
      let q, r = Poly.divmod a b in
      (* Quotient coefficients can be large when the divisor's leading
         coefficient is small, so compare with a relative tolerance. *)
      let scale =
        Array.fold_left
          (fun acc c -> Float.max acc (Float.abs c))
          1.0
          (Array.concat [ Poly.coeffs a; Poly.coeffs q; Poly.coeffs b ])
      in
      Poly.equal ~tol:(1e-9 *. scale *. scale) a (Poly.add (Poly.mul q b) r)
      && Poly.degree r < Poly.degree b)

(* ------------------------------------------------------------------ *)
(* Roots *)

let test_quadratic_real () =
  let r1, r2 = Roots.quadratic 1.0 (-5.0) 6.0 in
  let lo, hi = if r1.Cx.re < r2.Cx.re then (r1, r2) else (r2, r1) in
  check_complex "root 2" (Cx.of_float 2.0) lo;
  check_complex "root 3" (Cx.of_float 3.0) hi

let test_quadratic_complex () =
  let r1, _ = Roots.quadratic 1.0 2.0 5.0 in
  check_float "re" (-1.0) r1.Cx.re;
  check_float "im magnitude" 2.0 (Float.abs r1.Cx.im)

let test_quadratic_cancellation () =
  (* x² − 1e8·x + 1 has roots ~1e8 and ~1e−8; the naive formula loses the
     small one entirely. *)
  let r1, r2 = Roots.quadratic 1.0 (-1e8) 1.0 in
  let small = if Cx.norm r1 < Cx.norm r2 then r1 else r2 in
  check_float ~tol:1e-6 "small root" 1e-8 small.Cx.re

let test_cubic () =
  (* (x−1)(x−2)(x−3) = x³ −6x² +11x −6 *)
  let roots = Roots.real_roots (Poly.of_coeffs [| -6.0; 11.0; -6.0; 1.0 |]) in
  Alcotest.(check int) "three real roots" 3 (Array.length roots);
  check_float "r0" 1.0 roots.(0);
  check_float "r1" 2.0 roots.(1);
  check_float "r2" 3.0 roots.(2)

let test_cubic_complex_pair () =
  (* (x+1)(x²+1): one real root. *)
  let p = Poly.mul (Poly.of_coeffs [| 1.0; 1.0 |]) (Poly.of_coeffs [| 1.0; 0.0; 1.0 |]) in
  let all = Roots.of_poly p in
  Alcotest.(check int) "three roots" 3 (Array.length all);
  let reals = Roots.real_roots p in
  Alcotest.(check int) "one real root" 1 (Array.length reals);
  check_float "real root" (-1.0) reals.(0)

let test_aberth_degree5 () =
  (* Roots 1..5. *)
  let p =
    List.fold_left
      (fun acc r -> Poly.mul acc (Poly.of_coeffs [| -.r; 1.0 |]))
      Poly.one [ 1.0; 2.0; 3.0; 4.0; 5.0 ]
  in
  let roots = Roots.real_roots p in
  Alcotest.(check int) "five real roots" 5 (Array.length roots);
  List.iteri
    (fun k expected -> check_float ~tol:1e-6 (Printf.sprintf "root %d" k) expected roots.(k))
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ]

let prop_roots_evaluate_to_zero =
  let gen =
    QCheck2.Gen.(array_size (int_range 2 7) (float_range (-3.0) 3.0))
  in
  QCheck2.Test.make ~name:"polynomial vanishes at every reported root"
    ~count:200 gen (fun coeffs ->
      let p = Poly.of_coeffs coeffs in
      QCheck2.assume (Poly.degree p >= 1);
      QCheck2.assume (Float.abs (Poly.coeff p (Poly.degree p)) > 0.1);
      let scale =
        Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 1.0 coeffs
      in
      Roots.of_poly p
      |> Array.for_all (fun z ->
             Cx.norm (Poly.eval_complex p z)
             <= 1e-5 *. scale *. Float.max 1.0 (Cx.pow_int z (Poly.degree p) |> Cx.norm)))

(* ------------------------------------------------------------------ *)
(* Fft *)

module Fft = Numeric.Fft

let test_fft_impulse () =
  (* DFT of a unit impulse is flat: every bin 1. *)
  let x = Array.init 8 (fun k -> if k = 0 then Cx.one else Cx.zero) in
  let spectrum = Fft.transform x in
  Array.iteri
    (fun k v -> check_complex (Printf.sprintf "bin %d" k) Cx.one v)
    spectrum

let test_fft_single_tone () =
  (* sin at 3 cycles per window lands exactly on bin 3 with amplitude 1. *)
  let n = 64 in
  let x =
    Array.init n (fun k ->
        Float.sin (2.0 *. Float.pi *. 3.0 *. float_of_int k /. float_of_int n))
  in
  let mags = Fft.magnitudes x in
  check_float "tone bin" 1.0 mags.(3);
  Array.iteri
    (fun k v ->
      if k <> 3 then check_float ~tol:1e-12 (Printf.sprintf "bin %d" k) 0.0 v)
    mags

let test_fft_dc_and_nyquist () =
  (* DC offset and the alternating (Nyquist) tone use the 1/N scale. *)
  let n = 16 in
  let x =
    Array.init n (fun k -> 2.5 +. (0.75 *. if k mod 2 = 0 then 1.0 else -1.0))
  in
  let mags = Fft.magnitudes x in
  check_float "dc" 2.5 mags.(0);
  check_float "nyquist" 0.75 mags.(n / 2)

let test_fft_matches_naive_dft () =
  let n = 16 in
  let x =
    Array.init n (fun k ->
        Cx.make (Float.cos (1.7 *. float_of_int k)) (0.3 *. float_of_int k))
  in
  let fast = Fft.transform x in
  for k = 0 to n - 1 do
    let acc = ref Cx.zero in
    for j = 0 to n - 1 do
      let ang = -2.0 *. Float.pi *. float_of_int (k * j) /. float_of_int n in
      acc := Cx.add !acc (Cx.mul x.(j) (Cx.make (Float.cos ang) (Float.sin ang)))
    done;
    check_complex ~tol:1e-10 (Printf.sprintf "bin %d" k) !acc fast.(k)
  done

let test_fft_rejects_bad_length () =
  Alcotest.check_raises "length 6"
    (Invalid_argument "Fft.transform: length must be 2^k") (fun () ->
      ignore (Fft.transform (Array.make 6 Cx.zero)))

let fft_signal_gen =
  QCheck2.Gen.(
    int_range 0 6 >>= fun log_n ->
    array_repeat (1 lsl log_n) (float_range (-10.0) 10.0))

let prop_fft_roundtrip =
  QCheck2.Test.make ~name:"fft: inverse (transform x) = x" ~count:100
    fft_signal_gen (fun signal ->
      let x = Array.map Cx.of_float signal in
      let y = Fft.inverse (Fft.transform x) in
      Array.for_all2 (fun a b -> Cx.norm (Cx.sub a b) < 1e-9) x y)

let prop_fft_parseval =
  QCheck2.Test.make ~name:"fft: Parseval energy identity" ~count:100
    fft_signal_gen (fun signal ->
      let n = Array.length signal in
      let x = Array.map Cx.of_float signal in
      let spectrum = Fft.transform x in
      let e_time = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 signal in
      let e_freq =
        Array.fold_left
          (fun acc v ->
            let m = Cx.norm v in
            acc +. (m *. m))
          0.0 spectrum
        /. float_of_int n
      in
      Float.abs (e_time -. e_freq) <= 1e-8 *. Float.max 1.0 e_time)

let prop_fft_linear =
  QCheck2.Test.make ~name:"fft: linearity" ~count:100
    QCheck2.Gen.(pair fft_signal_gen (float_range (-5.0) 5.0))
    (fun (signal, alpha) ->
      let x = Array.map Cx.of_float signal in
      let y =
        Array.mapi
          (fun k v -> Cx.add v (Cx.of_float (0.1 *. float_of_int k)))
          x
      in
      let lhs =
        Fft.transform (Array.map2 (fun a b -> Cx.add (Cx.scale alpha a) b) x y)
      in
      let fx = Fft.transform x and fy = Fft.transform y in
      let rhs = Array.map2 (fun a b -> Cx.add (Cx.scale alpha a) b) fx fy in
      Array.for_all2
        (fun a b -> Cx.norm (Cx.sub a b) <= 1e-8 *. Float.max 1.0 (Cx.norm a))
        lhs rhs)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "numeric"
    [
      ( "matrix",
        [
          quick "basic get/set/add_entry/transpose" test_matrix_basic;
          quick "matrix multiply" test_matrix_mul;
          quick "matrix-vector products" test_matrix_vec;
          quick "identity laws" test_matrix_identity;
          quick "shape mismatch raises" test_matrix_shape_mismatch;
        ] );
      ( "lu",
        [
          quick "solve known system" test_lu_solve_known;
          quick "determinant" test_lu_det;
          quick "singular detection" test_lu_singular;
          quick "transpose solve" test_lu_transpose_solve;
          quick "inverse" test_lu_inverse;
          quick "rcond estimate" test_lu_rcond;
        ]
        @ props [ prop_lu_residual; prop_lu_transpose_consistent ] );
      ("complex", [ quick "arithmetic" test_cx_arith ]);
      ( "cmatrix",
        [
          quick "complex solve" test_cmatrix_solve;
          quick "combine G + sC" test_cmatrix_combine;
          quick "singular detection" test_cmatrix_singular;
        ]
        @ props [ prop_cmatrix_residual ] );
      ( "sparse",
        [
          quick "dense roundtrip" test_sparse_roundtrip;
          quick "entry accumulation" test_sparse_entries_accumulate;
          quick "solve known system" test_sparse_solve_known;
          quick "pivoting row exchange" test_sparse_needs_pivoting;
          quick "singular detection" test_sparse_singular;
          quick "tridiagonal zero fill" test_sparse_tridiagonal_no_fill;
          quick "rcond proxy" test_sparse_rcond_proxy;
        ]
        @ props [ prop_sparse_matches_dense; prop_sparse_circuit_matrices ] );
      ( "poly",
        [
          quick "arithmetic" test_poly_arith;
          quick "divmod exact" test_poly_divmod;
          quick "derivative" test_poly_derivative;
          quick "normalization trims zeros" test_poly_trim;
          quick "shift_scale substitution" test_poly_shift_scale;
        ]
        @ props [ prop_poly_ring; prop_poly_divmod ] );
      ( "roots",
        [
          quick "quadratic real roots" test_quadratic_real;
          quick "quadratic complex roots" test_quadratic_complex;
          quick "quadratic cancellation-safe" test_quadratic_cancellation;
          quick "cubic three real" test_cubic;
          quick "cubic complex pair" test_cubic_complex_pair;
          quick "aberth on degree 5" test_aberth_degree5;
        ]
        @ props [ prop_roots_evaluate_to_zero ] );
      ( "fft",
        [
          quick "impulse has flat spectrum" test_fft_impulse;
          quick "single tone on exact bin" test_fft_single_tone;
          quick "dc and nyquist scaling" test_fft_dc_and_nyquist;
          quick "matches naive dft" test_fft_matches_naive_dft;
          quick "rejects non-power-of-two" test_fft_rejects_bad_length;
        ]
        @ props [ prop_fft_roundtrip; prop_fft_parseval; prop_fft_linear ] );
    ]
