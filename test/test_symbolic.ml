(* Unit and property tests for the symbolic engine. *)

module Sym = Symbolic.Symbol
module Monomial = Symbolic.Monomial
module Mpoly = Symbolic.Mpoly
module Ratfun = Symbolic.Ratfun
module Expr = Symbolic.Expr
module Slp = Symbolic.Slp

let x = Sym.intern "x"
let y = Sym.intern "y"
let z = Sym.intern "z"
let px = Mpoly.of_symbol x
let py = Mpoly.of_symbol y
let pz = Mpoly.of_symbol z

let env_of bindings s =
  match List.assoc_opt (Sym.name s) bindings with
  | Some v -> v
  | None -> Alcotest.failf "no binding for %s" (Sym.name s)

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

(* ------------------------------------------------------------------ *)
(* Symbols *)

let test_symbol_interning () =
  Alcotest.(check bool) "same name same symbol" true
    (Sym.equal (Sym.intern "a_sym") (Sym.intern "a_sym"));
  Alcotest.(check bool) "distinct names differ" false
    (Sym.equal (Sym.intern "a_sym") (Sym.intern "b_sym"))

(* ------------------------------------------------------------------ *)
(* Monomials *)

let test_monomial_mul_div () =
  let m1 = Monomial.of_list [ (x, 2); (y, 1) ] in
  let m2 = Monomial.of_list [ (x, 1); (z, 3) ] in
  let m = Monomial.mul m1 m2 in
  Alcotest.(check int) "x exponent" 3 (Monomial.exponent m x);
  Alcotest.(check int) "y exponent" 1 (Monomial.exponent m y);
  Alcotest.(check int) "z exponent" 3 (Monomial.exponent m z);
  (match Monomial.div m m1 with
  | Some q -> Alcotest.(check bool) "m/m1 = m2" true (Monomial.equal q m2)
  | None -> Alcotest.fail "expected divisible");
  Alcotest.(check bool) "m1 does not divide m2" false (Monomial.divides m1 m2)

let test_monomial_gcd () =
  let m1 = Monomial.of_list [ (x, 2); (y, 1) ] in
  let m2 = Monomial.of_list [ (x, 1); (y, 3); (z, 1) ] in
  let g = Monomial.gcd m1 m2 in
  Alcotest.(check bool) "gcd = x·y" true
    (Monomial.equal g (Monomial.of_list [ (x, 1); (y, 1) ]))

let test_monomial_deriv () =
  let m = Monomial.of_list [ (x, 3); (y, 1) ] in
  match Monomial.deriv m x with
  | Some (e, m') ->
    Alcotest.(check int) "exponent factor" 3 e;
    Alcotest.(check bool) "reduced monomial" true
      (Monomial.equal m' (Monomial.of_list [ (x, 2); (y, 1) ]))
  | None -> Alcotest.fail "expected Some"

(* ------------------------------------------------------------------ *)
(* Mpoly *)

let test_mpoly_arith () =
  (* (x + y)² = x² + 2xy + y² *)
  let lhs = Mpoly.pow (Mpoly.add px py) 2 in
  let rhs =
    Mpoly.of_terms
      [ (1.0, Monomial.of_list [ (x, 2) ]);
        (2.0, Monomial.of_list [ (x, 1); (y, 1) ]);
        (1.0, Monomial.of_list [ (y, 2) ]) ]
  in
  Alcotest.(check bool) "binomial square" true (Mpoly.equal lhs rhs)

let test_mpoly_cancellation () =
  let p = Mpoly.sub (Mpoly.add px py) (Mpoly.add px py) in
  Alcotest.(check bool) "x+y − (x+y) = 0" true (Mpoly.is_zero p)

let test_mpoly_eval () =
  let p = Mpoly.add (Mpoly.mul px py) (Mpoly.scale 3.0 pz) in
  let v = Mpoly.eval p (env_of [ ("x", 2.0); ("y", 5.0); ("z", -1.0) ]) in
  check_float "eval x·y + 3z" 7.0 v

let test_mpoly_deriv () =
  (* d/dx (x²y + x + y) = 2xy + 1 *)
  let p =
    Mpoly.of_terms
      [ (1.0, Monomial.of_list [ (x, 2); (y, 1) ]);
        (1.0, Monomial.of_symbol x);
        (1.0, Monomial.of_symbol y) ]
  in
  let d = Mpoly.deriv p x in
  let expected =
    Mpoly.of_terms
      [ (2.0, Monomial.of_list [ (x, 1); (y, 1) ]); (1.0, Monomial.one) ]
  in
  Alcotest.(check bool) "derivative" true (Mpoly.equal d expected)

let test_mpoly_substitute () =
  (* x²+y with x := y+1 gives y² + 3y + 1. *)
  let p = Mpoly.add (Mpoly.pow px 2) py in
  let q = Mpoly.substitute p x (Mpoly.add py Mpoly.one) in
  let expected =
    Mpoly.of_terms
      [ (1.0, Monomial.of_list [ (y, 2) ]); (3.0, Monomial.of_symbol y);
        (1.0, Monomial.one) ]
  in
  Alcotest.(check bool) "substitution" true (Mpoly.equal q expected)

let test_mpoly_coeffs_in () =
  (* p = (y+1)·x² + 3·x + z, coefficients in x. *)
  let p =
    Mpoly.add
      (Mpoly.mul (Mpoly.add py Mpoly.one) (Mpoly.pow px 2))
      (Mpoly.add (Mpoly.scale 3.0 px) pz)
  in
  let c = Mpoly.coeffs_in p x in
  Alcotest.(check int) "3 coefficients" 3 (Array.length c);
  Alcotest.(check bool) "c0 = z" true (Mpoly.equal c.(0) pz);
  Alcotest.(check bool) "c1 = 3" true (Mpoly.equal c.(1) (Mpoly.const 3.0));
  Alcotest.(check bool) "c2 = y+1" true (Mpoly.equal c.(2) (Mpoly.add py Mpoly.one))

let test_mpoly_div_exact () =
  let p = Mpoly.mul (Mpoly.add px py) (Mpoly.add px (Mpoly.const 2.0)) in
  (match Mpoly.div_exact p (Mpoly.add px py) with
  | Some q ->
    Alcotest.(check bool) "quotient" true
      (Mpoly.equal q (Mpoly.add px (Mpoly.const 2.0)))
  | None -> Alcotest.fail "expected exact division");
  Alcotest.(check bool) "inexact returns None" true
    (Option.is_none (Mpoly.div_exact (Mpoly.add p Mpoly.one) (Mpoly.add px py)))

let test_mpoly_multilinear () =
  Alcotest.(check bool) "x·y + z is multilinear" true
    (Mpoly.is_multilinear (Mpoly.add (Mpoly.mul px py) pz));
  Alcotest.(check bool) "x² is not" false (Mpoly.is_multilinear (Mpoly.pow px 2))

let mpoly_gen =
  (* Random polynomial over x, y, z with small degrees. *)
  QCheck2.Gen.(
    let term =
      let* c = float_range (-3.0) 3.0 in
      let* ex = int_range 0 2 in
      let* ey = int_range 0 2 in
      let* ez = int_range 0 2 in
      return (c, Monomial.of_list [ (x, ex); (y, ey); (z, ez) ])
    in
    let* terms = list_size (int_range 0 6) term in
    return (Mpoly.of_terms terms))

let prop_mpoly_ring =
  QCheck2.Test.make ~name:"mpoly distributivity and commutativity" ~count:200
    QCheck2.Gen.(triple mpoly_gen mpoly_gen mpoly_gen)
    (fun (a, b, c) ->
      Mpoly.equal (Mpoly.mul a b) (Mpoly.mul b a)
      && Mpoly.equal
           (Mpoly.mul (Mpoly.add a b) c)
           (Mpoly.add (Mpoly.mul a c) (Mpoly.mul b c)))

let prop_mpoly_eval_hom =
  QCheck2.Test.make ~name:"evaluation is a ring homomorphism" ~count:200
    QCheck2.Gen.(
      quad mpoly_gen mpoly_gen (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
    (fun (a, b, vx, vy) ->
      let env s =
        if Sym.equal s x then vx else if Sym.equal s y then vy else 0.5
      in
      let lhs = Mpoly.eval (Mpoly.mul a b) env in
      let rhs = Mpoly.eval a env *. Mpoly.eval b env in
      Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1.0 (Float.abs rhs))

let prop_mpoly_deriv_linear =
  QCheck2.Test.make ~name:"derivative is linear and Leibniz" ~count:200
    QCheck2.Gen.(pair mpoly_gen mpoly_gen)
    (fun (a, b) ->
      Mpoly.equal
        (Mpoly.deriv (Mpoly.add a b) x)
        (Mpoly.add (Mpoly.deriv a x) (Mpoly.deriv b x))
      && Mpoly.equal
           (Mpoly.deriv (Mpoly.mul a b) x)
           (Mpoly.add
              (Mpoly.mul (Mpoly.deriv a x) b)
              (Mpoly.mul a (Mpoly.deriv b x))))

(* ------------------------------------------------------------------ *)
(* Ratfun *)

let test_ratfun_simplify () =
  (* (x·y) / (x·z) cancels the common monomial x. *)
  let r = Ratfun.make (Mpoly.mul px py) (Mpoly.mul px pz) in
  Alcotest.(check bool) "num = y (up to scale)" true
    (Ratfun.equal r (Ratfun.div (Ratfun.of_symbol y) (Ratfun.of_symbol z)))

let test_ratfun_field_ops () =
  let a = Ratfun.div (Ratfun.of_symbol x) (Ratfun.add (Ratfun.of_symbol y) Ratfun.one) in
  let b = Ratfun.of_symbol z in
  let sum = Ratfun.add a b in
  let env = env_of [ ("x", 2.0); ("y", 3.0); ("z", 0.5) ] in
  check_float "eval sum" ((2.0 /. 4.0) +. 0.5) (Ratfun.eval sum env);
  let back = Ratfun.sub sum b in
  Alcotest.(check bool) "sum − b = a" true (Ratfun.equal back a)

let test_ratfun_inv () =
  let a = Ratfun.make (Mpoly.add px py) pz in
  Alcotest.(check bool) "a · a⁻¹ = 1" true
    (Ratfun.equal (Ratfun.mul a (Ratfun.inv a)) Ratfun.one)

let test_ratfun_deriv () =
  (* d/dx (x/(x+1)) = 1/(x+1)². *)
  let a = Ratfun.div (Ratfun.of_symbol x) (Ratfun.add (Ratfun.of_symbol x) Ratfun.one) in
  let d = Ratfun.deriv a x in
  let expected = Ratfun.inv (Ratfun.mul (Ratfun.add (Ratfun.of_symbol x) Ratfun.one) (Ratfun.add (Ratfun.of_symbol x) Ratfun.one)) in
  Alcotest.(check bool) "quotient rule" true (Ratfun.equal d expected)

let test_ratfun_zero_den () =
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Ratfun.make Mpoly.one Mpoly.zero))

let prop_ratfun_field =
  let rf_gen =
    QCheck2.Gen.(
      let* n = mpoly_gen in
      let* d = mpoly_gen in
      return
        (try
           if Mpoly.is_zero d then Ratfun.of_mpoly n else Ratfun.make n d
         with Division_by_zero -> Ratfun.of_mpoly n))
  in
  QCheck2.Test.make ~name:"ratfun add/mul distributivity" ~count:100
    QCheck2.Gen.(triple rf_gen rf_gen rf_gen)
    (fun (a, b, c) ->
      Ratfun.equal ~tol:1e-6
        (Ratfun.mul (Ratfun.add a b) c)
        (Ratfun.add (Ratfun.mul a c) (Ratfun.mul b c)))

(* ------------------------------------------------------------------ *)
(* Expr + Slp *)

let test_expr_fold_identities () =
  let e = Expr.add (Expr.sym x) Expr.zero in
  Alcotest.(check bool) "x + 0 = x" true (Expr.equal e (Expr.sym x));
  let e = Expr.mul (Expr.sym x) Expr.one in
  Alcotest.(check bool) "x · 1 = x" true (Expr.equal e (Expr.sym x));
  let e = Expr.mul (Expr.sym x) Expr.zero in
  Alcotest.(check bool) "x · 0 = 0" true (Expr.equal e Expr.zero);
  let e = Expr.neg (Expr.neg (Expr.sym x)) in
  Alcotest.(check bool) "−(−x) = x" true (Expr.equal e (Expr.sym x));
  let e = Expr.inv (Expr.inv (Expr.sym x)) in
  Alcotest.(check bool) "1/(1/x) = x" true (Expr.equal e (Expr.sym x))

let test_expr_hash_consing () =
  let a = Expr.add (Expr.sym x) (Expr.sym y) in
  let b = Expr.add (Expr.sym y) (Expr.sym x) in
  Alcotest.(check bool) "commutative sharing" true (Expr.equal a b)

let test_expr_eval () =
  let e = Expr.div (Expr.add (Expr.sym x) (Expr.const 1.0)) (Expr.sym y) in
  check_float "(x+1)/y" 1.5 (Expr.eval e (env_of [ ("x", 2.0); ("y", 2.0) ]))

let test_expr_deriv () =
  (* d/dx of x²/(x+y) at (x,y) = (2,1): (2x(x+y) − x²)/(x+y)² = (12−4)/9. *)
  let e =
    Expr.div (Expr.pow_int (Expr.sym x) 2) (Expr.add (Expr.sym x) (Expr.sym y))
  in
  let d = Expr.deriv e x in
  check_float "symbolic derivative" (8.0 /. 9.0)
    (Expr.eval d (env_of [ ("x", 2.0); ("y", 1.0) ]))

let test_expr_of_ratfun () =
  let r = Ratfun.div (Ratfun.add (Ratfun.of_symbol x) Ratfun.one) (Ratfun.of_symbol y) in
  let e = Expr.of_ratfun r in
  let env = env_of [ ("x", 3.0); ("y", 2.0) ] in
  check_float "expr matches ratfun" (Ratfun.eval r env) (Expr.eval e env)

let test_slp_eval () =
  let e =
    Expr.sqrt (Expr.add (Expr.mul (Expr.sym x) (Expr.sym x)) (Expr.mul (Expr.sym y) (Expr.sym y)))
  in
  let p = Slp.compile ~inputs:[| x; y |] [| e |] in
  let out = Slp.eval p [| 3.0; 4.0 |] in
  check_float "hypotenuse" 5.0 out.(0)

let test_slp_cse () =
  (* (x+y)·(x+y) shares the sum: one Add instruction, one Mul. *)
  let s = Expr.add (Expr.sym x) (Expr.sym y) in
  let e = Expr.mul s s in
  let p = Slp.compile ~inputs:[| x; y |] [| e |] in
  Alcotest.(check int) "4 instructions (2 loads, add, mul)" 4
    (Slp.num_instructions p)

let test_slp_missing_input () =
  let e = Expr.sym z in
  match Slp.compile ~inputs:[| x |] [| e |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_slp_evaluator_reuse () =
  let e = Expr.add (Expr.sym x) (Expr.const 1.0) in
  let eval = Slp.make_evaluator (Slp.compile ~inputs:[| x |] [| e |]) in
  check_float "first call" 2.0 (eval [| 1.0 |]).(0);
  check_float "second call" 11.0 (eval [| 10.0 |]).(0)

let expr_gen =
  (* Random expression over x, y with guarded inverses. *)
  QCheck2.Gen.(
    sized_size (int_range 0 8) @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map Expr.const (float_range (-3.0) 3.0);
              oneofl [ Expr.sym x; Expr.sym y ] ]
        else
          oneof
            [ map2 Expr.add (self (n / 2)) (self (n / 2));
              map2 Expr.mul (self (n / 2)) (self (n / 2));
              map Expr.neg (self (n - 1));
              map
                (fun e -> Expr.inv (Expr.add (Expr.mul e e) (Expr.const 1.0)))
                (self (n - 1)) ]))

let prop_slp_matches_eval =
  QCheck2.Test.make ~name:"compiled SLP ≡ direct DAG evaluation" ~count:300
    QCheck2.Gen.(triple expr_gen (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
    (fun (e, vx, vy) ->
      let env s = if Sym.equal s x then vx else vy in
      let direct = Expr.eval e env in
      let p = Slp.compile ~inputs:[| x; y |] [| e |] in
      let compiled = (Slp.eval p [| vx; vy |]).(0) in
      (Float.is_nan direct && Float.is_nan compiled)
      || Float.abs (direct -. compiled) <= 1e-9 *. Float.max 1.0 (Float.abs direct))

let prop_expr_deriv_numeric =
  QCheck2.Test.make ~name:"symbolic derivative matches finite difference"
    ~count:200
    QCheck2.Gen.(triple expr_gen (float_range 0.5 2.0) (float_range 0.5 2.0))
    (fun (e, vx, vy) ->
      let env vx s = if Sym.equal s x then vx else vy in
      let h = 1e-6 in
      let fd = (Expr.eval e (env (vx +. h)) -. Expr.eval e (env (vx -. h))) /. (2.0 *. h) in
      let sym_d = Expr.eval (Expr.deriv e x) (env vx) in
      Float.abs (fd -. sym_d) <= 1e-3 *. Float.max 1.0 (Float.abs sym_d))

(* ------------------------------------------------------------------ *)
(* Second tranche: ordering laws, reconstruction properties, SLP details *)

let monomial_gen =
  QCheck2.Gen.(
    let* ex = int_range 0 3 in
    let* ey = int_range 0 3 in
    let* ez = int_range 0 3 in
    return (Monomial.of_list [ (x, ex); (y, ey); (z, ez) ]))

let prop_monomial_order_total =
  QCheck2.Test.make ~name:"monomial order: antisymmetric and transitive"
    ~count:300
    QCheck2.Gen.(triple monomial_gen monomial_gen monomial_gen)
    (fun (a, b, c) ->
      let ab = Monomial.compare a b and ba = Monomial.compare b a in
      (compare (ab > 0) (ba < 0) = 0 || ab = 0)
      && (not (Monomial.compare a b <= 0 && Monomial.compare b c <= 0)
         || Monomial.compare a c <= 0))

let prop_monomial_mul_respects_order =
  (* Graded orders are compatible with multiplication. *)
  QCheck2.Test.make ~name:"monomial order compatible with multiplication"
    ~count:300
    QCheck2.Gen.(triple monomial_gen monomial_gen monomial_gen)
    (fun (a, b, c) ->
      let ab = Monomial.compare a b in
      ab = 0 || compare (Monomial.compare (Monomial.mul a c) (Monomial.mul b c) > 0) (ab > 0) = 0)

let prop_coeffs_in_reconstruct =
  QCheck2.Test.make ~name:"coeffs_in reconstructs the polynomial" ~count:200
    mpoly_gen (fun p ->
      let c = Mpoly.coeffs_in p x in
      let back = ref Mpoly.zero in
      Array.iteri
        (fun k ck ->
          back := Mpoly.add !back (Mpoly.mul ck (Mpoly.pow (Mpoly.of_symbol x) k)))
        c;
      Mpoly.equal p !back)

let prop_ratfun_substitute =
  QCheck2.Test.make ~name:"ratfun substitution commutes with evaluation"
    ~count:150
    QCheck2.Gen.(triple mpoly_gen mpoly_gen (float_range 0.5 2.0))
    (fun (n, q, vy) ->
      let r = Ratfun.make (Mpoly.add n Mpoly.one) (Mpoly.add (Mpoly.mul q q) Mpoly.one) in
      (* x := y + 1, then evaluate; versus evaluate with x = y + 1. *)
      let substituted = Ratfun.substitute r x (Mpoly.add (Mpoly.of_symbol y) Mpoly.one) in
      let env_sub s = if Sym.equal s y then vy else 0.25 in
      let env_dir s =
        if Sym.equal s x then vy +. 1.0 else if Sym.equal s y then vy else 0.25
      in
      match
        (Ratfun.eval substituted env_sub, Ratfun.eval r env_dir)
      with
      | a, b -> Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b)
      | exception Division_by_zero -> QCheck2.assume_fail ())

let test_expr_symbols_and_size () =
  let e = Expr.mul (Expr.add (Expr.sym x) (Expr.sym y)) (Expr.add (Expr.sym x) (Expr.sym y)) in
  Alcotest.(check int) "two symbols" 2 (List.length (Expr.symbols e));
  (* Nodes: x, y, x+y (shared), product = 4. *)
  Alcotest.(check int) "shared DAG size" 4 (Expr.size e)

let test_slp_pp_smoke () =
  let e = Expr.div (Expr.add (Expr.sym x) (Expr.const 2.0)) (Expr.sym y) in
  let p = Slp.compile ~inputs:[| x; y |] [| e |] in
  let text = Format.asprintf "%a" Slp.pp p in
  Alcotest.(check bool) "disassembly mentions inputs" true
    (String.length text > 20)

let test_slp_multiple_outputs () =
  let e1 = Expr.add (Expr.sym x) (Expr.sym y) in
  let e2 = Expr.mul e1 e1 in
  let e3 = Expr.neg e1 in
  let p = Slp.compile ~inputs:[| x; y |] [| e1; e2; e3 |] in
  Alcotest.(check int) "three outputs" 3 (Slp.num_outputs p);
  let out = Slp.eval p [| 3.0; 4.0 |] in
  check_float "o1" 7.0 out.(0);
  check_float "o2" 49.0 out.(1);
  check_float "o3" (-7.0) out.(2);
  (* Sharing: e1 computed once. *)
  Alcotest.(check int) "5 instructions for the family" 5 (Slp.num_instructions p)

let test_slp_constants_preloaded () =
  let e = Expr.mul (Expr.const 3.0) (Expr.const 0.0) in
  (* Folded to the constant 0 at construction: no instructions at all. *)
  let p = Slp.compile ~inputs:[||] [| e |] in
  Alcotest.(check int) "no instructions" 0 (Slp.num_instructions p);
  check_float "constant output" 0.0 (Slp.eval p [||]).(0)

let prop_expr_eval_matches_mpoly =
  QCheck2.Test.make ~name:"of_mpoly preserves evaluation" ~count:200
    QCheck2.Gen.(triple mpoly_gen (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
    (fun (p, vx, vy) ->
      let env s = if Sym.equal s x then vx else if Sym.equal s y then vy else 0.5 in
      let direct = Mpoly.eval p env in
      let via_expr = Expr.eval (Expr.of_mpoly p) env in
      Float.abs (direct -. via_expr) <= 1e-7 *. Float.max 1.0 (Float.abs direct))

(* ------------------------------------------------------------------ *)
(* Misc coverage: printers, conversions, small API corners *)

let test_mpoly_printer () =
  let p =
    Mpoly.of_terms
      [ (2.0, Monomial.of_list [ (x, 2) ]); (-1.0, Monomial.of_symbol y);
        (3.0, Monomial.one) ]
  in
  Alcotest.(check string) "rendering" "2*x^2 - y + 3" (Mpoly.to_string p);
  Alcotest.(check string) "zero" "0" (Mpoly.to_string Mpoly.zero)

let test_mpoly_degree_profile () =
  let p =
    Mpoly.of_terms
      [ (1.0, Monomial.of_list [ (x, 2); (y, 1) ]);
        (1.0, Monomial.of_list [ (x, 1); (z, 3) ]) ]
  in
  let profile = Mpoly.degree_profile p in
  Alcotest.(check (list (pair string int)))
    "profile"
    [ ("x", 2); ("y", 1); ("z", 3) ]
    (List.map (fun (s, e) -> (Sym.name s, e)) profile)

let test_expr_pow_negative () =
  let e = Expr.pow_int (Expr.sym x) (-2) in
  check_float "x^-2 at 4" (1.0 /. 16.0) (Expr.eval e (env_of [ ("x", 4.0) ]))

let test_ratfun_pow () =
  let r = Ratfun.div (Ratfun.of_symbol x) (Ratfun.add (Ratfun.of_symbol y) Ratfun.one) in
  let env = env_of [ ("x", 2.0); ("y", 1.0) ] in
  check_float "r^3" 1.0 (Ratfun.eval (Ratfun.pow r 3) env);
  check_float "r^-2" 1.0 (Ratfun.eval (Ratfun.pow r (-2)) env)

let test_slp_num_registers () =
  let e = Expr.add (Expr.sym x) (Expr.const 2.0) in
  let raw = Slp.compile ~optimize:false ~inputs:[| x |] [| e |] in
  (* SSA form: one register per DAG node (const, load, add). *)
  Alcotest.(check bool) "SSA registers counted" true
    (Slp.num_registers raw >= 3);
  (* The optimizer recycles the operand registers: the add may overwrite
     either of its sources, so two registers suffice. *)
  let p = Slp.compile ~inputs:[| x |] [| e |] in
  Alcotest.(check int) "compacted register file" 2 (Slp.num_registers p);
  check_float "optimized result" 7.0 (Slp.eval p [| 5.0 |]).(0)

(* ------------------------------------------------------------------ *)
(* Batched evaluation and optimizer equivalence.  Bit-identity is the
   contract, so compare raw IEEE-754 bit patterns, not tolerances. *)

let bits = Int64.bits_of_float

let prop_slp_batch_matches_scalar =
  QCheck2.Test.make ~name:"eval_batch bit-identical to make_evaluator"
    ~count:100
    QCheck2.Gen.(
      pair expr_gen
        (list_size (int_range 1 40)
           (pair (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))))
    (fun (e, points) ->
      (* Two outputs sharing work, and a small block so multi-block and
         remainder lanes are both exercised. *)
      let p = Slp.compile ~inputs:[| x; y |] [| e; Expr.mul e e |] in
      let n = List.length points in
      let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
      List.iteri
        (fun i (vx, vy) ->
          xs.(i) <- vx;
          ys.(i) <- vy)
        points;
      let batch = Slp.eval_batch ~block:7 p [| xs; ys |] in
      let run = Slp.make_evaluator p in
      let ok = ref true in
      for i = 0 to n - 1 do
        let out = run [| xs.(i); ys.(i) |] in
        for j = 0 to Slp.num_outputs p - 1 do
          if bits out.(j) <> bits batch.(j).(i) then ok := false
        done
      done;
      !ok)

let prop_slp_optimizer_bit_identical =
  QCheck2.Test.make ~name:"optimized program bit-identical to raw SSA"
    ~count:200
    QCheck2.Gen.(
      triple expr_gen (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
    (fun (e, vx, vy) ->
      let raw = Slp.compile ~optimize:false ~inputs:[| x; y |] [| e |] in
      let opt = Slp.compile ~inputs:[| x; y |] [| e |] in
      let twice = Slp.optimize opt in
      let v = [| vx; vy |] in
      let a = (Slp.eval raw v).(0)
      and b = (Slp.eval opt v).(0)
      and c = (Slp.eval twice v).(0) in
      (* Idempotent pipeline, and folding never perturbs a bit. *)
      Slp.num_instructions twice = Slp.num_instructions opt
      && bits a = bits b
      && bits b = bits c)

let test_slp_aliasing_contract () =
  (* make_evaluator documents that every call returns the *same* output
     buffer, overwritten in place: retained results must be copied. *)
  let e1 = Expr.add (Expr.sym x) (Expr.sym y) in
  let e2 = Expr.mul (Expr.sym x) (Expr.sym y) in
  let p = Slp.compile ~inputs:[| x; y |] [| e1; e2 |] in
  let run = Slp.make_evaluator p in
  let first = run [| 1.0; 2.0 |] in
  check_float "first sum" 3.0 first.(0);
  let saved = Array.copy first in
  let second = run [| 10.0; 20.0 |] in
  Alcotest.(check bool) "same physical buffer returned" true (first == second);
  check_float "first call's view overwritten in place" 30.0 first.(0);
  check_float "copy preserves the earlier sum" 3.0 saved.(0);
  check_float "copy preserves the earlier product" 2.0 saved.(1);
  (* eval_batch, by contrast, hands out fresh columns every call. *)
  let batch_run = Slp.make_batch_evaluator p in
  let cols = [| [| 1.0 |]; [| 2.0 |] |] in
  let b1 = batch_run cols in
  let b2 = batch_run cols in
  Alcotest.(check bool) "batch columns are fresh" true (b1.(0) != b2.(0));
  check_float "batch sum" 3.0 b1.(0).(0)

let test_batch_evaluator_single_owner () =
  (* The ownership contract on make_batch_evaluator: the closure's
     register files admit one call at a time.  Overlapping calls from two
     domains must raise Invalid_argument in the loser rather than
     silently interleave lane writes; and a failed call must release the
     latch so the owner can keep going. *)
  let e = Expr.add (Expr.mul (Expr.sym x) (Expr.sym y)) (Expr.sym x) in
  let p = Slp.compile ~inputs:[| x; y |] [| e |] in
  let run = Slp.make_batch_evaluator ~block:64 p in
  (* Latch released after a rejected call (wrong column count). *)
  (match run [| [| 1.0 |] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong column count must be rejected");
  check_float "evaluator usable after a failed call" 3.0
    (run [| [| 1.0 |]; [| 2.0 |] |]).(0).(0);
  (* Two domains hammer the same evaluator on batches large enough that
     the calls overlap; repeat until the latch is observed firing.  Every
     successful call must still produce correct results. *)
  let n = 200_000 in
  let cols = [| Array.make n 1.5; Array.make n 2.0 |] in
  let contended = ref false in
  let attempts = ref 0 in
  while (not !contended) && !attempts < 50 do
    incr attempts;
    let gate = Atomic.make 0 in
    let racer () =
      Atomic.incr gate;
      while Atomic.get gate < 2 do Domain.cpu_relax () done;
      match run cols with
      | outs -> `Ok outs.(0).(0)
      | exception Invalid_argument _ -> `Latched
    in
    let a = Domain.spawn racer in
    let b = racer () in
    let a = Domain.join a in
    List.iter
      (function
        | `Latched -> contended := true
        | `Ok v -> check_float "winner's result correct" 4.5 v)
      [ a; b ]
  done;
  Alcotest.(check bool)
    (Printf.sprintf "concurrent call latched within %d attempts" !attempts)
    true !contended;
  (* The latch is per-evaluator, not global: after the contention the
     evaluator still works sequentially. *)
  check_float "evaluator usable after contention" 4.5 (run cols).(0).(0)

(* ------------------------------------------------------------------ *)
(* Interval arithmetic and interval program evaluation *)

module Interval = Symbolic.Interval

let test_interval_basic () =
  let a = Interval.make 1.0 2.0 and b = Interval.make (-1.0) 3.0 in
  let lo, hi = Interval.bounds (Interval.mul a b) in
  check_float "mul lo" (-2.0) lo;
  check_float "mul hi" 6.0 hi;
  let lo, hi = Interval.bounds (Interval.sub a b) in
  check_float "sub lo" (-2.0) lo;
  check_float "sub hi" 3.0 hi;
  let lo, hi = Interval.bounds (Interval.inv a) in
  check_float "inv lo" 0.5 lo;
  check_float "inv hi" 1.0 hi

let test_interval_guards () =
  (match Interval.make 2.0 1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted bounds accepted");
  (match Interval.inv (Interval.make (-1.0) 1.0) with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "inv through zero accepted");
  match Interval.sqrt (Interval.make (-1.0) 1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sqrt of negative accepted"

let prop_interval_soundness =
  (* Every sampled evaluation lies inside the interval evaluation. *)
  QCheck2.Test.make ~name:"interval SLP evaluation encloses all samples"
    ~count:200
    QCheck2.Gen.(
      quad expr_gen (float_range 0.5 2.0) (float_range 0.5 2.0)
        (pair (float_range 0.0 0.5) (float_range 0.0 0.5)))
    (fun (e, vx, vy, (wx, wy)) ->
      let p = Slp.compile ~inputs:[| x; y |] [| e |] in
      let boxes =
        [| Interval.make (vx -. wx) (vx +. wx);
           Interval.make (vy -. wy) (vy +. wy) |]
      in
      match Slp.eval_interval p boxes with
      | exception Division_by_zero -> QCheck2.assume_fail ()
      | enclosure ->
        (* Sample the corners and the center. *)
        List.for_all
          (fun (sx, sy) ->
            let v = (Slp.eval p [| sx; sy |]).(0) in
            Float.is_nan v
            || Interval.contains enclosure.(0) v
            || Float.abs v *. 1e-12 > 0.0
               && Interval.contains
                    (Interval.make
                       (fst (Interval.bounds enclosure.(0)) -. (1e-9 *. Float.abs v))
                       (snd (Interval.bounds enclosure.(0)) +. (1e-9 *. Float.abs v)))
                    v)
          [ (vx -. wx, vy -. wy); (vx -. wx, vy +. wy); (vx +. wx, vy -. wy);
            (vx +. wx, vy +. wy); (vx, vy) ])

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "symbolic"
    [
      ("symbol", [ quick "interning" test_symbol_interning ]);
      ( "monomial",
        [
          quick "mul/div" test_monomial_mul_div;
          quick "gcd" test_monomial_gcd;
          quick "derivative" test_monomial_deriv;
        ]
        @ props [ prop_monomial_order_total; prop_monomial_mul_respects_order ] );
      ( "mpoly",
        [
          quick "binomial arithmetic" test_mpoly_arith;
          quick "cancellation to zero" test_mpoly_cancellation;
          quick "evaluation" test_mpoly_eval;
          quick "derivative" test_mpoly_deriv;
          quick "substitution" test_mpoly_substitute;
          quick "coefficients in a variable" test_mpoly_coeffs_in;
          quick "exact division" test_mpoly_div_exact;
          quick "multilinearity predicate" test_mpoly_multilinear;
        ]
        @ props
            [ prop_mpoly_ring; prop_mpoly_eval_hom; prop_mpoly_deriv_linear;
              prop_coeffs_in_reconstruct ] );
      ( "ratfun",
        [
          quick "monomial cancellation" test_ratfun_simplify;
          quick "field operations" test_ratfun_field_ops;
          quick "inverse" test_ratfun_inv;
          quick "derivative quotient rule" test_ratfun_deriv;
          quick "zero denominator raises" test_ratfun_zero_den;
        ]
        @ props [ prop_ratfun_field; prop_ratfun_substitute ] );
      ( "expr",
        [
          quick "constant folding identities" test_expr_fold_identities;
          quick "hash-consing commutative sharing" test_expr_hash_consing;
          quick "evaluation" test_expr_eval;
          quick "derivative" test_expr_deriv;
          quick "of_ratfun faithful" test_expr_of_ratfun;
          quick "symbols and DAG size" test_expr_symbols_and_size;
        ]
        @ props [ prop_expr_deriv_numeric; prop_expr_eval_matches_mpoly ] );
      ( "slp",
        [
          quick "compile and evaluate" test_slp_eval;
          quick "common subexpressions shared" test_slp_cse;
          quick "missing input rejected" test_slp_missing_input;
          quick "evaluator reuse" test_slp_evaluator_reuse;
          quick "disassembly smoke" test_slp_pp_smoke;
          quick "multiple outputs share work" test_slp_multiple_outputs;
          quick "constants preloaded" test_slp_constants_preloaded;
          quick "slp aliasing contract" test_slp_aliasing_contract;
          quick "batch evaluator is single-owner"
            test_batch_evaluator_single_owner;
        ]
        @ props
            [ prop_slp_matches_eval; prop_slp_batch_matches_scalar;
              prop_slp_optimizer_bit_identical ] );
      ( "misc",
        [
          quick "mpoly printer" test_mpoly_printer;
          quick "degree profile" test_mpoly_degree_profile;
          quick "negative integer powers" test_expr_pow_negative;
          quick "ratfun powers" test_ratfun_pow;
          quick "register accounting" test_slp_num_registers;
        ] );
      ( "interval",
        [
          quick "arithmetic" test_interval_basic;
          quick "guards" test_interval_guards;
        ]
        @ props [ prop_interval_soundness ] );
    ]
