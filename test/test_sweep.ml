(* Tests for the sweep engine: distributions, plans, statistics, and the
   batched Monte-Carlo pipeline — including the acceptance criterion that a
   10,000-point sweep through the batch kernel matches a per-point
   [Model.eval_moments] loop to 1e-12 relative error (it is in fact
   bit-identical). *)

module Netlist = Circuit.Netlist
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Slp = Symbolic.Slp
module Model = Awesymbolic.Model
module Dist = Sweep.Dist
module Plan = Sweep.Plan
module Stats = Sweep.Stats
module Engine = Sweep.Engine

let check_float ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let fig1_c1_g2 () =
  let nl = Builders.fig1 () in
  let nl = Netlist.mark_symbolic nl "C1" (Sym.intern "C1") in
  Netlist.mark_symbolic nl "G2" (Sym.intern "G2")

let fig1_model = lazy (Model.build ~order:2 (fig1_c1_g2 ()))

let plan_c1_g2 kind =
  Plan.make kind
    [
      { Plan.name = "C1"; dist = Dist.uniform ~lo:0.5 ~hi:2.0 };
      { Plan.name = "G2"; dist = Dist.uniform ~lo:0.5 ~hi:2.0 };
    ]

let columns model plan ~seed =
  Plan.columns
    ~symbols:(Array.map Sym.name (Model.symbols model))
    ~nominals:(Model.nominal_values model)
    ~rng:(Obs.Rng.create seed) plan

(* ------------------------------------------------------------------ *)
(* Distributions *)

let test_dist_uniform () =
  let d = Dist.uniform ~lo:2.0 ~hi:4.0 in
  check_float "median" 3.0 (Dist.quantile d 0.5);
  check_float "lo quantile" 2.0 (Dist.quantile d 0.0);
  check_float "hi quantile" 4.0 (Dist.quantile d 1.0);
  let lo, hi = Dist.bounds d in
  check_float "bounds lo" 2.0 lo;
  check_float "bounds hi" 4.0 hi;
  let rng = Obs.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Dist.sample d rng in
    if v < 2.0 || v >= 4.0 then Alcotest.failf "sample %g escapes support" v
  done

let test_dist_normal () =
  let d = Dist.normal ~mean:5.0 ~std:2.0 in
  check_float "median is the mean" 5.0 (Dist.quantile d 0.5);
  (* Φ⁻¹(0.975) = 1.959964…: the Acklam approximation must be accurate. *)
  check_float ~tol:1e-8 "97.5% quantile" (5.0 +. (1.9599639845400545 *. 2.0))
    (Dist.quantile d 0.975);
  let lo, hi = Dist.bounds d in
  check_float "lo = mean - 3 std" (-1.0) lo;
  check_float "hi = mean + 3 std" 11.0 hi;
  (* Sample moments converge on the parameters. *)
  let rng = Obs.Rng.create 2 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> Dist.sample d rng) in
  let s = Stats.summarize samples in
  check_float ~tol:5e-2 "sample mean" 5.0 s.Stats.mean;
  check_float ~tol:5e-2 "sample std" 2.0 s.Stats.std

let test_dist_lognormal () =
  let d = Dist.lognormal ~mu:0.0 ~sigma:0.5 in
  check_float "median = exp(mu)" 1.0 (Dist.quantile d 0.5);
  let rng = Obs.Rng.create 3 in
  for _ = 1 to 1000 do
    if Dist.sample d rng <= 0.0 then Alcotest.fail "lognormal must be positive"
  done

let test_dist_around () =
  match Dist.around ~nominal:100.0 ~pct:5.0 with
  | Dist.Uniform { lo; hi } ->
    check_float "lo" 95.0 lo;
    check_float "hi" 105.0 hi
  | _ -> Alcotest.fail "around is a uniform band"

let test_dist_guards () =
  let rejected f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid distribution accepted"
  in
  rejected (fun () -> Dist.uniform ~lo:1.0 ~hi:1.0);
  rejected (fun () -> Dist.normal ~mean:0.0 ~std:0.0);
  rejected (fun () -> Dist.lognormal ~mu:0.0 ~sigma:(-1.0));
  rejected (fun () -> Dist.around ~nominal:0.0 ~pct:10.0);
  rejected (fun () -> Dist.quantile (Dist.uniform ~lo:0.0 ~hi:1.0) 1.5)

(* ------------------------------------------------------------------ *)
(* Plans *)

let test_plan_guards () =
  let axis = { Plan.name = "x"; dist = Dist.uniform ~lo:0.0 ~hi:1.0 } in
  let rejected f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid plan accepted"
  in
  rejected (fun () -> Plan.make (Plan.Monte_carlo 10) []);
  rejected (fun () -> Plan.make (Plan.Monte_carlo 0) [ axis ]);
  rejected (fun () -> Plan.make (Plan.Grid 1) [ axis ]);
  rejected (fun () -> Plan.make (Plan.Monte_carlo 10) [ axis; axis ])

let test_plan_sizes () =
  let p = plan_c1_g2 (Plan.Monte_carlo 123) in
  Alcotest.(check int) "mc points" 123 (Plan.num_points p);
  Alcotest.(check int) "corner points" 4
    (Plan.num_points (plan_c1_g2 Plan.Corners));
  Alcotest.(check int) "grid points" 25
    (Plan.num_points (plan_c1_g2 (Plan.Grid 5)))

let test_plan_unknown_symbol () =
  let model = Lazy.force fig1_model in
  let p =
    Plan.make (Plan.Monte_carlo 4)
      [ { Plan.name = "R99"; dist = Dist.uniform ~lo:0.0 ~hi:1.0 } ]
  in
  match columns model p ~seed:1 with
  | exception Awesym_error.Error { kind = Awesym_error.Invalid_request; _ } -> ()
  | _ -> Alcotest.fail "unknown swept symbol accepted"

let test_plan_pins_unswept_at_nominal () =
  let model = Lazy.force fig1_model in
  let p =
    Plan.make (Plan.Monte_carlo 8)
      [ { Plan.name = "C1"; dist = Dist.uniform ~lo:0.5 ~hi:2.0 } ]
  in
  let cols = columns model p ~seed:5 in
  let nominals = Model.nominal_values model in
  (* fig1's G2 slot stays at its netlist value in every lane. *)
  let syms = Array.map Sym.name (Model.symbols model) in
  Array.iteri
    (fun k name ->
      if name = "G2" then
        Array.iter (fun v -> check_float "pinned G2" nominals.(k) v) cols.(k))
    syms

let test_plan_lhs_stratified () =
  (* Latin hypercube: each axis places exactly one sample in each of the n
     equal-probability strata. *)
  let n = 16 in
  let lo = 0.5 and hi = 2.0 in
  let model = Lazy.force fig1_model in
  let p = plan_c1_g2 (Plan.Latin_hypercube n) in
  let cols = columns model p ~seed:11 in
  Array.iter
    (fun col ->
      let counts = Array.make n 0 in
      Array.iter
        (fun v ->
          let u = (v -. lo) /. (hi -. lo) in
          let s = Int.min (n - 1) (int_of_float (u *. float_of_int n)) in
          counts.(s) <- counts.(s) + 1)
        col;
      Array.iteri
        (fun s c ->
          if c <> 1 then Alcotest.failf "stratum %d holds %d samples" s c)
        counts)
    cols

let test_plan_corners () =
  let model = Lazy.force fig1_model in
  let p = plan_c1_g2 Plan.Corners in
  let cols = columns model p ~seed:1 in
  Alcotest.(check int) "4 corner points" 4 (Array.length cols.(0));
  (* All four (lo|hi, lo|hi) combinations appear exactly once. *)
  let seen = Hashtbl.create 4 in
  for i = 0 to 3 do
    Hashtbl.replace seen (cols.(0).(i), cols.(1).(i)) ()
  done;
  Alcotest.(check int) "distinct corners" 4 (Hashtbl.length seen);
  Hashtbl.iter
    (fun (a, b) () ->
      if not (List.mem a [ 0.5; 2.0 ]) || not (List.mem b [ 0.5; 2.0 ]) then
        Alcotest.failf "corner (%g, %g) is not at the bounds" a b)
    seen

let test_plan_grid () =
  let model = Lazy.force fig1_model in
  let p = plan_c1_g2 (Plan.Grid 4) in
  let cols = columns model p ~seed:1 in
  Alcotest.(check int) "16 grid points" 16 (Array.length cols.(0));
  (* Evenly spaced lines spanning the bounds, axis 0 varying fastest. *)
  check_float "first line" 0.5 cols.(0).(0);
  check_float "second line" 1.0 cols.(0).(1);
  check_float "last line" 2.0 cols.(0).(3);
  check_float "axis 1 held" cols.(1).(0) cols.(1).(3);
  check_float "axis 1 advances" 1.0 cols.(1).(4)

let test_plan_determinism () =
  let model = Lazy.force fig1_model in
  let p = plan_c1_g2 (Plan.Monte_carlo 64) in
  let a = columns model p ~seed:9 and b = columns model p ~seed:9 in
  Alcotest.(check bool) "same seed, same points" true (a = b);
  let c = columns model p ~seed:10 in
  Alcotest.(check bool) "different seed, different points" true (a <> c)

(* The parallel determinism contract: any jobs count produces exactly the
   draws, points, and reports of jobs = 1. *)

let test_plan_columns_jobs_invariant () =
  let model = Lazy.force fig1_model in
  (* Mixed draw widths (uniform = 1 draw/point, normal = 2) exercise the
     per-chunk RNG skip arithmetic. *)
  let mixed =
    Plan.make (Plan.Monte_carlo 4097)
      [
        { Plan.name = "C1"; dist = Dist.uniform ~lo:0.5 ~hi:2.0 };
        { Plan.name = "G2"; dist = Dist.normal ~mean:1.0 ~std:0.2 };
      ]
  in
  let at plan ?jobs () =
    Plan.columns
      ~symbols:(Array.map Sym.name (Model.symbols model))
      ~nominals:(Model.nominal_values model)
      ~rng:(Obs.Rng.create 42) ?jobs plan
  in
  List.iter
    (fun plan ->
      let seq = at plan ~jobs:1 () in
      List.iter
        (fun jobs ->
          if at plan ~jobs () <> seq then
            Alcotest.failf "columns differ at jobs=%d" jobs)
        [ 2; 4 ])
    [
      mixed;
      plan_c1_g2 (Plan.Latin_hypercube 512);
      plan_c1_g2 (Plan.Grid 23);
      plan_c1_g2 Plan.Corners;
    ]

let test_eval_batch_jobs_invariant () =
  let model = Lazy.force fig1_model in
  let n = 10_000 in
  let plan = plan_c1_g2 (Plan.Monte_carlo n) in
  let cols = columns model plan ~seed:42 in
  let seq = Slp.eval_batch ~jobs:1 (Model.program model) cols in
  let par = Slp.eval_batch ~jobs:4 (Model.program model) cols in
  Array.iteri
    (fun j row ->
      Array.iteri
        (fun i v ->
          if Int64.bits_of_float v <> Int64.bits_of_float par.(j).(i) then
            Alcotest.failf "output %d lane %d differs across jobs" j i)
        row)
    seq

let test_engine_json_jobs_invariant () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 10_000) in
  let specs = [ { Engine.measure = Engine.Dc_gain; bound = Engine.Ge 0.9 } ] in
  let report jobs =
    Obs.Json.to_string
      (Engine.to_json (Engine.run ~seed:42 ~jobs ~specs model plan))
  in
  let seq = report 1 in
  List.iter
    (fun jobs ->
      if report jobs <> seq then
        Alcotest.failf "sweep JSON differs at jobs=%d" jobs)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Statistics *)

let test_stats_basic () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "n" 5 s.Stats.n;
  Alcotest.(check int) "finite" 5 s.Stats.finite;
  check_float "mean" 3.0 s.Stats.mean;
  check_float "std" (Float.sqrt 2.5) s.Stats.std;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  check_float "median" 3.0 (List.assoc 0.5 s.Stats.quantiles);
  (* Hyndman–Fan type 7 on [1..5]: q(0.25) = 2. *)
  check_float "first quartile" 2.0 (List.assoc 0.25 s.Stats.quantiles);
  let total = Array.fold_left (fun a (_, _, c) -> a + c) 0 s.Stats.histogram in
  Alcotest.(check int) "histogram covers all samples" 5 total

let test_stats_non_finite () =
  let s = Stats.summarize [| 1.0; Float.nan; 3.0; Float.infinity |] in
  Alcotest.(check int) "n counts everything" 4 s.Stats.n;
  Alcotest.(check int) "finite excludes NaN/inf" 2 s.Stats.finite;
  check_float "mean over finite only" 2.0 s.Stats.mean;
  let all_nan = Stats.summarize [| Float.nan; Float.nan |] in
  Alcotest.(check bool) "all-NaN mean is NaN" true (Float.is_nan all_nan.Stats.mean);
  Alcotest.(check int) "all-NaN histogram empty" 0
    (Array.length all_nan.Stats.histogram)

let test_stats_yield () =
  let samples = [| 1.0; 2.0; 3.0; Float.nan |] in
  check_float "non-finite fails" 0.5
    (Stats.yield ~pass:(fun v -> v <= 2.0) samples);
  check_float "all pass except NaN" 0.75
    (Stats.yield ~pass:(fun _ -> true) samples)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_spec_parsing () =
  (match Engine.spec_of_string "delay_50<=1e-9" with
  | Ok { Engine.measure = Engine.Delay_50; bound = Engine.Le limit } ->
    check_float "limit" 1e-9 limit
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match Engine.spec_of_string "phase_margin>=60" with
  | Ok { Engine.measure = Engine.Phase_margin; bound = Engine.Ge limit } ->
    check_float "limit" 60.0 limit
  | _ -> Alcotest.fail "wrong parse");
  (match Engine.spec_of_string "m1>=-5" with
  | Ok { Engine.measure = Engine.Moment 1; _ } -> ()
  | _ -> Alcotest.fail "moment measure not parsed");
  (match Engine.spec_of_string "nonsense<=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown measure accepted");
  match Engine.spec_of_string "delay_50" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing bound accepted"

let test_measure_names_roundtrip () =
  List.iter
    (fun m ->
      match Engine.measure_of_string (Engine.measure_name m) with
      | Ok m' when m' = m -> ()
      | _ -> Alcotest.failf "%s does not round-trip" (Engine.measure_name m))
    [
      Engine.Dc_gain; Engine.Dc_gain_db; Engine.Dominant_pole_hz;
      Engine.Unity_gain_frequency; Engine.Phase_margin; Engine.Delay_50;
      Engine.Rise_time; Engine.Elmore_delay; Engine.Moment 3;
    ]

(* The PR's acceptance criterion: a 10k-point Monte-Carlo sweep through the
   batch kernel agrees with a per-point Model.eval_moments loop to 1e-12
   relative error on every moment of every point. *)
let test_mc_10k_matches_per_point () =
  let model = Lazy.force fig1_model in
  let n = 10_000 in
  let plan = plan_c1_g2 (Plan.Monte_carlo n) in
  let cols = columns model plan ~seed:42 in
  let batch = Slp.eval_batch (Model.program model) cols in
  let num_symbols = Array.length (Model.symbols model) in
  let v = Array.make num_symbols 0.0 in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    for k = 0 to num_symbols - 1 do
      v.(k) <- cols.(k).(i)
    done;
    let m = Model.eval_moments model v in
    Array.iteri
      (fun j mj ->
        let rel =
          Float.abs (batch.(j).(i) -. mj) /. Float.max 1.0 (Float.abs mj)
        in
        if rel > !worst then worst := rel)
      m
  done;
  if !worst > 1e-12 then
    Alcotest.failf "batched sweep drifts from per-point: rel err %g" !worst

let test_engine_run_summaries () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 500) in
  let specs =
    [
      { Engine.measure = Engine.Dc_gain; bound = Engine.Ge 0.9 };
      { Engine.measure = Engine.Moment 1; bound = Engine.Le 0.0 };
    ]
  in
  let r = Engine.run ~seed:7 ~specs model plan in
  Alcotest.(check int) "points" 500 r.Engine.n;
  Alcotest.(check int) "seed recorded" 7 r.Engine.seed;
  (* fig1 is a unity-DC-gain RC ladder: dc_gain = 1 at every point, and m1 =
     −(C1 + 2C2(=2)·…) < 0 always, so both specs pass everywhere. *)
  let gain =
    List.assoc Engine.Dc_gain r.Engine.summaries
  in
  check_float "dc gain mean" 1.0 gain.Stats.mean;
  check_float "dc gain spread" 0.0 gain.Stats.std;
  Alcotest.(check int) "all points finite" 500 gain.Stats.finite;
  List.iter
    (fun (_, y) -> check_float "spec yield" 1.0 y)
    r.Engine.spec_yields;
  (match r.Engine.yield with
  | Some y -> check_float "joint yield" 1.0 y
  | None -> Alcotest.fail "specs given, yield expected");
  (* Without specs there is no yield figure. *)
  let r0 = Engine.run ~seed:7 model plan in
  Alcotest.(check bool) "no specs, no yield" true (r0.Engine.yield = None)

let test_engine_failing_spec () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 200) in
  (* dc_gain is exactly 1.0 everywhere, so requiring ≥ 2 fails every point. *)
  let specs = [ { Engine.measure = Engine.Dc_gain; bound = Engine.Ge 2.0 } ] in
  let r = Engine.run ~seed:3 ~specs model plan in
  match r.Engine.yield with
  | Some y -> check_float "zero yield" 0.0 y
  | None -> Alcotest.fail "yield expected"

let test_engine_deterministic () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 300) in
  let a = Engine.run ~seed:5 model plan in
  let b = Engine.run ~seed:5 model plan in
  Alcotest.(check bool) "same seed, identical result" true
    (Obs.Json.to_string (Engine.to_json a) = Obs.Json.to_string (Engine.to_json b));
  let c = Engine.run ~seed:6 ~measures:[ Engine.Moment 1 ] model plan in
  let d = Engine.run ~seed:5 ~measures:[ Engine.Moment 1 ] model plan in
  let m1 r = (List.assoc (Engine.Moment 1) r.Engine.summaries).Stats.mean in
  Alcotest.(check bool) "different seed, different draw" true (m1 c <> m1 d)

let test_engine_moment_out_of_range () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Monte_carlo 4) in
  match Engine.run ~measures:[ Engine.Moment 17 ] model plan with
  | exception Awesym_error.Error { kind = Awesym_error.Invalid_request; _ } -> ()
  | _ -> Alcotest.fail "moment beyond 2*order accepted"

let test_engine_json_schema () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 (Plan.Latin_hypercube 50) in
  let specs = [ { Engine.measure = Engine.Delay_50; bound = Engine.Le 100.0 } ] in
  let r = Engine.run ~seed:1234 ~specs model plan in
  let text = Obs.Json.to_string (Engine.to_json r) in
  match Obs.Json.of_string text with
  | Error e -> Alcotest.failf "sweep JSON does not parse: %s" e
  | Ok doc ->
    let member name =
      match Obs.Json.member name doc with
      | Some v -> v
      | None -> Alcotest.failf "missing %s field" name
    in
    (match member "schema" with
    | Obs.Json.Str s ->
      Alcotest.(check string) "schema" "awesymbolic-sweep/2" s
    | _ -> Alcotest.fail "schema is not a string");
    (match member "seed" with
    | Obs.Json.Num s -> check_float "seed recorded in JSON" 1234.0 s
    | _ -> Alcotest.fail "seed is not a number");
    (match member "plan" with
    | Obs.Json.Obj _ -> ()
    | _ -> Alcotest.fail "plan is not an object");
    match member "yield" with
    | Obs.Json.Num _ -> ()
    | _ -> Alcotest.fail "yield is not a number"

(* Engine measures agree with direct single-point evaluation: spot-check the
   batched + memoized path against Awe.Measures on the ROM. *)
let test_engine_measures_match_direct () =
  let model = Lazy.force fig1_model in
  let plan = plan_c1_g2 Plan.Corners in
  let r =
    Engine.run ~measures:[ Engine.Elmore_delay ] model plan
  in
  let s = List.assoc Engine.Elmore_delay r.Engine.summaries in
  let cols = columns model plan ~seed:42 in
  let direct = Array.init 4 (fun i ->
      let v = Array.map (fun col -> col.(i)) cols in
      Awe.Measures.elmore_delay (Model.eval_moments model v))
  in
  let dsum = Stats.summarize direct in
  check_float ~tol:1e-12 "corner Elmore mean" dsum.Stats.mean s.Stats.mean;
  check_float ~tol:1e-12 "corner Elmore max" dsum.Stats.max s.Stats.max

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sweep"
    [
      ( "dist",
        [
          quick "uniform" test_dist_uniform;
          quick "normal quantiles and moments" test_dist_normal;
          quick "lognormal positivity" test_dist_lognormal;
          quick "tolerance band shorthand" test_dist_around;
          quick "parameter guards" test_dist_guards;
        ] );
      ( "plan",
        [
          quick "validation guards" test_plan_guards;
          quick "point counts" test_plan_sizes;
          quick "unknown symbol rejected" test_plan_unknown_symbol;
          quick "unswept symbols pinned at nominal" test_plan_pins_unswept_at_nominal;
          quick "latin hypercube stratification" test_plan_lhs_stratified;
          quick "corners hit the bounds" test_plan_corners;
          quick "grid spacing and ordering" test_plan_grid;
          quick "seeded determinism" test_plan_determinism;
          quick "columns invariant across jobs" test_plan_columns_jobs_invariant;
        ] );
      ( "stats",
        [
          quick "moments and quantiles" test_stats_basic;
          quick "non-finite handling" test_stats_non_finite;
          quick "yield" test_stats_yield;
        ] );
      ( "engine",
        [
          quick "spec parsing" test_spec_parsing;
          quick "measure names round-trip" test_measure_names_roundtrip;
          quick "10k-point MC ≡ per-point evaluation" test_mc_10k_matches_per_point;
          quick "summaries and yields" test_engine_run_summaries;
          quick "failing spec, zero yield" test_engine_failing_spec;
          quick "seeded determinism" test_engine_deterministic;
          quick "moment index validated" test_engine_moment_out_of_range;
          quick "JSON report schema" test_engine_json_schema;
          quick "measures match direct evaluation" test_engine_measures_match_direct;
          quick "eval_batch bit-identical across jobs" test_eval_batch_jobs_invariant;
          quick "10k sweep JSON byte-identical across jobs" test_engine_json_jobs_invariant;
        ] );
    ]
