(* Native SLP kernels (lib/codegen): the hard contract is bit-for-bit
   identity with the interpreter — every output of every point, including
   -0.0, infinities and NaNs, under any jobs count and under fault
   injection.  Also covers the failure policy: toolchain masked -> silent
   interpreter fallback with a classified last_error; corrupted cached
   object -> one warning, quarantine to .cmxs.bad, recompile. *)

module Slp = Symbolic.Slp
module Expr = Symbolic.Expr
module Symbol = Symbolic.Symbol
module Err = Awesym_error

(* Every test resolves kernels through the on-disk cache; point it at a
   private temp dir so runs never cross-talk with a developer cache. *)
let cache_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "awesym-test-codegen-%d" (Unix.getpid ()))
  in
  Unix.putenv "AWESYM_CACHE_DIR" d;
  d

let rm_rf dir =
  match Sys.readdir dir with
  | names ->
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      names;
    (try Sys.rmdir dir with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let with_native f =
  Codegen.install ();
  Slp.set_backend Native;
  Fun.protect
    ~finally:(fun () ->
      Slp.set_backend Auto;
      Codegen.uninstall ())
    f

(* Bit-level comparison: NaN payloads included. *)
let bits = Int64.bits_of_float
let check_bits what a b =
  Alcotest.(check int64) what (bits a) (bits b)

(* Edge inputs the property sweeps over: signed zeros, infinities, NaN,
   denormal-range and huge magnitudes. *)
let edge_values =
  [| 0.0; -0.0; 1.0; -1.5; 0.75; Float.infinity; Float.neg_infinity;
     Float.nan; 1e-300; -1e300; Float.epsilon |]

(* ------------------------------------------------------------------ *)
(* A representative program with every opcode, built from expressions. *)

let opamp_like () =
  let x = Symbol.intern "x" and y = Symbol.intern "y" in
  let ex = Expr.sym x and ey = Expr.sym y in
  let open Expr in
  let num = add (mul ex ey) (neg (const 0.25)) in
  let den = add (mul ey ey) (const 1.0e-9) in
  let outs =
    [|
      mul num (inv den);
      sqrt (add (mul ex ex) (mul ey ey));
      exp (neg (mul ex (const 0.5)));
      add num (const 3.5);
    |]
  in
  Slp.compile ~inputs:[| x; y |] outs

let scalar_points p =
  let nin = Array.length (Slp.inputs p) in
  let npts = Array.length edge_values + 5 in
  Array.init npts (fun i ->
      Array.init nin (fun k ->
          if i < Array.length edge_values then
            edge_values.((i + (3 * k)) mod Array.length edge_values)
          else Float.of_int (((i * 7) + (k * 13)) mod 23) /. 8.0))

let check_program_identity ?(what = "") p =
  let points = scalar_points p in
  (* Scalar: interp first (fresh clone pinned to Interp via backend). *)
  Slp.set_backend Interp;
  let expect = Array.map (Slp.eval p) points in
  Slp.set_backend Native;
  if not (Codegen.available p) then
    Alcotest.failf "native unavailable for %s: %s" what
      (match Codegen.last_error () with
      | Some e -> Err.to_string e
      | None -> "(no classified error)");
  Array.iteri
    (fun i pt ->
      let got = Slp.eval p pt in
      Array.iteri
        (fun j g ->
          check_bits
            (Printf.sprintf "%s scalar point %d out %d" what i j)
            expect.(i).(j) g)
        got)
    points;
  (* Batched, across jobs counts and block sizes that split the range. *)
  let n = 700 in
  let nin = Array.length (Slp.inputs p) in
  let cols =
    Array.init nin (fun k ->
        Array.init n (fun i ->
            if i mod 3 = 0 then
              edge_values.((i + k) mod Array.length edge_values)
            else Float.of_int (((i * 31) + (k * 17)) mod 101) /. 16.0))
  in
  Slp.set_backend Interp;
  let expect_cols = Slp.eval_batch ~jobs:1 p cols in
  Slp.set_backend Native;
  List.iter
    (fun (jobs, block) ->
      let got = Slp.eval_batch ~jobs ~block p cols in
      Array.iteri
        (fun j col ->
          Array.iteri
            (fun i g ->
              check_bits
                (Printf.sprintf "%s batch jobs=%d block=%d out %d pt %d" what
                   jobs block j i)
                expect_cols.(j).(i) g)
            col)
        got)
    [ (1, Slp.default_block); (4, Slp.default_block); (4, 64); (3, 97) ];
  Slp.set_backend Auto

let test_native_matches_interp_bitwise () =
  with_native @@ fun () ->
  let p = opamp_like () in
  check_program_identity ~what:"opamp-like" p;
  (* And the kernel object landed in the content-addressed cache. *)
  Alcotest.(check bool)
    "compiled object cached" true
    (Sys.file_exists (Codegen.cache_path p))

(* ------------------------------------------------------------------ *)
(* Property: native ≡ interp over random programs (random register
   graphs, not just expression compilations — exercises register reuse,
   read-before-write init constants, constant outputs). *)

let slp_gen =
  QCheck2.Gen.(
    let* nin = 1 -- 3 in
    let* nregs = 2 -- 6 in
    let* nops = 1 -- 25 in
    let reg = 0 -- (nregs - 1) in
    let instr =
      let* op = 0 -- 6 in
      let* r = reg and* a = reg and* b = reg in
      let* slot = 0 -- (nin - 1) in
      return
        (match op with
        | 0 -> Slp.Load_input (r, slot)
        | 1 -> Slp.Add (r, a, b)
        | 2 -> Slp.Mul (r, a, b)
        | 3 -> Slp.Neg (r, a)
        | 4 -> Slp.Inv (r, a)
        | 5 -> Slp.Sqrt (r, a)
        | _ -> Slp.Exp (r, a))
    in
    let init_val =
      oneof
        [
          float_range (-4.0) 4.0;
          oneofl [ 0.0; -0.0; 1.0; Float.infinity; Float.nan; 1e-300 ];
        ]
    in
    let* instrs = array_size (return nops) instr in
    let* init = array_size (return nregs) init_val in
    let* nout = 1 -- 4 in
    let* outputs = array_size (return nout) reg in
    let inputs = Array.init nin (fun k -> Symbol.intern (Printf.sprintf "s%d" k)) in
    return (Slp.of_parts ~inputs ~instrs ~init ~outputs))

let prop_native_identity =
  QCheck2.Test.make ~name:"native ≡ interp bit-for-bit on random SLPs"
    ~count:20 slp_gen (fun p ->
      with_native @@ fun () ->
      check_program_identity ~what:"random" p;
      true)

(* ------------------------------------------------------------------ *)
(* Fault-injection parity: both backends walk the same block grid and
   cut the same (site, key) pairs, so an armed fault fires identically —
   native can never "skip past" a fault the interpreter would hit. *)

let test_fault_parity () =
  let p = opamp_like () in
  let n = 1000 in
  let cols =
    Array.init 2 (fun k -> Array.init n (fun i -> Float.of_int (i + k) /. 64.))
  in
  let outcome () =
    match Slp.eval_batch ~jobs:1 p cols with
    | _ -> None
    | exception Err.Error e -> Some (e.Err.kind, e.Err.where)
  in
  Fun.protect ~finally:Runtime.Fault.disarm @@ fun () ->
  List.iter
    (fun seed ->
      Runtime.Fault.arm ~seed "slp.eval_batch:0.5";
      Slp.set_backend Interp;
      let interp = outcome () in
      let fired = interp <> None in
      let native =
        with_native @@ fun () ->
        Alcotest.(check bool) "native available" true (Codegen.available p);
        outcome ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: same fault outcome" seed)
        fired (native <> None);
      if fired then
        Alcotest.(check (pair string string))
          (Printf.sprintf "seed %d: same classification" seed)
          (match interp with
          | Some (k, w) -> (Err.kind_name k, w)
          | None -> assert false)
          (match native with
          | Some (k, w) -> (Err.kind_name k, w)
          | None -> assert false))
    [ 0; 1; 7 ];
  Slp.set_backend Auto

(* ------------------------------------------------------------------ *)
(* The single-owner latch survives the native fast path: two domains
   racing one evaluator -> exactly one winner, one Invalid_argument. *)

let test_native_batch_single_owner () =
  with_native @@ fun () ->
  let p = opamp_like () in
  Alcotest.(check bool) "native available" true (Codegen.available p);
  let n = 4096 in
  let cols =
    Array.init 2 (fun k -> Array.init n (fun i -> Float.of_int (i + k) /. 512.))
  in
  let run = Slp.make_batch_evaluator ~jobs:2 p in
  let rec attempt tries =
    if tries = 0 then
      Alcotest.fail "never observed a concurrent overlap in 200 tries"
    else begin
      let gate = Atomic.make 0 in
      let race () =
        Atomic.incr gate;
        while Atomic.get gate < 2 do
          Domain.cpu_relax ()
        done;
        match run cols with
        | r -> Ok r
        | exception Invalid_argument m -> Error m
      in
      let d = Domain.spawn race in
      let a = race () in
      let b = Domain.join d in
      match (a, b) with
      | Ok _, Ok _ -> attempt (tries - 1) (* no overlap this time *)
      | Error m, Error _ ->
        Alcotest.failf "both calls rejected: %s" m
      | (Ok r, Error m | Error m, Ok r) ->
        Alcotest.(check bool)
          "loser names the single-owner contract" true
          (String.length m > 0);
        (* The winner's results are uncorrupted. *)
        let expect = Slp.eval_batch ~jobs:1 p cols in
        Array.iteri
          (fun j col ->
            Array.iteri
              (fun i g -> check_bits (Printf.sprintf "out %d pt %d" j i)
                   expect.(j).(i) g)
              col)
          r
    end
  in
  attempt 200

(* ------------------------------------------------------------------ *)
(* Failure policy. *)

(* Masking PATH must turn --backend native into a silent interpreter
   run with a classified Invalid_request behind [last_error].  Uses a
   fresh program (fresh digest) so no memoized verdict applies. *)
let test_fallback_without_toolchain () =
  let x = Symbol.intern "x" in
  let p =
    Slp.compile ~inputs:[| x |]
      [| Expr.(exp (add (sym x) (const 41.0))) |]
  in
  let saved_path = try Sys.getenv "PATH" with Not_found -> "" in
  Fun.protect ~finally:(fun () -> Unix.putenv "PATH" saved_path)
  @@ fun () ->
  Unix.putenv "PATH" "/nonexistent-awesym-test";
  with_native @@ fun () ->
  Alcotest.(check bool) "provider declines" false (Codegen.available p);
  (match Codegen.last_error () with
  | Some e ->
    Alcotest.(check string) "classified as invalid_request" "invalid_request"
      (Err.kind_name e.Err.kind)
  | None -> Alcotest.fail "expected a classified last_error");
  (* Evaluation silently continues on the interpreter, bit-identical. *)
  let got = Slp.eval p [| 1.0 |] in
  Slp.set_backend Interp;
  let expect = Slp.eval p [| 1.0 |] in
  check_bits "fallback result" expect.(0) got.(0)

(* A corrupted cached object: load fails validation -> warn once,
   quarantine to .cmxs.bad, recompile in place, and results stay
   correct.  The cache path is derived before any resolution so the
   garbage is what the first probe sees. *)
let test_quarantine_corrupt_object () =
  let x = Symbol.intern "x" in
  let p =
    Slp.compile ~inputs:[| x |]
      [| Expr.(mul (sym x) (const 1234.5)) |]
  in
  let dest = Codegen.cache_path p in
  Awesymbolic.Cache.ensure_dir (Filename.dirname dest);
  let oc = open_out_bin dest in
  output_string oc "definitely not a .cmxs";
  close_out oc;
  with_native @@ fun () ->
  Alcotest.(check bool) "recompiled after quarantine" true
    (Codegen.available p);
  Alcotest.(check bool) "stale object quarantined" true
    (Sys.file_exists (dest ^ ".bad"));
  Alcotest.(check bool) "fresh object republished" true (Sys.file_exists dest);
  let got = Slp.eval p [| 2.0 |] in
  Slp.set_backend Interp;
  let expect = Slp.eval p [| 2.0 |] in
  check_bits "post-quarantine result" expect.(0) got.(0)

(* Oversized programs are never compiled (ocamlopt time bound). *)
let test_max_ops_guard () =
  let x = Symbol.intern "x" in
  let nops = Codegen.max_ops + 1 in
  let instrs =
    Array.init nops (fun i ->
        if i = 0 then Slp.Load_input (0, 0) else Slp.Add (0, 0, 0))
  in
  let p =
    Slp.of_parts ~inputs:[| x |] ~instrs ~init:[| 0.0 |] ~outputs:[| 0 |]
  in
  with_native @@ fun () ->
  Alcotest.(check bool) "declined" false (Codegen.available p);
  (* 1.0 doubled max_ops times overflows: the interpreter's answer. *)
  let got = Slp.eval p [| 1.0 |] in
  check_bits "interp result" Float.infinity got.(0)

let () =
  let cleanup () = rm_rf cache_dir in
  at_exit cleanup;
  Alcotest.run "codegen"
    [
      ( "identity",
        [
          Alcotest.test_case "opamp-like program, scalar+batch" `Quick
            test_native_matches_interp_bitwise;
          QCheck_alcotest.to_alcotest prop_native_identity;
        ] );
      ( "parity",
        [
          Alcotest.test_case "fault injection fires identically" `Quick
            test_fault_parity;
          Alcotest.test_case "native batch evaluator is single-owner" `Quick
            test_native_batch_single_owner;
        ] );
      ( "failure policy",
        [
          Alcotest.test_case "fallback without toolchain" `Quick
            test_fallback_without_toolchain;
          Alcotest.test_case "quarantine corrupt cached object" `Quick
            test_quarantine_corrupt_object;
          Alcotest.test_case "max_ops guard declines" `Quick
            test_max_ops_guard;
        ] );
    ]
