(* Statistical yield analysis with the sweep engine.

   The monte_carlo example hand-rolls its sampling loop; this one uses the
   lib/sweep subsystem end to end: compile the op-amp once, persist it as a
   checksummed artifact, load it back, and run seeded Monte-Carlo, Latin-
   hypercube, and corner sweeps through the batched SLP kernel into summary
   statistics and a yield figure against performance specs.

   Run with:  dune exec examples/yield_sweep.exe *)

module Netlist = Circuit.Netlist
module Builders = Circuit.Builders
module Sym = Symbolic.Symbol
module Model = Awesymbolic.Model
module Dist = Sweep.Dist
module Plan = Sweep.Plan
module Stats = Sweep.Stats
module Engine = Sweep.Engine

let section title = Printf.printf "\n=== %s ===\n" title

let print_result r =
  List.iter
    (fun (m, s) ->
      Printf.printf "  %-22s mean %12.5g  std %11.4g  [p05 %12.5g, p95 %12.5g]\n"
        (Engine.measure_name m) s.Stats.mean s.Stats.std
        (List.assoc 0.05 s.Stats.quantiles)
        (List.assoc 0.95 s.Stats.quantiles))
    r.Engine.summaries;
  List.iter
    (fun (spec, y) ->
      Printf.printf "  spec %-24s yield %5.1f%%\n" (Engine.spec_to_string spec)
        (100.0 *. y))
    r.Engine.spec_yields;
  match r.Engine.yield with
  | Some y -> Printf.printf "  overall yield %5.1f%%\n" (100.0 *. y)
  | None -> ()

let () =
  let nl = Builders.opamp741 () in
  let gname, cname = Builders.opamp_symbol_names in
  let nl = Netlist.mark_symbolic nl gname (Sym.intern gname) in
  let nl = Netlist.mark_symbolic nl cname (Sym.intern cname) in

  section "Compile once, persist, reload";
  let path = Filename.temp_file "opamp" ".awm" in
  Model.save (Model.build ~order:2 nl) path;
  let model = Model.load path in
  Sys.remove path;
  Printf.printf "artifact round trip: %d operations over symbols %s\n"
    (Model.num_operations model)
    (String.concat ", "
       (Array.to_list (Array.map Sym.name (Model.symbols model))));

  (* ±3σ lognormal process spread on the output conductance, a ±20%
     tolerance band on the compensation capacitor. *)
  let axes =
    [
      { Plan.name = gname; dist = Dist.lognormal ~mu:(log 2e-6) ~sigma:0.15 };
      { Plan.name = cname; dist = Dist.around ~nominal:30e-12 ~pct:20.0 };
    ]
  in
  let measures =
    [ Engine.Dc_gain_db; Engine.Unity_gain_frequency; Engine.Phase_margin ]
  in
  let specs =
    [
      { Engine.measure = Engine.Phase_margin; bound = Engine.Ge 60.0 };
      { Engine.measure = Engine.Unity_gain_frequency; bound = Engine.Ge 1e5 };
    ]
  in

  section "Monte-Carlo, 10,000 points (seed 42)";
  let mc = Plan.make (Plan.Monte_carlo 10_000) axes in
  print_result (Engine.run ~seed:42 ~measures ~specs model mc);

  section "Latin hypercube, 500 points: tighter tail estimates per sample";
  let lhs = Plan.make (Plan.Latin_hypercube 500) axes in
  print_result (Engine.run ~seed:42 ~measures ~specs model lhs);

  section "Corners: the 4 extreme combinations";
  let corners = Plan.make Plan.Corners axes in
  print_result (Engine.run ~measures ~specs model corners);

  section "Reproducibility";
  let a = Engine.run ~seed:7 ~measures model mc in
  let b = Engine.run ~seed:7 ~measures model mc in
  Printf.printf "same seed, identical JSON reports: %b\n"
    (Obs.Json.to_string (Engine.to_json a)
    = Obs.Json.to_string (Engine.to_json b))
