(** Sweep plans: which symbols vary, how, and at which points.

    A plan is a set of {e axes} (symbol name + distribution) and a point
    {e kind}.  {!columns} materializes it against a concrete model as one
    column per model input slot, ready for [Slp.eval_batch]; symbols the
    plan does not sweep stay pinned at their nominal values. *)

type axis = { name : string; dist : Dist.t }

type kind =
  | Monte_carlo of int  (** [n] independent draws per axis. *)
  | Latin_hypercube of int
      (** [n] points, one per stratum per axis, axes decorrelated by a
          seeded shuffle — better low-dimension coverage than Monte-Carlo
          at the same [n]. *)
  | Corners
      (** All [2^k] combinations of per-axis {!Dist.bounds} — worst-case
          process corners. *)
  | Grid of int
      (** [n] evenly spaced values per axis over {!Dist.bounds}, full
          cartesian product ([n^k] points). *)

type t = private { kind : kind; axes : axis list }

val make : kind -> axis list -> t
(** Validates the plan: at least one axis, no duplicate names, positive
    point counts, and a size guard on the cartesian kinds ([<= 2^20]
    corners, [<= 10^6] grid points).  Raises [Invalid_argument]. *)

val num_points : t -> int
val kind_name : kind -> string

val columns :
  symbols:string array ->
  nominals:float array ->
  rng:Obs.Rng.t ->
  ?jobs:int ->
  ?block:int ->
  t ->
  float array array
(** [columns ~symbols ~nominals ~rng t] is the structure-of-arrays input
    block: result[k].(i) is the value of [symbols.(k)] at point [i].
    Deterministic given the rng state — including under [jobs > 1]
    (default [Runtime.default_jobs ()]), where chunks of [block] points
    (default 256) sample from jump-ahead copies of the same stream
    ({!Obs.Rng.copy} / {!Obs.Rng.skip}), so every jobs count produces the
    exact sequential values and leaves [rng] in the sequential end state.
    Raises [Awesym_error.Error] (kind [Invalid_request]) naming the
    symbol when an axis is not a model symbol. *)

val to_json : t -> Obs.Json.t
(** Plan descriptor recorded in sweep results (kind, point count, axes). *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}, revalidated through {!make}.  Floats
    round-trip bit-exactly (see [Obs.Json]), so a plan decoded on a
    distributed-sweep worker samples the very same points as the
    coordinator's original. *)
