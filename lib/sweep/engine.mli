(** The sweep engine: plan → batched moment evaluation → measures →
    statistics and yield.

    [run] materializes the plan's points as input columns, evaluates the
    model's compiled moment program over all of them with
    [Slp.eval_batch] (bit-identical to a per-point [Model.eval_moments]
    loop, but one instruction dispatch per block), finishes each point with
    the fixed-order Padé fit, extracts the requested performance measures,
    and summarizes.  Everything downstream of the seed is deterministic. *)

type measure =
  | Dc_gain
  | Dc_gain_db
  | Dominant_pole_hz
  | Unity_gain_frequency
  | Phase_margin
  | Delay_50
  | Rise_time
  | Elmore_delay
  | Moment of int  (** The raw compiled moment [m_k], no Padé finish. *)

val measure_name : measure -> string
val measure_of_string : string -> (measure, string) result
(** Accepts the {!measure_name} spellings plus [m0], [m1], … *)

type bound =
  | Le of float  (** pass iff value ≤ limit *)
  | Ge of float  (** pass iff value ≥ limit *)

type spec = { measure : measure; bound : bound }
(** A performance-measure requirement; non-finite values always fail. *)

val spec_of_string : string -> (spec, string) result
(** Parses ["delay_50<=1e-9"] / ["dc_gain>=0.5"] style strings. *)

val spec_to_string : spec -> string

type result = {
  seed : int;
  plan : Plan.t;
  n : int;
  order : int;
  summaries : (measure * Stats.summary) list;
  spec_yields : (spec * float) list;  (** Per-spec pass fraction. *)
  yield : float option;
      (** Fraction of points passing {e every} spec; [None] without specs. *)
}

val default_measures : measure list
(** [Dc_gain; Dominant_pole_hz; Delay_50]. *)

val run :
  ?seed:int ->
  ?block:int ->
  ?jobs:int ->
  ?measures:measure list ->
  ?specs:spec list ->
  Awesymbolic.Model.t ->
  Plan.t ->
  result
(** Default seed 42; [block] is forwarded to [Slp.eval_batch].  [jobs]
    (default [Runtime.default_jobs ()]) fans sampling, batched moment
    evaluation, and the per-point measure finish across that many domains;
    the determinism contract guarantees the result — and its
    {!to_json} serialization — is bit-identical for every jobs count.
    Spec measures are automatically added to the summarized set.  Raises
    [Invalid_argument] on a [Moment k] beyond the model's [2·order]
    moments, [Failure] when the plan sweeps a non-model symbol.  Obs
    counters: [sweep.run.count], [sweep.run.points]; span [sweep.run]. *)

val to_json : result -> Obs.Json.t
(** Machine-readable report (schema ["awesymbolic-sweep/1"]), recording the
    seed so any run can be reproduced exactly. *)
