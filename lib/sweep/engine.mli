(** The sweep engine: plan → batched moment evaluation → measures →
    statistics and yield, with per-point fault isolation and
    chunk-granular checkpoint/resume.

    [run] materializes the plan's points as input columns, evaluates the
    model's compiled moment program chunk-by-chunk with [Slp.eval_batch]
    (bit-identical to a per-point [Model.eval_moments] loop, but one
    instruction dispatch per block), finishes each point with the
    fixed-order Padé fit, extracts the requested performance measures,
    and summarizes.  Everything downstream of the seed is deterministic.

    {2 Fault isolation}

    AWE sweeps hit genuinely bad points: ill-conditioned moment
    matrices, singular MNA factorizations, unstable Padé fits.  Instead
    of dying wholesale, the engine classifies each failure into the
    {!Awesym_error} taxonomy and applies the configured {!policy}:
    failed points are quarantined into {!result.failed} (and the JSON
    report's ["failed_points"] section), statistics and yields are
    computed over the surviving points only, and the quarantine decision
    is a pure function of the data — every [jobs] count quarantines the
    same points and produces byte-identical reports.

    What counts as a point fault: an exception escaping the point's
    evaluation (singular system, degenerate Padé when a ROM-based
    measure was requested, injected fault) or a non-finite compiled
    moment.  A NaN {e measure} from a successful model evaluation (e.g.
    no unity-gain crossing) is a property of the circuit, not a fault —
    it stays in the report and is excluded per-measure by {!Stats} as
    before.

    {2 Checkpoint/resume}

    With [?checkpoint], completed chunks are appended to an on-disk
    checkpoint through [Cache.atomic_write] (readers never observe a
    torn file, so a SIGKILL at any instant leaves either the previous
    checkpoint or the new one).  Re-running with [~resume:true] restores
    completed chunks bit-exactly — float values travel as IEEE-754 bit
    patterns — and recomputes only the rest, so a resumed run's report
    is byte-identical to an uninterrupted one. *)

type measure =
  | Dc_gain
  | Dc_gain_db
  | Dominant_pole_hz
  | Unity_gain_frequency
  | Phase_margin
  | Delay_50
  | Rise_time
  | Elmore_delay
  | Moment of int  (** The raw compiled moment [m_k], no Padé finish. *)

val measure_name : measure -> string
val measure_of_string : string -> (measure, string) result
(** Accepts the {!measure_name} spellings plus [m0], [m1], … *)

type bound =
  | Le of float  (** pass iff value ≤ limit *)
  | Ge of float  (** pass iff value ≥ limit *)

type spec = { measure : measure; bound : bound }
(** A performance-measure requirement; non-finite values always fail. *)

val spec_of_string : string -> (spec, string) result
(** Parses ["delay_50<=1e-9"] / ["dc_gain>=0.5"] style strings. *)

val spec_to_string : spec -> string

type policy =
  | Fail_fast  (** first fault aborts the sweep ([Awesym_error.Error]) *)
  | Skip  (** quarantine the failing point and move on (default) *)
  | Retry of int
      (** like [Skip], but first retry the failing point/chunk up to the
          given number of extra attempts (> 0) — transient injected
          faults clear on re-execution — and retry a degenerate Padé fit
          at reduced orders [q-1 … 1] before quarantining *)

val policy_name : policy -> string
(** ["fail_fast"], ["skip"], ["retry:N"]. *)

val policy_of_string : string -> (policy, string) result
(** Accepts ["fail_fast"]/["fail-fast"], ["skip"], ["retry"] (two extra
    attempts) and ["retry:N"]. *)

type failed_point = {
  point : int;  (** plan point index, [0 <= point < n] *)
  attempts : int;  (** evaluation attempts consumed, >= 1 *)
  error : Awesym_error.t;  (** the last failure *)
}

type result = {
  seed : int;
  plan : Plan.t;
  n : int;
  order : int;
  policy : policy;
  summaries : (measure * Stats.summary) list;
      (** over surviving points only *)
  spec_yields : (spec * float) list;
      (** Per-spec pass fraction over surviving points. *)
  yield : float option;
      (** Fraction of surviving points passing {e every} spec; [None]
          without specs. *)
  failed : failed_point list;
      (** permanently failed (quarantined) points, ascending by index;
          empty under [Fail_fast] (it raises instead) and on clean
          sweeps.  Points recovered by retries do {e not} appear here —
          they are visible in the Obs counters only, keeping reports
          byte-identical to a fault-free run. *)
}

val survivors : result -> int
(** [n] minus the quarantined count. *)

val default_measures : measure list
(** [Dc_gain; Dominant_pole_hz; Delay_50]. *)

val point_measures :
  Awesymbolic.Model.t -> measure list -> float array -> float list
(** Evaluate measures at a single input point with {e exactly} the
    per-point finish the sweep applies: compiled moments, fixed-order
    Padé fit (shared across the ROM-based measures), NaN for a
    successful fit with no crossing.  The optimizer's objective goes
    through this, so a sized design point and a sweep visiting the same
    point agree bit for bit.  Raises [Nonfinite_result] on a non-finite
    compiled moment and [Awe.Pade.Degenerate] on a degenerate fit. *)

val moment_measures :
  Awesymbolic.Model.t -> measure list -> float array -> float list
(** Like {!point_measures} but starting from an already-computed moment
    vector — the deterministic measure finish alone.  The optimizer's
    gradient path perturbs moments along the model's exact sensitivity
    Jacobian and re-finishes through this. *)

(** {2 Staged API}

    {!run} is built from three reusable stages — [prepare] (everything a
    chunk evaluation depends on), [eval_chunk] (one chunk, no shared
    state), [finish] (deterministic merge + statistics) — exposed so the
    distributed coordinator ([Dsweep]) and the serve daemon's
    [sweep_chunk] worker op can execute the {e same} sweep chunk-by-chunk
    across processes and machines.  A [prep] built from equal inputs is
    bit-identical everywhere ([Plan.columns] is jobs-invariant), so
    [eval_chunk prep i] returns the same bytes on any node. *)

type prep
(** Prepared sweep: validated inputs, materialized input columns, the
    deterministic chunk layout, and the checkpoint key. *)

val prepare :
  ?seed:int ->
  ?block:int ->
  ?jobs:int ->
  ?measures:measure list ->
  ?specs:spec list ->
  ?policy:policy ->
  Awesymbolic.Model.t ->
  Plan.t ->
  prep
(** Validate and materialize a sweep (defaults as in {!run}).  [jobs]
    only parallelizes column sampling — it never changes the values.
    Raises [Awesym_error.Error] (kind [Invalid_request]) on a [Moment k]
    beyond the model's moments or a non-positive retry count. *)

val prep_key : prep -> string
(** The checkpoint key: hex MD5 binding plan, seed, order, block,
    measures, specs, policy, and the model's shape.  Two preps with
    equal keys evaluate chunks identically; the distributed protocol
    uses key equality as its skew handshake. *)

val prep_points : prep -> int
(** Total points [n]. *)

val prep_num_chunks : prep -> int
(** Number of chunks in the deterministic layout. *)

val prep_block : prep -> int
(** The resolved chunk block size — what a distributed work item must
    carry so the worker rebuilds the very same layout. *)

val prep_measures : prep -> measure list
(** The summarized measure set (requested measures with spec measures
    unioned in, in report order). *)

val prep_specs : prep -> spec list
(** The spec list the prep was built with, in request order. *)

val prep_inputs : prep -> float array array
(** The materialized input columns: result[k].(i) is the value of model
    symbol [k] at plan point [i] (every point, every symbol — swept or
    pinned at nominal).  This is the exact block [eval_chunk] slices, so
    a consumer correlating measures back to parameter values (e.g. the
    optimizer's yield re-centering loop, see docs/OPTIMIZE.md) reads the
    very values the kernel saw.  Do not mutate. *)

type chunk_result
(** One evaluated chunk: measure values for its points plus any
    quarantined failures.  Opaque; move it between nodes via
    {!chunk_result_to_json}. *)

val chunk_index : chunk_result -> int
(** Index of this chunk in the prep's layout. *)

val chunk_lo : chunk_result -> int
(** Global index of the chunk's first point. *)

val chunk_len : chunk_result -> int
(** Number of points the chunk covers. *)

val chunk_values : chunk_result -> float array array
(** Measure values: result[m].(i) is measure [m] (in {!prep_measures}
    order) at point [chunk_lo + i]; [nan] rows for quarantined points.
    Do not mutate. *)

val chunk_failures : chunk_result -> int list
(** Global indices of the chunk's quarantined points, ascending. *)

val eval_chunk : prep -> int -> chunk_result
(** Evaluate chunk [i]: batched moment evaluation, per-point measure
    finish, fault policy applied exactly as in {!run} (same fault sites,
    same retry/quarantine decisions — they are pure functions of the
    data).  Raises under [Fail_fast] on the first fault, and
    [Invalid_request] on an out-of-range index. *)

val chunk_result_to_json : chunk_result -> Obs.Json.t
(** The checkpoint record shape [{lo; len; vals; failed}], floats as
    IEEE-754 hex bit patterns — byte-exact across the wire. *)

val chunk_result_of_json : ?file:string -> prep -> Obs.Json.t -> chunk_result
(** Parse and validate a chunk record against the prep's layout
    (bounds, block alignment, measure-row count).  Raises
    [Artifact_corrupt] on any mismatch — a hostile or stale record
    cannot scribble outside its chunk.  [file] names the source in
    error messages. *)

val finish : prep -> chunk_result option array -> result
(** Merge chunk results (slot [i] = chunk [i]) and compute statistics.
    The merge is by chunk index, so the result is independent of which
    domain or node produced each chunk.  Raises [Internal] if any slot
    is [None], and (kind of the first failure) when every point was
    quarantined. *)

(** Checkpoint files (schema ["awesymbolic-ckpt/1"]) shared by {!run}
    and the distributed coordinator: one writer per run, rewritten
    atomically so the bytes are a pure function of the completed-chunk
    set. *)
module Checkpoint : sig
  type writer

  val writer : prep -> path:string -> every:int -> writer
  (** A writer flushing after [every] newly completed chunks (>= 1). *)

  val add : ?written:bool -> writer -> chunk_result -> unit
  (** Record a completed chunk (thread-safe).  [written] (default true)
      counts the chunk toward the flush cadence and the
      [sweep.checkpoint.chunks_written] counter; pass [false] for
      restored chunks that are only being re-registered. *)

  val flush : writer -> unit
  (** Write the file now, whatever the cadence. *)

  val load : prep -> path:string -> chunk_result list
  (** Restore completed chunks from [path]; a missing file is an empty
      list.  Raises [Artifact_corrupt] on unreadable/malformed files and
      [Invalid_request] when the key was written by a different sweep. *)
end

val run :
  ?seed:int ->
  ?block:int ->
  ?jobs:int ->
  ?measures:measure list ->
  ?specs:spec list ->
  ?policy:policy ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?checkpoint_every:int ->
  Awesymbolic.Model.t ->
  Plan.t ->
  result
(** Default seed 42; [block] is forwarded to [Slp.eval_batch].  [jobs]
    (default [Runtime.default_jobs ()]) fans sampling, batched moment
    evaluation, and the per-point measure finish across that many
    domains; the determinism contract guarantees the result — and its
    {!to_json} serialization — is bit-identical for every jobs count,
    fault policy decisions included.  Spec measures are automatically
    added to the summarized set.

    [policy] (default {!Skip}) governs fault handling; see the module
    docs for what counts as a fault.  Fault-injection sites crossed per
    point/chunk: ["sweep.point"] (keyed by point index), ["pool.worker"]
    (keyed by chunk start), plus ["slp.eval_batch"] inside the kernel.

    [checkpoint] names a checkpoint file updated after every
    [checkpoint_every] (default 1) completed chunks and at the end of
    the run.  With [resume = true], a compatible existing checkpoint
    seeds the run: completed chunks are restored bit-exactly and only
    the remainder is evaluated.  A checkpoint written by a different
    (plan, seed, order, block, measures, specs, policy, model) is
    rejected with [Awesym_error.Error] (kind [Invalid_request]); an
    unreadable one with kind [Artifact_corrupt]; a missing file is
    simply a fresh start.

    Raises [Awesym_error.Error] (kind [Invalid_request]) on a [Moment k]
    beyond the model's [2·order] moments or when the plan sweeps a
    non-model symbol, and (kind of the first failure) when every point
    of the sweep was quarantined.  Obs counters: [sweep.run.count],
    [sweep.run.points], [sweep.fault.seen], [sweep.fault.retried],
    [sweep.fault.recovered], [sweep.fault.order_reduced],
    [sweep.fault.quarantined], [sweep.checkpoint.chunks_written],
    [sweep.checkpoint.chunks_resumed]; span [sweep.run]. *)

val schema : string
(** Report schema identifier (["awesymbolic-sweep/2"]), exported so
    [awesym --version] can enumerate every wire/artifact format. *)

val to_json : result -> Obs.Json.t
(** Machine-readable report (schema ["awesymbolic-sweep/2"]), recording
    the seed so any run can be reproduced exactly.  Relative to schema
    /1 it adds ["survivors"], ["policy"], and ["failed_points"] (a list
    of [{point, attempts, error}] objects, error rendered via
    [Awesym_error.to_json]). *)
