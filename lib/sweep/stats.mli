(** Per-output summaries of a sweep's samples.

    Non-finite samples (NaN from complex poles, ±∞ from escaping zeros) are
    excluded from the moments/quantiles/histogram but stay visible as the
    gap between [n] and [finite] — and count as failures in {!yield}. *)

type summary = {
  n : int;  (** Total samples, including non-finite. *)
  finite : int;  (** Samples the statistics below are computed over. *)
  mean : float;
  std : float;  (** Sample (n−1) standard deviation. *)
  min : float;
  max : float;
  quantiles : (float * float) list;  (** [(p, value)] pairs, ascending. *)
  histogram : (float * float * int) array;
      (** [(lo, hi, count)] equal-width bins spanning [min, max]. *)
}

val default_probs : float list
(** [0.05; 0.25; 0.5; 0.75; 0.95]. *)

val summarize : ?bins:int -> ?probs:float list -> float array -> summary
(** Default 20 histogram bins.  All-NaN input yields NaN statistics and an
    empty histogram.  Quantiles use linear interpolation (Hyndman–Fan
    type 7, the numpy default).  Raises [Invalid_argument] on an empty
    sample. *)

val yield : pass:(float -> bool) -> float array -> float
(** Fraction of samples that are finite {e and} satisfy [pass] — the
    statistical-design yield figure.  Raises [Invalid_argument] on an empty
    sample. *)

val to_json : summary -> Obs.Json.t
