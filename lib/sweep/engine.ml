module Model = Awesymbolic.Model
module Slp = Symbolic.Slp
module Sym = Symbolic.Symbol
module Measures = Awe.Measures

type measure =
  | Dc_gain
  | Dc_gain_db
  | Dominant_pole_hz
  | Unity_gain_frequency
  | Phase_margin
  | Delay_50
  | Rise_time
  | Elmore_delay
  | Moment of int

let measure_name = function
  | Dc_gain -> "dc_gain"
  | Dc_gain_db -> "dc_gain_db"
  | Dominant_pole_hz -> "dominant_pole_hz"
  | Unity_gain_frequency -> "unity_gain_frequency"
  | Phase_margin -> "phase_margin"
  | Delay_50 -> "delay_50"
  | Rise_time -> "rise_time"
  | Elmore_delay -> "elmore_delay"
  | Moment k -> Printf.sprintf "m%d" k

let named_measures =
  [
    Dc_gain; Dc_gain_db; Dominant_pole_hz; Unity_gain_frequency;
    Phase_margin; Delay_50; Rise_time; Elmore_delay;
  ]

let measure_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match List.find_opt (fun m -> measure_name m = s) named_measures with
  | Some m -> Ok m
  | None -> (
    let moment =
      if String.length s >= 2 && s.[0] = 'm' then
        int_of_string_opt (String.sub s 1 (String.length s - 1))
      else None
    in
    match moment with
    | Some k when k >= 0 -> Ok (Moment k)
    | _ ->
      Error
        (Printf.sprintf "unknown measure %S (try %s, or m0, m1, ...)" s
           (String.concat ", " (List.map measure_name named_measures))))

type bound = Le of float | Ge of float

type spec = { measure : measure; bound : bound }

let spec_of_string s =
  let split op =
    match String.index_opt s op.[0] with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '='
           && String.length op = 2 ->
      Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
    | _ -> None
  in
  let parse name limit mk =
    match (measure_of_string name, float_of_string_opt (String.trim limit)) with
    | Ok m, Some v -> Ok { measure = m; bound = mk v }
    | (Error _ as e), _ -> e
    | _, None -> Error (Printf.sprintf "bad limit in spec %S" s)
  in
  match (split "<=", split ">=") with
  | Some (name, limit), _ -> parse name limit (fun v -> Le v)
  | None, Some (name, limit) -> parse name limit (fun v -> Ge v)
  | None, None ->
    Error
      (Printf.sprintf "spec %S must look like measure<=limit or measure>=limit"
         s)

let spec_to_string { measure; bound } =
  match bound with
  | Le v -> Printf.sprintf "%s<=%g" (measure_name measure) v
  | Ge v -> Printf.sprintf "%s>=%g" (measure_name measure) v

let passes bound v =
  Float.is_finite v
  && match bound with Le limit -> v <= limit | Ge limit -> v >= limit

type result = {
  seed : int;
  plan : Plan.t;
  n : int;
  order : int;
  summaries : (measure * Stats.summary) list;
  spec_yields : (spec * float) list;
  yield : float option;
}

let default_measures = [ Dc_gain; Dominant_pole_hz; Delay_50 ]

let eval_point nm moments rom_of = function
  | Moment k -> if k < nm then moments.(k) else nan
  | Elmore_delay -> Measures.elmore_delay moments
  | m -> (
    match rom_of () with
    | None -> nan
    | Some rom -> (
      match m with
      | Dc_gain -> Measures.dc_gain rom
      | Dc_gain_db -> Measures.dc_gain_db rom
      | Dominant_pole_hz -> Measures.dominant_pole_hz rom
      | Unity_gain_frequency ->
        Option.value ~default:nan (Measures.unity_gain_frequency rom)
      | Phase_margin -> Option.value ~default:nan (Measures.phase_margin rom)
      | Delay_50 -> Option.value ~default:nan (Measures.delay_50 rom)
      | Rise_time -> Option.value ~default:nan (Measures.rise_time rom)
      | Moment _ | Elmore_delay -> assert false))

let run ?(seed = 42) ?block ?jobs ?(measures = default_measures) ?(specs = [])
    model plan =
  Obs.Span.with_ ~name:"sweep.run" @@ fun () ->
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> Runtime.default_jobs ()
  in
  let order = Model.order model in
  let nm = 2 * order in
  (* Union the spec measures in so every spec has a summary to report. *)
  let measures =
    List.fold_left
      (fun acc s -> if List.mem s.measure acc then acc else acc @ [ s.measure ])
      measures specs
  in
  List.iter
    (function
      | Moment k when k >= nm ->
        invalid_arg
          (Printf.sprintf "Sweep.run: m%d out of range (model has m0..m%d)" k
             (nm - 1))
      | _ -> ())
    measures;
  let symbols = Array.map Sym.name (Model.symbols model) in
  let nominals = Model.nominal_values model in
  let rng = Obs.Rng.create seed in
  let blk = match block with Some b when b > 0 -> b | _ -> Slp.default_block in
  let cols = Plan.columns ~symbols ~nominals ~rng ~jobs ~block:blk plan in
  let mcols = Slp.eval_batch ?block ~jobs (Model.program model) cols in
  let n = Plan.num_points plan in
  if !Obs.enabled then begin
    Obs.Metrics.incr "sweep.run.count";
    Obs.Metrics.add "sweep.run.points" n
  end;
  let marr = Array.of_list measures in
  let vals = Array.map (fun _ -> Array.make n nan) marr in
  (* The measure finish (Padé fit + extraction) is pure per point and
     writes only column i of each vals row, so chunks fan out across the
     pool; jobs counts cannot change any value. *)
  Runtime.iter_chunks ~jobs ~n ~block:blk
    (fun ~worker:_ (c : Runtime.Chunk.t) ->
      let moments = Array.make nm 0.0 in
      for i = c.lo to c.lo + c.len - 1 do
        for k = 0 to nm - 1 do
          moments.(k) <- mcols.(k).(i)
        done;
        (* The Padé finish is shared by every ROM-based measure at this
           point; a degenerate moment sequence marks all of them NaN. *)
        let rom = ref None in
        let rom_forced = ref false in
        let rom_of () =
          if not !rom_forced then begin
            rom_forced := true;
            rom :=
              (try Some (Awe.Pade.fit ~order moments)
               with Awe.Pade.Degenerate _ -> None)
          end;
          !rom
        in
        Array.iteri
          (fun j m -> vals.(j).(i) <- eval_point nm moments rom_of m)
          marr
      done);
  let summaries =
    Array.to_list (Array.mapi (fun j m -> (m, Stats.summarize vals.(j))) marr)
  in
  let index_of m =
    let rec go j = if marr.(j) = m then j else go (j + 1) in
    go 0
  in
  let spec_yields =
    List.map
      (fun s ->
        (s, Stats.yield ~pass:(passes s.bound) vals.(index_of s.measure)))
      specs
  in
  let yield =
    if specs = [] then None
    else begin
      let ok = ref 0 in
      for i = 0 to n - 1 do
        if
          List.for_all
            (fun s -> passes s.bound vals.(index_of s.measure).(i))
            specs
        then incr ok
      done;
      Some (float_of_int !ok /. float_of_int n)
    end
  in
  { seed; plan; n; order; summaries; spec_yields; yield }

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("schema", Str "awesymbolic-sweep/1");
      ("seed", Num (float_of_int r.seed));
      ("points", Num (float_of_int r.n));
      ("order", Num (float_of_int r.order));
      ("plan", Plan.to_json r.plan);
      ( "measures",
        Obj
          (List.map
             (fun (m, s) -> (measure_name m, Stats.to_json s))
             r.summaries) );
      ( "specs",
        List
          (List.map
             (fun (s, y) ->
               Obj
                 [
                   ("spec", Str (spec_to_string s));
                   ("measure", Str (measure_name s.measure));
                   ( "op",
                     Str (match s.bound with Le _ -> "<=" | Ge _ -> ">=") );
                   ( "limit",
                     Num (match s.bound with Le v | Ge v -> v) );
                   ("yield", Num y);
                 ])
             r.spec_yields) );
      ("yield", match r.yield with Some y -> Num y | None -> Null);
    ]
