module Model = Awesymbolic.Model
module Cache = Awesymbolic.Cache
module Slp = Symbolic.Slp
module Sym = Symbolic.Symbol
module Measures = Awe.Measures
module Err = Awesym_error

type measure =
  | Dc_gain
  | Dc_gain_db
  | Dominant_pole_hz
  | Unity_gain_frequency
  | Phase_margin
  | Delay_50
  | Rise_time
  | Elmore_delay
  | Moment of int

let measure_name = function
  | Dc_gain -> "dc_gain"
  | Dc_gain_db -> "dc_gain_db"
  | Dominant_pole_hz -> "dominant_pole_hz"
  | Unity_gain_frequency -> "unity_gain_frequency"
  | Phase_margin -> "phase_margin"
  | Delay_50 -> "delay_50"
  | Rise_time -> "rise_time"
  | Elmore_delay -> "elmore_delay"
  | Moment k -> Printf.sprintf "m%d" k

let named_measures =
  [
    Dc_gain; Dc_gain_db; Dominant_pole_hz; Unity_gain_frequency;
    Phase_margin; Delay_50; Rise_time; Elmore_delay;
  ]

let measure_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match List.find_opt (fun m -> measure_name m = s) named_measures with
  | Some m -> Ok m
  | None -> (
    let moment =
      if String.length s >= 2 && s.[0] = 'm' then
        int_of_string_opt (String.sub s 1 (String.length s - 1))
      else None
    in
    match moment with
    | Some k when k >= 0 -> Ok (Moment k)
    | _ ->
      Error
        (Printf.sprintf "unknown measure %S (try %s, or m0, m1, ...)" s
           (String.concat ", " (List.map measure_name named_measures))))

type bound = Le of float | Ge of float

type spec = { measure : measure; bound : bound }

let spec_of_string s =
  let split op =
    match String.index_opt s op.[0] with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '='
           && String.length op = 2 ->
      Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
    | _ -> None
  in
  let parse name limit mk =
    match (measure_of_string name, float_of_string_opt (String.trim limit)) with
    | Ok m, Some v -> Ok { measure = m; bound = mk v }
    | (Error _ as e), _ -> e
    | _, None -> Error (Printf.sprintf "bad limit in spec %S" s)
  in
  match (split "<=", split ">=") with
  | Some (name, limit), _ -> parse name limit (fun v -> Le v)
  | None, Some (name, limit) -> parse name limit (fun v -> Ge v)
  | None, None ->
    Error
      (Printf.sprintf "spec %S must look like measure<=limit or measure>=limit"
         s)

let spec_to_string { measure; bound } =
  match bound with
  | Le v -> Printf.sprintf "%s<=%g" (measure_name measure) v
  | Ge v -> Printf.sprintf "%s>=%g" (measure_name measure) v

let passes bound v =
  Float.is_finite v
  && match bound with Le limit -> v <= limit | Ge limit -> v >= limit

(* ------------------------------------------------------------------ *)
(* Degradation policies *)

type policy = Fail_fast | Skip | Retry of int

let policy_name = function
  | Fail_fast -> "fail_fast"
  | Skip -> "skip"
  | Retry k -> Printf.sprintf "retry:%d" k

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fail_fast" | "fail-fast" | "failfast" -> Ok Fail_fast
  | "skip" -> Ok Skip
  | "retry" -> Ok (Retry 2)
  | s -> (
    match String.split_on_char ':' s with
    | [ "retry"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Retry k)
      | _ -> Error (Printf.sprintf "retry attempts must be >= 1 in %S" s))
    | _ ->
      Error
        (Printf.sprintf
           "unknown fault policy %S (try fail_fast, skip, retry, retry:N)" s))

type failed_point = { point : int; attempts : int; error : Err.t }

type result = {
  seed : int;
  plan : Plan.t;
  n : int;
  order : int;
  policy : policy;
  summaries : (measure * Stats.summary) list;
  spec_yields : (spec * float) list;
  yield : float option;
  failed : failed_point list;
}

let survivors r = r.n - List.length r.failed

let default_measures = [ Dc_gain; Dominant_pole_hz; Delay_50 ]

(* Strict per-point measure extraction: [rom_of] raises (rather than
   degrading to NaN) when the Padé finish fails, so the policy layer in
   [run] decides what a degenerate fit means.  A NaN from a {e successful}
   fit (no unity-gain crossing, say) is a legitimate value, not a fault. *)
let eval_measure nm moments rom_of = function
  | Moment k -> if k < nm then moments.(k) else nan
  | Elmore_delay -> Measures.elmore_delay moments
  | m -> (
    let rom = rom_of () in
    match m with
    | Dc_gain -> Measures.dc_gain rom
    | Dc_gain_db -> Measures.dc_gain_db rom
    | Dominant_pole_hz -> Measures.dominant_pole_hz rom
    | Unity_gain_frequency ->
      Option.value ~default:nan (Measures.unity_gain_frequency rom)
    | Phase_margin -> Option.value ~default:nan (Measures.phase_margin rom)
    | Delay_50 -> Option.value ~default:nan (Measures.delay_50 rom)
    | Rise_time -> Option.value ~default:nan (Measures.rise_time rom)
    | Moment _ | Elmore_delay -> assert false)

(* Single-point evaluation with the same finish [eval_chunk] applies:
   compiled moments, fixed-order Padé fit, strict NaN-measure semantics.
   The optimizer routes objective evaluations through this so a sized
   point's measures match what a sweep visiting the same point reports,
   bit for bit. *)
let point_measures model ms v =
  let order = Model.order model in
  let nm = 2 * order in
  let moments = Model.eval_moments model v in
  Array.iteri
    (fun k m ->
      if not (Float.is_finite m) then
        Err.errorf Nonfinite_result ~where:"sweep.point"
          ~context:[ ("moment", Printf.sprintf "m%d" k) ]
          "compiled moment m%d is non-finite (%h)" k m)
    moments;
  let romq = ref None in
  let rom_of () =
    match !romq with
    | Some r -> r
    | None ->
      let r = Awe.Pade.fit ~order moments in
      romq := Some r;
      r
  in
  List.map (eval_measure nm moments rom_of) ms

let moment_measures model ms moments =
  let nm = 2 * Model.order model in
  let romq = ref None in
  let rom_of () =
    match !romq with
    | Some r -> r
    | None ->
      let r = Awe.Pade.fit ~order:(Model.order model) moments in
      romq := Some r;
      r
  in
  List.map (eval_measure nm moments rom_of) ms

(* ------------------------------------------------------------------ *)
(* Checkpoint format (schema awesymbolic-ckpt/1)

   { schema, key, chunks: [ { lo, len,
                              vals: [ [hex-f64 ...] per measure ],
                              failed: [ { point, attempts, error } ] } ] }

   Floats travel as IEEE-754 bit patterns in hex because the JSON layer
   renders non-finite numbers as null; bit patterns also make restore
   trivially bit-exact, which the byte-identical-resume contract needs. *)

let hexbits v = Printf.sprintf "%016Lx" (Int64.bits_of_float v)

let failed_point_json fp =
  let open Obs.Json in
  Obj
    [
      ("point", Num (float_of_int fp.point));
      ("attempts", Num (float_of_int fp.attempts));
      ("error", Err.to_json fp.error);
    ]

let error_of_json j =
  let str k =
    match Obs.Json.member k j with Some (Obs.Json.Str s) -> Some s | _ -> None
  in
  let num k =
    match Obs.Json.member k j with Some (Obs.Json.Num v) -> Some v | _ -> None
  in
  let kind =
    match Option.map Err.kind_of_name (str "kind") with
    | Some (Some k) -> k
    | _ -> Err.Internal
  in
  let context =
    match Obs.Json.member "context" j with
    | Some (Obs.Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match v with Obs.Json.Str s -> Some (k, s) | _ -> None)
        kvs
    | _ -> []
  in
  Err.make kind
    ~where:(Option.value ~default:"?" (str "where"))
    ?file:(str "file")
    ?line:(Option.map int_of_float (num "line"))
    ?condition:(num "condition") ~context
    (Option.value ~default:"" (str "message"))

let ckpt_schema = "awesymbolic-ckpt/1"

(* ------------------------------------------------------------------ *)
(* Preparation: everything the evaluation of any single chunk depends
   on, computed once.  A [prep] built from the same (model, plan, seed,
   block, measures, specs, policy) is bit-identical on every node —
   [Plan.columns] is jobs-invariant by the PR 3 contract — which is what
   lets a remote worker evaluate chunk [i] and produce exactly the bytes
   the coordinator would have produced locally. *)

type prep = {
  p_model : Model.t;
  p_plan : Plan.t;
  p_seed : int;
  p_block : int;
  p_n : int;
  p_order : int;
  p_nm : int;  (* moments per point = 2 * order *)
  p_marr : measure array;  (* requested measures, spec measures unioned in *)
  p_specs : spec list;
  p_policy : policy;
  p_max_attempts : int;
  p_cols : float array array;  (* per-symbol input columns, full grid *)
  p_chunks : Runtime.Chunk.t array;
  p_key : string;  (* checkpoint key: binds all of the above *)
}

let prep_key p = p.p_key
let prep_points p = p.p_n
let prep_num_chunks p = Array.length p.p_chunks
let prep_block p = p.p_block
let prep_measures p = Array.to_list p.p_marr
let prep_specs p = p.p_specs
let prep_inputs p = p.p_cols

let prepare ?(seed = 42) ?block ?jobs ?(measures = default_measures)
    ?(specs = []) ?(policy = Skip) model plan =
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> Runtime.default_jobs ()
  in
  let order = Model.order model in
  let nm = 2 * order in
  (* Union the spec measures in so every spec has a summary to report. *)
  let measures =
    List.fold_left
      (fun acc s -> if List.mem s.measure acc then acc else acc @ [ s.measure ])
      measures specs
  in
  List.iter
    (function
      | Moment k when k >= nm ->
        Err.errorf Invalid_request ~where:"sweep.run"
          "m%d out of range (model has m0..m%d)" k (nm - 1)
      | _ -> ())
    measures;
  (match policy with
  | Retry k when k < 1 ->
    Err.errorf Invalid_request ~where:"sweep.run"
      "retry policy needs at least 1 extra attempt, got %d" k
  | _ -> ());
  let symbols = Array.map Sym.name (Model.symbols model) in
  let nominals = Model.nominal_values model in
  let rng = Obs.Rng.create seed in
  let blk = match block with Some b when b > 0 -> b | _ -> Slp.default_block in
  let cols = Plan.columns ~symbols ~nominals ~rng ~jobs ~block:blk plan in
  let n = Plan.num_points plan in
  (* The checkpoint key binds everything the stored values depend on:
     replaying against a different plan, seed, model shape, or policy must
     be rejected, not silently blended.  (Program size stands in for a
     full model digest — combined with symbols/nominals/order it pins the
     compiled model for any realistic workflow.)  The same key is the
     distributed handshake: a worker that computes a different key from
     the same request refuses the chunk. *)
  let ckpt_key =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            ([
               ckpt_schema;
               Obs.Json.to_string (Plan.to_json plan);
               string_of_int seed;
               string_of_int order;
               string_of_int blk;
               string_of_int n;
               policy_name policy;
               string_of_int (Model.num_operations model);
             ]
            @ List.map measure_name measures
            @ List.map spec_to_string specs
            @ Array.to_list symbols
            @ List.map hexbits (Array.to_list nominals))))
  in
  {
    p_model = model;
    p_plan = plan;
    p_seed = seed;
    p_block = blk;
    p_n = n;
    p_order = order;
    p_nm = nm;
    p_marr = Array.of_list measures;
    p_specs = specs;
    p_policy = policy;
    p_max_attempts = (match policy with Retry k -> 1 + k | _ -> 1);
    p_cols = cols;
    p_chunks = Runtime.Chunk.layout ~n ~block:blk;
    p_key = ckpt_key;
  }

(* ------------------------------------------------------------------ *)
(* Per-chunk evaluation *)

type chunk_result = {
  c_index : int;
  c_lo : int;
  c_len : int;
  c_vals : float array array;  (* nmeas rows of len values *)
  c_failed : failed_point list;  (* global point indices, ascending *)
}

let chunk_index r = r.c_index
let chunk_lo r = r.c_lo
let chunk_len r = r.c_len
let chunk_values r = r.c_vals
let chunk_failures r = List.map (fun f -> f.point) r.c_failed

let eval_chunk p idx =
  if idx < 0 || idx >= Array.length p.p_chunks then
    Err.errorf Invalid_request ~where:"sweep.chunk"
      "chunk %d out of range (layout has %d chunks)" idx
      (Array.length p.p_chunks);
  let c = p.p_chunks.(idx) in
  let blk = p.p_block and nm = p.p_nm and order = p.p_order in
  let marr = p.p_marr and policy = p.p_policy in
  let max_attempts = p.p_max_attempts in
  let nmeas = Array.length marr in
  let vals = Array.init nmeas (fun _ -> Array.make c.len nan) in
  let failed_arr : failed_point option array = Array.make c.len None in
  let prog = Model.program p.p_model in
  let sub = Array.map (fun col -> Array.sub col c.lo c.len) p.p_cols in
  (* Chunk stage: batched moment evaluation.  A fault here (injected
     worker crash, injected kernel fault) is retried chunk-wise under
     Retry; a permanent one quarantines the whole chunk under Skip. *)
  let mcols =
    let rec go attempt =
      match
        Runtime.Fault.cut "pool.worker" ~key:c.lo ~attempt;
        Slp.eval_batch ~block:blk ~jobs:1 prog sub
      with
      | m ->
        if attempt > 0 then Obs.Metrics.incr "sweep.fault.recovered";
        Ok m
      | exception e ->
        let err = Err.classify e in
        Obs.Metrics.incr "sweep.fault.seen";
        if attempt + 1 < max_attempts then begin
          Obs.Metrics.incr "sweep.fault.retried";
          go (attempt + 1)
        end
        else Error (err, attempt + 1)
    in
    go 0
  in
  (match mcols with
  | Error (err, attempts) -> (
    match policy with
    | Fail_fast -> raise (Err.Error err)
    | Skip | Retry _ ->
      Obs.Metrics.add "sweep.fault.quarantined" c.len;
      for li = 0 to c.len - 1 do
        let i = c.lo + li in
        failed_arr.(li) <-
          Some
            {
              point = i;
              attempts;
              error =
                {
                  err with
                  Err.context = ("point", string_of_int i) :: err.Err.context;
                };
            }
      done)
  | Ok mcols ->
    (* Point stage: measure finish with per-point isolation. *)
    let moments = Array.make nm 0.0 in
    for li = 0 to c.len - 1 do
      let i = c.lo + li in
      let eval_once attempt =
        Runtime.Fault.cut "sweep.point" ~key:i ~attempt;
        for k = 0 to nm - 1 do
          moments.(k) <- mcols.(k).(li)
        done;
        for k = 0 to nm - 1 do
          if not (Float.is_finite moments.(k)) then
            Err.errorf Nonfinite_result ~where:"sweep.point"
              ~context:
                [
                  ("point", string_of_int i);
                  ("moment", Printf.sprintf "m%d" k);
                ]
              "compiled moment m%d is non-finite (%h) at point %d" k
              moments.(k) i
        done;
        let romq = ref None in
        let rom_of () =
          match !romq with
          | Some r -> r
          | None ->
            let r =
              match Awe.Pade.fit ~order moments with
              | rom -> rom
              | exception (Awe.Pade.Degenerate _ as e) -> (
                match policy with
                | Retry _ ->
                  (* Order-reduction fallback: an unstable or
                     degenerate fit at q often fits fine at q-1
                     (fewer spurious poles chasing noise moments). *)
                  let rec down q =
                    if q < 1 then raise e
                    else
                      match Awe.Pade.fit ~order:q moments with
                      | rom ->
                        Obs.Metrics.incr "sweep.fault.order_reduced";
                        rom
                      | exception Awe.Pade.Degenerate _ -> down (q - 1)
                  in
                  down (order - 1)
                | Fail_fast | Skip -> raise e)
            in
            romq := Some r;
            r
        in
        Array.map (fun m -> eval_measure nm moments rom_of m) marr
      in
      let rec point_try attempt =
        match eval_once attempt with
        | row ->
          if attempt > 0 then Obs.Metrics.incr "sweep.fault.recovered";
          Ok row
        | exception e ->
          let err = Err.classify e in
          Obs.Metrics.incr "sweep.fault.seen";
          (* A non-finite moment is a pure function of the inputs:
             re-running cannot change it, so don't burn attempts. *)
          let retryable = err.Err.kind <> Err.Nonfinite_result in
          if retryable && attempt + 1 < max_attempts then begin
            Obs.Metrics.incr "sweep.fault.retried";
            point_try (attempt + 1)
          end
          else Error (err, attempt + 1)
      in
      match point_try 0 with
      | Ok row -> Array.iteri (fun j v -> vals.(j).(li) <- v) row
      | Error (err, attempts) -> (
        match policy with
        | Fail_fast -> raise (Err.Error err)
        | Skip | Retry _ ->
          Obs.Metrics.incr "sweep.fault.quarantined";
          failed_arr.(li) <- Some { point = i; attempts; error = err })
    done);
  let failed =
    Array.to_list failed_arr |> List.filter_map (fun fp -> fp)
  in
  { c_index = idx; c_lo = c.lo; c_len = c.len; c_vals = vals;
    c_failed = failed }

(* ------------------------------------------------------------------ *)
(* Chunk records: the checkpoint on-disk shape, also the wire shape of
   a remotely evaluated chunk.  [chunk_result_of_json] validates against
   the prep's layout, so a record from an untrusted peer (or a stale
   file) cannot scribble outside its chunk. *)

let chunk_result_to_json r =
  let open Obs.Json in
  let vals_json =
    List
      (Array.to_list
         (Array.map
            (fun row ->
              List (List.init r.c_len (fun li -> Str (hexbits row.(li)))))
            r.c_vals))
  in
  Obj
    [
      ("lo", Num (float_of_int r.c_lo));
      ("len", Num (float_of_int r.c_len));
      ("vals", vals_json);
      ("failed", List (List.map failed_point_json r.c_failed));
    ]

let chunk_result_of_json ?file p record =
  let bad fmt =
    Printf.ksprintf
      (fun msg ->
        Err.raise_error Artifact_corrupt ~where:"sweep.checkpoint" ?file msg)
      fmt
  in
  let geti k =
    match Obs.Json.member k record with
    | Some (Obs.Json.Num v) -> int_of_float v
    | _ -> bad "chunk record missing %s" k
  in
  let lo = geti "lo" in
  let len = geti "len" in
  let n = p.p_n and blk = p.p_block in
  let nmeas = Array.length p.p_marr in
  if lo < 0 || len < 1 || lo + len > n || lo mod blk <> 0 then
    bad "chunk [%d, +%d) does not fit the %d-point grid" lo len n;
  let idx = lo / blk in
  if p.p_chunks.(idx).lo <> lo || p.p_chunks.(idx).len <> len then
    bad "chunk [%d, +%d) disagrees with the block-%d layout" lo len blk;
  let vals = Array.init nmeas (fun _ -> Array.make len nan) in
  (match Obs.Json.member "vals" record with
  | Some (Obs.Json.List rows) ->
    if List.length rows <> nmeas then
      bad "chunk at %d has %d measure rows, expected %d" lo (List.length rows)
        nmeas;
    List.iteri
      (fun j row ->
        match row with
        | Obs.Json.List cells when List.length cells = len ->
          List.iteri
            (fun li cell ->
              match cell with
              | Obs.Json.Str hex -> (
                match Int64.of_string_opt ("0x" ^ hex) with
                | Some bits -> vals.(j).(li) <- Int64.float_of_bits bits
                | None -> bad "bad float bits %S at %d" hex (lo + li))
              | _ -> bad "non-hex value cell at %d" (lo + li))
            cells
        | _ -> bad "malformed measure row %d of chunk at %d" j lo)
      rows
  | _ -> bad "chunk at %d has no vals" lo);
  let failed =
    match Obs.Json.member "failed" record with
    | Some (Obs.Json.List fps) ->
      List.map
        (fun fj ->
          let fgeti k =
            match Obs.Json.member k fj with
            | Some (Obs.Json.Num v) -> int_of_float v
            | _ -> bad "failed-point record missing %s in chunk at %d" k lo
          in
          let point = fgeti "point" in
          if point < lo || point >= lo + len then
            bad "failed point %d outside its chunk [%d, +%d)" point lo len;
          let error =
            match Obs.Json.member "error" fj with
            | Some ej -> error_of_json ej
            | None -> bad "failed point %d has no error" point
          in
          { point; attempts = fgeti "attempts"; error })
        fps
    | _ -> bad "chunk at %d has no failed list" lo
  in
  { c_index = idx; c_lo = lo; c_len = len; c_vals = vals; c_failed = failed }

(* ------------------------------------------------------------------ *)
(* Checkpointing: one writer per run, shared by however many domains
   (or remote-result merges) complete chunks.  The file is rewritten
   whole — records sorted by chunk index — so its bytes are a pure
   function of the completed-chunk set, whatever order completions
   arrived in. *)

module Checkpoint = struct
  type writer = {
    w_path : string;
    w_key : string;
    w_points : int;
    w_every : int;
    w_mutex : Mutex.t;
    w_records : (int, Obs.Json.t) Hashtbl.t;
    mutable w_since : int;
  }

  let writer p ~path ~every =
    if every < 1 then invalid_arg "Sweep.Checkpoint.writer: every must be >= 1";
    {
      w_path = path;
      w_key = p.p_key;
      w_points = p.p_n;
      w_every = every;
      w_mutex = Mutex.create ();
      w_records = Hashtbl.create 64;
      w_since = 0;
    }

  (* Called with [w_mutex] held. *)
  let write_locked w =
    let recs =
      Hashtbl.fold (fun idx _ acc -> idx :: acc) w.w_records []
      |> List.sort compare
      |> List.map (fun idx -> Hashtbl.find w.w_records idx)
    in
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.Str ckpt_schema);
          ("key", Obs.Json.Str w.w_key);
          ("points", Obs.Json.Num (float_of_int w.w_points));
          ("chunks", Obs.Json.List recs);
        ]
    in
    let dir = Filename.dirname w.w_path in
    if dir <> "." && not (Sys.file_exists dir) then Cache.ensure_dir dir;
    Cache.atomic_write w.w_path (fun tmp ->
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (Obs.Json.to_string doc)))

  let add ?(written = true) w r =
    Mutex.lock w.w_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock w.w_mutex)
      (fun () ->
        Hashtbl.replace w.w_records r.c_index (chunk_result_to_json r);
        if written then begin
          Obs.Metrics.incr "sweep.checkpoint.chunks_written";
          w.w_since <- w.w_since + 1;
          if w.w_since >= w.w_every then begin
            w.w_since <- 0;
            write_locked w
          end
        end)

  let flush w =
    Mutex.lock w.w_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock w.w_mutex)
      (fun () ->
        w.w_since <- 0;
        write_locked w)

  let load p ~path =
    if not (Sys.file_exists path) then []
    else begin
      let data = In_channel.with_open_bin path In_channel.input_all in
      let doc =
        match Obs.Json.of_string data with
        | Ok d -> d
        | Error msg ->
          Err.errorf Artifact_corrupt ~where:"sweep.checkpoint" ~file:path
            "unreadable checkpoint: %s" msg
      in
      (match Obs.Json.member "schema" doc with
      | Some (Obs.Json.Str s) when s = ckpt_schema -> ()
      | _ ->
        Err.errorf Artifact_corrupt ~where:"sweep.checkpoint" ~file:path
          "not a %s file" ckpt_schema);
      (match Obs.Json.member "key" doc with
      | Some (Obs.Json.Str k) when k = p.p_key -> ()
      | _ ->
        Err.errorf Invalid_request ~where:"sweep.checkpoint" ~file:path
          "checkpoint was written by a different sweep (plan, seed, model, \
           block, measures, or policy changed); delete it or drop --resume");
      match Obs.Json.member "chunks" doc with
      | Some (Obs.Json.List recs) ->
        List.map (chunk_result_of_json ~file:path p) recs
      | _ ->
        Err.errorf Artifact_corrupt ~where:"sweep.checkpoint" ~file:path
          "checkpoint has no chunks"
    end
end

(* ------------------------------------------------------------------ *)
(* Merge + statistics: deterministic in the chunk-index order of the
   results array, independent of which domain or node produced each
   chunk. *)

let finish p (results : chunk_result option array) =
  Array.iteri
    (fun i r ->
      if r = None then
        Err.errorf Internal ~where:"sweep.finish"
          "chunk %d was never evaluated" i)
    results;
  let n = p.p_n in
  let marr = p.p_marr in
  let nmeas = Array.length marr in
  let vals = Array.init nmeas (fun _ -> Array.make n nan) in
  let failed_arr : failed_point option array = Array.make n None in
  Array.iter
    (function
      | Some r ->
        for j = 0 to nmeas - 1 do
          Array.blit r.c_vals.(j) 0 vals.(j) r.c_lo r.c_len
        done;
        List.iter (fun fp -> failed_arr.(fp.point) <- Some fp) r.c_failed
      | None -> ())
    results;
  let failed = Array.to_list failed_arr |> List.filter_map (fun fp -> fp) in
  let n_failed = List.length failed in
  let n_survive = n - n_failed in
  if n_survive = 0 && n > 0 then begin
    let first = List.hd failed in
    raise
      (Err.Error
         {
           first.error with
           Err.message =
             Printf.sprintf
               "every point of the %d-point sweep failed; first error: %s" n
               first.error.Err.message;
         })
  end;
  let filter row =
    if n_failed = 0 then row
    else begin
      let out = Array.make n_survive nan in
      let w = ref 0 in
      for i = 0 to n - 1 do
        if failed_arr.(i) = None then begin
          out.(!w) <- row.(i);
          incr w
        end
      done;
      out
    end
  in
  let fvals = Array.map filter vals in
  let summaries =
    Array.to_list (Array.mapi (fun j m -> (m, Stats.summarize fvals.(j))) marr)
  in
  let index_of m =
    let rec go j = if marr.(j) = m then j else go (j + 1) in
    go 0
  in
  let specs = p.p_specs in
  let spec_yields =
    List.map
      (fun s ->
        (s, Stats.yield ~pass:(passes s.bound) fvals.(index_of s.measure)))
      specs
  in
  let yield =
    if specs = [] then None
    else begin
      let ok = ref 0 in
      for i = 0 to n_survive - 1 do
        if
          List.for_all
            (fun s -> passes s.bound fvals.(index_of s.measure).(i))
            specs
        then incr ok
      done;
      Some (float_of_int !ok /. float_of_int n_survive)
    end
  in
  {
    seed = p.p_seed;
    plan = p.p_plan;
    n;
    order = p.p_order;
    policy = p.p_policy;
    summaries;
    spec_yields;
    yield;
    failed;
  }

(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?block ?jobs ?measures ?specs ?policy ?checkpoint
    ?(resume = false) ?(checkpoint_every = 1) model plan =
  Obs.Span.with_ ~name:"sweep.run" @@ fun () ->
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> Runtime.default_jobs ()
  in
  if checkpoint_every < 1 then
    invalid_arg "Sweep.run: checkpoint_every must be >= 1";
  let p = prepare ~seed ?block ~jobs ?measures ?specs ?policy model plan in
  if !Obs.enabled then begin
    Obs.Metrics.incr "sweep.run.count";
    Obs.Metrics.add "sweep.run.points" p.p_n
  end;
  let results : chunk_result option array =
    Array.make (Array.length p.p_chunks) None
  in
  let writer =
    Option.map
      (fun path -> Checkpoint.writer p ~path ~every:checkpoint_every)
      checkpoint
  in
  (* ---- resume: restore completed chunks bit-exactly ---- *)
  (match (checkpoint, writer) with
  | Some path, Some w when resume ->
    List.iter
      (fun r ->
        results.(r.c_index) <- Some r;
        Checkpoint.add ~written:false w r;
        Obs.Metrics.incr "sweep.checkpoint.chunks_resumed")
      (Checkpoint.load p ~path)
  | _ -> ());
  (* ---- evaluate the remaining chunks ---- *)
  Runtime.iter_chunks ~jobs ~n:p.p_n ~block:p.p_block
    (fun ~worker:_ (c : Runtime.Chunk.t) ->
      if results.(c.index) = None then begin
        let r = eval_chunk p c.index in
        results.(c.index) <- Some r;
        match writer with Some w -> Checkpoint.add w r | None -> ()
      end);
  (* Final checkpoint write: the on-disk state reflects the finished run
     whatever checkpoint_every was. *)
  (match writer with Some w -> Checkpoint.flush w | None -> ());
  finish p results

let schema = "awesymbolic-sweep/2"

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("schema", Str schema);
      ("seed", Num (float_of_int r.seed));
      ("points", Num (float_of_int r.n));
      ("survivors", Num (float_of_int (survivors r)));
      ("order", Num (float_of_int r.order));
      ("policy", Str (policy_name r.policy));
      ("plan", Plan.to_json r.plan);
      ( "measures",
        Obj
          (List.map
             (fun (m, s) -> (measure_name m, Stats.to_json s))
             r.summaries) );
      ( "specs",
        List
          (List.map
             (fun (s, y) ->
               Obj
                 [
                   ("spec", Str (spec_to_string s));
                   ("measure", Str (measure_name s.measure));
                   ( "op",
                     Str (match s.bound with Le _ -> "<=" | Ge _ -> ">=") );
                   ( "limit",
                     Num (match s.bound with Le v | Ge v -> v) );
                   ("yield", Num y);
                 ])
             r.spec_yields) );
      ("yield", match r.yield with Some y -> Num y | None -> Null);
      ("failed_points", List (List.map failed_point_json r.failed));
    ]
