module Model = Awesymbolic.Model
module Cache = Awesymbolic.Cache
module Slp = Symbolic.Slp
module Sym = Symbolic.Symbol
module Measures = Awe.Measures
module Err = Awesym_error

type measure =
  | Dc_gain
  | Dc_gain_db
  | Dominant_pole_hz
  | Unity_gain_frequency
  | Phase_margin
  | Delay_50
  | Rise_time
  | Elmore_delay
  | Moment of int

let measure_name = function
  | Dc_gain -> "dc_gain"
  | Dc_gain_db -> "dc_gain_db"
  | Dominant_pole_hz -> "dominant_pole_hz"
  | Unity_gain_frequency -> "unity_gain_frequency"
  | Phase_margin -> "phase_margin"
  | Delay_50 -> "delay_50"
  | Rise_time -> "rise_time"
  | Elmore_delay -> "elmore_delay"
  | Moment k -> Printf.sprintf "m%d" k

let named_measures =
  [
    Dc_gain; Dc_gain_db; Dominant_pole_hz; Unity_gain_frequency;
    Phase_margin; Delay_50; Rise_time; Elmore_delay;
  ]

let measure_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match List.find_opt (fun m -> measure_name m = s) named_measures with
  | Some m -> Ok m
  | None -> (
    let moment =
      if String.length s >= 2 && s.[0] = 'm' then
        int_of_string_opt (String.sub s 1 (String.length s - 1))
      else None
    in
    match moment with
    | Some k when k >= 0 -> Ok (Moment k)
    | _ ->
      Error
        (Printf.sprintf "unknown measure %S (try %s, or m0, m1, ...)" s
           (String.concat ", " (List.map measure_name named_measures))))

type bound = Le of float | Ge of float

type spec = { measure : measure; bound : bound }

let spec_of_string s =
  let split op =
    match String.index_opt s op.[0] with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '='
           && String.length op = 2 ->
      Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
    | _ -> None
  in
  let parse name limit mk =
    match (measure_of_string name, float_of_string_opt (String.trim limit)) with
    | Ok m, Some v -> Ok { measure = m; bound = mk v }
    | (Error _ as e), _ -> e
    | _, None -> Error (Printf.sprintf "bad limit in spec %S" s)
  in
  match (split "<=", split ">=") with
  | Some (name, limit), _ -> parse name limit (fun v -> Le v)
  | None, Some (name, limit) -> parse name limit (fun v -> Ge v)
  | None, None ->
    Error
      (Printf.sprintf "spec %S must look like measure<=limit or measure>=limit"
         s)

let spec_to_string { measure; bound } =
  match bound with
  | Le v -> Printf.sprintf "%s<=%g" (measure_name measure) v
  | Ge v -> Printf.sprintf "%s>=%g" (measure_name measure) v

let passes bound v =
  Float.is_finite v
  && match bound with Le limit -> v <= limit | Ge limit -> v >= limit

(* ------------------------------------------------------------------ *)
(* Degradation policies *)

type policy = Fail_fast | Skip | Retry of int

let policy_name = function
  | Fail_fast -> "fail_fast"
  | Skip -> "skip"
  | Retry k -> Printf.sprintf "retry:%d" k

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fail_fast" | "fail-fast" | "failfast" -> Ok Fail_fast
  | "skip" -> Ok Skip
  | "retry" -> Ok (Retry 2)
  | s -> (
    match String.split_on_char ':' s with
    | [ "retry"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Retry k)
      | _ -> Error (Printf.sprintf "retry attempts must be >= 1 in %S" s))
    | _ ->
      Error
        (Printf.sprintf
           "unknown fault policy %S (try fail_fast, skip, retry, retry:N)" s))

type failed_point = { point : int; attempts : int; error : Err.t }

type result = {
  seed : int;
  plan : Plan.t;
  n : int;
  order : int;
  policy : policy;
  summaries : (measure * Stats.summary) list;
  spec_yields : (spec * float) list;
  yield : float option;
  failed : failed_point list;
}

let survivors r = r.n - List.length r.failed

let default_measures = [ Dc_gain; Dominant_pole_hz; Delay_50 ]

(* Strict per-point measure extraction: [rom_of] raises (rather than
   degrading to NaN) when the Padé finish fails, so the policy layer in
   [run] decides what a degenerate fit means.  A NaN from a {e successful}
   fit (no unity-gain crossing, say) is a legitimate value, not a fault. *)
let eval_measure nm moments rom_of = function
  | Moment k -> if k < nm then moments.(k) else nan
  | Elmore_delay -> Measures.elmore_delay moments
  | m -> (
    let rom = rom_of () in
    match m with
    | Dc_gain -> Measures.dc_gain rom
    | Dc_gain_db -> Measures.dc_gain_db rom
    | Dominant_pole_hz -> Measures.dominant_pole_hz rom
    | Unity_gain_frequency ->
      Option.value ~default:nan (Measures.unity_gain_frequency rom)
    | Phase_margin -> Option.value ~default:nan (Measures.phase_margin rom)
    | Delay_50 -> Option.value ~default:nan (Measures.delay_50 rom)
    | Rise_time -> Option.value ~default:nan (Measures.rise_time rom)
    | Moment _ | Elmore_delay -> assert false)

(* ------------------------------------------------------------------ *)
(* Checkpoint format (schema awesymbolic-ckpt/1)

   { schema, key, chunks: [ { lo, len,
                              vals: [ [hex-f64 ...] per measure ],
                              failed: [ { point, attempts, error } ] } ] }

   Floats travel as IEEE-754 bit patterns in hex because the JSON layer
   renders non-finite numbers as null; bit patterns also make restore
   trivially bit-exact, which the byte-identical-resume contract needs. *)

let hexbits v = Printf.sprintf "%016Lx" (Int64.bits_of_float v)

let failed_point_json fp =
  let open Obs.Json in
  Obj
    [
      ("point", Num (float_of_int fp.point));
      ("attempts", Num (float_of_int fp.attempts));
      ("error", Err.to_json fp.error);
    ]

let error_of_json j =
  let str k =
    match Obs.Json.member k j with Some (Obs.Json.Str s) -> Some s | _ -> None
  in
  let num k =
    match Obs.Json.member k j with Some (Obs.Json.Num v) -> Some v | _ -> None
  in
  let kind =
    match Option.map Err.kind_of_name (str "kind") with
    | Some (Some k) -> k
    | _ -> Err.Internal
  in
  let context =
    match Obs.Json.member "context" j with
    | Some (Obs.Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match v with Obs.Json.Str s -> Some (k, s) | _ -> None)
        kvs
    | _ -> []
  in
  Err.make kind
    ~where:(Option.value ~default:"?" (str "where"))
    ?file:(str "file")
    ?line:(Option.map int_of_float (num "line"))
    ?condition:(num "condition") ~context
    (Option.value ~default:"" (str "message"))

let ckpt_schema = "awesymbolic-ckpt/1"

(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?block ?jobs ?(measures = default_measures) ?(specs = [])
    ?(policy = Skip) ?checkpoint ?(resume = false) ?(checkpoint_every = 1)
    model plan =
  Obs.Span.with_ ~name:"sweep.run" @@ fun () ->
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> Runtime.default_jobs ()
  in
  let order = Model.order model in
  let nm = 2 * order in
  (* Union the spec measures in so every spec has a summary to report. *)
  let measures =
    List.fold_left
      (fun acc s -> if List.mem s.measure acc then acc else acc @ [ s.measure ])
      measures specs
  in
  List.iter
    (function
      | Moment k when k >= nm ->
        Err.errorf Invalid_request ~where:"sweep.run"
          "m%d out of range (model has m0..m%d)" k (nm - 1)
      | _ -> ())
    measures;
  (match policy with
  | Retry k when k < 1 ->
    Err.errorf Invalid_request ~where:"sweep.run"
      "retry policy needs at least 1 extra attempt, got %d" k
  | _ -> ());
  if checkpoint_every < 1 then
    invalid_arg "Sweep.run: checkpoint_every must be >= 1";
  let symbols = Array.map Sym.name (Model.symbols model) in
  let nominals = Model.nominal_values model in
  let rng = Obs.Rng.create seed in
  let blk = match block with Some b when b > 0 -> b | _ -> Slp.default_block in
  let cols = Plan.columns ~symbols ~nominals ~rng ~jobs ~block:blk plan in
  let n = Plan.num_points plan in
  if !Obs.enabled then begin
    Obs.Metrics.incr "sweep.run.count";
    Obs.Metrics.add "sweep.run.points" n
  end;
  let marr = Array.of_list measures in
  let nmeas = Array.length marr in
  let vals = Array.map (fun _ -> Array.make n nan) marr in
  let failed_arr : failed_point option array = Array.make n None in
  let chunks = Runtime.Chunk.layout ~n ~block:blk in
  let done_chunks = Array.make (Array.length chunks) false in
  let max_attempts = match policy with Retry k -> 1 + k | _ -> 1 in
  (* The checkpoint key binds everything the stored values depend on:
     replaying against a different plan, seed, model shape, or policy must
     be rejected, not silently blended.  (Program size stands in for a
     full model digest — combined with symbols/nominals/order it pins the
     compiled model for any realistic workflow.) *)
  let ckpt_key =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            ([
               ckpt_schema;
               Obs.Json.to_string (Plan.to_json plan);
               string_of_int seed;
               string_of_int order;
               string_of_int blk;
               string_of_int n;
               policy_name policy;
               string_of_int (Model.num_operations model);
             ]
            @ List.map measure_name measures
            @ List.map spec_to_string specs
            @ Array.to_list symbols
            @ List.map hexbits (Array.to_list nominals))))
  in
  let ckpt_mutex = Mutex.create () in
  let ckpt_records : (int, Obs.Json.t) Hashtbl.t = Hashtbl.create 64 in
  let since_write = ref 0 in
  let write_checkpoint path =
    (* Called with [ckpt_mutex] held.  Records are sorted by chunk index
       so the final file is deterministic for every jobs count. *)
    let recs =
      Hashtbl.fold (fun idx _ acc -> idx :: acc) ckpt_records []
      |> List.sort compare
      |> List.map (fun idx -> Hashtbl.find ckpt_records idx)
    in
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.Str ckpt_schema);
          ("key", Obs.Json.Str ckpt_key);
          ("points", Obs.Json.Num (float_of_int n));
          ("chunks", Obs.Json.List recs);
        ]
    in
    let dir = Filename.dirname path in
    if dir <> "." && not (Sys.file_exists dir) then Cache.ensure_dir dir;
    Cache.atomic_write path (fun tmp ->
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (Obs.Json.to_string doc)))
  in
  let chunk_record (c : Runtime.Chunk.t) =
    let open Obs.Json in
    let vals_json =
      List
        (Array.to_list
           (Array.map
              (fun row ->
                List (List.init c.len (fun li -> Str (hexbits row.(c.lo + li)))))
              vals))
    in
    let failed_json =
      let fs = ref [] in
      for li = c.len - 1 downto 0 do
        match failed_arr.(c.lo + li) with
        | Some fp -> fs := failed_point_json fp :: !fs
        | None -> ()
      done;
      List !fs
    in
    Obj
      [
        ("lo", Num (float_of_int c.lo));
        ("len", Num (float_of_int c.len));
        ("vals", vals_json);
        ("failed", failed_json);
      ]
  in
  let record_done (c : Runtime.Chunk.t) =
    match checkpoint with
    | None -> ()
    | Some path ->
      let record = chunk_record c in
      Mutex.lock ckpt_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock ckpt_mutex)
        (fun () ->
          Hashtbl.replace ckpt_records c.index record;
          Obs.Metrics.incr "sweep.checkpoint.chunks_written";
          incr since_write;
          if !since_write >= checkpoint_every then begin
            since_write := 0;
            write_checkpoint path
          end)
  in
  (* ---- resume: restore completed chunks bit-exactly ---- *)
  let restore_chunk ~path record =
    let bad fmt =
      Printf.ksprintf
        (fun msg ->
          Err.raise_error Artifact_corrupt ~where:"sweep.checkpoint"
            ~file:path msg)
        fmt
    in
    let geti k =
      match Obs.Json.member k record with
      | Some (Obs.Json.Num v) -> int_of_float v
      | _ -> bad "chunk record missing %s" k
    in
    let lo = geti "lo" in
    let len = geti "len" in
    if lo < 0 || len < 1 || lo + len > n || lo mod blk <> 0 then
      bad "chunk [%d, +%d) does not fit the %d-point grid" lo len n;
    let idx = lo / blk in
    if chunks.(idx).lo <> lo || chunks.(idx).len <> len then
      bad "chunk [%d, +%d) disagrees with the block-%d layout" lo len blk;
    (match Obs.Json.member "vals" record with
    | Some (Obs.Json.List rows) ->
      if List.length rows <> nmeas then
        bad "chunk at %d has %d measure rows, expected %d" lo
          (List.length rows) nmeas;
      List.iteri
        (fun j row ->
          match row with
          | Obs.Json.List cells when List.length cells = len ->
            List.iteri
              (fun li cell ->
                match cell with
                | Obs.Json.Str hex -> (
                  match Int64.of_string_opt ("0x" ^ hex) with
                  | Some bits -> vals.(j).(lo + li) <- Int64.float_of_bits bits
                  | None -> bad "bad float bits %S at %d" hex (lo + li))
                | _ -> bad "non-hex value cell at %d" (lo + li))
              cells
          | _ -> bad "malformed measure row %d of chunk at %d" j lo)
        rows
    | _ -> bad "chunk at %d has no vals" lo);
    (match Obs.Json.member "failed" record with
    | Some (Obs.Json.List fps) ->
      List.iter
        (fun fj ->
          let fgeti k =
            match Obs.Json.member k fj with
            | Some (Obs.Json.Num v) -> int_of_float v
            | _ -> bad "failed-point record missing %s in chunk at %d" k lo
          in
          let point = fgeti "point" in
          if point < lo || point >= lo + len then
            bad "failed point %d outside its chunk [%d, +%d)" point lo len;
          let error =
            match Obs.Json.member "error" fj with
            | Some ej -> error_of_json ej
            | None -> bad "failed point %d has no error" point
          in
          failed_arr.(point) <- Some { point; attempts = fgeti "attempts"; error })
        fps
    | _ -> bad "chunk at %d has no failed list" lo);
    done_chunks.(idx) <- true;
    Hashtbl.replace ckpt_records idx record;
    Obs.Metrics.incr "sweep.checkpoint.chunks_resumed"
  in
  (match checkpoint with
  | Some path when resume && Sys.file_exists path -> (
    let data = In_channel.with_open_bin path In_channel.input_all in
    let doc =
      match Obs.Json.of_string data with
      | Ok d -> d
      | Error msg ->
        Err.errorf Artifact_corrupt ~where:"sweep.checkpoint" ~file:path
          "unreadable checkpoint: %s" msg
    in
    (match Obs.Json.member "schema" doc with
    | Some (Obs.Json.Str s) when s = ckpt_schema -> ()
    | _ ->
      Err.errorf Artifact_corrupt ~where:"sweep.checkpoint" ~file:path
        "not a %s file" ckpt_schema);
    (match Obs.Json.member "key" doc with
    | Some (Obs.Json.Str k) when k = ckpt_key -> ()
    | _ ->
      Err.errorf Invalid_request ~where:"sweep.checkpoint" ~file:path
        "checkpoint was written by a different sweep (plan, seed, model, \
         block, measures, or policy changed); delete it or drop --resume");
    match Obs.Json.member "chunks" doc with
    | Some (Obs.Json.List recs) -> List.iter (restore_chunk ~path) recs
    | _ ->
      Err.errorf Artifact_corrupt ~where:"sweep.checkpoint" ~file:path
        "checkpoint has no chunks")
  | _ -> ());
  (* ---- evaluate the remaining chunks ---- *)
  let prog = Model.program model in
  let process_chunk ~worker:_ (c : Runtime.Chunk.t) =
    if not done_chunks.(c.index) then begin
      let sub = Array.map (fun col -> Array.sub col c.lo c.len) cols in
      (* Chunk stage: batched moment evaluation.  A fault here (injected
         worker crash, injected kernel fault) is retried chunk-wise under
         Retry; a permanent one quarantines the whole chunk under Skip. *)
      let mcols =
        let rec go attempt =
          match
            Runtime.Fault.cut "pool.worker" ~key:c.lo ~attempt;
            Slp.eval_batch ~block:blk ~jobs:1 prog sub
          with
          | m ->
            if attempt > 0 then Obs.Metrics.incr "sweep.fault.recovered";
            Ok m
          | exception e ->
            let err = Err.classify e in
            Obs.Metrics.incr "sweep.fault.seen";
            if attempt + 1 < max_attempts then begin
              Obs.Metrics.incr "sweep.fault.retried";
              go (attempt + 1)
            end
            else Error (err, attempt + 1)
        in
        go 0
      in
      (match mcols with
      | Error (err, attempts) -> (
        match policy with
        | Fail_fast -> raise (Err.Error err)
        | Skip | Retry _ ->
          Obs.Metrics.add "sweep.fault.quarantined" c.len;
          for li = 0 to c.len - 1 do
            let i = c.lo + li in
            failed_arr.(i) <-
              Some
                {
                  point = i;
                  attempts;
                  error =
                    {
                      err with
                      Err.context =
                        ("point", string_of_int i) :: err.Err.context;
                    };
                }
          done)
      | Ok mcols ->
        (* Point stage: measure finish with per-point isolation. *)
        let moments = Array.make nm 0.0 in
        for li = 0 to c.len - 1 do
          let i = c.lo + li in
          let eval_once attempt =
            Runtime.Fault.cut "sweep.point" ~key:i ~attempt;
            for k = 0 to nm - 1 do
              moments.(k) <- mcols.(k).(li)
            done;
            for k = 0 to nm - 1 do
              if not (Float.is_finite moments.(k)) then
                Err.errorf Nonfinite_result ~where:"sweep.point"
                  ~context:
                    [
                      ("point", string_of_int i);
                      ("moment", Printf.sprintf "m%d" k);
                    ]
                  "compiled moment m%d is non-finite (%h) at point %d" k
                  moments.(k) i
            done;
            let romq = ref None in
            let rom_of () =
              match !romq with
              | Some r -> r
              | None ->
                let r =
                  match Awe.Pade.fit ~order moments with
                  | rom -> rom
                  | exception (Awe.Pade.Degenerate _ as e) -> (
                    match policy with
                    | Retry _ ->
                      (* Order-reduction fallback: an unstable or
                         degenerate fit at q often fits fine at q-1
                         (fewer spurious poles chasing noise moments). *)
                      let rec down q =
                        if q < 1 then raise e
                        else
                          match Awe.Pade.fit ~order:q moments with
                          | rom ->
                            Obs.Metrics.incr "sweep.fault.order_reduced";
                            rom
                          | exception Awe.Pade.Degenerate _ -> down (q - 1)
                      in
                      down (order - 1)
                    | Fail_fast | Skip -> raise e)
                in
                romq := Some r;
                r
            in
            Array.map (fun m -> eval_measure nm moments rom_of m) marr
          in
          let rec point_try attempt =
            match eval_once attempt with
            | row ->
              if attempt > 0 then Obs.Metrics.incr "sweep.fault.recovered";
              Ok row
            | exception e ->
              let err = Err.classify e in
              Obs.Metrics.incr "sweep.fault.seen";
              (* A non-finite moment is a pure function of the inputs:
                 re-running cannot change it, so don't burn attempts. *)
              let retryable = err.Err.kind <> Err.Nonfinite_result in
              if retryable && attempt + 1 < max_attempts then begin
                Obs.Metrics.incr "sweep.fault.retried";
                point_try (attempt + 1)
              end
              else Error (err, attempt + 1)
          in
          match point_try 0 with
          | Ok row ->
            Array.iteri (fun j v -> vals.(j).(i) <- v) row
          | Error (err, attempts) -> (
            match policy with
            | Fail_fast -> raise (Err.Error err)
            | Skip | Retry _ ->
              Obs.Metrics.incr "sweep.fault.quarantined";
              failed_arr.(i) <- Some { point = i; attempts; error = err })
        done);
      record_done c
    end
  in
  Runtime.iter_chunks ~jobs ~n ~block:blk process_chunk;
  (* Final checkpoint write: the on-disk state reflects the finished run
     whatever checkpoint_every was. *)
  (match checkpoint with
  | Some path ->
    Mutex.lock ckpt_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock ckpt_mutex)
      (fun () ->
        since_write := 0;
        write_checkpoint path)
  | None -> ());
  (* ---- statistics over surviving points ---- *)
  let failed =
    Array.to_list failed_arr |> List.filter_map (fun fp -> fp)
  in
  let n_failed = List.length failed in
  let n_survive = n - n_failed in
  if n_survive = 0 && n > 0 then begin
    let first = List.hd failed in
    raise
      (Err.Error
         {
           first.error with
           Err.message =
             Printf.sprintf "every point of the %d-point sweep failed; \
                             first error: %s"
               n first.error.Err.message;
         })
  end;
  let filter row =
    if n_failed = 0 then row
    else begin
      let out = Array.make n_survive nan in
      let w = ref 0 in
      for i = 0 to n - 1 do
        if failed_arr.(i) = None then begin
          out.(!w) <- row.(i);
          incr w
        end
      done;
      out
    end
  in
  let fvals = Array.map filter vals in
  let summaries =
    Array.to_list (Array.mapi (fun j m -> (m, Stats.summarize fvals.(j))) marr)
  in
  let index_of m =
    let rec go j = if marr.(j) = m then j else go (j + 1) in
    go 0
  in
  let spec_yields =
    List.map
      (fun s ->
        (s, Stats.yield ~pass:(passes s.bound) fvals.(index_of s.measure)))
      specs
  in
  let yield =
    if specs = [] then None
    else begin
      let ok = ref 0 in
      for i = 0 to n_survive - 1 do
        if
          List.for_all
            (fun s -> passes s.bound fvals.(index_of s.measure).(i))
            specs
        then incr ok
      done;
      Some (float_of_int !ok /. float_of_int n_survive)
    end
  in
  { seed; plan; n; order; policy; summaries; spec_yields; yield; failed }

let schema = "awesymbolic-sweep/2"

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("schema", Str schema);
      ("seed", Num (float_of_int r.seed));
      ("points", Num (float_of_int r.n));
      ("survivors", Num (float_of_int (survivors r)));
      ("order", Num (float_of_int r.order));
      ("policy", Str (policy_name r.policy));
      ("plan", Plan.to_json r.plan);
      ( "measures",
        Obj
          (List.map
             (fun (m, s) -> (measure_name m, Stats.to_json s))
             r.summaries) );
      ( "specs",
        List
          (List.map
             (fun (s, y) ->
               Obj
                 [
                   ("spec", Str (spec_to_string s));
                   ("measure", Str (measure_name s.measure));
                   ( "op",
                     Str (match s.bound with Le _ -> "<=" | Ge _ -> ">=") );
                   ( "limit",
                     Num (match s.bound with Le v | Ge v -> v) );
                   ("yield", Num y);
                 ])
             r.spec_yields) );
      ("yield", match r.yield with Some y -> Num y | None -> Null);
      ("failed_points", List (List.map failed_point_json r.failed));
    ]
