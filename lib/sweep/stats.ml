type summary = {
  n : int;
  finite : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  quantiles : (float * float) list;
  histogram : (float * float * int) array;
}

let default_probs = [ 0.05; 0.25; 0.5; 0.75; 0.95 ]

let quantile_sorted sorted p =
  (* Hyndman–Fan type 7 (linear interpolation), the numpy/R default. *)
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let lo = if lo >= n - 1 then n - 2 else if lo < 0 then 0 else lo in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))
  end

let summarize ?(bins = 20) ?(probs = default_probs) xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  if bins < 1 then invalid_arg "Stats.summarize: bins must be >= 1";
  let finite = Array.of_seq (Seq.filter Float.is_finite (Array.to_seq xs)) in
  let nf = Array.length finite in
  if nf = 0 then
    {
      n;
      finite = 0;
      mean = nan;
      std = nan;
      min = nan;
      max = nan;
      quantiles = List.map (fun p -> (p, nan)) probs;
      histogram = [||];
    }
  else begin
    let mean = Array.fold_left ( +. ) 0.0 finite /. float_of_int nf in
    let var =
      if nf < 2 then 0.0
      else
        Array.fold_left
          (fun acc x ->
            let d = x -. mean in
            acc +. (d *. d))
          0.0 finite
        /. float_of_int (nf - 1)
    in
    let sorted = Array.copy finite in
    Array.sort compare sorted;
    let mn = sorted.(0) and mx = sorted.(nf - 1) in
    let quantiles = List.map (fun p -> (p, quantile_sorted sorted p)) probs in
    let histogram =
      if mn = mx then [| (mn, mx, nf) |]
      else begin
        let counts = Array.make bins 0 in
        let w = (mx -. mn) /. float_of_int bins in
        Array.iter
          (fun x ->
            let b = int_of_float ((x -. mn) /. w) in
            let b = if b >= bins then bins - 1 else b in
            counts.(b) <- counts.(b) + 1)
          finite;
        Array.mapi
          (fun b c ->
            ( mn +. (float_of_int b *. w),
              (if b = bins - 1 then mx else mn +. (float_of_int (b + 1) *. w)),
              c ))
          counts
      end
    in
    {
      n;
      finite = nf;
      mean;
      std = sqrt var;
      min = mn;
      max = mx;
      quantiles;
      histogram;
    }
  end

let yield ~pass xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.yield: empty sample";
  let ok =
    Array.fold_left
      (fun acc x -> if Float.is_finite x && pass x then acc + 1 else acc)
      0 xs
  in
  float_of_int ok /. float_of_int n

let to_json s =
  let open Obs.Json in
  Obj
    [
      ("n", Num (float_of_int s.n));
      ("finite", Num (float_of_int s.finite));
      ("mean", Num s.mean);
      ("std", Num s.std);
      ("min", Num s.min);
      ("max", Num s.max);
      ( "quantiles",
        Obj
          (List.map
             (fun (p, v) -> (Printf.sprintf "p%02.0f" (100.0 *. p), Num v))
             s.quantiles) );
      ( "histogram",
        List
          (Array.to_list
             (Array.map
                (fun (lo, hi, c) ->
                  Obj
                    [
                      ("lo", Num lo);
                      ("hi", Num hi);
                      ("count", Num (float_of_int c));
                    ])
                s.histogram)) );
    ]
