type axis = { name : string; dist : Dist.t }

type kind =
  | Monte_carlo of int
  | Latin_hypercube of int
  | Corners
  | Grid of int

type t = { kind : kind; axes : axis list }

let make kind axes =
  if axes = [] then invalid_arg "Plan.make: no axes to sweep";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.name then
        invalid_arg (Printf.sprintf "Plan.make: duplicate axis %s" a.name);
      Hashtbl.add seen a.name ())
    axes;
  (match kind with
  | Monte_carlo n | Latin_hypercube n ->
    if n < 1 then invalid_arg "Plan.make: need at least one point"
  | Grid n ->
    if n < 2 then invalid_arg "Plan.make: grid needs >= 2 points per axis"
  | Corners -> ());
  let p = { kind; axes } in
  (* Cartesian kinds explode with dimension; fail at plan time, not after
     an hour of sampling. *)
  (match kind with
  | Corners when List.length axes > 20 ->
    invalid_arg "Plan.make: corner plan over more than 20 axes"
  | Grid n
    when float_of_int (List.length axes) *. log (float_of_int n)
         > log 1_000_000.0 ->
    invalid_arg "Plan.make: grid plan exceeds 1,000,000 points"
  | _ -> ());
  p

let num_points t =
  let k = List.length t.axes in
  match t.kind with
  | Monte_carlo n | Latin_hypercube n -> n
  | Corners -> 1 lsl k
  | Grid n ->
    let rec pow acc i = if i = 0 then acc else pow (acc * n) (i - 1) in
    pow 1 k

let kind_name = function
  | Monte_carlo _ -> "monte-carlo"
  | Latin_hypercube _ -> "latin-hypercube"
  | Corners -> "corners"
  | Grid _ -> "grid"

(* Map plan axes onto the model's input slots: every model symbol gets a
   column; un-swept symbols hold their nominal value in every lane. *)
let slot_of_axis symbols a =
  let rec find k =
    if k >= Array.length symbols then
      Awesym_error.errorf Invalid_request ~where:"plan.columns"
        "swept symbol %s is not a model symbol (have: %s)" a.name
        (String.concat ", " (Array.to_list symbols))
    else if symbols.(k) = a.name then k
    else find (k + 1)
  in
  find 0

let columns ~symbols ~nominals ~rng ?jobs ?(block = 256) t =
  if Array.length symbols <> Array.length nominals then
    invalid_arg "Plan.columns: symbols/nominals length mismatch";
  if block < 1 then invalid_arg "Plan.columns: block must be >= 1";
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> Runtime.default_jobs ()
  in
  let n = num_points t in
  let axes = Array.of_list t.axes in
  let slots = Array.map (slot_of_axis symbols) axes in
  let cols =
    Array.init (Array.length symbols) (fun k -> Array.make n nominals.(k))
  in
  (* Writes are indexed by point, so chunked execution fills disjoint
     ranges; fall through to the plain loop when one chunk covers it. *)
  let sequential = jobs = 1 || n <= block in
  (match t.kind with
  | Monte_carlo _ ->
    (* Point-major order: all axes of point i are drawn before point i+1,
       so adding an axis changes other axes' draws but adding points never
       changes earlier points. *)
    let sample_range rng lo hi =
      for i = lo to hi - 1 do
        Array.iteri
          (fun j a -> cols.(slots.(j)).(i) <- Dist.sample a.dist rng)
          axes
      done
    in
    if sequential then sample_range rng 0 n
    else begin
      (* Per-chunk streams are jump-ahead copies of THE sequential
         stream: chunk c starts [c.lo * draws-per-point] raw draws in, so
         every point sees exactly the values the jobs=1 loop draws. *)
      let dpp = Array.fold_left (fun acc a -> acc + Dist.draws a.dist) 0 axes in
      Runtime.iter_chunks ~jobs ~n ~block
        (fun ~worker:_ (c : Runtime.Chunk.t) ->
          let r = Obs.Rng.copy rng in
          Obs.Rng.skip r (c.lo * dpp);
          sample_range r c.lo (c.lo + c.len));
      (* Leave the caller's stream where sequential sampling would. *)
      Obs.Rng.skip rng (n * dpp)
    end
  | Latin_hypercube _ ->
    (* One stratified sample per stratum per axis, then a Fisher–Yates
       shuffle decorrelates the axes.  Shuffle and jitter draws are
       data-dependent on nothing but the stream, so they stay sequential;
       only the quantile transform fans out. *)
    let perm = Array.init n (fun i -> i) in
    Array.iteri
      (fun j a ->
        for i = n - 1 downto 1 do
          let k = Obs.Rng.int rng (i + 1) in
          let tmp = perm.(i) in
          perm.(i) <- perm.(k);
          perm.(k) <- tmp
        done;
        let col = cols.(slots.(j)) in
        let value i u_raw =
          let u = (float_of_int perm.(i) +. u_raw) /. float_of_int n in
          (* Clamp away from the open endpoints quantile rejects. *)
          let u = Float.max 1e-12 (Float.min (1.0 -. 1e-12) u) in
          Dist.quantile a.dist u
        in
        if sequential then
          for i = 0 to n - 1 do
            col.(i) <- value i (Obs.Rng.float rng)
          done
        else begin
          let jitter = Array.make n 0.0 in
          for i = 0 to n - 1 do
            jitter.(i) <- Obs.Rng.float rng
          done;
          Runtime.iter_chunks ~jobs ~n ~block
            (fun ~worker:_ (c : Runtime.Chunk.t) ->
              for i = c.lo to c.lo + c.len - 1 do
                col.(i) <- value i jitter.(i)
              done)
        end)
      axes
  | Corners ->
    Array.iteri
      (fun j a ->
        let lo, hi = Dist.bounds a.dist in
        let col = cols.(slots.(j)) in
        let fill flo fhi =
          for i = flo to fhi - 1 do
            col.(i) <- (if i land (1 lsl j) = 0 then lo else hi)
          done
        in
        if sequential then fill 0 n
        else
          Runtime.iter_chunks ~jobs ~n ~block
            (fun ~worker:_ (c : Runtime.Chunk.t) -> fill c.lo (c.lo + c.len)))
      axes
  | Grid per_axis ->
    Array.iteri
      (fun j a ->
        let lo, hi = Dist.bounds a.dist in
        let step = (hi -. lo) /. float_of_int (per_axis - 1) in
        let col = cols.(slots.(j)) in
        (* Axis j varies fastest for low j: index i decomposes in base
           [per_axis] with digit j selecting axis j's grid line. *)
        let rec digit i k = if k = 0 then i mod per_axis else digit (i / per_axis) (k - 1) in
        let fill flo fhi =
          for i = flo to fhi - 1 do
            col.(i) <- lo +. (float_of_int (digit i j) *. step)
          done
        in
        if sequential then fill 0 n
        else
          Runtime.iter_chunks ~jobs ~n ~block
            (fun ~worker:_ (c : Runtime.Chunk.t) -> fill c.lo (c.lo + c.len)))
      axes);
  cols

let to_json t =
  let open Obs.Json in
  let base =
    [
      ("kind", Str (kind_name t.kind));
      ("points", Num (float_of_int (num_points t)));
      ( "axes",
        List
          (List.map
             (fun a ->
               Obj [ ("symbol", Str a.name); ("dist", Dist.to_json a.dist) ])
             t.axes) );
    ]
  in
  match t.kind with
  | Grid n -> Obj (base @ [ ("per_axis", Num (float_of_int n)) ])
  | _ -> Obj base

(* Inverse of [to_json], revalidated through [make] so a decoded plan
   obeys every constructor invariant (no duplicate axes, sane point
   counts, bounded cartesian kinds).  ["points"] is authoritative for the
   sampled kinds and ignored for corners/grid, where it is derived. *)
let of_json j =
  let open Obs.Json in
  let int_field k =
    match member k j with
    | Some (Num v) when Float.is_integer v -> Ok (int_of_float v)
    | _ -> Error (Printf.sprintf "plan needs an integer %S field" k)
  in
  let axis = function
    | Obj _ as a -> (
      match (member "symbol" a, member "dist" a) with
      | Some (Str name), Some dj -> (
        match Dist.of_json dj with
        | Ok dist -> Ok { name; dist }
        | Error m -> Error (Printf.sprintf "axis %s: %s" name m))
      | _ -> Error "plan axis needs \"symbol\" and \"dist\" fields")
    | _ -> Error "plan axes must be objects"
  in
  let axes =
    match member "axes" j with
    | Some (List xs) ->
      List.fold_left
        (fun acc x ->
          match (acc, axis x) with
          | Ok done_, Ok a -> Ok (a :: done_)
          | (Error _ as e), _ | _, (Error _ as e) -> e)
        (Ok []) xs
      |> Result.map List.rev
    | _ -> Error "plan needs an \"axes\" list"
  in
  let kind =
    match member "kind" j with
    | Some (Str "monte-carlo") -> Result.map (fun n -> Monte_carlo n) (int_field "points")
    | Some (Str "latin-hypercube") ->
      Result.map (fun n -> Latin_hypercube n) (int_field "points")
    | Some (Str "corners") -> Ok Corners
    | Some (Str "grid") -> Result.map (fun n -> Grid n) (int_field "per_axis")
    | Some (Str k) -> Error (Printf.sprintf "unknown plan kind %S" k)
    | _ -> Error "plan needs a string \"kind\" field"
  in
  match (kind, axes) with
  | Ok k, Ok axs -> (
    match make k axs with
    | p -> Ok p
    | exception Invalid_argument m -> Error m)
  | (Error _ as e), _ | _, (Error _ as e) -> e
