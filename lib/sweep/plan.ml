type axis = { name : string; dist : Dist.t }

type kind =
  | Monte_carlo of int
  | Latin_hypercube of int
  | Corners
  | Grid of int

type t = { kind : kind; axes : axis list }

let make kind axes =
  if axes = [] then invalid_arg "Plan.make: no axes to sweep";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.name then
        invalid_arg (Printf.sprintf "Plan.make: duplicate axis %s" a.name);
      Hashtbl.add seen a.name ())
    axes;
  (match kind with
  | Monte_carlo n | Latin_hypercube n ->
    if n < 1 then invalid_arg "Plan.make: need at least one point"
  | Grid n ->
    if n < 2 then invalid_arg "Plan.make: grid needs >= 2 points per axis"
  | Corners -> ());
  let p = { kind; axes } in
  (* Cartesian kinds explode with dimension; fail at plan time, not after
     an hour of sampling. *)
  (match kind with
  | Corners when List.length axes > 20 ->
    invalid_arg "Plan.make: corner plan over more than 20 axes"
  | Grid n
    when float_of_int (List.length axes) *. log (float_of_int n)
         > log 1_000_000.0 ->
    invalid_arg "Plan.make: grid plan exceeds 1,000,000 points"
  | _ -> ());
  p

let num_points t =
  let k = List.length t.axes in
  match t.kind with
  | Monte_carlo n | Latin_hypercube n -> n
  | Corners -> 1 lsl k
  | Grid n ->
    let rec pow acc i = if i = 0 then acc else pow (acc * n) (i - 1) in
    pow 1 k

let kind_name = function
  | Monte_carlo _ -> "monte-carlo"
  | Latin_hypercube _ -> "latin-hypercube"
  | Corners -> "corners"
  | Grid _ -> "grid"

(* Map plan axes onto the model's input slots: every model symbol gets a
   column; un-swept symbols hold their nominal value in every lane. *)
let slot_of_axis symbols a =
  let rec find k =
    if k >= Array.length symbols then
      failwith
        (Printf.sprintf "Plan: swept symbol %s is not a model symbol (have: %s)"
           a.name
           (String.concat ", " (Array.to_list symbols)))
    else if symbols.(k) = a.name then k
    else find (k + 1)
  in
  find 0

let columns ~symbols ~nominals ~rng t =
  if Array.length symbols <> Array.length nominals then
    invalid_arg "Plan.columns: symbols/nominals length mismatch";
  let n = num_points t in
  let axes = Array.of_list t.axes in
  let slots = Array.map (slot_of_axis symbols) axes in
  let cols =
    Array.init (Array.length symbols) (fun k -> Array.make n nominals.(k))
  in
  (match t.kind with
  | Monte_carlo _ ->
    (* Point-major order: all axes of point i are drawn before point i+1,
       so adding an axis changes other axes' draws but adding points never
       changes earlier points. *)
    for i = 0 to n - 1 do
      Array.iteri
        (fun j a -> cols.(slots.(j)).(i) <- Dist.sample a.dist rng)
        axes
    done
  | Latin_hypercube _ ->
    (* One stratified sample per stratum per axis, then a Fisher–Yates
       shuffle decorrelates the axes. *)
    let perm = Array.init n (fun i -> i) in
    Array.iteri
      (fun j a ->
        for i = n - 1 downto 1 do
          let k = Obs.Rng.int rng (i + 1) in
          let tmp = perm.(i) in
          perm.(i) <- perm.(k);
          perm.(k) <- tmp
        done;
        let col = cols.(slots.(j)) in
        for i = 0 to n - 1 do
          let u =
            (float_of_int perm.(i) +. Obs.Rng.float rng) /. float_of_int n
          in
          (* Clamp away from the open endpoints quantile rejects. *)
          let u = Float.max 1e-12 (Float.min (1.0 -. 1e-12) u) in
          col.(i) <- Dist.quantile a.dist u
        done)
      axes
  | Corners ->
    Array.iteri
      (fun j a ->
        let lo, hi = Dist.bounds a.dist in
        let col = cols.(slots.(j)) in
        for i = 0 to n - 1 do
          col.(i) <- (if i land (1 lsl j) = 0 then lo else hi)
        done)
      axes
  | Grid per_axis ->
    Array.iteri
      (fun j a ->
        let lo, hi = Dist.bounds a.dist in
        let step = (hi -. lo) /. float_of_int (per_axis - 1) in
        let col = cols.(slots.(j)) in
        (* Axis j varies fastest for low j: index i decomposes in base
           [per_axis] with digit j selecting axis j's grid line. *)
        let rec digit i k = if k = 0 then i mod per_axis else digit (i / per_axis) (k - 1) in
        for i = 0 to n - 1 do
          col.(i) <- lo +. (float_of_int (digit i j) *. step)
        done)
      axes);
  cols

let to_json t =
  let open Obs.Json in
  let base =
    [
      ("kind", Str (kind_name t.kind));
      ("points", Num (float_of_int (num_points t)));
      ( "axes",
        List
          (List.map
             (fun a ->
               Obj [ ("symbol", Str a.name); ("dist", Dist.to_json a.dist) ])
             t.axes) );
    ]
  in
  match t.kind with
  | Grid n -> Obj (base @ [ ("per_axis", Num (float_of_int n)) ])
  | _ -> Obj base
