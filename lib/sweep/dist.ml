type t =
  | Uniform of { lo : float; hi : float }
  | Normal of { mean : float; std : float }
  | Lognormal of { mu : float; sigma : float }

let uniform ~lo ~hi =
  if not (lo < hi) then invalid_arg "Dist.uniform: needs lo < hi";
  Uniform { lo; hi }

let normal ~mean ~std =
  if not (std > 0.0) then invalid_arg "Dist.normal: needs std > 0";
  Normal { mean; std }

let lognormal ~mu ~sigma =
  if not (sigma > 0.0) then invalid_arg "Dist.lognormal: needs sigma > 0";
  Lognormal { mu; sigma }

let around ~nominal ~pct =
  if not (pct > 0.0) then invalid_arg "Dist.around: needs pct > 0";
  let h = Float.abs nominal *. pct /. 100.0 in
  if h = 0.0 then invalid_arg "Dist.around: zero nominal";
  uniform ~lo:(nominal -. h) ~hi:(nominal +. h)

(* Acklam's rational approximation of the standard normal quantile —
   relative error below 1.15e-9 everywhere, which is far inside Monte-Carlo
   noise.  Deterministic (no tables, no iteration), so Latin-hypercube
   strata map to the same values on every platform. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Dist: quantile needs 0<p<1";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q
    +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  else if p > 1.0 -. p_low then
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
         *. q
      +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
  else
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
    +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
       +. 1.0)

let quantile t p =
  match t with
  | Uniform { lo; hi } ->
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg "Dist.quantile: needs 0<=p<=1";
    lo +. (p *. (hi -. lo))
  | Normal { mean; std } -> mean +. (std *. normal_quantile p)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. normal_quantile p))

let std_normal rng =
  (* Box–Muller; [1 - float] keeps the log argument in (0, 1]. *)
  let u1 = 1.0 -. Obs.Rng.float rng in
  let u2 = Obs.Rng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* Raw Rng draws one [sample] consumes — the stream stride parallel plans
   use with [Obs.Rng.skip] to position per-chunk streams.  Must stay in
   lock-step with [sample]: uniform draws once, Box–Muller twice. *)
let draws = function Uniform _ -> 1 | Normal _ | Lognormal _ -> 2

let sample t rng =
  match t with
  | Uniform { lo; hi } -> Obs.Rng.uniform rng ~lo ~hi
  | Normal { mean; std } -> mean +. (std *. std_normal rng)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. std_normal rng))

let bounds = function
  | Uniform { lo; hi } -> (lo, hi)
  | Normal { mean; std } -> (mean -. (3.0 *. std), mean +. (3.0 *. std))
  | Lognormal { mu; sigma } ->
    (exp (mu -. (3.0 *. sigma)), exp (mu +. (3.0 *. sigma)))

let to_json t =
  let open Obs.Json in
  match t with
  | Uniform { lo; hi } ->
    Obj [ ("kind", Str "uniform"); ("lo", Num lo); ("hi", Num hi) ]
  | Normal { mean; std } ->
    Obj [ ("kind", Str "normal"); ("mean", Num mean); ("std", Num std) ]
  | Lognormal { mu; sigma } ->
    Obj [ ("kind", Str "lognormal"); ("mu", Num mu); ("sigma", Num sigma) ]

(* Inverse of [to_json].  Parameters are re-validated through the smart
   constructors so a hostile document cannot smuggle in, say, an empty
   uniform interval that [sample] would mishandle. *)
let of_json j =
  let open Obs.Json in
  let num k =
    match member k j with
    | Some (Num v) -> Ok v
    | _ -> Error (Printf.sprintf "dist needs a numeric %S field" k)
  in
  let build ka kb make =
    match (num ka, num kb) with
    | Ok a, Ok b -> (
      match make a b with
      | d -> Ok d
      | exception Invalid_argument m -> Error m)
    | (Error _ as e), _ | _, (Error _ as e) -> e
  in
  match member "kind" j with
  | Some (Str "uniform") -> build "lo" "hi" (fun lo hi -> uniform ~lo ~hi)
  | Some (Str "normal") ->
    build "mean" "std" (fun mean std -> normal ~mean ~std)
  | Some (Str "lognormal") ->
    build "mu" "sigma" (fun mu sigma -> lognormal ~mu ~sigma)
  | Some (Str k) -> Error (Printf.sprintf "unknown dist kind %S" k)
  | _ -> Error "dist needs a string \"kind\" field"
