(** Element-value distributions for statistical sweeps.

    Sampling draws exclusively from an {!Obs.Rng.t} stream, so a sweep's
    points are a pure function of the seed — identical across machines and
    reruns (the seed is recorded in sweep results for this reason). *)

type t =
  | Uniform of { lo : float; hi : float }
  | Normal of { mean : float; std : float }
  | Lognormal of { mu : float; sigma : float }
      (** [exp N(mu, sigma)] — the classic process-variation model for
          strictly positive element values. *)

val uniform : lo:float -> hi:float -> t
(** Raises [Invalid_argument] unless [lo < hi]. *)

val normal : mean:float -> std:float -> t
(** Raises [Invalid_argument] unless [std > 0]. *)

val lognormal : mu:float -> sigma:float -> t
(** Raises [Invalid_argument] unless [sigma > 0]. *)

val around : nominal:float -> pct:float -> t
(** Uniform tolerance band [nominal ± pct%] — the "5% resistor" shorthand.
    Raises [Invalid_argument] on a zero nominal or non-positive [pct]. *)

val sample : t -> Obs.Rng.t -> float
(** One draw (normal/lognormal use Box–Muller over the stream). *)

val draws : t -> int
(** Raw stream draws one {!sample} consumes (1 for uniform, 2 for the
    Box–Muller kinds).  Parallel plans use this as the [Obs.Rng.skip]
    stride when splitting a seeded stream into per-chunk streams. *)

val quantile : t -> float -> float
(** Inverse CDF, used to map Latin-hypercube strata onto the distribution.
    Normal quantiles use Acklam's approximation (relative error < 1.2e-9).
    Raises [Invalid_argument] for [p] outside the distribution's domain. *)

val bounds : t -> float * float
(** Corner values: the support for [Uniform], [±3σ] for [Normal] (and its
    image under [exp] for [Lognormal]).  Feeds corner/grid plans. *)

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json} (parameters re-validated as in the smart
    constructors); [to_json] floats round-trip bit-exactly, which is what
    lets a distributed-sweep worker rebuild the coordinator's plan. *)
