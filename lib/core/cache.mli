(** Content-addressed on-disk cache for compiled models.

    Keys hash the canonical deck text together with the build options and
    the {!Artifact.version}, so cache entries can never be confused across
    netlist edits, different expansion orders, or format bumps.
    {!Model.build_cached} is the high-level entry point; this module only
    computes keys and paths. *)

val key : ?order:int -> ?sparse:bool -> Circuit.Netlist.t -> string
(** Hex digest identifying the compiled form of [nl] at the given build
    options (defaults match {!Model.build}: [order = 2],
    [sparse = false]). *)

val default_dir : unit -> string
(** [$AWESYM_CACHE_DIR] if set and non-empty, else [".awesym-cache"]. *)

val path : dir:string -> string -> string
(** [path ~dir key] is the artifact file path for [key] under [dir]. *)

val ensure_dir : string -> unit
(** Create the cache directory (and parents) if missing. *)

val atomic_write : string -> (string -> unit) -> unit
(** [atomic_write dest write] calls [write tmp] on a fresh temp file in
    [dest]'s directory, then atomically renames it over [dest] — readers
    never observe a partially written entry, and concurrent writers of
    the same key are last-wins instead of corrupting.  If [write] raises,
    the temp file is removed and the exception re-raised; [dest] is
    untouched. *)

type gc_stats = {
  scanned : int;  (** cache entries found (post-sweep, pre-eviction) *)
  deleted : int;  (** entries evicted this run *)
  bytes_before : int;  (** total entry bytes before eviction *)
  bytes_after : int;  (** total entry bytes after eviction *)
}

val gc : ?dir:string -> max_bytes:int -> unit -> gc_stats
(** Bound the cache directory (default {!default_dir}) to [max_bytes] of
    entries — model artifacts ([.awm]), compiled native kernels
    ([.cmxs], see docs/CODEGEN.md), orphaned sweep checkpoints
    ([.ckpt]), and orphaned optimizer trajectories ([.opt], see
    docs/OPTIMIZE.md) share one budget — by deleting
    oldest-access-first (atime when the filesystem tracks it, else
    mtime) until the total fits.  Each eviction is one atomic unlink —
    concurrent readers either opened the entry first and keep their
    handle, or miss and rebuild/recompile; nothing is observed
    half-deleted.  Also sweeps stale [.tmp] files left by crashed
    {!atomic_write} runs and [.bad] objects quarantined by codegen's
    load validation.  A missing directory is an empty cache, not an
    error.  Obs counter: [cache.gc.deleted].  The serve registry runs
    this at startup; the CLI exposes it as [awesym cache gc].  Raises
    [Invalid_argument] when [max_bytes < 0]. *)
