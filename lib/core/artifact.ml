(* Versioned, checksummed on-disk form of a compiled model.

   Layout:  magic (9 bytes) | format version (u32 LE) | MD5 of payload
   (16 bytes) | payload.  The payload serializes floats as their IEEE-754
   bit patterns (Int64 LE), so save -> load round-trips are bit-identical —
   the property that makes a cached model interchangeable with the build
   that produced it.  Every decode error, including a version or checksum
   mismatch, raises [Format_error] with a message that says what to do. *)

module Slp = Symbolic.Slp
module Sym = Symbolic.Symbol

exception Format_error of string

let version = 1
let magic = "AWESYMMDL"

type payload = {
  order : int;
  symbol_names : string array;
  nominals : float array;
  output : Circuit.Netlist.output option;
  moment_program : Slp.t;
  closed_program : Slp.t option;
}

let fail fmt = Printf.ksprintf (fun msg -> raise (Format_error msg)) fmt

(* ------------------------------------------------------------------ *)
(* Primitive encoders / decoders *)

let enc_u8 b v = Buffer.add_uint8 b v

let enc_u32 b v =
  if v < 0 || v > 0x3FFFFFFF then
    invalid_arg (Printf.sprintf "Artifact: length %d out of u32 range" v);
  Buffer.add_int32_le b (Int32.of_int v)

let enc_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let enc_str b s =
  enc_u32 b (String.length s);
  Buffer.add_string b s

type src = { data : string; mutable pos : int }

let need src n =
  if src.pos + n > String.length src.data then
    fail "truncated artifact (wanted %d bytes at offset %d of %d)" n src.pos
      (String.length src.data)

let dec_u8 src =
  need src 1;
  let v = Char.code src.data.[src.pos] in
  src.pos <- src.pos + 1;
  v

let dec_u32 src =
  need src 4;
  let v = Int32.to_int (String.get_int32_le src.data src.pos) in
  src.pos <- src.pos + 4;
  if v < 0 then fail "negative length at offset %d" (src.pos - 4);
  v

let dec_f64 src =
  need src 8;
  let v = Int64.float_of_bits (String.get_int64_le src.data src.pos) in
  src.pos <- src.pos + 8;
  v

let dec_str src =
  let n = dec_u32 src in
  need src n;
  let s = String.sub src.data src.pos n in
  src.pos <- src.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Program bytecode *)

let enc_program b p =
  let inputs = Slp.inputs p in
  enc_u32 b (Array.length inputs);
  Array.iter (fun s -> enc_str b (Sym.name s)) inputs;
  let instrs = Slp.instructions p in
  enc_u32 b (Array.length instrs);
  Array.iter
    (fun (i : Slp.instr) ->
      match i with
      | Slp.Load_input (r, s) ->
        enc_u8 b 0;
        enc_u32 b r;
        enc_u32 b s
      | Slp.Add (r, x, y) ->
        enc_u8 b 1;
        enc_u32 b r;
        enc_u32 b x;
        enc_u32 b y
      | Slp.Mul (r, x, y) ->
        enc_u8 b 2;
        enc_u32 b r;
        enc_u32 b x;
        enc_u32 b y
      | Slp.Neg (r, x) ->
        enc_u8 b 3;
        enc_u32 b r;
        enc_u32 b x
      | Slp.Inv (r, x) ->
        enc_u8 b 4;
        enc_u32 b r;
        enc_u32 b x
      | Slp.Sqrt (r, x) ->
        enc_u8 b 5;
        enc_u32 b r;
        enc_u32 b x
      | Slp.Exp (r, x) ->
        enc_u8 b 6;
        enc_u32 b r;
        enc_u32 b x)
    instrs;
  let init = Slp.init_registers p in
  enc_u32 b (Array.length init);
  Array.iter (enc_f64 b) init;
  let outputs = Slp.output_registers p in
  enc_u32 b (Array.length outputs);
  Array.iter (enc_u32 b) outputs

let dec_program src =
  let n_inputs = dec_u32 src in
  let inputs = Array.init n_inputs (fun _ -> Sym.intern (dec_str src)) in
  let n_instrs = dec_u32 src in
  let instrs =
    Array.init n_instrs (fun _ ->
        match dec_u8 src with
        | 0 ->
          let r = dec_u32 src in
          let s = dec_u32 src in
          Slp.Load_input (r, s)
        | 1 ->
          let r = dec_u32 src in
          let x = dec_u32 src in
          let y = dec_u32 src in
          Slp.Add (r, x, y)
        | 2 ->
          let r = dec_u32 src in
          let x = dec_u32 src in
          let y = dec_u32 src in
          Slp.Mul (r, x, y)
        | 3 ->
          let r = dec_u32 src in
          let x = dec_u32 src in
          Slp.Neg (r, x)
        | 4 ->
          let r = dec_u32 src in
          let x = dec_u32 src in
          Slp.Inv (r, x)
        | 5 ->
          let r = dec_u32 src in
          let x = dec_u32 src in
          Slp.Sqrt (r, x)
        | 6 ->
          let r = dec_u32 src in
          let x = dec_u32 src in
          Slp.Exp (r, x)
        | op -> fail "unknown opcode %d at offset %d" op (src.pos - 1))
  in
  let n_regs = dec_u32 src in
  let init = Array.init n_regs (fun _ -> dec_f64 src) in
  let n_outs = dec_u32 src in
  let outputs = Array.init n_outs (fun _ -> dec_u32 src) in
  match Slp.of_parts ~inputs ~instrs ~init ~outputs with
  | p -> p
  | exception Invalid_argument msg -> fail "malformed program: %s" msg

(* ------------------------------------------------------------------ *)
(* Payload *)

let enc_payload b (p : payload) =
  enc_u32 b p.order;
  if Array.length p.symbol_names <> Array.length p.nominals then
    invalid_arg "Artifact: symbol_names and nominals length mismatch";
  enc_u32 b (Array.length p.symbol_names);
  Array.iteri
    (fun k name ->
      enc_str b name;
      enc_f64 b p.nominals.(k))
    p.symbol_names;
  (match p.output with
  | None -> enc_u8 b 0
  | Some (Circuit.Netlist.Node n) ->
    enc_u8 b 1;
    enc_str b n
  | Some (Circuit.Netlist.Diff (a, bn)) ->
    enc_u8 b 2;
    enc_str b a;
    enc_str b bn);
  enc_program b p.moment_program;
  match p.closed_program with
  | None -> enc_u8 b 0
  | Some cp ->
    enc_u8 b 1;
    enc_program b cp

let dec_payload src =
  let order = dec_u32 src in
  if order < 1 then fail "nonsensical model order %d" order;
  let n_sym = dec_u32 src in
  let symbol_names = Array.make n_sym "" in
  let nominals = Array.make n_sym 0.0 in
  for k = 0 to n_sym - 1 do
    symbol_names.(k) <- dec_str src;
    nominals.(k) <- dec_f64 src
  done;
  let output =
    match dec_u8 src with
    | 0 -> None
    | 1 -> Some (Circuit.Netlist.Node (dec_str src))
    | 2 ->
      let a = dec_str src in
      let bn = dec_str src in
      Some (Circuit.Netlist.Diff (a, bn))
    | tag -> fail "unknown output tag %d" tag
  in
  let moment_program = dec_program src in
  let closed_program =
    match dec_u8 src with
    | 0 -> None
    | 1 -> Some (dec_program src)
    | tag -> fail "unknown closed-form tag %d" tag
  in
  if src.pos <> String.length src.data then
    fail "trailing garbage: %d bytes past the payload"
      (String.length src.data - src.pos);
  { order; symbol_names; nominals; output; moment_program; closed_program }

(* ------------------------------------------------------------------ *)
(* Files *)

let to_string (p : payload) =
  let body = Buffer.create 4096 in
  enc_payload body p;
  let body = Buffer.contents body in
  let b = Buffer.create (String.length body + 32) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version);
  Buffer.add_string b (Digest.string body);
  Buffer.add_string b body;
  Buffer.contents b

let of_string data =
  let header_len = String.length magic + 4 + 16 in
  if String.length data < header_len then
    fail "file too short to be a model artifact (%d bytes)"
      (String.length data);
  if String.sub data 0 (String.length magic) <> magic then
    fail "bad magic: not an awesym model artifact";
  let got_version =
    Int32.to_int (String.get_int32_le data (String.length magic))
  in
  if got_version <> version then
    fail
      "artifact format version %d, but this build reads version %d — \
       recompile the model with `awesym compile`"
      got_version version;
  let digest = String.sub data (String.length magic + 4) 16 in
  let body =
    String.sub data header_len (String.length data - header_len)
  in
  if Digest.string body <> digest then
    fail "checksum mismatch: the artifact is corrupted";
  dec_payload { data = body; pos = 0 }

let save path p =
  Obs.Span.with_ ~name:"model.save" @@ fun () ->
  let data = to_string p in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data);
  if !Obs.enabled then begin
    Obs.Metrics.incr "model.save.count";
    Obs.Metrics.add "model.save.bytes" (String.length data)
  end

let load path =
  Obs.Span.with_ ~name:"model.load" @@ fun () ->
  Runtime.Fault.cut "artifact.read" ~key:(Hashtbl.hash path);
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let p = of_string data in
  if !Obs.enabled then Obs.Metrics.incr "model.load.count";
  p

(* Taxonomy bridge: [Format_error] stays (callers match it to trigger
   cache rebuilds); the classifier folds it into the shared taxonomy. *)
let () =
  Awesym_error.register (function
    | Format_error msg ->
        Some (Awesym_error.make Artifact_corrupt ~where:"artifact.load" msg)
    | _ -> None)
