module Mna = Circuit.Mna
module Netlist = Circuit.Netlist
module Element = Circuit.Element
module Matrix = Numeric.Matrix
module Mpoly = Symbolic.Mpoly

type t = {
  n : int;
  matrices : Mpoly.t array array array;
      (* frequency-normalized: entry k holds [Yᵏ·ω₀ᵏ] *)
  rhs : Mpoly.t array;
  selector : (int * float) list;
  row_of : string -> int;
  scale : float array;
  omega0 : float;
      (* frequency normalization s = ω₀·ŝ; solved moments come back in ŝ
         powers and are denormalized by ω₀⁻ᵏ at projection time *)
}

let size t = t.n

let selector_for t output =
  let row name =
    match t.row_of name with
    | r -> r
    | exception Not_found ->
      failwith
        (Printf.sprintf
           "Global_system.selector_for: node %s is not a global unknown \
            (declare it as an output when partitioning)"
           name)
  in
  let raw =
    match output with
    | Netlist.Node a -> if row a >= 0 then [ (row a, 1.0) ] else []
    | Netlist.Diff (a, b) ->
      List.filter (fun (r, _) -> r >= 0) [ (row a, 1.0); (row b, -1.0) ]
  in
  List.map (fun (r, c) -> (r, c *. t.scale.(r))) raw

let build partition reduction =
  Obs.Span.with_ ~name:"model.global_system" @@ fun () ->
  let ports = partition.Partition.ports in
  (* Global netlist: input source, symbolic elements, and the numeric
     companions their stamps reference, indexed over the full port frame so
     every port has a row even when no symbolic element touches it. *)
  let global_nl =
    Netlist.empty
    |> Fun.flip Netlist.add_all
         ((partition.Partition.input
          :: List.map fst partition.Partition.symbolic)
         @ partition.Partition.companions)
  in
  let ix = Mna.index_of_netlist ~extra_nodes:(Array.to_list ports) global_nl in
  let n = Mna.size ix in
  let depth = Int.max 2 (Array.length reduction.Port_reduction.series) in
  let matrices = Array.init depth (fun _ -> Array.make_matrix n n Mpoly.zero) in
  let addm k i j v = matrices.(k).(i).(j) <- Mpoly.add matrices.(k).(i).(j) v in
  let rhs = Array.make n Mpoly.zero in
  (* Numeric partition: stencil each Yᵐ onto the port rows/columns.
     Entries that are pure float dust relative to the matrix scale (exact
     zeros contaminated by solver rounding) are dropped — they carry no
     information and poison the tolerance-chopped fraction-free display
     path with 10¹⁶-spread polynomials. *)
  Array.iteri
    (fun m ym ->
      let scale =
        Array.fold_left
          (fun acc row ->
            Array.fold_left (fun a v -> Float.max a (Float.abs v)) acc row)
          0.0
          (Matrix.to_arrays ym)
      in
      let floor = 1e-12 *. scale in
      Array.iteri
        (fun i pi ->
          let ri = Mna.node_row ix pi in
          Array.iteri
            (fun j pj ->
              let rj = Mna.node_row ix pj in
              let v = Matrix.get ym i j in
              if Float.abs v > floor then addm m ri rj (Mpoly.const v))
            ports)
        ports)
    reduction.Port_reduction.series;
  (* Symbolic partitions: each element's stamp with its symbol as the value;
     the expansion G + s·C is finite (Eq. 10). *)
  List.iter
    (fun ((e : Element.t), sym) ->
      let st = Mna.stamp_of ix e in
      let value = Mpoly.of_symbol sym in
      List.iter
        (fun { Mna.row; col; coeff } -> addm 0 row col (Mpoly.const coeff))
        st.Mna.g_const;
      List.iter
        (fun { Mna.row; col; coeff } -> addm 0 row col (Mpoly.scale coeff value))
        st.Mna.g_value;
      List.iter
        (fun { Mna.row; col; coeff } -> addm 1 row col (Mpoly.scale coeff value))
        st.Mna.c_value)
    partition.Partition.symbolic;
  (* Companion elements: numeric values, stamped at the global level because
     symbolic elements reference their branch currents. *)
  List.iter
    (fun (e : Element.t) ->
      let st = Mna.stamp_of ix e in
      let value = Element.stamp_value e in
      List.iter
        (fun { Mna.row; col; coeff } -> addm 0 row col (Mpoly.const coeff))
        st.Mna.g_const;
      List.iter
        (fun { Mna.row; col; coeff } -> addm 0 row col (Mpoly.const (coeff *. value)))
        st.Mna.g_value;
      List.iter
        (fun { Mna.row; col; coeff } -> addm 1 row col (Mpoly.const (coeff *. value)))
        st.Mna.c_value)
    partition.Partition.companions;
  (* Input source: incidence plus unit RHS (the impulse I₀; higher moment
     RHS terms vanish). *)
  let st = Mna.stamp_of ix partition.Partition.input in
  List.iter
    (fun { Mna.row; col; coeff } -> addm 0 row col (Mpoly.const coeff))
    st.Mna.g_const;
  List.iter
    (fun (r, coeff) -> rhs.(r) <- Mpoly.add rhs.(r) (Mpoly.const coeff))
    st.Mna.b_unit;
  let selector =
    let row name = Mna.node_row ix name in
    match Netlist.output partition.Partition.netlist with
    | Netlist.Node a -> if row a >= 0 then [ (row a, 1.0) ] else []
    | Netlist.Diff (a, b) ->
      List.filter (fun (r, _) -> r >= 0) [ (row a, 1.0); (row b, -1.0) ]
  in
  (* Frequency normalization s = ω₀·ŝ (the Exact.Network cure, applied to
     the global system): physical G entries sit near 1/R while C and L
     entries sit 10–13 decades below, and that spread defeats the
     tolerance-chopped exact division inside the fraction-free (Cramer)
     display path.  Scaling Yᵏ by ω₀ᵏ rebalances every matrix; the moment
     projection divides the k-th moment by ω₀ᵏ, so results are unchanged. *)
  let content_of m =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun a p -> Float.max a (Mpoly.content p)) acc row)
      0.0 m
  in
  let omega0 =
    (* Least-squares slope of log content(Yᵏ) against k: ω₀ = e^{−slope}
       flattens the whole family.  Clamped to 1 within a decade so already
       balanced systems (normalized units, the paper's examples) are left
       untouched. *)
    let pts =
      Array.to_list matrices
      |> List.mapi (fun k mk -> (float_of_int k, content_of mk))
      |> List.filter (fun (_, c) -> c > 0.0)
      |> List.map (fun (k, c) -> (k, Float.log c))
    in
    match pts with
    | [] | [ _ ] -> 1.0
    | _ ->
      let n = float_of_int (List.length pts) in
      let kbar = List.fold_left (fun a (k, _) -> a +. k) 0.0 pts /. n in
      let lbar = List.fold_left (fun a (_, l) -> a +. l) 0.0 pts /. n in
      let num =
        List.fold_left (fun a (k, l) -> a +. ((k -. kbar) *. (l -. lbar))) 0.0 pts
      in
      let den =
        List.fold_left (fun a (k, _) -> a +. ((k -. kbar) *. (k -. kbar))) 0.0 pts
      in
      let slope = if den > 0.0 then num /. den else 0.0 in
      if Float.abs slope < Float.log 10.0 then 1.0 else Float.exp (-.slope)
  in
  let matrices =
    Array.mapi
      (fun k mk ->
        if k = 0 then mk
        else
          let w = Float.pow omega0 (float_of_int k) in
          Array.map (Array.map (Mpoly.scale w)) mk)
      matrices
  in
  (* Symmetric equilibration with constant diagonal scalings:
     Y'ᵏ = D·Yᵏ·D, rhs' = D·rhs, selector' coefficients gain the row scale
     (V = D·V').  Exact algebra — the scale folds into float coefficients —
     but it compresses the 10⁵-plus magnitude spreads of mixed-conductance
     systems that otherwise defeat float-coefficient fraction-free
     elimination. *)
  let scale =
    Array.init n (fun i ->
        let worst = ref 0.0 in
        Array.iter
          (fun mk ->
            Array.iter
              (fun p -> worst := Float.max !worst (Mpoly.content p))
              mk.(i))
          matrices;
        if !worst > 0.0 then 1.0 /. Float.sqrt !worst else 1.0)
  in
  let matrices =
    Array.map
      (fun mk ->
        Array.mapi
          (fun i row ->
            Array.mapi (fun j p -> Mpoly.scale (scale.(i) *. scale.(j)) p) row)
          mk)
      matrices
  in
  let rhs = Array.mapi (fun i p -> Mpoly.scale scale.(i) p) rhs in
  let selector = List.map (fun (r, c) -> (r, c *. scale.(r))) selector in
  { n; matrices; rhs; selector; row_of = (fun name -> Mna.node_row ix name);
    scale; omega0 }

let moment_matrix t k =
  if k < Array.length t.matrices then t.matrices.(k)
  else Array.make_matrix t.n t.n Mpoly.zero

type moments = { det : Mpoly.t; numerators : Mpoly.t array }

type raw = { raw_det : Mpoly.t; vectors : Mpoly.t array array }

(* Fraction-free recursion: with V₀ = P₀/det and Vₖ = Pₖ/det^{k+1},
   Y⁰·Vₖ = −Σⱼ Yʲ·V_{k−j} becomes
   Y⁰·Pₖ = det · Qₖ with Qₖ = −Σⱼ det^{j−1}·(Yʲ·P_{k−j}),
   and Cramer gives Pₖ directly (the solve's denominator is det itself). *)
let solve_raw t ~count =
  if count < 1 then invalid_arg "Global_system.solve_moments: count >= 1";
  Obs.Span.with_ ~name:"model.solve_fraction_free" @@ fun () ->
  if !Obs.enabled then
    Obs.Metrics.observe "global.system.size" (float_of_int t.n);
  let y0 = t.matrices.(0) in
  let depth = Array.length t.matrices in
  let mul_mat_vec m v =
    Array.init t.n (fun i ->
        let acc = ref Mpoly.zero in
        for j = 0 to t.n - 1 do
          if not (Mpoly.is_zero m.(i).(j)) && not (Mpoly.is_zero v.(j)) then
            acc := Mpoly.add !acc (Mpoly.mul m.(i).(j) v.(j))
        done;
        !acc)
  in
  let p = Array.make count [||] in
  let nums0, det =
    try Exact.Bareiss.solve_cramer y0 t.rhs
    with Failure _ -> failwith "Global_system: Y0 is singular"
  in
  if Mpoly.is_zero det then failwith "Global_system: Y0 is singular";
  p.(0) <- nums0;
  for k = 1 to count - 1 do
    let q = Array.make t.n Mpoly.zero in
    let power = ref Mpoly.one in
    (* j = 1 uses det⁰, j = 2 uses det¹, … *)
    for j = 1 to Int.min k (depth - 1) do
      let term = mul_mat_vec t.matrices.(j) p.(k - j) in
      Array.iteri
        (fun i v ->
          if not (Mpoly.is_zero v) then
            q.(i) <- Mpoly.sub q.(i) (Mpoly.mul !power v))
        term;
      power := Mpoly.mul !power det
    done;
    let nums, det' = Exact.Bareiss.solve_cramer y0 q in
    (* The matrix is the same every time, so the Cramer denominator is det
       again (up to the shared float rounding of the elimination). *)
    ignore det';
    p.(k) <- nums
  done;
  { raw_det = det; vectors = p }

let project t raw selector =
  let numerators =
    Array.mapi
      (fun k pk ->
        let denorm = Float.pow t.omega0 (-.float_of_int k) in
        List.fold_left
          (fun acc (r, coeff) ->
            Mpoly.add acc (Mpoly.scale (coeff *. denorm) pk.(r)))
          Mpoly.zero selector)
      raw.vectors
  in
  { det = raw.raw_det; numerators }

let solve_moments t ~count = project t (solve_raw t ~count) t.selector

let moments_ratfun m =
  Array.mapi
    (fun k num -> Symbolic.Ratfun.make num (Mpoly.pow m.det (k + 1)))
    m.numerators

let moments_expr m =
  let module E = Symbolic.Expr in
  let det = E.of_mpoly m.det in
  Array.mapi
    (fun k num -> E.div (E.of_mpoly num) (E.pow_int det (k + 1)))
    m.numerators

let solve_vectors_expr t ~nominal ~count =
  let module E = Symbolic.Expr in
  if count < 1 then
    invalid_arg "Global_system.moments_expr_by_elimination: count >= 1";
  Obs.Span.with_ ~name:"model.eliminate" @@ fun () ->
  if !Obs.enabled then
    Obs.Metrics.observe "global.system.size" (float_of_int t.n);
  let n = t.n in
  let value e = try Float.abs (E.eval e nominal) with Division_by_zero -> 0.0 in
  let to_expr m = Array.map (Array.map E.of_mpoly) m in
  let a = to_expr t.matrices.(0) in
  let depth = Array.length t.matrices in
  let higher = Array.init (depth - 1) (fun j -> to_expr t.matrices.(j + 1)) in
  (* LU with nominal-magnitude partial pivoting; L (unit diagonal) is stored
     below, U on and above. *)
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let best = ref (-1) in
    let best_mag = ref 0.0 in
    for i = k to n - 1 do
      let mag = value a.(i).(k) in
      if mag > !best_mag then begin
        best_mag := mag;
        best := i
      end
    done;
    if !best < 0 then
      failwith "Global_system: Y0 numerically singular at the nominal point";
    if !best <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!best);
      a.(!best) <- tmp;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tmp
    end;
    for i = k + 1 to n - 1 do
      if not (E.equal a.(i).(k) E.zero) then begin
        let f = E.div a.(i).(k) a.(k).(k) in
        a.(i).(k) <- f;
        for j = k + 1 to n - 1 do
          if not (E.equal a.(k).(j) E.zero) then
            a.(i).(j) <- E.sub a.(i).(j) (E.mul f a.(k).(j))
        done
      end
    done
  done;
  let solve b =
    let x = Array.init n (fun i -> b.(perm.(i))) in
    for i = 1 to n - 1 do
      for j = 0 to i - 1 do
        if not (E.equal a.(i).(j) E.zero) && not (E.equal x.(j) E.zero) then
          x.(i) <- E.sub x.(i) (E.mul a.(i).(j) x.(j))
      done
    done;
    for i = n - 1 downto 0 do
      for j = i + 1 to n - 1 do
        if not (E.equal a.(i).(j) E.zero) && not (E.equal x.(j) E.zero) then
          x.(i) <- E.sub x.(i) (E.mul a.(i).(j) x.(j))
      done;
      x.(i) <- E.div x.(i) a.(i).(i)
    done;
    x
  in
  let rhs0 = Array.map E.of_mpoly t.rhs in
  let vs = Array.make count [||] in
  vs.(0) <- solve rhs0;
  for k = 1 to count - 1 do
    let rhs = Array.make n E.zero in
    for j = 1 to Int.min k (depth - 1) do
      let yj = higher.(j - 1) in
      let v = vs.(k - j) in
      for r = 0 to n - 1 do
        for c = 0 to n - 1 do
          if not (E.equal yj.(r).(c) E.zero) && not (E.equal v.(c) E.zero) then
            rhs.(r) <- E.sub rhs.(r) (E.mul yj.(r).(c) v.(c))
        done
      done
    done;
    vs.(k) <- solve rhs
  done;
  vs

let project_expr t vectors selector =
  let module E = Symbolic.Expr in
  Array.mapi
    (fun k v ->
      let denorm = Float.pow t.omega0 (-.float_of_int k) in
      List.fold_left
        (fun acc (r, coeff) ->
          E.add acc (E.mul (E.const (coeff *. denorm)) v.(r)))
        E.zero selector)
    vectors

let moments_expr_by_elimination t ~nominal ~count =
  project_expr t (solve_vectors_expr t ~nominal ~count) t.selector
