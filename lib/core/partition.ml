module Netlist = Circuit.Netlist
module Element = Circuit.Element

type t = {
  netlist : Netlist.t;
  symbolic : (Element.t * Symbolic.Symbol.t) list;
  symbols : Symbolic.Symbol.t array;
  companions : Element.t list;
  ports : string array;
  numeric : Netlist.t;
  input : Element.t;
}

let port_source_name node = "__port_" ^ node

let element_nodes (e : Element.t) =
  let base = [ e.Element.pos; e.Element.neg ] in
  match e.Element.kind with
  | Element.Vccs (cp, cn) | Element.Vcvs (cp, cn) -> cp :: cn :: base
  | Element.Resistor | Element.Conductance | Element.Capacitor
  | Element.Inductor | Element.Cccs _ | Element.Ccvs _ | Element.Mutual _
  | Element.Vsource | Element.Isource ->
    base

let make ?(extra_outputs = []) nl =
  Obs.Span.with_ ~name:"model.partition" @@ fun () ->
  let symbolic = Netlist.symbolic_elements nl in
  if symbolic = [] then
    failwith "Partition.make: no symbolic elements in the netlist";
  let input = Netlist.input nl in
  (* Zero-valued extra sources are driveless — a 0-V source is a short, a
     0-A source an open — and show up routinely in linearized netlists
     (shorted DC supplies).  They stay in the numeric partition; sources
     that actually drive the circuit are out of scope beyond the input. *)
  List.iter
    (fun (e : Element.t) ->
      if
        Element.is_source e
        && e.Element.name <> input.Element.name
        && e.Element.value <> 0.0
      then
        failwith
          (Printf.sprintf
             "Partition.make: extra driving source %s (only the designated \
              input is supported)"
             e.Element.name))
    (Netlist.elements nl);
  (match List.find_opt (fun ((e : Element.t), _) -> Element.is_source e) symbolic with
  | Some ((e : Element.t), _) ->
    failwith
      (Printf.sprintf "Partition.make: source %s cannot be symbolic"
         e.Element.name)
  | None -> ());
  let symbols =
    List.map snd symbolic
    |> List.sort_uniq Symbolic.Symbol.compare
    |> Array.of_list
  in
  (* Coupling closure: mutual inductances reference the auxiliary branch
     currents of their inductors, so a coupled trio must live on one side of
     the partition.  Any trio touching a symbolic element drags its numeric
     members into the global system as companions; iterate to a fixpoint
     since shared inductors chain couplings together. *)
  let symbolic_names0 =
    List.map (fun ((e : Element.t), _) -> e.Element.name) symbolic
  in
  let global_names = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace global_names n ()) symbolic_names0;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Element.t) ->
        match e.Element.kind with
        | Element.Mutual (l1, l2) ->
          let members = [ e.Element.name; l1; l2 ] in
          if List.exists (Hashtbl.mem global_names) members then
            List.iter
              (fun n ->
                if not (Hashtbl.mem global_names n) then begin
                  Hashtbl.replace global_names n ();
                  changed := true
                end)
              members
        | Element.Resistor | Element.Conductance | Element.Capacitor
        | Element.Inductor | Element.Vccs _ | Element.Vcvs _ | Element.Cccs _
        | Element.Ccvs _ | Element.Vsource | Element.Isource ->
          ())
      (Netlist.elements nl)
  done;
  let companions =
    Netlist.elements nl
    |> List.filter (fun (e : Element.t) ->
           Hashtbl.mem global_names e.Element.name
           && not (List.mem e.Element.name symbolic_names0))
  in
  let port_set = Hashtbl.create 16 in
  let note n = if not (Netlist.is_ground n) then Hashtbl.replace port_set n () in
  List.iter (fun (e, _) -> List.iter note (element_nodes e)) symbolic;
  List.iter (fun e -> List.iter note (element_nodes e)) companions;
  List.iter note (element_nodes input);
  let note_output = function
    | Netlist.Node a -> note a
    | Netlist.Diff (a, b) ->
      note a;
      note b
  in
  note_output (Netlist.output nl);
  List.iter note_output extra_outputs;
  let ports =
    Hashtbl.fold (fun n () acc -> n :: acc) port_set []
    |> List.sort Netlist.compare_nodes
  in
  let numeric_elements =
    Netlist.elements nl
    |> List.filter (fun (e : Element.t) ->
           (not (Hashtbl.mem global_names e.Element.name))
           &&
           match e.Element.kind with
           | Element.Vsource ->
             (* Shorted (0-V) supplies constrain the numeric partition. *)
             e.Element.name <> input.Element.name && e.Element.value = 0.0
           | Element.Isource -> false
           | Element.Resistor | Element.Conductance | Element.Capacitor
           | Element.Inductor | Element.Vccs _ | Element.Vcvs _
           | Element.Cccs _ | Element.Ccvs _ | Element.Mutual _ ->
             true)
  in
  let port_sources =
    List.map
      (fun node ->
        Element.make ~name:(port_source_name node) ~kind:Element.Vsource
          ~pos:node ~neg:"0" ~value:0.0 ())
      ports
  in
  let numeric =
    Netlist.empty
    |> Fun.flip Netlist.add_all (numeric_elements @ port_sources)
  in
  if !Obs.enabled then begin
    Obs.Metrics.incr "partition.make.count";
    Obs.Metrics.observe "partition.port_count"
      (float_of_int (List.length ports));
    Obs.Metrics.observe "partition.symbol_count"
      (float_of_int (Array.length symbols))
  end;
  {
    netlist = nl;
    symbolic;
    symbols;
    companions;
    ports = Array.of_list ports;
    numeric;
    input;
  }

let nominal t sym =
  match
    List.find_opt (fun (_, s) -> Symbolic.Symbol.equal s sym) t.symbolic
  with
  | Some (e, _) -> Element.stamp_value e
  | None -> raise Not_found

let num_ports t = Array.length t.ports

let pp ppf t =
  Format.fprintf ppf "@[<v>partition: %d symbols, %d ports@,symbols:"
    (Array.length t.symbols) (Array.length t.ports);
  Array.iter (fun s -> Format.fprintf ppf " %a" Symbolic.Symbol.pp s) t.symbols;
  Format.fprintf ppf "@,ports:";
  Array.iter (fun p -> Format.fprintf ppf " %s" p) t.ports;
  Format.fprintf ppf "@]"
