module E = Symbolic.Expr
module Slp = Symbolic.Slp
module Sym = Symbolic.Symbol
module Cx = Numeric.Cx

type t = {
  partition : Partition.t option;
      (* [None] for models loaded from an artifact: the netlist analysis is
         not stored on disk, only its compiled results. *)
  order : int;
  symbols : Sym.t array;
  nominals : float array;
  output : Circuit.Netlist.output option;
  moment_exprs : E.t array;
  moment_program : Slp.t;
  closed : (Closed_form.order2 * Slp.t) option;
  bounds_program : Slp.t Lazy.t;
      (* Cramer-form (polynomial-ratio) variant of the moment program:
         point-for-point identical algebraically, but far better behaved
         under interval evaluation, where elimination programs' subtractive
         pivots straddle zero almost immediately. *)
  sensitivity : Slp.t Lazy.t;
  pole_sensitivity : Slp.t option Lazy.t;
}

(* Derivative programs are rebuilt from the moment/closed-form DAGs, so
   they exist for loaded artifacts too (via [Slp.to_exprs]). *)
let derived_lazies symbols moment_exprs closed =
  let sensitivity =
    lazy
      (let rows =
         Array.map
           (fun m -> Array.map (fun s -> E.deriv m s) symbols)
           moment_exprs
       in
       Slp.compile ~inputs:symbols (Array.concat (Array.to_list rows)))
  in
  let pole_sensitivity =
    lazy
      (Option.map
         (fun (cf, _) ->
           let exprs =
             Array.concat
               [
                 Array.map (E.deriv cf.Closed_form.pole1) symbols;
                 Array.map (E.deriv cf.Closed_form.pole2) symbols;
               ]
           in
           Slp.compile ~inputs:symbols exprs)
         closed)
  in
  (sensitivity, pole_sensitivity)

(* Closed-form pole/residue DAGs for the orders that have them.  This is
   Expr-constructing (hash-consing) work, so it must run on the domain
   that owns the DAG — never inside pool workers. *)
let closed_exprs order moment_exprs =
  (* Structurally degenerate moment sequences (e.g. exactly geometric —
     the circuit is effectively single-pole in the symbols) make the
     closed forms divide by a folded zero; such models simply have no
     closed form and use the compiled-moment path. *)
  match order with
  | 1 -> (
    match
      ( Closed_form.pole_order1 moment_exprs,
        Closed_form.residue_order1 moment_exprs )
    with
    | p, k ->
      let cf =
        {
          Closed_form.pole1 = p;
          pole2 = E.zero;
          residue1 = k;
          residue2 = E.zero;
        }
      in
      Some (cf, [| p; k |])
    | exception Division_by_zero -> None)
  | 2 -> (
    match Closed_form.order2 moment_exprs with
    | cf ->
      Some
        ( cf,
          [| cf.Closed_form.pole1; cf.Closed_form.pole2;
             cf.Closed_form.residue1; cf.Closed_form.residue2 |] )
    | exception Division_by_zero -> None)
  | _ -> None

(* Record assembly from already-compiled programs — the part shared by
   the sequential and the parallel build paths. *)
let assemble_compiled partition ~output order moment_exprs bounds_program
    ~moment_program ~closed =
  let symbols = partition.Partition.symbols in
  let nominals = Array.map (Partition.nominal partition) symbols in
  let sensitivity, pole_sensitivity =
    derived_lazies symbols moment_exprs closed
  in
  { partition = Some partition; order; symbols; nominals; output;
    moment_exprs; moment_program; closed; bounds_program; sensitivity;
    pole_sensitivity }

(* Shared tail of [build]/[build_many]: everything downstream of the
   symbolic moment DAGs. *)
let assemble partition ~output order moment_exprs bounds_program =
  let symbols = partition.Partition.symbols in
  let moment_program = Slp.compile ~inputs:symbols moment_exprs in
  let closed =
    Option.map
      (fun (cf, es) -> (cf, Slp.compile ~inputs:symbols es))
      (closed_exprs order moment_exprs)
  in
  assemble_compiled partition ~output order moment_exprs bounds_program
    ~moment_program ~closed

let build ?(order = 2) ?(sparse = false) ?jobs nl =
  if order < 1 then invalid_arg "Model.build: order must be >= 1";
  Obs.Span.with_ ~name:"model.compile" @@ fun () ->
  if !Obs.enabled then Obs.Metrics.incr "model.build.count";
  let partition = Partition.make nl in
  let count = 2 * order in
  let reduction = Port_reduction.compute ~sparse ?jobs ~count partition in
  let system = Global_system.build partition reduction in
  let nominal sym = Partition.nominal partition sym in
  let moment_exprs =
    Global_system.moments_expr_by_elimination system ~nominal ~count
  in
  let bounds_program =
    lazy
      (let solved = Global_system.solve_moments system ~count in
       Slp.compile ~inputs:partition.Partition.symbols
         (Global_system.moments_expr solved))
  in
  assemble partition ~output:(Circuit.Netlist.output_opt nl) order
    moment_exprs bounds_program

let build_many ?(order = 2) ?(sparse = false) ?jobs nl ~outputs =
  if order < 1 then invalid_arg "Model.build_many: order must be >= 1";
  if outputs = [] then invalid_arg "Model.build_many: no outputs";
  Obs.Span.with_ ~name:"model.compile" @@ fun () ->
  if !Obs.enabled then Obs.Metrics.incr "model.build.count";
  (* One partition / port reduction / elimination serves every output: only
     the selector differs, so the marginal cost per extra output is a
     projection plus a compile. *)
  let partition = Partition.make ~extra_outputs:outputs nl in
  let count = 2 * order in
  let reduction = Port_reduction.compute ~sparse ?jobs ~count partition in
  let system = Global_system.build partition reduction in
  let nominal sym = Partition.nominal partition sym in
  let vectors = Global_system.solve_vectors_expr system ~nominal ~count in
  let raw = lazy (Global_system.solve_raw system ~count) in
  let symbols = partition.Partition.symbols in
  (* Phase 1 (sequential): all Expr-DAG construction — projections and
     closed forms go through the global hash-consing tables, which are
     single-domain only. *)
  let prepared =
    Array.of_list
      (List.map
         (fun output ->
           let sel = Global_system.selector_for system output in
           let moment_exprs = Global_system.project_expr system vectors sel in
           let bounds_program =
             lazy
               (Slp.compile ~inputs:symbols
                  (Global_system.moments_expr
                     (Global_system.project system (Lazy.force raw) sel)))
           in
           (output, moment_exprs, closed_exprs order moment_exprs,
            bounds_program))
         outputs)
  in
  (* Phase 2 (parallel): per-output compiles only READ the shared DAG
     (node ids and structure), so they fan out across domains. *)
  let compiled =
    Runtime.parallel_map ?jobs
      (fun (_, moment_exprs, cx, _) ->
        ( Slp.compile ~inputs:symbols moment_exprs,
          Option.map (fun (cf, es) -> (cf, Slp.compile ~inputs:symbols es)) cx
        ))
      prepared
  in
  Array.to_list
    (Array.mapi
       (fun i (output, moment_exprs, _, bounds_program) ->
         let moment_program, closed = compiled.(i) in
         assemble_compiled partition ~output:(Some output) order moment_exprs
           bounds_program ~moment_program ~closed)
       prepared)

let order t = t.order
let symbols t = Array.copy t.symbols
let nominal_values t = Array.copy t.nominals
let output_meta t = t.output

let partition_opt t = t.partition
let moment_exprs t = Array.copy t.moment_exprs
let program t = t.moment_program
let num_operations t = Slp.num_instructions t.moment_program

let values t bindings =
  Array.map
    (fun s ->
      match List.assoc_opt (Sym.name s) bindings with
      | Some v -> v
      | None ->
        Awesym_error.errorf Invalid_request ~where:"model.values"
          "no value bound for symbol %s (the model needs every one of its \
           symbols bound)"
          (Sym.name s))
    t.symbols

let eval_moments t v = Slp.eval t.moment_program v

let rom t v = Awe.Pade.fit ~order:t.order (eval_moments t v)

let evaluator t =
  let run = Slp.make_evaluator t.moment_program in
  fun v -> Awe.Pade.fit ~order:t.order (run v)

let closed_form t = Option.map fst t.closed

let closed_form_rom t v =
  match t.closed with
  | None -> None
  | Some (_, prog) ->
    let out = Slp.eval prog v in
    let finite = Array.for_all Float.is_finite out in
    if not finite then None
    else if t.order = 1 then
      Some
        (Awe.Rom.make
           ~poles:[| Cx.of_float out.(0) |]
           ~residues:[| Cx.of_float out.(1) |]
           ())
    else
      Some
        (Awe.Rom.make
           ~poles:[| Cx.of_float out.(0); Cx.of_float out.(1) |]
           ~residues:[| Cx.of_float out.(2); Cx.of_float out.(3) |]
           ())

let moments_ratfun ?(count = 4) nl =
  let partition = Partition.make nl in
  let reduction = Port_reduction.compute ~count partition in
  let system = Global_system.build partition reduction in
  Global_system.moments_ratfun (Global_system.solve_moments system ~count)

let pp_forms ?(count = 4) ppf nl =
  let module Mpoly = Symbolic.Mpoly in
  let module Ratfun = Symbolic.Ratfun in
  let profile p =
    Mpoly.degree_profile p
    |> List.map (fun (s, e) ->
           if e = 1 then Sym.name s else Printf.sprintf "%s^%d" (Sym.name s) e)
    |> String.concat ", "
  in
  let side ppf p =
    if Mpoly.num_terms p <= 12 then Mpoly.pp ppf p
    else
      Format.fprintf ppf "P(%s; %d terms)" (profile p) (Mpoly.num_terms p)
  in
  let moments = moments_ratfun ~count nl in
  Array.iteri
    (fun k rf ->
      let den = Ratfun.den rf in
      if Mpoly.is_const den then
        Format.fprintf ppf "m%d = %a@." k side (Ratfun.num rf)
      else
        Format.fprintf ppf "m%d = (%a) / (%a)@." k side (Ratfun.num rf) side den)
    moments

let moment_bounds t ranges =
  let boxes =
    Array.map
      (fun s ->
        match List.find_opt (fun (n, _, _) -> n = Sym.name s) ranges with
        | Some (_, lo, hi) -> Symbolic.Interval.make lo hi
        | None ->
          Awesym_error.errorf Invalid_request ~where:"model.moment_bounds"
            "no range given for symbol %s" (Sym.name s))
      t.symbols
  in
  Slp.eval_interval (Lazy.force t.bounds_program) boxes

let elmore_program t =
  (* −m₁/m₀, the first-moment delay estimate, straight off the moment DAGs:
     the symbolic form of the estimate physical-design tools sweep. *)
  Slp.compile ~inputs:t.symbols
    [| E.neg (E.div t.moment_exprs.(1) t.moment_exprs.(0)) |]

let zero_program t =
  match t.closed with
  | None -> None
  | Some (cf, _) ->
    (* H(s) = k₁/(s−p₁) + k₂/(s−p₂) = ((k₁+k₂)s − (k₁p₂+k₂p₁)) / D(s):
       the single finite zero is z = (k₁p₂ + k₂p₁)/(k₁ + k₂).  Order-1
       models (pole2 = residue2 = 0) have no finite zero, and z folds to 0
       there, so only genuinely 2-branch forms compile. *)
    if E.equal cf.Closed_form.pole2 E.zero then None
    else
      let num =
        E.add
          (E.mul cf.Closed_form.residue1 cf.Closed_form.pole2)
          (E.mul cf.Closed_form.residue2 cf.Closed_form.pole1)
      in
      let den = E.add cf.Closed_form.residue1 cf.Closed_form.residue2 in
      Some (Slp.compile ~inputs:t.symbols [| E.div num den |])

let sensitivity_program t = Lazy.force t.sensitivity

let eval_sensitivities t v =
  let n = Array.length t.symbols in
  let flat = Slp.eval (Lazy.force t.sensitivity) v in
  Array.init
    (Array.length t.moment_exprs)
    (fun k -> Array.sub flat (k * n) n)

let pole_sensitivity_program t = Lazy.force t.pole_sensitivity

let eval_pole_sensitivities t v =
  match Lazy.force t.pole_sensitivity with
  | None -> None
  | Some prog ->
    let n = Array.length t.symbols in
    let flat = Slp.eval prog v in
    Some (Array.sub flat 0 n, Array.sub flat n n)

let time_symbol = Sym.intern "__time"

let transient_program t =
  match t.closed with
  | None -> None
  | Some (cf, _) ->
    let branch pole residue =
      (* (k/p)·(e^{p·t} − 1); an absent branch (order-1 models pad with
         zeros) contributes nothing. *)
      if E.equal pole E.zero then E.zero
      else
        E.mul
          (E.div residue pole)
          (E.sub (E.exp (E.mul pole (E.sym time_symbol))) E.one)
    in
    let y =
      E.add
        (branch cf.Closed_form.pole1 cf.Closed_form.residue1)
        (branch cf.Closed_form.pole2 cf.Closed_form.residue2)
    in
    let inputs = Array.append t.symbols [| time_symbol |] in
    Some (Slp.compile ~inputs [| y |])

let omega_symbol = Sym.intern "__omega"

let frequency_program t =
  match t.closed with
  | None -> None
  | Some (cf, _) ->
    let w = E.sym omega_symbol in
    let w2 = E.mul w w in
    (* For a real pole p and residue k:
       k/(jω − p) = k·(−p − jω)/(p² + ω²). *)
    let branch pole residue =
      if E.equal pole E.zero then (E.zero, E.zero)
      else begin
        let denom = E.add (E.mul pole pole) w2 in
        ( E.div (E.mul residue (E.neg pole)) denom,
          E.neg (E.div (E.mul residue w) denom) )
      end
    in
    let re1, im1 = branch cf.Closed_form.pole1 cf.Closed_form.residue1 in
    let re2, im2 = branch cf.Closed_form.pole2 cf.Closed_form.residue2 in
    let inputs = Array.append t.symbols [| omega_symbol |] in
    Some (Slp.compile ~inputs [| E.add re1 re2; E.add im1 im2 |])

(* ------------------------------------------------------------------ *)
(* Persistence *)

let to_payload t =
  {
    Artifact.order = t.order;
    symbol_names = Array.map Sym.name t.symbols;
    nominals = Array.copy t.nominals;
    output = t.output;
    moment_program = t.moment_program;
    closed_program = Option.map snd t.closed;
  }

let of_payload (p : Artifact.payload) =
  let symbols = Array.map Sym.intern p.symbol_names in
  if Array.length p.nominals <> Array.length symbols then
    raise (Artifact.Format_error "nominal/symbol count mismatch");
  if Slp.inputs p.moment_program <> symbols then
    raise
      (Artifact.Format_error
         "moment program inputs disagree with the symbol table");
  if Slp.num_outputs p.moment_program <> 2 * p.order then
    raise
      (Artifact.Format_error
         (Printf.sprintf "order-%d model with %d moment outputs" p.order
            (Slp.num_outputs p.moment_program)));
  (* Symbolic forms come back from the bytecode, so the derivative,
     Elmore, and time/frequency machinery keeps working on loaded
     models; only the netlist-side analyses (partition, moment bounds)
     stay unavailable. *)
  let moment_exprs = Slp.to_exprs p.moment_program in
  let closed =
    match p.closed_program with
    | None -> None
    | Some prog ->
      let expected = if p.order = 1 then 2 else 4 in
      if Slp.num_outputs prog <> expected then
        raise
          (Artifact.Format_error
             (Printf.sprintf "closed-form program with %d outputs, wanted %d"
                (Slp.num_outputs prog) expected));
      let es = Slp.to_exprs prog in
      let cf =
        if p.order = 1 then
          {
            Closed_form.pole1 = es.(0);
            pole2 = E.zero;
            residue1 = es.(1);
            residue2 = E.zero;
          }
        else
          {
            Closed_form.pole1 = es.(0);
            pole2 = es.(1);
            residue1 = es.(2);
            residue2 = es.(3);
          }
      in
      Some (cf, prog)
  in
  let sensitivity, pole_sensitivity =
    derived_lazies symbols moment_exprs closed
  in
  {
    partition = None;
    order = p.order;
    symbols;
    nominals = Array.copy p.nominals;
    output = p.output;
    moment_exprs;
    moment_program = p.moment_program;
    closed;
    bounds_program =
      lazy
        (Awesym_error.raise_error Invalid_request
           ~where:"model.moment_bounds"
           "unavailable for a model loaded from an artifact; rebuild it \
            from the deck");
    sensitivity;
    pole_sensitivity;
  }

let save t path = Artifact.save path (to_payload t)
let load path = of_payload (Artifact.load path)

let build_cached ?cache_dir ?(order = 2) ?(sparse = false) ?jobs nl =
  let dir =
    match cache_dir with Some d -> d | None -> Cache.default_dir ()
  in
  let key = Cache.key ~order ~sparse nl in
  let file = Cache.path ~dir key in
  let cached =
    if Sys.file_exists file then
      match
        Runtime.Fault.cut "cache.read" ~key:(Hashtbl.hash key);
        load file
      with
      | m ->
        if !Obs.enabled then Obs.Metrics.incr "model.cache.hit";
        Some m
      | exception (Artifact.Format_error _ | Sys_error _) ->
        (* Stale, corrupted, or concurrently written: rebuild below. *)
        None
      | exception Awesym_error.Error { kind = Injected_fault | Artifact_corrupt; _ }
        ->
        (* Fault containment: a cache entry is always reproducible, so a
           failed read — injected or real — degrades to a rebuild. *)
        None
    else None
  in
  match cached with
  | Some m -> m
  | None ->
    if !Obs.enabled then Obs.Metrics.incr "model.cache.miss";
    let m = build ~order ~sparse ?jobs nl in
    (try
       Cache.ensure_dir dir;
       (* Temp-file + rename: concurrent builders racing on this key each
          publish a complete artifact, and a crash mid-save leaves no
          partial file to poison later hits. *)
       Cache.atomic_write file (save m)
     with Sys_error _ -> ());
    m
