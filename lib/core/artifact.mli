(** On-disk compiled-model artifacts.

    An artifact holds everything a sweep needs to evaluate a compiled model
    without the netlist that produced it: the moment SLP bytecode, the
    symbol table with nominal values, the expansion order, the output
    metadata, and (when present) the closed-form pole/residue program.
    Files carry a magic string, a format {!version}, and an MD5 checksum of
    the payload; floats are stored as IEEE-754 bit patterns so a
    save -> load round-trip is bit-identical. *)

exception Format_error of string
(** Raised by {!of_string}/{!load} on any malformed input: bad magic,
    version mismatch, checksum failure, truncation, or out-of-range
    bytecode. The message states the specific failure. *)

val version : int
(** Current artifact format version. Bumped on any layout change; readers
    reject other versions with a clear {!Format_error}. *)

val magic : string
(** Leading magic bytes identifying an awesym model artifact. *)

type payload = {
  order : int;  (** AWE expansion order of the stored model. *)
  symbol_names : string array;
      (** Free symbols, in the moment program's input-slot order. *)
  nominals : float array;  (** Nominal value per symbol (same order). *)
  output : Circuit.Netlist.output option;
      (** Which netlist quantity the model's transfer function measures. *)
  moment_program : Symbolic.Slp.t;
  closed_program : Symbolic.Slp.t option;
      (** Closed-form pole/residue program: outputs [p; k] for order 1,
          [p1; p2; k1; k2] for order 2, absent otherwise. *)
}

val to_string : payload -> string
(** Serialize with header and checksum (the exact bytes {!save} writes). *)

val of_string : string -> payload
(** Inverse of {!to_string}. Raises {!Format_error} on malformed input. *)

val save : string -> payload -> unit
(** [save path p] writes the artifact to [path] (binary mode). *)

val load : string -> payload
(** [load path] reads and validates an artifact. Raises {!Format_error} on
    malformed content and [Sys_error] on I/O failure. *)
