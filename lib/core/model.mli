(** AWEsymbolic models: the paper's end product.

    [build] runs the one-time analysis — partition, numeric port reduction,
    symbolic moment recursion — and compiles the symbolic moments into a
    straight-line program over the symbol values.  Evaluating the model at a
    point then costs microseconds (program run + a tiny fixed-order Padé
    finish), versus a full AWE analysis of the whole circuit; the results
    are identical to numeric AWE at every point, which the test suite
    asserts and the Table-1 benchmark measures. *)

type t

val build : ?order:int -> ?sparse:bool -> ?jobs:int -> Circuit.Netlist.t -> t
(** Default order 2 (the paper's workhorse).  The netlist must carry at
    least one symbolic element (mark with [Netlist.mark_symbolic], the
    [.symbolic] deck directive, or [Awe.Sensitivity.select_symbols]).
    [~sparse:true] routes the numeric port reduction through the sparse
    solver — the right choice for large interconnect.  [jobs] (default
    [Runtime.default_jobs ()]) parallelizes the numeric port reduction
    across ports; results are identical for every jobs count. *)

val build_many :
  ?order:int ->
  ?sparse:bool ->
  ?jobs:int ->
  Circuit.Netlist.t ->
  outputs:Circuit.Netlist.output list ->
  t list
(** Multi-output analysis: one model per requested output (in order), with
    the expensive stages — partitioning, numeric port reduction, and the
    symbolic elimination — shared across all of them, so each extra output
    costs only a projection and a compile.  Use it when one compiled sweep
    must observe several nodes (e.g. near- and far-end crosstalk from the
    same coupled-line model).  The netlist's own designated output need not
    appear in [outputs].  [jobs] parallelizes the port reduction and the
    per-output program compiles (the symbolic projections stay on the
    calling domain — expression construction is single-domain). *)

val order : t -> int
val symbols : t -> Symbolic.Symbol.t array
(** The model's inputs, in the positional order every evaluation function
    expects. *)

val nominal_values : t -> float array
(** The netlist's element values for each symbol, in {!symbols} order — the
    center point sweeps perturb around.  Preserved across save/load. *)

val output_meta : t -> Circuit.Netlist.output option
(** Which netlist quantity the transfer function measures (the designated
    [.output]), when one was recorded.  Preserved across save/load. *)

val partition_opt : t -> Partition.t option
(** The netlist analysis behind a built model, or [None] for models loaded
    from an artifact — the partition is not serialized. *)

val moment_exprs : t -> Symbolic.Expr.t array
(** The symbolic output moments [m₀ … m_{2q−1}] as expression DAGs. *)

val program : t -> Symbolic.Slp.t
(** The compiled moment program — the paper's "reduced set of operations". *)

val num_operations : t -> int

val values : t -> (string * float) list -> float array
(** Positional value vector from name/value bindings.  Raises
    [Awesym_error.Error] (kind [Invalid_request]) on a missing or unknown
    symbol name. *)

val eval_moments : t -> float array -> float array

val rom : t -> float array -> Awe.Rom.t
(** Reduced-order model at the given symbol values: compiled moments plus a
    fixed-order numeric Padé finish (the paper's small [n×n] LU per
    iteration). *)

val evaluator : t -> float array -> Awe.Rom.t
(** Pre-allocated fast path for tight sweeps; the per-iteration cost the
    paper's Table 1 charges to AWEsymbolic. *)

val closed_form : t -> Closed_form.order2 option
(** Fully symbolic poles/residues (orders 1–2 only; order 1 is padded with
    a zero second branch).  [None] for order ≥ 3. *)

val closed_form_rom : t -> float array -> Awe.Rom.t option
(** Evaluate the closed-form pole/residue program.  [None] when the model
    has no closed form or the discriminant is negative at this point (use
    {!rom} instead). *)

val moments_ratfun : ?count:int -> Circuit.Netlist.t -> Symbolic.Ratfun.t array
(** The same partitioned moment computation carried out over exact rational
    functions — the expanded multi-linear forms of the paper's Eq. (14),
    suitable for display and algebraic inspection. *)

val pp_forms : ?count:int -> Format.formatter -> Circuit.Netlist.t -> unit
(** Print the exact symbolic moments: expanded when small, otherwise in the
    paper's degree-profile shorthand (its Eq. 15 writes a polynomial of
    degree i in x and j in y as [P(xⁱ, yʲ)]). *)

val moment_bounds :
  t -> (string * float * float) list -> Symbolic.Interval.t array
(** Guaranteed enclosures of every compiled moment over the per-symbol
    [(name, lo, hi)] box — the rigorous version of the paper's advice to
    "validate the choice of symbolic elements over the range spanned by the
    symbolic elements".  Conservative (interval arithmetic over-approximates
    shared-term correlations).  Raises [Awesym_error.Error] (kind
    [Invalid_request]) on a missing symbol range, [Division_by_zero] when a
    compiled reciprocal's range spans zero. *)

val elmore_program : t -> Symbolic.Slp.t
(** The Elmore delay estimate [−m₁/m₀] compiled as a symbolic form of the
    model's symbols — the quantity physical-design tools sweep when sizing
    wires and drivers.  Evaluates to the same value as
    [Awe.Measures.elmore_delay (eval_moments t v)]. *)

val zero_program : t -> Symbolic.Slp.t option
(** The model's single finite zero as a compiled symbolic form,
    [z = (k₁p₂ + k₂p₁)/(k₁ + k₂)] from the closed pole/residue DAGs —
    the "zeros" half of the paper's symbolic pole-zero claim.  [None] for
    order-1 models (no finite zero) and orders ≥ 3 (no closed form).
    Evaluates to ±∞ where the residues cancel (the zero escapes to
    infinity) and NaN where the poles go complex. *)

val sensitivity_program : t -> Symbolic.Slp.t
(** Compiled symbolic sensitivities: ∂mₖ/∂symbolⱼ for every moment and every
    symbol, obtained by differentiating the moment DAGs and compiling the
    result (with full sharing against the moment computation).  Output
    layout is row-major: entry [k·n + j] is ∂mₖ/∂symbolⱼ for [n] symbols.
    Built lazily on first use; subsequent calls return the cached program.
    Where {!Awe.Sensitivity} recomputes adjoint solves per circuit point,
    this costs a few hundred float operations per point — the paper's
    compiled-evaluation idea applied to its own Sec. 2.3 machinery. *)

val eval_sensitivities : t -> float array -> float array array
(** [eval_sensitivities t v].(k).(j) = ∂mₖ/∂symbolⱼ at symbol values [v]. *)

val pole_sensitivity_program : t -> Symbolic.Slp.t option
(** Compiled ∂pᵢ/∂symbolⱼ for the closed-form poles (orders 1–2 with a
    closed form only, like {!closed_form}): outputs are ∂p₁/∂symbolⱼ for
    each [j], then ∂p₂/∂symbolⱼ.  [None] when the model has no closed
    form.  NaN at evaluation where the poles go complex. *)

val eval_pole_sensitivities : t -> float array -> (float array * float array) option
(** [(dp1, dp2)] with [dpᵢ.(j) = ∂pᵢ/∂symbolⱼ] at the given point, or
    [None] without a closed form. *)

val time_symbol : Symbolic.Symbol.t
(** The pseudo-symbol (named ["__time"]) that carries the time value in
    {!transient_program} inputs. *)

val transient_program : t -> Symbolic.Slp.t option
(** The paper's symbolic time-domain claim, realized: for orders 1–2 with a
    closed pole/residue form, the unit-step response
    [y(t) = Σ (kᵢ/pᵢ)(e^{pᵢ·t} − 1)] compiles into one program whose inputs
    are the model's symbols followed by {!time_symbol} — Figs. 9–10 of the
    paper are "plotted from the second order symbolic form" exactly this
    way.  [None] for orders ≥ 3 (no closed form); NaN at evaluation when the
    poles go complex at the given symbol values (use {!rom} +
    [Awe.Rom.step] there). *)

val save : t -> string -> unit
(** [save t path] writes the compiled model as a versioned, checksummed
    artifact (see {!Artifact}): moment bytecode, closed-form bytecode,
    symbols, nominal values, order, and output metadata. *)

val load : string -> t
(** Read a model back.  Evaluations ({!eval_moments}, {!rom},
    {!closed_form_rom}, batch sweeps) are bit-identical to the model that
    was saved; symbolic forms are reconstructed from the bytecode so the
    derivative/Elmore/time/frequency programs keep working.  Only
    {!partition_opt} (which returns [None]) and {!moment_bounds} (which
    raises [Awesym_error.Error]) require the original netlist.  Raises
    {!Artifact.Format_error} on corrupted or version-incompatible files. *)

val build_cached :
  ?cache_dir:string ->
  ?order:int ->
  ?sparse:bool ->
  ?jobs:int ->
  Circuit.Netlist.t ->
  t
(** Like {!build}, but consults a content-addressed on-disk cache first
    (keyed by {!Cache.key}: deck text + build options + artifact version)
    and writes the artifact back on a miss, so repeated runs skip the
    one-time analysis.  Cache writes go through {!Cache.atomic_write}
    (temp file + rename), so concurrent builders and crashes never leave a
    half-written entry for later runs to trip over.  Default directory
    {!Cache.default_dir}; corrupt or stale entries are rebuilt silently.
    Obs counters [model.cache.hit] / [model.cache.miss] record the
    outcome. *)

val omega_symbol : Symbolic.Symbol.t
(** The pseudo-symbol (named ["__omega"]) carrying the angular frequency in
    {!frequency_program} inputs. *)

val frequency_program : t -> Symbolic.Slp.t option
(** The frequency-domain counterpart of {!transient_program}: for orders 1–2
    with a closed pole/residue form, compiles
    [H(jω) = Σ kᵢ/(jω − pᵢ) = Σ kᵢ·(−pᵢ − jω)/(pᵢ² + ω²)]
    into a program with inputs [symbols…, ω] and outputs
    [[| Re H; Im H |]] — the mechanism behind the paper's remark that each
    of Figs. 4–7 "was generated by use of the symbolic forms for the poles
    and zeros".  [None] for orders ≥ 3; NaN where the poles go complex. *)
